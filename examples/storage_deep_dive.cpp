// Storage deep dive: watches one protection group as the Figure 4 pipeline
// runs — batch receipt and SCL advancement, VDL propagation, background
// coalescing, PGMRPL-driven garbage collection, S3 backup staging, and a
// point-in-time page reconstruction served at a read point.
//
//   ./build/examples/storage_deep_dive

#include <cstdio>

#include "harness/cluster.h"
#include "harness/synthetic_table.h"

using namespace aurora;  // examples only

namespace {

void DumpPg(AuroraCluster* cluster, PgId pg, const char* moment) {
  printf("\n[%s] protection group %u (writer VDL=%llu)\n", moment, pg,
         static_cast<unsigned long long>(cluster->writer()->vdl()));
  printf("  %-10s %3s %12s %12s %10s %10s %8s\n", "node", "az", "scl",
         "applied", "hot log", "pages", "backup");
  const PgMembership& members = cluster->control_plane()->membership(pg);
  for (sim::NodeId node : members.nodes) {
    StorageNode* sn = cluster->storage_node_by_id(node);
    if (sn == nullptr) continue;
    const Segment* seg = sn->segment(pg);
    if (seg == nullptr) continue;
    printf("  %-10s %3d %12llu %12llu %10zu %10zu %8llu\n",
           cluster->topology()->name_of(node).c_str(),
           cluster->topology()->az_of(node),
           static_cast<unsigned long long>(seg->scl()),
           static_cast<unsigned long long>(seg->applied_lsn()),
           seg->hot_log_size(), seg->num_pages(),
           static_cast<unsigned long long>(seg->backup_lsn()));
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.engine.page_size = 4096;
  options.engine.pages_per_pg = 64;
  options.storage.backup_interval = Millis(100);
  AuroraCluster cluster(options);
  (void)cluster.BootstrapSync();
  (void)cluster.CreateTableSync("t");
  PageId table = *cluster.TableAnchorSync("t");

  DumpPg(&cluster, 0, "after bootstrap");

  printf("\n-- writing 300 rows --\n");
  for (int i = 0; i < 300; ++i) {
    (void)cluster.PutSync(table, SyntheticTableLayout::KeyOf(i),
                          std::string(120, 'x'));
  }
  DumpPg(&cluster, 0, "right after writes (hot log full, little coalesced)");

  printf("\n-- letting background work run for 3 simulated seconds --\n");
  cluster.RunFor(Seconds(3));
  DumpPg(&cluster, 0, "after coalesce + GC (hot log drained into pages)");

  // Storage-level point read: ask a segment for a page as of the VDL and
  // verify its checksum — the "log is the database" cache in action.
  const PgMembership& members = cluster.control_plane()->membership(0);
  StorageNode* sn = cluster.storage_node_by_id(members.nodes[0]);
  const Segment* seg = sn->segment(0);
  Lsn read_point = cluster.writer()->vdl();
  for (PageId page = 0; page < 8; ++page) {
    auto as_of = seg->GetPageAsOf(page, read_point);
    if (as_of.ok()) {
      printf("\npage %llu as of LSN %llu: %d records, page LSN %llu, CRC %s\n",
             static_cast<unsigned long long>(page),
             static_cast<unsigned long long>(read_point),
             as_of->slot_count(),
             static_cast<unsigned long long>(as_of->page_lsn()),
             as_of->VerifyCrc() ? "ok" : "BAD");
      break;
    }
  }

  printf("\nS3 backup objects staged: %llu (%llu bytes)\n",
         static_cast<unsigned long long>(cluster.s3()->num_objects()),
         static_cast<unsigned long long>(cluster.s3()->bytes_stored()));

  const sim::NetStats total = cluster.network()->total();
  printf("network totals: %llu messages, %llu packets, %llu bytes\n",
         static_cast<unsigned long long>(total.messages_sent),
         static_cast<unsigned long long>(total.packets_sent),
         static_cast<unsigned long long>(total.bytes_sent));
  return 0;
}
