// Quickstart: stand up a complete Aurora cluster in the deterministic
// simulation — three AZs, a storage fleet, one writer and a read replica —
// create a table, run transactions, crash the writer, and recover.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "harness/cluster.h"

using namespace aurora;  // examples only; library code never does this

int main() {
  // 1. A cluster: 3 AZs x 4 storage hosts, one writer, one read replica.
  ClusterOptions options;
  options.engine.page_size = 4096;
  options.num_replicas = 1;
  AuroraCluster cluster(options);

  // 2. Bootstrap a fresh volume (formats the catalog, waits for the 4/6
  //    write quorum to harden it).
  Status s = cluster.BootstrapSync();
  printf("bootstrap: %s\n", s.ToString().c_str());

  // 3. Create a table and write through a transaction.
  s = cluster.CreateTableSync("accounts");
  printf("create table: %s\n", s.ToString().c_str());
  PageId accounts = *cluster.TableAnchorSync("accounts");

  s = cluster.PutSync(accounts, "alice", "balance=100");
  printf("put alice: %s\n", s.ToString().c_str());
  s = cluster.PutSync(accounts, "bob", "balance=250");
  printf("put bob:   %s\n", s.ToString().c_str());

  // 4. Read from the writer, and from the replica (which consumed the redo
  //    stream — no page was ever shipped).
  auto alice = cluster.GetSync(accounts, "alice");
  printf("writer read alice:  %s\n",
         alice.ok() ? alice->c_str() : alice.status().ToString().c_str());
  cluster.RunFor(Millis(50));  // let the replica stream catch up
  auto from_replica = cluster.ReplicaGetSync(0, accounts, "bob");
  printf("replica read bob:   %s\n",
         from_replica.ok() ? from_replica->c_str()
                           : from_replica.status().ToString().c_str());

  // 5. A multi-statement transaction with rollback.
  TxnId txn = cluster.writer()->Begin();
  bool done = false;
  cluster.writer()->Put(txn, accounts, "alice", "balance=0", [&](Status ps) {
    printf("txn put: %s — rolling back\n", ps.ToString().c_str());
    cluster.writer()->Rollback(txn, [&](Status rs) {
      printf("rollback: %s\n", rs.ToString().c_str());
      done = true;
    });
  });
  cluster.RunUntil([&] { return done; }, Seconds(10));
  printf("alice after rollback: %s\n",
         cluster.GetSync(accounts, "alice")->c_str());

  // 6. Crash the writer and recover: the log IS the database — the new
  //    incarnation rebuilds its state from a read quorum per protection
  //    group, with no redo replay.
  cluster.CrashWriter();
  SimTime t0 = cluster.loop()->now();
  s = cluster.RecoverSync();
  printf("recovery: %s in %.1f ms (simulated)\n", s.ToString().c_str(),
         ToMillis(cluster.loop()->now() - t0));
  printf("alice after recovery: %s\n",
         cluster.GetSync(accounts, "alice")->c_str());
  printf("bob after recovery:   %s\n",
         cluster.GetSync(accounts, "bob")->c_str());

  // 7. Where did the bytes go? Only redo log records crossed the network.
  const EngineStats& st = cluster.writer()->stats();
  printf("\nwriter stats: %llu txns committed, %llu log batches, "
         "%llu storage page reads\n",
         static_cast<unsigned long long>(st.txns_committed),
         static_cast<unsigned long long>(st.log_batches_sent),
         static_cast<unsigned long long>(st.storage_page_reads));
  return 0;
}
