// Migration benchmark: the §6.2 customer story in miniature. Runs the same
// OLTP workload against the mirrored-MySQL baseline (Figure 2) and an
// Aurora cluster (Figure 3), then prints the before/after comparison a
// customer would see: throughput, mean response time, and the P95/P50 tail
// ratio.
//
//   ./build/examples/migration_benchmark

#include <cstdio>

#include "harness/bulk_load.h"
#include "harness/client_api.h"
#include "harness/cluster.h"
#include "harness/mysql_cluster.h"
#include "workload/sysbench.h"

using namespace aurora;  // examples only

namespace {

struct Outcome {
  double tps = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
};

Outcome Summarize(const WorkloadResults& r) {
  Outcome o;
  o.tps = r.tps();
  o.mean_ms = ToMillis(static_cast<SimDuration>(r.txn_latency_us.mean()));
  o.p50_ms = ToMillis(r.txn_latency_us.P50());
  o.p95_ms = ToMillis(r.txn_latency_us.P95());
  return o;
}

SysbenchOptions WebWorkload() {
  SysbenchOptions o;
  o.mode = SysbenchOptions::Mode::kOltp;
  o.point_selects = 6;
  o.index_updates = 2;
  o.connections = 24;
  o.table_rows = 100000;
  o.duration = Seconds(3);
  o.warmup = Millis(300);
  return o;
}

}  // namespace

int main() {
  const uint64_t rows = 100000;

  // --- Before: mirrored MySQL on EBS -------------------------------------
  MysqlClusterOptions mopts;
  mopts.mysql.engine.page_size = 4096;
  mopts.mysql.engine.buffer_pool_pages = 8192;
  MysqlCluster mysql(mopts);
  (void)mysql.BootstrapSync();
  SyntheticCatalog mysql_catalog;
  auto mysql_table =
      AttachSyntheticTableMysql(&mysql, &mysql_catalog, "app", rows, 100);
  MysqlClient mysql_client(mysql.db());
  SysbenchDriver before(mysql.writer_loop(), &mysql_client, (*mysql_table)->anchor(),
                        WebWorkload());
  bool before_done = false;
  before.Run([&] { before_done = true; });
  mysql.RunUntil([&] { return before_done; }, Minutes(30));

  // --- After: Aurora -------------------------------------------------------
  ClusterOptions aopts;
  aopts.engine.page_size = 4096;
  aopts.engine.buffer_pool_pages = 8192;
  AuroraCluster aurora(aopts);
  (void)aurora.BootstrapSync();
  SyntheticCatalog aurora_catalog;
  auto aurora_table =
      AttachSyntheticTable(&aurora, &aurora_catalog, "app", rows, 100);
  AuroraClient aurora_client(aurora.writer());
  SysbenchDriver after(aurora.writer_loop(), &aurora_client,
                       (*aurora_table)->anchor(), WebWorkload());
  bool after_done = false;
  after.Run([&] { after_done = true; });
  aurora.RunUntil([&] { return after_done; }, Minutes(30));

  Outcome b = Summarize(before.results());
  Outcome a = Summarize(after.results());
  printf("Web application migration (Figure 8/9/10 in miniature)\n\n");
  printf("%-18s %12s %12s %12s %12s\n", "", "txns/s", "mean ms", "p50 ms",
         "p95 ms");
  printf("%-18s %12.0f %12.2f %12.2f %12.2f\n", "MySQL (before)", b.tps,
         b.mean_ms, b.p50_ms, b.p95_ms);
  printf("%-18s %12.0f %12.2f %12.2f %12.2f\n", "Aurora (after)", a.tps,
         a.mean_ms, a.p50_ms, a.p95_ms);
  printf("\nresponse time improvement: %.1fx; tail (p95/p50) %.1fx -> %.1fx\n",
         a.mean_ms > 0 ? b.mean_ms / a.mean_ms : 0,
         b.p50_ms > 0 ? b.p95_ms / b.p50_ms : 0,
         a.p50_ms > 0 ? a.p95_ms / a.p50_ms : 0);
  return 0;
}
