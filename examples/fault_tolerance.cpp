// Fault-tolerance tour: exercises the paper's §2 design points live —
// writes surviving an AZ failure, reads surviving AZ+1, gossip healing
// lossy networks, and the repair manager re-replicating a dead node's
// segments.
//
//   ./build/examples/fault_tolerance

#include <cstdio>
#include <string>

#include "harness/cluster.h"
#include "harness/synthetic_table.h"

using namespace aurora;  // examples only

namespace {

int WriteRows(AuroraCluster* cluster, PageId table, int base, int n) {
  int ok = 0;
  for (int i = 0; i < n; ++i) {
    if (cluster
            ->PutSync(table, SyntheticTableLayout::KeyOf(base + i), "value")
            .ok()) {
      ++ok;
    }
  }
  return ok;
}

}  // namespace

int main() {
  ClusterOptions options;
  options.engine.page_size = 4096;
  options.storage_nodes_per_az = 4;
  options.repair.detection_threshold = Seconds(2);
  AuroraCluster cluster(options);
  (void)cluster.BootstrapSync();
  (void)cluster.CreateTableSync("t");
  PageId table = *cluster.TableAnchorSync("t");

  printf("== baseline: %d/50 writes committed\n",
         WriteRows(&cluster, table, 0, 50));

  // 1. Lose an entire AZ: the 4/6 write quorum still holds with the four
  //    replicas in the two surviving AZs (§2.1 design point b).
  printf("\n-- failing AZ 1 for five minutes --\n");
  cluster.failure_injector()->FailAz(1, Minutes(5));
  printf("== writes during AZ outage: %d/50 committed\n",
         WriteRows(&cluster, table, 100, 50));

  // 2. AZ+1: one more node down. Reads (3/6 quorum machinery + known-
  //    complete segments) still work (§2.1 design point a).
  const PgMembership& members = cluster.control_plane()->membership(0);
  for (sim::NodeId node : members.nodes) {
    if (cluster.topology()->az_of(node) != 1) {
      printf("-- also crashing storage node %u --\n", node);
      cluster.failure_injector()->CrashNode(node, Minutes(5));
      break;
    }
  }
  auto read = cluster.GetSync(table, SyntheticTableLayout::KeyOf(0));
  printf("== read under AZ+1: %s\n",
         read.ok() ? "OK" : read.status().ToString().c_str());
  cluster.RunFor(Minutes(6));  // let everything come back

  // 3. Lossy network: writer retries give quorum; gossip converges the
  //    stragglers (Figure 4 step 4).
  printf("\n-- 2%% message loss --\n");
  cluster.network()->set_drop_probability(0.02);
  printf("== writes under loss: %d/50 committed\n",
         WriteRows(&cluster, table, 200, 50));
  cluster.network()->set_drop_probability(0);
  cluster.RunFor(Seconds(5));
  uint64_t filled = 0;
  for (size_t i = 0; i < cluster.num_storage_nodes(); ++i) {
    filled += cluster.storage_node(i)->stats().gossip_records_filled;
  }
  printf("== gossip backfilled %llu records\n",
         static_cast<unsigned long long>(filled));

  // 4. Permanent node loss: the repair manager migrates its segments to a
  //    healthy host by copying state from a peer (§2.2 — MTTR is transfer
  //    time).
  sim::NodeId victim = cluster.control_plane()->membership(0).nodes[2];
  printf("\n-- permanently killing storage node %u --\n", victim);
  cluster.failure_injector()->CrashNode(victim, 0);
  cluster.RunUntil(
      [&] {
        return cluster.repair_manager()->stats().completed > 0;
      },
      Minutes(5));
  printf("== repairs completed: %llu (first took %.2f s)\n",
         static_cast<unsigned long long>(
             cluster.repair_manager()->stats().completed),
         cluster.repair_manager()->repair_durations().empty()
             ? 0.0
             : ToSeconds(cluster.repair_manager()->repair_durations()[0]));

  printf("\n== final check: all rows still readable: ");
  int readable = 0;
  for (int base : {0, 100, 200}) {
    for (int i = 0; i < 50; ++i) {
      if (cluster.GetSync(table, SyntheticTableLayout::KeyOf(base + i)).ok()) {
        ++readable;
      }
    }
  }
  printf("%d/150\n", readable);
  return 0;
}
