// Point-in-time restore: the storage fleet continuously stages the redo
// log to S3 (Figure 4 step 6); this example "fat-fingers" a destructive
// write, then restores a brand-new cluster from the archive to the moment
// just before the mistake.
//
//   ./build/examples/point_in_time_restore

#include <cstdio>

#include "harness/cluster.h"
#include "harness/restore.h"
#include "harness/synthetic_table.h"

using namespace aurora;  // examples only

int main() {
  ClusterOptions options;
  options.engine.page_size = 4096;
  options.storage.backup_interval = Millis(20);
  AuroraCluster prod(options);
  (void)prod.BootstrapSync();
  (void)prod.CreateTableSync("orders");
  PageId orders = *prod.TableAnchorSync("orders");

  for (int i = 0; i < 100; ++i) {
    (void)prod.PutSync(orders, SyntheticTableLayout::KeyOf(i),
                       "order-" + std::to_string(i));
  }
  prod.RunFor(Seconds(2));  // backups catch up with the SCL
  Lsn good_point = prod.writer()->vdl();
  printf("100 orders written; archive is caught up at LSN %llu\n",
         static_cast<unsigned long long>(good_point));

  // The incident: someone deletes half the orders.
  for (int i = 0; i < 50; ++i) {
    (void)prod.DeleteSync(orders, SyntheticTableLayout::KeyOf(i));
  }
  prod.RunFor(Seconds(2));
  printf("incident: 50 orders deleted (and the deletions are durable "
         "and archived)\n");
  printf("  order 7 on prod now: %s\n",
         prod.GetSync(orders, SyntheticTableLayout::KeyOf(7)).ok()
             ? "present"
             : "GONE");

  // Restore a fresh cluster to the pre-incident point.
  AuroraCluster restored(options);
  Status s = RestoreClusterFromS3(prod.s3(), &restored, good_point);
  printf("\nrestore to LSN %llu: %s\n",
         static_cast<unsigned long long>(good_point),
         s.ToString().c_str());
  PageId restored_orders = *restored.TableAnchorSync("orders");
  int present = 0;
  for (int i = 0; i < 100; ++i) {
    if (restored.GetSync(restored_orders, SyntheticTableLayout::KeyOf(i))
            .ok()) {
      ++present;
    }
  }
  printf("orders present on the restored cluster: %d/100\n", present);
  printf("  order 7 on restore: %s\n",
         restored.GetSync(restored_orders, SyntheticTableLayout::KeyOf(7)).ok()
             ? "present"
             : "gone");
  return 0;
}
