#ifndef AURORA_QUORUM_AVAILABILITY_H_
#define AURORA_QUORUM_AVAILABILITY_H_

#include <cstdint>

#include "common/random.h"
#include "common/units.h"
#include "quorum/quorum.h"

namespace aurora {

/// Analytic and Monte-Carlo durability model for §2 ("Durability at Scale"):
/// quantifies why 2/3 quorums are inadequate under AZ-correlated failures
/// and how segmenting (small MTTR) shrinks the double-fault window.
struct DurabilityParams {
  /// Mean time to failure of one segment replica (background noise, §2.1).
  double node_mttf_hours = 10000.0;
  /// Mean time to repair one segment (10 GB at 10 Gbps ~ 10 s, §2.2).
  double segment_mttr_seconds = 10.0;
  /// Number of protection groups in the fleet under study.
  uint64_t num_pgs = 100000;
  /// Mission time over which loss probability is evaluated.
  double horizon_hours = 24.0 * 365;
};

struct DurabilityReport {
  /// Probability that one specific PG loses its read (durability) quorum
  /// from independent failures alone within the horizon.
  double pg_quorum_loss_prob = 0;
  /// Probability that an AZ failure combined with concurrent independent
  /// failures breaks quorum for at least one PG.
  double az_plus_noise_loss_prob = 0;
  /// Expected fleet-wide quorum-loss events over the horizon.
  double expected_fleet_events = 0;
};

class AvailabilityModel {
 public:
  AvailabilityModel(QuorumConfig quorum, DurabilityParams params)
      : quorum_(quorum), params_(params) {}

  /// Closed-form (steady-state, independent failures) estimate.
  DurabilityReport Analytic() const;

  /// Monte-Carlo simulation of one PG's replica lifetimes, with optional AZ
  /// failure events at the given rate (failures/hour). Returns the fraction
  /// of trials in which durability quorum was lost within the horizon.
  double MonteCarloLossProb(uint64_t trials, double az_failure_rate_per_hour,
                            Random* rng) const;

  /// Segment repair time for a given segment size and network bandwidth —
  /// the §2.2 "10GB in 10s on 10Gbps" computation.
  static double RepairSeconds(uint64_t segment_bytes, double bandwidth_bps) {
    return static_cast<double>(segment_bytes) * 8.0 / bandwidth_bps;
  }

 private:
  QuorumConfig quorum_;
  DurabilityParams params_;
};

}  // namespace aurora

#endif  // AURORA_QUORUM_AVAILABILITY_H_
