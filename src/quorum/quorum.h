#ifndef AURORA_QUORUM_QUORUM_H_
#define AURORA_QUORUM_QUORUM_H_

#include <bitset>
#include <cstdint>

#include "log/types.h"

namespace aurora {

/// Upper bound on V in any quorum scheme: WriteTracker records acks in a
/// fixed-width bitset of this many slots, so configurations beyond it are
/// rejected by QuorumConfig::Valid() rather than silently corrupting the
/// tracker.
inline constexpr int kMaxQuorumVotes = 16;

/// Quorum configuration (V, V_w, V_r) per §2.1. Aurora's design point is
/// V=6, V_w=4, V_r=3: tolerate "AZ+1" for reads (lose a whole AZ plus one
/// more node and still read), and a whole AZ for writes.
struct QuorumConfig {
  int votes = 6;
  int write_quorum = 4;
  int read_quorum = 3;

  static QuorumConfig Aurora() { return {6, 4, 3}; }
  /// The classic 2/3 scheme the paper argues is inadequate (§2.1).
  static QuorumConfig TwoOfThree() { return {3, 2, 2}; }

  /// Gifford's consistency rules: reads see the latest write
  /// (V_r + V_w > V) and writes are ordered (V_w > V/2); V is additionally
  /// capped at kMaxQuorumVotes, the WriteTracker's capacity.
  bool Valid() const {
    return votes > 0 && votes <= kMaxQuorumVotes && write_quorum > 0 &&
           read_quorum > 0 && write_quorum <= votes && read_quorum <= votes &&
           read_quorum + write_quorum > votes && 2 * write_quorum > votes;
  }

  int write_fault_tolerance() const { return votes - write_quorum; }
  int read_fault_tolerance() const { return votes - read_quorum; }
};

/// Tracks acknowledgements for one replicated write (a log batch sent to the
/// six segment replicas of a protection group).
class WriteTracker {
 public:
  /// Capacity of the ack bitset; QuorumConfig::Valid() rejects schemes
  /// with more votes than this.
  static constexpr int kMaxVotes = kMaxQuorumVotes;

  explicit WriteTracker(QuorumConfig config) : config_(config) {}

  /// Records an ack from replica `idx` (0-based). Returns true if this ack
  /// is the one that achieves the write quorum.
  bool Ack(int idx) {
    if (idx < 0 || idx >= config_.votes || idx >= kMaxVotes ||
        acked_.test(idx)) {
      return false;
    }
    acked_.set(idx);
    ++count_;
    return count_ == config_.write_quorum;
  }

  bool achieved() const { return count_ >= config_.write_quorum; }
  int acks() const { return count_; }
  bool has_ack_from(int idx) const {
    return idx >= 0 && idx < config_.votes && idx < kMaxVotes &&
           acked_.test(idx);
  }

 private:
  QuorumConfig config_;
  std::bitset<kMaxVotes> acked_;
  int count_ = 0;
};

}  // namespace aurora

#endif  // AURORA_QUORUM_QUORUM_H_
