#include "quorum/availability.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace aurora {

namespace {

double Binomial(int n, int k) {
  double r = 1;
  for (int i = 0; i < k; ++i) {
    r = r * (n - i) / (i + 1);
  }
  return r;
}

}  // namespace

DurabilityReport AvailabilityModel::Analytic() const {
  DurabilityReport report;
  const int v = quorum_.votes;
  // Durability is lost when fewer than read_quorum replicas survive, i.e.
  // more than (v - read_quorum) concurrent failures.
  const int tolerable = v - quorum_.read_quorum;

  // Steady-state probability that one replica is down: MTTR / (MTTF + MTTR).
  const double mttf_s = params_.node_mttf_hours * 3600.0;
  const double mttr_s = params_.segment_mttr_seconds;
  const double p_down = mttr_s / (mttf_s + mttr_s);

  // P(more than `tolerable` of v replicas down at once), independent.
  double p_loss_instant = 0;
  for (int k = tolerable + 1; k <= v; ++k) {
    p_loss_instant += Binomial(v, k) * std::pow(p_down, k) *
                      std::pow(1 - p_down, v - k);
  }
  // Rate of entering the loss state ~ (failure rate of one more node while
  // already `tolerable` are down). Approximate expected events over the
  // horizon via the instantaneous probability divided by the repair window.
  const double horizon_s = params_.horizon_hours * 3600.0;
  const double events_per_pg = p_loss_instant * horizon_s / mttr_s;
  report.pg_quorum_loss_prob = 1 - std::exp(-events_per_pg);
  report.expected_fleet_events =
      events_per_pg * static_cast<double>(params_.num_pgs);

  // AZ + noise: an AZ failure removes 2 of 6 replicas (2 copies per AZ).
  // Quorum then needs the remaining (v - 2) to hold read_quorum, i.e.
  // tolerates (v - 2 - read_quorum) more failures. For Aurora 6/4/3 this is
  // one more; for 2/3 quorums it is zero — the paper's core argument.
  const int after_az = v - 2 * v / 6;  // replicas outside the failed AZ
  const int tolerable_after_az = after_az - quorum_.read_quorum;
  if (tolerable_after_az < 0) {
    report.az_plus_noise_loss_prob = 1.0;
  } else {
    double p = 0;
    for (int k = tolerable_after_az + 1; k <= after_az; ++k) {
      p += Binomial(after_az, k) * std::pow(p_down, k) *
           std::pow(1 - p_down, after_az - k);
    }
    report.az_plus_noise_loss_prob = p;
  }
  return report;
}

double AvailabilityModel::MonteCarloLossProb(uint64_t trials,
                                             double az_failure_rate_per_hour,
                                             Random* rng) const {
  const int v = quorum_.votes;
  const int need = quorum_.read_quorum;
  const double horizon = params_.horizon_hours;
  const double mttf = params_.node_mttf_hours;
  const double mttr_h = params_.segment_mttr_seconds / 3600.0;

  uint64_t losses = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    // Event-driven walk over one PG: replica failures are Poisson per
    // replica; repairs deterministic MTTR. AZ failures (affecting replicas
    // 2a..2a+1) are Poisson with the given rate and last 1 hour.
    std::vector<double> down_until(v, -1.0);
    double now = 0;
    bool lost = false;
    while (now < horizon && !lost) {
      // Next independent failure anywhere in the PG.
      double gap = rng->Exponential(mttf / v);
      double az_gap = az_failure_rate_per_hour > 0
                          ? rng->Exponential(1.0 / az_failure_rate_per_hour)
                          : horizon * 2;
      now += std::min(gap, az_gap);
      if (now >= horizon) break;
      if (az_gap < gap) {
        // An AZ (random of 3) fails for 1 hour, taking down the replicas
        // placed in it (2 of 6 for Aurora, 1 of 3 for the classic scheme).
        int per_az = std::max(1, v / 3);
        int az = static_cast<int>(rng->Uniform(3));
        for (int r = az * per_az; r < (az + 1) * per_az && r < v; ++r) {
          down_until[r] = std::max(down_until[r], now + 1.0);
        }
      } else {
        int replica = static_cast<int>(rng->Uniform(v));
        down_until[replica] = std::max(down_until[replica], now + mttr_h);
      }
      int alive = 0;
      for (double d : down_until) {
        if (d < now) ++alive;
      }
      if (alive < need) lost = true;
    }
    if (lost) ++losses;
  }
  return static_cast<double>(losses) / static_cast<double>(trials);
}

}  // namespace aurora
