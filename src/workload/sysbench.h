#ifndef AURORA_WORKLOAD_SYSBENCH_H_
#define AURORA_WORKLOAD_SYSBENCH_H_

#include <functional>
#include <memory>

#include "common/histogram.h"
#include "common/random.h"
#include "harness/client_api.h"
#include "harness/synthetic_table.h"
#include "sim/event_loop.h"

namespace aurora {

/// SysBench-style OLTP driver (§6.1 uses SysBench read-only, write-only and
/// OLTP): N closed-loop connections (zero think time) issuing point selects
/// and index updates against one table.
struct SysbenchOptions {
  enum class Mode { kReadOnly, kWriteOnly, kOltp };
  Mode mode = Mode::kOltp;
  int connections = 50;
  uint64_t table_rows = 100000;
  size_t value_size = 100;
  /// 0 = uniform; >0 = Zipf-skewed key choice.
  double zipf_theta = 0.0;
  /// Statement mix per transaction (classic sysbench OLTP: 10 point
  /// selects + 4 index updates; write-only: updates only; read-only:
  /// selects only).
  int point_selects = 10;
  int index_updates = 4;
  SimDuration duration = Seconds(10);
  SimDuration warmup = Seconds(1);
  uint64_t seed = 1;
};

struct WorkloadResults {
  uint64_t txns = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;
  SimDuration measured = 0;
  Histogram txn_latency_us;

  double tps() const {
    return measured ? static_cast<double>(txns) / ToSeconds(measured) : 0;
  }
  double reads_per_sec() const {
    return measured ? static_cast<double>(reads) / ToSeconds(measured) : 0;
  }
  double writes_per_sec() const {
    return measured ? static_cast<double>(writes) / ToSeconds(measured) : 0;
  }
};

class SysbenchDriver {
 public:
  /// `table` is the anchor of a table laid out with SyntheticTableLayout
  /// key/value conventions (rows keyed KeyOf(0..table_rows)).
  SysbenchDriver(sim::EventLoop* loop, ClientApi* client, PageId table,
                 SysbenchOptions options);

  SysbenchDriver(const SysbenchDriver&) = delete;
  SysbenchDriver& operator=(const SysbenchDriver&) = delete;

  /// Launches the connections; `done` fires when the measured window ends
  /// and every in-flight transaction has drained.
  void Run(std::function<void()> done);

  const WorkloadResults& results() const { return results_; }

 private:
  struct Connection {
    Random rng;
    bool busy = false;
    explicit Connection(uint64_t seed) : rng(seed) {}
  };

  void StartTxn(int conn);
  void NextStatement(int conn, TxnId txn, int reads_left, int writes_left,
                     SimTime started);
  void FinishTxn(int conn, TxnId txn, SimTime started, bool failed);
  uint64_t PickRow(Connection* c);
  void MaybeFinish();

  sim::EventLoop* loop_;
  ClientApi* client_;
  PageId table_;
  SysbenchOptions options_;
  Zipf zipf_;
  std::vector<std::unique_ptr<Connection>> connections_;
  WorkloadResults results_;
  bool measuring_ = false;
  bool stopping_ = false;
  int in_flight_ = 0;
  SimTime measure_start_ = 0;
  std::function<void()> done_;
};

}  // namespace aurora

#endif  // AURORA_WORKLOAD_SYSBENCH_H_
