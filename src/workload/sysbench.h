#ifndef AURORA_WORKLOAD_SYSBENCH_H_
#define AURORA_WORKLOAD_SYSBENCH_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/random.h"
#include "harness/client_api.h"
#include "harness/synthetic_table.h"
#include "sim/event_loop.h"

namespace aurora {

/// SysBench-style OLTP driver (§6.1 uses SysBench read-only, write-only and
/// OLTP): N closed-loop connections (zero think time) issuing point selects
/// and index updates against one table.
struct SysbenchOptions {
  enum class Mode { kReadOnly, kWriteOnly, kOltp };
  Mode mode = Mode::kOltp;
  int connections = 50;
  uint64_t table_rows = 100000;
  size_t value_size = 100;
  /// 0 = uniform; >0 = Zipf-skewed key choice.
  double zipf_theta = 0.0;
  /// Statement mix per transaction (classic sysbench OLTP: 10 point
  /// selects + 4 index updates; write-only: updates only; read-only:
  /// selects only).
  int point_selects = 10;
  int index_updates = 4;
  SimDuration duration = Seconds(10);
  SimDuration warmup = Seconds(1);
  uint64_t seed = 1;
};

struct WorkloadResults {
  uint64_t txns = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;
  SimDuration measured = 0;
  Histogram txn_latency_us;

  double tps() const {
    return measured ? static_cast<double>(txns) / ToSeconds(measured) : 0;
  }
  double reads_per_sec() const {
    return measured ? static_cast<double>(reads) / ToSeconds(measured) : 0;
  }
  double writes_per_sec() const {
    return measured ? static_cast<double>(writes) / ToSeconds(measured) : 0;
  }
};

class SysbenchDriver {
 public:
  /// `table` is the anchor of a table laid out with SyntheticTableLayout
  /// key/value conventions (rows keyed KeyOf(0..table_rows)).
  SysbenchDriver(sim::EventLoop* loop, ClientApi* client, PageId table,
                 SysbenchOptions options);

  SysbenchDriver(const SysbenchDriver&) = delete;
  SysbenchDriver& operator=(const SysbenchDriver&) = delete;

  /// Launches the connections; `done` fires when the measured window ends
  /// and every in-flight transaction has drained.
  void Run(std::function<void()> done);

  const WorkloadResults& results() const { return results_; }

  /// Enables interval-windowed metrics: during the measured window the
  /// driver snapshots `registry` every `interval` of sim-time and stores
  /// the Diff against the previous snapshot, so counters become
  /// per-interval deltas (a time series for the bench JSON). Call before
  /// Run(); `registry` must outlive the run.
  ///
  /// `timer_loop` is where the snapshot timers run; for a sharded cluster
  /// pass the loop's control shard (snapshots must observe a consistent
  /// global cut, which a shard-local event cannot guarantee under
  /// multi-worker execution — control events run at window barriers with
  /// every shard quiesced). nullptr = the driver's own loop (single-shard
  /// runs).
  void EnableIntervalMetrics(const MetricsRegistry* registry,
                             SimDuration interval,
                             sim::EventLoop* timer_loop = nullptr);
  /// Per-interval windows, oldest first; the final window covers whatever
  /// partial interval remained when measurement stopped.
  const std::vector<MetricsSnapshot>& metric_windows() const {
    return metric_windows_;
  }

 private:
  struct Connection {
    Random rng;
    bool busy = false;
    explicit Connection(uint64_t seed) : rng(seed) {}
  };

  void StartTxn(int conn);
  void NextStatement(int conn, TxnId txn, int reads_left, int writes_left,
                     SimTime started);
  void FinishTxn(int conn, TxnId txn, SimTime started, bool failed);
  uint64_t PickRow(Connection* c);
  void MaybeFinish();
  void MetricsTick();
  sim::EventLoop* TimerLoop();

  sim::EventLoop* loop_;
  ClientApi* client_;
  PageId table_;
  SysbenchOptions options_;
  Zipf zipf_;
  std::vector<std::unique_ptr<Connection>> connections_;
  WorkloadResults results_;
  bool measuring_ = false;
  bool stopping_ = false;
  int in_flight_ = 0;
  SimTime measure_start_ = 0;
  std::function<void()> done_;
  const MetricsRegistry* metrics_registry_ = nullptr;
  SimDuration metrics_interval_ = 0;
  sim::EventLoop* metrics_loop_ = nullptr;
  bool windows_active_ = false;
  MetricsSnapshot metrics_base_;
  std::vector<MetricsSnapshot> metric_windows_;
};

}  // namespace aurora

#endif  // AURORA_WORKLOAD_SYSBENCH_H_
