#include "workload/tpcc.h"

#include <cstdio>

namespace aurora {

namespace {
std::string FormatKey(const char* prefix, uint64_t a, uint64_t b, uint64_t c) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%s:%06llu:%03llu:%08llu", prefix,
           static_cast<unsigned long long>(a),
           static_cast<unsigned long long>(b),
           static_cast<unsigned long long>(c));
  return buf;
}
}  // namespace

std::string TpccDriver::WarehouseKey(int w) { return FormatKey("w", w, 0, 0); }
std::string TpccDriver::DistrictKey(int w, int d) {
  return FormatKey("d", w, d, 0);
}
std::string TpccDriver::CustomerKey(int w, int d, int c) {
  return FormatKey("c", w, d, c);
}
std::string TpccDriver::StockKey(int w, int i) {
  return FormatKey("s", w, 0, i);
}
std::string TpccDriver::OrderKey(int w, int d, uint64_t o) {
  return FormatKey("o", w, d, o);
}

TpccDriver::TpccDriver(sim::EventLoop* loop, ClientApi* client,
                       TpccTables tables, TpccOptions options)
    : loop_(loop), client_(client), tables_(tables), options_(options) {
  Random seeder(options_.seed);
  for (int i = 0; i < options_.connections; ++i) {
    connections_.push_back(std::make_unique<Connection>(seeder.Next()));
  }
}

void TpccDriver::Load(std::function<void(Status)> done) {
  // Sequential autocommit inserts (one row at a time keeps the event queue
  // small); warehouses and districts are tiny, customers/stock moderate.
  struct LoadState {
    int w = 1, d = 0, c = 0, s = 0;
    int phase = 0;  // 0=warehouse 1=district 2=customer 3=stock 4=done
  };
  auto st = std::make_shared<LoadState>();
  // Weak self-reference: the in-flight Put/Commit continuations hold the
  // strong one, so the loader frees itself at phase 4 (no self-cycle).
  auto step = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_step = step;
  *step = [this, st, weak_step, done]() {
    PageId table = kInvalidPage;
    std::string key, value;
    switch (st->phase) {
      case 0:
        table = tables_.warehouse;
        key = WarehouseKey(st->w);
        value = "ytd=0";
        if (++st->w > options_.warehouses) {
          st->phase = 1;
          st->w = 1;
        }
        break;
      case 1:
        table = tables_.district;
        key = DistrictKey(st->w, st->d);
        value = "next_o=1;ytd=0";
        if (++st->d >= 10) {
          st->d = 0;
          if (++st->w > options_.warehouses) {
            st->phase = 2;
            st->w = 1;
          }
        }
        break;
      case 2:
        table = tables_.customer;
        key = CustomerKey(st->w, st->d, st->c);
        value = "balance=0";
        if (++st->c >= options_.customers_per_district) {
          st->c = 0;
          if (++st->d >= 10) {
            st->d = 0;
            if (++st->w > options_.warehouses) {
              st->phase = 3;
              st->w = 1;
            }
          }
        }
        break;
      case 3:
        table = tables_.stock;
        key = StockKey(st->w, st->s);
        value = "qty=91";
        if (++st->s >= options_.stock_items) {
          st->s = 0;
          if (++st->w > options_.warehouses) st->phase = 4;
        }
        break;
      default:
        done(Status::OK());
        return;
    }
    TxnId txn = client_->Begin();
    client_->Put(txn, table, key, value,
                 [this, txn, step = weak_step.lock(), done](Status s) {
      if (!s.ok()) {
        done(s);
        return;
      }
      client_->Commit(txn, [step, done](Status cs) {
        if (!cs.ok()) {
          done(cs);
          return;
        }
        if (step) (*step)();
      });
    });
  };
  (*step)();
}

void TpccDriver::Run(std::function<void()> done) {
  done_ = std::move(done);
  client_->SetActiveConnections(options_.connections);
  loop_->Schedule(options_.warmup, [this] {
    measuring_ = true;
    measure_start_ = loop_->now();
    results_ = TpccResults{};
  });
  loop_->Schedule(options_.warmup + options_.duration, [this] {
    measuring_ = false;
    stopping_ = true;
    results_.measured = loop_->now() - measure_start_;
    MaybeFinish();
  });
  for (int i = 0; i < options_.connections; ++i) {
    StartTxn(i);
  }
}

void TpccDriver::MaybeFinish() {
  if (stopping_ && in_flight_ == 0 && done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done();
  }
}

void TpccDriver::StartTxn(int conn) {
  if (stopping_) {
    MaybeFinish();
    return;
  }
  ++in_flight_;
  uint64_t pick = connections_[conn]->rng.Uniform(100);
  if (pick < 45) {
    NewOrder(conn);
  } else if (pick < 88) {
    Payment(conn);
  } else {
    ReadOnlyTxn(conn);
  }
}

void TpccDriver::TxnDone(int conn, bool committed, bool is_new_order,
                         SimTime started) {
  if (measuring_) {
    if (!committed) {
      ++results_.aborts;
    } else if (is_new_order) {
      ++results_.new_orders;
      results_.new_order_latency_us.Record(loop_->now() - started);
    }
  }
  --in_flight_;
  StartTxn(conn);
}

void TpccDriver::NewOrder(int conn) {
  Connection* c = connections_[conn].get();
  const int w = 1 + static_cast<int>(c->rng.Uniform(options_.warehouses));
  const int d = static_cast<int>(c->rng.Uniform(10));
  const SimTime started = loop_->now();
  TxnId txn = client_->Begin();

  // 1. Read the warehouse row (tax rate).
  client_->Get(txn, tables_.warehouse, WarehouseKey(w),
               [this, conn, txn, w, d, started](Result<std::string> r) {
    if (!r.ok()) {
      TxnDone(conn, false, true, started);
      return;
    }
    // 2. Update the district's next-order id — THE hot row.
    uint64_t order_id = next_order_id_++;
    client_->Put(txn, tables_.district, DistrictKey(w, d),
                 "next_o=" + std::to_string(order_id),
                 [this, conn, txn, w, d, order_id, started](Status s) {
      if (!s.ok()) {
        TxnDone(conn, false, true, started);
        return;
      }
      // 3. Insert the order row, then update `items_per_order` stock rows.
      client_->Put(txn, tables_.orders, OrderKey(w, d, order_id),
                   "lines=" + std::to_string(options_.items_per_order),
                   [this, conn, txn, w, started](Status os) {
        if (!os.ok()) {
          TxnDone(conn, false, true, started);
          return;
        }
        auto line = std::make_shared<std::function<void(int)>>();
        std::weak_ptr<std::function<void(int)>> weak_line = line;
        *line = [this, conn, txn, w, started, weak_line](int remaining) {
          if (remaining == 0) {
            client_->Commit(txn, [this, conn, started](Status cs) {
              TxnDone(conn, cs.ok(), true, started);
            });
            return;
          }
          Connection* c = connections_[conn].get();
          int item = static_cast<int>(c->rng.Uniform(options_.stock_items));
          // 1% of items come from a remote warehouse (spec behaviour).
          int supply_w = w;
          if (c->rng.Bernoulli(0.01)) {
            supply_w = 1 + static_cast<int>(
                               c->rng.Uniform(options_.warehouses));
          }
          client_->Put(txn, tables_.stock, StockKey(supply_w, item),
                       "qty=" + std::to_string(c->rng.Uniform(90) + 1),
                       [this, conn, started, line = weak_line.lock(),
                        remaining](Status ss) {
            if (!ss.ok()) {
              TxnDone(conn, false, true, started);
              return;
            }
            if (line) (*line)(remaining - 1);
          });
        };
        (*line)(options_.items_per_order);
      });
    });
  });
}

void TpccDriver::Payment(int conn) {
  Connection* c = connections_[conn].get();
  const int w = 1 + static_cast<int>(c->rng.Uniform(options_.warehouses));
  const int d = static_cast<int>(c->rng.Uniform(10));
  const int cust =
      static_cast<int>(c->rng.Uniform(options_.customers_per_district));
  const SimTime started = loop_->now();
  TxnId txn = client_->Begin();
  // Warehouse YTD — the hottest row in TPC-C.
  client_->Put(txn, tables_.warehouse, WarehouseKey(w), "ytd+",
               [this, conn, txn, w, d, cust, started](Status s) {
    if (!s.ok()) {
      TxnDone(conn, false, false, started);
      return;
    }
    client_->Put(txn, tables_.district, DistrictKey(w, d), "ytd+",
                 [this, conn, txn, w, d, cust, started](Status ds) {
      if (!ds.ok()) {
        TxnDone(conn, false, false, started);
        return;
      }
      client_->Put(txn, tables_.customer, CustomerKey(w, d, cust),
                   "balance-", [this, conn, txn, started](Status ps) {
        if (!ps.ok()) {
          TxnDone(conn, false, false, started);
          return;
        }
        client_->Commit(txn, [this, conn, started](Status cs) {
          if (measuring_ && cs.ok()) ++results_.payments;
          TxnDone(conn, cs.ok(), false, started);
        });
      });
    });
  });
}

void TpccDriver::ReadOnlyTxn(int conn) {
  Connection* c = connections_[conn].get();
  const int w = 1 + static_cast<int>(c->rng.Uniform(options_.warehouses));
  const int d = static_cast<int>(c->rng.Uniform(10));
  const int cust =
      static_cast<int>(c->rng.Uniform(options_.customers_per_district));
  const SimTime started = loop_->now();
  TxnId txn = client_->Begin();
  // OrderStatus / StockLevel flavour: a few point reads.
  client_->Get(txn, tables_.customer, CustomerKey(w, d, cust),
               [this, conn, txn, w, started](Result<std::string> r) {
    (void)r;
    Connection* c = connections_[conn].get();
    int item = static_cast<int>(c->rng.Uniform(options_.stock_items));
    client_->Get(txn, tables_.stock, StockKey(w, item),
                 [this, conn, txn, started](Result<std::string> r2) {
      (void)r2;
      client_->Commit(txn, [this, conn, started](Status cs) {
        if (measuring_ && cs.ok()) ++results_.other;
        TxnDone(conn, cs.ok(), false, started);
      });
    });
  });
}

}  // namespace aurora
