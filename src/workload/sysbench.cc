#include "workload/sysbench.h"

namespace aurora {

SysbenchDriver::SysbenchDriver(sim::EventLoop* loop, ClientApi* client,
                               PageId table, SysbenchOptions options)
    : loop_(loop),
      client_(client),
      table_(table),
      options_(options),
      zipf_(options.table_rows, options.zipf_theta) {
  Random seeder(options_.seed);
  for (int i = 0; i < options_.connections; ++i) {
    connections_.push_back(std::make_unique<Connection>(seeder.Next()));
  }
}

uint64_t SysbenchDriver::PickRow(Connection* c) {
  if (options_.zipf_theta > 0) return zipf_.Sample(&c->rng);
  return c->rng.Uniform(options_.table_rows);
}

void SysbenchDriver::EnableIntervalMetrics(const MetricsRegistry* registry,
                                           SimDuration interval,
                                           sim::EventLoop* timer_loop) {
  metrics_registry_ = registry;
  metrics_interval_ = interval;
  metrics_loop_ = timer_loop;
}

sim::EventLoop* SysbenchDriver::TimerLoop() {
  return metrics_loop_ != nullptr ? metrics_loop_ : loop_;
}

void SysbenchDriver::MetricsTick() {
  if (!windows_active_) return;
  MetricsSnapshot now = metrics_registry_->Snapshot();
  metric_windows_.push_back(now.Diff(metrics_base_));
  metrics_base_ = std::move(now);
  TimerLoop()->Schedule(metrics_interval_, [this] { MetricsTick(); });
}

void SysbenchDriver::Run(std::function<void()> done) {
  done_ = std::move(done);
  client_->SetActiveConnections(options_.connections);
  loop_->Schedule(options_.warmup, [this] {
    measuring_ = true;
    measure_start_ = loop_->now();
    results_ = WorkloadResults{};
  });
  loop_->Schedule(options_.warmup + options_.duration, [this] {
    measuring_ = false;
    stopping_ = true;
    results_.measured = loop_->now() - measure_start_;
    MaybeFinish();
  });
  if (metrics_registry_ != nullptr && metrics_interval_ > 0) {
    sim::EventLoop* tl = TimerLoop();
    tl->Schedule(options_.warmup, [this] {
      metrics_base_ = metrics_registry_->Snapshot();
      windows_active_ = true;
      TimerLoop()->Schedule(metrics_interval_, [this] { MetricsTick(); });
    });
    // Scheduled before any tick, so at an exact interval boundary this
    // runs first: it captures the final (possibly partial) window and the
    // same-time tick then no-ops on !windows_active_.
    tl->Schedule(options_.warmup + options_.duration, [this] {
      if (!windows_active_) return;
      metric_windows_.push_back(
          metrics_registry_->Snapshot().Diff(metrics_base_));
      windows_active_ = false;
    });
  }
  for (int i = 0; i < options_.connections; ++i) {
    StartTxn(i);
  }
}

void SysbenchDriver::MaybeFinish() {
  if (stopping_ && in_flight_ == 0 && done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done();
  }
}

void SysbenchDriver::StartTxn(int conn) {
  if (stopping_) {
    MaybeFinish();
    return;
  }
  ++in_flight_;
  TxnId txn = client_->Begin();
  int reads = 0, writes = 0;
  switch (options_.mode) {
    case SysbenchOptions::Mode::kReadOnly:
      reads = options_.point_selects;
      break;
    case SysbenchOptions::Mode::kWriteOnly:
      writes = options_.index_updates;
      break;
    case SysbenchOptions::Mode::kOltp:
      reads = options_.point_selects;
      writes = options_.index_updates;
      break;
  }
  NextStatement(conn, txn, reads, writes, loop_->now());
}

void SysbenchDriver::NextStatement(int conn, TxnId txn, int reads_left,
                                   int writes_left, SimTime started) {
  Connection* c = connections_[conn].get();
  if (reads_left == 0 && writes_left == 0) {
    client_->Commit(txn, [this, conn, txn, started](Status s) {
      FinishTxn(conn, txn, started, !s.ok());
    });
    return;
  }
  // Interleave: reads first, then writes (sysbench executes selects before
  // the update section).
  if (reads_left > 0) {
    uint64_t row = PickRow(c);
    client_->Get(txn, table_, SyntheticTableLayout::KeyOf(row),
                 [this, conn, txn, reads_left, writes_left,
                  started](Result<std::string> r) {
                   if (measuring_) ++results_.reads;
                   if (!r.ok() && !r.status().IsNotFound()) {
                     FinishTxn(conn, txn, started, true);
                     return;
                   }
                   NextStatement(conn, txn, reads_left - 1, writes_left,
                                 started);
                 });
    return;
  }
  uint64_t row = PickRow(c);
  std::string value(options_.value_size,
                    static_cast<char>('A' + c->rng.Uniform(26)));
  client_->Put(txn, table_, SyntheticTableLayout::KeyOf(row), value,
               [this, conn, txn, reads_left, writes_left, started](Status s) {
                 if (measuring_) ++results_.writes;
                 if (!s.ok()) {
                   // Deadlock/timeout: the engine already rolled back.
                   if (measuring_) ++results_.errors;
                   --in_flight_;
                   StartTxn(conn);
                   return;
                 }
                 NextStatement(conn, txn, reads_left, writes_left - 1,
                               started);
               });
}

void SysbenchDriver::FinishTxn(int conn, TxnId txn, SimTime started,
                               bool failed) {
  (void)txn;
  if (measuring_) {
    if (failed) {
      ++results_.errors;
    } else {
      ++results_.txns;
      results_.txn_latency_us.Record(loop_->now() - started);
    }
  }
  --in_flight_;
  StartTxn(conn);
}

}  // namespace aurora
