#ifndef AURORA_WORKLOAD_TPCC_H_
#define AURORA_WORKLOAD_TPCC_H_

#include <functional>
#include <memory>
#include <string>

#include "common/histogram.h"
#include "common/random.h"
#include "harness/client_api.h"
#include "sim/event_loop.h"

namespace aurora {

/// TPC-C-style driver in the spirit of the Percona tpcc-mysql variant used
/// for Table 5. The defining property the paper leans on is hot-row
/// contention: every NewOrder serializes on its district's next-order-id
/// row, every Payment updates its warehouse's YTD row — with thousands of
/// connections over a few hundred warehouses, lock waits dominate.
///
/// Transaction mix (weights follow the TPC-C spec):
///   NewOrder 45%  — read warehouse, update district (hot), ~10 stock
///                   updates, order + order-line inserts
///   Payment  43%  — update warehouse (hottest), district, customer
///   OrderStatus 4%, Delivery 4%, StockLevel 4% — read-mostly
/// tpmC counts committed NewOrders per minute.
struct TpccOptions {
  int warehouses = 100;
  int connections = 500;
  int items_per_order = 10;
  int customers_per_district = 30;  // scaled from TPC-C's 3000
  int stock_items = 1000;           // scaled from 100000 (per warehouse)
  SimDuration duration = Seconds(10);
  SimDuration warmup = Seconds(1);
  uint64_t seed = 1;
};

struct TpccResults {
  uint64_t new_orders = 0;
  uint64_t payments = 0;
  uint64_t other = 0;
  uint64_t aborts = 0;
  SimDuration measured = 0;
  Histogram new_order_latency_us;

  /// Committed NewOrder transactions per minute.
  double tpmC() const {
    return measured
               ? static_cast<double>(new_orders) / ToSeconds(measured) * 60.0
               : 0;
  }
};

/// Table anchors the driver operates on. Create with SetupTables (real,
/// populated via the write path) or attach synthetic ones for the big
/// read-mostly tables.
struct TpccTables {
  PageId warehouse = kInvalidPage;
  PageId district = kInvalidPage;
  PageId customer = kInvalidPage;
  PageId stock = kInvalidPage;
  PageId orders = kInvalidPage;
};

class TpccDriver {
 public:
  TpccDriver(sim::EventLoop* loop, ClientApi* client, TpccTables tables,
             TpccOptions options);

  TpccDriver(const TpccDriver&) = delete;
  TpccDriver& operator=(const TpccDriver&) = delete;

  /// Populates warehouse/district/customer/stock rows through the write
  /// path (orders starts empty); `done` fires when the load is durable.
  void Load(std::function<void(Status)> done);

  /// Runs the mix for warmup + duration; `done` fires once drained.
  void Run(std::function<void()> done);

  const TpccResults& results() const { return results_; }

  // Key helpers (shared with benches/tests).
  static std::string WarehouseKey(int w);
  static std::string DistrictKey(int w, int d);
  static std::string CustomerKey(int w, int d, int c);
  static std::string StockKey(int w, int i);
  static std::string OrderKey(int w, int d, uint64_t o);

 private:
  struct Connection {
    Random rng;
    explicit Connection(uint64_t seed) : rng(seed) {}
  };

  void StartTxn(int conn);
  void NewOrder(int conn);
  void Payment(int conn);
  void ReadOnlyTxn(int conn);
  void TxnDone(int conn, bool committed, bool is_new_order, SimTime started);
  void Fail(int conn, TxnId txn);
  void MaybeFinish();

  sim::EventLoop* loop_;
  ClientApi* client_;
  TpccTables tables_;
  TpccOptions options_;
  std::vector<std::unique_ptr<Connection>> connections_;
  TpccResults results_;
  uint64_t next_order_id_ = 1;  // client-side order-id spreader
  bool measuring_ = false;
  bool stopping_ = false;
  int in_flight_ = 0;
  SimTime measure_start_ = 0;
  std::function<void()> done_;
};

}  // namespace aurora

#endif  // AURORA_WORKLOAD_TPCC_H_
