#include "common/status.h"

namespace aurora {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kStale:
      return "Stale";
    case Status::Code::kFenced:
      return "Fenced";
    case Status::Code::kStaleConfig:
      return "StaleConfig";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace aurora
