#include "common/coding.h"

namespace aurora {

bool GetFixed16(Slice* input, uint16_t* value) {
  if (input->size() < 2) return false;
  *value = DecodeFixed16(input->data());
  input->remove_prefix(2);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  const char* p = input->data();
  const char* limit = p + input->size();
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      input->remove_prefix(p - input->data());
      return true;
    }
  }
  return false;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace aurora
