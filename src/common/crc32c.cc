#include "common/crc32c.h"

#include <array>

namespace aurora::crc32c {

namespace {

// Table generated at startup from the Castagnoli polynomial (reflected form
// 0x82F63B78). Trivially-destructible array, constant-initialized lazily via
// a function-local static.
struct Table {
  std::array<uint32_t, 256> t;
  constexpr Table() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[i] = crc;
    }
  }
};

constexpr Table kTable;

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable.t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace aurora::crc32c
