#ifndef AURORA_COMMON_RESULT_H_
#define AURORA_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace aurora {

/// A value-or-error wrapper: holds either a `T` or a non-OK `Status`.
/// Access to `value()` on an error Result is a programming error (asserted).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status, so that
  /// `return value;` and `return Status::NotFound();` both work.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace aurora

#endif  // AURORA_COMMON_RESULT_H_
