#ifndef AURORA_COMMON_INLINE_FUNCTION_H_
#define AURORA_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace aurora {

/// A move-only `std::function` replacement with small-buffer-optimized
/// storage, built for the simulator hot path: every event the EventLoop
/// dispatches, every Network handler invocation and every Disk completion
/// goes through one of these. Callables whose size fits `kInlineBytes`
/// (and that are nothrow-move-constructible) live inside the object — no
/// heap allocation per event/message/IO in steady state; larger or
/// throwing-move callables fall back to a heap allocation exactly like
/// `std::function`.
///
/// Differences from `std::function` that matter here:
///  - move-only: callables may hold move-only state (unique_ptrs, pending
///    Pages) instead of being forced into shared_ptr indirection;
///  - moving is O(kInlineBytes) (the buffer is memmoved via the callable's
///    move constructor), which is why containers of these should reserve.
template <typename Signature, size_t kInlineBytes = 64>
class InlineFunction;

template <typename R, typename... Args, size_t kInlineBytes>
class InlineFunction<R(Args...), kInlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineBytes &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(f));
      ops_ = &InlineOps<Decayed>::kOps;
    } else {
      ::new (static_cast<void*>(storage_))
          Decayed*(new Decayed(std::forward<F>(f)));
      ops_ = &HeapOps<Decayed>::kOps;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->relocate(other.storage_, storage_);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  // Const like std::function::operator(): lambdas captured by value in an
  // enclosing non-mutable lambda stay callable.
  R operator()(Args... args) const {
    return ops_->invoke(const_cast<char*>(storage_),
                        std::forward<Args>(args)...);
  }

  /// Destroys the held callable (releasing everything it captured).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(char* storage, Args&&... args);
    // Move-constructs the callable into `dst` and destroys the source.
    void (*relocate)(char* src, char* dst);
    void (*destroy)(char* storage);
  };

  template <typename F>
  struct InlineOps {
    static R Invoke(char* storage, Args&&... args) {
      return (*std::launder(reinterpret_cast<F*>(storage)))(
          std::forward<Args>(args)...);
    }
    static void Relocate(char* src, char* dst) {
      F* from = std::launder(reinterpret_cast<F*>(src));
      ::new (static_cast<void*>(dst)) F(std::move(*from));
      from->~F();
    }
    static void Destroy(char* storage) {
      std::launder(reinterpret_cast<F*>(storage))->~F();
    }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy};
  };

  template <typename F>
  struct HeapOps {
    static F* ptr(char* storage) {
      return *std::launder(reinterpret_cast<F**>(storage));
    }
    static R Invoke(char* storage, Args&&... args) {
      return (*ptr(storage))(std::forward<Args>(args)...);
    }
    static void Relocate(char* src, char* dst) {
      ::new (static_cast<void*>(dst)) F*(ptr(src));
    }
    static void Destroy(char* storage) { delete ptr(storage); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy};
  };

  static_assert(kInlineBytes >= sizeof(void*),
                "inline buffer must hold at least a pointer");

  alignas(std::max_align_t) char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace aurora

#endif  // AURORA_COMMON_INLINE_FUNCTION_H_
