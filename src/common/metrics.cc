#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <variant>

namespace aurora {

HistogramSummary HistogramSummary::Of(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.mean = h.mean();
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.P50();
  s.p95 = h.P95();
  s.p99 = h.P99();
  return s;
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    uint64_t before = it == base.counters.end() ? 0 : it->second;
    out.counters[name] = value >= before ? value - before : 0;
  }
  out.gauges = gauges;
  for (const auto& [name, summary] : histograms) {
    HistogramSummary s = summary;
    auto it = base.histograms.find(name);
    if (it != base.histograms.end() && s.count >= it->second.count) {
      s.count -= it->second.count;
    }
    out.histograms[name] = s;
  }
  return out;
}

void MetricsSnapshot::MergeWithPrefix(const std::string& prefix,
                                      const MetricsSnapshot& other) {
  const std::string p = prefix.empty() ? "" : prefix + ".";
  for (const auto& [name, value] : other.counters) counters[p + name] = value;
  for (const auto& [name, value] : other.gauges) gauges[p + name] = value;
  for (const auto& [name, value] : other.histograms) {
    histograms[p + name] = value;
  }
}

namespace json {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Number(double v) {
  if (!std::isfinite(v)) return "0";
  // Integral doubles print without a fraction so counters stay integers.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace json

namespace {

/// Tree node for the hierarchical JSON emitter. A node is either an object
/// (children) or a leaf value; a name that is both a leaf and a prefix of
/// deeper names keeps its leaf under the reserved child key "_".
struct JsonNode {
  std::variant<std::monostate, uint64_t, double, HistogramSummary> leaf;
  std::map<std::string, std::unique_ptr<JsonNode>> children;
};

JsonNode* Descend(JsonNode* root, const std::string& dotted) {
  JsonNode* node = root;
  size_t start = 0;
  while (true) {
    size_t dot = dotted.find('.', start);
    std::string part = dotted.substr(start, dot - start);
    if (part.empty()) part = "_";
    auto& child = node->children[part];
    if (!child) child = std::make_unique<JsonNode>();
    node = child.get();
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  if (!std::holds_alternative<std::monostate>(node->leaf) ||
      !node->children.empty()) {
    // Name collision (leaf vs prefix, or duplicate across kinds): park the
    // value one level down so both survive.
    auto& child = node->children["_"];
    if (!child) child = std::make_unique<JsonNode>();
    node = child.get();
  }
  return node;
}

void EmitHistogram(const HistogramSummary& h, std::string* out) {
  *out += "{\"count\":" + json::Number(static_cast<double>(h.count));
  *out += ",\"mean\":" + json::Number(h.mean);
  *out += ",\"min\":" + json::Number(static_cast<double>(h.min));
  *out += ",\"max\":" + json::Number(static_cast<double>(h.max));
  *out += ",\"p50\":" + json::Number(static_cast<double>(h.p50));
  *out += ",\"p95\":" + json::Number(static_cast<double>(h.p95));
  *out += ",\"p99\":" + json::Number(static_cast<double>(h.p99));
  *out += "}";
}

void EmitNode(const JsonNode& node, std::string* out) {
  if (node.children.empty()) {
    if (const auto* c = std::get_if<uint64_t>(&node.leaf)) {
      *out += json::Number(static_cast<double>(*c));
    } else if (const auto* g = std::get_if<double>(&node.leaf)) {
      *out += json::Number(*g);
    } else if (const auto* h = std::get_if<HistogramSummary>(&node.leaf)) {
      EmitHistogram(*h, out);
    } else {
      *out += "null";
    }
    return;
  }
  *out += "{";
  bool first = true;
  for (const auto& [key, child] : node.children) {
    if (!first) *out += ",";
    first = false;
    *out += "\"" + json::Escape(key) + "\":";
    EmitNode(*child, out);
  }
  *out += "}";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  JsonNode root;
  for (const auto& [name, value] : counters) {
    Descend(&root, name)->leaf = value;
  }
  for (const auto& [name, value] : gauges) {
    Descend(&root, name)->leaf = value;
  }
  for (const auto& [name, value] : histograms) {
    Descend(&root, name)->leaf = value;
  }
  std::string out;
  if (root.children.empty()) return "{}";
  EmitNode(root, &out);
  return out;
}

void MetricsRegistry::RegisterCounter(const std::string& name, CounterFn fn) {
  MutexLock lock(&mu_);
  counters_[name] = std::move(fn);
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const uint64_t* value) {
  MutexLock lock(&mu_);
  counters_[name] = [value] { return *value; };
}

void MetricsRegistry::RegisterGauge(const std::string& name, GaugeFn fn) {
  MutexLock lock(&mu_);
  gauges_[name] = std::move(fn);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        HistogramFn fn) {
  MutexLock lock(&mu_);
  histograms_[name] = std::move(fn);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const Histogram* h) {
  MutexLock lock(&mu_);
  histograms_[name] = [h] { return h; };
}

void MetricsRegistry::UnregisterPrefix(const std::string& prefix) {
  MutexLock lock(&mu_);
  auto erase_prefix = [&prefix](auto* map) {
    auto it = map->lower_bound(prefix);
    while (it != map->end() && it->first.compare(0, prefix.size(), prefix) == 0) {
      it = map->erase(it);
    }
  };
  erase_prefix(&counters_);
  erase_prefix(&gauges_);
  erase_prefix(&histograms_);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, fn] : counters_) snap.counters[name] = fn();
  for (const auto& [name, fn] : gauges_) snap.gauges[name] = fn();
  for (const auto& [name, fn] : histograms_) {
    const Histogram* h = fn();
    if (h != nullptr) snap.histograms[name] = HistogramSummary::Of(*h);
  }
  return snap;
}

}  // namespace aurora
