#include "common/logging.h"

#include <cstdarg>

namespace aurora {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace log_internal {

void Logf(LogLevel level, const char* file, int line, const char* fmt, ...) {
  const char* name = "?";
  switch (level) {
    case LogLevel::kDebug:
      name = "DEBUG";
      break;
    case LogLevel::kInfo:
      name = "INFO";
      break;
    case LogLevel::kWarn:
      name = "WARN";
      break;
    case LogLevel::kError:
      name = "ERROR";
      break;
  }
  // Strip directories from the path for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  fprintf(stderr, "[%s %s:%d] ", name, base, line);
  va_list ap;
  va_start(ap, fmt);
  vfprintf(stderr, fmt, ap);
  va_end(ap);
  fputc('\n', stderr);
}

}  // namespace log_internal
}  // namespace aurora
