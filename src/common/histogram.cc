#include "common/histogram.h"

#include <bit>
#include <cstdio>

namespace aurora {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  int msb = 63 - std::countl_zero(value);
  int octave = msb - kSubBucketBits + 1;
  auto sub = static_cast<int>(value >> octave) & (kSubBuckets - 1);
  int idx = (octave + 1) * kSubBuckets + sub;
  return idx < kBuckets ? idx : kBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  int octave = bucket / kSubBuckets - 1;
  int sub = bucket % kSubBuckets;
  // Values v in this bucket satisfy (v >> octave) == sub, so the largest is
  // ((sub + 1) << octave) - 1.
  return (static_cast<uint64_t>(sub + 1) << octave) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)]++;
  ++count_;
  sum_ += value;
  if (count_ == 1 || value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  buckets_.assign(kBuckets, 0);
  count_ = sum_ = min_ = max_ = 0;
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  auto target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.9999);
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      uint64_t ub = BucketUpperBound(i);
      return ub > max_ ? max_ : ub;
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "n=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
           static_cast<unsigned long long>(count_), mean(),
           static_cast<unsigned long long>(P50()),
           static_cast<unsigned long long>(P95()),
           static_cast<unsigned long long>(P99()),
           static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace aurora
