#ifndef AURORA_COMMON_STATUS_H_
#define AURORA_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace aurora {

/// Error-handling model for the whole library (no exceptions on the data
/// path, RocksDB-style). A `Status` is either `ok()` or carries a coarse
/// `Code` plus a human-readable message. Functions that produce a value use
/// `Result<T>` (see result.h).
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kBusy = 5,            // back-pressure (e.g. LAL limit reached)
    kTimedOut = 6,        // quorum not reached in time
    kAborted = 7,         // transaction aborted (deadlock, conflict)
    kUnavailable = 8,     // quorum lost / node down
    kNotSupported = 9,
    kOutOfRange = 10,
    kStale = 11,          // stale epoch / superseded request
    kFenced = 12,         // writer fenced out by a newer volume epoch
    kStaleConfig = 13,    // sender's PG membership config epoch is stale
  };

  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = "") {
    return Status(Code::kIOError, msg);
  }
  static Status Busy(std::string_view msg = "") {
    return Status(Code::kBusy, msg);
  }
  static Status TimedOut(std::string_view msg = "") {
    return Status(Code::kTimedOut, msg);
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(Code::kAborted, msg);
  }
  static Status Unavailable(std::string_view msg = "") {
    return Status(Code::kUnavailable, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(Code::kNotSupported, msg);
  }
  static Status OutOfRange(std::string_view msg = "") {
    return Status(Code::kOutOfRange, msg);
  }
  static Status Stale(std::string_view msg = "") {
    return Status(Code::kStale, msg);
  }
  static Status Fenced(std::string_view msg = "") {
    return Status(Code::kFenced, msg);
  }
  static Status StaleConfig(std::string_view msg = "") {
    return Status(Code::kStaleConfig, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsStale() const { return code_ == Code::kStale; }
  bool IsFenced() const { return code_ == Code::kFenced; }
  bool IsStaleConfig() const { return code_ == Code::kStaleConfig; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace aurora

#endif  // AURORA_COMMON_STATUS_H_
