#ifndef AURORA_COMMON_UNITS_H_
#define AURORA_COMMON_UNITS_H_

#include <cstdint>

namespace aurora {

/// Size and time unit helpers. Simulated time is in microseconds throughout.

constexpr uint64_t KiB(uint64_t n) { return n * 1024ull; }
constexpr uint64_t MiB(uint64_t n) { return n * 1024ull * 1024ull; }
constexpr uint64_t GiB(uint64_t n) { return n * 1024ull * 1024ull * 1024ull; }

/// Simulated time, microseconds since simulation start.
using SimTime = uint64_t;
/// A duration in simulated microseconds.
using SimDuration = uint64_t;

constexpr SimDuration Micros(uint64_t n) { return n; }
constexpr SimDuration Millis(uint64_t n) { return n * 1000ull; }
constexpr SimDuration Seconds(uint64_t n) { return n * 1000000ull; }
constexpr SimDuration Minutes(uint64_t n) { return n * 60ull * 1000000ull; }

constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e6; }

}  // namespace aurora

#endif  // AURORA_COMMON_UNITS_H_
