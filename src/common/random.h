#ifndef AURORA_COMMON_RANDOM_H_
#define AURORA_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace aurora {

/// Deterministic, fast PRNG (xorshift64*). Every simulation component owns
/// its own seeded instance so runs are reproducible regardless of the order
/// in which components draw numbers.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(hi >= lo);
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return (Next() >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
  }

  /// Exponentially distributed with the given mean (> 0).
  double Exponential(double mean) {
    assert(mean > 0);
    double u = NextDouble();
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

  /// Approximately normal via the Box-Muller transform.
  double Normal(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 1e-18;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647 * u2);
    return mean + stddev * z;
  }

  /// Log-normal with the given median and sigma of the underlying normal.
  /// Heavy-tailed: used to model latency outliers ("the tail at scale").
  double LogNormal(double median, double sigma) {
    return median * std::exp(sigma * Normal(0.0, 1.0));
  }

  /// Returns a fresh generator whose seed is derived from this one; use to
  /// give each component an independent deterministic stream.
  Random Fork() { return Random(Next() ^ 0xD1B54A32D192ED03ull); }

 private:
  uint64_t state_;
};

/// Zipf-distributed integers in [0, n): rank-frequency skew used for hot-row
/// workloads (TPC-C-style contention). Uses the rejection-inversion method of
/// W. Hormann & G. Derflinger, which needs O(1) setup and no tables.
class Zipf {
 public:
  /// theta in (0, 1) is the classic YCSB skew parameter; values near 1 are
  /// highly skewed. theta == 0 degenerates to uniform.
  Zipf(uint64_t n, double theta) : n_(n), theta_(theta) {
    assert(n > 0);
    if (theta_ > 0) {
      zeta2_ = ZetaStatic(2, theta_);
      zeta_n_ = ZetaStatic(n_, theta_);
      alpha_ = 1.0 / (1.0 - theta_);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
             (1.0 - zeta2_ / zeta_n_);
    }
  }

  uint64_t Sample(Random* rng) const {
    if (theta_ <= 0) return rng->Uniform(n_);
    double u = rng->NextDouble();
    double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto v = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  static double ZetaStatic(uint64_t n, double theta) {
    // Exact for small n, approximated by the integral for large n.
    if (n <= 10000) {
      double sum = 0;
      for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
      return sum;
    }
    double sum = 0;
    for (uint64_t i = 1; i <= 10000; ++i) sum += 1.0 / std::pow(i, theta);
    // Integral tail from 10000 to n of x^-theta dx.
    sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
            std::pow(10000.0, 1.0 - theta)) /
           (1.0 - theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zeta2_ = 0, zeta_n_ = 0, alpha_ = 0, eta_ = 0;
};

}  // namespace aurora

#endif  // AURORA_COMMON_RANDOM_H_
