#ifndef AURORA_COMMON_CODING_H_
#define AURORA_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace aurora {

/// Little-endian fixed-width and varint encodings used by the log record,
/// page, and message wire formats. All encoders append to a std::string;
/// all decoders read from a Slice and advance it, returning false on
/// malformed/truncated input (never crashing on corrupt bytes).

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  memcpy(buf, &v, 2);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void EncodeFixed32(char* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* p) {
  uint16_t v;
  memcpy(&v, p, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  memcpy(&v, p, 8);
  return v;
}

bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// LEB128-style varints (max 10 bytes for 64-bit).
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Length-prefixed byte strings: varint32 length followed by the bytes.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Number of bytes PutVarint64 would emit for `v`.
int VarintLength(uint64_t v);

}  // namespace aurora

#endif  // AURORA_COMMON_CODING_H_
