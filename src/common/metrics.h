#ifndef AURORA_COMMON_METRICS_H_
#define AURORA_COMMON_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/histogram.h"
#include "common/thread_annotations.h"

namespace aurora {

/// Point-in-time digest of one Histogram (percentiles are computed at
/// snapshot time so a snapshot stays meaningful after the source resets).
struct HistogramSummary {
  uint64_t count = 0;
  double mean = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;

  static HistogramSummary Of(const Histogram& h);
};

/// Materialized state of a MetricsRegistry: flat dotted-name -> value maps.
/// Snapshots are plain values — they can be stored, diffed against a later
/// snapshot, merged under a prefix and serialized long after the components
/// that produced them are gone.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Interval view `this - base`: counters become deltas (clamped at zero
  /// if the source was reset), gauges keep this snapshot's value (they are
  /// levels, not totals), histograms keep this snapshot's percentiles with
  /// the count diffed (percentile state is cumulative; see DESIGN.md).
  MetricsSnapshot Diff(const MetricsSnapshot& base) const;

  /// Copies every entry of `other` into this snapshot with `prefix.`
  /// prepended (used by the bench harness to nest a cluster's metrics
  /// under e.g. "aurora.").
  void MergeWithPrefix(const std::string& prefix, const MetricsSnapshot& other);

  /// Serializes to a single JSON document. Dotted names become nested
  /// objects ("a.b.c": 1 -> {"a":{"b":{"c":1}}}); histograms become objects
  /// with count/mean/min/max/p50/p95/p99 fields. If a name is both a leaf
  /// and a prefix of other names, the leaf is emitted under the key "_".
  std::string ToJson() const;
};

/// A process-wide (well, cluster-wide — the simulation is one process)
/// registry of named metrics. Pull-based: components keep their existing
/// Stats structs and cheap increment sites; registration installs a closure
/// that reads the current value at snapshot time. This keeps the hot paths
/// free of registry lookups and lets one registry outlive component
/// replacement (closures can indirect through owner pointers, e.g. the
/// cluster's current writer after a failover).
///
/// Naming convention (see DESIGN.md §Metrics): lower_snake components
/// joined by dots, hierarchy first — "engine.writer.txns_committed",
/// "storage.node3.gossip_rounds", "net.total.bytes_sent".
class MetricsRegistry {
 public:
  using CounterFn = std::function<uint64_t()>;
  using GaugeFn = std::function<double()>;
  using HistogramFn = std::function<const Histogram*()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Monotonically increasing totals. Re-registering a name replaces the
  /// previous reader (components re-register after being rebuilt).
  void RegisterCounter(const std::string& name, CounterFn fn);
  /// Convenience: reads a plain counter member. The pointee must outlive
  /// the registry (true for all cluster-owned Stats structs).
  void RegisterCounter(const std::string& name, const uint64_t* value);

  /// Instantaneous levels (queue depths, watermarks, ratios).
  void RegisterGauge(const std::string& name, GaugeFn fn);

  void RegisterHistogram(const std::string& name, HistogramFn fn);
  void RegisterHistogram(const std::string& name, const Histogram* h);

  /// Drops every metric whose name starts with `prefix` (component
  /// teardown).
  void UnregisterPrefix(const std::string& prefix);

  size_t size() const {
    MutexLock lock(&mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Reads every registered metric now.
  MetricsSnapshot Snapshot() const;

  /// Snapshot().ToJson() — the one-call machine-readable dump.
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  // PDES prep (DESIGN.md §10.4): the registry is the first structure that
  // stays shared once the event loop shards — every partition registers and
  // snapshots through one instance. Registration/snapshot are cold paths
  // (component setup, bench teardown), so a plain mutex is fine; the
  // annotations let Clang's -Wthread-safety prove no unguarded access ever
  // lands as partitions are introduced.
  mutable Mutex mu_;
  std::map<std::string, CounterFn> counters_ GUARDED_BY(mu_);
  std::map<std::string, GaugeFn> gauges_ GUARDED_BY(mu_);
  std::map<std::string, HistogramFn> histograms_ GUARDED_BY(mu_);
};

namespace json {
/// Escapes `s` for inclusion in a JSON string literal (no quotes added).
std::string Escape(const std::string& s);
/// Formats a double as a JSON number (finite; NaN/inf become 0).
std::string Number(double v);
}  // namespace json

}  // namespace aurora

#endif  // AURORA_COMMON_METRICS_H_
