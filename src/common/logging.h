#ifndef AURORA_COMMON_LOGGING_H_
#define AURORA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace aurora {

/// Minimal diagnostic logging. The library is quiet by default; tests and
/// benches can raise the level. AURORA_CHECK aborts on violated internal
/// invariants (programming errors, not recoverable conditions — those use
/// Status).
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are suppressed.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {
void Logf(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));
}  // namespace log_internal

#define AURORA_LOG(level, ...)                                              \
  do {                                                                      \
    if (static_cast<int>(level) >=                                          \
        static_cast<int>(::aurora::GetLogLevel())) {                        \
      ::aurora::log_internal::Logf(level, __FILE__, __LINE__, __VA_ARGS__); \
    }                                                                       \
  } while (0)

#define AURORA_DEBUG(...) AURORA_LOG(::aurora::LogLevel::kDebug, __VA_ARGS__)
#define AURORA_INFO(...) AURORA_LOG(::aurora::LogLevel::kInfo, __VA_ARGS__)
#define AURORA_WARN(...) AURORA_LOG(::aurora::LogLevel::kWarn, __VA_ARGS__)
#define AURORA_ERROR(...) AURORA_LOG(::aurora::LogLevel::kError, __VA_ARGS__)

#define AURORA_CHECK(cond, ...)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::aurora::log_internal::Logf(::aurora::LogLevel::kError, __FILE__,    \
                                   __LINE__, "CHECK failed: %s", #cond);    \
      abort();                                                              \
    }                                                                       \
  } while (0)

}  // namespace aurora

#endif  // AURORA_COMMON_LOGGING_H_
