#ifndef AURORA_COMMON_HISTOGRAM_H_
#define AURORA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aurora {

/// Log-bucketed latency histogram (HdrHistogram-lite). Records non-negative
/// values (we use microseconds) and answers percentile queries with bounded
/// relative error (~4%). Used by the benchmark harness for P50/P95/P99 series
/// (Figures 9 & 10) and by internal metrics.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }

  /// Value at percentile p in [0, 100].
  uint64_t Percentile(double p) const;

  uint64_t P50() const { return Percentile(50); }
  uint64_t P95() const { return Percentile(95); }
  uint64_t P99() const { return Percentile(99); }

  /// One-line summary, e.g. "n=1000 mean=42us p50=40 p95=90 p99=120 max=300".
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBuckets = (64 - kSubBucketBits) * kSubBuckets;

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace aurora

#endif  // AURORA_COMMON_HISTOGRAM_H_
