#ifndef AURORA_COMMON_THREAD_ANNOTATIONS_H_
#define AURORA_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

/// Clang thread-safety-analysis annotations for the structures the PDES
/// work will contend on (DESIGN.md §10.4). Under Clang with
/// `-Wthread-safety` (the CI lint job) the compiler statically proves that
/// every access to a `GUARDED_BY(mu)` member happens while `mu` is held;
/// GCC compiles the attributes away to nothing.
///
/// Conventions for this codebase:
///  - a shared structure declares `mutable aurora::Mutex mu_;` and marks
///    every member it protects `GUARDED_BY(mu_)`;
///  - methods that require the caller to hold the lock are annotated
///    `REQUIRES(mu_)`; public methods take the lock themselves with
///    `aurora::MutexLock lock(&mu_);`
///  - single-threaded-by-design state (everything owned by one EventLoop
///    shard) stays unannotated — annotations mark the *shared* surface,
///    which is exactly what must stay small for conservative PDES.

#if defined(__clang__)
#define AURORA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AURORA_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) AURORA_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY AURORA_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) AURORA_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) AURORA_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  AURORA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) AURORA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) AURORA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  AURORA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) AURORA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) AURORA_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  AURORA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace aurora {

/// std::mutex wrapper carrying the `capability` attribute so it can appear
/// in GUARDED_BY/REQUIRES clauses.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock holder (`aurora::MutexLock lock(&mu_);`).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace aurora

#endif  // AURORA_COMMON_THREAD_ANNOTATIONS_H_
