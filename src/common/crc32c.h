#ifndef AURORA_COMMON_CRC32C_H_
#define AURORA_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace aurora::crc32c {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41), software table-driven
/// implementation. Used for log record checksums, page checksums and the
/// storage-node scrubber (Figure 4 step 8).

/// Returns the CRC of `data[0..n-1]` continuing from `init_crc`, which must
/// be the result of a previous Extend() (or 0 for a fresh computation).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC of `data[0..n-1]`.
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masked CRC, RocksDB-style: storing the CRC of data that itself contains
/// CRCs can lead to coincidental collisions, so stored CRCs are masked.
constexpr uint32_t kMaskDelta = 0xa282ead8ul;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace aurora::crc32c

#endif  // AURORA_COMMON_CRC32C_H_
