#include "harness/bulk_load.h"

namespace aurora {

Result<const SyntheticTableLayout*> AttachSyntheticTable(
    AuroraCluster* cluster, SyntheticCatalog* catalog,
    const std::string& name, uint64_t rows, size_t value_size) {
  const SyntheticTableLayout* layout = nullptr;
  Result<PageId> result = Status::TimedOut("attach did not finish");
  bool done = false;
  size_t page_size = cluster->writer()->options().page_size;
  cluster->writer()->AttachPreloadedTable(
      name,
      [&](PageId first) -> uint64_t {
        auto t = std::make_unique<SyntheticTableLayout>(first, rows, page_size,
                                                        value_size);
        layout = catalog->Add(std::move(t));
        return layout->page_count();
      },
      [&](Result<PageId> r) {
        result = std::move(r);
        done = true;
      });
  cluster->RunUntil([&] { return done; }, Seconds(60));
  if (!result.ok()) return result.status();
  cluster->control_plane()->SetPageSynthesizer(
      [catalog](PageId page, Page* out) {
        return catalog->BuildPage(page, out);
      });
  return layout;
}

Result<const SyntheticTableLayout*> AttachSyntheticTableMysql(
    MysqlCluster* cluster, SyntheticCatalog* catalog, const std::string& name,
    uint64_t rows, size_t value_size) {
  const SyntheticTableLayout* layout = nullptr;
  Result<PageId> result = Status::TimedOut("attach did not finish");
  bool done = false;
  size_t page_size = cluster->db()->page_size();
  cluster->db()->AttachPreloadedTable(
      name,
      [&](PageId first) -> uint64_t {
        auto t = std::make_unique<SyntheticTableLayout>(first, rows, page_size,
                                                        value_size);
        layout = catalog->Add(std::move(t));
        return layout->page_count();
      },
      [&](Result<PageId> r) {
        result = std::move(r);
        done = true;
      });
  cluster->RunUntil([&] { return done; }, Seconds(60));
  if (!result.ok()) return result.status();
  cluster->db()->set_page_synthesizer([catalog](PageId page, Page* out) {
    return catalog->BuildPage(page, out);
  });
  return layout;
}

}  // namespace aurora
