#include "harness/synthetic_table.h"

#include <algorithm>
#include <cstdio>

#include "common/coding.h"
#include "common/logging.h"

namespace aurora {

namespace {
constexpr double kLeafFill = 0.7;      // headroom for in-place growth
constexpr double kInternalFill = 0.9;
constexpr size_t kKeyBytes = 19;       // "key%016llu"
}  // namespace

SyntheticTableLayout::SyntheticTableLayout(PageId first_page, uint64_t rows,
                                           size_t page_size,
                                           size_t value_size)
    : first_page_(first_page),
      rows_(rows),
      page_size_(page_size),
      value_size_(value_size) {
  const size_t usable = page_size - Page::kHeaderSize;
  // Leaf entry: varint(keylen)+key + varint(vallen) + stamp + value + slot.
  const size_t leaf_entry = 1 + kKeyBytes + 2 + 1 + value_size + 2;
  rows_per_leaf_ = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(usable) * kLeafFill /
                             static_cast<double>(leaf_entry)));
  // Internal entry: key + 8-byte child + slot.
  const size_t internal_entry = 1 + kKeyBytes + 1 + 8 + 2;
  uint64_t fanout = std::max<uint64_t>(
      2, static_cast<uint64_t>(static_cast<double>(usable) * kInternalFill /
                               static_cast<double>(internal_entry)));

  uint64_t n = (rows_ + rows_per_leaf_ - 1) / rows_per_leaf_;
  if (n == 0) n = 1;
  PageId next = first_page_ + 1;  // first_page_ itself is the anchor
  levels_.push_back({next, n, 1});
  next += n;
  while (n > 1) {
    uint64_t parents = (n + fanout - 1) / fanout;
    levels_.push_back({next, parents, fanout});
    next += parents;
    n = parents;
  }
  total_pages_ = next - first_page_;
}

std::string SyntheticTableLayout::KeyOf(uint64_t row) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%016llu",
           static_cast<unsigned long long>(row));
  return buf;
}

std::string SyntheticTableLayout::UserValueOf(uint64_t row) const {
  return std::string(value_size_, static_cast<char>('a' + row % 23));
}

std::string SyntheticTableLayout::StoredValueOf(uint64_t row) const {
  // Row-codec stamp (schema version 0) + payload, matching Database's
  // EncodeRow.
  std::string v;
  PutVarint32(&v, 0);
  v += UserValueOf(row);
  return v;
}

PageId SyntheticTableLayout::LeafOf(uint64_t row) const {
  return levels_[0].first + row / rows_per_leaf_;
}

uint64_t SyntheticTableLayout::FirstRowOf(size_t level_idx,
                                          uint64_t node_idx) const {
  uint64_t leaf = node_idx;
  for (size_t l = level_idx; l > 0; --l) {
    leaf *= levels_[l].fanout;
  }
  return leaf * rows_per_leaf_;
}

PageId SyntheticTableLayout::PageOf(size_t level_idx,
                                    uint64_t node_idx) const {
  return levels_[level_idx].first + node_idx;
}

bool SyntheticTableLayout::BuildPage(PageId page, Page* out) const {
  if (!Contains(page)) return false;
  if (page == first_page_) {
    BuildAnchor(out);
    return true;
  }
  for (size_t l = 0; l < levels_.size(); ++l) {
    const Level& level = levels_[l];
    if (page >= level.first && page < level.first + level.count) {
      if (l == 0) {
        BuildLeaf(page - level.first, out);
      } else {
        BuildInternal(l, page - level.first, out);
      }
      return true;
    }
  }
  return false;
}

void SyntheticTableLayout::BuildAnchor(Page* out) const {
  out->Format(first_page_, PageType::kMeta, 0);
  std::string root;
  PutFixed64(&root, PageOf(levels_.size() - 1, 0));
  Status s = out->InsertRecord("root", root);
  AURORA_CHECK(s.ok(), "synthetic anchor build failed");
  out->UpdateCrc();
}

void SyntheticTableLayout::BuildLeaf(uint64_t leaf_idx, Page* out) const {
  out->Format(PageOf(0, leaf_idx), PageType::kBTreeLeaf, 0);
  uint64_t lo = leaf_idx * rows_per_leaf_;
  uint64_t hi = std::min<uint64_t>(rows_, lo + rows_per_leaf_);
  for (uint64_t row = lo; row < hi; ++row) {
    Status s = out->InsertRecord(KeyOf(row), StoredValueOf(row));
    AURORA_CHECK(s.ok(), "synthetic leaf build overflow");
  }
  if (leaf_idx > 0) out->set_prev_page(PageOf(0, leaf_idx - 1));
  if (leaf_idx + 1 < levels_[0].count) {
    out->set_next_page(PageOf(0, leaf_idx + 1));
  }
  out->UpdateCrc();
}

void SyntheticTableLayout::BuildInternal(size_t level_idx, uint64_t node_idx,
                                         Page* out) const {
  const Level& level = levels_[level_idx];
  out->Format(PageOf(level_idx, node_idx), PageType::kBTreeInternal,
              static_cast<uint8_t>(level_idx));
  uint64_t child_lo = node_idx * level.fanout;
  uint64_t child_hi =
      std::min<uint64_t>(levels_[level_idx - 1].count,
                         child_lo + level.fanout);
  bool is_root =
      level_idx + 1 == levels_.size();
  for (uint64_t c = child_lo; c < child_hi; ++c) {
    std::string key;
    if (is_root && c == child_lo) {
      key = "";  // the root's leftmost entry covers every smaller key
    } else {
      key = KeyOf(FirstRowOf(level_idx - 1, c));
    }
    std::string child;
    PutFixed64(&child, PageOf(level_idx - 1, c));
    Status s = out->InsertRecord(key, child);
    AURORA_CHECK(s.ok(), "synthetic internal build overflow");
  }
  out->UpdateCrc();
}

}  // namespace aurora
