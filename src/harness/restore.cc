#include "harness/restore.h"

#include <algorithm>
#include <map>
#include <vector>

#include "log/log_record.h"
#include "storage/storage_node.h"

namespace aurora {

Status RestoreClusterFromS3(SimS3* source, AuroraCluster* fresh, Lsn upto) {
  if (fresh->control_plane()->num_pgs() != 0) {
    return Status::InvalidArgument("target cluster is not empty");
  }
  // Discover archived protection groups and their records.
  std::map<PgId, std::vector<LogRecord>> by_pg;
  Lsn max_lsn = kInvalidLsn;
  for (const std::string& key : source->ListKeys("backup/")) {
    Result<std::string> blob = source->GetSync(key);
    if (!blob.ok()) continue;
    std::vector<LogRecord> batch;
    Status s = DecodeRecordBatch(*blob, &batch);
    if (!s.ok()) return s;
    // Key format: backup/pg%06u/%020llu.
    unsigned pg = 0;
    if (sscanf(key.c_str(), "backup/pg%06u/", &pg) != 1) continue;
    for (LogRecord& rec : batch) {
      if (rec.lsn > upto) continue;
      max_lsn = std::max(max_lsn, rec.lsn);
      by_pg[static_cast<PgId>(pg)].push_back(std::move(rec));
    }
  }
  if (by_pg.empty()) return Status::NotFound("no archived log in S3");

  const size_t page_size = fresh->writer()->options().page_size;
  const PgId max_pg = by_pg.rbegin()->first;
  while (fresh->control_plane()->num_pgs() <= max_pg) {
    fresh->control_plane()->CreatePg(page_size);
  }
  // Load every replica of every PG with the archived records (the restore
  // fleet pulls objects from S3 in parallel; we model the data movement as
  // instantaneous control-plane work and let the writer's quorum recovery
  // establish consistency).
  for (auto& [pg, records] : by_pg) {
    std::sort(records.begin(), records.end(),
              [](const LogRecord& a, const LogRecord& b) {
                return a.lsn < b.lsn;
              });
    const PgMembership& members = fresh->control_plane()->membership(pg);
    for (sim::NodeId node : members.nodes) {
      StorageNode* sn = fresh->storage_node_by_id(node);
      if (sn == nullptr) continue;
      // Materializes the (empty) replica — member segments are created
      // lazily on first contact, and this restore load is the first contact.
      Segment* seg = sn->EnsureSegment(pg);
      if (seg == nullptr) continue;
      for (const LogRecord& rec : records) {
        seg->AddRecord(rec);
      }
    }
  }
  // Open the restored volume through the normal crash-recovery path: it
  // computes the VCL/VDL from the chains we just loaded, truncates any
  // incomplete suffix (e.g. an `upto` cut mid-MTR) and rolls back in-flight
  // transactions — exactly what a PITR must do.
  return fresh->RecoverSync();
}

}  // namespace aurora
