#ifndef AURORA_HARNESS_CLIENT_API_H_
#define AURORA_HARNESS_CLIENT_API_H_

#include <functional>
#include <string>

#include "baseline/mirrored_mysql.h"
#include "engine/database.h"

namespace aurora {

/// Engine-agnostic OLTP facade so workload generators (SysBench, TPC-C,
/// customer scenarios) can drive the Aurora engine and the mirrored-MySQL
/// baseline identically.
class ClientApi {
 public:
  virtual ~ClientApi() = default;

  virtual TxnId Begin() = 0;
  virtual void Put(TxnId txn, PageId table, const std::string& key,
                   const std::string& value,
                   std::function<void(Status)> done) = 0;
  virtual void Get(TxnId txn, PageId table, const std::string& key,
                   std::function<void(Result<std::string>)> done) = 0;
  virtual void Delete(TxnId txn, PageId table, const std::string& key,
                      std::function<void(Status)> done) = 0;
  virtual void Commit(TxnId txn, std::function<void(Status)> done) = 0;
  virtual void Rollback(TxnId txn, std::function<void(Status)> done) = 0;
  /// Lets drivers report the connection count (the baseline's contention
  /// model consumes it; Aurora ignores it).
  virtual void SetActiveConnections(int n) = 0;
};

class AuroraClient : public ClientApi {
 public:
  explicit AuroraClient(Database* db) : db_(db) {}

  TxnId Begin() override { return db_->Begin(); }
  void Put(TxnId txn, PageId table, const std::string& key,
           const std::string& value,
           std::function<void(Status)> done) override {
    db_->Put(txn, table, key, value, std::move(done));
  }
  void Get(TxnId txn, PageId table, const std::string& key,
           std::function<void(Result<std::string>)> done) override {
    db_->Get(txn, table, key, std::move(done));
  }
  void Delete(TxnId txn, PageId table, const std::string& key,
              std::function<void(Status)> done) override {
    db_->Delete(txn, table, key, std::move(done));
  }
  void Commit(TxnId txn, std::function<void(Status)> done) override {
    db_->Commit(txn, std::move(done));
  }
  void Rollback(TxnId txn, std::function<void(Status)> done) override {
    db_->Rollback(txn, std::move(done));
  }
  void SetActiveConnections(int) override {}

 private:
  Database* db_;
};

class MysqlClient : public ClientApi {
 public:
  explicit MysqlClient(baseline::MirroredMySql* db) : db_(db) {}

  TxnId Begin() override { return db_->Begin(); }
  void Put(TxnId txn, PageId table, const std::string& key,
           const std::string& value,
           std::function<void(Status)> done) override {
    db_->Put(txn, table, key, value, std::move(done));
  }
  void Get(TxnId txn, PageId table, const std::string& key,
           std::function<void(Result<std::string>)> done) override {
    db_->Get(txn, table, key, std::move(done));
  }
  void Delete(TxnId txn, PageId table, const std::string& key,
              std::function<void(Status)> done) override {
    db_->Delete(txn, table, key, std::move(done));
  }
  void Commit(TxnId txn, std::function<void(Status)> done) override {
    db_->Commit(txn, std::move(done));
  }
  void Rollback(TxnId txn, std::function<void(Status)> done) override {
    db_->Rollback(txn, std::move(done));
  }
  void SetActiveConnections(int n) override {
    db_->mutable_options()->active_connections = n;
  }

 private:
  baseline::MirroredMySql* db_;
};

}  // namespace aurora

#endif  // AURORA_HARNESS_CLIENT_API_H_
