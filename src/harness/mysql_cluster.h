#ifndef AURORA_HARNESS_MYSQL_CLUSTER_H_
#define AURORA_HARNESS_MYSQL_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/binlog_replica.h"
#include "baseline/mirrored_mysql.h"
#include "common/metrics.h"
#include "common/random.h"
#include "sim/event_loop.h"
#include "sim/instance.h"
#include "sim/network.h"
#include "sim/sharded_loop.h"
#include "sim/topology.h"
#include "storage/sim_s3.h"

namespace aurora {

/// Stands up the paper's comparison system (Figure 2): an active MySQL
/// instance in AZ 1 on a mirrored EBS volume, a standby in AZ 2 on its own
/// mirrored EBS volume with synchronous block-level replication, binlog
/// archival to S3, and optional asynchronous binlog replicas.
struct MysqlClusterOptions {
  sim::InstanceOptions instance = sim::R38XLarge();
  baseline::MirroredMysqlOptions mysql;
  sim::DiskOptions ebs_disk;  // provisioned-IOPS EBS profile
  sim::FabricOptions fabric;
  int num_binlog_replicas = 0;
  /// Cost for the replica's single SQL thread to re-execute one statement.
  /// Much higher than the primary's per-statement CPU: the applier runs
  /// serially and pays the row I/O the primary amortizes across many
  /// connections (MySQL 5.6-era single-threaded replication).
  SimDuration binlog_apply_cost = Micros(800);
  uint64_t seed = 42;
  /// Worker threads driving the simulation shards (PDES, DESIGN.md §11).
  /// The baseline partitions by object home — shard 0 is the whole
  /// mirrored-MySQL complex (primary + standby + EBS pairs share one
  /// engine object), shard 1 the binlog replicas. Purely an execution
  /// knob: results are byte-identical for any value.
  int sim_shards = 1;

  MysqlClusterOptions() {
    // 30K provisioned IOPS EBS volume (§6.1) — slower per-op than local
    // NVMe, network-attached.
    ebs_disk.max_iops = 30000;
    ebs_disk.write_latency = Micros(300);
    ebs_disk.read_latency = Micros(250);
  }
};

class MysqlCluster {
 public:
  explicit MysqlCluster(MysqlClusterOptions options);
  ~MysqlCluster();

  MysqlCluster(const MysqlCluster&) = delete;
  MysqlCluster& operator=(const MysqlCluster&) = delete;

  sim::ShardedEventLoop* loop() { return &loop_; }
  /// The shard loop the MySQL engine is homed on; drivers and client
  /// closures that call the engine directly must schedule here.
  sim::EventLoop* writer_loop() { return loop_.shard(0); }
  sim::Network* network() { return network_.get(); }
  baseline::MirroredMySql* db() { return db_.get(); }
  sim::Instance* instance() { return instance_.get(); }
  SimS3* s3() { return s3_.get(); }
  sim::NodeId db_node() const { return db_node_; }
  size_t num_binlog_replicas() const { return replicas_.size(); }
  baseline::BinlogReplica* binlog_replica(size_t i) {
    return replicas_[i].get();
  }

  // --- Synchronous helpers ---------------------------------------------------
  Status BootstrapSync();
  Status RecoverSync();
  Status CreateTableSync(const std::string& name);
  Result<PageId> TableAnchorSync(const std::string& name);
  Status PutSync(PageId table, const std::string& key,
                 const std::string& value);
  Result<std::string> GetSync(PageId table, const std::string& key);

  bool RunUntil(std::function<bool()> pred, SimDuration max);
  void RunFor(SimDuration d) { loop_.RunFor(d); }

  /// Registry over the baseline's stats, mirroring AuroraCluster::metrics()
  /// so benches can dump both systems through the same machinery (table 1,
  /// figure 7).
  MetricsRegistry* metrics() { return &metrics_; }
  std::string DumpMetricsJson() { return metrics_.ToJson(); }

 private:
  /// Installs pull-closures for every MysqlStats field plus WAL/checkpoint
  /// gauges and the simulator loop counters.
  void RegisterAllMetrics();

  MysqlClusterOptions options_;
  sim::ShardedEventLoop loop_;
  sim::Topology topology_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<SimS3> s3_;
  std::unique_ptr<sim::Instance> instance_;
  std::unique_ptr<baseline::MirroredMySql> db_;
  std::vector<std::unique_ptr<baseline::BinlogReplica>> replicas_;
  sim::NodeId db_node_ = sim::kInvalidNode;
  MetricsRegistry metrics_;
};

}  // namespace aurora

#endif  // AURORA_HARNESS_MYSQL_CLUSTER_H_
