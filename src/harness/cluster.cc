#include "harness/cluster.h"

#include "common/logging.h"

namespace aurora {

AuroraCluster::AuroraCluster(ClusterOptions options)
    : options_(options), topology_(options.num_azs) {
  Random rng(options_.seed);
  network_ = std::make_unique<sim::Network>(&loop_, &topology_,
                                            options_.fabric, rng.Fork());
  control_plane_ = std::make_unique<ControlPlane>(&topology_, rng.Fork());
  s3_ = std::make_unique<SimS3>(&loop_, SimS3::Options{}, rng.Fork());
  injector_ = std::make_unique<sim::FailureInjector>(&loop_, network_.get(),
                                                     &topology_, rng.Fork());

  // Writer instance in AZ 0.
  writer_node_ = topology_.AddNode(0, "writer");
  writer_instance_ =
      std::make_unique<sim::Instance>(&loop_, options_.writer_instance);
  writer_ = std::make_unique<Database>(&loop_, network_.get(), writer_node_,
                                       writer_instance_.get(),
                                       control_plane_.get(), options_.engine,
                                       rng.Fork());

  // Read replicas spread across AZs (§4.2.4 allows up to 15).
  for (int i = 0; i < options_.num_replicas; ++i) {
    sim::AzId az = static_cast<sim::AzId>((i + 1) % options_.num_azs);
    sim::NodeId node = topology_.AddNode(az, "replica-" + std::to_string(i));
    replica_instances_.push_back(
        std::make_unique<sim::Instance>(&loop_, options_.replica_instance));
    auto replica = std::make_unique<ReadReplica>(
        &loop_, network_.get(), node, replica_instances_.back().get(),
        control_plane_.get(), writer_node_, options_.engine, rng.Fork());
    writer_->AttachReplica(node);
    replicas_.push_back(std::move(replica));
  }

  // Storage fleet: N hosts per AZ.
  for (int az = 0; az < options_.num_azs; ++az) {
    for (int i = 0; i < options_.storage_nodes_per_az; ++i) {
      sim::NodeId node = topology_.AddNode(
          static_cast<sim::AzId>(az),
          "storage-az" + std::to_string(az) + "-" + std::to_string(i));
      auto sn = std::make_unique<StorageNode>(
          &loop_, network_.get(), node, control_plane_.get(), s3_.get(),
          options_.storage, rng.Fork());
      control_plane_->RegisterStorageNode(node, sn.get());
      StorageNode* raw = sn.get();
      injector_->RegisterNode(node, {[raw] { raw->Crash(); },
                                     [raw] { raw->Restart(); }});
      storage_nodes_.push_back(std::move(sn));
    }
  }

  repair_ = std::make_unique<RepairManager>(&loop_, network_.get(),
                                            &topology_, control_plane_.get(),
                                            options_.repair, rng.Fork());
  if (options_.start_repair_manager) repair_->Start();
}

AuroraCluster::~AuroraCluster() = default;

StorageNode* AuroraCluster::storage_node_by_id(sim::NodeId id) {
  for (auto& sn : storage_nodes_) {
    if (sn->id() == id) return sn.get();
  }
  return nullptr;
}

void AuroraCluster::CrashWriter() { writer_->Crash(); }

Status AuroraCluster::FailoverToReplicaSync(size_t i) {
  if (i >= replicas_.size()) {
    return Status::InvalidArgument("no such replica");
  }
  writer_->Crash();
  // Unhook the dead writer's network identity before destroying it (its
  // handler closure captures the object).
  network_->Register(writer_node_, sim::Network::Handler());
  // Promote: the replica's host becomes the writer. Registering the new
  // engine takes over the node's network identity; the old replica object
  // is retired.
  sim::NodeId node = replicas_[i]->node_id();
  replicas_[i]->Crash();
  sim::Instance* instance = replica_instances_[i].get();
  Random rng(options_.seed ^ (0x9E3779B97F4A7C15ull + i));
  auto promoted = std::make_unique<Database>(
      &loop_, network_.get(), node, instance, control_plane_.get(),
      options_.engine, rng.Fork());
  // Surviving replicas follow the new writer.
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (r == i) continue;
    promoted->AttachReplica(replicas_[r]->node_id());
  }
  retired_replicas_.push_back(std::move(replicas_[i]));
  replicas_.erase(replicas_.begin() + static_cast<long>(i));
  // Keep the replaced instance object alive alongside the promoted engine
  // (the new writer runs on it).
  retired_writers_.push_back(std::move(writer_));
  writer_ = std::move(promoted);
  writer_node_ = node;
  return RecoverSync();
}

bool AuroraCluster::RunUntil(std::function<bool()> pred, SimDuration max) {
  const SimTime deadline = loop_.now() + max;
  while (!pred() && loop_.now() < deadline) {
    if (!loop_.RunOne()) {
      // Queue drained before the predicate held.
      return pred();
    }
  }
  return pred();
}

Status AuroraCluster::BootstrapSync() {
  Status result = Status::TimedOut("bootstrap did not finish");
  bool done = false;
  writer_->Bootstrap([&](Status s) {
    result = s;
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(30));
  return result;
}

Status AuroraCluster::RecoverSync() {
  Status result = Status::TimedOut("recovery did not finish");
  bool done = false;
  writer_->Recover([&](Status s) {
    result = s;
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(120));
  return result;
}

Status AuroraCluster::CreateTableSync(const std::string& name) {
  Status result = Status::TimedOut("create table did not finish");
  bool done = false;
  writer_->CreateTable(name, [&](Status s) {
    result = s;
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(30));
  return result;
}

Result<PageId> AuroraCluster::TableAnchorSync(const std::string& name) {
  // The catalog page is pinned after bootstrap/recovery, so this is
  // synchronous in practice; drive the loop in case it is not resident.
  Result<PageId> r = writer_->TableAnchor(name);
  int spins = 0;
  while (!r.ok() && r.status().IsBusy() && spins++ < 1000) {
    loop_.RunOne();
    r = writer_->TableAnchor(name);
  }
  return r;
}

Status AuroraCluster::PutSync(PageId table, const std::string& key,
                              const std::string& value) {
  Status result = Status::TimedOut("put did not finish");
  bool done = false;
  TxnId txn = writer_->Begin();
  writer_->Put(txn, table, key, value, [&](Status s) {
    if (!s.ok()) {
      result = s;
      done = true;
      return;
    }
    writer_->Commit(txn, [&](Status cs) {
      result = cs;
      done = true;
    });
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

Result<std::string> AuroraCluster::GetSync(PageId table,
                                           const std::string& key) {
  Result<std::string> result = Status::TimedOut("get did not finish");
  bool done = false;
  TxnId txn = writer_->Begin();
  writer_->Get(txn, table, key, [&](Result<std::string> r) {
    result = std::move(r);
    writer_->Commit(txn, [&](Status) { done = true; });
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

Status AuroraCluster::DeleteSync(PageId table, const std::string& key) {
  Status result = Status::TimedOut("delete did not finish");
  bool done = false;
  TxnId txn = writer_->Begin();
  writer_->Delete(txn, table, key, [&](Status s) {
    if (!s.ok()) {
      result = s;
      done = true;
      return;
    }
    writer_->Commit(txn, [&](Status cs) {
      result = cs;
      done = true;
    });
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

Result<std::string> AuroraCluster::ReplicaGetSync(size_t replica,
                                                  PageId table,
                                                  const std::string& key) {
  Result<std::string> result = Status::TimedOut("replica get did not finish");
  bool done = false;
  replicas_.at(replica)->Get(table, key, [&](Result<std::string> r) {
    result = std::move(r);
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

}  // namespace aurora
