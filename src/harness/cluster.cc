#include "harness/cluster.h"

#include "common/logging.h"

namespace aurora {

AuroraCluster::AuroraCluster(ClusterOptions options)
    : options_(options),
      loop_(static_cast<uint32_t>(options.num_azs)),
      topology_(options.num_azs) {
  loop_.set_workers(static_cast<uint32_t>(
      options_.sim_shards < 1 ? 1 : options_.sim_shards));
  Random rng(options_.seed);
  // The network's fallback loop and every global actor (S3 completions by
  // default, failure injector, repair manager) live on the control shard:
  // they observe and mutate the whole cluster, so they must run at barriers
  // with every shard quiesced.
  network_ = std::make_unique<sim::Network>(loop_.control(), &topology_,
                                            options_.fabric, rng.Fork());
  control_plane_ = std::make_unique<ControlPlane>(&topology_, rng.Fork());
  s3_ = std::make_unique<SimS3>(loop_.control(), SimS3::Options{}, rng.Fork());
  injector_ = std::make_unique<sim::FailureInjector>(
      loop_.control(), network_.get(), &topology_, rng.Fork());

  // Writer instance in AZ 0, homed on AZ 0's shard.
  writer_node_ = topology_.AddNode(0, "writer");
  writer_instance_ =
      std::make_unique<sim::Instance>(loop_.shard(0), options_.writer_instance);
  writer_ = std::make_unique<Database>(loop_.shard(0), network_.get(),
                                       writer_node_, writer_instance_.get(),
                                       control_plane_.get(), options_.engine,
                                       rng.Fork());

  // Read replicas spread across AZs (§4.2.4 allows up to 15); each is homed
  // on its AZ's shard.
  for (int i = 0; i < options_.num_replicas; ++i) {
    sim::AzId az = static_cast<sim::AzId>((i + 1) % options_.num_azs);
    sim::NodeId node = topology_.AddNode(az, "replica-" + std::to_string(i));
    replica_instances_.push_back(std::make_unique<sim::Instance>(
        loop_.shard(az), options_.replica_instance));
    auto replica = std::make_unique<ReadReplica>(
        loop_.shard(az), network_.get(), node, replica_instances_.back().get(),
        control_plane_.get(), writer_node_, options_.engine, rng.Fork());
    writer_->AttachReplica(node);
    replicas_.push_back(std::move(replica));
  }

  // Storage fleet: N hosts per AZ, each homed on its AZ's shard.
  for (int az = 0; az < options_.num_azs; ++az) {
    for (int i = 0; i < options_.storage_nodes_per_az; ++i) {
      sim::NodeId node = topology_.AddNode(
          static_cast<sim::AzId>(az),
          "storage-az" + std::to_string(az) + "-" + std::to_string(i));
      auto sn = std::make_unique<StorageNode>(
          loop_.shard(static_cast<uint32_t>(az)), network_.get(), node,
          control_plane_.get(), s3_.get(), options_.storage, rng.Fork());
      control_plane_->RegisterStorageNode(node, sn.get());
      StorageNode* raw = sn.get();
      injector_->RegisterNode(node, {[raw] { raw->Crash(); },
                                     [raw] { raw->Restart(); }});
      storage_nodes_.push_back(std::move(sn));
    }
  }

  // Topology is complete: shard placement is node -> home AZ, and the fabric
  // derives the PDES lookahead from the minimum cross-shard latency.
  {
    std::vector<uint32_t> shard_of(topology_.num_nodes());
    for (sim::NodeId n = 0; n < topology_.num_nodes(); ++n) {
      shard_of[n] = static_cast<uint32_t>(topology_.az_of(n));
    }
    network_->InstallShardRouting(&loop_, std::move(shard_of));
  }

  repair_ = std::make_unique<RepairManager>(
      loop_.control(), network_.get(), &topology_, control_plane_.get(),
      options_.repair, rng.Fork());
  if (options_.start_repair_manager) repair_->Start();

  RegisterAllMetrics();
}

void AuroraCluster::RegisterAllMetrics() {
  MetricsRegistry* m = &metrics_;

  // --- Engine (the current writer; closures indirect through `this` so
  // they keep reading the promoted engine after a failover) ----------------
  {
    auto stats = [this]() -> const EngineStats& { return writer_->stats(); };
    struct CounterDef {
      const char* name;
      uint64_t EngineStats::*field;
    };
    static constexpr CounterDef kEngineCounters[] = {
        {"txns_started", &EngineStats::txns_started},
        {"txns_committed", &EngineStats::txns_committed},
        {"txns_aborted", &EngineStats::txns_aborted},
        {"reads", &EngineStats::reads},
        {"writes", &EngineStats::writes},
        {"deletes", &EngineStats::deletes},
        {"storage_page_reads", &EngineStats::storage_page_reads},
        {"log_batches_sent", &EngineStats::log_batches_sent},
        {"log_records_sent", &EngineStats::log_records_sent},
        {"log_bytes_generated", &EngineStats::log_bytes_generated},
        {"backpressure_stalls", &EngineStats::backpressure_stalls},
        {"batch_retries", &EngineStats::batch_retries},
        {"read_retries", &EngineStats::read_retries},
        {"batch_encode_bytes_saved", &EngineStats::batch_encode_bytes_saved},
        {"fenced_rejections", &EngineStats::fenced_rejections},
        {"stale_config_refreshes", &EngineStats::stale_config_refreshes},
        {"corrupt_frames_dropped", &EngineStats::corrupt_frames_dropped},
        {"pages_freed", &EngineStats::pages_freed},
        {"pages_reused", &EngineStats::pages_reused},
    };
    for (const CounterDef& def : kEngineCounters) {
      m->RegisterCounter(std::string("engine.writer.") + def.name,
                         [stats, field = def.field] { return stats().*field; });
    }
    struct HistDef {
      const char* name;
      Histogram EngineStats::*field;
    };
    static constexpr HistDef kEngineHists[] = {
        {"commit_latency_us", &EngineStats::commit_latency_us},
        {"read_latency_us", &EngineStats::read_latency_us},
        {"write_latency_us", &EngineStats::write_latency_us},
        {"trace.append_to_flush_us", &EngineStats::batch_append_to_flush_us},
        {"trace.flush_to_first_ack_us",
         &EngineStats::batch_flush_to_first_ack_us},
        {"trace.first_ack_to_quorum_us",
         &EngineStats::batch_first_ack_to_quorum_us},
        {"trace.append_to_quorum_us", &EngineStats::batch_append_to_quorum_us},
        {"trace.page_fetch_latency_us", &EngineStats::page_fetch_latency_us},
        {"trace.read_retry_depth", &EngineStats::read_retry_depth},
    };
    for (const HistDef& def : kEngineHists) {
      m->RegisterHistogram(
          std::string("engine.writer.") + def.name,
          [stats, field = def.field] { return &(stats().*field); });
    }
    m->RegisterGauge("engine.writer.vdl",
                     [this] { return static_cast<double>(writer_->vdl()); });
    m->RegisterGauge("engine.writer.active_txns", [this] {
      return static_cast<double>(writer_->active_txns());
    });

    // Buffer pool and lock manager live inside the engine.
    m->RegisterCounter("engine.writer.cache.hits",
                       [this] { return writer_->buffer_pool()->stats().hits; });
    m->RegisterCounter("engine.writer.cache.misses", [this] {
      return writer_->buffer_pool()->stats().misses;
    });
    m->RegisterCounter("engine.writer.cache.evictions", [this] {
      return writer_->buffer_pool()->stats().evictions;
    });
    m->RegisterCounter("engine.writer.cache.eviction_blocked", [this] {
      return writer_->buffer_pool()->stats().eviction_blocked;
    });
    m->RegisterCounter("engine.writer.cache.installs", [this] {
      return writer_->buffer_pool()->stats().installs;
    });
    m->RegisterCounter("engine.writer.locks.grants", [this] {
      return writer_->lock_manager()->stats().grants;
    });
    m->RegisterCounter("engine.writer.locks.waits", [this] {
      return writer_->lock_manager()->stats().waits;
    });
    m->RegisterCounter("engine.writer.locks.deadlocks", [this] {
      return writer_->lock_manager()->stats().deadlocks;
    });
    m->RegisterCounter("engine.writer.locks.timeouts", [this] {
      return writer_->lock_manager()->stats().timeouts;
    });
  }

  // --- Read replicas (bounds-checked: failover shrinks the vector) --------
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const std::string base = "replica.r" + std::to_string(i) + ".";
    auto alive = [this, i] { return i < replicas_.size(); };
    auto reg = [&](const char* name, auto getter) {
      m->RegisterCounter(base + name, [this, i, alive, getter]() -> uint64_t {
        return alive() ? getter(replicas_[i].get()) : 0;
      });
    };
    reg("records_applied",
        [](ReadReplica* r) { return r->stats().records_applied; });
    reg("records_discarded",
        [](ReadReplica* r) { return r->stats().records_discarded; });
    reg("mtrs_applied", [](ReadReplica* r) { return r->stats().mtrs_applied; });
    reg("reads", [](ReadReplica* r) { return r->stats().reads; });
    reg("storage_page_reads",
        [](ReadReplica* r) { return r->stats().storage_page_reads; });
    reg("corrupt_frames_dropped",
        [](ReadReplica* r) { return r->stats().corrupt_frames_dropped; });
    m->RegisterHistogram(base + "lag_us", [this, i, alive]() -> const Histogram* {
      return alive() ? &replicas_[i]->stats().lag_us : nullptr;
    });
    m->RegisterHistogram(base + "read_latency_us",
                         [this, i, alive]() -> const Histogram* {
                           return alive() ? &replicas_[i]->stats().read_latency_us
                                          : nullptr;
                         });
  }

  // --- Storage fleet (stable for the cluster's lifetime) ------------------
  for (size_t i = 0; i < storage_nodes_.size(); ++i) {
    StorageNode* sn = storage_nodes_[i].get();
    const std::string base = "storage.node" + std::to_string(sn->id()) + ".";
    const StorageNodeStats* s = &sn->stats();
    m->RegisterCounter(base + "batches_received", &s->batches_received);
    m->RegisterCounter(base + "records_received", &s->records_received);
    m->RegisterCounter(base + "acks_sent", &s->acks_sent);
    m->RegisterCounter(base + "page_reads_served", &s->page_reads_served);
    m->RegisterCounter(base + "page_read_errors", &s->page_read_errors);
    m->RegisterCounter(base + "gossip_rounds", &s->gossip_rounds);
    m->RegisterCounter(base + "gossip_records_sent", &s->gossip_records_sent);
    m->RegisterCounter(base + "gossip_records_filled",
                       &s->gossip_records_filled);
    m->RegisterCounter(base + "gossip_state_transfers",
                       &s->gossip_state_transfers);
    m->RegisterCounter(base + "records_coalesced", &s->records_coalesced);
    m->RegisterCounter(base + "records_gced", &s->records_gced);
    m->RegisterCounter(base + "scrub_rounds", &s->scrub_rounds);
    m->RegisterCounter(base + "pages_scrubbed", &s->pages_scrubbed);
    m->RegisterCounter(base + "corrupt_pages_found", &s->corrupt_pages_found);
    m->RegisterCounter(base + "corrupt_pages_repaired",
                       &s->corrupt_pages_repaired);
    m->RegisterCounter(base + "read_repairs", &s->read_repairs);
    m->RegisterCounter(base + "stale_config_rejects",
                       &s->stale_config_rejects);
    m->RegisterCounter(base + "torn_write_drops", &s->torn_write_drops);
    m->RegisterCounter(base + "latent_corruptions", &s->latent_corruptions);
    m->RegisterCounter(base + "backup_objects", &s->backup_objects);
    m->RegisterCounter(base + "background_deferrals",
                       &s->background_deferrals);
    m->RegisterCounter(base + "stale_epoch_rejects", &s->stale_epoch_rejects);
    m->RegisterCounter(base + "duplicate_batches", &s->duplicate_batches);
    m->RegisterCounter(base + "corrupt_frames_dropped",
                       &s->corrupt_frames_dropped);
    m->RegisterHistogram(base + "trace.gossip_fill_batch",
                         &s->gossip_fill_batch);
    m->RegisterCounter(base + "page_cache.hits",
                       [sn] { return sn->PageCacheTotals().hits; });
    m->RegisterCounter(base + "page_cache.partial_hits",
                       [sn] { return sn->PageCacheTotals().partial_hits; });
    m->RegisterCounter(base + "page_cache.misses",
                       [sn] { return sn->PageCacheTotals().misses; });
    m->RegisterCounter(base + "page_cache.evictions",
                       [sn] { return sn->PageCacheTotals().evictions; });
    m->RegisterGauge(base + "page_cache.bytes", [sn] {
      return static_cast<double>(sn->PageCacheBytes());
    });

    sim::Disk* disk = sn->disk();
    m->RegisterCounter(base + "disk.writes", [disk] { return disk->writes(); });
    m->RegisterCounter(base + "disk.reads", [disk] { return disk->reads(); });
    m->RegisterCounter(base + "disk.bytes_written",
                       [disk] { return disk->bytes_written(); });
    m->RegisterCounter(base + "disk.bytes_read",
                       [disk] { return disk->bytes_read(); });
    m->RegisterGauge(base + "disk.backlog_us", [disk] {
      return static_cast<double>(disk->backlog());
    });
  }

  // --- Storage fleet-wide reconstruction-cache totals ---------------------
  {
    auto totals = [this] {
      PageCacheStats t;
      for (const auto& sn : storage_nodes_) {
        PageCacheStats s = sn->PageCacheTotals();
        t.hits += s.hits;
        t.partial_hits += s.partial_hits;
        t.misses += s.misses;
        t.evictions += s.evictions;
      }
      return t;
    };
    m->RegisterCounter("storage.page_cache.hits",
                       [totals] { return totals().hits; });
    m->RegisterCounter("storage.page_cache.partial_hits",
                       [totals] { return totals().partial_hits; });
    m->RegisterCounter("storage.page_cache.misses",
                       [totals] { return totals().misses; });
    m->RegisterCounter("storage.page_cache.evictions",
                       [totals] { return totals().evictions; });
    m->RegisterGauge("storage.page_cache.bytes", [this] {
      uint64_t bytes = 0;
      for (const auto& sn : storage_nodes_) bytes += sn->PageCacheBytes();
      return static_cast<double>(bytes);
    });
  }

  // --- Storage fleet-wide robustness aggregates ---------------------------
  {
    auto sum = [this](uint64_t StorageNodeStats::*field) {
      uint64_t total = 0;
      for (const auto& sn : storage_nodes_) total += sn->stats().*field;
      return total;
    };
    m->RegisterCounter("storage.stale_epoch_rejects", [sum] {
      return sum(&StorageNodeStats::stale_epoch_rejects);
    });
    m->RegisterCounter("storage.stale_config_rejects", [sum] {
      return sum(&StorageNodeStats::stale_config_rejects);
    });
    m->RegisterCounter("storage.duplicate_batches", [sum] {
      return sum(&StorageNodeStats::duplicate_batches);
    });
    m->RegisterCounter("storage.corrupt_frames_dropped", [sum] {
      return sum(&StorageNodeStats::corrupt_frames_dropped);
    });
    // Scrubber / disk-fault posture (§2.2's "continuously verify ... CRCs").
    m->RegisterCounter("storage.scrub.rounds", [sum] {
      return sum(&StorageNodeStats::scrub_rounds);
    });
    m->RegisterCounter("storage.scrub.pages_scrubbed", [sum] {
      return sum(&StorageNodeStats::pages_scrubbed);
    });
    m->RegisterCounter("storage.scrub.corrupt_pages_found", [sum] {
      return sum(&StorageNodeStats::corrupt_pages_found);
    });
    m->RegisterCounter("storage.scrub.corrupt_pages_repaired", [sum] {
      return sum(&StorageNodeStats::corrupt_pages_repaired);
    });
    m->RegisterCounter("storage.scrub.read_repairs", [sum] {
      return sum(&StorageNodeStats::read_repairs);
    });
    m->RegisterCounter("storage.scrub.latent_corruptions", [sum] {
      return sum(&StorageNodeStats::latent_corruptions);
    });
    m->RegisterCounter("storage.scrub.torn_write_drops", [sum] {
      return sum(&StorageNodeStats::torn_write_drops);
    });
    m->RegisterCounter("storage.repair_chunk_crc_drops", [sum] {
      return sum(&StorageNodeStats::repair_chunk_crc_drops);
    });
    m->RegisterCounter("storage.repair_sessions_started", [sum] {
      return sum(&StorageNodeStats::repair_sessions_started);
    });
    m->RegisterCounter("storage.evicted_segments_dropped", [sum] {
      return sum(&StorageNodeStats::evicted_segments_dropped);
    });
  }

  // --- Network fabric ------------------------------------------------------
  {
    sim::Network* net = network_.get();
    m->RegisterCounter("net.total.messages_sent",
                       [net] { return net->total().messages_sent; });
    m->RegisterCounter("net.total.messages_received",
                       [net] { return net->total().messages_received; });
    m->RegisterCounter("net.total.packets_sent",
                       [net] { return net->total().packets_sent; });
    m->RegisterCounter("net.total.bytes_sent",
                       [net] { return net->total().bytes_sent; });
    m->RegisterCounter("net.total.messages_dropped",
                       [net] { return net->total().messages_dropped; });
    m->RegisterCounter("net.adversary.duplicates_injected", [net] {
      return net->adversary().duplicates_injected.load();
    });
    m->RegisterCounter("net.adversary.reordered",
                       [net] { return net->adversary().reordered.load(); });
    m->RegisterCounter("net.adversary.corrupted_injected", [net] {
      return net->adversary().corrupted_injected.load();
    });
    m->RegisterCounter("net.adversary.corrupted_dropped", [net] {
      return net->adversary().corrupted_dropped.load();
    });
    m->RegisterCounter("net.adversary.oneway_blocked",
                       [net] { return net->adversary().oneway_blocked.load(); });
    for (sim::NodeId n = 0; n < topology_.num_nodes(); ++n) {
      const std::string base = "net." + topology_.name_of(n) + ".";
      m->RegisterCounter(base + "messages_sent",
                         [net, n] { return net->stats_of(n).messages_sent; });
      m->RegisterCounter(base + "bytes_sent",
                         [net, n] { return net->stats_of(n).bytes_sent; });
      m->RegisterCounter(base + "packets_sent",
                         [net, n] { return net->stats_of(n).packets_sent; });
      m->RegisterCounter(base + "messages_dropped", [net, n] {
        return net->stats_of(n).messages_dropped;
      });
    }
  }

  // --- Chaos tooling (zeros unless a ChaosEngine/InvariantChecker ran) ----
  m->RegisterCounter("chaos.invariant_checks",
                     &chaos_counters_.invariant_checks);
  m->RegisterCounter("chaos.invariant_violations",
                     &chaos_counters_.invariant_violations);
  m->RegisterCounter("chaos.actions_executed",
                     &chaos_counters_.actions_executed);

  // --- Repair, S3, event loop ---------------------------------------------
  m->RegisterCounter("repair.started",
                     [this] { return repair_->stats().started; });
  m->RegisterCounter("repair.completed",
                     [this] { return repair_->stats().completed; });
  m->RegisterCounter("repair.failed",
                     [this] { return repair_->stats().failed; });
  m->RegisterCounter("repair.chunk_retries",
                     [this] { return repair_->stats().chunk_retries; });
  m->RegisterCounter("repair.donor_failovers",
                     [this] { return repair_->stats().donor_failovers; });
  m->RegisterCounter("repair.bytes_copied",
                     [this] { return repair_->stats().bytes_copied; });
  m->RegisterCounter("repair.concurrent_peak",
                     [this] { return repair_->stats().concurrent_peak; });
  m->RegisterCounter("repair.queued",
                     [this] { return repair_->stats().queued; });
  m->RegisterCounter("repair.no_replacement",
                     [this] { return repair_->stats().no_replacement; });
  m->RegisterCounter("repair.no_donor",
                     [this] { return repair_->stats().no_donor; });
  m->RegisterCounter("repair.transfer_restarts",
                     [this] { return repair_->stats().transfer_restarts; });
  m->RegisterCounter("repair.migrations",
                     [this] { return repair_->stats().migrations; });
  m->RegisterHistogram("repair.mttr_us",
                       [this] { return repair_->mttr_histogram(); });
  m->RegisterCounter("s3.objects", [this] { return s3_->num_objects(); });
  m->RegisterCounter("s3.bytes_stored", [this] { return s3_->bytes_stored(); });
  m->RegisterCounter("s3.puts", [this] { return s3_->puts(); });
  m->RegisterCounter("s3.gets", [this] { return s3_->gets(); });
  m->RegisterCounter("sim.events_executed",
                     [this] { return loop_.events_executed(); });
  m->RegisterGauge("sim.now_us",
                   [this] { return static_cast<double>(loop_.now()); });
  // Event-queue internals: executed events, lazily-cancelled tombstones and
  // the heap high-water mark (live + not-yet-purged entries).
  m->RegisterCounter("sim.loop.events_executed",
                     [this] { return loop_.events_executed(); });
  m->RegisterCounter("sim.loop.tombstones",
                     [this] { return loop_.tombstones(); });
  m->RegisterCounter("sim.loop.heap_peak",
                     [this] { return static_cast<uint64_t>(loop_.heap_peak()); });

  // --- PDES coordinator (DESIGN.md §11) -----------------------------------
  // Per logical shard plus coordinator totals. All deterministic: functions
  // of the partition and the event set, never of the worker-thread count.
  // (Barrier stall wall-clock is intentionally absent — it is measured per
  // run and belongs in bench JSON, not in a deterministic dump.)
  for (uint32_t s = 0; s < loop_.num_shards(); ++s) {
    const std::string base = "sim.loop.shard" + std::to_string(s) + ".";
    sim::EventLoop* shard = loop_.shard(s);
    m->RegisterCounter(base + "events_executed",
                       [shard] { return shard->events_executed(); });
    m->RegisterCounter(base + "tombstones",
                       [shard] { return shard->tombstones(); });
    m->RegisterCounter(base + "heap_peak", [shard] {
      return static_cast<uint64_t>(shard->heap_peak());
    });
  }
  m->RegisterCounter("sim.pdes.horizon_syncs",
                     [this] { return loop_.horizon_syncs(); });
  m->RegisterCounter("sim.pdes.mailbox_msgs",
                     [this] { return loop_.mailbox_msgs(); });
}

void AuroraCluster::EnsurePgMetricsRegistered() {
  const PgId total = static_cast<PgId>(control_plane_->num_pgs());
  for (PgId pg = next_pg_metric_; pg < total; ++pg) {
    const std::string base = "storage.pg" + std::to_string(pg) + ".";
    ControlPlane* cp = control_plane_.get();
    // Visits the PG's live, materialized segment replicas. Replicas on
    // crashed hosts (or not yet materialized) are skipped: the gauges
    // describe what the fleet can currently serve.
    auto for_each_live = [cp, pg](auto fn) {
      for (sim::NodeId n : cp->membership(pg).nodes) {
        StorageNode* sn = cp->node(n);
        if (sn == nullptr || sn->crashed()) continue;
        const Segment* seg = sn->segment(pg);
        if (seg == nullptr) continue;
        fn(*seg);
      }
    };
    metrics_.RegisterGauge(base + "scl_spread", [for_each_live] {
      // Freshness skew: max - min segment-complete LSN across replicas.
      uint64_t lo = 0, hi = 0;
      bool seen = false;
      for_each_live([&](const Segment& seg) {
        const uint64_t scl = seg.scl();
        if (!seen || scl < lo) lo = scl;
        if (!seen || scl > hi) hi = scl;
        seen = true;
      });
      return seen ? static_cast<double>(hi - lo) : 0.0;
    });
    metrics_.RegisterGauge(base + "hole_depth", [for_each_live] {
      // Deepest gossip debt: records received beyond the first hole.
      uint64_t depth = 0;
      for_each_live([&](const Segment& seg) {
        const uint64_t d =
            seg.max_lsn() > seg.scl() ? seg.max_lsn() - seg.scl() : 0;
        if (d > depth) depth = d;
      });
      return static_cast<double>(depth);
    });
    metrics_.RegisterGauge(base + "backup_lag", [for_each_live] {
      // Widest backup window: complete records not yet staged to S3.
      uint64_t lag = 0;
      for_each_live([&](const Segment& seg) {
        const uint64_t d =
            seg.scl() > seg.backup_lsn() ? seg.scl() - seg.backup_lsn() : 0;
        if (d > lag) lag = d;
      });
      return static_cast<double>(lag);
    });
  }
  next_pg_metric_ = total;
}

AuroraCluster::~AuroraCluster() = default;

StorageNode* AuroraCluster::storage_node_by_id(sim::NodeId id) {
  for (auto& sn : storage_nodes_) {
    if (sn->id() == id) return sn.get();
  }
  return nullptr;
}

void AuroraCluster::CrashWriter() { writer_->Crash(); }

Status AuroraCluster::FailoverToReplicaSync(size_t i) {
  if (i >= replicas_.size()) {
    return Status::InvalidArgument("no such replica");
  }
  writer_->Crash();
  // Unhook the dead writer's network identity before destroying it (its
  // handler closure captures the object).
  network_->Register(writer_node_, sim::Network::Handler());
  // Promote: the replica's host becomes the writer. Registering the new
  // engine takes over the node's network identity; the old replica object
  // is retired.
  sim::NodeId node = replicas_[i]->node_id();
  replicas_[i]->Crash();
  sim::Instance* instance = replica_instances_[i].get();
  Random rng(options_.seed ^ (0x9E3779B97F4A7C15ull + i));
  // The promoted engine stays homed on its host's AZ shard.
  auto promoted = std::make_unique<Database>(
      loop_.shard(topology_.az_of(node)), network_.get(), node, instance,
      control_plane_.get(), options_.engine, rng.Fork());
  // Surviving replicas follow the new writer.
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (r == i) continue;
    promoted->AttachReplica(replicas_[r]->node_id());
  }
  retired_replicas_.push_back(std::move(replicas_[i]));
  replicas_.erase(replicas_.begin() + static_cast<long>(i));
  // Keep the replaced instance object alive alongside the promoted engine
  // (the new writer runs on it).
  retired_writers_.push_back(std::move(writer_));
  writer_ = std::move(promoted);
  writer_node_ = node;
  return RecoverSync();
}

Status AuroraCluster::PromoteReplicaSync(size_t i) {
  if (i >= replicas_.size()) {
    return Status::InvalidArgument("no such replica");
  }
  // The old writer is NOT crashed and keeps its network registration: it
  // continues to run with its stale volume epoch until storage fences it.
  sim::NodeId node = replicas_[i]->node_id();
  replicas_[i]->Crash();
  sim::Instance* instance = replica_instances_[i].get();
  Random rng(options_.seed ^ (0xC2B2AE3D27D4EB4Full + i));
  auto promoted = std::make_unique<Database>(
      loop_.shard(topology_.az_of(node)), network_.get(), node, instance,
      control_plane_.get(), options_.engine, rng.Fork());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (r == i) continue;
    promoted->AttachReplica(replicas_[r]->node_id());
  }
  retired_replicas_.push_back(std::move(replicas_[i]));
  replicas_.erase(replicas_.begin() + static_cast<long>(i));
  retired_writers_.push_back(std::move(writer_));
  writer_ = std::move(promoted);
  writer_node_ = node;
  // Quorum recovery bumps the volume epoch and truncates the old writer's
  // unacknowledged tail; from here on the zombie's batches are NAKed.
  return RecoverSync();
}

bool AuroraCluster::RunUntil(std::function<bool()> pred, SimDuration max) {
  const SimTime deadline = loop_.now() + max;
  while (!pred() && loop_.now() < deadline) {
    if (!loop_.RunOne()) {
      // Queue drained before the predicate held.
      return pred();
    }
  }
  return pred();
}

Status AuroraCluster::BootstrapSync() {
  Status result = Status::TimedOut("bootstrap did not finish");
  bool done = false;
  writer_->Bootstrap([&](Status s) {
    result = s;
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(30));
  return result;
}

Status AuroraCluster::RecoverSync() {
  Status result = Status::TimedOut("recovery did not finish");
  bool done = false;
  writer_->Recover([&](Status s) {
    result = s;
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(120));
  return result;
}

Status AuroraCluster::CreateTableSync(const std::string& name) {
  Status result = Status::TimedOut("create table did not finish");
  bool done = false;
  writer_->CreateTable(name, [&](Status s) {
    result = s;
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(30));
  return result;
}

Result<PageId> AuroraCluster::TableAnchorSync(const std::string& name) {
  // The catalog page is pinned after bootstrap/recovery, so this is
  // synchronous in practice; drive the loop in case it is not resident.
  Result<PageId> r = writer_->TableAnchor(name);
  int spins = 0;
  while (!r.ok() && r.status().IsBusy() && spins++ < 1000) {
    loop_.RunOne();
    r = writer_->TableAnchor(name);
  }
  return r;
}

Status AuroraCluster::PutSync(PageId table, const std::string& key,
                              const std::string& value) {
  Status result = Status::TimedOut("put did not finish");
  bool done = false;
  TxnId txn = writer_->Begin();
  writer_->Put(txn, table, key, value, [&](Status s) {
    if (!s.ok()) {
      result = s;
      done = true;
      return;
    }
    writer_->Commit(txn, [&](Status cs) {
      result = cs;
      done = true;
    });
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

Result<std::string> AuroraCluster::GetSync(PageId table,
                                           const std::string& key) {
  Result<std::string> result = Status::TimedOut("get did not finish");
  bool done = false;
  TxnId txn = writer_->Begin();
  writer_->Get(txn, table, key, [&](Result<std::string> r) {
    result = std::move(r);
    writer_->Commit(txn, [&](Status) { done = true; });
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

Status AuroraCluster::DeleteSync(PageId table, const std::string& key) {
  Status result = Status::TimedOut("delete did not finish");
  bool done = false;
  TxnId txn = writer_->Begin();
  writer_->Delete(txn, table, key, [&](Status s) {
    if (!s.ok()) {
      result = s;
      done = true;
      return;
    }
    writer_->Commit(txn, [&](Status cs) {
      result = cs;
      done = true;
    });
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

Result<std::string> AuroraCluster::ReplicaGetSync(size_t replica,
                                                  PageId table,
                                                  const std::string& key) {
  Result<std::string> result = Status::TimedOut("replica get did not finish");
  bool done = false;
  replicas_.at(replica)->Get(table, key, [&](Result<std::string> r) {
    result = std::move(r);
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

}  // namespace aurora
