#ifndef AURORA_HARNESS_CLUSTER_H_
#define AURORA_HARNESS_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "engine/database.h"
#include "engine/replica.h"
#include "quorum/quorum.h"
#include "sim/event_loop.h"
#include "sim/failure_injector.h"
#include "sim/sharded_loop.h"
#include "sim/instance.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "storage/control_plane.h"
#include "storage/repair.h"
#include "storage/sim_s3.h"
#include "storage/storage_node.h"

namespace aurora {

/// Everything needed to stand up an Aurora cluster (Figure 5) inside one
/// deterministic simulation: a region with three AZs, a storage fleet, the
/// single writer, optional read replicas, S3, the control plane, the repair
/// manager and a failure injector.
/// Counters written by chaos tooling (sim/chaos.h). Owned by the cluster so
/// that chaos.* metrics are registered for the cluster's whole lifetime and
/// appear (as zeros) even in runs that never construct a ChaosEngine —
/// keeping DumpMetricsJson()'s key set identical across configurations.
struct ChaosCounters {
  uint64_t invariant_checks = 0;
  uint64_t invariant_violations = 0;
  uint64_t actions_executed = 0;
};

struct ClusterOptions {
  int num_azs = 3;
  int storage_nodes_per_az = 4;
  int num_replicas = 0;
  sim::InstanceOptions writer_instance = sim::R38XLarge();
  sim::InstanceOptions replica_instance = sim::R38XLarge();
  EngineOptions engine;
  StorageNodeOptions storage;
  sim::FabricOptions fabric;
  RepairOptions repair;
  bool start_repair_manager = true;
  uint64_t seed = 42;
  /// Worker threads driving the per-AZ simulation shards (PDES, DESIGN.md
  /// §11). Purely an execution knob: results are byte-identical for any
  /// value. 1 = serial; clamped to [1, num_azs].
  int sim_shards = 1;
};

class AuroraCluster {
 public:
  explicit AuroraCluster(ClusterOptions options);
  ~AuroraCluster();

  AuroraCluster(const AuroraCluster&) = delete;
  AuroraCluster& operator=(const AuroraCluster&) = delete;

  sim::ShardedEventLoop* loop() { return &loop_; }
  /// The event loop of the shard the current writer is homed on — drivers
  /// and client closures that call the writer engine directly must schedule
  /// here. Re-resolve after a failover: promotion moves the writer to the
  /// promoted replica's AZ shard.
  sim::EventLoop* writer_loop() {
    return loop_.shard(topology_.az_of(writer_node_));
  }
  sim::Network* network() { return network_.get(); }
  sim::Topology* topology() { return &topology_; }
  ControlPlane* control_plane() { return control_plane_.get(); }
  RepairManager* repair_manager() { return repair_.get(); }
  sim::FailureInjector* failure_injector() { return injector_.get(); }
  SimS3* s3() { return s3_.get(); }

  Database* writer() { return writer_.get(); }
  sim::Instance* writer_instance() { return writer_instance_.get(); }
  sim::NodeId writer_node() const { return writer_node_; }

  size_t num_replicas() const { return replicas_.size(); }
  ReadReplica* replica(size_t i) { return replicas_[i].get(); }

  size_t num_storage_nodes() const { return storage_nodes_.size(); }
  StorageNode* storage_node(size_t i) { return storage_nodes_[i].get(); }
  StorageNode* storage_node_by_id(sim::NodeId id);

  /// Crashes/restarts the writer instance (volatile state lost).
  void CrashWriter();

  /// Fails over to read replica `i` ("failovers to replicas without loss
  /// of data", abstract): the replica's host becomes the new writer, runs
  /// quorum recovery against the shared volume (no redo replay — the
  /// storage service already has everything durable), and the remaining
  /// replicas re-attach to it. Returns the recovery status; every
  /// previously acknowledged commit is preserved.
  Status FailoverToReplicaSync(size_t i);

  /// Split-brain variant of FailoverToReplicaSync: promotes replica `i`
  /// WITHOUT crashing or unhooking the old writer, which keeps running as a
  /// zombie that does not know it has been superseded. Recovery on the
  /// promoted engine bumps the volume epoch, so the zombie is fenced by
  /// storage (kFenced NAK) the moment one of its write batches next lands.
  /// The retired engine stays reachable via retired_writer() for
  /// assertions.
  Status PromoteReplicaSync(size_t i);

  size_t num_retired_writers() const { return retired_writers_.size(); }
  /// Engines retired by failover/promotion, oldest first.
  Database* retired_writer(size_t i) { return retired_writers_.at(i).get(); }

  // --- Synchronous helpers (run the event loop until completion) ----------
  /// Bootstraps a fresh volume.
  Status BootstrapSync();
  /// Recovers an existing volume after CrashWriter().
  Status RecoverSync();
  Status CreateTableSync(const std::string& name);
  Result<PageId> TableAnchorSync(const std::string& name);
  /// One autocommit write.
  Status PutSync(PageId table, const std::string& key,
                 const std::string& value);
  Result<std::string> GetSync(PageId table, const std::string& key);
  Status DeleteSync(PageId table, const std::string& key);
  Result<std::string> ReplicaGetSync(size_t replica, PageId table,
                                     const std::string& key);

  /// Runs the loop until `pred` holds or `max` sim-time elapses; returns
  /// whether the predicate held.
  bool RunUntil(std::function<bool()> pred, SimDuration max);
  /// Runs the loop for a fixed duration.
  void RunFor(SimDuration d) { loop_.RunFor(d); }

  // --- Observability -------------------------------------------------------
  /// The unified metrics registry: every component's counters, gauges and
  /// histograms under one hierarchical namespace (engine.*, replica.*,
  /// storage.*, net.*, repair.*, s3.*, sim.*). Registered readers indirect
  /// through the cluster, so they stay valid across writer failover.
  MetricsRegistry* metrics() { return &metrics_; }
  /// One machine-readable JSON document with every metric in the cluster.
  std::string DumpMetricsJson() {
    EnsurePgMetricsRegistered();
    return metrics_.ToJson();
  }

  /// Counters the chaos tooling (ChaosEngine / InvariantChecker) writes
  /// into; surfaced as chaos.* in the metrics registry.
  ChaosCounters* chaos_counters() { return &chaos_counters_; }

 private:
  void RegisterAllMetrics();
  /// Registers storage.pgN.{scl_spread,hole_depth,backup_lag} gauges for
  /// protection groups created since the last call (PGs appear lazily as
  /// the writer grows the volume, so this runs before every dump).
  void EnsurePgMetricsRegistered();
  ClusterOptions options_;
  sim::ShardedEventLoop loop_;
  sim::Topology topology_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<ControlPlane> control_plane_;
  std::unique_ptr<SimS3> s3_;
  std::unique_ptr<sim::FailureInjector> injector_;
  std::unique_ptr<RepairManager> repair_;

  sim::NodeId writer_node_ = sim::kInvalidNode;
  std::unique_ptr<sim::Instance> writer_instance_;
  std::unique_ptr<Database> writer_;

  std::vector<std::unique_ptr<sim::Instance>> replica_instances_;
  std::vector<std::unique_ptr<ReadReplica>> replicas_;
  std::vector<std::unique_ptr<StorageNode>> storage_nodes_;
  /// Engines retired by failover. They stay allocated because scheduled
  /// simulation timers capture raw `this` pointers; their generation
  /// guards make every late firing a no-op.
  std::vector<std::unique_ptr<Database>> retired_writers_;
  std::vector<std::unique_ptr<ReadReplica>> retired_replicas_;

  ChaosCounters chaos_counters_;
  MetricsRegistry metrics_;
  /// First PgId not yet covered by EnsurePgMetricsRegistered().
  PgId next_pg_metric_ = 0;
};

}  // namespace aurora

#endif  // AURORA_HARNESS_CLUSTER_H_
