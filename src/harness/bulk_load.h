#ifndef AURORA_HARNESS_BULK_LOAD_H_
#define AURORA_HARNESS_BULK_LOAD_H_

#include <string>

#include "common/result.h"
#include "harness/cluster.h"
#include "harness/mysql_cluster.h"
#include "harness/synthetic_table.h"

namespace aurora {

/// Attaches a synthetic pre-loaded table of `rows` rows to an Aurora
/// cluster: reserves the page-id range in the allocator, registers the
/// catalog entry, and installs the page synthesizer fleet-wide. Returns the
/// layout (owned by `catalog`). Runs the event loop until durable.
Result<const SyntheticTableLayout*> AttachSyntheticTable(
    AuroraCluster* cluster, SyntheticCatalog* catalog,
    const std::string& name, uint64_t rows, size_t value_size);

/// Same for the mirrored-MySQL baseline (the synthesizer backs EBS misses).
Result<const SyntheticTableLayout*> AttachSyntheticTableMysql(
    MysqlCluster* cluster, SyntheticCatalog* catalog, const std::string& name,
    uint64_t rows, size_t value_size);

}  // namespace aurora

#endif  // AURORA_HARNESS_BULK_LOAD_H_
