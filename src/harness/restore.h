#ifndef AURORA_HARNESS_RESTORE_H_
#define AURORA_HARNESS_RESTORE_H_

#include "common/status.h"
#include "harness/cluster.h"
#include "storage/sim_s3.h"

namespace aurora {

/// Point-in-time restore (§5: the storage service "continuously backs up
/// changed data to S3 and restores data from S3 as needed"; Figure 2's
/// binlog-to-S3 is the MySQL equivalent).
///
/// Rebuilds a volume on `fresh` (a bootstrapped-empty cluster fleet) from
/// the log archived in `source` (the S3 of the original cluster): creates
/// the protection groups, feeds every archived record with LSN <= `upto`
/// into their segment replicas, and stamps completeness watermarks so the
/// writer's normal quorum recovery can open the restored volume.
///
/// Scope: restores logged state. Synthetic pre-loaded tables are volume
/// snapshots, not log, and must be re-attached separately (as in real
/// Aurora, where restore = snapshot + log replay).
Status RestoreClusterFromS3(SimS3* source, AuroraCluster* fresh,
                            Lsn upto = UINT64_MAX);

}  // namespace aurora

#endif  // AURORA_HARNESS_RESTORE_H_
