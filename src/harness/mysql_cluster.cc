#include "harness/mysql_cluster.h"

namespace aurora {

MysqlCluster::MysqlCluster(MysqlClusterOptions options)
    : options_(options), loop_(2), topology_(3) {
  loop_.set_workers(static_cast<uint32_t>(
      options_.sim_shards < 1 ? 1 : options_.sim_shards));
  Random rng(options_.seed);
  network_ = std::make_unique<sim::Network>(loop_.control(), &topology_,
                                            options_.fabric, rng.Fork());
  s3_ = std::make_unique<SimS3>(loop_.control(), SimS3::Options{}, rng.Fork());

  // Figure 2 layout: primary instance + its EBS pair in AZ 1, standby
  // instance + its EBS pair in AZ 2. The whole complex is one MirroredMySql
  // object, so all six nodes are homed on shard 0 regardless of AZ — the
  // PDES partition follows object ownership, not geography.
  db_node_ = topology_.AddNode(0, "mysql-primary");
  baseline::MirroredMySql::NodeSet nodes;
  nodes.primary_ebs = topology_.AddNode(0, "ebs-primary");
  nodes.primary_ebs_mirror = topology_.AddNode(0, "ebs-primary-mirror");
  nodes.standby = topology_.AddNode(1, "mysql-standby");
  nodes.standby_ebs = topology_.AddNode(1, "ebs-standby");
  nodes.standby_ebs_mirror = topology_.AddNode(1, "ebs-standby-mirror");

  instance_ = std::make_unique<sim::Instance>(loop_.shard(0),
                                              options_.instance);
  db_ = std::make_unique<baseline::MirroredMySql>(
      loop_.shard(0), network_.get(), db_node_, instance_.get(), s3_.get(),
      nodes, options_.ebs_disk, options_.mysql, rng.Fork());

  // Binlog replicas in AZ 3, homed on shard 1: they interact with the
  // primary only through binlog messages over the fabric.
  for (int i = 0; i < options_.num_binlog_replicas; ++i) {
    sim::NodeId node = topology_.AddNode(static_cast<sim::AzId>(2),
                                         "binlog-replica-" +
                                             std::to_string(i));
    replicas_.push_back(std::make_unique<baseline::BinlogReplica>(
        loop_.shard(1), network_.get(), node, options_.binlog_apply_cost));
    db_->AttachBinlogReplica(node);
  }

  {
    std::vector<uint32_t> shard_of(topology_.num_nodes(), 0);
    for (sim::NodeId n = 6; n < topology_.num_nodes(); ++n) shard_of[n] = 1;
    network_->InstallShardRouting(&loop_, std::move(shard_of));
  }

  RegisterAllMetrics();
}

void MysqlCluster::RegisterAllMetrics() {
  MetricsRegistry* m = &metrics_;

  // --- Engine (closures indirect through db_ so they stay valid for the
  // cluster's lifetime; the baseline has no failover, so no writer_-style
  // indirection is needed) -------------------------------------------------
  {
    auto stats = [this]() -> const baseline::MysqlStats& {
      return db_->stats();
    };
    struct CounterDef {
      const char* name;
      uint64_t baseline::MysqlStats::*field;
    };
    static constexpr CounterDef kCounters[] = {
        {"txns_committed", &baseline::MysqlStats::txns_committed},
        {"txns_aborted", &baseline::MysqlStats::txns_aborted},
        {"reads", &baseline::MysqlStats::reads},
        {"writes", &baseline::MysqlStats::writes},
        {"wal_flushes", &baseline::MysqlStats::wal_flushes},
        {"wal_bytes", &baseline::MysqlStats::wal_bytes},
        {"page_writes", &baseline::MysqlStats::page_writes},
        {"dwb_writes", &baseline::MysqlStats::dwb_writes},
        {"binlog_writes", &baseline::MysqlStats::binlog_writes},
        {"checkpoints", &baseline::MysqlStats::checkpoints},
        {"page_reads", &baseline::MysqlStats::page_reads},
        {"dirty_evict_stalls", &baseline::MysqlStats::dirty_evict_stalls},
    };
    for (const CounterDef& def : kCounters) {
      m->RegisterCounter(std::string("engine.mysql.") + def.name,
                         [stats, field = def.field] { return stats().*field; });
    }
    struct HistDef {
      const char* name;
      Histogram baseline::MysqlStats::*field;
    };
    static constexpr HistDef kHists[] = {
        {"commit_latency_us", &baseline::MysqlStats::commit_latency_us},
        {"read_latency_us", &baseline::MysqlStats::read_latency_us},
        {"write_latency_us", &baseline::MysqlStats::write_latency_us},
    };
    for (const HistDef& def : kHists) {
      m->RegisterHistogram(
          std::string("engine.mysql.") + def.name,
          [stats, field = def.field] { return &(stats().*field); });
    }
    m->RegisterGauge("engine.mysql.flushed_lsn", [this] {
      return static_cast<double>(db_->flushed_lsn());
    });
    m->RegisterGauge("engine.mysql.checkpoint_lsn", [this] {
      return static_cast<double>(db_->checkpoint_lsn());
    });
    m->RegisterGauge("engine.mysql.dirty_pages", [this] {
      return static_cast<double>(db_->dirty_pages());
    });
  }

  // --- Network totals ------------------------------------------------------
  m->RegisterCounter("net.total.messages_sent",
                     [this] { return network_->total().messages_sent; });
  m->RegisterCounter("net.total.bytes_sent",
                     [this] { return network_->total().bytes_sent; });

  // --- Simulator loop ------------------------------------------------------
  m->RegisterCounter("sim.loop.events_executed",
                     [this] { return loop_.events_executed(); });
  m->RegisterCounter("sim.loop.tombstones", [this] { return loop_.tombstones(); });
  m->RegisterCounter("sim.loop.heap_peak", [this] {
    return static_cast<uint64_t>(loop_.heap_peak());
  });
  m->RegisterGauge("sim.now_us", [this] {
    return static_cast<double>(loop_.now());
  });
  for (uint32_t s = 0; s < loop_.num_shards(); ++s) {
    const std::string base = "sim.loop.shard" + std::to_string(s) + ".";
    sim::EventLoop* shard = loop_.shard(s);
    m->RegisterCounter(base + "events_executed",
                       [shard] { return shard->events_executed(); });
    m->RegisterCounter(base + "tombstones",
                       [shard] { return shard->tombstones(); });
    m->RegisterCounter(base + "heap_peak", [shard] {
      return static_cast<uint64_t>(shard->heap_peak());
    });
  }
  m->RegisterCounter("sim.pdes.horizon_syncs",
                     [this] { return loop_.horizon_syncs(); });
  m->RegisterCounter("sim.pdes.mailbox_msgs",
                     [this] { return loop_.mailbox_msgs(); });
}

MysqlCluster::~MysqlCluster() = default;

bool MysqlCluster::RunUntil(std::function<bool()> pred, SimDuration max) {
  const SimTime deadline = loop_.now() + max;
  while (!pred() && loop_.now() < deadline) {
    if (!loop_.RunOne()) return pred();
  }
  return pred();
}

Status MysqlCluster::BootstrapSync() {
  Status result = Status::TimedOut("bootstrap did not finish");
  bool done = false;
  db_->Bootstrap([&](Status s) {
    result = s;
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

Status MysqlCluster::RecoverSync() {
  Status result = Status::TimedOut("recovery did not finish");
  bool done = false;
  db_->Recover([&](Status s) {
    result = s;
    done = true;
  });
  RunUntil([&] { return done; }, Minutes(30));
  return result;
}

Status MysqlCluster::CreateTableSync(const std::string& name) {
  Status result = Status::TimedOut("create table did not finish");
  bool done = false;
  db_->CreateTable(name, [&](Status s) {
    result = s;
    done = true;
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

Result<PageId> MysqlCluster::TableAnchorSync(const std::string& name) {
  Result<PageId> r = db_->TableAnchor(name);
  int spins = 0;
  while (!r.ok() && r.status().IsBusy() && spins++ < 100000) {
    if (!loop_.RunOne()) break;
    r = db_->TableAnchor(name);
  }
  return r;
}

Status MysqlCluster::PutSync(PageId table, const std::string& key,
                             const std::string& value) {
  Status result = Status::TimedOut("put did not finish");
  bool done = false;
  TxnId txn = db_->Begin();
  db_->Put(txn, table, key, value, [&](Status s) {
    if (!s.ok()) {
      result = s;
      done = true;
      return;
    }
    db_->Commit(txn, [&](Status cs) {
      result = cs;
      done = true;
    });
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

Result<std::string> MysqlCluster::GetSync(PageId table,
                                          const std::string& key) {
  Result<std::string> result = Status::TimedOut("get did not finish");
  bool done = false;
  TxnId txn = db_->Begin();
  db_->Get(txn, table, key, [&](Result<std::string> r) {
    result = std::move(r);
    db_->Commit(txn, [&](Status) { done = true; });
  });
  RunUntil([&] { return done; }, Seconds(60));
  return result;
}

}  // namespace aurora
