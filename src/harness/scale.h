#ifndef AURORA_HARNESS_SCALE_H_
#define AURORA_HARNESS_SCALE_H_

#include <cstdint>

#include "common/units.h"

namespace aurora::scale {

/// The paper-to-simulation scale mapping used by every benchmark (see
/// DESIGN.md §6 and EXPERIMENTS.md "How to read the numbers").
///
/// The paper's experiments run on r3.8xlarge EC2 instances against
/// multi-terabyte volumes for 30 minutes; the simulation executes the same
/// protocols with these reductions so a full sweep finishes in minutes:
///
///   quantity              paper              simulation
///   ------------------    ---------------    -----------------------------
///   page size             16 KiB             4 KiB (format-compatible)
///   "1 GB" of SysBench    ~10M rows          kRowsPerGb rows of 100 B
///   segment ("10 GB")     10 GB              pages_per_pg * page_size
///   buffer cache          170 GB             kCachePagesFor170Gb pages
///   LAL                   10M (LSN units)    10M (LSN = log bytes here too)
///   measured window       30 min             seconds (deterministic)
///
/// Only shapes (ratios, crossovers, knees) are reproduction claims.

/// Rows standing in for one paper-"GB" of SysBench data.
constexpr uint64_t kRowsPerGb = 2560;

/// SysBench row payload bytes (sysbench's c/pad columns are ~120 B).
constexpr size_t kRowBytes = 100;

/// Simulated page size.
constexpr size_t kPageSize = 4096;

/// Buffer-pool pages standing in for the paper's 170 GB cache.
constexpr size_t kCachePagesFor170Gb = 26000;

/// Segment repair reference point: "a 10GB segment can be repaired in 10
/// seconds on a 10Gbps network link" (§2.2).
constexpr uint64_t kPaperSegmentBytes = 10ull << 30;
constexpr double kPaperRepairBandwidthBps = 10e9;

inline uint64_t RowsForGb(double gb) {
  return static_cast<uint64_t>(gb * kRowsPerGb);
}

}  // namespace aurora::scale

#endif  // AURORA_HARNESS_SCALE_H_
