#ifndef AURORA_HARNESS_SYNTHETIC_TABLE_H_
#define AURORA_HARNESS_SYNTHETIC_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "log/types.h"
#include "page/page.h"

namespace aurora {

/// A deterministically pre-loaded table: the B+-tree layout (which leaf
/// holds which rows, where the internal levels live) is a pure function of
/// the row count, so any page can be synthesized on first touch instead of
/// being materialized during a load phase. This is the simulation analogue
/// of attaching a volume restored from an S3 snapshot, and is what makes
/// 100 GB / 1 TB-class benchmark databases (§6.1.2) feasible in memory.
///
/// Keys are "key%016llu" (memcmp order == numeric order); values are
/// `value_size` deterministic bytes prefixed with the row-codec version
/// stamp the engine uses.
class SyntheticTableLayout {
 public:
  /// Plans a table of `rows` rows whose pages occupy [first_page,
  /// first_page + PageCount()). The anchor page (holding the root pointer)
  /// is the FIRST page of the range.
  SyntheticTableLayout(PageId first_page, uint64_t rows, size_t page_size,
                       size_t value_size);

  PageId anchor() const { return first_page_; }
  PageId first_page() const { return first_page_; }
  uint64_t page_count() const { return total_pages_; }
  PageId end_page() const { return first_page_ + total_pages_; }
  uint64_t rows() const { return rows_; }
  size_t rows_per_leaf() const { return rows_per_leaf_; }

  /// True if `page` belongs to this table.
  bool Contains(PageId page) const {
    return page >= first_page_ && page < end_page();
  }

  /// Synthesizes the content of `page` (anchor, internal node or leaf).
  bool BuildPage(PageId page, Page* out) const;

  /// Key / stored value of row `row` (value includes the row-codec stamp).
  static std::string KeyOf(uint64_t row);
  std::string StoredValueOf(uint64_t row) const;
  /// The user-visible value (without the codec stamp).
  std::string UserValueOf(uint64_t row) const;

  /// Leaf page id holding `row`.
  PageId LeafOf(uint64_t row) const;

 private:
  struct Level {
    PageId first;     // first page id of this level
    uint64_t count;   // nodes in this level
    uint64_t fanout;  // children per node (except possibly the last)
  };

  void BuildLeaf(uint64_t leaf_idx, Page* out) const;
  void BuildInternal(size_t level_idx, uint64_t node_idx, Page* out) const;
  void BuildAnchor(Page* out) const;
  /// First row covered by node `node_idx` of level `level_idx` (level 0 =
  /// leaves).
  uint64_t FirstRowOf(size_t level_idx, uint64_t node_idx) const;
  PageId PageOf(size_t level_idx, uint64_t node_idx) const;

  PageId first_page_;
  uint64_t rows_;
  size_t page_size_;
  size_t value_size_;
  size_t rows_per_leaf_;
  uint64_t total_pages_;
  std::vector<Level> levels_;  // levels_[0] = leaves, back() = root level
};

/// Registry of synthetic tables; install as the fleet-wide page synthesizer.
class SyntheticCatalog {
 public:
  const SyntheticTableLayout* Add(std::unique_ptr<SyntheticTableLayout> t) {
    tables_.push_back(std::move(t));
    return tables_.back().get();
  }

  bool BuildPage(PageId page, Page* out) const {
    for (const auto& t : tables_) {
      if (t->Contains(page)) return t->BuildPage(page, out);
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<SyntheticTableLayout>> tables_;
};

}  // namespace aurora

#endif  // AURORA_HARNESS_SYNTHETIC_TABLE_H_
