#ifndef AURORA_LOG_LOG_RECORD_H_
#define AURORA_LOG_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "log/types.h"

namespace aurora {

/// Physiological redo operations. Each record targets exactly one page; the
/// log applicator (log/applicator.h) interprets the operation against the
/// page's before-image to produce its after-image, deterministically — the
/// same applicator runs in the writer's forward path, on every storage node,
/// and in every read replica's cache (§3.2, §4.2.4).
enum class RedoOp : uint8_t {
  /// (Re)formats the page: payload = {page_type, level}.
  kFormatPage = 1,
  /// Inserts a key/value record into a slotted page. payload = {key, value}.
  kInsert = 2,
  /// Deletes the record with the given key. payload = {key}.
  kDelete = 3,
  /// Replaces the value of an existing key. payload = {key, value}.
  kUpdate = 4,
  /// Sets the next-page link (B+-tree sibling / undo chain). payload = {id}.
  kSetNext = 5,
  /// Sets the prev-page link. payload = {id}.
  kSetPrev = 6,
  /// Sets the page's schema version (online DDL, §7.3). payload = {version}.
  kSetSchemaVersion = 7,
};

/// Record flags.
enum RecordFlags : uint8_t {
  /// Final record of a mini-transaction — a Consistency Point LSN (CPL).
  kFlagCpl = 0x1,
};

/// One redo log record. LSN and the per-PG backlink are assigned by the
/// writer's LSN allocator at MTR commit time; before that they are
/// kInvalidLsn.
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  /// Backlink: LSN of the previous log record addressed to the same
  /// protection group (§4.2.1). Storage nodes use it to detect gaps and to
  /// compute the Segment Complete LSN.
  Lsn prev_pg_lsn = kInvalidLsn;
  /// Volume-wide backlink: LSN of the immediately preceding record of the
  /// whole volume. Recovery walks this chain to compute the VCL — it makes
  /// every hole visible from its successor, including records that were
  /// lost from all six replicas of some other PG (which the per-PG chain
  /// cannot reveal).
  Lsn prev_vol_lsn = kInvalidLsn;
  PageId page_id = kInvalidPage;
  TxnId txn_id = kInvalidTxn;
  RedoOp op = RedoOp::kFormatPage;
  uint8_t flags = 0;
  std::string payload;

  bool is_cpl() const { return (flags & kFlagCpl) != 0; }

  /// Size of the encoded representation; LSNs advance by this amount.
  size_t EncodedSize() const;

  /// Appends the wire encoding (with CRC) to `dst`.
  void EncodeTo(std::string* dst) const;

  /// Decodes one record from the front of `input`, advancing it. Verifies
  /// the CRC; returns Corruption on any malformed input.
  static Status DecodeFrom(Slice* input, LogRecord* out);

  // --- Payload constructors (the only way payloads should be built) -------
  static std::string MakeFormatPayload(uint8_t page_type, uint8_t level);
  static std::string MakeKeyValuePayload(const Slice& key, const Slice& value);
  static std::string MakeKeyPayload(const Slice& key);
  static std::string MakePageIdPayload(PageId id);
  static std::string MakeVersionPayload(uint32_t version);

  // --- Payload accessors ---------------------------------------------------
  Status GetFormat(uint8_t* page_type, uint8_t* level) const;
  Status GetKeyValue(Slice* key, Slice* value) const;
  Status GetKey(Slice* key) const;
  Status GetPageId(PageId* id) const;
  Status GetVersion(uint32_t* version) const;
};

/// Encodes a batch of records into one wire blob (the unit shipped to a
/// segment replica) and decodes it back. The batch carries no header of its
/// own; records are self-delimiting.
void EncodeRecordBatch(const std::vector<LogRecord>& records, std::string* dst);
/// View-based overload (Segment::RecordsAbove/UnbackedRecords): encodes the
/// pointed-to records without copying them first. Same bytes as above.
void EncodeRecordBatch(const std::vector<const LogRecord*>& records,
                       std::string* dst);
Status DecodeRecordBatch(Slice input, std::vector<LogRecord>* out);

}  // namespace aurora

#endif  // AURORA_LOG_LOG_RECORD_H_
