#include "log/mtr.h"

#include "log/applicator.h"

namespace aurora {

Status MiniTransaction::Apply(Page* page, LogRecord record) {
  record.txn_id = txn_id_;
  record.lsn = kInvalidLsn;  // assigned by the sink
  bool seen = false;
  for (const auto& [p, img] : before_images_) {
    if (p == page) {
      seen = true;
      break;
    }
  }
  if (!seen) before_images_.emplace_back(page, page->raw());
  Status s = LogApplicator::Apply(record, page);
  if (!s.ok()) return s;
  records_.push_back(std::move(record));
  pages_.push_back(page);
  return Status::OK();
}

void MiniTransaction::Abort() {
  // Restore in reverse touch order (order doesn't actually matter — each
  // page gets back its first-touch image).
  for (auto it = before_images_.rbegin(); it != before_images_.rend(); ++it) {
    Status s = it->first->LoadRaw(it->second);
    (void)s;  // same size by construction
  }
  before_images_.clear();
  records_.clear();
  pages_.clear();
}

}  // namespace aurora
