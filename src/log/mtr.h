#ifndef AURORA_LOG_MTR_H_
#define AURORA_LOG_MTR_H_

#include <vector>

#include "common/status.h"
#include "log/log_record.h"
#include "page/page.h"

namespace aurora {

class MiniTransaction;

/// Where committed MTRs go. The Aurora writer implements this by assigning
/// LSNs and shipping batches to protection groups; the mirrored-MySQL
/// baseline implements it by appending to its local WAL buffer.
class WalSink {
 public:
  virtual ~WalSink() = default;

  /// Finalizes the MTR: assigns LSNs and per-PG backlinks to its records,
  /// stamps the dirtied pages' LSNs, marks the final record as a CPL, and
  /// enqueues the records for durability. Returns Busy if the writer must
  /// apply back-pressure (LAL, §4.2.1) — the caller retries later; the
  /// page mutations stay in cache either way (they are already applied).
  virtual Status CommitMtr(MiniTransaction* mtr) = 0;
};

/// A mini-transaction (MTR): a group of page modifications that must be
/// made durable and become visible atomically — e.g. a B+-tree split that
/// touches two leaves, a parent, and the allocator's meta page (§4.1, §5).
///
/// Usage (forward path): build redo records with the Make*Payload helpers,
/// call Apply() for each — which both mutates the in-cache page via the
/// shared log applicator and buffers the record — then hand the MTR to the
/// WalSink. The final record's LSN becomes a Consistency Point LSN.
class MiniTransaction {
 public:
  explicit MiniTransaction(TxnId txn_id) : txn_id_(txn_id) {}

  MiniTransaction(const MiniTransaction&) = delete;
  MiniTransaction& operator=(const MiniTransaction&) = delete;

  /// Applies `record` (no LSN yet) to `page` and buffers it. The record's
  /// txn id is filled from this MTR. The page's before-image is snapshotted
  /// on first touch so the whole MTR can be rolled back (see Abort()).
  Status Apply(Page* page, LogRecord record);

  /// Restores every touched page to its before-image and clears the record
  /// buffer. Used when an operation must restart (e.g. a page fetch became
  /// necessary halfway through planning) — MTR atomicity means a partially
  /// built MTR must leave no trace.
  void Abort();

  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }
  TxnId txn_id() const { return txn_id_; }

  std::vector<LogRecord>& records() { return records_; }
  const std::vector<LogRecord>& records() const { return records_; }
  /// Page pointer paired with each record (same index), for LSN stamping at
  /// commit. Pointers must stay valid until commit (pages pinned).
  const std::vector<Page*>& pages() const { return pages_; }

  /// LSN of the final (CPL) record; valid after the sink committed the MTR.
  Lsn commit_lsn() const { return commit_lsn_; }
  void set_commit_lsn(Lsn lsn) { commit_lsn_ = lsn; }

 private:
  TxnId txn_id_;
  std::vector<LogRecord> records_;
  std::vector<Page*> pages_;
  std::vector<std::pair<Page*, std::string>> before_images_;
  Lsn commit_lsn_ = kInvalidLsn;
};

}  // namespace aurora

#endif  // AURORA_LOG_MTR_H_
