#include "log/log_record.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace aurora {

namespace {

// Wire layout:
//   fixed32  masked crc of everything after this field
//   varint64 lsn
//   varint64 prev_pg_lsn
//   varint64 page_id
//   varint64 txn_id
//   uint8    op
//   uint8    flags
//   length-prefixed payload
size_t BodySize(const LogRecord& r) {
  return static_cast<size_t>(VarintLength(r.lsn)) + VarintLength(r.prev_pg_lsn) +
         VarintLength(r.prev_vol_lsn) + VarintLength(r.page_id) +
         VarintLength(r.txn_id) + 2 + VarintLength(r.payload.size()) +
         r.payload.size();
}

}  // namespace

size_t LogRecord::EncodedSize() const { return 4 + BodySize(*this); }

void LogRecord::EncodeTo(std::string* dst) const {
  size_t crc_pos = dst->size();
  PutFixed32(dst, 0);  // placeholder
  size_t body_pos = dst->size();
  PutVarint64(dst, lsn);
  PutVarint64(dst, prev_pg_lsn);
  PutVarint64(dst, prev_vol_lsn);
  PutVarint64(dst, page_id);
  PutVarint64(dst, txn_id);
  dst->push_back(static_cast<char>(op));
  dst->push_back(static_cast<char>(flags));
  PutLengthPrefixedSlice(dst, payload);
  uint32_t crc = crc32c::Value(dst->data() + body_pos, dst->size() - body_pos);
  EncodeFixed32(dst->data() + crc_pos, crc32c::Mask(crc));
}

Status LogRecord::DecodeFrom(Slice* input, LogRecord* out) {
  uint32_t masked_crc;
  if (!GetFixed32(input, &masked_crc)) {
    return Status::Corruption("log record truncated (crc)");
  }
  const char* body_start = input->data();
  uint64_t lsn, prev, vprev, page, txn;
  if (!GetVarint64(input, &lsn) || !GetVarint64(input, &prev) ||
      !GetVarint64(input, &vprev) || !GetVarint64(input, &page) ||
      !GetVarint64(input, &txn)) {
    return Status::Corruption("log record truncated (header)");
  }
  if (input->size() < 2) return Status::Corruption("log record truncated (op)");
  auto op = static_cast<RedoOp>((*input)[0]);
  auto flags = static_cast<uint8_t>((*input)[1]);
  input->remove_prefix(2);
  Slice payload;
  if (!GetLengthPrefixedSlice(input, &payload)) {
    return Status::Corruption("log record truncated (payload)");
  }
  size_t body_len = static_cast<size_t>(input->data() - body_start);
  uint32_t crc = crc32c::Value(body_start, body_len);
  if (crc32c::Unmask(masked_crc) != crc) {
    return Status::Corruption("log record crc mismatch");
  }
  out->lsn = lsn;
  out->prev_pg_lsn = prev;
  out->prev_vol_lsn = vprev;
  out->page_id = page;
  out->txn_id = txn;
  out->op = op;
  out->flags = flags;
  out->payload = payload.ToString();
  return Status::OK();
}

std::string LogRecord::MakeFormatPayload(uint8_t page_type, uint8_t level) {
  std::string p;
  p.push_back(static_cast<char>(page_type));
  p.push_back(static_cast<char>(level));
  return p;
}

std::string LogRecord::MakeKeyValuePayload(const Slice& key,
                                           const Slice& value) {
  std::string p;
  PutLengthPrefixedSlice(&p, key);
  PutLengthPrefixedSlice(&p, value);
  return p;
}

std::string LogRecord::MakeKeyPayload(const Slice& key) {
  std::string p;
  PutLengthPrefixedSlice(&p, key);
  return p;
}

std::string LogRecord::MakePageIdPayload(PageId id) {
  std::string p;
  PutVarint64(&p, id);
  return p;
}

std::string LogRecord::MakeVersionPayload(uint32_t version) {
  std::string p;
  PutVarint32(&p, version);
  return p;
}

Status LogRecord::GetFormat(uint8_t* page_type, uint8_t* level) const {
  if (payload.size() < 2) return Status::Corruption("bad format payload");
  *page_type = static_cast<uint8_t>(payload[0]);
  *level = static_cast<uint8_t>(payload[1]);
  return Status::OK();
}

Status LogRecord::GetKeyValue(Slice* key, Slice* value) const {
  Slice in(payload);
  if (!GetLengthPrefixedSlice(&in, key) ||
      !GetLengthPrefixedSlice(&in, value)) {
    return Status::Corruption("bad key/value payload");
  }
  return Status::OK();
}

Status LogRecord::GetKey(Slice* key) const {
  Slice in(payload);
  if (!GetLengthPrefixedSlice(&in, key)) {
    return Status::Corruption("bad key payload");
  }
  return Status::OK();
}

Status LogRecord::GetPageId(PageId* id) const {
  Slice in(payload);
  uint64_t v;
  if (!GetVarint64(&in, &v)) return Status::Corruption("bad page id payload");
  *id = v;
  return Status::OK();
}

Status LogRecord::GetVersion(uint32_t* version) const {
  Slice in(payload);
  if (!GetVarint32(&in, version)) {
    return Status::Corruption("bad version payload");
  }
  return Status::OK();
}

void EncodeRecordBatch(const std::vector<LogRecord>& records,
                       std::string* dst) {
  for (const LogRecord& r : records) r.EncodeTo(dst);
}

void EncodeRecordBatch(const std::vector<const LogRecord*>& records,
                       std::string* dst) {
  for (const LogRecord* r : records) r->EncodeTo(dst);
}

Status DecodeRecordBatch(Slice input, std::vector<LogRecord>* out) {
  while (!input.empty()) {
    LogRecord r;
    Status s = LogRecord::DecodeFrom(&input, &r);
    if (!s.ok()) return s;
    out->push_back(std::move(r));
  }
  return Status::OK();
}

}  // namespace aurora
