#ifndef AURORA_LOG_TYPES_H_
#define AURORA_LOG_TYPES_H_

#include <cstdint>

namespace aurora {

/// Log Sequence Number: monotonically increasing, allocated by the (single)
/// writer. We use byte-offset LSNs like InnoDB: each record advances the LSN
/// by its encoded size, so LSN arithmetic doubles as log-volume accounting.
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

/// Identifier of a page within the volume (dense page number).
using PageId = uint64_t;
constexpr PageId kInvalidPage = UINT64_MAX;

/// Identifier of a Protection Group: six segment replicas holding one slice
/// of the volume's pages.
using PgId = uint32_t;

/// Replica index inside a protection group: 0..5 (two per AZ).
using ReplicaIdx = uint8_t;
constexpr int kReplicasPerPg = 6;

/// Transaction identifier, allocated by the writer.
using TxnId = uint64_t;
constexpr TxnId kInvalidTxn = 0;

/// Monotonic epoch stamped on volume truncations so that interrupted and
/// repeated recoveries cannot disagree about what was truncated (§4.3).
using Epoch = uint64_t;

}  // namespace aurora

#endif  // AURORA_LOG_TYPES_H_
