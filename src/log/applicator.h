#ifndef AURORA_LOG_APPLICATOR_H_
#define AURORA_LOG_APPLICATOR_H_

#include "common/status.h"
#include "log/log_record.h"
#include "page/page.h"

namespace aurora {

/// The redo log applicator: applies a log record to the before-image of its
/// page to produce the after-image (§3.2). This is deliberately the single
/// code path shared by
///   - the writer's forward processing (through MiniTransaction),
///   - every storage node's background coalescing (Figure 4 step 5),
///   - every read replica's buffer-cache maintenance (§4.2.4), and
///   - recovery.
/// "A great simplifying principle of a traditional database is that the same
/// redo log applicator is used in the forward processing path as well as on
/// recovery" (§4.3) — Aurora keeps the principle but moves where it runs.
class LogApplicator {
 public:
  /// Applies `record` to `page`.
  ///
  /// Idempotent at page granularity: if the record carries a valid LSN that
  /// is <= the page's current LSN, it has already been applied and the call
  /// is a no-op returning OK. On success the page LSN advances to the
  /// record's LSN (when valid).
  ///
  /// Records with invalid LSNs (forward path, before allocation) are applied
  /// unconditionally and do not stamp the page; the MTR commit stamps pages.
  static Status Apply(const LogRecord& record, Page* page);

  /// Applies a batch in order, stopping at the first error.
  static Status ApplyAll(const std::vector<LogRecord>& records, Page* page);
};

}  // namespace aurora

#endif  // AURORA_LOG_APPLICATOR_H_
