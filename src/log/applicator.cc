#include "log/applicator.h"

namespace aurora {

Status LogApplicator::Apply(const LogRecord& record, Page* page) {
  if (record.lsn != kInvalidLsn && page->IsFormatted() &&
      page->page_lsn() >= record.lsn) {
    return Status::OK();  // already applied
  }
  if (!page->IsFormatted() && record.op != RedoOp::kFormatPage) {
    // Redo is a delta over prior page state. On an unformatted buffer the
    // slotted-page fields are all zero, so a record mutation would grow the
    // heap from offset 0 straight through the header. This only arises when
    // the base image was lost (e.g. dropped for repair) after the format
    // record retired into it — the page is unrecoverable from local state.
    return Status::Corruption("redo apply to unformatted page");
  }
  Status s;
  switch (record.op) {
    case RedoOp::kFormatPage: {
      uint8_t type, level;
      s = record.GetFormat(&type, &level);
      if (!s.ok()) return s;
      page->Format(record.page_id, static_cast<PageType>(type), level);
      break;
    }
    case RedoOp::kInsert: {
      Slice key, value;
      s = record.GetKeyValue(&key, &value);
      if (!s.ok()) return s;
      s = page->InsertRecord(key, value);
      if (!s.ok()) return s;
      break;
    }
    case RedoOp::kDelete: {
      Slice key;
      s = record.GetKey(&key);
      if (!s.ok()) return s;
      s = page->DeleteRecord(key);
      if (!s.ok()) return s;
      break;
    }
    case RedoOp::kUpdate: {
      Slice key, value;
      s = record.GetKeyValue(&key, &value);
      if (!s.ok()) return s;
      s = page->UpdateRecord(key, value);
      if (!s.ok()) return s;
      break;
    }
    case RedoOp::kSetNext: {
      PageId id;
      s = record.GetPageId(&id);
      if (!s.ok()) return s;
      page->set_next_page(id);
      break;
    }
    case RedoOp::kSetPrev: {
      PageId id;
      s = record.GetPageId(&id);
      if (!s.ok()) return s;
      page->set_prev_page(id);
      break;
    }
    case RedoOp::kSetSchemaVersion: {
      uint32_t v;
      s = record.GetVersion(&v);
      if (!s.ok()) return s;
      page->set_schema_version(v);
      break;
    }
  }
  if (record.lsn != kInvalidLsn) {
    page->set_page_lsn(record.lsn);
  }
  return Status::OK();
}

Status LogApplicator::ApplyAll(const std::vector<LogRecord>& records,
                               Page* page) {
  for (const LogRecord& r : records) {
    Status s = Apply(r, page);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace aurora
