#include "storage/segment.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "log/applicator.h"

namespace aurora {

bool Segment::AddRecord(const LogRecord& record) {
  if (record.lsn == kInvalidLsn) return false;
  // Records at or below the applied floor are already reflected in base
  // pages (and possibly garbage collected); re-adding them (late gossip)
  // would leave unreclaimable junk.
  if (record.lsn <= applied_lsn_) return false;
  auto [it, inserted] = hot_log_.emplace(record.lsn, record);
  if (!inserted) return false;
  chain_[record.prev_pg_lsn] = record.lsn;
  records_by_page_[record.page_id].insert(record.lsn);
  if (record.lsn > max_lsn_) max_lsn_ = record.lsn;
  AdvanceScl();
  return true;
}

void Segment::AdvanceScl() {
  auto it = chain_.find(scl_);
  while (it != chain_.end()) {
    scl_ = it->second;
    it = chain_.find(scl_);
  }
}

const LogRecord* Segment::RecordAt(Lsn lsn) const {
  auto it = hot_log_.find(lsn);
  return it == hot_log_.end() ? nullptr : &it->second;
}

std::vector<LogRecord> Segment::RecordsAbove(Lsn from, size_t max) const {
  std::vector<LogRecord> out;
  for (auto it = hot_log_.upper_bound(from);
       it != hot_log_.end() && out.size() < max; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<InventoryEntry> Segment::Inventory() const {
  std::vector<InventoryEntry> out;
  out.reserve(hot_log_.size());
  for (const auto& [lsn, rec] : hot_log_) {
    out.push_back({lsn, rec.prev_pg_lsn, rec.prev_vol_lsn, rec.flags});
  }
  return out;
}

Lsn Segment::MaterializationLimit() const {
  // Never materialize beyond what is (a) locally complete, (b) known
  // durable volume-wide (so post-crash truncation cannot undo a base page),
  // and (c) below every possible outstanding read point.
  return std::min(scl_, std::min(vdl_hint_, pgmrpl_));
}

Page* Segment::BasePage(PageId page) {
  auto it = base_pages_.find(page);
  if (it == base_pages_.end()) {
    it = base_pages_.emplace(page, Page(page_size_)).first;
    if (synthesizer_) synthesizer_(page, &it->second);
  }
  return &it->second;
}

size_t Segment::CoalesceStep(size_t max_records) {
  const Lsn limit = MaterializationLimit();
  size_t applied = 0;
  auto it = hot_log_.upper_bound(applied_lsn_);
  while (it != hot_log_.end() && it->first <= limit && applied < max_records) {
    const LogRecord& rec = it->second;
    Page* page = BasePage(rec.page_id);
    Status s = LogApplicator::Apply(rec, page);
    AURORA_CHECK(s.ok(), "coalesce apply failed (non-deterministic redo?)");
    page->UpdateCrc();
    applied_lsn_ = it->first;
    ++applied;
    ++it;
  }
  return applied;
}

Result<Page> Segment::GetPageAsOf(PageId page, Lsn read_point) const {
  // Complete at the read point if the chain covers it directly, or if a
  // consistent snapshot proves this PG has no records in (scl, read_point].
  bool complete = read_point <= scl_ ||
                  (read_point <= snapshot_vdl_ && scl_ >= snapshot_tail_);
  if (!complete) {
    return Status::Unavailable("segment incomplete at read point");
  }
  if (read_point < applied_lsn_) {
    return Status::Stale("read point below materialized floor");
  }
  Page result(page_size_);
  auto base_it = base_pages_.find(page);
  if (base_it != base_pages_.end()) {
    result = base_it->second;
  } else if (synthesizer_) {
    synthesizer_(page, &result);
  }
  auto recs_it = records_by_page_.find(page);
  if (recs_it != records_by_page_.end()) {
    for (Lsn lsn : recs_it->second) {
      if (lsn > read_point) break;
      const LogRecord* rec = RecordAt(lsn);
      if (rec == nullptr) continue;  // already in the base image
      Status s = LogApplicator::Apply(*rec, &result);
      if (!s.ok()) return s;
    }
  }
  if (!result.IsFormatted()) {
    return Status::NotFound("page never written");
  }
  result.UpdateCrc();
  return result;
}

size_t Segment::GarbageCollect() {
  const Lsn floor = std::min(applied_lsn_, pgmrpl_);
  size_t collected = 0;
  auto it = hot_log_.begin();
  while (it != hot_log_.end() && it->first <= floor) {
    const LogRecord& rec = it->second;
    chain_.erase(rec.prev_pg_lsn);
    auto page_it = records_by_page_.find(rec.page_id);
    if (page_it != records_by_page_.end()) {
      page_it->second.erase(rec.lsn);
      if (page_it->second.empty()) records_by_page_.erase(page_it);
    }
    it = hot_log_.erase(it);
    ++collected;
  }
  return collected;
}

Status Segment::Truncate(Lsn above, Epoch epoch) {
  if (epoch < epoch_) {
    return Status::Stale("truncate from an older volume epoch");
  }
  epoch_ = epoch;
  AURORA_CHECK(applied_lsn_ <= above,
               "truncation below materialized pages — VDL went backwards");
  auto it = hot_log_.upper_bound(above);
  while (it != hot_log_.end()) {
    const LogRecord& rec = it->second;
    chain_.erase(rec.prev_pg_lsn);
    auto page_it = records_by_page_.find(rec.page_id);
    if (page_it != records_by_page_.end()) {
      page_it->second.erase(rec.lsn);
      if (page_it->second.empty()) records_by_page_.erase(page_it);
    }
    it = hot_log_.erase(it);
  }
  if (scl_ > above) scl_ = above;
  if (max_lsn_ > above) max_lsn_ = above;
  if (backup_lsn_ > above) backup_lsn_ = above;
  // The chain may now extend again from a lower point (it shouldn't, but
  // recompute defensively).
  AdvanceScl();
  return Status::OK();
}

size_t Segment::ScrubPages() {
  size_t corrupt = 0;
  for (const auto& [id, page] : base_pages_) {
    if (!page.VerifyCrc()) {
      corrupt_pages_.insert(id);
      ++corrupt;
    }
  }
  return corrupt;
}

void Segment::DropPageForRepair(PageId page) {
  base_pages_.erase(page);
  corrupt_pages_.erase(page);
}

void Segment::RestoreBasePage(PageId page, Page healthy) {
  corrupt_pages_.erase(page);
  base_pages_.insert_or_assign(page, std::move(healthy));
}

void Segment::CorruptBasePageForTesting(PageId page) {
  auto it = base_pages_.find(page);
  if (it != base_pages_.end()) it->second.CorruptForTesting(100);
}

std::vector<LogRecord> Segment::UnbackedRecords(size_t max) const {
  std::vector<LogRecord> out;
  for (auto it = hot_log_.upper_bound(backup_lsn_);
       it != hot_log_.end() && it->first <= scl_ && out.size() < max; ++it) {
    out.push_back(it->second);
  }
  return out;
}

void Segment::SerializeTo(std::string* dst) const {
  PutVarint32(dst, pg_);
  PutVarint64(dst, page_size_);
  PutVarint64(dst, scl_);
  PutVarint64(dst, max_lsn_);
  PutVarint64(dst, vdl_hint_);
  PutVarint64(dst, pgmrpl_);
  PutVarint64(dst, backup_lsn_);
  PutVarint64(dst, epoch_);
  PutVarint64(dst, applied_lsn_);
  PutVarint64(dst, hot_log_.size());
  for (const auto& [lsn, rec] : hot_log_) {
    rec.EncodeTo(dst);
  }
  PutVarint64(dst, base_pages_.size());
  for (const auto& [id, page] : base_pages_) {
    PutVarint64(dst, id);
    PutLengthPrefixedSlice(dst, page.raw());
  }
}

Status Segment::DeserializeFrom(Slice input) {
  uint32_t pg;
  uint64_t page_size, n_records, n_pages;
  if (!GetVarint32(&input, &pg) || !GetVarint64(&input, &page_size) ||
      !GetVarint64(&input, &scl_) || !GetVarint64(&input, &max_lsn_) ||
      !GetVarint64(&input, &vdl_hint_) || !GetVarint64(&input, &pgmrpl_) ||
      !GetVarint64(&input, &backup_lsn_) || !GetVarint64(&input, &epoch_) ||
      !GetVarint64(&input, &applied_lsn_) ||
      !GetVarint64(&input, &n_records)) {
    return Status::Corruption("bad segment state header");
  }
  pg_ = pg;
  page_size_ = page_size;
  hot_log_.clear();
  chain_.clear();
  records_by_page_.clear();
  base_pages_.clear();
  for (uint64_t i = 0; i < n_records; ++i) {
    LogRecord rec;
    Status s = LogRecord::DecodeFrom(&input, &rec);
    if (!s.ok()) return s;
    chain_[rec.prev_pg_lsn] = rec.lsn;
    records_by_page_[rec.page_id].insert(rec.lsn);
    hot_log_.emplace(rec.lsn, std::move(rec));
  }
  if (!GetVarint64(&input, &n_pages)) {
    return Status::Corruption("bad segment state pages");
  }
  for (uint64_t i = 0; i < n_pages; ++i) {
    uint64_t id;
    Slice raw;
    if (!GetVarint64(&input, &id) || !GetLengthPrefixedSlice(&input, &raw)) {
      return Status::Corruption("bad segment page entry");
    }
    Page page(page_size_);
    Status s = page.LoadRaw(raw);
    if (!s.ok()) return s;
    base_pages_.emplace(id, std::move(page));
  }
  return Status::OK();
}

uint64_t Segment::ApproximateBytes() const {
  uint64_t bytes = 0;
  for (const auto& [lsn, rec] : hot_log_) bytes += rec.EncodedSize();
  bytes += base_pages_.size() * page_size_;
  return bytes;
}

}  // namespace aurora
