#include "storage/segment.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "log/applicator.h"

namespace aurora {

bool Segment::AddRecord(const LogRecord& record) {
  if (record.lsn == kInvalidLsn) return false;
  // Records at or below the applied floor are already reflected in base
  // pages (and possibly garbage collected); re-adding them (late gossip)
  // would leave unreclaimable junk.
  if (record.lsn <= applied_lsn_) return false;
  auto [it, inserted] = hot_log_.emplace(record.lsn, record);
  if (!inserted) return false;
  chain_[record.prev_pg_lsn] = record.lsn;
  records_by_page_[record.page_id].insert(record.lsn);
  if (record.lsn > max_lsn_) max_lsn_ = record.lsn;
  // A record above the cached entry's build point is picked up by partial
  // replay; one at or below it (late gossip filling a gap) means the cached
  // image was built without it — drop the entry.
  if (!page_cache_.empty()) {
    auto cit = page_cache_.find(record.page_id);
    if (cit != page_cache_.end() && record.lsn <= cit->second.built_lsn) {
      cache_lru_.erase(cit->second.stamp);
      page_cache_.erase(cit);
    }
  }
  AdvanceScl();
  return true;
}

void Segment::AdvanceScl() {
  auto it = chain_.find(scl_);
  while (it != chain_.end()) {
    scl_ = it->second;
    it = chain_.find(scl_);
  }
}

const LogRecord* Segment::RecordAt(Lsn lsn) const {
  auto it = hot_log_.find(lsn);
  return it == hot_log_.end() ? nullptr : &it->second;
}

std::vector<const LogRecord*> Segment::RecordsAbove(Lsn from,
                                                    size_t max) const {
  std::vector<const LogRecord*> out;
  for (auto it = hot_log_.upper_bound(from);
       it != hot_log_.end() && out.size() < max; ++it) {
    out.push_back(&it->second);
  }
  return out;
}

std::vector<InventoryEntry> Segment::Inventory() const {
  std::vector<InventoryEntry> out;
  out.reserve(hot_log_.size());
  for (const auto& [lsn, rec] : hot_log_) {
    out.push_back({lsn, rec.prev_pg_lsn, rec.prev_vol_lsn, rec.flags});
  }
  return out;
}

Lsn Segment::MaterializationLimit() const {
  // Never materialize beyond what is (a) locally complete, (b) known
  // durable volume-wide (so post-crash truncation cannot undo a base page),
  // and (c) below every possible outstanding read point.
  return std::min(scl_, std::min(vdl_hint_, pgmrpl_));
}

Page* Segment::BasePage(PageId page) {
  auto it = base_pages_.find(page);
  if (it == base_pages_.end()) {
    it = base_pages_.emplace(page, Page(page_size_)).first;
    if (synthesizer_) synthesizer_(page, &it->second);
  }
  return &it->second;
}

size_t Segment::CoalesceStep(size_t max_records) {
  const Lsn limit = MaterializationLimit();
  size_t applied = 0;
  auto it = hot_log_.upper_bound(applied_lsn_);
  while (it != hot_log_.end() && it->first <= limit && applied < max_records) {
    const LogRecord& rec = it->second;
    Page* page = BasePage(rec.page_id);
    if (!page->IsFormatted() && rec.op != RedoOp::kFormatPage) {
      // The page's base image was dropped for repair after its format
      // record retired into it: this record cannot apply locally. Hold the
      // materialization frontier here until a peer copy is restored (and
      // drop the unformatted placeholder BasePage just created — an empty
      // entry is indistinguishable from a missing one, and reads must keep
      // treating the page as lost).
      base_pages_.erase(rec.page_id);
      break;
    }
    Status s = LogApplicator::Apply(rec, page);
    AURORA_CHECK(s.ok(), "coalesce apply failed (non-deterministic redo?)");
    page->UpdateCrc();
    applied_lsn_ = it->first;
    ++applied;
    ++it;
  }
  return applied;
}

Result<Page> Segment::GetPageAsOf(PageId page, Lsn read_point) const {
  // Complete at the read point if the chain covers it directly, or if a
  // consistent snapshot proves this PG has no records in (scl, read_point].
  bool complete = read_point <= scl_ ||
                  (read_point <= snapshot_vdl_ && scl_ >= snapshot_tail_);
  if (!complete) {
    return Status::Unavailable("segment incomplete at read point");
  }
  if (read_point < applied_lsn_) {
    return Status::Stale("read point below materialized floor");
  }

  const bool cache_on = CacheEnabled();
  bool historical = false;  // read point below the cached version: bypass
  if (cache_on) {
    auto cit = page_cache_.find(page);
    if (cit != page_cache_.end()) {
      CacheEntry& entry = cit->second;
      if (read_point >= entry.built_lsn) {
        // Any records for this page in (built_lsn, read_point]?
        auto recs_it = records_by_page_.find(page);
        auto next = recs_it == records_by_page_.end()
                        ? std::set<Lsn>::const_iterator()
                        : recs_it->second.upper_bound(entry.built_lsn);
        bool newer = recs_it != records_by_page_.end() &&
                     next != recs_it->second.end() && *next <= read_point;
        if (!newer) {
          ++cache_stats_.hits;
          CacheTouch(&entry);
          return entry.image;
        }
        // Partial hit: replay only the suffix on top of the cached image.
        // Redo application is deterministic, so this yields byte-identical
        // results to a full rebuild (the cached image already reflects
        // everything <= built_lsn).
        Page result = entry.image;
        for (auto it = next; it != recs_it->second.end() && *it <= read_point;
             ++it) {
          const LogRecord* rec = RecordAt(*it);
          if (rec == nullptr) continue;  // already in the base image
          Status s = LogApplicator::Apply(*rec, &result);
          if (!s.ok()) return s;
        }
        result.UpdateCrc();
        ++cache_stats_.partial_hits;
        CacheInsert(page, result, read_point);
        return result;
      }
      historical = true;
    }
  }

  Page result(page_size_);
  auto base_it = base_pages_.find(page);
  if (base_it != base_pages_.end()) {
    // Verify the stored image before serving it: a latent sector fault
    // planted between scrub rounds must surface as Corruption (triggering
    // read-repair from a peer), never as a silently wrong page.
    if (base_it->second.IsFormatted() && !base_it->second.VerifyCrc()) {
      corrupt_pages_.insert(page);
      return Status::Corruption("base page CRC mismatch");
    }
    result = base_it->second;
  } else if (synthesizer_) {
    synthesizer_(page, &result);
  }
  auto recs_it = records_by_page_.find(page);
  if (recs_it != records_by_page_.end()) {
    for (Lsn lsn : recs_it->second) {
      if (lsn > read_point) break;
      const LogRecord* rec = RecordAt(lsn);
      if (rec == nullptr) continue;  // already in the base image
      Status s = LogApplicator::Apply(*rec, &result);
      if (!s.ok()) return s;
    }
  }
  if (!result.IsFormatted()) {
    return Status::NotFound("page never written");
  }
  result.UpdateCrc();
  if (cache_on) {
    ++cache_stats_.misses;
    // Historical reads must not displace the newer cached version.
    if (!historical) CacheInsert(page, result, read_point);
  }
  return result;
}

void Segment::set_page_cache_budget(uint64_t bytes) {
  cache_budget_bytes_ = bytes;
  if (!CacheEnabled()) {
    CacheClear();
    return;
  }
  while (!page_cache_.empty() &&
         page_cache_.size() * page_size_ > cache_budget_bytes_) {
    auto oldest = cache_lru_.begin();
    page_cache_.erase(oldest->second);
    cache_lru_.erase(oldest);
    ++cache_stats_.evictions;
  }
}

void Segment::CacheInsert(PageId page, const Page& image,
                          Lsn built_lsn) const {
  auto it = page_cache_.find(page);
  if (it != page_cache_.end()) {
    it->second.image = image;
    it->second.built_lsn = built_lsn;
    CacheTouch(&it->second);
    return;
  }
  // Evict to fit the new entry under the byte budget (LRU order).
  while (!page_cache_.empty() &&
         (page_cache_.size() + 1) * page_size_ > cache_budget_bytes_) {
    auto oldest = cache_lru_.begin();
    page_cache_.erase(oldest->second);
    cache_lru_.erase(oldest);
    ++cache_stats_.evictions;
  }
  uint64_t stamp = ++cache_clock_;
  page_cache_.emplace(page, CacheEntry{image, built_lsn, stamp});
  cache_lru_.emplace(stamp, page);
}

void Segment::CacheTouch(CacheEntry* entry) const {
  auto node = cache_lru_.extract(entry->stamp);
  entry->stamp = ++cache_clock_;
  node.key() = entry->stamp;
  cache_lru_.insert(std::move(node));
}

void Segment::CacheErase(PageId page) {
  auto it = page_cache_.find(page);
  if (it == page_cache_.end()) return;
  cache_lru_.erase(it->second.stamp);
  page_cache_.erase(it);
}

void Segment::CacheClear() {
  page_cache_.clear();
  cache_lru_.clear();
}

size_t Segment::GarbageCollect() {
  const Lsn floor = std::min(applied_lsn_, pgmrpl_);
  size_t collected = 0;
  auto it = hot_log_.begin();
  while (it != hot_log_.end() && it->first <= floor) {
    const LogRecord& rec = it->second;
    chain_.erase(rec.prev_pg_lsn);
    auto page_it = records_by_page_.find(rec.page_id);
    if (page_it != records_by_page_.end()) {
      page_it->second.erase(rec.lsn);
      if (page_it->second.empty()) records_by_page_.erase(page_it);
    }
    // Collecting this record can strand a cached image of its page:
    // (a) if the image predates the record (built_lsn < lsn), a later
    //     partial replay could no longer find it in the hot log and would
    //     serve the page without it (the full rebuild has it via the base);
    // (b) if the page's base image is gone (dropped for repair, awaiting a
    //     peer copy), this record was the only remaining source of its
    //     data, and a surviving image would outlive the segment's own
    //     knowledge. Reads must degrade exactly as without the cache.
    // Entries for pages untouched by this collection stay valid: their
    // images already reflect everything the hot log is forgetting.
    if (!page_cache_.empty()) {
      auto cit = page_cache_.find(rec.page_id);
      if (cit != page_cache_.end()) {
        auto base_it = base_pages_.find(rec.page_id);
        const bool base_lost = base_it == base_pages_.end() ||
                               !base_it->second.IsFormatted();
        if (base_lost || cit->second.built_lsn < rec.lsn) {
          CacheErase(rec.page_id);
        }
      }
    }
    it = hot_log_.erase(it);
    ++collected;
  }
  return collected;
}

Status Segment::Truncate(Lsn above, Epoch epoch) {
  if (epoch < epoch_) {
    return Status::Stale("truncate from an older volume epoch");
  }
  epoch_ = epoch;
  AURORA_CHECK(applied_lsn_ <= above,
               "truncation below materialized pages — VDL went backwards");
  auto it = hot_log_.upper_bound(above);
  while (it != hot_log_.end()) {
    const LogRecord& rec = it->second;
    chain_.erase(rec.prev_pg_lsn);
    auto page_it = records_by_page_.find(rec.page_id);
    if (page_it != records_by_page_.end()) {
      page_it->second.erase(rec.lsn);
      if (page_it->second.empty()) records_by_page_.erase(page_it);
    }
    it = hot_log_.erase(it);
  }
  if (scl_ > above) scl_ = above;
  if (max_lsn_ > above) max_lsn_ = above;
  if (backup_lsn_ > above) backup_lsn_ = above;
  // Cached images built beyond the truncation point contain records that no
  // longer exist.
  if (!page_cache_.empty()) {
    CacheEraseIf([above](const CacheEntry& e) { return e.built_lsn > above; });
  }
  // The chain may now extend again from a lower point (it shouldn't, but
  // recompute defensively).
  AdvanceScl();
  return Status::OK();
}

size_t Segment::ScrubPages() {
  size_t corrupt = 0;
  for (const auto& [id, page] : base_pages_) {
    if (!page.VerifyCrc()) {
      corrupt_pages_.insert(id);
      ++corrupt;
    }
  }
  return corrupt;
}

void Segment::DropPageForRepair(PageId page) {
  base_pages_.erase(page);
  corrupt_pages_.erase(page);
  CacheErase(page);
}

void Segment::RestoreBasePage(PageId page, Page healthy) {
  corrupt_pages_.erase(page);
  base_pages_.insert_or_assign(page, std::move(healthy));
  // The installed copy may be ahead of what the cached image was built
  // against; rebuild from the fresh base on the next read.
  CacheErase(page);
}

void Segment::CorruptBasePageForTesting(PageId page) {
  auto it = base_pages_.find(page);
  if (it != base_pages_.end()) it->second.CorruptForTesting(100);
  // Keep reads faithful to the (now corrupt) base image so scrub/repair
  // tests observe the corruption rather than a cached clean copy.
  CacheErase(page);
}

bool Segment::CorruptNthBasePage(uint64_t nth) {
  if (base_pages_.empty()) return false;
  auto it = base_pages_.begin();
  std::advance(it, nth % base_pages_.size());
  if (!it->second.IsFormatted()) return false;
  it->second.CorruptForTesting(100);
  CacheErase(it->first);
  return true;
}

std::vector<const LogRecord*> Segment::UnbackedRecords(size_t max) const {
  std::vector<const LogRecord*> out;
  for (auto it = hot_log_.upper_bound(backup_lsn_);
       it != hot_log_.end() && it->first <= scl_ && out.size() < max; ++it) {
    out.push_back(&it->second);
  }
  return out;
}

void Segment::SerializeTo(std::string* dst) const {
  PutVarint32(dst, pg_);
  PutVarint64(dst, page_size_);
  PutVarint64(dst, scl_);
  PutVarint64(dst, max_lsn_);
  PutVarint64(dst, vdl_hint_);
  PutVarint64(dst, pgmrpl_);
  PutVarint64(dst, backup_lsn_);
  PutVarint64(dst, epoch_);
  PutVarint64(dst, applied_lsn_);
  PutVarint64(dst, hot_log_.size());
  for (const auto& [lsn, rec] : hot_log_) {
    rec.EncodeTo(dst);
  }
  PutVarint64(dst, base_pages_.size());
  for (const auto& [id, page] : base_pages_) {
    PutVarint64(dst, id);
    PutLengthPrefixedSlice(dst, page.raw());
  }
}

Status Segment::DeserializeFrom(Slice input) {
  uint32_t pg;
  uint64_t page_size, n_records, n_pages;
  if (!GetVarint32(&input, &pg) || !GetVarint64(&input, &page_size) ||
      !GetVarint64(&input, &scl_) || !GetVarint64(&input, &max_lsn_) ||
      !GetVarint64(&input, &vdl_hint_) || !GetVarint64(&input, &pgmrpl_) ||
      !GetVarint64(&input, &backup_lsn_) || !GetVarint64(&input, &epoch_) ||
      !GetVarint64(&input, &applied_lsn_) ||
      !GetVarint64(&input, &n_records)) {
    return Status::Corruption("bad segment state header");
  }
  pg_ = pg;
  page_size_ = page_size;
  hot_log_.clear();
  chain_.clear();
  records_by_page_.clear();
  base_pages_.clear();
  CacheClear();
  for (uint64_t i = 0; i < n_records; ++i) {
    LogRecord rec;
    Status s = LogRecord::DecodeFrom(&input, &rec);
    if (!s.ok()) return s;
    chain_[rec.prev_pg_lsn] = rec.lsn;
    records_by_page_[rec.page_id].insert(rec.lsn);
    hot_log_.emplace(rec.lsn, std::move(rec));
  }
  if (!GetVarint64(&input, &n_pages)) {
    return Status::Corruption("bad segment state pages");
  }
  for (uint64_t i = 0; i < n_pages; ++i) {
    uint64_t id;
    Slice raw;
    if (!GetVarint64(&input, &id) || !GetLengthPrefixedSlice(&input, &raw)) {
      return Status::Corruption("bad segment page entry");
    }
    Page page(page_size_);
    Status s = page.LoadRaw(raw);
    if (!s.ok()) return s;
    base_pages_.emplace(id, std::move(page));
  }
  return Status::OK();
}

uint64_t Segment::ApproximateBytes() const {
  uint64_t bytes = 0;
  for (const auto& [lsn, rec] : hot_log_) bytes += rec.EncodedSize();
  bytes += base_pages_.size() * page_size_;
  return bytes;
}

}  // namespace aurora
