#include "storage/wire.h"

#include "common/coding.h"

namespace aurora {

namespace {
Status Malformed(const char* what) {
  return Status::Corruption(std::string("malformed message: ") + what);
}
}  // namespace

void WriteBatchMsg::EncodeTo(std::string* dst) const {
  EncodeHeaderTo(dst);
  EncodeBody(epoch, cfg_epoch, batch_seq, vdl_hint, pgmrpl_hint, records, dst);
}

void WriteBatchMsg::EncodeHeaderTo(std::string* dst) const {
  PutVarint32(dst, pg);
  dst->push_back(static_cast<char>(replica));
}

void WriteBatchMsg::EncodeBody(Epoch epoch, uint64_t cfg_epoch,
                               uint64_t batch_seq, Lsn vdl_hint,
                               Lsn pgmrpl_hint,
                               const std::vector<LogRecord>& records,
                               std::string* dst) {
  PutVarint64(dst, epoch);
  PutVarint64(dst, cfg_epoch);
  PutVarint64(dst, batch_seq);
  PutVarint64(dst, vdl_hint);
  PutVarint64(dst, pgmrpl_hint);
  std::string blob;
  EncodeRecordBatch(records, &blob);
  PutLengthPrefixedSlice(dst, blob);
}

Status WriteBatchMsg::DecodeFrom(Slice input, WriteBatchMsg* out) {
  uint32_t pg;
  if (!GetVarint32(&input, &pg) || input.empty()) return Malformed("batch");
  out->pg = pg;
  out->replica = static_cast<ReplicaIdx>(input[0]);
  input.remove_prefix(1);
  Slice blob;
  if (!GetVarint64(&input, &out->epoch) ||
      !GetVarint64(&input, &out->cfg_epoch) ||
      !GetVarint64(&input, &out->batch_seq) ||
      !GetVarint64(&input, &out->vdl_hint) ||
      !GetVarint64(&input, &out->pgmrpl_hint) ||
      !GetLengthPrefixedSlice(&input, &blob)) {
    return Malformed("batch");
  }
  return DecodeRecordBatch(blob, &out->records);
}

Status WriteBatchMsg::DecodeFrom(Slice head, Slice body, WriteBatchMsg* out) {
  if (head.empty()) return DecodeFrom(body, out);
  if (body.empty()) return DecodeFrom(head, out);
  // True split: EncodeHeaderTo ends the header fragment exactly after the
  // replica byte, so each field lives wholly in one fragment.
  uint32_t pg;
  if (!GetVarint32(&head, &pg) || head.empty()) return Malformed("batch");
  out->pg = pg;
  out->replica = static_cast<ReplicaIdx>(head[0]);
  head.remove_prefix(1);
  if (!head.empty()) return Malformed("batch");
  Slice blob;
  if (!GetVarint64(&body, &out->epoch) ||
      !GetVarint64(&body, &out->cfg_epoch) ||
      !GetVarint64(&body, &out->batch_seq) ||
      !GetVarint64(&body, &out->vdl_hint) ||
      !GetVarint64(&body, &out->pgmrpl_hint) ||
      !GetLengthPrefixedSlice(&body, &blob)) {
    return Malformed("batch");
  }
  return DecodeRecordBatch(blob, &out->records);
}

void WriteAckMsg::EncodeTo(std::string* dst) const {
  PutVarint32(dst, pg);
  dst->push_back(static_cast<char>(replica));
  PutVarint64(dst, batch_seq);
  PutVarint64(dst, scl);
  dst->push_back(static_cast<char>(status_code));
  PutVarint64(dst, epoch);
  PutVarint64(dst, cfg_epoch);
}

Status WriteAckMsg::DecodeFrom(Slice input, WriteAckMsg* out) {
  uint32_t pg;
  if (!GetVarint32(&input, &pg) || input.empty()) return Malformed("ack");
  out->pg = pg;
  out->replica = static_cast<ReplicaIdx>(input[0]);
  input.remove_prefix(1);
  if (!GetVarint64(&input, &out->batch_seq) ||
      !GetVarint64(&input, &out->scl) || input.empty()) {
    return Malformed("ack");
  }
  out->status_code = static_cast<uint8_t>(input[0]);
  input.remove_prefix(1);
  if (!GetVarint64(&input, &out->epoch) ||
      !GetVarint64(&input, &out->cfg_epoch)) {
    return Malformed("ack");
  }
  return Status::OK();
}

void ReadPageReqMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  PutVarint32(dst, pg);
  PutVarint64(dst, page);
  PutVarint64(dst, read_point);
  PutVarint64(dst, epoch);
  PutVarint64(dst, cfg_epoch);
}

Status ReadPageReqMsg::DecodeFrom(Slice input, ReadPageReqMsg* out) {
  uint32_t pg;
  if (!GetVarint64(&input, &out->req_id) || !GetVarint32(&input, &pg) ||
      !GetVarint64(&input, &out->page) ||
      !GetVarint64(&input, &out->read_point) ||
      !GetVarint64(&input, &out->epoch) ||
      !GetVarint64(&input, &out->cfg_epoch)) {
    return Malformed("read req");
  }
  out->pg = pg;
  return Status::OK();
}

void ReadPageRespMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  dst->push_back(static_cast<char>(status_code));
  PutVarint64(dst, page_lsn);
  PutLengthPrefixedSlice(dst, page_bytes);
}

Status ReadPageRespMsg::DecodeFrom(Slice input, ReadPageRespMsg* out) {
  if (!GetVarint64(&input, &out->req_id) || input.empty()) {
    return Malformed("read resp");
  }
  out->status_code = static_cast<uint8_t>(input[0]);
  input.remove_prefix(1);
  Slice bytes;
  if (!GetVarint64(&input, &out->page_lsn) ||
      !GetLengthPrefixedSlice(&input, &bytes)) {
    return Malformed("read resp");
  }
  out->page_bytes = bytes.ToString();
  return Status::OK();
}

void InventoryReqMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  PutVarint32(dst, pg);
}

Status InventoryReqMsg::DecodeFrom(Slice input, InventoryReqMsg* out) {
  uint32_t pg;
  if (!GetVarint64(&input, &out->req_id) || !GetVarint32(&input, &pg)) {
    return Malformed("inventory req");
  }
  out->pg = pg;
  return Status::OK();
}

void InventoryRespMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  PutVarint32(dst, pg);
  dst->push_back(static_cast<char>(replica));
  PutVarint64(dst, epoch);
  PutVarint64(dst, scl);
  PutVarint64(dst, vdl_hint);
  PutVarint64(dst, entries.size());
  for (const InventoryEntry& e : entries) {
    PutVarint64(dst, e.lsn);
    PutVarint64(dst, e.prev);
    PutVarint64(dst, e.vprev);
    dst->push_back(static_cast<char>(e.flags));
  }
}

Status InventoryRespMsg::DecodeFrom(Slice input, InventoryRespMsg* out) {
  uint32_t pg;
  if (!GetVarint64(&input, &out->req_id) || !GetVarint32(&input, &pg) ||
      input.empty()) {
    return Malformed("inventory resp");
  }
  out->pg = pg;
  out->replica = static_cast<ReplicaIdx>(input[0]);
  input.remove_prefix(1);
  uint64_t n;
  if (!GetVarint64(&input, &out->epoch) || !GetVarint64(&input, &out->scl) ||
      !GetVarint64(&input, &out->vdl_hint) || !GetVarint64(&input, &n)) {
    return Malformed("inventory resp");
  }
  // Each entry needs at least 4 bytes on the wire; cap the reserve so a
  // corrupt count can't drive a huge allocation before parsing fails.
  if (n > input.size() / 4) return Malformed("inventory count");
  out->entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    InventoryEntry e;
    if (!GetVarint64(&input, &e.lsn) || !GetVarint64(&input, &e.prev) ||
        !GetVarint64(&input, &e.vprev) || input.empty()) {
      return Malformed("inventory entry");
    }
    e.flags = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    out->entries.push_back(e);
  }
  return Status::OK();
}

void TruncateReqMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  PutVarint32(dst, pg);
  PutVarint64(dst, epoch);
  PutVarint64(dst, truncate_above);
}

Status TruncateReqMsg::DecodeFrom(Slice input, TruncateReqMsg* out) {
  uint32_t pg;
  if (!GetVarint64(&input, &out->req_id) || !GetVarint32(&input, &pg) ||
      !GetVarint64(&input, &out->epoch) ||
      !GetVarint64(&input, &out->truncate_above)) {
    return Malformed("truncate req");
  }
  out->pg = pg;
  return Status::OK();
}

void TruncateAckMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  PutVarint32(dst, pg);
  dst->push_back(static_cast<char>(replica));
  dst->push_back(static_cast<char>(status_code));
}

Status TruncateAckMsg::DecodeFrom(Slice input, TruncateAckMsg* out) {
  uint32_t pg;
  if (!GetVarint64(&input, &out->req_id) || !GetVarint32(&input, &pg) ||
      input.size() < 2) {
    return Malformed("truncate ack");
  }
  out->pg = pg;
  out->replica = static_cast<ReplicaIdx>(input[0]);
  out->status_code = static_cast<uint8_t>(input[1]);
  return Status::OK();
}

void PgmrplMsg::EncodeTo(std::string* dst) const {
  PutVarint32(dst, pg);
  PutVarint64(dst, pgmrpl);
  dst->push_back(has_snapshot ? 1 : 0);
  if (has_snapshot) {
    PutVarint64(dst, vdl_snapshot);
    PutVarint64(dst, pg_tail);
  }
}

Status PgmrplMsg::DecodeFrom(Slice input, PgmrplMsg* out) {
  uint32_t pg;
  if (!GetVarint32(&input, &pg) || !GetVarint64(&input, &out->pgmrpl) ||
      input.empty()) {
    return Malformed("pgmrpl");
  }
  out->pg = pg;
  out->has_snapshot = input[0] != 0;
  input.remove_prefix(1);
  if (out->has_snapshot &&
      (!GetVarint64(&input, &out->vdl_snapshot) ||
       !GetVarint64(&input, &out->pg_tail))) {
    return Malformed("pgmrpl snapshot");
  }
  return Status::OK();
}

void GossipPullMsg::EncodeTo(std::string* dst) const {
  PutVarint32(dst, pg);
  dst->push_back(static_cast<char>(replica));
  PutVarint64(dst, epoch);
  PutVarint64(dst, cfg_epoch);
  PutVarint64(dst, scl);
  PutVarint64(dst, max_lsn);
}

Status GossipPullMsg::DecodeFrom(Slice input, GossipPullMsg* out) {
  uint32_t pg;
  if (!GetVarint32(&input, &pg) || input.empty()) return Malformed("gossip");
  out->pg = pg;
  out->replica = static_cast<ReplicaIdx>(input[0]);
  input.remove_prefix(1);
  if (!GetVarint64(&input, &out->epoch) ||
      !GetVarint64(&input, &out->cfg_epoch) ||
      !GetVarint64(&input, &out->scl) ||
      !GetVarint64(&input, &out->max_lsn)) {
    return Malformed("gossip");
  }
  return Status::OK();
}

void GossipPushMsg::EncodeTo(std::string* dst) const {
  PutVarint32(dst, pg);
  PutVarint64(dst, epoch);
  PutVarint64(dst, cfg_epoch);
  std::string blob;
  EncodeRecordBatch(records, &blob);
  PutLengthPrefixedSlice(dst, blob);
}

void GossipPushMsg::EncodeRecordsTo(PgId pg, Epoch epoch, uint64_t cfg_epoch,
                                    const std::vector<const LogRecord*>& records,
                                    std::string* dst) {
  PutVarint32(dst, pg);
  PutVarint64(dst, epoch);
  PutVarint64(dst, cfg_epoch);
  std::string blob;
  EncodeRecordBatch(records, &blob);
  PutLengthPrefixedSlice(dst, blob);
}

Status GossipPushMsg::DecodeFrom(Slice input, GossipPushMsg* out) {
  uint32_t pg;
  Slice blob;
  if (!GetVarint32(&input, &pg) || !GetVarint64(&input, &out->epoch) ||
      !GetVarint64(&input, &out->cfg_epoch) ||
      !GetLengthPrefixedSlice(&input, &blob)) {
    return Malformed("gossip push");
  }
  out->pg = pg;
  return DecodeRecordBatch(blob, &out->records);
}

void ReplicaStreamMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, vdl);
  std::string blob;
  EncodeRecordBatch(records, &blob);
  PutLengthPrefixedSlice(dst, blob);
  PutVarint64(dst, commits.size());
  for (const auto& [lsn, time] : commits) {
    PutVarint64(dst, lsn);
    PutVarint64(dst, time);
  }
}

Status ReplicaStreamMsg::DecodeFrom(Slice input, ReplicaStreamMsg* out) {
  Slice blob;
  uint64_t n;
  if (!GetVarint64(&input, &out->vdl) ||
      !GetLengthPrefixedSlice(&input, &blob) || !GetVarint64(&input, &n)) {
    return Malformed("replica stream");
  }
  Status s = DecodeRecordBatch(blob, &out->records);
  if (!s.ok()) return s;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t lsn, time;
    if (!GetVarint64(&input, &lsn) || !GetVarint64(&input, &time)) {
      return Malformed("replica stream commit");
    }
    out->commits.emplace_back(lsn, time);
  }
  return Status::OK();
}

void ReplicaReadPointMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, read_point);
}

Status ReplicaReadPointMsg::DecodeFrom(Slice input, ReplicaReadPointMsg* out) {
  if (!GetVarint64(&input, &out->read_point)) {
    return Malformed("replica read point");
  }
  return Status::OK();
}

void SegmentStateReqMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  PutVarint32(dst, pg);
}

Status SegmentStateReqMsg::DecodeFrom(Slice input, SegmentStateReqMsg* out) {
  uint32_t pg;
  if (!GetVarint64(&input, &out->req_id) || !GetVarint32(&input, &pg)) {
    return Malformed("segment state req");
  }
  out->pg = pg;
  return Status::OK();
}

void SegmentStateRespMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  PutVarint32(dst, pg);
  PutLengthPrefixedSlice(dst, state);
}

Status SegmentStateRespMsg::DecodeFrom(Slice input, SegmentStateRespMsg* out) {
  uint32_t pg;
  Slice state;
  if (!GetVarint64(&input, &out->req_id) || !GetVarint32(&input, &pg) ||
      !GetLengthPrefixedSlice(&input, &state)) {
    return Malformed("segment state resp");
  }
  out->pg = pg;
  out->state = state.ToString();
  return Status::OK();
}

void SegmentChunkReqMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  PutVarint32(dst, pg);
  PutVarint32(dst, chunk_index);
  PutVarint32(dst, chunk_bytes);
}

Status SegmentChunkReqMsg::DecodeFrom(Slice input, SegmentChunkReqMsg* out) {
  uint32_t pg;
  if (!GetVarint64(&input, &out->req_id) || !GetVarint32(&input, &pg) ||
      !GetVarint32(&input, &out->chunk_index) ||
      !GetVarint32(&input, &out->chunk_bytes)) {
    return Malformed("segment chunk req");
  }
  out->pg = pg;
  return Status::OK();
}

void SegmentChunkRespMsg::EncodeTo(std::string* dst) const {
  PutVarint64(dst, req_id);
  PutVarint32(dst, pg);
  PutVarint32(dst, chunk_index);
  PutVarint32(dst, total_chunks);
  PutVarint64(dst, total_bytes);
  PutVarint32(dst, blob_crc);
  PutVarint32(dst, chunk_crc);
  PutLengthPrefixedSlice(dst, data);
}

Status SegmentChunkRespMsg::DecodeFrom(Slice input, SegmentChunkRespMsg* out) {
  uint32_t pg;
  Slice data;
  if (!GetVarint64(&input, &out->req_id) || !GetVarint32(&input, &pg) ||
      !GetVarint32(&input, &out->chunk_index) ||
      !GetVarint32(&input, &out->total_chunks) ||
      !GetVarint64(&input, &out->total_bytes) ||
      !GetVarint32(&input, &out->blob_crc) ||
      !GetVarint32(&input, &out->chunk_crc) ||
      !GetLengthPrefixedSlice(&input, &data)) {
    return Malformed("segment chunk resp");
  }
  out->pg = pg;
  out->data = data.ToString();
  return Status::OK();
}

}  // namespace aurora
