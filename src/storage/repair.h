#ifndef AURORA_STORAGE_REPAIR_H_
#define AURORA_STORAGE_REPAIR_H_

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/control_plane.h"
#include "storage/storage_node.h"

namespace aurora {

/// The re-replication orchestrator of §2.2: watches the fleet, and when a
/// segment replica's host has been unreachable longer than the detection
/// threshold, migrates the segment to a healthy host by copying state from a
/// live peer. MTTR — the window of double-fault vulnerability — is detection
/// time plus transfer time (segment bytes over the fabric, e.g. "a 10GB
/// segment can be repaired in 10 seconds on a 10Gbps network link").
///
/// Each repair is a small state machine driving a chunked, resumable segment
/// transfer over the adversarial fabric (see DESIGN.md §12): per-chunk
/// CRC32C, timeout/retry with exponential backoff, donor failover mid-copy,
/// abort/re-dispatch when the replacement itself crashes, and a fleet-wide
/// concurrency cap so an AZ loss triggers a bounded repair wave, not a storm.
///
/// The same machinery performs heat management (§2.3): MigrateReplica() can
/// move a segment off a hot host proactively, and ZDP-style one-AZ-at-a-time
/// patching just crashes/restarts nodes briefly — short enough that no
/// repair triggers.
struct RepairOptions {
  /// How long a host must be down before repair starts (distinguishes a
  /// reboot blip from a real loss).
  SimDuration detection_threshold = Seconds(3);
  SimDuration poll_interval = Millis(500);
  /// Size of one transfer chunk (the unit of retry and resume).
  uint32_t chunk_bytes = 64 * 1024;
  /// Base per-chunk timeout; doubles per consecutive retry (capped at 2^5).
  SimDuration chunk_timeout = Millis(50);
  /// Consecutive timeouts of one chunk before trying a different donor.
  uint32_t max_chunk_attempts = 6;
  /// Fleet-wide cap on concurrently running transfers; excess repairs queue.
  size_t max_concurrent = 4;
};

struct RepairStats {
  uint64_t started = 0;
  uint64_t completed = 0;
  /// Transfers aborted because the replacement host crashed mid-copy; the
  /// repair is re-dispatched to a fresh target on a later poll.
  uint64_t failed = 0;
  uint64_t chunk_retries = 0;
  uint64_t donor_failovers = 0;
  uint64_t bytes_copied = 0;
  uint64_t concurrent_peak = 0;
  /// Dispatches deferred because max_concurrent transfers were running.
  uint64_t queued = 0;
  /// Dead ends, each retried on a later poll: no healthy replacement host
  /// anywhere / no live member holding the segment.
  uint64_t no_replacement = 0;
  uint64_t no_donor = 0;
  /// Transfers restarted from chunk 0 because the donor-side snapshot
  /// changed mid-copy (failover to a peer with different state).
  uint64_t transfer_restarts = 0;
  uint64_t migrations = 0;
};

class RepairManager {
 public:
  RepairManager(sim::EventLoop* loop, sim::Network* network,
                const sim::Topology* topology, ControlPlane* control_plane,
                RepairOptions options, Random rng);

  /// Starts the watchdog.
  void Start();
  /// Stops the watchdog: cancels the poll timer and every in-flight
  /// transfer's chunk timeout, so no repair events remain pending.
  void Stop();

  /// Proactively moves (pg, idx) to a new host (heat management). No-op if
  /// a repair of the same replica is already in flight.
  void MigrateReplica(PgId pg, ReplicaIdx idx);
  /// Test-facing variant pinning the replacement host (concurrent-repair
  /// regression coverage).
  void MigrateReplicaTo(PgId pg, ReplicaIdx idx, sim::NodeId target);

  const RepairStats& stats() const { return stats_; }
  /// MTTR distribution (detection to installed copy, microseconds).
  const Histogram* mttr_histogram() const { return &mttr_hist_; }
  /// Completion times of finished repairs (simulated duration from
  /// detection to installed copy), for the §2.2 bench.
  const std::vector<SimDuration>& repair_durations() const {
    return repair_durations_;
  }

  /// Introspection for tests: the transfers currently running.
  struct ActiveRepairView {
    PgId pg;
    ReplicaIdx idx;
    sim::NodeId target;
    sim::NodeId donor;
    uint64_t req_id;
    uint32_t next_chunk;
    uint32_t total_chunks;
  };
  std::vector<ActiveRepairView> active_repairs() const;
  size_t queue_depth() const { return queue_.size(); }

 private:
  /// A repair waiting for a dispatch slot.
  struct PendingRepair {
    PgId pg;
    ReplicaIdx idx;
    sim::NodeId failed;  // host being replaced
    SimTime detected_at;
    bool is_migration;
    sim::NodeId pinned_target;  // kInvalidNode unless MigrateReplicaTo
  };
  /// One running chunked transfer.
  struct Repair {
    PgId pg = 0;
    ReplicaIdx idx = 0;
    sim::NodeId failed = sim::kInvalidNode;
    sim::NodeId target = sim::kInvalidNode;
    sim::NodeId donor = sim::kInvalidNode;
    uint64_t req_id = 0;
    uint32_t next_chunk = 0;
    uint32_t total_chunks = 0;  // 0 until the first chunk reports geometry
    uint64_t total_bytes = 0;
    uint32_t attempts = 0;  // consecutive timeouts of the current chunk
    sim::EventId timeout_event = 0;
    SimTime detected_at = 0;
    bool is_migration = false;
  };

  void Poll();
  void DispatchFromQueue();
  void TryDispatch(const PendingRepair& q);
  void RequestChunk(Repair* r);
  void ArmChunkTimeout(Repair* r);
  void OnChunkTimeout(std::pair<PgId, ReplicaIdx> key, uint64_t req_id);
  /// Progress events posted by replacement targets; routed by (pg, req_id).
  void OnRepairProgress(PgId pg, const StorageNode::RepairProgress& p);
  /// Re-points a transfer at a different live donor, resuming from the last
  /// acked chunk. False when no alternative donor exists.
  bool DonorFailover(Repair* r);
  /// Picks a healthy host in `az` (excluding `exclude`); kInvalidNode if
  /// none.
  sim::NodeId PickReplacement(sim::AzId az,
                              const std::set<sim::NodeId>& exclude);
  /// Live member of `pg` holding the segment with the highest SCL,
  /// excluding `exclude_a`/`exclude_b`; kInvalidNode if none.
  sim::NodeId PickDonor(PgId pg, sim::NodeId exclude_a,
                        sim::NodeId exclude_b = sim::kInvalidNode);
  /// Unreachable for repair purposes: crashed individually OR inside a
  /// failed AZ (Network tracks those separately; an AZ loss must trigger
  /// re-replication just like single-host loss, §2.2).
  bool HostDown(sim::NodeId id) const;
  uint64_t ChunkSize(const Repair& r, uint32_t chunk_index) const;

  sim::EventLoop* loop_;
  sim::Network* network_;
  const sim::Topology* topology_;
  ControlPlane* control_plane_;
  RepairOptions options_;
  Random rng_;

  bool running_ = false;
  sim::EventId poll_timer_ = 0;
  /// Host -> first time it was observed down.
  std::map<sim::NodeId, SimTime> down_since_;
  /// (pg, idx) pairs with a repair queued or running (poll-time dedup).
  std::set<std::pair<PgId, ReplicaIdx>> in_flight_;
  std::deque<PendingRepair> queue_;
  std::map<std::pair<PgId, ReplicaIdx>, Repair> active_;
  RepairStats stats_;
  Histogram mttr_hist_;
  std::vector<SimDuration> repair_durations_;
  uint64_t next_req_ = 1;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_REPAIR_H_
