#ifndef AURORA_STORAGE_REPAIR_H_
#define AURORA_STORAGE_REPAIR_H_

#include <map>
#include <set>

#include "common/random.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/control_plane.h"

namespace aurora {

/// The re-replication orchestrator of §2.2: watches the fleet, and when a
/// segment replica's host has been unreachable longer than the detection
/// threshold, migrates the segment to a healthy host by copying state from a
/// live peer. MTTR — the window of double-fault vulnerability — is detection
/// time plus transfer time (segment bytes over the fabric, e.g. "a 10GB
/// segment can be repaired in 10 seconds on a 10Gbps network link").
///
/// The same machinery performs heat management (§2.3): MigrateReplica() can
/// move a segment off a hot host proactively, and ZDP-style one-AZ-at-a-time
/// patching just crashes/restarts nodes briefly — short enough that no
/// repair triggers.
struct RepairOptions {
  /// How long a host must be down before repair starts (distinguishes a
  /// reboot blip from a real loss).
  SimDuration detection_threshold = Seconds(3);
  SimDuration poll_interval = Millis(500);
};

struct RepairStats {
  uint64_t repairs_started = 0;
  uint64_t repairs_completed = 0;
  uint64_t migrations = 0;
};

class RepairManager {
 public:
  RepairManager(sim::EventLoop* loop, sim::Network* network,
                const sim::Topology* topology, ControlPlane* control_plane,
                RepairOptions options, Random rng);

  /// Starts the watchdog.
  void Start();
  void Stop() { running_ = false; }

  /// Proactively moves (pg, idx) to a new host (heat management).
  void MigrateReplica(PgId pg, ReplicaIdx idx);

  const RepairStats& stats() const { return stats_; }
  /// Completion times of finished repairs (simulated duration from
  /// detection to installed copy), for the §2.2 bench.
  const std::vector<SimDuration>& repair_durations() const {
    return repair_durations_;
  }

 private:
  void Poll();
  void StartRepair(PgId pg, ReplicaIdx idx, sim::NodeId failed);
  /// Picks a healthy host in `az` (excluding `exclude`); kInvalidNode if
  /// none.
  sim::NodeId PickReplacement(sim::AzId az,
                              const std::set<sim::NodeId>& exclude);

  sim::EventLoop* loop_;
  sim::Network* network_;
  const sim::Topology* topology_;
  ControlPlane* control_plane_;
  RepairOptions options_;
  Random rng_;

  bool running_ = false;
  /// Host -> first time it was observed down.
  std::map<sim::NodeId, SimTime> down_since_;
  /// (pg, idx) pairs with a repair in flight.
  std::set<std::pair<PgId, ReplicaIdx>> in_flight_;
  RepairStats stats_;
  std::vector<SimDuration> repair_durations_;
  uint64_t next_req_ = 1;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_REPAIR_H_
