#include "storage/storage_node.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/logging.h"

namespace aurora {

StorageNode::StorageNode(sim::EventLoop* loop, sim::Network* network,
                         sim::NodeId id, ControlPlane* control_plane,
                         SimS3* s3, StorageNodeOptions options, Random rng)
    : loop_(loop),
      network_(network),
      id_(id),
      control_plane_(control_plane),
      s3_(s3),
      options_(options),
      rng_(rng),
      disk_(loop, options.disk, rng.Fork()) {
  network_->Register(id_, [this](const sim::Message& m) { HandleMessage(m); });
  ScheduleBackgroundTasks();
}

void StorageNode::CreateSegment(PgId pg, size_t page_size) {
  auto seg = std::make_unique<Segment>(pg, page_size);
  seg->set_page_cache_budget(options_.page_cache_budget_bytes);
  if (control_plane_->page_synthesizer()) {
    seg->set_page_synthesizer(control_plane_->page_synthesizer());
  }
  segments_[pg] = std::move(seg);
}

void StorageNode::InstallSynthesizerOnSegments(
    const Segment::PageSynthesizer& fn) {
  for (auto& [pg, seg] : segments_) {
    seg->set_page_synthesizer(fn);
  }
}

Segment* StorageNode::EnsureSegment(PgId pg) {
  auto it = segments_.find(pg);
  if (it != segments_.end()) return it->second.get();
  size_t page_size = 0;
  if (!control_plane_->MemberPageSize(pg, id_, &page_size)) return nullptr;
  CreateSegment(pg, page_size);
  return segments_.at(pg).get();
}

void StorageNode::DropSegment(PgId pg) { segments_.erase(pg); }

Segment* StorageNode::segment(PgId pg) {
  auto it = segments_.find(pg);
  return it == segments_.end() ? nullptr : it->second.get();
}

const Segment* StorageNode::segment(PgId pg) const {
  auto it = segments_.find(pg);
  return it == segments_.end() ? nullptr : it->second.get();
}

void StorageNode::Crash() {
  crashed_ = true;
  ++generation_;
  applied_batches_.clear();
  // Chunked-repair state is volatile on both sides: a target's reassembly
  // buffer is only durable once the final persist installs the segment, and
  // a donor's snapshot cache is rebuilt on the next request.
  repair_sessions_.clear();
  donor_snapshots_.clear();
  donor_snapshot_order_.clear();
  // Cancel the background timers outright (same pattern as
  // Database::Crash()): the generation guard already neutralizes them, but
  // leaving them queued grows the event loop's pending set on every
  // crash/restart cycle.
  loop_->Cancel(gossip_timer_);
  loop_->Cancel(coalesce_timer_);
  loop_->Cancel(gc_timer_);
  loop_->Cancel(scrub_timer_);
  loop_->Cancel(backup_timer_);
}

void StorageNode::Restart() {
  crashed_ = false;
  ++generation_;
  // A node that slept through a recovery may hold annulled log records;
  // re-apply any truncation ranges recorded while it was down (§4.3: the
  // ranges are epoch-versioned and durable precisely for this).
  for (const auto& tr : control_plane_->truncations()) {
    for (auto& [pg, seg] : segments_) {
      if (tr.epoch > seg->epoch()) {
        seg->Truncate(tr.above, tr.epoch);
      }
    }
  }
  ScheduleBackgroundTasks();
}

uint64_t StorageNode::SegmentBytes(PgId pg) const {
  const Segment* seg = segment(pg);
  return seg ? seg->ApproximateBytes() : 0;
}

PageCacheStats StorageNode::PageCacheTotals() const {
  PageCacheStats total;
  for (const auto& [pg, seg] : segments_) {
    const PageCacheStats& s = seg->page_cache_stats();
    total.hits += s.hits;
    total.partial_hits += s.partial_hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

uint64_t StorageNode::PageCacheBytes() const {
  uint64_t bytes = 0;
  for (const auto& [pg, seg] : segments_) bytes += seg->page_cache_bytes();
  return bytes;
}

bool StorageNode::Busy() const {
  return disk_.backlog() > options_.background_backlog_limit;
}

void StorageNode::ScheduleBackgroundTasks() {
  const uint64_t gen = generation_;
  // Stagger the first firing of each task so a fleet of nodes doesn't beat
  // in lockstep.
  auto stagger = [this](SimDuration d) { return rng_.Uniform(d) + 1; };
  gossip_timer_ = loop_->Schedule(stagger(options_.gossip_interval),
                                  [this, gen] {
                                    if (gen == generation_ && !crashed_)
                                      GossipTick();
                                  });
  coalesce_timer_ = loop_->Schedule(stagger(options_.coalesce_interval),
                                    [this, gen] {
                                      if (gen == generation_ && !crashed_)
                                        CoalesceTick();
                                    });
  gc_timer_ = loop_->Schedule(stagger(options_.gc_interval), [this, gen] {
    if (gen == generation_ && !crashed_) GcTick();
  });
  scrub_timer_ = loop_->Schedule(stagger(options_.scrub_interval),
                                 [this, gen] {
                                   if (gen == generation_ && !crashed_)
                                     ScrubTick();
                                 });
  backup_timer_ = loop_->Schedule(stagger(options_.backup_interval),
                                  [this, gen] {
                                    if (gen == generation_ && !crashed_)
                                      BackupTick();
                                  });
}

void StorageNode::HandleMessage(const sim::Message& msg) {
  if (crashed_) return;
  if (!network_->VerifyFrame(msg)) {
    ++stats_.corrupt_frames_dropped;
    return;
  }
  switch (msg.type) {
    case kMsgWriteBatch:
      HandleWriteBatch(msg);
      break;
    case kMsgReadPageReq:
      HandleReadPage(msg);
      break;
    case kMsgInventoryReq:
      HandleInventory(msg);
      break;
    case kMsgTruncateReq:
      HandleTruncate(msg);
      break;
    case kMsgPgmrplUpdate:
      HandlePgmrpl(msg);
      break;
    case kMsgGossipPull:
      HandleGossipPull(msg);
      break;
    case kMsgGossipPush:
      HandleGossipPush(msg);
      break;
    case kMsgSegmentStateReq:
      HandleSegmentStateReq(msg);
      break;
    case kMsgSegmentStateResp:
      HandleSegmentStateResp(msg);
      break;
    case kMsgSegmentChunkReq:
      HandleSegmentChunkReq(msg);
      break;
    case kMsgSegmentChunkResp:
      HandleSegmentChunkResp(msg);
      break;
    default:
      AURORA_WARN("storage node %u: unexpected message type %u", id_,
                  msg.type);
  }
}

void StorageNode::HandleWriteBatch(const sim::Message& msg) {
  WriteBatchMsg batch;
  // Decode the header and shared-body fragments in place: the fan-out body
  // is shared by all six in-flight copies and is never concatenated.
  if (!WriteBatchMsg::DecodeFrom(msg.head(), msg.body_view(), &batch).ok()) {
    return;
  }
  Segment* seg = EnsureSegment(batch.pg);
  if (seg == nullptr) return;  // not a member (anymore)
  ++stats_.batches_received;
  const PgMembership& members = control_plane_->membership(batch.pg);

  // Membership fence: a batch stamped with an older config epoch comes from
  // a sender that missed a ReplaceReplica — and this host may be the very
  // replica that was evicted. Either way the sender must not count this ack
  // toward quorum; NAK with the current config epoch so it refreshes.
  if (members.IndexOf(id_) < 0 || batch.cfg_epoch < members.config_epoch) {
    ++stats_.stale_config_rejects;
    WriteAckMsg nak;
    nak.pg = batch.pg;
    nak.replica = batch.replica;
    nak.batch_seq = batch.batch_seq;
    nak.scl = seg->scl();
    nak.status_code = static_cast<uint8_t>(Status::Code::kStaleConfig);
    nak.epoch = seg->epoch();
    nak.cfg_epoch = members.config_epoch;
    std::string payload;
    nak.EncodeTo(&payload);
    network_->Send(id_, msg.from, kMsgWriteAck, std::move(payload));
    return;
  }

  // Epoch fence: a batch stamped with an older volume epoch comes from a
  // writer that was superseded by a failover. Reject without applying and
  // tell the sender which epoch fenced it so it can demote itself.
  if (batch.epoch < seg->epoch()) {
    ++stats_.stale_epoch_rejects;
    WriteAckMsg nak;
    nak.pg = batch.pg;
    nak.replica = batch.replica;
    nak.batch_seq = batch.batch_seq;
    nak.scl = seg->scl();
    nak.status_code = static_cast<uint8_t>(Status::Code::kFenced);
    nak.epoch = seg->epoch();
    nak.cfg_epoch = members.config_epoch;
    std::string payload;
    nak.EncodeTo(&payload);
    network_->Send(id_, msg.from, kMsgWriteAck, std::move(payload));
    return;
  }

  // Idempotent delivery: a batch the segment has already fully applied under
  // this epoch (network duplicate, or a sender retry that crossed the ack in
  // flight) is re-acked immediately without another persist or apply.
  auto& seen = applied_batches_[batch.pg];
  auto dup = seen.find(batch.batch_seq);
  if (dup != seen.end() && dup->second == batch.epoch) {
    ++stats_.duplicate_batches;
    WriteAckMsg ack;
    ack.pg = batch.pg;
    ack.replica = batch.replica;
    ack.batch_seq = batch.batch_seq;
    ack.scl = seg->scl();
    ack.epoch = seg->epoch();
    ack.cfg_epoch = members.config_epoch;
    std::string payload;
    ack.EncodeTo(&payload);
    network_->Send(id_, msg.from, kMsgWriteAck, std::move(payload));
    ++stats_.acks_sent;
    return;
  }

  stats_.records_received += batch.records.size();

  // Figure 4 steps 1-2: queue, persist on disk, then acknowledge. The disk
  // write covers the batch bytes; segment bookkeeping happens at completion
  // (a crash before completion loses the batch, which is exactly the
  // durability contract — unacked writes may vanish).
  const uint64_t gen = generation_;
  const uint64_t bytes = msg.payload_size();
  disk_.Write(bytes, [this, gen, batch = std::move(batch),
                      from = msg.from](Status s) mutable {
    if (gen != generation_ || crashed_) return;
    if (!s.ok()) {
      // A torn write means the batch never became durable; dropping the ack
      // makes the sender retry, exactly as for a lost frame.
      if (s.IsCorruption()) ++stats_.torn_write_drops;
      return;
    }
    Segment* seg = segment(batch.pg);
    if (seg == nullptr) return;
    seg->ObserveEpoch(batch.epoch);
    seg->SetVdlHint(batch.vdl_hint);
    seg->SetPgmrpl(batch.pgmrpl_hint);
    for (const LogRecord& r : batch.records) {
      seg->AddRecord(r);
    }
    // The device may have planted a latent sector fault under this write;
    // rot a materialized base page in response (the scrubber or a CRC-
    // verified read will catch it later). The RNG draw is gated on the
    // fault actually firing, so fault-free runs stay byte-identical.
    if (seg->num_pages() > 0 && disk_.ConsumeLatentFault()) {
      ++stats_.latent_corruptions;
      seg->CorruptNthBasePage(rng_.Uniform(seg->num_pages()));
    }
    // Mark the batch applied only now that it is persisted and integrated;
    // bound the per-PG memory by pruning the oldest seqs.
    auto& applied = applied_batches_[batch.pg];
    applied[batch.batch_seq] = batch.epoch;
    while (applied.size() > 4096) applied.erase(applied.begin());
    WriteAckMsg ack;
    ack.pg = batch.pg;
    ack.replica = batch.replica;
    ack.batch_seq = batch.batch_seq;
    ack.scl = seg->scl();
    ack.epoch = seg->epoch();
    ack.cfg_epoch = control_plane_->membership(batch.pg).config_epoch;
    std::string payload;
    ack.EncodeTo(&payload);
    network_->Send(id_, from, kMsgWriteAck, std::move(payload));
    ++stats_.acks_sent;
  });
}

void StorageNode::HandleReadPage(const sim::Message& msg) {
  ReadPageReqMsg req;
  if (!ReadPageReqMsg::DecodeFrom(msg.payload(), &req).ok()) return;
  const uint64_t gen = generation_;
  // One device read to serve a page miss.
  Segment* seg = EnsureSegment(req.pg);
  size_t read_bytes = seg ? seg->page_size() : 4096;
  disk_.Read(read_bytes, [this, gen, req, from = msg.from](Status ds) {
    if (gen != generation_ || crashed_) return;
    ReadPageRespMsg resp;
    resp.req_id = req.req_id;
    Segment* seg = segment(req.pg);
    if (!ds.ok()) {
      resp.status_code = static_cast<uint8_t>(Status::Code::kIOError);
    } else if (seg == nullptr) {
      resp.status_code = static_cast<uint8_t>(Status::Code::kNotFound);
      ++stats_.page_read_errors;
    } else if (req.epoch != 0 && req.epoch < seg->epoch()) {
      // Epoch fence on the read path: a zombie writer must not serve reads
      // off quorum state that a promotion has superseded.
      resp.status_code = static_cast<uint8_t>(Status::Code::kFenced);
      ++stats_.stale_epoch_rejects;
      ++stats_.page_read_errors;
    } else if (req.cfg_epoch != 0 &&
               req.cfg_epoch <
                   control_plane_->membership(req.pg).config_epoch) {
      // Membership fence: the reader routed here off a membership it missed
      // an update to — this host may already be evicted. NAK so it
      // refreshes instead of trusting a possibly-stale replica.
      resp.status_code = static_cast<uint8_t>(Status::Code::kStaleConfig);
      ++stats_.stale_config_rejects;
      ++stats_.page_read_errors;
    } else {
      Result<Page> page = seg->GetPageAsOf(req.page, req.read_point);
      if (page.ok()) {
        resp.status_code = static_cast<uint8_t>(Status::Code::kOk);
        resp.page_lsn = page->page_lsn();
        resp.page_bytes = page->raw();
        ++stats_.page_reads_served;
      } else {
        resp.status_code = static_cast<uint8_t>(page.status().code());
        ++stats_.page_read_errors;
        if (page.status().IsCorruption()) {
          // A latent fault surfaced on the read path before the scrubber
          // got there: heal from a peer immediately (read-repair).
          ++stats_.read_repairs;
          seg->DropPageForRepair(req.page);
          SchedulePeerPageRepair(req.pg, req.page);
        }
      }
    }
    std::string payload;
    resp.EncodeTo(&payload);
    network_->Send(id_, from, kMsgReadPageResp, std::move(payload));
  });
}

void StorageNode::HandleInventory(const sim::Message& msg) {
  InventoryReqMsg req;
  if (!InventoryReqMsg::DecodeFrom(msg.payload(), &req).ok()) return;
  Segment* seg = EnsureSegment(req.pg);
  if (seg == nullptr) return;
  InventoryRespMsg resp;
  resp.req_id = req.req_id;
  resp.pg = req.pg;
  resp.replica = static_cast<ReplicaIdx>(
      std::max(0, control_plane_->membership(req.pg).IndexOf(id_)));
  resp.epoch = seg->epoch();
  resp.scl = seg->scl();
  resp.vdl_hint = seg->vdl_hint();
  resp.entries = seg->Inventory();
  std::string payload;
  resp.EncodeTo(&payload);
  network_->Send(id_, msg.from, kMsgInventoryResp, std::move(payload));
}

void StorageNode::HandleTruncate(const sim::Message& msg) {
  TruncateReqMsg req;
  if (!TruncateReqMsg::DecodeFrom(msg.payload(), &req).ok()) return;
  Segment* seg = EnsureSegment(req.pg);
  if (seg == nullptr) return;
  Status s = seg->Truncate(req.truncate_above, req.epoch);
  if (s.IsStale()) ++stats_.stale_epoch_rejects;
  // Persist the truncation metadata, then ack.
  const uint64_t gen = generation_;
  disk_.Write(64, [this, gen, req, s, from = msg.from](Status ds) {
    if (gen != generation_ || crashed_) return;
    TruncateAckMsg ack;
    ack.req_id = req.req_id;
    ack.pg = req.pg;
    ack.replica = static_cast<ReplicaIdx>(
        std::max(0, control_plane_->membership(req.pg).IndexOf(id_)));
    ack.status_code = static_cast<uint8_t>(
        !ds.ok() ? Status::Code::kIOError : s.code());
    std::string payload;
    ack.EncodeTo(&payload);
    network_->Send(id_, from, kMsgTruncateAck, std::move(payload));
  });
}

void StorageNode::HandlePgmrpl(const sim::Message& msg) {
  PgmrplMsg m;
  if (!PgmrplMsg::DecodeFrom(msg.payload(), &m).ok()) return;
  Segment* seg = EnsureSegment(m.pg);
  if (seg == nullptr) return;
  seg->SetPgmrpl(m.pgmrpl);
  if (m.has_snapshot) {
    seg->SetVdlHint(m.vdl_snapshot);
    seg->SetCompletenessSnapshot(m.vdl_snapshot, m.pg_tail);
  }
}

void StorageNode::GossipTick() {
  const uint64_t gen = generation_;
  gossip_timer_ = loop_->Schedule(options_.gossip_interval, [this, gen] {
    if (gen == generation_ && !crashed_) GossipTick();
  });
  if (Busy()) {
    ++stats_.background_deferrals;
    return;
  }
  // For each hosted segment, ask one random peer what we're missing
  // (Figure 4 step 4). Pull-based: we advertise our SCL; the peer pushes
  // anything above it.
  std::vector<PgId> evicted;
  for (auto& [pg, seg] : segments_) {
    const PgMembership& members = control_plane_->membership(pg);
    int self = members.IndexOf(id_);
    if (self < 0) {
      // This host was replaced out of the PG (repair or heat management);
      // the replica is dead weight and stray frames must not resurrect it.
      evicted.push_back(pg);
      continue;
    }
    // Gossip is only useful when a gap is open or we might be behind; a
    // cheap randomized probe handles the "don't know what we don't know"
    // case.
    int peer_idx = static_cast<int>(rng_.Uniform(kReplicasPerPg - 1));
    if (peer_idx >= self) ++peer_idx;
    GossipPullMsg pull;
    pull.pg = pg;
    pull.replica = static_cast<ReplicaIdx>(self);
    pull.epoch = seg->epoch();
    pull.cfg_epoch = members.config_epoch;
    pull.scl = seg->scl();
    pull.max_lsn = seg->max_lsn();
    std::string payload;
    pull.EncodeTo(&payload);
    network_->Send(id_, members.nodes[peer_idx], kMsgGossipPull,
                   std::move(payload));
    ++stats_.gossip_rounds;
  }
  for (PgId pg : evicted) {
    segments_.erase(pg);
    applied_batches_.erase(pg);
    ++stats_.evicted_segments_dropped;
  }
}

void StorageNode::HandleGossipPull(const sim::Message& msg) {
  GossipPullMsg pull;
  if (!GossipPullMsg::DecodeFrom(msg.payload(), &pull).ok()) return;
  Segment* seg = EnsureSegment(pull.pg);
  if (seg == nullptr) return;
  // Membership fence: a pull from an evicted host (or one stamped before a
  // ReplaceReplica this node already knows about) must not be answered —
  // feeding records to a dead replica resurrects it.
  const PgMembership& members = control_plane_->membership(pull.pg);
  if (members.IndexOf(msg.from) < 0 ||
      pull.cfg_epoch < members.config_epoch) {
    ++stats_.stale_config_rejects;
    return;
  }
  // A puller on a newer epoch fences this segment forward (it clearly
  // survived a promotion this replica slept through).
  seg->ObserveEpoch(pull.epoch);
  if (seg->max_lsn() <= pull.scl) return;  // nothing to offer
  if (seg->scl() > pull.scl && !seg->CanBridgeFrom(pull.scl)) {
    // GC already collected the successor of the puller's contiguous prefix:
    // log shipping can never close its gap, no matter how many rounds run.
    // Fall back to the full state copy repair uses (the installer refuses
    // copies that would lose records, so a stale copy is just ignored).
    ++stats_.gossip_state_transfers;
    SegmentStateRespMsg resp;
    resp.req_id = 0;
    resp.pg = pull.pg;
    seg->SerializeTo(&resp.state);
    const uint64_t gen = generation_;
    disk_.Read(resp.state.size(), [this, gen, resp = std::move(resp),
                                   from = msg.from](Status s) mutable {
      if (gen != generation_ || crashed_ || !s.ok()) return;
      std::string payload;
      resp.EncodeTo(&payload);
      network_->Send(id_, from, kMsgSegmentStateResp, std::move(payload));
    });
    return;
  }
  std::vector<const LogRecord*> records =
      seg->RecordsAbove(pull.scl, options_.gossip_max_records);
  if (records.empty()) return;
  stats_.gossip_records_sent += records.size();
  std::string payload;
  GossipPushMsg::EncodeRecordsTo(pull.pg, seg->epoch(),
                                 members.config_epoch, records, &payload);
  network_->Send(id_, msg.from, kMsgGossipPush, std::move(payload));
}

void StorageNode::HandleGossipPush(const sim::Message& msg) {
  GossipPushMsg push;
  if (!GossipPushMsg::DecodeFrom(msg.payload(), &push).ok()) return;
  Segment* seg = EnsureSegment(push.pg);
  if (seg == nullptr) return;
  // Membership fence: a push from an evicted donor (or from before a
  // ReplaceReplica) may carry state the current membership has moved past.
  const PgMembership& members = control_plane_->membership(push.pg);
  if (members.IndexOf(msg.from) < 0 ||
      push.cfg_epoch < members.config_epoch) {
    ++stats_.stale_config_rejects;
    return;
  }
  // Epoch gate: a push from a segment on an older epoch may carry records a
  // recovery truncation annulled (truncation needs only a 4/6 quorum, so a
  // partitioned peer can survive with them). Dropping the push wholesale
  // keeps annulled records from resurrecting here.
  if (push.epoch < seg->epoch()) {
    ++stats_.stale_epoch_rejects;
    return;
  }
  // Persist backfilled records before integrating them, same as writer
  // batches.
  const uint64_t gen = generation_;
  const uint64_t bytes = msg.payload_size();
  disk_.Write(bytes, [this, gen, push = std::move(push)](Status s) {
    if (gen != generation_ || crashed_ || !s.ok()) return;
    Segment* seg = segment(push.pg);
    if (seg == nullptr) return;
    seg->ObserveEpoch(push.epoch);
    uint64_t filled = 0;
    for (const LogRecord& r : push.records) {
      if (seg->AddRecord(r)) ++filled;
    }
    stats_.gossip_records_filled += filled;
    if (filled > 0) stats_.gossip_fill_batch.Record(filled);
  });
}

void StorageNode::CoalesceTick() {
  const uint64_t gen = generation_;
  coalesce_timer_ = loop_->Schedule(options_.coalesce_interval, [this, gen] {
    if (gen == generation_ && !crashed_) CoalesceTick();
  });
  if (Busy()) {
    ++stats_.background_deferrals;
    return;
  }
  size_t budget = options_.coalesce_batch;
  for (auto& [pg, seg] : segments_) {
    if (budget == 0) break;
    size_t applied = seg->CoalesceStep(budget);
    budget -= applied;
    stats_.records_coalesced += applied;
    if (applied > 0) {
      // Model the page writes of materialization as one aggregated disk
      // write (log-structured, sequential).
      disk_.Write(applied * 64 + seg->page_size(), [](Status) {});
    }
  }
}

void StorageNode::GcTick() {
  const uint64_t gen = generation_;
  gc_timer_ = loop_->Schedule(options_.gc_interval, [this, gen] {
    if (gen == generation_ && !crashed_) GcTick();
  });
  if (Busy()) {
    ++stats_.background_deferrals;
    return;
  }
  for (auto& [pg, seg] : segments_) {
    stats_.records_gced += seg->GarbageCollect();
  }
}

void StorageNode::ScrubTick() {
  const uint64_t gen = generation_;
  scrub_timer_ = loop_->Schedule(options_.scrub_interval, [this, gen] {
    if (gen == generation_ && !crashed_) ScrubTick();
  });
  if (Busy()) {
    ++stats_.background_deferrals;
    return;
  }
  for (auto& [pg, seg] : segments_) {
    ++stats_.scrub_rounds;
    stats_.pages_scrubbed += seg->num_pages();
    size_t corrupt = seg->ScrubPages();
    if (corrupt == 0) continue;
    stats_.corrupt_pages_found += corrupt;
    // Self-heal: drop the bad base image; it re-materializes from the log,
    // and if the log is gone, fetch the page from a healthy peer.
    std::vector<PageId> bad(seg->corrupt_pages().begin(),
                            seg->corrupt_pages().end());
    for (PageId page : bad) {
      seg->DropPageForRepair(page);
      SchedulePeerPageRepair(pg, page);
    }
  }
}

void StorageNode::SchedulePeerPageRepair(PgId pg, PageId page) {
  // Fetch a healthy copy from any live peer (control-plane mediated;
  // whole-segment repair uses the chunked SegmentChunkReq data path
  // instead). Peer segment state is homed on other PDES shards, so the
  // fetch runs at the next barrier with the whole world quiesced; until
  // then the dropped page re-materializes from the log on demand.
  const uint64_t gen = generation_;
  loop_->PostControl(0, [this, gen, pg, page] {
    if (gen != generation_ || crashed_) return;
    Segment* seg = segment(pg);
    if (seg == nullptr) return;
    const PgMembership& members = control_plane_->membership(pg);
    for (sim::NodeId peer : members.nodes) {
      if (peer == id_) continue;
      StorageNode* peer_node = control_plane_->node(peer);
      if (peer_node == nullptr || peer_node->crashed()) continue;
      const Segment* peer_seg = peer_node->segment(pg);
      if (peer_seg == nullptr) continue;
      Result<Page> healthy =
          peer_seg->GetPageAsOf(page, peer_seg->applied_lsn());
      if (healthy.ok()) {
        seg->RestoreBasePage(page, std::move(*healthy));
        ++stats_.corrupt_pages_repaired;
        break;
      }
    }
  });
}

void StorageNode::BackupTick() {
  const uint64_t gen = generation_;
  backup_timer_ = loop_->Schedule(options_.backup_interval, [this, gen] {
    if (gen == generation_ && !crashed_) BackupTick();
  });
  if (Busy() || s3_ == nullptr) {
    if (Busy()) ++stats_.background_deferrals;
    return;
  }
  // Figure 4 step 6: continuously stage complete log to S3. The lowest-
  // index *live* replica of each PG is the designated uploader (control-
  // plane mediated) — a single uploader avoids 6x duplicate archives, and
  // falling back past crashed replicas keeps backups flowing while the
  // preferred uploader is down.
  for (auto& [pg, seg] : segments_) {
    const PgMembership& members = control_plane_->membership(pg);
    sim::NodeId uploader = sim::kInvalidNode;
    for (sim::NodeId candidate : members.nodes) {
      StorageNode* node = control_plane_->node(candidate);
      if (node != nullptr && !node->crashed()) {
        uploader = candidate;
        break;
      }
    }
    if (uploader != id_) continue;
    std::vector<const LogRecord*> records =
        seg->UnbackedRecords(options_.backup_max_records);
    if (records.empty()) continue;
    std::string blob;
    EncodeRecordBatch(records, &blob);
    Lsn through = records.back()->lsn;
    char key[64];
    snprintf(key, sizeof(key), "backup/pg%06u/%020llu",
             static_cast<unsigned>(pg),
             static_cast<unsigned long long>(through));
    // Completion on this node's own loop: S3 is shared across shards.
    s3_->Put(key, std::move(blob), [](Status) {}, loop_);
    seg->MarkBackedUp(through);
    ++stats_.backup_objects;
  }
}

void StorageNode::HandleSegmentStateReq(const sim::Message& msg) {
  SegmentStateReqMsg req;
  if (!SegmentStateReqMsg::DecodeFrom(msg.payload(), &req).ok()) return;
  Segment* seg = segment(req.pg);
  if (seg == nullptr) return;
  SegmentStateRespMsg resp;
  resp.req_id = req.req_id;
  resp.pg = req.pg;
  seg->SerializeTo(&resp.state);
  const uint64_t gen = generation_;
  // Reading the whole segment off disk to serve the copy.
  disk_.Read(resp.state.size(), [this, gen, resp = std::move(resp),
                                 from = msg.from](Status s) mutable {
    if (gen != generation_ || crashed_ || !s.ok()) return;
    std::string payload;
    resp.EncodeTo(&payload);
    network_->Send(id_, from, kMsgSegmentStateResp, std::move(payload));
  });
}

void StorageNode::HandleSegmentStateResp(const sim::Message& msg) {
  SegmentStateRespMsg resp;
  if (!SegmentStateRespMsg::DecodeFrom(msg.payload(), &resp).ok()) return;
  // Persist the received copy, then install it. This path now serves only
  // gossip's state-transfer backstop; repair uses the chunked transfer.
  const uint64_t gen = generation_;
  disk_.Write(resp.state.size(), [this, gen,
                                  resp = std::move(resp)](Status s) {
    if (gen != generation_ || crashed_ || !s.ok()) return;
    InstallSegmentCopy(resp.pg, resp.state);
  });
}

bool StorageNode::InstallSegmentCopy(PgId pg, Slice state) {
  auto seg = std::make_unique<Segment>(pg, Page::kMinPageSize);
  if (!seg->DeserializeFrom(state).ok()) return false;
  // Replacing local state is only safe when the copy is a superset of
  // everything this replica ever held (and thus ever acknowledged): its
  // complete prefix must cover our whole log, and its epoch must not
  // regress the fence. Repair installs onto empty replacements trivially
  // pass; a stale gossip state transfer is dropped and retried.
  auto existing = segments_.find(pg);
  if (existing != segments_.end() &&
      (seg->scl() < existing->second->max_lsn() ||
       seg->epoch() < existing->second->epoch())) {
    return false;
  }
  seg->set_page_cache_budget(options_.page_cache_budget_bytes);
  if (control_plane_->page_synthesizer()) {
    seg->set_page_synthesizer(control_plane_->page_synthesizer());
  }
  segments_[pg] = std::move(seg);
  return true;
}

void StorageNode::BeginRepairSession(PgId pg, uint64_t req_id) {
  ++stats_.repair_sessions_started;
  repair_sessions_[{pg, req_id}] = RepairSession{};
}

void StorageNode::AbortRepairSession(PgId pg, uint64_t req_id) {
  repair_sessions_.erase({pg, req_id});
}

void StorageNode::NotifyRepairProgress(PgId pg, RepairProgress progress) {
  if (!repair_progress_cb_) return;
  // The callback belongs to the repair manager, which is homed on the
  // control shard — run it at the next barrier, quiesced.
  const uint64_t gen = generation_;
  loop_->PostControl(0, [this, gen, pg, progress] {
    if (gen != generation_ || crashed_) return;
    if (repair_progress_cb_) repair_progress_cb_(pg, progress);
  });
}

void StorageNode::HandleSegmentChunkReq(const sim::Message& msg) {
  SegmentChunkReqMsg req;
  if (!SegmentChunkReqMsg::DecodeFrom(msg.payload(), &req).ok()) return;
  if (req.chunk_bytes == 0) return;
  Segment* seg = segment(req.pg);
  // No segment to donate (evicted, or this host never had one): stay
  // silent; the manager's chunk timeout triggers donor failover.
  if (seg == nullptr) return;
  const auto key = std::make_pair(req.pg, req.req_id);
  auto it = donor_snapshots_.find(key);
  if (it == donor_snapshots_.end()) {
    // First request of this transfer: freeze one consistent snapshot so
    // every chunk of (pg, req_id) comes from the same serialized state,
    // no matter how the live segment advances underneath.
    DonorSnapshot snap;
    seg->SerializeTo(&snap.blob);
    snap.blob_crc =
        crc32c::Mask(crc32c::Value(snap.blob.data(), snap.blob.size()));
    while (donor_snapshot_order_.size() >= 4) {
      donor_snapshots_.erase(donor_snapshot_order_.front());
      donor_snapshot_order_.erase(donor_snapshot_order_.begin());
    }
    it = donor_snapshots_.emplace(key, std::move(snap)).first;
    donor_snapshot_order_.push_back(key);
  }
  const DonorSnapshot& snap = it->second;
  SegmentChunkRespMsg resp;
  resp.req_id = req.req_id;
  resp.pg = req.pg;
  resp.chunk_index = req.chunk_index;
  resp.total_bytes = snap.blob.size();
  resp.total_chunks = static_cast<uint32_t>(
      (snap.blob.size() + req.chunk_bytes - 1) / req.chunk_bytes);
  resp.blob_crc = snap.blob_crc;
  if (req.chunk_index < resp.total_chunks) {
    const uint64_t off = static_cast<uint64_t>(req.chunk_index) *
                         req.chunk_bytes;
    resp.data = snap.blob.substr(
        off, std::min<uint64_t>(req.chunk_bytes, snap.blob.size() - off));
  }
  // An out-of-range chunk_index means the requester's geometry came from a
  // different snapshot (this donor crashed and rebuilt, or took over from
  // another). Respond with empty data and the *current* geometry; the
  // receiver detects the blob_crc mismatch and restarts at chunk 0.
  resp.chunk_crc =
      crc32c::Mask(crc32c::Value(resp.data.data(), resp.data.size()));
  const uint64_t gen = generation_;
  // One device read to page the slice off disk.
  disk_.Read(resp.data.size() + 64, [this, gen, resp = std::move(resp),
                                     from = msg.from](Status s) mutable {
    if (gen != generation_ || crashed_ || !s.ok()) return;
    std::string payload;
    resp.EncodeTo(&payload);
    network_->Send(id_, from, kMsgSegmentChunkResp, std::move(payload));
  });
}

void StorageNode::HandleSegmentChunkResp(const sim::Message& msg) {
  SegmentChunkRespMsg resp;
  if (!SegmentChunkRespMsg::DecodeFrom(msg.payload(), &resp).ok()) return;
  auto it = repair_sessions_.find({resp.pg, resp.req_id});
  if (it == repair_sessions_.end()) return;  // aborted or unknown transfer
  // Per-chunk payload CRC: a flipped bit the fabric checksum missed (or a
  // donor-side torn read) must never enter the reassembly buffer.
  if (crc32c::Mask(crc32c::Value(resp.data.data(), resp.data.size())) !=
      resp.chunk_crc) {
    ++stats_.repair_chunk_crc_drops;
    return;  // the manager's chunk timeout re-requests it
  }
  RepairSession& session = it->second;
  if (session.meta_known && session.blob_crc != resp.blob_crc) {
    // The snapshot changed under the transfer (donor failover to a peer
    // with different state, or the donor crashed and rebuilt). Bytes from
    // two snapshots must never mix; restart the reassembly.
    session.buffer.clear();
    session.chunks_received = 0;
    session.meta_known = false;
  }
  RepairProgress progress;
  progress.req_id = resp.req_id;
  progress.chunk_index = resp.chunk_index;
  progress.total_chunks = resp.total_chunks;
  progress.total_bytes = resp.total_bytes;
  progress.blob_crc = resp.blob_crc;
  if (!session.meta_known) {
    if (resp.chunk_index != 0) {
      // Mid-blob chunk of a snapshot we have no prefix of — tell the
      // manager to restart this transfer from chunk 0.
      progress.event = RepairEvent::kMismatch;
      NotifyRepairProgress(resp.pg, progress);
      return;
    }
    session.meta_known = true;
    session.total_chunks = resp.total_chunks;
    session.total_bytes = resp.total_bytes;
    session.blob_crc = resp.blob_crc;
  }
  // Strict sequencing: only the next expected chunk extends the buffer;
  // duplicates and reordered strays are dropped (the manager re-requests on
  // timeout, so nothing is lost).
  if (resp.chunk_index != session.chunks_received) return;
  // Persist the verified chunk, then integrate. Buffer bookkeeping happens
  // only after the persist succeeds: a torn write leaves the session
  // expecting the same chunk, and the manager's timeout re-sends it.
  const uint64_t gen = generation_;
  disk_.Write(resp.data.size(),
              [this, gen, resp = std::move(resp),
               progress](Status s) mutable {
    if (gen != generation_ || crashed_) return;
    if (!s.ok()) {
      if (s.IsCorruption()) ++stats_.torn_write_drops;
      return;
    }
    auto it = repair_sessions_.find({resp.pg, resp.req_id});
    if (it == repair_sessions_.end()) return;
    RepairSession& session = it->second;
    if (resp.chunk_index != session.chunks_received ||
        session.blob_crc != resp.blob_crc) {
      return;  // the session moved on while the persist was in flight
    }
    session.buffer.append(resp.data);
    ++session.chunks_received;
    if (session.chunks_received < session.total_chunks) {
      progress.event = RepairEvent::kChunk;
      NotifyRepairProgress(resp.pg, progress);
      return;
    }
    // Final chunk: verify the whole reassembled blob, then install.
    std::string blob = std::move(session.buffer);
    const uint32_t want_crc = session.blob_crc;
    const uint64_t want_bytes = session.total_bytes;
    repair_sessions_.erase(it);
    const bool sane =
        blob.size() == want_bytes &&
        crc32c::Mask(crc32c::Value(blob.data(), blob.size())) == want_crc;
    if (sane && InstallSegmentCopy(resp.pg, blob)) {
      progress.event = RepairEvent::kInstalled;
    } else {
      progress.event = RepairEvent::kFailed;
    }
    NotifyRepairProgress(resp.pg, progress);
  });
}

}  // namespace aurora
