#ifndef AURORA_STORAGE_CONTROL_PLANE_H_
#define AURORA_STORAGE_CONTROL_PLANE_H_

#include <array>
#include <functional>
#include <map>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "log/types.h"
#include "sim/topology.h"

namespace aurora {

class StorageNode;

/// Replica placement of one protection group: six segment replicas, two per
/// AZ across three AZs (§2.1).
struct PgMembership {
  std::array<sim::NodeId, kReplicasPerPg> nodes;
  uint64_t config_epoch = 0;
  /// Page size the volume was created with; member hosts materialize their
  /// segment replica lazily from this (see StorageNode::EnsureSegment).
  size_t page_size = 0;

  int IndexOf(sim::NodeId node) const {
    for (int i = 0; i < kReplicasPerPg; ++i) {
      if (nodes[i] == node) return i;
    }
    return -1;
  }
};

/// The storage control plane — the role DynamoDB + SWF play in §5: durable
/// volume configuration (PG membership) and orchestration metadata. Modeled
/// as an out-of-band, always-available service (direct method calls rather
/// than simulated messages; the paper's control plane is not on the data
/// path).
class ControlPlane {
 public:
  ControlPlane(const sim::Topology* topology, Random rng)
      : topology_(topology), rng_(rng) {}

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Registers a storage host available for segment placement.
  void RegisterStorageNode(sim::NodeId id, StorageNode* node) {
    nodes_[id] = node;
  }
  StorageNode* node(sim::NodeId id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : it->second;
  }
  const std::map<sim::NodeId, StorageNode*>& storage_nodes() const {
    return nodes_;
  }

  /// Creates a protection group: picks two storage hosts in each of three
  /// AZs ("segments are placed with high entropy", §3.3 — randomized,
  /// load-spread placement) and records the membership. Member hosts
  /// materialize their segment replicas lazily on first contact
  /// (StorageNode::EnsureSegment) — under PDES the writer grows the volume
  /// from its own shard mid-run, and must not reach into segment state homed
  /// on other shards.
  PgId CreatePg(size_t page_size);

  size_t num_pgs() const {
    MutexLock lock(&mu_);
    return memberships_.size();
  }
  /// The returned reference is stable (map nodes never move); its contents
  /// change only via ReplaceReplica, which runs with the world quiesced.
  const PgMembership& membership(PgId pg) const;
  /// If `node` hosts a replica of `pg`, returns true and sets `*page_size`
  /// to the volume's page size (the lazy-materialization handshake).
  bool MemberPageSize(PgId pg, sim::NodeId node, size_t* page_size) const;

  /// Swaps a failed replica for `replacement` (repair / heat management);
  /// bumps the PG's config epoch.
  void ReplaceReplica(PgId pg, ReplicaIdx idx, sim::NodeId replacement);

  /// One entry of the durable membership-change log: the full configuration
  /// of `pg` at `config_epoch`. Invariant 7 (quorum intersection across
  /// config epochs) audits this history.
  struct ConfigRecord {
    PgId pg;
    uint64_t config_epoch;
    std::array<sim::NodeId, kReplicasPerPg> nodes;
  };
  /// Every configuration every PG has ever had, in the order they were
  /// installed (CreatePg appends epoch 0, ReplaceReplica each bump).
  std::vector<ConfigRecord> ConfigHistory() const {
    MutexLock lock(&mu_);
    return config_history_;
  }

  /// All PGs that have `node` as a member (repair scans).
  std::vector<std::pair<PgId, ReplicaIdx>> ReplicasOnNode(
      sim::NodeId node) const;

  const sim::Topology* topology() const { return topology_; }

  /// Page synthesizer for snapshot-restored volumes, installed on every
  /// current and future segment replica (see Segment::set_page_synthesizer).
  void SetPageSynthesizer(std::function<bool(PageId, class Page*)> fn);
  const std::function<bool(PageId, class Page*)>& page_synthesizer() const {
    return synthesizer_;
  }

  // --- Durable volume metadata (recovery, §4.3) ----------------------------
  /// Current volume epoch; recovery bumps it before truncating.
  Epoch volume_epoch() const { return volume_epoch_; }
  void set_volume_epoch(Epoch e) {
    if (e > volume_epoch_) volume_epoch_ = e;
  }

  struct TruncationRange {
    Epoch epoch;
    Lsn above;  // every record with LSN > above is annulled
  };
  /// Durably records a truncation so that storage nodes rejoining after an
  /// outage (which may still hold annulled records) can re-apply it.
  void RecordTruncation(Epoch epoch, Lsn above) {
    truncations_.push_back({epoch, above});
  }
  const std::vector<TruncationRange>& truncations() const {
    return truncations_;
  }

 private:
  const sim::Topology* topology_;
  Random rng_;
  std::map<sim::NodeId, StorageNode*> nodes_;
  /// Guards the membership map: the writer inserts PGs mid-run from its home
  /// shard while storage hosts on other shards look memberships up (gossip
  /// peer choice, lazy segment materialization).
  mutable Mutex mu_;
  std::map<PgId, PgMembership> memberships_ GUARDED_BY(mu_);
  std::vector<ConfigRecord> config_history_ GUARDED_BY(mu_);
  PgId next_pg_ GUARDED_BY(mu_) = 0;
  std::function<bool(PageId, class Page*)> synthesizer_;
  Epoch volume_epoch_ = 1;
  std::vector<TruncationRange> truncations_;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_CONTROL_PLANE_H_
