#include "storage/repair.h"

#include "storage/storage_node.h"
#include "storage/wire.h"

namespace aurora {

RepairManager::RepairManager(sim::EventLoop* loop, sim::Network* network,
                             const sim::Topology* topology,
                             ControlPlane* control_plane,
                             RepairOptions options, Random rng)
    : loop_(loop),
      network_(network),
      topology_(topology),
      control_plane_(control_plane),
      options_(options),
      rng_(rng) {}

void RepairManager::Start() {
  if (running_) return;
  running_ = true;
  loop_->Schedule(options_.poll_interval, [this] { Poll(); });
}

void RepairManager::Poll() {
  if (!running_) return;
  loop_->Schedule(options_.poll_interval, [this] { Poll(); });

  const SimTime now = loop_->now();
  for (const auto& [id, node] : control_plane_->storage_nodes()) {
    if (network_->IsNodeDown(id)) {
      down_since_.try_emplace(id, now);
    } else {
      down_since_.erase(id);
    }
  }
  for (const auto& [id, since] : down_since_) {
    if (now - since < options_.detection_threshold) continue;
    for (const auto& [pg, idx] : control_plane_->ReplicasOnNode(id)) {
      if (in_flight_.count({pg, idx})) continue;
      StartRepair(pg, idx, id);
    }
  }
}

sim::NodeId RepairManager::PickReplacement(
    sim::AzId az, const std::set<sim::NodeId>& exclude) {
  std::vector<sim::NodeId> candidates;
  std::vector<sim::NodeId> fallback;
  for (const auto& [id, node] : control_plane_->storage_nodes()) {
    if (exclude.count(id) || network_->IsNodeDown(id)) continue;
    if (topology_->az_of(id) == az) {
      candidates.push_back(id);
    } else {
      fallback.push_back(id);
    }
  }
  // Prefer the same AZ to preserve the 2-per-AZ layout; degrade to any AZ.
  const auto& pool = candidates.empty() ? fallback : candidates;
  if (pool.empty()) return sim::kInvalidNode;
  return pool[rng_.Uniform(pool.size())];
}

void RepairManager::StartRepair(PgId pg, ReplicaIdx idx, sim::NodeId failed) {
  const PgMembership& members = control_plane_->membership(pg);
  std::set<sim::NodeId> exclude(members.nodes.begin(), members.nodes.end());
  sim::NodeId target = PickReplacement(topology_->az_of(failed), exclude);
  if (target == sim::kInvalidNode) return;

  // Find a healthy donor peer.
  sim::NodeId donor = sim::kInvalidNode;
  for (sim::NodeId peer : members.nodes) {
    if (peer == failed || network_->IsNodeDown(peer)) continue;
    StorageNode* n = control_plane_->node(peer);
    if (n != nullptr && n->segment(pg) != nullptr) {
      donor = peer;
      break;
    }
  }
  if (donor == sim::kInvalidNode) return;  // quorum already lost

  in_flight_.insert({pg, idx});
  ++stats_.repairs_started;
  const SimTime started = loop_->now();

  StorageNode* target_node = control_plane_->node(target);
  AURORA_CHECK(target_node != nullptr, "replacement host not registered");
  target_node->set_segment_installed_callback(
      [this, pg, idx, target, started](PgId installed_pg) {
        if (installed_pg != pg) return;
        // Membership flips to the new host only once the copy is installed;
        // the writer picks it up on its next send and gossip backfills
        // anything written during the transfer.
        control_plane_->ReplaceReplica(pg, idx, target);
        in_flight_.erase({pg, idx});
        ++stats_.repairs_completed;
        repair_durations_.push_back(loop_->now() - started);
      });

  // The replacement host pulls the full segment state from the donor; the
  // response payload carries the real serialized segment, so transfer time
  // reflects segment size over the simulated fabric (§2.2's MTTR argument).
  SegmentStateReqMsg req;
  req.req_id = next_req_++;
  req.pg = pg;
  std::string payload;
  req.EncodeTo(&payload);
  network_->Send(target, donor, kMsgSegmentStateReq, std::move(payload));
}

void RepairManager::MigrateReplica(PgId pg, ReplicaIdx idx) {
  const PgMembership& members = control_plane_->membership(pg);
  sim::NodeId current = members.nodes[idx];
  ++stats_.migrations;
  StartRepair(pg, idx, current);
}

}  // namespace aurora
