#include "storage/repair.h"

#include <algorithm>
#include <utility>

#include "storage/segment.h"
#include "storage/storage_node.h"
#include "storage/wire.h"

namespace aurora {

RepairManager::RepairManager(sim::EventLoop* loop, sim::Network* network,
                             const sim::Topology* topology,
                             ControlPlane* control_plane,
                             RepairOptions options, Random rng)
    : loop_(loop),
      network_(network),
      topology_(topology),
      control_plane_(control_plane),
      options_(options),
      rng_(rng) {}

void RepairManager::Start() {
  if (running_) return;
  running_ = true;
  poll_timer_ = loop_->Schedule(options_.poll_interval, [this] { Poll(); });
}

void RepairManager::Stop() {
  if (!running_) return;
  running_ = false;
  loop_->Cancel(poll_timer_);
  poll_timer_ = 0;
  for (auto& [key, r] : active_) {
    loop_->Cancel(r.timeout_event);
    StorageNode* target = control_plane_->node(r.target);
    if (target != nullptr) target->AbortRepairSession(r.pg, r.req_id);
  }
  active_.clear();
  queue_.clear();
  in_flight_.clear();
}

std::vector<RepairManager::ActiveRepairView> RepairManager::active_repairs()
    const {
  std::vector<ActiveRepairView> out;
  out.reserve(active_.size());
  for (const auto& [key, r] : active_) {
    out.push_back({r.pg, r.idx, r.target, r.donor, r.req_id, r.next_chunk,
                   r.total_chunks});
  }
  return out;
}

void RepairManager::Poll() {
  if (!running_) return;
  poll_timer_ = loop_->Schedule(options_.poll_interval, [this] { Poll(); });

  const SimTime now = loop_->now();
  for (const auto& [id, node] : control_plane_->storage_nodes()) {
    if (HostDown(id)) {
      down_since_.try_emplace(id, now);
    } else {
      down_since_.erase(id);
    }
  }

  // Supervise running transfers: a dead replacement aborts the repair (a
  // fresh target is picked on a later pass, the host is still down); a dead
  // donor fails over to another live peer, resuming at the next chunk.
  std::vector<std::pair<PgId, ReplicaIdx>> aborted;
  for (auto& [key, r] : active_) {
    if (HostDown(r.target)) {
      ++stats_.failed;
      loop_->Cancel(r.timeout_event);
      aborted.push_back(key);
      continue;
    }
    if (HostDown(r.donor) && !DonorFailover(&r)) {
      ++stats_.no_donor;
      loop_->Cancel(r.timeout_event);
      StorageNode* target = control_plane_->node(r.target);
      if (target != nullptr) target->AbortRepairSession(r.pg, r.req_id);
      aborted.push_back(key);
    }
  }
  for (const auto& key : aborted) {
    active_.erase(key);
    in_flight_.erase(key);
  }

  for (const auto& [id, since] : down_since_) {
    if (now - since < options_.detection_threshold) continue;
    for (const auto& [pg, idx] : control_plane_->ReplicasOnNode(id)) {
      if (in_flight_.count({pg, idx})) continue;
      in_flight_.insert({pg, idx});
      queue_.push_back({pg, idx, id, now, false, sim::kInvalidNode});
    }
  }
  DispatchFromQueue();
}

void RepairManager::DispatchFromQueue() {
  while (!queue_.empty()) {
    if (active_.size() >= options_.max_concurrent) {
      ++stats_.queued;
      return;
    }
    PendingRepair q = queue_.front();
    queue_.pop_front();
    TryDispatch(q);
  }
}

void RepairManager::TryDispatch(const PendingRepair& q) {
  const auto key = std::make_pair(q.pg, q.idx);
  // The host may have recovered while the repair sat queued.
  if (!q.is_migration && !HostDown(q.failed)) {
    in_flight_.erase(key);
    return;
  }
  const PgMembership& members = control_plane_->membership(q.pg);
  // Membership may have moved past this repair (e.g. a migration raced it).
  if (members.nodes[q.idx] != q.failed) {
    in_flight_.erase(key);
    return;
  }
  sim::NodeId target = q.pinned_target;
  if (target == sim::kInvalidNode) {
    std::set<sim::NodeId> exclude(members.nodes.begin(), members.nodes.end());
    // A concurrent repair of a sibling replica may already be copying into
    // its own replacement; that host will join this PG when it installs, so
    // picking it twice would give one host two slots (invariant 7).
    for (const auto& [akey, ar] : active_) {
      if (akey.first == q.pg) exclude.insert(ar.target);
    }
    target = PickReplacement(topology_->az_of(q.failed), exclude);
  }
  if (target == sim::kInvalidNode) {
    // Every healthy host already carries this PG (or the fleet is down).
    // Degrade gracefully: count it, release the slot, retry next poll.
    ++stats_.no_replacement;
    in_flight_.erase(key);
    return;
  }
  sim::NodeId donor =
      PickDonor(q.pg, q.is_migration ? sim::kInvalidNode : q.failed);
  if (donor == sim::kInvalidNode) {
    ++stats_.no_donor;  // quorum already lost; retry next poll
    in_flight_.erase(key);
    return;
  }

  Repair r;
  r.pg = q.pg;
  r.idx = q.idx;
  r.failed = q.failed;
  r.target = target;
  r.donor = donor;
  r.req_id = next_req_++;
  r.detected_at = q.detected_at;
  r.is_migration = q.is_migration;
  ++stats_.started;

  StorageNode* target_node = control_plane_->node(target);
  AURORA_CHECK(target_node != nullptr, "replacement host not registered");
  // One shared router per manager: events carry (pg, req_id), so concurrent
  // repairs landing on the same target never clobber each other.
  target_node->set_repair_progress_callback(
      [this](PgId pg, const StorageNode::RepairProgress& p) {
        OnRepairProgress(pg, p);
      });
  target_node->BeginRepairSession(q.pg, r.req_id);

  auto [it, inserted] = active_.emplace(key, r);
  AURORA_CHECK(inserted, "duplicate active repair");
  stats_.concurrent_peak =
      std::max<uint64_t>(stats_.concurrent_peak, active_.size());
  RequestChunk(&it->second);
}

void RepairManager::RequestChunk(Repair* r) {
  SegmentChunkReqMsg req;
  req.req_id = r->req_id;
  req.pg = r->pg;
  req.chunk_index = r->next_chunk;
  req.chunk_bytes = options_.chunk_bytes;
  std::string payload;
  req.EncodeTo(&payload);
  // Spoofed source: the donor's chunk responses route straight to the
  // replacement target, which reassembles and reports progress to us.
  network_->Send(r->target, r->donor, kMsgSegmentChunkReq,
                 std::move(payload));
  ArmChunkTimeout(r);
}

void RepairManager::ArmChunkTimeout(Repair* r) {
  const SimDuration timeout =
      options_.chunk_timeout *
      (uint64_t{1} << std::min<uint32_t>(r->attempts, 5));
  const auto key = std::make_pair(r->pg, r->idx);
  const uint64_t req_id = r->req_id;
  r->timeout_event = loop_->Schedule(
      timeout, [this, key, req_id] { OnChunkTimeout(key, req_id); });
}

void RepairManager::OnChunkTimeout(std::pair<PgId, ReplicaIdx> key,
                                   uint64_t req_id) {
  // No running_ gate: Stop() cancels these timers and clears active_, and
  // migrations must work even on a never-started manager.
  auto it = active_.find(key);
  if (it == active_.end() || it->second.req_id != req_id) return;
  Repair* r = &it->second;
  ++stats_.chunk_retries;
  ++r->attempts;
  if (r->attempts >= options_.max_chunk_attempts) {
    // The donor looks unreachable (partitioned, overloaded, or the fabric is
    // eating this chunk). Prefer a different donor; with none available keep
    // hammering the same one at the max backoff.
    sim::NodeId next =
        PickDonor(r->pg, r->is_migration ? sim::kInvalidNode : r->failed,
                  r->donor);
    if (next != sim::kInvalidNode) {
      ++stats_.donor_failovers;
      r->donor = next;
      r->attempts = 0;
    } else {
      r->attempts = options_.max_chunk_attempts - 1;
    }
  }
  RequestChunk(r);
}

void RepairManager::OnRepairProgress(PgId pg,
                                     const StorageNode::RepairProgress& p) {
  // Route by (pg, req_id). Linear scan: active_ is at most max_concurrent.
  auto it = active_.end();
  for (auto i = active_.begin(); i != active_.end(); ++i) {
    if (i->first.first == pg && i->second.req_id == p.req_id) {
      it = i;
      break;
    }
  }
  if (it == active_.end()) return;  // late event from an aborted transfer
  Repair* r = &it->second;

  switch (p.event) {
    case StorageNode::RepairEvent::kChunk: {
      loop_->Cancel(r->timeout_event);
      r->attempts = 0;
      r->total_chunks = p.total_chunks;
      r->total_bytes = p.total_bytes;
      stats_.bytes_copied += ChunkSize(*r, p.chunk_index);
      r->next_chunk = p.chunk_index + 1;
      RequestChunk(r);
      break;
    }
    case StorageNode::RepairEvent::kMismatch:
    case StorageNode::RepairEvent::kFailed: {
      // The donor-side snapshot changed under the transfer (donor failover
      // to a peer with different state), or the assembled blob failed
      // verification/installation. Restart from chunk 0.
      ++stats_.transfer_restarts;
      loop_->Cancel(r->timeout_event);
      r->next_chunk = 0;
      r->total_chunks = 0;
      r->total_bytes = 0;
      r->attempts = 0;
      if (p.event == StorageNode::RepairEvent::kFailed) {
        // The target closed the session; reopen under a fresh req_id so the
        // donor builds a new snapshot (the old one may be permanently
        // uninstallable, e.g. behind a stale local segment).
        r->req_id = next_req_++;
        StorageNode* target = control_plane_->node(r->target);
        if (target != nullptr) target->BeginRepairSession(r->pg, r->req_id);
      }
      RequestChunk(r);
      break;
    }
    case StorageNode::RepairEvent::kInstalled: {
      loop_->Cancel(r->timeout_event);
      r->total_chunks = p.total_chunks;
      r->total_bytes = p.total_bytes;
      stats_.bytes_copied += ChunkSize(*r, p.chunk_index);
      // Membership flips to the new host only once the copy is installed;
      // the writer picks it up on its next send (or on a kStaleConfig NAK)
      // and gossip backfills anything written during the transfer.
      control_plane_->ReplaceReplica(r->pg, r->idx, r->target);
      ++stats_.completed;
      const SimDuration mttr = loop_->now() - r->detected_at;
      mttr_hist_.Record(mttr);
      repair_durations_.push_back(mttr);
      const auto key = it->first;
      active_.erase(it);
      in_flight_.erase(key);
      DispatchFromQueue();
      break;
    }
  }
}

bool RepairManager::HostDown(sim::NodeId id) const {
  return network_->IsNodeDown(id) ||
         network_->IsAzDown(topology_->az_of(id));
}

bool RepairManager::DonorFailover(Repair* r) {
  sim::NodeId next =
      PickDonor(r->pg, r->is_migration ? sim::kInvalidNode : r->failed,
                r->donor);
  if (next == sim::kInvalidNode) return false;
  ++stats_.donor_failovers;
  r->donor = next;
  r->attempts = 0;
  loop_->Cancel(r->timeout_event);
  // Resume from the last acked chunk. If the new donor's snapshot differs,
  // the target reports a mismatch and the transfer restarts from chunk 0.
  RequestChunk(r);
  return true;
}

sim::NodeId RepairManager::PickReplacement(
    sim::AzId az, const std::set<sim::NodeId>& exclude) {
  std::vector<sim::NodeId> candidates;
  std::vector<sim::NodeId> fallback;
  for (const auto& [id, node] : control_plane_->storage_nodes()) {
    if (exclude.count(id) || HostDown(id)) continue;
    if (topology_->az_of(id) == az) {
      candidates.push_back(id);
    } else {
      fallback.push_back(id);
    }
  }
  // Prefer the same AZ to preserve the 2-per-AZ layout; degrade to any AZ.
  const auto& pool = candidates.empty() ? fallback : candidates;
  if (pool.empty()) return sim::kInvalidNode;
  return pool[rng_.Uniform(pool.size())];
}

sim::NodeId RepairManager::PickDonor(PgId pg, sim::NodeId exclude_a,
                                     sim::NodeId exclude_b) {
  const PgMembership& members = control_plane_->membership(pg);
  sim::NodeId best = sim::kInvalidNode;
  Lsn best_scl = 0;
  for (sim::NodeId peer : members.nodes) {
    if (peer == exclude_a || peer == exclude_b) continue;
    if (HostDown(peer)) continue;
    StorageNode* n = control_plane_->node(peer);
    if (n == nullptr || n->crashed()) continue;
    const Segment* seg = n->segment(pg);
    if (seg == nullptr) continue;
    // Deterministic pick: the most caught-up live replica (highest SCL).
    if (best == sim::kInvalidNode || seg->scl() > best_scl) {
      best = peer;
      best_scl = seg->scl();
    }
  }
  return best;
}

uint64_t RepairManager::ChunkSize(const Repair& r, uint32_t chunk_index)
    const {
  if (r.total_bytes == 0) return 0;
  const uint64_t offset =
      static_cast<uint64_t>(chunk_index) * options_.chunk_bytes;
  if (offset >= r.total_bytes) return 0;
  return std::min<uint64_t>(options_.chunk_bytes, r.total_bytes - offset);
}

void RepairManager::MigrateReplica(PgId pg, ReplicaIdx idx) {
  MigrateReplicaTo(pg, idx, sim::kInvalidNode);
}

void RepairManager::MigrateReplicaTo(PgId pg, ReplicaIdx idx,
                                     sim::NodeId target) {
  const auto key = std::make_pair(pg, idx);
  if (in_flight_.count(key)) return;
  const PgMembership& members = control_plane_->membership(pg);
  ++stats_.migrations;
  in_flight_.insert(key);
  queue_.push_back({pg, idx, members.nodes[idx], loop_->now(), true, target});
  DispatchFromQueue();
}

}  // namespace aurora
