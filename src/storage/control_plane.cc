#include "storage/control_plane.h"

#include <algorithm>
#include <vector>

#include "storage/storage_node.h"

namespace aurora {

PgId CreatePgImplPick(const sim::Topology* topology,
                      const std::map<sim::NodeId, StorageNode*>& nodes,
                      Random* rng, std::array<sim::NodeId, 6>* out) {
  // Pick two distinct hosts per AZ, uniformly at random among registered
  // storage hosts in that AZ ("high entropy" placement, §3.3).
  int filled = 0;
  for (sim::AzId az = 0; az < 3; ++az) {
    std::vector<sim::NodeId> in_az;
    for (const auto& [id, node] : nodes) {
      if (topology->az_of(id) == az) in_az.push_back(id);
    }
    AURORA_CHECK(in_az.size() >= 2,
                 "need at least two storage hosts per AZ to place a PG");
    uint64_t a = rng->Uniform(in_az.size());
    uint64_t b = rng->Uniform(in_az.size() - 1);
    if (b >= a) ++b;
    (*out)[filled++] = in_az[a];
    (*out)[filled++] = in_az[b];
  }
  return 0;
}

PgId ControlPlane::CreatePg(size_t page_size) {
  MutexLock lock(&mu_);
  PgMembership members;
  CreatePgImplPick(topology_, nodes_, &rng_, &members.nodes);
  members.page_size = page_size;
  PgId pg = next_pg_++;
  memberships_[pg] = members;
  config_history_.push_back({pg, members.config_epoch, members.nodes});
  // No segments are instantiated here: each member host materializes its
  // replica lazily on first contact (StorageNode::EnsureSegment), so volume
  // growth never mutates state homed on another PDES shard.
  return pg;
}

const PgMembership& ControlPlane::membership(PgId pg) const {
  MutexLock lock(&mu_);
  auto it = memberships_.find(pg);
  AURORA_CHECK(it != memberships_.end(), "unknown PG");
  return it->second;
}

bool ControlPlane::MemberPageSize(PgId pg, sim::NodeId node,
                                  size_t* page_size) const {
  MutexLock lock(&mu_);
  auto it = memberships_.find(pg);
  if (it == memberships_.end() || it->second.IndexOf(node) < 0) return false;
  *page_size = it->second.page_size;
  return true;
}

void ControlPlane::ReplaceReplica(PgId pg, ReplicaIdx idx,
                                  sim::NodeId replacement) {
  MutexLock lock(&mu_);
  auto it = memberships_.find(pg);
  AURORA_CHECK(it != memberships_.end(), "unknown PG in ReplaceReplica");
  it->second.nodes[idx] = replacement;
  ++it->second.config_epoch;
  config_history_.push_back({pg, it->second.config_epoch, it->second.nodes});
}

void ControlPlane::SetPageSynthesizer(
    std::function<bool(PageId, Page*)> fn) {
  synthesizer_ = std::move(fn);
  for (auto& [id, node] : nodes_) {
    node->InstallSynthesizerOnSegments(synthesizer_);
  }
}

std::vector<std::pair<PgId, ReplicaIdx>> ControlPlane::ReplicasOnNode(
    sim::NodeId node) const {
  MutexLock lock(&mu_);
  std::vector<std::pair<PgId, ReplicaIdx>> out;
  for (const auto& [pg, members] : memberships_) {
    int idx = members.IndexOf(node);
    if (idx >= 0) out.emplace_back(pg, static_cast<ReplicaIdx>(idx));
  }
  return out;
}

}  // namespace aurora
