#ifndef AURORA_STORAGE_WIRE_H_
#define AURORA_STORAGE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "log/log_record.h"
#include "log/types.h"

namespace aurora {

/// Message type tags on the simulated network. One namespace for the whole
/// system so a single dispatcher per node suffices.
enum MsgType : uint16_t {
  // Writer -> storage node.
  kMsgWriteBatch = 1,
  kMsgReadPageReq = 3,
  kMsgTruncateReq = 5,
  kMsgPgmrplUpdate = 7,
  kMsgInventoryReq = 8,
  // Storage node -> writer.
  kMsgWriteAck = 2,
  kMsgReadPageResp = 4,
  kMsgTruncateAck = 6,
  kMsgInventoryResp = 9,
  // Storage node <-> storage node.
  kMsgGossipPull = 10,
  kMsgGossipPush = 11,
  kMsgSegmentStateReq = 12,
  kMsgSegmentStateResp = 13,
  // Writer -> read replica instance (§4.2.4).
  kMsgReplicaLogStream = 14,
  // Replica -> writer: read-point feedback for PGMRPL (§4.2.3).
  kMsgReplicaReadPoint = 15,
  // Chunked repair transfer (replacement <-> donor, §2.2).
  kMsgSegmentChunkReq = 16,
  kMsgSegmentChunkResp = 17,
  // Baseline (mirrored MySQL over EBS) traffic.
  kMsgEbsWrite = 20,
  kMsgEbsWriteAck = 21,
  kMsgEbsRead = 22,
  kMsgEbsReadResp = 23,
  kMsgBinlogShip = 24,
  kMsgBinlogAck = 25,
  kMsgStandbyShip = 26,
  kMsgStandbyAck = 27,
};

/// Writer -> segment replica: one ordered batch of redo records for a PG
/// (Figure 3). `vdl_hint` piggybacks the writer's current VDL so storage can
/// bound background materialization; `commit_lsn_hint` does the same for
/// replicas.
struct WriteBatchMsg {
  PgId pg = 0;
  ReplicaIdx replica = 0;
  Epoch epoch = 0;
  /// The PG membership config epoch the sender believes current; storage
  /// NAKs (kStaleConfig) batches stamped below its own view, so a writer
  /// that missed a ReplaceReplica can never count an evicted host toward
  /// quorum.
  uint64_t cfg_epoch = 0;
  uint64_t batch_seq = 0;
  Lsn vdl_hint = kInvalidLsn;
  Lsn pgmrpl_hint = kInvalidLsn;
  std::vector<LogRecord> records;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, WriteBatchMsg* out);

  /// Two-fragment decode for zero-copy delivery: `head` is the per-replica
  /// header fragment (pg + replica index, possibly followed by body bytes
  /// when the message arrived in one piece) and `body` the shared fragment.
  /// Decodes the same byte stream as DecodeFrom(head + body) without ever
  /// concatenating the fragments.
  static Status DecodeFrom(Slice head, Slice body, WriteBatchMsg* out);

  /// Split encoding for single-encode fan-out: the header carries the only
  /// per-replica field (pg + replica index) while the body — epoch, seq,
  /// watermark hints, and the record blob — is identical across the 6
  /// replicas and every retry, so the writer encodes it once and shares the
  /// buffer. Concatenating header + body yields exactly the EncodeTo bytes;
  /// DecodeFrom is unchanged.
  void EncodeHeaderTo(std::string* dst) const;
  static void EncodeBody(Epoch epoch, uint64_t cfg_epoch, uint64_t batch_seq,
                         Lsn vdl_hint, Lsn pgmrpl_hint,
                         const std::vector<LogRecord>& records,
                         std::string* dst);
};

/// Segment replica -> writer: batch persisted on disk (Figure 4 step 2), or
/// — when `status_code` is kFenced — rejected because the segment has seen a
/// newer volume epoch than the batch carried. `epoch` echoes the segment's
/// epoch so a fenced writer learns how far ahead the volume moved.
struct WriteAckMsg {
  PgId pg = 0;
  ReplicaIdx replica = 0;
  uint64_t batch_seq = 0;
  Lsn scl = kInvalidLsn;
  uint8_t status_code = 0;  // Status::Code: kOk, kFenced or kStaleConfig
  Epoch epoch = 0;          // the segment's current volume epoch
  /// The storage node's current view of the PG membership config epoch; on
  /// a kStaleConfig NAK this tells the writer how far behind it is.
  uint64_t cfg_epoch = 0;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, WriteAckMsg* out);
};

/// Writer -> segment replica: serve a page as of `read_point` (§4.2.3 —
/// single-segment read, not a quorum read).
struct ReadPageReqMsg {
  uint64_t req_id = 0;
  PgId pg = 0;
  PageId page = kInvalidPage;
  Lsn read_point = kInvalidLsn;
  /// The requester's volume epoch; a segment that has seen a newer epoch
  /// answers kFenced so a zombie writer can't serve reads off stale quorum
  /// state. 0 means "unfenced" (replicas read through the stream watermark
  /// and are epoch-agnostic).
  Epoch epoch = 0;
  /// Membership config epoch of the requester's view; 0 means unenforced
  /// (read replicas route via the writer's published membership and are
  /// config-agnostic). A stale value is NAKed with kStaleConfig.
  uint64_t cfg_epoch = 0;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, ReadPageReqMsg* out);
};

struct ReadPageRespMsg {
  uint64_t req_id = 0;
  uint8_t status_code = 0;  // Status::Code
  Lsn page_lsn = kInvalidLsn;
  std::string page_bytes;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, ReadPageRespMsg* out);
};

/// Recovery: writer asks each reachable replica of a PG for its log-chain
/// inventory above a base LSN (§4.3).
struct InventoryReqMsg {
  uint64_t req_id = 0;
  PgId pg = 0;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, InventoryReqMsg* out);
};

struct InventoryEntry {
  Lsn lsn = kInvalidLsn;
  Lsn prev = kInvalidLsn;   // per-PG backlink
  Lsn vprev = kInvalidLsn;  // volume-wide backlink
  uint8_t flags = 0;
};

struct InventoryRespMsg {
  uint64_t req_id = 0;
  PgId pg = 0;
  ReplicaIdx replica = 0;
  Epoch epoch = 0;
  Lsn scl = kInvalidLsn;
  /// Highest VDL the writer ever told this segment (a durable completeness
  /// floor: every record at or below it once reached a write quorum).
  Lsn vdl_hint = kInvalidLsn;
  std::vector<InventoryEntry> entries;  // all hot-log records (lsn,prev,flags)

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, InventoryRespMsg* out);
};

/// Recovery: truncate every log record above `truncate_above`, stamped with
/// a new volume epoch so repeated/interrupted recoveries are idempotent.
struct TruncateReqMsg {
  uint64_t req_id = 0;
  PgId pg = 0;
  Epoch epoch = 0;
  Lsn truncate_above = kInvalidLsn;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, TruncateReqMsg* out);
};

struct TruncateAckMsg {
  uint64_t req_id = 0;
  PgId pg = 0;
  ReplicaIdx replica = 0;
  uint8_t status_code = 0;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, TruncateAckMsg* out);
};

/// Writer -> storage: advance the PG's minimum read point (GC low-water
/// mark, §4.2.3). Also carries a consistent completeness snapshot for idle
/// PGs: "as of VDL `vdl_snapshot`, this PG's newest record is `pg_tail`" —
/// a segment whose SCL reaches pg_tail can then serve any read point up to
/// vdl_snapshot even though its SCL is far below it (brand-new and idle
/// PGs would otherwise never be readable).
struct PgmrplMsg {
  PgId pg = 0;
  Lsn pgmrpl = kInvalidLsn;
  Lsn vdl_snapshot = kInvalidLsn;
  Lsn pg_tail = kInvalidLsn;
  bool has_snapshot = false;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, PgmrplMsg* out);
};

/// Peer gossip: "here is my SCL; push me anything newer you have"
/// (Figure 4 step 4).
struct GossipPullMsg {
  PgId pg = 0;
  ReplicaIdx replica = 0;  // sender
  Epoch epoch = 0;         // sender's segment epoch
  uint64_t cfg_epoch = 0;  // sender's membership config epoch
  Lsn scl = kInvalidLsn;
  Lsn max_lsn = kInvalidLsn;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, GossipPullMsg* out);
};

/// Peer gossip fill. Carries the sender's segment epoch: a receiver on a
/// newer epoch drops the push wholesale, so a segment that missed a
/// truncation (only 4/6 ack it) cannot resurrect annulled records into
/// peers that already truncated.
struct GossipPushMsg {
  PgId pg = 0;
  Epoch epoch = 0;
  uint64_t cfg_epoch = 0;  // sender's membership config epoch
  std::vector<LogRecord> records;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, GossipPushMsg* out);

  /// Encodes straight from hot-log record views (Segment::RecordsAbove) —
  /// byte-identical to filling `records` and calling EncodeTo, minus the
  /// deep copy of every record payload.
  static void EncodeRecordsTo(PgId pg, Epoch epoch, uint64_t cfg_epoch,
                              const std::vector<const LogRecord*>& records,
                              std::string* dst);
};

/// Writer -> read replica: the redo stream plus watermark metadata
/// (§4.2.4). Replicas apply records <= vdl to pages already in their cache
/// and discard the rest; `commits` carries (commit LSN, writer timestamp)
/// pairs for snapshot visibility and lag measurement.
struct ReplicaStreamMsg {
  Lsn vdl = kInvalidLsn;
  std::vector<LogRecord> records;
  std::vector<std::pair<Lsn, uint64_t>> commits;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, ReplicaStreamMsg* out);
};

/// Replica -> writer: the replica's minimum read point, folded into the
/// PGMRPL (§4.2.3).
struct ReplicaReadPointMsg {
  Lsn read_point = kInvalidLsn;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, ReplicaReadPointMsg* out);
};

/// Repair: a replacement node asks a healthy peer for the full segment
/// state (§2.2 — MTTR is segment transfer time).
struct SegmentStateReqMsg {
  uint64_t req_id = 0;
  PgId pg = 0;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, SegmentStateReqMsg* out);
};

struct SegmentStateRespMsg {
  uint64_t req_id = 0;
  PgId pg = 0;
  std::string state;  // Segment::SerializeTo blob

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, SegmentStateRespMsg* out);
};

/// Chunked repair: the replacement host requests one fixed-size slice of a
/// donor's serialized segment snapshot. Requests are sequence-tagged by
/// (req_id, chunk_index) so the transfer is resumable chunk by chunk over
/// the adversarial fabric.
struct SegmentChunkReqMsg {
  uint64_t req_id = 0;      // repair transfer id (scopes the donor snapshot)
  PgId pg = 0;
  uint32_t chunk_index = 0;
  uint32_t chunk_bytes = 0;  // slice size the requester wants

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, SegmentChunkReqMsg* out);
};

/// One chunk of a donor's segment snapshot. Every response repeats the
/// snapshot geometry (total_chunks / total_bytes / blob_crc) so the
/// receiver can detect a donor failover that changed the underlying blob
/// and restart instead of assembling a franken-segment; `chunk_crc` guards
/// the slice itself against fabric corruption (masked CRC32C).
struct SegmentChunkRespMsg {
  uint64_t req_id = 0;
  PgId pg = 0;
  uint32_t chunk_index = 0;
  uint32_t total_chunks = 0;
  uint64_t total_bytes = 0;
  uint32_t blob_crc = 0;   // masked CRC32C of the whole snapshot
  uint32_t chunk_crc = 0;  // masked CRC32C of `data`
  std::string data;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, SegmentChunkRespMsg* out);
};

}  // namespace aurora

#endif  // AURORA_STORAGE_WIRE_H_
