#ifndef AURORA_STORAGE_STORAGE_NODE_H_
#define AURORA_STORAGE_STORAGE_NODE_H_

#include <map>
#include <memory>

#include "common/histogram.h"
#include "common/random.h"
#include "sim/disk.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/control_plane.h"
#include "storage/segment.h"
#include "storage/sim_s3.h"
#include "storage/wire.h"

namespace aurora {

/// Behavioural knobs of a storage host. Intervals implement the "move the
/// majority of storage processing to the background" tenet of §3.3.
struct StorageNodeOptions {
  sim::DiskOptions disk;
  SimDuration gossip_interval = Millis(100);
  SimDuration coalesce_interval = Millis(20);
  size_t coalesce_batch = 512;
  SimDuration gc_interval = Millis(200);
  SimDuration scrub_interval = Seconds(30);
  SimDuration backup_interval = Millis(500);
  size_t gossip_max_records = 1024;
  size_t backup_max_records = 4096;
  /// Background work is deferred while the disk backlog exceeds this —
  /// §3.3's negative correlation between background and foreground load.
  SimDuration background_backlog_limit = Millis(5);
  /// Ack batches without waiting for the disk (testing only; default off —
  /// the paper requires persistence before acknowledgement).
  bool unsafe_ack_before_persist = false;
  /// Per-segment byte budget for the reconstructed-page cache (§4.2.3:
  /// materialization is "simply a cache of the log application"). Applied to
  /// every segment this node creates or installs; 0 disables caching.
  uint64_t page_cache_budget_bytes = 4 * 1024 * 1024;
};

/// Counters for one storage host.
struct StorageNodeStats {
  uint64_t batches_received = 0;
  uint64_t records_received = 0;
  uint64_t acks_sent = 0;
  uint64_t page_reads_served = 0;
  uint64_t page_read_errors = 0;
  uint64_t gossip_rounds = 0;
  uint64_t gossip_records_sent = 0;
  uint64_t gossip_records_filled = 0;
  /// Full segment-state copies shipped because GC had already collected the
  /// records a straggling peer needed (gossip's state-transfer backstop).
  uint64_t gossip_state_transfers = 0;
  uint64_t records_coalesced = 0;
  uint64_t records_gced = 0;
  uint64_t scrub_rounds = 0;
  uint64_t corrupt_pages_found = 0;
  uint64_t corrupt_pages_repaired = 0;
  uint64_t backup_objects = 0;
  uint64_t background_deferrals = 0;
  uint64_t stale_epoch_rejects = 0;
  /// Write batches already applied once and re-acked without re-applying
  /// (network duplicates / sender retries racing an in-flight ack).
  uint64_t duplicate_batches = 0;
  /// Frames that failed the fabric checksum at this node and were dropped.
  uint64_t corrupt_frames_dropped = 0;
  /// Records back-filled per gossip push integrated (hole-repair depth —
  /// how far behind this replica had fallen when gossip healed it).
  Histogram gossip_fill_batch;
};

/// A storage host: local SSD plus the eight-step I/O pipeline of Figure 4:
/// (1) receive a log-record batch into the in-memory queue, (2) persist on
/// disk and ACK, (3) organize records and identify gaps (Segment's chain),
/// (4) gossip with peers to fill holes, (5) coalesce log records into data
/// pages, (6) periodically stage log and pages to S3, (7) garbage collect
/// old versions, (8) periodically validate page CRCs.
/// Steps 1–2 are the only foreground work; everything else runs on timers
/// and yields to foreground load.
class StorageNode {
 public:
  StorageNode(sim::EventLoop* loop, sim::Network* network, sim::NodeId id,
              ControlPlane* control_plane, SimS3* s3,
              StorageNodeOptions options, Random rng);

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  sim::NodeId id() const { return id_; }

  /// Instantiates an (empty) segment replica for `pg`. Called lazily on
  /// first contact (EnsureSegment) and by tests that prefabricate state.
  void CreateSegment(PgId pg, size_t page_size);
  /// Lazy materialization: returns the hosted segment for `pg`, creating it
  /// (empty, at the volume's page size) iff this host is a member per the
  /// control plane. Null when not a member — stray traffic after a
  /// membership change must not resurrect a dropped replica.
  Segment* EnsureSegment(PgId pg);
  /// Installs the control plane's page synthesizer on all hosted segments.
  void InstallSynthesizerOnSegments(const Segment::PageSynthesizer& fn);
  void DropSegment(PgId pg);
  Segment* segment(PgId pg);
  const Segment* segment(PgId pg) const;
  size_t num_segments() const { return segments_.size(); }

  /// Crash-stop: in-flight (unpersisted) work is lost; segment state —
  /// which is persisted before every ACK — survives on disk.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  const StorageNodeStats& stats() const { return stats_; }
  sim::Disk* disk() { return &disk_; }

  /// Reconstruction-cache counters summed across hosted segments.
  PageCacheStats PageCacheTotals() const;
  /// Current reconstruction-cache footprint across hosted segments.
  uint64_t PageCacheBytes() const;

  /// For the repair manager: serialized segment state bytes.
  uint64_t SegmentBytes(PgId pg) const;

  /// Invoked after a full segment copy (repair) is installed on this host.
  void set_segment_installed_callback(std::function<void(PgId)> cb) {
    segment_installed_cb_ = std::move(cb);
  }

 private:
  void HandleMessage(const sim::Message& msg);
  void HandleWriteBatch(const sim::Message& msg);
  void HandleReadPage(const sim::Message& msg);
  void HandleInventory(const sim::Message& msg);
  void HandleTruncate(const sim::Message& msg);
  void HandlePgmrpl(const sim::Message& msg);
  void HandleGossipPull(const sim::Message& msg);
  void HandleGossipPush(const sim::Message& msg);
  void HandleSegmentStateReq(const sim::Message& msg);
  void HandleSegmentStateResp(const sim::Message& msg);

  void ScheduleBackgroundTasks();
  void GossipTick();
  void CoalesceTick();
  void GcTick();
  void ScrubTick();
  void BackupTick();
  /// True when foreground load should defer background work (§3.3).
  bool Busy() const;

  sim::EventLoop* loop_;
  sim::Network* network_;
  sim::NodeId id_;
  ControlPlane* control_plane_;
  SimS3* s3_;
  StorageNodeOptions options_;
  Random rng_;
  sim::Disk disk_;

  std::map<PgId, std::unique_ptr<Segment>> segments_;
  std::function<void(PgId)> segment_installed_cb_;
  StorageNodeStats stats_;
  /// Write batches fully applied (persisted + integrated), keyed per PG as
  /// batch_seq -> epoch. Consulted on receipt so a duplicated or retried
  /// batch is re-acked without re-persisting; marked only after the disk
  /// write completes (marking at receipt could ack a retry whose records a
  /// crash just lost). Volatile — cleared on Crash(), which is safe because
  /// re-applying a batch after restart is idempotent (AddRecord dedups).
  std::map<PgId, std::map<uint64_t, Epoch>> applied_batches_;
  /// Outstanding background timers, cancelled on Crash() so repeated
  /// crash/restart cycles don't leak dead events in the loop (the
  /// generation guard already makes them no-ops).
  sim::EventId gossip_timer_ = 0;
  sim::EventId coalesce_timer_ = 0;
  sim::EventId gc_timer_ = 0;
  sim::EventId scrub_timer_ = 0;
  sim::EventId backup_timer_ = 0;
  bool crashed_ = false;
  /// Bumped on every crash; stale async callbacks (disk completions from
  /// before the crash) check it and become no-ops.
  uint64_t generation_ = 0;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_STORAGE_NODE_H_
