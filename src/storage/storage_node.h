#ifndef AURORA_STORAGE_STORAGE_NODE_H_
#define AURORA_STORAGE_STORAGE_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "sim/disk.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/control_plane.h"
#include "storage/segment.h"
#include "storage/sim_s3.h"
#include "storage/wire.h"

namespace aurora {

/// Behavioural knobs of a storage host. Intervals implement the "move the
/// majority of storage processing to the background" tenet of §3.3.
struct StorageNodeOptions {
  sim::DiskOptions disk;
  SimDuration gossip_interval = Millis(100);
  SimDuration coalesce_interval = Millis(20);
  size_t coalesce_batch = 512;
  SimDuration gc_interval = Millis(200);
  SimDuration scrub_interval = Seconds(30);
  SimDuration backup_interval = Millis(500);
  size_t gossip_max_records = 1024;
  size_t backup_max_records = 4096;
  /// Background work is deferred while the disk backlog exceeds this —
  /// §3.3's negative correlation between background and foreground load.
  SimDuration background_backlog_limit = Millis(5);
  /// Ack batches without waiting for the disk (testing only; default off —
  /// the paper requires persistence before acknowledgement).
  bool unsafe_ack_before_persist = false;
  /// Per-segment byte budget for the reconstructed-page cache (§4.2.3:
  /// materialization is "simply a cache of the log application"). Applied to
  /// every segment this node creates or installs; 0 disables caching.
  uint64_t page_cache_budget_bytes = 4 * 1024 * 1024;
};

/// Counters for one storage host.
struct StorageNodeStats {
  uint64_t batches_received = 0;
  uint64_t records_received = 0;
  uint64_t acks_sent = 0;
  uint64_t page_reads_served = 0;
  uint64_t page_read_errors = 0;
  uint64_t gossip_rounds = 0;
  uint64_t gossip_records_sent = 0;
  uint64_t gossip_records_filled = 0;
  /// Full segment-state copies shipped because GC had already collected the
  /// records a straggling peer needed (gossip's state-transfer backstop).
  uint64_t gossip_state_transfers = 0;
  uint64_t records_coalesced = 0;
  uint64_t records_gced = 0;
  uint64_t scrub_rounds = 0;
  uint64_t pages_scrubbed = 0;
  uint64_t corrupt_pages_found = 0;
  uint64_t corrupt_pages_repaired = 0;
  /// Corrupt pages healed from a peer on the *read* path (a CRC mismatch
  /// surfaced by GetPageAsOf between scrub rounds).
  uint64_t read_repairs = 0;
  uint64_t backup_objects = 0;
  uint64_t background_deferrals = 0;
  uint64_t stale_epoch_rejects = 0;
  /// Frames NAKed because the sender's membership config epoch was behind
  /// this node's view (or the sender is no longer a member at all).
  uint64_t stale_config_rejects = 0;
  /// Writes the device completed torn (Status::Corruption): the batch is
  /// not applied and not acked, so the sender retries.
  uint64_t torn_write_drops = 0;
  /// Latent sector faults the device planted under this node's pages.
  uint64_t latent_corruptions = 0;
  /// Repair chunks dropped for a payload CRC mismatch (fabric corruption
  /// that slipped past the frame checksum).
  uint64_t repair_chunk_crc_drops = 0;
  /// Incoming chunked-repair transfers started on this node (as target).
  uint64_t repair_sessions_started = 0;
  /// Stray segments dropped after this node was evicted from a PG's
  /// membership (gossip-time cleanup).
  uint64_t evicted_segments_dropped = 0;
  /// Write batches already applied once and re-acked without re-applying
  /// (network duplicates / sender retries racing an in-flight ack).
  uint64_t duplicate_batches = 0;
  /// Frames that failed the fabric checksum at this node and were dropped.
  uint64_t corrupt_frames_dropped = 0;
  /// Records back-filled per gossip push integrated (hole-repair depth —
  /// how far behind this replica had fallen when gossip healed it).
  Histogram gossip_fill_batch;
};

/// A storage host: local SSD plus the eight-step I/O pipeline of Figure 4:
/// (1) receive a log-record batch into the in-memory queue, (2) persist on
/// disk and ACK, (3) organize records and identify gaps (Segment's chain),
/// (4) gossip with peers to fill holes, (5) coalesce log records into data
/// pages, (6) periodically stage log and pages to S3, (7) garbage collect
/// old versions, (8) periodically validate page CRCs.
/// Steps 1–2 are the only foreground work; everything else runs on timers
/// and yields to foreground load.
class StorageNode {
 public:
  StorageNode(sim::EventLoop* loop, sim::Network* network, sim::NodeId id,
              ControlPlane* control_plane, SimS3* s3,
              StorageNodeOptions options, Random rng);

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  sim::NodeId id() const { return id_; }

  /// Instantiates an (empty) segment replica for `pg`. Called lazily on
  /// first contact (EnsureSegment) and by tests that prefabricate state.
  void CreateSegment(PgId pg, size_t page_size);
  /// Lazy materialization: returns the hosted segment for `pg`, creating it
  /// (empty, at the volume's page size) iff this host is a member per the
  /// control plane. Null when not a member — stray traffic after a
  /// membership change must not resurrect a dropped replica.
  Segment* EnsureSegment(PgId pg);
  /// Installs the control plane's page synthesizer on all hosted segments.
  void InstallSynthesizerOnSegments(const Segment::PageSynthesizer& fn);
  void DropSegment(PgId pg);
  Segment* segment(PgId pg);
  const Segment* segment(PgId pg) const;
  size_t num_segments() const { return segments_.size(); }

  /// Crash-stop: in-flight (unpersisted) work is lost; segment state —
  /// which is persisted before every ACK — survives on disk.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  const StorageNodeStats& stats() const { return stats_; }
  sim::Disk* disk() { return &disk_; }

  /// Reconstruction-cache counters summed across hosted segments.
  PageCacheStats PageCacheTotals() const;
  /// Current reconstruction-cache footprint across hosted segments.
  uint64_t PageCacheBytes() const;

  /// For the repair manager: serialized segment state bytes.
  uint64_t SegmentBytes(PgId pg) const;

  // --- Chunked repair (this node as the replacement target) -----------------
  /// What happened to an in-progress chunked transfer, reported to the
  /// repair manager via the progress callback.
  enum class RepairEvent : uint8_t {
    kChunk,      // one more chunk verified and buffered
    kMismatch,   // donor snapshot changed mid-copy; buffer reset to chunk 0
    kInstalled,  // whole blob verified and installed as this PG's segment
    kFailed,     // blob complete but failed verification or installation
  };
  struct RepairProgress {
    uint64_t req_id = 0;
    uint32_t chunk_index = 0;
    uint32_t total_chunks = 0;
    uint64_t total_bytes = 0;
    uint32_t blob_crc = 0;
    RepairEvent event = RepairEvent::kChunk;
  };
  /// Single manager-owned callback; per-repair routing happens in the
  /// manager keyed by (pg, req_id), so concurrent repairs targeting this
  /// node never clobber each other. Delivered via PostControl (the manager
  /// is homed on the control shard).
  using RepairProgressCallback =
      std::function<void(PgId, const RepairProgress&)>;
  void set_repair_progress_callback(RepairProgressCallback cb) {
    repair_progress_cb_ = std::move(cb);
  }
  /// Opens/abandons the reassembly buffer for one chunked transfer. The
  /// manager opens a session before requesting chunk 0 and aborts it when
  /// it gives up on the transfer; a crash of this node drops all sessions
  /// (the buffer is volatile until the final persist + install).
  void BeginRepairSession(PgId pg, uint64_t req_id);
  void AbortRepairSession(PgId pg, uint64_t req_id);

 private:
  void HandleMessage(const sim::Message& msg);
  void HandleWriteBatch(const sim::Message& msg);
  void HandleReadPage(const sim::Message& msg);
  void HandleInventory(const sim::Message& msg);
  void HandleTruncate(const sim::Message& msg);
  void HandlePgmrpl(const sim::Message& msg);
  void HandleGossipPull(const sim::Message& msg);
  void HandleGossipPush(const sim::Message& msg);
  void HandleSegmentStateReq(const sim::Message& msg);
  void HandleSegmentStateResp(const sim::Message& msg);
  void HandleSegmentChunkReq(const sim::Message& msg);
  void HandleSegmentChunkResp(const sim::Message& msg);

  /// Installs a serialized segment copy if it is a superset of local state
  /// (shared by the one-shot state transfer and the chunked repair path).
  /// Returns false when the copy was rejected or malformed.
  bool InstallSegmentCopy(PgId pg, Slice state);
  /// Posts a repair progress event to the manager at the next barrier.
  void NotifyRepairProgress(PgId pg, RepairProgress progress);
  /// Heals one corrupt base page from a live peer at the next barrier
  /// (shared by the scrubber and the read path).
  void SchedulePeerPageRepair(PgId pg, PageId page);

  void ScheduleBackgroundTasks();
  void GossipTick();
  void CoalesceTick();
  void GcTick();
  void ScrubTick();
  void BackupTick();
  /// True when foreground load should defer background work (§3.3).
  bool Busy() const;

  sim::EventLoop* loop_;
  sim::Network* network_;
  sim::NodeId id_;
  ControlPlane* control_plane_;
  SimS3* s3_;
  StorageNodeOptions options_;
  Random rng_;
  sim::Disk disk_;

  std::map<PgId, std::unique_ptr<Segment>> segments_;
  RepairProgressCallback repair_progress_cb_;
  /// Reassembly state of one incoming chunked transfer, keyed (pg, req_id).
  struct RepairSession {
    std::string buffer;
    uint32_t chunks_received = 0;
    bool meta_known = false;
    uint32_t total_chunks = 0;
    uint64_t total_bytes = 0;
    uint32_t blob_crc = 0;
  };
  std::map<std::pair<PgId, uint64_t>, RepairSession> repair_sessions_;
  /// Donor-side snapshot cache: chunk requests for the same (pg, req_id)
  /// are served from one consistent SerializeTo blob, so a transfer never
  /// mixes bytes from two different segment states. Bounded; oldest entry
  /// evicted (the orphaned transfer restarts via the geometry mismatch).
  struct DonorSnapshot {
    std::string blob;
    uint32_t blob_crc = 0;
  };
  std::map<std::pair<PgId, uint64_t>, DonorSnapshot> donor_snapshots_;
  std::vector<std::pair<PgId, uint64_t>> donor_snapshot_order_;
  StorageNodeStats stats_;
  /// Write batches fully applied (persisted + integrated), keyed per PG as
  /// batch_seq -> epoch. Consulted on receipt so a duplicated or retried
  /// batch is re-acked without re-persisting; marked only after the disk
  /// write completes (marking at receipt could ack a retry whose records a
  /// crash just lost). Volatile — cleared on Crash(), which is safe because
  /// re-applying a batch after restart is idempotent (AddRecord dedups).
  std::map<PgId, std::map<uint64_t, Epoch>> applied_batches_;
  /// Outstanding background timers, cancelled on Crash() so repeated
  /// crash/restart cycles don't leak dead events in the loop (the
  /// generation guard already makes them no-ops).
  sim::EventId gossip_timer_ = 0;
  sim::EventId coalesce_timer_ = 0;
  sim::EventId gc_timer_ = 0;
  sim::EventId scrub_timer_ = 0;
  sim::EventId backup_timer_ = 0;
  bool crashed_ = false;
  /// Bumped on every crash; stale async callbacks (disk completions from
  /// before the crash) check it and become no-ops.
  uint64_t generation_ = 0;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_STORAGE_NODE_H_
