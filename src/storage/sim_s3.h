#ifndef AURORA_STORAGE_SIM_S3_H_
#define AURORA_STORAGE_SIM_S3_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "sim/event_loop.h"

namespace aurora {

/// Simulated Amazon S3: a durable object store with high per-request latency
/// and effectively unlimited capacity. Used as the backup/restore sink
/// (Figure 4 step 6, §5) and the binlog archive of the mirrored-MySQL
/// baseline (Figure 2). Objects survive any node/AZ failure by construction.
///
/// Thread-safety (PDES): uploaders homed on different shards hit this in the
/// same window, so the object map is mutex-guarded, each request's
/// completion runs on the caller-supplied loop (its own shard), and latency
/// jitter is derived from (key, per-key op counter) rather than a shared
/// RNG stream — the draw is a function of the request itself, never of the
/// cross-shard arrival interleaving.
class SimS3 {
 public:
  struct Options {
    SimDuration put_latency = Millis(20);
    SimDuration get_latency = Millis(15);
    double jitter_sigma = 0.4;
  };

  SimS3(sim::EventLoop* loop, Options options, Random rng)
      : loop_(loop), options_(options), seed_(rng.Next()) {}

  SimS3(const SimS3&) = delete;
  SimS3& operator=(const SimS3&) = delete;

  /// Stores `bytes` under `key` (overwrites), invoking `done` after the
  /// simulated round trip. `done` runs on `on` when given (the caller's
  /// home-shard loop under PDES), else on the store's default loop.
  void Put(const std::string& key, std::string bytes,
           std::function<void(Status)> done, sim::EventLoop* on = nullptr);

  /// Fetches the object; NotFound if absent. Completion loop as for Put().
  void Get(const std::string& key, std::function<void(Result<std::string>)> done,
           sim::EventLoop* on = nullptr);

  /// Synchronous existence/content check (control-plane use and tests).
  bool Contains(const std::string& key) const {
    MutexLock lock(&mu_);
    return objects_.count(key) > 0;
  }
  Result<std::string> GetSync(const std::string& key) const;
  /// Objects whose key starts with `prefix`, in key order (restore scans).
  std::vector<std::string> ListKeys(const std::string& prefix) const;

  uint64_t num_objects() const {
    MutexLock lock(&mu_);
    return objects_.size();
  }
  uint64_t bytes_stored() const {
    MutexLock lock(&mu_);
    return bytes_stored_;
  }
  uint64_t puts() const {
    MutexLock lock(&mu_);
    return puts_;
  }
  uint64_t gets() const {
    MutexLock lock(&mu_);
    return gets_;
  }

 private:
  /// Log-normal jitter seeded by (store seed, key bytes, per-key op index):
  /// deterministic for a given request sequence per key, independent of the
  /// order in which shards reach the store inside a window.
  SimDuration Latency(SimDuration base, const std::string& key,
                      uint64_t op_index);

  sim::EventLoop* loop_;
  Options options_;
  const uint64_t seed_;
  mutable Mutex mu_;
  std::map<std::string, std::string> objects_ GUARDED_BY(mu_);
  std::map<std::string, uint64_t> key_ops_ GUARDED_BY(mu_);
  uint64_t bytes_stored_ GUARDED_BY(mu_) = 0;
  uint64_t puts_ GUARDED_BY(mu_) = 0;
  uint64_t gets_ GUARDED_BY(mu_) = 0;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_SIM_S3_H_
