#ifndef AURORA_STORAGE_SIM_S3_H_
#define AURORA_STORAGE_SIM_S3_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/event_loop.h"

namespace aurora {

/// Simulated Amazon S3: a durable object store with high per-request latency
/// and effectively unlimited capacity. Used as the backup/restore sink
/// (Figure 4 step 6, §5) and the binlog archive of the mirrored-MySQL
/// baseline (Figure 2). Objects survive any node/AZ failure by construction.
class SimS3 {
 public:
  struct Options {
    SimDuration put_latency = Millis(20);
    SimDuration get_latency = Millis(15);
    double jitter_sigma = 0.4;
  };

  SimS3(sim::EventLoop* loop, Options options, Random rng)
      : loop_(loop), options_(options), rng_(rng) {}

  SimS3(const SimS3&) = delete;
  SimS3& operator=(const SimS3&) = delete;

  /// Stores `bytes` under `key` (overwrites), invoking `done` after the
  /// simulated round trip.
  void Put(const std::string& key, std::string bytes,
           std::function<void(Status)> done);

  /// Fetches the object; NotFound if absent.
  void Get(const std::string& key,
           std::function<void(Result<std::string>)> done);

  /// Synchronous existence/content check (control-plane use and tests).
  bool Contains(const std::string& key) const { return objects_.count(key); }
  Result<std::string> GetSync(const std::string& key) const;
  /// Objects whose key starts with `prefix`, in key order (restore scans).
  std::vector<std::string> ListKeys(const std::string& prefix) const;

  uint64_t num_objects() const { return objects_.size(); }
  uint64_t bytes_stored() const { return bytes_stored_; }
  uint64_t puts() const { return puts_; }
  uint64_t gets() const { return gets_; }

 private:
  SimDuration Latency(SimDuration base) {
    return static_cast<SimDuration>(
        static_cast<double>(base) * rng_.LogNormal(1.0, options_.jitter_sigma));
  }

  sim::EventLoop* loop_;
  Options options_;
  Random rng_;
  std::map<std::string, std::string> objects_;
  uint64_t bytes_stored_ = 0;
  uint64_t puts_ = 0;
  uint64_t gets_ = 0;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_SIM_S3_H_
