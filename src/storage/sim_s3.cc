#include "storage/sim_s3.h"

namespace aurora {

void SimS3::Put(const std::string& key, std::string bytes,
                std::function<void(Status)> done) {
  ++puts_;
  auto it = objects_.find(key);
  if (it != objects_.end()) bytes_stored_ -= it->second.size();
  bytes_stored_ += bytes.size();
  objects_[key] = std::move(bytes);
  loop_->Schedule(Latency(options_.put_latency),
                  [done = std::move(done)]() { done(Status::OK()); });
}

void SimS3::Get(const std::string& key,
                std::function<void(Result<std::string>)> done) {
  ++gets_;
  Result<std::string> result = GetSync(key);
  loop_->Schedule(Latency(options_.get_latency),
                  [done = std::move(done), result = std::move(result)]() {
                    done(std::move(result));
                  });
}

Result<std::string> SimS3::GetSync(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object");
  return it->second;
}

std::vector<std::string> SimS3::ListKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

}  // namespace aurora
