#include "storage/sim_s3.h"

namespace aurora {

namespace {

// FNV-1a over the key bytes: a stable, portable hash (std::hash would tie
// the jitter to the standard library implementation).
uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

SimDuration SimS3::Latency(SimDuration base, const std::string& key,
                           uint64_t op_index) {
  Random draw(seed_ ^ HashKey(key) ^ (op_index * 0x9E3779B97F4A7C15ull));
  return static_cast<SimDuration>(
      static_cast<double>(base) * draw.LogNormal(1.0, options_.jitter_sigma));
}

void SimS3::Put(const std::string& key, std::string bytes,
                std::function<void(Status)> done, sim::EventLoop* on) {
  SimDuration latency;
  {
    MutexLock lock(&mu_);
    ++puts_;
    latency = Latency(options_.put_latency, key, key_ops_[key]++);
    auto it = objects_.find(key);
    if (it != objects_.end()) bytes_stored_ -= it->second.size();
    bytes_stored_ += bytes.size();
    objects_[key] = std::move(bytes);
  }
  sim::EventLoop* loop = on != nullptr ? on : loop_;
  loop->Schedule(latency, [done = std::move(done)]() { done(Status::OK()); });
}

void SimS3::Get(const std::string& key,
                std::function<void(Result<std::string>)> done,
                sim::EventLoop* on) {
  SimDuration latency;
  Result<std::string> result = Status::NotFound("no such object");
  {
    MutexLock lock(&mu_);
    ++gets_;
    latency = Latency(options_.get_latency, key, key_ops_[key]++);
    auto it = objects_.find(key);
    if (it != objects_.end()) result = it->second;
  }
  sim::EventLoop* loop = on != nullptr ? on : loop_;
  loop->Schedule(latency, [done = std::move(done),
                           result = std::move(result)]() mutable {
    done(std::move(result));
  });
}

Result<std::string> SimS3::GetSync(const std::string& key) const {
  MutexLock lock(&mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object");
  return it->second;
}

std::vector<std::string> SimS3::ListKeys(const std::string& prefix) const {
  MutexLock lock(&mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

}  // namespace aurora
