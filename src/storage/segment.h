#ifndef AURORA_STORAGE_SEGMENT_H_
#define AURORA_STORAGE_SEGMENT_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "log/log_record.h"
#include "log/types.h"
#include "page/page.h"
#include "storage/wire.h"

namespace aurora {

/// Counters for the per-segment reconstructed-page cache.
struct PageCacheStats {
  uint64_t hits = 0;          // served straight from a cached image
  uint64_t partial_hits = 0;  // cached image + replay of a short LSN suffix
  uint64_t misses = 0;        // full rebuild from base page + hot log
  uint64_t evictions = 0;     // LRU evictions under the byte budget
};

/// One segment replica: the durable state a storage node keeps for one
/// protection group (§2.2, Figure 4). Pure state machine — all timing
/// (disk persistence, gossip cadence, scrubbing) lives in StorageNode.
///
/// State:
///  - the hot log: redo records addressed to this PG, keyed by LSN;
///  - the backlink chain index, from which the Segment Complete LSN (SCL) is
///    maintained: the highest LSN below which this replica has every record
///    of the PG (§4.2.1);
///  - materialized base pages: each page's image advanced by coalescing log
///    records (Figure 4 step 5), never beyond min(SCL, VDL hint, PGMRPL) so
///    that (a) truncation after a crash can never undo a materialized page
///    and (b) any read point >= PGMRPL remains reconstructable;
///  - watermarks: VDL hint (piggybacked by the writer), PGMRPL, the volume
///    epoch, and the S3 backup high-water mark.
class Segment {
 public:
  Segment(PgId pg, size_t page_size) : pg_(pg), page_size_(page_size) {}

  /// Pre-loaded (snapshot-restored) volumes: pages that have never been
  /// written through the log can be synthesized deterministically on first
  /// touch instead of being materialized eagerly — the simulation analogue
  /// of a volume restored from an S3 snapshot. The function returns true if
  /// it produced the page's base image.
  using PageSynthesizer = std::function<bool(PageId, Page*)>;
  void set_page_synthesizer(PageSynthesizer fn) {
    synthesizer_ = std::move(fn);
  }

  PgId pg() const { return pg_; }
  size_t page_size() const { return page_size_; }

  // --- Hot log -------------------------------------------------------------
  /// Adds a record (from a writer batch or peer gossip); duplicates are
  /// ignored. Returns true if the record was new. Advances the SCL when the
  /// backlink chain extends.
  bool AddRecord(const LogRecord& record);

  /// Segment Complete LSN: every record of the PG with LSN <= scl() is here.
  Lsn scl() const { return scl_; }
  /// Highest record LSN seen (may be beyond a gap).
  Lsn max_lsn() const { return max_lsn_; }
  /// True when records exist above the SCL (a gap is open).
  bool has_gap() const { return max_lsn_ > scl_; }

  bool HasRecord(Lsn lsn) const { return hot_log_.count(lsn) > 0; }
  size_t hot_log_size() const { return hot_log_.size(); }

  /// Records this replica has with LSN > `from`, up to `max` of them, in
  /// LSN order — the gossip-push payload. Returns views into the hot log
  /// (std::map nodes are pointer-stable); valid until the hot log is next
  /// mutated, so consume synchronously.
  std::vector<const LogRecord*> RecordsAbove(Lsn from, size_t max) const;

  /// The recovery inventory: (lsn, prev, flags) of every hot-log record.
  std::vector<InventoryEntry> Inventory() const;

  // --- Watermarks ----------------------------------------------------------
  void SetVdlHint(Lsn vdl) {
    if (vdl > vdl_hint_) vdl_hint_ = vdl;
  }
  Lsn vdl_hint() const { return vdl_hint_; }
  void SetPgmrpl(Lsn lsn) {
    if (lsn > pgmrpl_) pgmrpl_ = lsn;
  }
  Lsn pgmrpl() const { return pgmrpl_; }
  Epoch epoch() const { return epoch_; }

  /// Adopts `epoch` if it is newer than the segment's current epoch without
  /// truncating anything (write batches and gossip from a promoted writer
  /// fence this segment forward; see Truncate for the annulling path).
  /// Returns true if the epoch advanced. The epoch is part of SerializeTo,
  /// so adoption is durable once the node next persists.
  bool ObserveEpoch(Epoch epoch) {
    if (epoch <= epoch_) return false;
    epoch_ = epoch;
    return true;
  }

  /// Completeness snapshot for idle PGs: as of volume VDL `vdl_snapshot`,
  /// this PG's newest record is `pg_tail`. Lets GetPageAsOf serve read
  /// points up to vdl_snapshot once the chain reaches pg_tail.
  void SetCompletenessSnapshot(Lsn vdl_snapshot, Lsn pg_tail) {
    if (vdl_snapshot > snapshot_vdl_) {
      snapshot_vdl_ = vdl_snapshot;
      snapshot_tail_ = pg_tail;
    }
  }

  // --- Materialization & reads ---------------------------------------------
  /// Applies up to `max_records` coalescable records (LSN <= the
  /// materialization limit) to base pages. Returns how many were applied.
  size_t CoalesceStep(size_t max_records);

  /// LSN up to which base pages may be advanced.
  Lsn MaterializationLimit() const;

  /// All records with LSN <= `floor` are reflected in base pages.
  Lsn applied_lsn() const { return applied_lsn_; }

  /// Reconstructs the page as of `read_point` (base image + log applies).
  /// Fails with:
  ///  - Unavailable if read_point > scl() (this replica can't guarantee
  ///    completeness — the caller picked the wrong segment);
  ///  - Stale if read_point < the GC low-water mark;
  ///  - NotFound if the page has never been written.
  Result<Page> GetPageAsOf(PageId page, Lsn read_point) const;

  /// Number of materialized base pages.
  size_t num_pages() const { return base_pages_.size(); }

  // --- Reconstruction cache -------------------------------------------------
  /// Byte budget for the reconstructed-page cache consulted by GetPageAsOf.
  /// The cache is "simply a cache of the log application" (§4.2.3): each
  /// entry is a page image tagged with the LSN through which it was built,
  /// so a read at the same (or a newer, record-free) point skips the base
  /// copy + replay + CRC entirely, and a newer point replays only the LSN
  /// suffix. A budget below one page size disables caching; shrinking the
  /// budget evicts immediately.
  void set_page_cache_budget(uint64_t bytes);
  uint64_t page_cache_budget() const { return cache_budget_bytes_; }
  /// Current cache footprint (whole-page granularity).
  uint64_t page_cache_bytes() const { return page_cache_.size() * page_size_; }
  const PageCacheStats& page_cache_stats() const { return cache_stats_; }

  // --- GC / truncation / scrub ----------------------------------------------
  /// Drops hot-log records that are both applied to base pages and below the
  /// PGMRPL (Figure 4 step 7). Returns how many records were collected.
  size_t GarbageCollect();

  /// True while the retained hot log still holds the successor record of a
  /// replica whose contiguous prefix ends at `scl` — i.e., log shipping can
  /// still bridge that replica's gap. Once GC collects the successor, the
  /// gap is only healable by a full state copy.
  bool CanBridgeFrom(Lsn scl) const { return chain_.count(scl) > 0; }

  /// Removes every record with LSN > `above`. Stale if `epoch` is older than
  /// the segment's current epoch; otherwise adopts the epoch. Idempotent.
  Status Truncate(Lsn above, Epoch epoch);

  /// Verifies CRCs of all base pages (Figure 4 step 8); returns the number
  /// of corrupt pages found (and records them for repair).
  size_t ScrubPages();
  const std::set<PageId>& corrupt_pages() const { return corrupt_pages_; }
  /// Drops a corrupt base page so it re-materializes from a peer copy.
  void DropPageForRepair(PageId page);
  /// Installs a healthy copy of a base page fetched from a peer. The copy
  /// may be ahead of this replica's applied floor; redo application is
  /// idempotent so subsequent coalescing is safe.
  void RestoreBasePage(PageId page, Page healthy);
  /// Testing hook: flips a bit in a materialized base page.
  void CorruptBasePageForTesting(PageId page);
  /// Latent-fault hook for sim::Disk: flips a bit in the nth (mod count)
  /// materialized base page, as if a sector under it rotted. Returns false
  /// if there is no formatted base page to corrupt.
  bool CorruptNthBasePage(uint64_t nth);

  // --- Backup --------------------------------------------------------------
  /// Records with LSN in (backup_lsn, scl] not yet staged to S3. Views into
  /// the hot log, valid until the next mutation — consume synchronously.
  std::vector<const LogRecord*> UnbackedRecords(size_t max) const;
  void MarkBackedUp(Lsn through) {
    if (through > backup_lsn_) backup_lsn_ = through;
  }
  Lsn backup_lsn() const { return backup_lsn_; }

  // --- Repair (re-replication) ----------------------------------------------
  /// Full-state serialization: hot log, base pages, watermarks. The blob
  /// size models the bytes moved during segment repair (§2.2).
  void SerializeTo(std::string* dst) const;
  Status DeserializeFrom(Slice input);

  /// Approximate byte footprint (hot log + pages), for repair-time modeling.
  uint64_t ApproximateBytes() const;

 private:
  void AdvanceScl();
  const LogRecord* RecordAt(Lsn lsn) const;

  /// A reconstructed page image valid through built_lsn: it reflects every
  /// record of the page with LSN <= built_lsn and nothing above. Mutable
  /// state because GetPageAsOf is logically const.
  struct CacheEntry {
    Page image;
    Lsn built_lsn;
    uint64_t stamp;  // LRU clock value; key into cache_lru_
  };
  bool CacheEnabled() const { return cache_budget_bytes_ >= page_size_; }
  void CacheInsert(PageId page, const Page& image, Lsn built_lsn) const;
  void CacheTouch(CacheEntry* entry) const;
  void CacheErase(PageId page);
  void CacheClear();
  /// Drops entries whose validity predicate fails (e.g. after truncation or
  /// GC moved the window they were built against).
  template <typename Pred>
  void CacheEraseIf(Pred pred) {
    for (auto it = page_cache_.begin(); it != page_cache_.end();) {
      if (pred(it->second)) {
        cache_lru_.erase(it->second.stamp);
        it = page_cache_.erase(it);
      } else {
        ++it;
      }
    }
  }

  PgId pg_;
  size_t page_size_;

  std::map<Lsn, LogRecord> hot_log_;
  std::map<Lsn, Lsn> chain_;  // prev lsn -> lsn
  std::map<PageId, std::set<Lsn>> records_by_page_;

  /// Fetches the base page, creating it (empty or synthesized) on demand.
  Page* BasePage(PageId page);

  std::map<PageId, Page> base_pages_;
  PageSynthesizer synthesizer_;
  Lsn applied_lsn_ = kInvalidLsn;

  Lsn scl_ = kInvalidLsn;
  Lsn max_lsn_ = kInvalidLsn;
  Lsn vdl_hint_ = kInvalidLsn;
  Lsn pgmrpl_ = kInvalidLsn;
  Lsn backup_lsn_ = kInvalidLsn;
  Lsn snapshot_vdl_ = kInvalidLsn;
  Lsn snapshot_tail_ = kInvalidLsn;
  Epoch epoch_ = 0;

  /// Mutable because the read path (GetPageAsOf, logically const) records a
  /// CRC mismatch it discovers so the scrub/repair machinery can heal it.
  mutable std::set<PageId> corrupt_pages_;

  uint64_t cache_budget_bytes_ = 0;  // 0 = cache disabled
  mutable std::map<PageId, CacheEntry> page_cache_;
  mutable std::map<uint64_t, PageId> cache_lru_;  // stamp -> page, oldest first
  mutable uint64_t cache_clock_ = 0;
  mutable PageCacheStats cache_stats_;
};

}  // namespace aurora

#endif  // AURORA_STORAGE_SEGMENT_H_
