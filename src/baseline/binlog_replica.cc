#include "baseline/binlog_replica.h"

#include "common/coding.h"
#include "common/slice.h"
#include "storage/wire.h"

namespace aurora::baseline {

BinlogReplica::BinlogReplica(sim::EventLoop* loop, sim::Network* network,
                             sim::NodeId node_id, SimDuration apply_cpu)
    : loop_(loop),
      network_(network),
      node_id_(node_id),
      apply_cpu_(apply_cpu),
      applier_(loop, sim::InstanceOptions{1, 1ull << 30, "sql-thread"}) {
  network_->Register(node_id_,
                     [this](const sim::Message& m) { HandleMessage(m); });
}

void BinlogReplica::HandleMessage(const sim::Message& msg) {
  if (msg.type != kMsgBinlogShip) return;
  // Wire: varint commit_time | statements ('P'|'D', varint table, lp key,
  // lp value) until exhausted.
  Slice in(msg.payload());
  uint64_t commit_time;
  if (!GetVarint64(&in, &commit_time)) return;
  std::vector<Statement> stmts;
  while (!in.empty()) {
    Statement s;
    s.is_delete = in[0] == 'D';
    in.remove_prefix(1);
    uint64_t table;
    Slice key, value;
    if (!GetVarint64(&in, &table) || !GetLengthPrefixedSlice(&in, &key) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      return;
    }
    s.table = table;
    s.key = key.ToString();
    s.value = value.ToString();
    s.txn_end = false;
    s.commit_time = commit_time;
    stmts.push_back(std::move(s));
  }
  if (stmts.empty()) return;
  stmts.back().txn_end = true;
  for (Statement& s : stmts) queue_.push_back(std::move(s));
  stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth,
                                              queue_.size());
  PumpApply();
}

void BinlogReplica::PumpApply() {
  if (applying_ || queue_.empty()) return;
  applying_ = true;
  Statement s = std::move(queue_.front());
  queue_.pop_front();
  applier_.Execute(apply_cpu_, [this, s = std::move(s)]() {
    if (s.is_delete) {
      rows_.erase({s.table, s.key});
    } else {
      rows_[{s.table, s.key}] = s.value;
    }
    ++stats_.statements_applied;
    if (s.txn_end) {
      ++stats_.txns_applied;
      stats_.lag_us.Record(loop_->now() >= s.commit_time
                               ? loop_->now() - s.commit_time
                               : 0);
    }
    applying_ = false;
    PumpApply();
  });
}

bool BinlogReplica::Lookup(PageId table, const std::string& key,
                           std::string* value) const {
  auto it = rows_.find({table, key});
  if (it == rows_.end()) return false;
  *value = it->second;
  return true;
}

}  // namespace aurora::baseline
