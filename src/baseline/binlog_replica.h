#ifndef AURORA_BASELINE_BINLOG_REPLICA_H_
#define AURORA_BASELINE_BINLOG_REPLICA_H_

#include <deque>
#include <map>
#include <string>

#include "common/histogram.h"
#include "common/units.h"
#include "log/types.h"
#include "sim/event_loop.h"
#include "sim/instance.h"
#include "sim/network.h"

namespace aurora::baseline {

/// A classic MySQL binlog replica: receives statement events after the
/// primary commits and re-executes them with a single SQL applier thread.
/// Because apply is serial while the primary commits in parallel, lag grows
/// without bound once the write rate exceeds one thread's capacity — the
/// mechanism behind Table 4's 300-second lags and Figure 11's multi-minute
/// spikes ("can cause strange bugs", Weiner/Pinterest).
struct BinlogReplicaStats {
  uint64_t txns_applied = 0;
  uint64_t statements_applied = 0;
  uint64_t max_queue_depth = 0;
  Histogram lag_us;
};

class BinlogReplica {
 public:
  /// `apply_cpu` is the cost of re-executing one statement on the single
  /// applier thread.
  BinlogReplica(sim::EventLoop* loop, sim::Network* network,
                sim::NodeId node_id, SimDuration apply_cpu);

  BinlogReplica(const BinlogReplica&) = delete;
  BinlogReplica& operator=(const BinlogReplica&) = delete;

  sim::NodeId node_id() const { return node_id_; }

  /// Lag a commit arriving now would experience (queue backlog estimate).
  SimDuration CurrentBacklog() const {
    return queue_.size() * apply_cpu_;  // statements pending * unit cost
  }

  /// Replica-side row lookup (eventually consistent).
  bool Lookup(PageId table, const std::string& key, std::string* value) const;

  const BinlogReplicaStats& stats() const { return stats_; }
  BinlogReplicaStats* mutable_stats() { return &stats_; }

 private:
  struct Statement {
    bool is_delete;
    PageId table;
    std::string key;
    std::string value;
    bool txn_end;
    SimTime commit_time;
  };

  void HandleMessage(const sim::Message& msg);
  void PumpApply();

  sim::EventLoop* loop_;
  sim::Network* network_;
  sim::NodeId node_id_;
  SimDuration apply_cpu_;
  sim::Instance applier_;  // one vCPU: the single SQL thread

  std::deque<Statement> queue_;
  bool applying_ = false;
  std::map<std::pair<PageId, std::string>, std::string> rows_;
  BinlogReplicaStats stats_;
};

}  // namespace aurora::baseline

#endif  // AURORA_BASELINE_BINLOG_REPLICA_H_
