#include "baseline/ebs.h"

#include "common/coding.h"
#include "storage/wire.h"

namespace aurora::baseline {

namespace {

// EBS wire format: varint op id | 1 byte kind | lp key | lp payload.
enum EbsKind : uint8_t {
  kWriteReq = 1,
  kReadReq = 2,
  kMirrorCopy = 3,
  kMirrorAck = 4,
  kWriteAck = 5,
  kReadResp = 6,
  kReadMiss = 7,
};

std::string Encode(uint64_t op, EbsKind kind, const Slice& key,
                   const Slice& payload) {
  std::string out;
  PutVarint64(&out, op);
  out.push_back(static_cast<char>(kind));
  PutLengthPrefixedSlice(&out, key);
  PutLengthPrefixedSlice(&out, payload);
  return out;
}

bool Decode(Slice in, uint64_t* op, EbsKind* kind, Slice* key,
            Slice* payload) {
  if (!GetVarint64(&in, op) || in.empty()) return false;
  *kind = static_cast<EbsKind>(in[0]);
  in.remove_prefix(1);
  return GetLengthPrefixedSlice(&in, key) &&
         GetLengthPrefixedSlice(&in, payload);
}

}  // namespace

EbsVolume::EbsVolume(sim::EventLoop* loop, sim::Network* network,
                     sim::NodeId server, sim::NodeId mirror,
                     sim::DiskOptions disk_options, Random rng)
    : loop_(loop),
      network_(network),
      server_(server),
      mirror_(mirror),
      server_disk_(loop, disk_options, rng.Fork()),
      mirror_disk_(loop, disk_options, rng.Fork()) {
  network_->Register(server_, [this](const sim::Message& m) {
    HandleServerMessage(m);
  });
  network_->Register(mirror_, [this](const sim::Message& m) {
    HandleMirrorMessage(m);
  });
}

void EbsVolume::Write(sim::NodeId client, const std::string& key,
                      std::string bytes, std::function<void(Status)> done) {
  uint64_t op = next_op_++;
  PendingOp p;
  p.client = client;
  p.write_done = std::move(done);
  pending_[op] = std::move(p);
  network_->Send(client, server_, kMsgEbsWrite,
                 Encode(op, kWriteReq, key, bytes));
}

void EbsVolume::Read(sim::NodeId client, const std::string& key,
                     std::function<void(Result<std::string>)> done) {
  uint64_t op = next_op_++;
  PendingOp p;
  p.client = client;
  p.read_done = std::move(done);
  pending_[op] = std::move(p);
  network_->Send(client, server_, kMsgEbsRead, Encode(op, kReadReq, key, ""));
}

void EbsVolume::HandleServerMessage(const sim::Message& msg) {
  uint64_t op;
  EbsKind kind;
  Slice key, payload;
  if (!Decode(msg.payload(), &op, &kind, &key, &payload)) return;
  switch (kind) {
    case kWriteReq: {
      // Persist locally, then forward to the AZ-local mirror; the client is
      // acknowledged only after the mirror acknowledges (Figure 2 step 1-2).
      std::string k = key.ToString();
      std::string bytes = payload.ToString();
      ++writes_;
      bytes_written_ += bytes.size();
      server_disk_.Write(bytes.size(), [this, op, k, bytes,
                                        from = msg.from](Status s) {
        if (!s.ok()) return;
        objects_[k] = bytes;
        network_->Send(server_, mirror_, kMsgEbsWrite,
                       Encode(op, kMirrorCopy, k, bytes));
        // The client address rides in pending_; from == client.
        (void)from;
      });
      break;
    }
    case kMirrorAck: {
      auto it = pending_.find(op);
      if (it == pending_.end()) return;
      sim::NodeId client = it->second.client;
      network_->Send(server_, client, kMsgEbsWriteAck,
                     Encode(op, kWriteAck, key, ""));
      break;
    }
    case kReadReq: {
      std::string k = key.ToString();
      auto obj = objects_.find(k);
      bool found = obj != objects_.end();
      std::string bytes = found ? obj->second : "";
      server_disk_.Read(found ? bytes.size() : 64,
                        [this, op, k, bytes, found,
                         from = msg.from](Status s) {
                          if (!s.ok()) return;
                          network_->Send(server_, from, kMsgEbsReadResp,
                                         Encode(op,
                                                found ? kReadResp : kReadMiss,
                                                k, bytes));
                        });
      break;
    }
    default:
      break;
  }
}

void EbsVolume::HandleMirrorMessage(const sim::Message& msg) {
  uint64_t op;
  EbsKind kind;
  Slice key, payload;
  if (!Decode(msg.payload(), &op, &kind, &key, &payload)) return;
  if (kind != kMirrorCopy) return;
  std::string k = key.ToString();
  size_t n = payload.size();
  mirror_disk_.Write(n, [this, op, k](Status s) {
    if (!s.ok()) return;
    network_->Send(mirror_, server_, kMsgEbsWrite,
                   Encode(op, kMirrorAck, k, ""));
  });
}

void EbsVolume::HandleClientSide(const sim::Message& msg) {
  uint64_t op;
  EbsKind kind;
  Slice key, payload;
  if (!Decode(msg.payload(), &op, &kind, &key, &payload)) return;
  auto it = pending_.find(op);
  if (it == pending_.end()) return;
  PendingOp p = std::move(it->second);
  pending_.erase(it);
  switch (kind) {
    case kWriteAck:
      if (p.write_done) p.write_done(Status::OK());
      break;
    case kReadResp:
      if (p.read_done) p.read_done(payload.ToString());
      break;
    case kReadMiss:
      if (p.read_done) p.read_done(Status::NotFound("no such object"));
      break;
    default:
      break;
  }
}

Result<std::string> EbsVolume::GetSync(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object");
  return it->second;
}

std::vector<std::string> EbsVolume::ListKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

}  // namespace aurora::baseline
