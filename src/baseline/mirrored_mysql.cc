#include "baseline/mirrored_mysql.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "log/applicator.h"
#include "storage/wire.h"

namespace aurora::baseline {

namespace {

constexpr char kNextPageKey[] = "next_page";
// Free-list entries on meta page 0: "free:" + fixed64 page id (same layout
// as the Aurora engine's allocator).
constexpr char kFreePagePrefix[] = "free:";
constexpr size_t kFreePagePrefixLen = 5;

std::string WalKey(uint64_t seq) {
  char buf[32];
  snprintf(buf, sizeof(buf), "wal/%018llu",
           static_cast<unsigned long long>(seq));
  return buf;
}

std::string PageKey(PageId id) {
  char buf[32];
  snprintf(buf, sizeof(buf), "page/%018llu",
           static_cast<unsigned long long>(id));
  return buf;
}

// Standby ship wire format: varint chain-op id | lp key | lp bytes.
std::string EncodeShip(uint64_t id, const Slice& key, const Slice& bytes) {
  std::string out;
  PutVarint64(&out, id);
  PutLengthPrefixedSlice(&out, key);
  PutLengthPrefixedSlice(&out, bytes);
  return out;
}

bool DecodeShip(Slice in, uint64_t* id, Slice* key, Slice* bytes) {
  return GetVarint64(&in, id) && GetLengthPrefixedSlice(&in, key) &&
         GetLengthPrefixedSlice(&in, bytes);
}

}  // namespace

MirroredMySql::MirroredMySql(sim::EventLoop* loop, sim::Network* network,
                             sim::NodeId node_id, sim::Instance* instance,
                             SimS3* s3, const NodeSet& nodes,
                             sim::DiskOptions ebs_disk,
                             MirroredMysqlOptions options, Random rng)
    : loop_(loop),
      network_(network),
      node_id_(node_id),
      instance_(instance),
      s3_(s3),
      nodes_(nodes),
      options_(options),
      rng_(rng),
      pool_(options.engine.buffer_pool_pages, options.engine.page_size,
            &infinite_vdl_),
      locks_(loop, options.engine.lock_timeout) {
  primary_ebs_ = std::make_unique<EbsVolume>(
      loop, network, nodes.primary_ebs, nodes.primary_ebs_mirror, ebs_disk,
      rng_.Fork());
  standby_ebs_ = std::make_unique<EbsVolume>(
      loop, network, nodes.standby_ebs, nodes.standby_ebs_mirror, ebs_disk,
      rng_.Fork());
  pool_.set_evict_filter([this](PageId id, const Page&) {
    return dirty_since_.count(id) == 0;  // dirty pages may not be dropped
  });
  network_->Register(node_id_,
                     [this](const sim::Message& m) { HandleMessage(m); });
  network_->Register(nodes_.standby, [this](const sim::Message& m) {
    // The standby instance relays writes onto its own mirrored EBS volume
    // (Figure 2 steps 3-5) and consumes that volume's acknowledgements.
    if (m.type == kMsgEbsWriteAck || m.type == kMsgEbsReadResp) {
      standby_ebs_->HandleClientSide(m);
      return;
    }
    if (m.type != kMsgStandbyShip) return;
    uint64_t id;
    Slice key, bytes;
    if (!DecodeShip(m.payload(), &id, &key, &bytes)) return;
    standby_ebs_->Write(nodes_.standby, key.ToString(), bytes.ToString(),
                        [this, id](Status) {
                          std::string ack;
                          PutVarint64(&ack, id);
                          network_->Send(nodes_.standby, node_id_,
                                         kMsgStandbyAck, std::move(ack));
                        });
  });
}

MirroredMySql::~MirroredMySql() = default;

void MirroredMySql::HandleMessage(const sim::Message& msg) {
  switch (msg.type) {
    case kMsgEbsWriteAck:
    case kMsgEbsReadResp:
      // Route to whichever volume issued the op (op ids are per-volume;
      // dispatch by sender).
      if (msg.from == nodes_.primary_ebs) {
        primary_ebs_->HandleClientSide(msg);
      } else if (msg.from == nodes_.standby_ebs) {
        standby_ebs_->HandleClientSide(msg);
      }
      break;
    case kMsgStandbyAck: {
      Slice in(msg.payload());
      uint64_t id;
      if (!GetVarint64(&in, &id)) return;
      auto it = chain_ops_.find(id);
      if (it == chain_ops_.end()) return;
      auto done = std::move(it->second.done);
      chain_ops_.erase(it);
      if (done) done(Status::OK());
      break;
    }
    default:
      break;
  }
}

void MirroredMySql::ChainWrite(const std::string& key, std::string bytes,
                               std::function<void(Status)> done) {
  uint64_t id = next_chain_++;
  ChainOp op;
  op.key = key;
  op.bytes = std::move(bytes);
  op.done = std::move(done);
  const ChainOp& stored = (chain_ops_[id] = std::move(op));
  // Steps 1-2: primary EBS + mirror (synchronous inside EbsVolume); then
  // step 3: ship to the standby, whose ack (after steps 4-5) completes the
  // chain. The payload lives in chain_ops_ until the chain finishes.
  primary_ebs_->Write(node_id_, stored.key, stored.bytes,
                      [this, id](Status s) {
                        auto it = chain_ops_.find(id);
                        if (it == chain_ops_.end()) return;
                        if (!s.ok()) {
                          auto done = std::move(it->second.done);
                          chain_ops_.erase(it);
                          if (done) done(s);
                          return;
                        }
                        network_->Send(node_id_, nodes_.standby,
                                       kMsgStandbyShip,
                                       EncodeShip(id, it->second.key,
                                                  it->second.bytes));
                      });
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

Status MirroredMySql::CommitMtr(MiniTransaction* mtr) {
  auto& records = mtr->records();
  const auto& pages = mtr->pages();
  if (records.empty()) return Status::OK();
  for (size_t i = 0; i < records.size(); ++i) {
    LogRecord& rec = records[i];
    if (i + 1 == records.size()) rec.flags |= kFlagCpl;
    rec.lsn = next_lsn_;
    rec.prev_vol_lsn = last_vol_lsn_;
    last_vol_lsn_ = rec.lsn;
    next_lsn_ += rec.EncodedSize();
    pages[i]->set_page_lsn(rec.lsn);
    dirty_since_.try_emplace(rec.page_id, rec.lsn);
    wal_buffer_.push_back(rec);
  }
  mtr->set_commit_lsn(records.back().lsn);
  return Status::OK();
}

void MirroredMySql::StartWalFlush() {
  if (wal_flush_in_flight_) return;
  if (wal_buffer_.empty()) {
    // Everything already durable; complete any waiters.
    FinishWalFlush(flushed_lsn_);
    return;
  }
  wal_flush_in_flight_ = true;
  std::vector<LogRecord> flushing = std::move(wal_buffer_);
  wal_buffer_.clear();
  Lsn through = flushing.back().lsn;
  std::string blob;
  EncodeRecordBatch(flushing, &blob);
  ++stats_.wal_flushes;
  stats_.wal_bytes += blob.size();
  uint64_t seq = next_wal_seq_++;
  wal_last_lsn_[seq] = through;
  ChainWrite(WalKey(seq), std::move(blob), [this, through](Status s) {
    wal_flush_in_flight_ = false;
    if (s.ok()) FinishWalFlush(through);
  });
}

void MirroredMySql::FinishWalFlush(Lsn flushed_through) {
  if (flushed_through > flushed_lsn_) flushed_lsn_ = flushed_through;
  // Gather the binlog of every commit this flush hardened; it must also be
  // durable (second synchronous chain) before the commits are acked.
  std::vector<CommitWaiter> ready;
  std::string binlog_blob;
  auto it = commit_waiters_.begin();
  while (it != commit_waiters_.end()) {
    if (ready.size() >= options_.group_commit_max) break;
    if (it->lsn > flushed_lsn_) {
      ++it;
      continue;
    }
    Txn* t = FindTxn(it->txn);
    if (t != nullptr && options_.binlog && !t->binlog.empty()) {
      binlog_blob += t->binlog;
    }
    ready.push_back(std::move(*it));
    it = commit_waiters_.erase(it);
  }
  if (ready.empty()) {
    if (!wal_buffer_.empty() || !commit_waiters_.empty()) StartWalFlush();
    return;
  }
  auto complete = [this, ready = std::move(ready)](Status s) mutable {
    for (CommitWaiter& w : ready) {
      Txn* t = FindTxn(w.txn);
      if (t != nullptr) {
        // Ship the binlog to attached replicas (asynchronous, post-commit —
        // classic MySQL replication) and archive to S3 for PITR.
        if (!t->binlog.empty()) {
          std::string event;
          PutVarint64(&event, w.requested_at);
          event += t->binlog;
          for (sim::NodeId node : binlog_replicas_) {
            network_->Send(node_id_, node, kMsgBinlogShip, event);
          }
        }
        locks_.ReleaseAll(w.txn);
        txns_.erase(w.txn);
      }
      ++stats_.txns_committed;
      stats_.commit_latency_us.Record(loop_->now() - w.requested_at);
      if (w.done) w.done(s);
    }
    if (!wal_buffer_.empty() || !commit_waiters_.empty()) StartWalFlush();
  };
  if (options_.binlog && !binlog_blob.empty()) {
    ++stats_.binlog_writes;
    char key[40];
    snprintf(key, sizeof(key), "binlog/%018llu",
             static_cast<unsigned long long>(next_binlog_seq_++));
    std::string for_s3 = binlog_blob;
    ChainWrite(key, std::move(binlog_blob),
               [this, key = std::string(key), for_s3 = std::move(for_s3),
                complete = std::move(complete)](Status s) mutable {
                 if (s3_ != nullptr) {
                   // Completion on this engine's own loop (S3 is shared).
                   s3_->Put("binlog-archive/" + key, std::move(for_s3),
                            [](Status) {}, loop_);
                 }
                 complete(s);
               });
  } else {
    complete(Status::OK());
  }
}

// ---------------------------------------------------------------------------
// Checkpointing (dirty-page write-back with double-write)
// ---------------------------------------------------------------------------

void MirroredMySql::CheckpointTick() {
  const uint64_t gen = generation_;
  checkpoint_timer_ = loop_->Schedule(options_.checkpoint_interval,
                                      [this, gen] {
    if (gen == generation_ && open_) CheckpointTick();
  });
  if (checkpointing_ || dirty_since_.empty()) return;
  checkpointing_ = true;
  ++stats_.checkpoints;
  // Adaptive flushing (InnoDB-style): under write pressure the flusher must
  // keep pace with the dirtying rate or the pool fills with unflushable
  // pages. Scale the batch with the backlog.
  size_t adaptive_batch =
      std::max(options_.checkpoint_batch_pages, dirty_since_.size() / 2);

  // Flush-eligible pages: resident, with all changes WAL-hardened.
  struct Capture {
    PageId id;
    std::string bytes;
    Lsn captured_lsn;
  };
  auto batch = std::make_shared<std::vector<Capture>>();
  for (const auto& [id, first_dirty] : dirty_since_) {
    if (batch->size() >= adaptive_batch) break;
    Page* page = pool_.Lookup(id);
    if (page == nullptr) continue;
    if (page->page_lsn() > flushed_lsn_) continue;  // WAL-before-data
    page->UpdateCrc();
    batch->push_back({id, page->raw(), page->page_lsn()});
  }
  if (batch->empty()) {
    checkpointing_ = false;
    StartWalFlush();  // push the WAL so pages become eligible next tick
    return;
  }

  auto write_pages = [this, batch](Status dwb_status) {
    if (!dwb_status.ok()) {
      checkpointing_ = false;
      return;
    }
    auto remaining = std::make_shared<size_t>(batch->size());
    for (const Capture& cap : *batch) {
      PageId id = cap.id;
      Lsn captured = cap.captured_lsn;
      ++stats_.page_writes;
      ChainWrite(PageKey(id), cap.bytes,
                 [this, id, captured, batch, remaining](Status s) {
        if (s.ok()) {
          // Un-dirty only if the page is exactly the image we flushed; a
          // concurrent modification keeps it dirty so its delta is not
          // skipped by the next checkpoint LSN.
          Page* page = pool_.Lookup(id);
          if (page != nullptr && page->page_lsn() == captured) {
            dirty_since_.erase(id);
          }
        }
        if (--*remaining == 0) {
          // Advance and persist the checkpoint LSN.
          Lsn cp = flushed_lsn_;
          for (const auto& [pid, since] : dirty_since_) {
            cp = std::min(cp, since > 0 ? since - 1 : 0);
          }
          checkpoint_lsn_ = cp;
          // First WAL object a recovery scan must read: the earliest one
          // whose records extend past the checkpoint.
          uint64_t scan_start = next_wal_seq_;
          for (const auto& [seq, last] : wal_last_lsn_) {
            if (last > cp) {
              scan_start = seq;
              break;
            }
          }
          wal_last_lsn_.erase(wal_last_lsn_.begin(),
                              wal_last_lsn_.lower_bound(scan_start));
          std::string meta;
          PutVarint64(&meta, checkpoint_lsn_);
          PutVarint64(&meta, scan_start);
          ChainWrite("meta/checkpoint", std::move(meta), [this](Status) {
            checkpointing_ = false;
          });
        }
      });
    }
  };

  if (options_.double_write) {
    // One aggregated double-write-buffer write preceding the page writes
    // (torn-page protection — more bytes down the same synchronous chains).
    std::string dwb;
    for (const Capture& cap : *batch) dwb += cap.bytes;
    ++stats_.dwb_writes;
    ChainWrite("dwb", std::move(dwb), write_pages);
  } else {
    write_pages(Status::OK());
  }
}

void MirroredMySql::FlushOnePage(PageId id, std::function<void(Status)> done) {
  Page* page = pool_.Lookup(id);
  if (page == nullptr || dirty_since_.count(id) == 0) {
    done(Status::OK());
    return;
  }
  if (page->page_lsn() > flushed_lsn_) {
    // WAL-before-data: harden the log first, then retry.
    StartWalFlush();
    const uint64_t gen = generation_;
    // NOLINTNEXTLINE(aurora-C2): one-shot 1ms generation-guarded retry; many page flushes defer concurrently, so no single member could hold the id, and the guard makes a post-crash firing a no-op
    loop_->Schedule(Millis(1), [this, gen, id, done = std::move(done)] {
      if (gen != generation_) return;
      FlushOnePage(id, done);
    });
    return;
  }
  page->UpdateCrc();
  std::string bytes = page->raw();
  Lsn captured = page->page_lsn();
  auto after_dwb = [this, id, bytes, captured,
                    done = std::move(done)](Status s) {
    if (!s.ok()) {
      done(s);
      return;
    }
    ++stats_.page_writes;
    ChainWrite(PageKey(id), bytes, [this, id, captured, done](Status ps) {
      if (ps.ok()) {
        Page* page = pool_.Lookup(id);
        if (page != nullptr && page->page_lsn() == captured) {
          dirty_since_.erase(id);
        }
      }
      done(ps);
    });
  };
  if (options_.double_write) {
    ++stats_.dwb_writes;
    ChainWrite("dwb", bytes, std::move(after_dwb));
  } else {
    after_dwb(Status::OK());
  }
}

// ---------------------------------------------------------------------------
// PageProvider
// ---------------------------------------------------------------------------

Result<Page*> MirroredMySql::GetPage(PageId id) {
  Page* page = pool_.Lookup(id);
  if (page != nullptr) return page;
  last_miss_ = id;
  if (fetch_in_flight_.insert(id).second) {
    ++stats_.page_reads;
    auto finish_fetch = [this, id]() {
      primary_ebs_->Read(
          node_id_, PageKey(id), [this, id](Result<std::string> r) {
            Page page(options_.engine.page_size);
            if (r.ok()) {
              (void)page.LoadRaw(*r);
            } else if (synthesizer_) {
              // Pre-loaded (synthetic) table page.
              synthesizer_(id, &page);
            }
            // Otherwise the page exists only as WAL (recovery replay);
            // an unformatted frame is installed for redo to format.
            fetch_in_flight_.erase(id);
            pool_.Install(id, std::move(page));
            pool_.EvictExcess();
            auto wit = page_waiters_.find(id);
            if (wit == page_waiters_.end()) return;
            auto waiters = std::move(wit->second);
            page_waiters_.erase(wit);
            for (auto& w : waiters) w();
          });
    };
    // The §1 cache-miss penalty: when the pool is saturated with dirty
    // pages, the miss must first flush a victim before it can be served.
    if (pool_.size() >= pool_.capacity() &&
        dirty_since_.size() >= pool_.capacity() / 2 &&
        !dirty_since_.empty()) {
      ++stats_.dirty_evict_stalls;
      PageId victim = dirty_since_.begin()->first;
      FlushOnePage(victim, [finish_fetch](Status) { finish_fetch(); });
    } else {
      finish_fetch();
    }
  }
  return Status::Busy("page miss");
}

Result<Page*> MirroredMySql::AllocatePage(PageType type, uint8_t level,
                                          MiniTransaction* mtr) {
  Result<Page*> meta = GetPage(0);
  if (!meta.ok()) return meta.status();
  // Reuse a freed page before growing the page space.
  int slot = (*meta)->LowerBound(kFreePagePrefix);
  if (slot < (*meta)->slot_count()) {
    Slice k = (*meta)->KeyAt(slot);
    if (k.size() == kFreePagePrefixLen + 8 && k.starts_with(kFreePagePrefix)) {
      const PageId id = DecodeFixed64(k.data() + kFreePagePrefixLen);
      LogRecord del;
      del.page_id = 0;
      del.op = RedoOp::kDelete;
      del.payload = LogRecord::MakeKeyPayload(k);
      Status s = mtr->Apply(*meta, std::move(del));
      if (!s.ok()) return s;
      Page* page = pool_.InstallNew(id);
      LogRecord fmt;
      fmt.page_id = id;
      fmt.op = RedoOp::kFormatPage;
      fmt.payload =
          LogRecord::MakeFormatPayload(static_cast<uint8_t>(type), level);
      s = mtr->Apply(page, std::move(fmt));
      if (!s.ok()) return s;
      return page;
    }
  }
  Slice v;
  if (!(*meta)->GetRecord(kNextPageKey, &v) || v.size() != 8) {
    return Status::Corruption("allocator record missing");
  }
  PageId id = DecodeFixed64(v.data());
  std::string next;
  PutFixed64(&next, id + 1);
  LogRecord upd;
  upd.page_id = 0;
  upd.op = RedoOp::kUpdate;
  upd.payload = LogRecord::MakeKeyValuePayload(kNextPageKey, next);
  Status s = mtr->Apply(*meta, std::move(upd));
  if (!s.ok()) return s;
  Page* page = pool_.InstallNew(id);
  LogRecord fmt;
  fmt.page_id = id;
  fmt.op = RedoOp::kFormatPage;
  fmt.payload = LogRecord::MakeFormatPayload(static_cast<uint8_t>(type), level);
  s = mtr->Apply(page, std::move(fmt));
  if (!s.ok()) return s;
  return page;
}

Status MirroredMySql::FreePage(Page* page, MiniTransaction* mtr) {
  Result<Page*> meta = GetPage(0);
  if (!meta.ok()) return meta.status();
  std::string key = kFreePagePrefix;
  PutFixed64(&key, page->page_id());
  // A meta page with no room only costs the reuse of this one id.
  if ((*meta)->HasRoomFor(key.size(), 0)) {
    LogRecord rec;
    rec.page_id = 0;
    rec.op = RedoOp::kInsert;
    rec.payload = LogRecord::MakeKeyValuePayload(key, Slice());
    Status s = mtr->Apply(*meta, std::move(rec));
    if (!s.ok()) return s;
  }
  LogRecord fmt;
  fmt.page_id = page->page_id();
  fmt.op = RedoOp::kFormatPage;
  fmt.payload =
      LogRecord::MakeFormatPayload(static_cast<uint8_t>(PageType::kFree), 0);
  return mtr->Apply(page, std::move(fmt));
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void MirroredMySql::Bootstrap(std::function<void(Status)> done) {
  MiniTransaction mtr(kInvalidTxn);
  Page* meta = pool_.InstallNew(0);
  LogRecord fmt;
  fmt.page_id = 0;
  fmt.op = RedoOp::kFormatPage;
  fmt.payload =
      LogRecord::MakeFormatPayload(static_cast<uint8_t>(PageType::kMeta), 0);
  AURORA_CHECK(mtr.Apply(meta, std::move(fmt)).ok(), "meta format failed");
  std::string next;
  PutFixed64(&next, 1);
  LogRecord ins;
  ins.page_id = 0;
  ins.op = RedoOp::kInsert;
  ins.payload = LogRecord::MakeKeyValuePayload(kNextPageKey, next);
  AURORA_CHECK(mtr.Apply(meta, std::move(ins)).ok(), "meta init failed");
  pool_.Pin(0);
  Status s = CommitMtr(&mtr);
  AURORA_CHECK(s.ok(), "bootstrap commit failed");
  commit_waiters_.push_back(
      {kInvalidTxn, mtr.commit_lsn(),
       [this, done](Status fs) {
         open_ = true;
         CheckpointTick();
         done(fs);
       },
       loop_->now()});
  StartWalFlush();
}

void MirroredMySql::Crash() {
  ++generation_;
  open_ = false;
  loop_->Cancel(checkpoint_timer_);
  pool_.Clear();
  locks_.Reset();
  txns_.clear();
  wal_buffer_.clear();
  wal_flush_in_flight_ = false;
  commit_waiters_.clear();
  chain_ops_.clear();
  dirty_since_.clear();
  page_waiters_.clear();
  fetch_in_flight_.clear();
}

void MirroredMySql::Recover(std::function<void(Status)> done) {
  Crash();
  ++generation_;
  // ARIES redo pass: start from the most recent checkpoint and replay the
  // log (§4.3 describes why this is slow: it is synchronous, offline, and
  // proportional to the log written since the checkpoint).
  primary_ebs_->Read(
      node_id_, "meta/checkpoint",
      [this, done = std::move(done)](Result<std::string> meta) {
        Lsn checkpoint = kInvalidLsn;
        uint64_t wal_floor = 1;
        if (meta.ok()) {
          Slice in(*meta);
          GetVarint64(&in, &checkpoint);
          GetVarint64(&in, &wal_floor);
        }
        checkpoint_lsn_ = checkpoint;
        // Scan the log forward from the checkpoint: each WAL object is a
        // real (latency-bearing) EBS read — log reads are part of the
        // recovery cost a traditional engine pays.
        std::vector<std::string> all_keys = primary_ebs_->ListKeys("wal/");
        // Skip WAL objects wholly covered by the checkpoint.
        std::string first_key = WalKey(wal_floor);
        auto keys = std::make_shared<std::vector<std::string>>();
        for (std::string& k : all_keys) {
          if (k >= first_key) keys->push_back(std::move(k));
        }
        auto records = std::make_shared<std::vector<LogRecord>>();
        // Weak self-reference: each in-flight EBS read holds the strong one
        // (same idiom as FinishRollback), so the chain frees itself when the
        // scan completes instead of cycling forever.
        auto read_next = std::make_shared<std::function<void(size_t)>>();
        std::weak_ptr<std::function<void(size_t)>> weak_next = read_next;
        *read_next = [this, keys, records, checkpoint, wal_floor, weak_next,
                      done](size_t i) {
          if (i < keys->size()) {
            primary_ebs_->Read(
                node_id_, (*keys)[i],
                [this, keys, records, checkpoint, wal_floor,
                 next = weak_next.lock(), done,
                 i](Result<std::string> blob) {
                  if (blob.ok()) {
                    std::vector<LogRecord> batch;
                    if (DecodeRecordBatch(*blob, &batch).ok()) {
                      for (LogRecord& r : batch) {
                        if (r.lsn > checkpoint) {
                          records->push_back(std::move(r));
                        }
                      }
                    }
                  }
                  if (next) (*next)(i + 1);
                });
            return;
          }
          std::sort(records->begin(), records->end(),
                    [](const LogRecord& a, const LogRecord& b) {
                      return a.lsn < b.lsn;
                    });
          if (!records->empty()) {
            next_lsn_ = records->back().lsn + records->back().EncodedSize();
            flushed_lsn_ = records->back().lsn;
            last_vol_lsn_ = records->back().lsn;
          } else {
            next_lsn_ = std::max<Lsn>(checkpoint + 1, 1);
            flushed_lsn_ = checkpoint;
            last_vol_lsn_ = checkpoint;
          }
          next_wal_seq_ =
              std::max<uint64_t>(next_wal_seq_, wal_floor + 1000000);
          ReplayWal(records, 0, done);
        };
        (*read_next)(0);
      });
}

void MirroredMySql::ReplayWal(std::shared_ptr<std::vector<LogRecord>> records,
                              size_t idx, std::function<void(Status)> done) {
  // Sequential, synchronous redo: fetch the page (a real EBS read on every
  // first touch), apply — charging CPU per record — and continue. This is
  // the foreground, offline recovery Aurora eliminates: its cost is
  // proportional to the log written since the last checkpoint.
  constexpr size_t kChunk = 16;
  size_t end = std::min(records->size(), idx + kChunk);
  while (idx < end) {
    const LogRecord& rec = (*records)[idx];
    Result<Page*> page = GetPage(rec.page_id);
    if (!page.ok()) {
      // Busy: wait for the fetch, then resume from this index.
      page_waiters_[rec.page_id].push_back(
          [this, records, idx, done]() { ReplayWal(records, idx, done); });
      return;
    }
    Status s = LogApplicator::Apply(rec, *page);
    if (!s.ok()) {
      done(s);
      return;
    }
    dirty_since_.try_emplace(rec.page_id, rec.lsn);
    ++idx;
  }
  if (idx < records->size()) {
    instance_->Execute(
        options_.engine.cpu_per_page_touch * kChunk,
        [this, records, idx, done]() { ReplayWal(records, idx, done); });
    return;
  }
  pool_.Pin(0);
  open_ = true;
  CheckpointTick();
  done(Status::OK());
}

// ---------------------------------------------------------------------------
// Schema & transactions
// ---------------------------------------------------------------------------

void MirroredMySql::RunWithRetries(std::function<Status()> attempt,
                                   std::function<void(Status)> done) {
  last_miss_ = kInvalidPage;
  Status s = attempt();
  if (s.IsBusy() && last_miss_ != kInvalidPage) {
    PageId missed = last_miss_;
    page_waiters_[missed].push_back(
        [this, attempt = std::move(attempt), done = std::move(done)]() {
          RunWithRetries(attempt, done);
        });
    return;
  }
  pool_.EvictExcess();
  // Free-page pressure: when the pool is over capacity and clogged with
  // dirty pages, InnoDB's LRU flusher must write one back before anything
  // can be evicted — the §1 "evicting and flushing a dirty cache page"
  // penalty.
  if (open_ && pool_.size() > pool_.capacity() && !dirty_since_.empty() &&
      !lru_flush_in_flight_) {
    ++stats_.dirty_evict_stalls;
    lru_flush_in_flight_ = true;
    FlushOnePage(dirty_since_.begin()->first, [this](Status) {
      lru_flush_in_flight_ = false;
      pool_.EvictExcess();
    });
  }
  done(s);
}

void MirroredMySql::CreateTable(const std::string& name,
                                std::function<void(Status)> done) {
  std::string cat_key = "tbl:" + name;
  auto commit_lsn = std::make_shared<Lsn>(kInvalidLsn);
  auto attempt = [this, cat_key, commit_lsn]() -> Status {
    Result<Page*> meta = GetPage(0);
    if (!meta.ok()) return meta.status();
    Slice v;
    if ((*meta)->GetRecord(cat_key, &v)) {
      return Status::InvalidArgument("table exists");
    }
    MiniTransaction mtr(kInvalidTxn);
    Result<PageId> anchor = BTree::Create(this, &mtr);
    if (!anchor.ok()) {
      mtr.Abort();
      return anchor.status();
    }
    std::string value;
    PutFixed64(&value, *anchor);
    LogRecord rec;
    rec.page_id = 0;
    rec.op = RedoOp::kInsert;
    rec.payload = LogRecord::MakeKeyValuePayload(cat_key, value);
    Status s = mtr.Apply(*meta, std::move(rec));
    if (!s.ok()) {
      mtr.Abort();
      return s;
    }
    s = CommitMtr(&mtr);
    if (!s.ok()) return s;
    *commit_lsn = mtr.commit_lsn();
    return Status::OK();
  };
  RunWithRetries(attempt, [this, done, commit_lsn](Status s) {
    if (!s.ok()) {
      done(s);
      return;
    }
    commit_waiters_.push_back({kInvalidTxn, *commit_lsn, done, loop_->now()});
    StartWalFlush();
  });
}

void MirroredMySql::AttachPreloadedTable(
    const std::string& name, std::function<uint64_t(PageId)> plan,
    std::function<void(Result<PageId>)> done) {
  Result<Page*> meta = GetPage(0);
  if (!meta.ok()) {
    done(meta.status());
    return;
  }
  std::string cat_key = "tbl:" + name;
  Slice v;
  if ((*meta)->GetRecord(cat_key, &v)) {
    done(Status::InvalidArgument("table exists"));
    return;
  }
  if (!(*meta)->GetRecord(kNextPageKey, &v) || v.size() != 8) {
    done(Status::Corruption("allocator record missing"));
    return;
  }
  PageId first = DecodeFixed64(v.data());
  uint64_t count = plan(first);

  MiniTransaction mtr(kInvalidTxn);
  std::string next;
  PutFixed64(&next, first + count);
  LogRecord upd;
  upd.page_id = 0;
  upd.op = RedoOp::kUpdate;
  upd.payload = LogRecord::MakeKeyValuePayload(kNextPageKey, next);
  Status s = mtr.Apply(*meta, std::move(upd));
  AURORA_CHECK(s.ok(), "attach alloc failed");
  std::string value;
  PutFixed64(&value, first);
  LogRecord ins;
  ins.page_id = 0;
  ins.op = RedoOp::kInsert;
  ins.payload = LogRecord::MakeKeyValuePayload(cat_key, value);
  s = mtr.Apply(*meta, std::move(ins));
  AURORA_CHECK(s.ok(), "attach catalog failed");
  s = CommitMtr(&mtr);
  AURORA_CHECK(s.ok(), "attach commit failed");
  commit_waiters_.push_back({kInvalidTxn, mtr.commit_lsn(),
                             [done, first](Status fs) {
                               if (fs.ok()) {
                                 done(first);
                               } else {
                                 done(fs);
                               }
                             },
                             loop_->now()});
  StartWalFlush();
}

Result<PageId> MirroredMySql::TableAnchor(const std::string& name) {
  Result<Page*> meta = GetPage(0);
  if (!meta.ok()) return meta.status();
  Slice v;
  if (!(*meta)->GetRecord("tbl:" + name, &v) || v.size() != 8) {
    return Status::NotFound("no such table");
  }
  return static_cast<PageId>(DecodeFixed64(v.data()));
}

TxnId MirroredMySql::Begin() {
  TxnId id = next_txn_++;
  auto txn = std::make_unique<Txn>();
  txn->id = id;
  txns_[id] = std::move(txn);
  return id;
}

MirroredMySql::Txn* MirroredMySql::FindTxn(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : it->second.get();
}

SimDuration MirroredMySql::StatementCpuCost() const {
  double extra = options_.cpu_contention_per_connection_us *
                 static_cast<double>(options_.active_connections);
  return options_.engine.cpu_per_statement +
         static_cast<SimDuration>(extra);
}

Status MirroredMySql::WriteRowAttempt(Txn* txn, PageId table,
                                      const std::string& key,
                                      const std::string* value) {
  BTree tree(this, table);
  std::string old;
  Status s = tree.Get(key, &old);
  bool had_old;
  if (s.ok()) {
    had_old = true;
  } else if (s.IsNotFound()) {
    had_old = false;
  } else {
    return s;
  }
  if (value == nullptr && !had_old) return Status::NotFound("no such row");

  MiniTransaction mtr(txn->id);
  if (value != nullptr) {
    s = had_old ? tree.Update(key, *value, &mtr)
                : tree.Insert(key, *value, &mtr);
  } else {
    s = tree.Delete(key, &mtr);
  }
  if (!s.ok()) {
    mtr.Abort();
    return s;
  }
  s = CommitMtr(&mtr);
  AURORA_CHECK(s.ok(), "CommitMtr failed");
  txn->commit_lsn = mtr.commit_lsn();
  txn->undo.push_back({table, key, had_old, std::move(old)});
  // Binlog (statement) event.
  if (options_.binlog) {
    txn->binlog.push_back(value != nullptr ? 'P' : 'D');
    PutVarint64(&txn->binlog, table);
    PutLengthPrefixedSlice(&txn->binlog, key);
    PutLengthPrefixedSlice(&txn->binlog, value != nullptr ? *value : "");
  }
  return Status::OK();
}

void MirroredMySql::Put(TxnId txn, PageId table, const std::string& key,
                        const std::string& value,
                        std::function<void(Status)> done) {
  if (!open_) {
    done(Status::Unavailable("database not open"));
    return;
  }
  Txn* t = FindTxn(txn);
  if (t == nullptr || !t->active) {
    done(Status::Aborted("transaction not active"));
    return;
  }
  ++stats_.writes;
  SimTime started = loop_->now();
  instance_->Execute(StatementCpuCost(), [this, txn, table, key, value, done,
                                          started]() {
    auto with_lock = [this, txn, table, key, value, done,
                      started](Status ls) {
      if (!ls.ok()) {
        Txn* t = FindTxn(txn);
        if (t != nullptr) {
          FinishRollback(t, [done, ls](Status) { done(ls); });
        } else {
          done(ls);
        }
        return;
      }
      auto attempt = [this, txn, table, key, value]() -> Status {
        Txn* t = FindTxn(txn);
        if (t == nullptr || !t->active) return Status::Aborted("gone");
        return WriteRowAttempt(t, table, key, &value);
      };
      RunWithRetries(attempt, [this, done, started](Status s) {
        stats_.write_latency_us.Record(loop_->now() - started);
        done(s);
      });
    };
    Status s = locks_.Lock(txn, table, key, LockMode::kExclusive, with_lock);
    if (!s.IsBusy()) with_lock(s);
  });
}

void MirroredMySql::Get(TxnId txn, PageId table, const std::string& key,
                        std::function<void(Result<std::string>)> done) {
  if (!open_) {
    done(Status::Unavailable("database not open"));
    return;
  }
  ++stats_.reads;
  SimTime started = loop_->now();
  instance_->Execute(StatementCpuCost(), [this, txn, table, key, done,
                                          started]() {
    auto with_lock = [this, table, key, done, started](Status ls) {
      if (!ls.ok()) {
        done(ls);
        return;
      }
      auto result = std::make_shared<std::string>();
      auto attempt = [this, table, key, result]() -> Status {
        BTree tree(this, table);
        return tree.Get(key, result.get());
      };
      RunWithRetries(attempt, [this, done, result, started](Status s) {
        stats_.read_latency_us.Record(loop_->now() - started);
        if (s.ok()) {
          done(std::move(*result));
        } else {
          done(s);
        }
      });
    };
    Status s = locks_.Lock(txn, table, key, LockMode::kShared, with_lock);
    if (!s.IsBusy()) with_lock(s);
  });
}

void MirroredMySql::Delete(TxnId txn, PageId table, const std::string& key,
                           std::function<void(Status)> done) {
  if (!open_) {
    done(Status::Unavailable("database not open"));
    return;
  }
  Txn* t = FindTxn(txn);
  if (t == nullptr || !t->active) {
    done(Status::Aborted("transaction not active"));
    return;
  }
  instance_->Execute(StatementCpuCost(), [this, txn, table, key, done]() {
    auto with_lock = [this, txn, table, key, done](Status ls) {
      if (!ls.ok()) {
        done(ls);
        return;
      }
      auto attempt = [this, txn, table, key]() -> Status {
        Txn* t = FindTxn(txn);
        if (t == nullptr || !t->active) return Status::Aborted("gone");
        return WriteRowAttempt(t, table, key, nullptr);
      };
      RunWithRetries(attempt, done);
    };
    Status s = locks_.Lock(txn, table, key, LockMode::kExclusive, with_lock);
    if (!s.IsBusy()) with_lock(s);
  });
}

void MirroredMySql::Commit(TxnId txn, std::function<void(Status)> done) {
  Txn* t = FindTxn(txn);
  if (t == nullptr) {
    done(Status::InvalidArgument("unknown transaction"));
    return;
  }
  if (t->undo.empty()) {
    // Read-only: no log to force.
    ++stats_.txns_committed;
    stats_.commit_latency_us.Record(0);
    locks_.ReleaseAll(txn);
    txns_.erase(txn);
    done(Status::OK());
    return;
  }
  // The WAL protocol: the commit completes only after the redo (and binlog)
  // are durably on the mirrored volumes — a synchronous wait, unlike
  // Aurora's asynchronous commit queue.
  commit_waiters_.push_back({txn, t->commit_lsn, std::move(done),
                             loop_->now()});
  StartWalFlush();
}

void MirroredMySql::Rollback(TxnId txn, std::function<void(Status)> done) {
  Txn* t = FindTxn(txn);
  if (t == nullptr) {
    done(Status::InvalidArgument("unknown transaction"));
    return;
  }
  FinishRollback(t, std::move(done));
}

void MirroredMySql::FinishRollback(Txn* t, std::function<void(Status)> done) {
  t->active = false;
  // In-memory undo (the baseline does not persist undo; see DESIGN.md).
  // The stored callback refers to itself weakly; each continuation passed to
  // RunWithRetries holds the strong reference that keeps the chain alive.
  // Capturing `undo_next` strongly here would make the std::function own a
  // shared_ptr to itself — a reference cycle that never frees.
  auto undo_next = std::make_shared<std::function<void(size_t)>>();
  std::weak_ptr<std::function<void(size_t)>> weak_next = undo_next;
  TxnId id = t->id;
  *undo_next = [this, id, done, weak_next](size_t remaining) {
    Txn* t = FindTxn(id);
    if (t == nullptr) {
      done(Status::OK());
      return;
    }
    if (remaining == 0) {
      locks_.ReleaseAll(id);
      txns_.erase(id);
      ++stats_.txns_aborted;
      done(Status::OK());
      return;
    }
    const Txn::UndoEntry& e = t->undo[remaining - 1];
    auto attempt = [this, e]() -> Status {
      MiniTransaction mtr(kInvalidTxn);
      BTree tree(this, e.table);
      Status s;
      if (e.had_old) {
        s = tree.Upsert(e.key, e.old_value, &mtr);
      } else {
        s = tree.Delete(e.key, &mtr);
        if (s.IsNotFound()) s = Status::OK();
      }
      if (!s.ok()) {
        mtr.Abort();
        return s;
      }
      return CommitMtr(&mtr);
    };
    // Locking here always succeeds: the caller of this lambda (either
    // FinishRollback or a previous continuation) holds a strong reference
    // for the duration of the call.
    RunWithRetries(attempt,
                   [done, next = weak_next.lock(), remaining](Status s) {
                     if (!s.ok()) {
                       done(s);
                       return;
                     }
                     if (next) (*next)(remaining - 1);
                   });
  };
  (*undo_next)(t->undo.size());
}

void MirroredMySql::AttachBinlogReplica(sim::NodeId replica_node) {
  binlog_replicas_.push_back(replica_node);
}

}  // namespace aurora::baseline
