#ifndef AURORA_BASELINE_EBS_H_
#define AURORA_BASELINE_EBS_H_

#include <functional>
#include <map>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/disk.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace aurora::baseline {

/// A simulated EBS volume: a network block service with a synchronous
/// AZ-local mirror (Figure 2 — every write is acknowledged only after both
/// the primary EBS server and its mirror have persisted it).
///
/// Addressing is by named object ("wal/000042", "page/17", "dwb", ...) with
/// whole-object writes, which is how the baseline engine uses it.
class EbsVolume {
 public:
  EbsVolume(sim::EventLoop* loop, sim::Network* network, sim::NodeId server,
            sim::NodeId mirror, sim::DiskOptions disk_options, Random rng);

  EbsVolume(const EbsVolume&) = delete;
  EbsVolume& operator=(const EbsVolume&) = delete;

  sim::NodeId server_node() const { return server_; }

  /// Client-side API (used by the engine instance that attached the
  /// volume): the payload crosses the network to the EBS server, is
  /// persisted, mirrored, and acknowledged.
  void Write(sim::NodeId client, const std::string& key, std::string bytes,
             std::function<void(Status)> done);
  void Read(sim::NodeId client, const std::string& key,
            std::function<void(Result<std::string>)> done);

  /// Direct (recovery-path, same-instance) accessors.
  Result<std::string> GetSync(const std::string& key) const;
  std::vector<std::string> ListKeys(const std::string& prefix) const;
  bool Contains(const std::string& key) const { return objects_.count(key); }

  uint64_t writes() const { return writes_; }
  uint64_t bytes_written() const { return bytes_written_; }

  /// Client-side completion routing: the engine owning the client node must
  /// forward EBS ack/response messages here.
  void HandleClientSide(const sim::Message& msg);

 private:
  struct PendingOp {
    sim::NodeId client;
    std::function<void(Status)> write_done;
    std::function<void(Result<std::string>)> read_done;
    std::string key;
    std::string bytes;
  };

  void HandleServerMessage(const sim::Message& msg);
  void HandleMirrorMessage(const sim::Message& msg);

  sim::EventLoop* loop_;
  sim::Network* network_;
  sim::NodeId server_;
  sim::NodeId mirror_;
  sim::Disk server_disk_;
  sim::Disk mirror_disk_;

  std::map<std::string, std::string> objects_;
  std::map<uint64_t, PendingOp> pending_;
  uint64_t next_op_ = 1;
  uint64_t writes_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace aurora::baseline

#endif  // AURORA_BASELINE_EBS_H_
