#ifndef AURORA_BASELINE_MIRRORED_MYSQL_H_
#define AURORA_BASELINE_MIRRORED_MYSQL_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baseline/ebs.h"
#include "common/histogram.h"
#include "common/random.h"
#include "engine/buffer_pool.h"
#include "engine/lock_manager.h"
#include "engine/options.h"
#include "log/mtr.h"
#include "page/btree.h"
#include "page/page_provider.h"
#include "sim/instance.h"
#include "storage/sim_s3.h"

namespace aurora::baseline {

class BinlogReplica;

/// Knobs of the traditional engine.
struct MirroredMysqlOptions {
  EngineOptions engine;  // page size, buffer pool, CPU costs, lock timeout
  /// Checkpoint cadence and batch size (dirty-page flushing).
  SimDuration checkpoint_interval = Millis(250);
  size_t checkpoint_batch_pages = 64;
  /// Torn-page protection: write pages to the double-write area first.
  bool double_write = true;
  /// Write a binary log (required for replication / PITR), archived to S3.
  bool binlog = true;
  /// Per-statement CPU penalty per concurrent connection (models mutex and
  /// scheduler contention that collapses MySQL beyond ~500 connections,
  /// Table 3). Microseconds per connection.
  double cpu_contention_per_connection_us = 0.0;
  /// Number of open connections (for the contention model); set by the
  /// workload driver.
  int active_connections = 1;
  /// Commits hardened per WAL flush. MySQL 5.6's binlog/redo group commit
  /// was narrow; this caps how much a single fsync chain can amortize.
  size_t group_commit_max = 4;
};

struct MysqlStats {
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t wal_flushes = 0;
  uint64_t wal_bytes = 0;
  uint64_t page_writes = 0;
  uint64_t dwb_writes = 0;
  uint64_t binlog_writes = 0;
  uint64_t checkpoints = 0;
  uint64_t page_reads = 0;
  uint64_t dirty_evict_stalls = 0;
  Histogram commit_latency_us;
  Histogram read_latency_us;
  Histogram write_latency_us;
};

/// The paper's comparison system (Figure 2): community-MySQL-style engine in
/// an active/standby pair, each instance on a mirrored EBS volume, with
/// synchronous block-level replication to the standby. Every write the
/// engine performs — WAL, data pages, double-write buffer, binlog, metadata —
/// crosses the network through the sequential chain
///   step 1-2: primary EBS + its mirror,
///   step 3:   ship to the standby instance,
///   step 4-5: standby EBS + its mirror,
/// which is the amplification and synchrony Aurora eliminates (§3.1).
///
/// It reuses the same B+-tree / page / buffer-pool / lock-manager code as
/// the Aurora engine; only durability differs: a local WAL flushed on
/// commit, dirty pages written back by checkpoints (and by forced eviction),
/// ARIES-style redo replay from the last checkpoint on recovery.
class MirroredMySql : public WalSink, public PageProvider {
 public:
  /// `nodes` are pre-created simulation hosts:
  /// {standby instance, primary EBS server, primary EBS mirror, standby EBS
  /// server, standby EBS mirror}.
  struct NodeSet {
    sim::NodeId standby;
    sim::NodeId primary_ebs, primary_ebs_mirror;
    sim::NodeId standby_ebs, standby_ebs_mirror;
  };

  MirroredMySql(sim::EventLoop* loop, sim::Network* network,
                sim::NodeId node_id, sim::Instance* instance, SimS3* s3,
                const NodeSet& nodes, sim::DiskOptions ebs_disk,
                MirroredMysqlOptions options, Random rng);
  ~MirroredMySql() override;

  MirroredMySql(const MirroredMySql&) = delete;
  MirroredMySql& operator=(const MirroredMySql&) = delete;

  // --- Lifecycle -------------------------------------------------------------
  void Bootstrap(std::function<void(Status)> done);
  void Crash();
  /// ARIES-style recovery: read the checkpoint, replay the WAL from it.
  void Recover(std::function<void(Status)> done);

  // --- Schema / transactions (same surface as aurora::Database) -------------
  void CreateTable(const std::string& name, std::function<void(Status)> done);
  /// See Database::AttachPreloadedTable; pages come from the synthesizer on
  /// EBS read misses.
  void AttachPreloadedTable(const std::string& name,
                            std::function<uint64_t(PageId)> plan,
                            std::function<void(Result<PageId>)> done);
  void set_page_synthesizer(std::function<bool(PageId, Page*)> fn) {
    synthesizer_ = std::move(fn);
  }
  Result<PageId> TableAnchor(const std::string& name);
  TxnId Begin();
  void Put(TxnId txn, PageId table, const std::string& key,
           const std::string& value, std::function<void(Status)> done);
  void Get(TxnId txn, PageId table, const std::string& key,
           std::function<void(Result<std::string>)> done);
  void Delete(TxnId txn, PageId table, const std::string& key,
              std::function<void(Status)> done);
  void Commit(TxnId txn, std::function<void(Status)> done);
  void Rollback(TxnId txn, std::function<void(Status)> done);

  // --- Replication ------------------------------------------------------------
  void AttachBinlogReplica(sim::NodeId replica_node);

  // --- Introspection ----------------------------------------------------------
  const MysqlStats& stats() const { return stats_; }
  MysqlStats* mutable_stats() { return &stats_; }
  Lsn flushed_lsn() const { return flushed_lsn_; }
  Lsn checkpoint_lsn() const { return checkpoint_lsn_; }
  size_t dirty_pages() const { return dirty_since_.size(); }
  BufferPool* buffer_pool() { return &pool_; }
  MirroredMysqlOptions* mutable_options() { return &options_; }
  EbsVolume* primary_ebs() { return primary_ebs_.get(); }
  EbsVolume* standby_ebs() { return standby_ebs_.get(); }
  sim::NodeId node_id() const { return node_id_; }

  // --- WalSink -----------------------------------------------------------------
  Status CommitMtr(MiniTransaction* mtr) override;

  // --- PageProvider -------------------------------------------------------------
  Result<Page*> GetPage(PageId id) override;
  Result<Page*> AllocatePage(PageType type, uint8_t level,
                             MiniTransaction* mtr) override;
  Status FreePage(Page* page, MiniTransaction* mtr) override;
  PageId last_miss() const override { return last_miss_; }
  size_t page_size() const override { return options_.engine.page_size; }

 private:
  struct Txn {
    TxnId id;
    bool active = true;
    struct UndoEntry {
      PageId table;
      std::string key;
      bool had_old;
      std::string old_value;
    };
    std::vector<UndoEntry> undo;
    /// Binlog (statement) events of this transaction.
    std::string binlog;
    Lsn commit_lsn = kInvalidLsn;
  };

  struct CommitWaiter {
    TxnId txn;
    Lsn lsn;
    std::function<void(Status)> done;
    SimTime requested_at;
  };

  void HandleMessage(const sim::Message& msg);
  /// Writes `bytes` under `key` through the full 5-step chain: primary EBS
  /// (+mirror), ship to standby, standby EBS (+mirror).
  void ChainWrite(const std::string& key, std::string bytes,
                  std::function<void(Status)> done);
  void StartWalFlush();
  void FinishWalFlush(Lsn flushed_through);
  void CheckpointTick();
  void FlushOnePage(PageId id, std::function<void(Status)> done);
  SimDuration StatementCpuCost() const;
  void RunWithRetries(std::function<Status()> attempt,
                      std::function<void(Status)> done);
  Status WriteRowAttempt(Txn* txn, PageId table, const std::string& key,
                         const std::string* value);
  Txn* FindTxn(TxnId id);
  void FinishRollback(Txn* txn, std::function<void(Status)> done);
  void MarkDirty(const MiniTransaction& mtr);
  void ReplayWal(std::shared_ptr<std::vector<LogRecord>> records, size_t idx,
                 std::function<void(Status)> done);

  sim::EventLoop* loop_;
  sim::Network* network_;
  sim::NodeId node_id_;
  sim::Instance* instance_;
  SimS3* s3_;
  NodeSet nodes_;
  MirroredMysqlOptions options_;
  Random rng_;

  std::unique_ptr<EbsVolume> primary_ebs_;
  std::unique_ptr<EbsVolume> standby_ebs_;

  // WAL state.
  Lsn next_lsn_ = 1;
  Lsn flushed_lsn_ = kInvalidLsn;
  Lsn checkpoint_lsn_ = kInvalidLsn;
  Lsn last_vol_lsn_ = kInvalidLsn;
  std::vector<LogRecord> wal_buffer_;  // records > flushed_lsn_
  bool wal_flush_in_flight_ = false;
  uint64_t next_wal_seq_ = 1;
  uint64_t next_binlog_seq_ = 1;
  /// Last LSN contained in each WAL object, so checkpoints can record where
  /// a recovery scan must start.
  std::map<uint64_t, Lsn> wal_last_lsn_;
  std::deque<CommitWaiter> commit_waiters_;

  // Chain-write plumbing.
  struct ChainOp {
    std::string key;
    std::string bytes;
    std::function<void(Status)> done;
  };
  std::map<uint64_t, ChainOp> chain_ops_;
  uint64_t next_chain_ = 1;

  // Page state.
  BufferPool pool_;
  Lsn infinite_vdl_ = UINT64_MAX;  // baseline pool never blocks on VDL
  std::map<PageId, Lsn> dirty_since_;
  std::map<PageId, std::vector<std::function<void()>>> page_waiters_;
  std::set<PageId> fetch_in_flight_;
  PageId last_miss_ = kInvalidPage;

  LockManager locks_;
  TxnId next_txn_ = 1;
  std::map<TxnId, std::unique_ptr<Txn>> txns_;

  std::vector<sim::NodeId> binlog_replicas_;
  std::function<bool(PageId, Page*)> synthesizer_;

  bool open_ = false;
  bool checkpointing_ = false;
  bool lru_flush_in_flight_ = false;
  uint64_t generation_ = 0;
  // Periodic checkpoint re-arm; cancelled by Crash() so crash/restart
  // cycles do not accumulate pending events in the loop.
  sim::EventId checkpoint_timer_ = 0;
  MysqlStats stats_;
};

}  // namespace aurora::baseline

#endif  // AURORA_BASELINE_MIRRORED_MYSQL_H_
