#ifndef AURORA_PAGE_PAGE_PROVIDER_H_
#define AURORA_PAGE_PAGE_PROVIDER_H_

#include "common/result.h"
#include "log/mtr.h"
#include "log/types.h"
#include "page/page.h"

namespace aurora {

/// Access to the page space, implemented by the writer's buffer pool (cache
/// misses trigger asynchronous storage fetches), by the baseline engine's
/// buffer pool (misses read from simulated EBS), and by plain in-memory maps
/// in tests.
///
/// Asynchrony contract: the simulation is single-threaded, so operations
/// cannot block on I/O. `GetPage` returns Busy when the page is not resident;
/// the implementation starts the fetch and the caller's operation is retried
/// from scratch once it lands (optimistic restart, LeanStore-style). B+-tree
/// operations are therefore structured as read-only planning (which may
/// Busy-restart) followed by mutation that touches only resident pages.
class PageProvider {
 public:
  virtual ~PageProvider() = default;

  /// Returns the resident page, or Busy after initiating an async fetch.
  /// The pointer stays valid until the current event handler returns (pages
  /// touched by an in-flight operation are pinned by the caller's context).
  virtual Result<Page*> GetPage(PageId id) = 0;

  /// Allocates a fresh page id, formats the page through `mtr` (so the
  /// allocation itself is redo-logged) and returns it resident. Providers
  /// with a free-list hand back previously freed ids before growing the
  /// page space.
  virtual Result<Page*> AllocatePage(PageType type, uint8_t level,
                                     MiniTransaction* mtr) = 0;

  /// Returns `page` to the allocator: reformats it as kFree through `mtr`
  /// (the free is redo-logged like any structural change) and queues its id
  /// for reuse by a later AllocatePage. The caller must already have
  /// unlinked the page from every durable structure. Read-only providers
  /// reject the call.
  virtual Status FreePage(Page* page, MiniTransaction* mtr) = 0;

  /// Id of the page that caused the most recent Busy return.
  virtual PageId last_miss() const = 0;

  virtual size_t page_size() const = 0;
};

}  // namespace aurora

#endif  // AURORA_PAGE_PAGE_PROVIDER_H_
