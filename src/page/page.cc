#include "page/page.h"

#include <cassert>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/logging.h"

namespace aurora {

namespace {
// Header field offsets.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffPageId = 4;
constexpr size_t kOffPageLsn = 12;
constexpr size_t kOffType = 20;
constexpr size_t kOffLevel = 21;
constexpr size_t kOffSchemaVersion = 22;
constexpr size_t kOffNext = 26;
constexpr size_t kOffPrev = 34;
constexpr size_t kOffNSlots = 42;
constexpr size_t kOffHeapEnd = 44;
constexpr size_t kOffDeadSpace = 46;
constexpr size_t kOffCrc = 48;
constexpr size_t kSlotSize = 2;
}  // namespace

Page::Page(size_t page_size) : data_(page_size, '\0') {
  AURORA_CHECK(page_size >= kMinPageSize && page_size <= kMaxPageSize,
               "page size out of range");
}

void Page::Format(PageId id, PageType type, uint8_t level) {
  std::fill(data_.begin(), data_.end(), '\0');
  EncodeFixed32(data_.data() + kOffMagic, kMagic);
  EncodeFixed64(data_.data() + kOffPageId, id);
  EncodeFixed64(data_.data() + kOffPageLsn, kInvalidLsn);
  data_[kOffType] = static_cast<char>(type);
  data_[kOffLevel] = static_cast<char>(level);
  EncodeFixed32(data_.data() + kOffSchemaVersion, 0);
  EncodeFixed64(data_.data() + kOffNext, kInvalidPage);
  EncodeFixed64(data_.data() + kOffPrev, kInvalidPage);
  set_nslots(0);
  set_heap_end(static_cast<uint16_t>(kHeaderSize));
  set_dead_space(0);
}

bool Page::IsFormatted() const {
  return DecodeFixed32(data_.data() + kOffMagic) == kMagic;
}

PageId Page::page_id() const { return DecodeFixed64(data_.data() + kOffPageId); }
Lsn Page::page_lsn() const { return DecodeFixed64(data_.data() + kOffPageLsn); }
void Page::set_page_lsn(Lsn lsn) { EncodeFixed64(data_.data() + kOffPageLsn, lsn); }
PageType Page::page_type() const {
  return static_cast<PageType>(data_[kOffType]);
}
uint8_t Page::level() const { return static_cast<uint8_t>(data_[kOffLevel]); }
uint32_t Page::schema_version() const {
  return DecodeFixed32(data_.data() + kOffSchemaVersion);
}
void Page::set_schema_version(uint32_t v) {
  EncodeFixed32(data_.data() + kOffSchemaVersion, v);
}
PageId Page::next_page() const { return DecodeFixed64(data_.data() + kOffNext); }
void Page::set_next_page(PageId id) { EncodeFixed64(data_.data() + kOffNext, id); }
PageId Page::prev_page() const { return DecodeFixed64(data_.data() + kOffPrev); }
void Page::set_prev_page(PageId id) { EncodeFixed64(data_.data() + kOffPrev, id); }

uint16_t Page::nslots() const { return DecodeFixed16(data_.data() + kOffNSlots); }
void Page::set_nslots(uint16_t n) {
  char buf[2];
  memcpy(buf, &n, 2);
  memcpy(data_.data() + kOffNSlots, buf, 2);
}
uint16_t Page::heap_end() const {
  return DecodeFixed16(data_.data() + kOffHeapEnd);
}
void Page::set_heap_end(uint16_t v) {
  memcpy(data_.data() + kOffHeapEnd, &v, 2);
}
uint16_t Page::dead_space() const {
  return DecodeFixed16(data_.data() + kOffDeadSpace);
}
void Page::set_dead_space(uint16_t v) {
  memcpy(data_.data() + kOffDeadSpace, &v, 2);
}

uint16_t Page::SlotOffset(int slot) const {
  size_t pos = data_.size() - kSlotSize * (slot + 1);
  return DecodeFixed16(data_.data() + pos);
}

void Page::SetSlotOffset(int slot, uint16_t off) {
  size_t pos = data_.size() - kSlotSize * (slot + 1);
  memcpy(data_.data() + pos, &off, 2);
}

void Page::RecordAt(uint16_t off, Slice* key, Slice* value) const {
  Slice in(data_.data() + off, data_.size() - off);
  uint32_t klen = 0, vlen = 0;
  bool ok = GetVarint32(&in, &klen);
  AURORA_CHECK(ok && in.size() >= klen, "corrupt record key");
  *key = Slice(in.data(), klen);
  in.remove_prefix(klen);
  ok = GetVarint32(&in, &vlen);
  AURORA_CHECK(ok && in.size() >= vlen, "corrupt record value");
  *value = Slice(in.data(), vlen);
}

size_t Page::RecordSize(const Slice& key, const Slice& value) const {
  return VarintLength(key.size()) + key.size() + VarintLength(value.size()) +
         value.size();
}

int Page::slot_count() const { return nslots(); }

Slice Page::KeyAt(int slot) const {
  assert(slot >= 0 && slot < slot_count());
  Slice key, value;
  RecordAt(SlotOffset(slot), &key, &value);
  return key;
}

Slice Page::ValueAt(int slot) const {
  assert(slot >= 0 && slot < slot_count());
  Slice key, value;
  RecordAt(SlotOffset(slot), &key, &value);
  return value;
}

int Page::LowerBound(const Slice& key) const {
  int lo = 0, hi = slot_count();
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (KeyAt(mid).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int Page::UpperBoundChild(const Slice& key) const {
  // Last slot with key <= search key.
  int lb = LowerBound(key);
  if (lb < slot_count() && KeyAt(lb) == key) return lb;
  return lb - 1;
}

size_t Page::FreeSpace() const {
  size_t slot_region = kSlotSize * static_cast<size_t>(nslots());
  size_t used_end = data_.size() - slot_region;
  return used_end - heap_end();
}

bool Page::HasRoomFor(size_t key_size, size_t value_size) const {
  size_t need = VarintLength(key_size) + key_size + VarintLength(value_size) +
                value_size + kSlotSize;
  // Dead space is reclaimable via compaction.
  return FreeSpace() + dead_space() >= need;
}

uint16_t Page::AppendToHeap(const Slice& key, const Slice& value) {
  uint16_t off = heap_end();
  std::string rec;
  PutVarint32(&rec, static_cast<uint32_t>(key.size()));
  rec.append(key.data(), key.size());
  PutVarint32(&rec, static_cast<uint32_t>(value.size()));
  rec.append(value.data(), value.size());
  memcpy(data_.data() + off, rec.data(), rec.size());
  set_heap_end(static_cast<uint16_t>(off + rec.size()));
  return off;
}

void Page::Compact() {
  int n = slot_count();
  std::vector<std::pair<std::string, std::string>> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    Slice k, v;
    RecordAt(SlotOffset(i), &k, &v);
    records.emplace_back(k.ToString(), v.ToString());
  }
  set_heap_end(static_cast<uint16_t>(kHeaderSize));
  set_dead_space(0);
  for (int i = 0; i < n; ++i) {
    uint16_t off = AppendToHeap(records[i].first, records[i].second);
    SetSlotOffset(i, off);
  }
}

Status Page::InsertRecord(const Slice& key, const Slice& value) {
  int pos = LowerBound(key);
  if (pos < slot_count() && KeyAt(pos) == key) {
    return Status::InvalidArgument("duplicate key");
  }
  size_t need = RecordSize(key, value) + kSlotSize;
  if (FreeSpace() < need) {
    if (FreeSpace() + dead_space() < need) {
      return Status::OutOfRange("page full");
    }
    Compact();
  }
  uint16_t off = AppendToHeap(key, value);
  // Shift slots [pos, n) down by one (slot directory grows toward lower
  // addresses, so "down" means toward the heap).
  int n = slot_count();
  for (int i = n; i > pos; --i) {
    SetSlotOffset(i, SlotOffset(i - 1));
  }
  SetSlotOffset(pos, off);
  set_nslots(static_cast<uint16_t>(n + 1));
  return Status::OK();
}

Status Page::DeleteRecord(const Slice& key) {
  int pos = LowerBound(key);
  if (pos >= slot_count() || KeyAt(pos) != key) {
    return Status::NotFound("key not in page");
  }
  Slice k, v;
  RecordAt(SlotOffset(pos), &k, &v);
  set_dead_space(static_cast<uint16_t>(dead_space() + RecordSize(k, v)));
  int n = slot_count();
  for (int i = pos; i < n - 1; ++i) {
    SetSlotOffset(i, SlotOffset(i + 1));
  }
  set_nslots(static_cast<uint16_t>(n - 1));
  return Status::OK();
}

Status Page::UpdateRecord(const Slice& key, const Slice& value) {
  int pos = LowerBound(key);
  if (pos >= slot_count() || KeyAt(pos) != key) {
    return Status::NotFound("key not in page");
  }
  Slice k, old_v;
  RecordAt(SlotOffset(pos), &k, &old_v);
  size_t old_size = RecordSize(k, old_v);
  size_t new_size = RecordSize(key, value);
  // The old record becomes dead space; the new one is appended.
  if (FreeSpace() < new_size) {
    if (FreeSpace() + dead_space() + old_size < new_size) {
      return Status::OutOfRange("page full");
    }
    // Mark old dead first so compaction (which keeps live slots) must not
    // drop it: temporarily delete + reinsert instead.
    Status s = DeleteRecord(key);
    AURORA_CHECK(s.ok(), "delete during update failed");
    s = InsertRecord(key, value);
    AURORA_CHECK(s.ok(), "reinsert during update failed");
    return Status::OK();
  }
  set_dead_space(static_cast<uint16_t>(dead_space() + old_size));
  uint16_t off = AppendToHeap(key, value);
  SetSlotOffset(pos, off);
  return Status::OK();
}

bool Page::GetRecord(const Slice& key, Slice* value) const {
  int pos = LowerBound(key);
  if (pos >= slot_count() || KeyAt(pos) != key) return false;
  *value = ValueAt(pos);
  return true;
}

void Page::UpdateCrc() {
  EncodeFixed32(data_.data() + kOffCrc, 0);
  uint32_t crc = crc32c::Value(data_.data(), data_.size());
  EncodeFixed32(data_.data() + kOffCrc, crc32c::Mask(crc));
}

bool Page::VerifyCrc() const {
  uint32_t stored = crc32c::Unmask(DecodeFixed32(data_.data() + kOffCrc));
  std::string copy = data_;
  EncodeFixed32(copy.data() + kOffCrc, 0);
  return crc32c::Value(copy.data(), copy.size()) == stored;
}

void Page::CorruptForTesting(size_t offset) {
  data_[offset % data_.size()] ^= 0x5A;
}

Status Page::LoadRaw(const Slice& bytes) {
  if (bytes.size() != data_.size()) {
    return Status::InvalidArgument("page size mismatch");
  }
  data_.assign(bytes.data(), bytes.size());
  return Status::OK();
}

}  // namespace aurora
