#ifndef AURORA_PAGE_BTREE_H_
#define AURORA_PAGE_BTREE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "log/mtr.h"
#include "page/page.h"
#include "page/page_provider.h"

namespace aurora {

/// A single-writer B+-tree over slotted pages — the InnoDB-style access
/// method of §5. All structural modifications (splits, root growth) happen
/// inside the caller's mini-transaction, so they reach storage (and
/// replicas) atomically.
///
/// Concurrency: the simulation executes one event at a time, so there is no
/// page latching; isolation between transactions is provided above this
/// layer by the lock manager. Keys are arbitrary byte strings in memcmp
/// order; values must fit in ~1/4 of a page.
///
/// I/O: operations return Busy when a needed page is not resident in the
/// PageProvider (which then fetches it asynchronously); callers retry the
/// whole operation. Mutating operations are planned so that no mutation is
/// emitted until every page they could touch is resident.
class BTree {
 public:
  /// Creates a new tree: allocates an anchor (meta) page holding the root
  /// pointer and an empty leaf root, inside `mtr`. Returns the anchor id,
  /// which identifies the tree from then on.
  static Result<PageId> Create(PageProvider* provider, MiniTransaction* mtr);

  /// Opens an existing tree by its anchor page id.
  BTree(PageProvider* provider, PageId anchor_id)
      : provider_(provider), anchor_id_(anchor_id) {}

  /// Point lookup; Busy on cache miss (retry), NotFound if absent.
  Status Get(const Slice& key, std::string* value);

  /// Inserts a new key. InvalidArgument if it already exists.
  Status Insert(const Slice& key, const Slice& value, MiniTransaction* mtr);

  /// Updates an existing key. NotFound if absent.
  Status Update(const Slice& key, const Slice& value, MiniTransaction* mtr);

  /// Inserts or updates.
  Status Upsert(const Slice& key, const Slice& value, MiniTransaction* mtr);

  /// Deletes a key. NotFound if absent. A leaf emptied by the delete is
  /// unlinked from the sibling chain, its separator is removed from the
  /// parent, and the page is returned to the provider's free-list — so
  /// insert/delete churn reaches a steady-state page count instead of
  /// growing without bound. (Partially filled pages are still not merged.)
  Status Delete(const Slice& key, MiniTransaction* mtr);

  /// Range scan: up to `limit` records with key >= start, in order.
  Status Scan(const Slice& start, int limit,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Number of records reachable from the root (full scan; tests only).
  Result<uint64_t> CountForTesting();

  /// Validates structural invariants: key ordering within and across pages,
  /// child separators, sibling links, uniform leaf depth. Tests/scrubber.
  Status CheckInvariants();

  PageId anchor_id() const { return anchor_id_; }
  /// Current root page id (resolves through the anchor; Busy on miss).
  Result<PageId> root_id();

 private:
  struct PathEntry {
    Page* page;
    int child_slot;  // slot followed to descend (internal levels only)
  };

  /// Descends from the root to the leaf owning `key`, recording the path.
  Status DescendToLeaf(const Slice& key, std::vector<PathEntry>* path);

  /// Ensures every page a split cascade starting at the leaf could touch is
  /// resident; returns Busy (with fetch started) otherwise.
  Status PlanForInsert(const std::vector<PathEntry>& path, size_t key_size,
                       size_t value_size);

  /// Ensures both sibling leaves of a leaf about to be unlinked are
  /// resident; returns Busy (with fetch started) otherwise.
  Status PlanForUnlink(const std::vector<PathEntry>& path);

  /// Splices the (just emptied) leaf at the end of `path` out of the leaf
  /// chain, drops its child entry from the parent and frees the page.
  Status UnlinkEmptyLeaf(std::vector<PathEntry>* path, MiniTransaction* mtr);

  /// Splits `page` (leaf or internal), inserting the separator into the
  /// parent, cascading upward; `path` is the descent path with `page` last.
  /// On return, `*target` is the page (old or new) that should receive the
  /// pending record with `key`.
  Status SplitAndPropagate(std::vector<PathEntry>* path, const Slice& key,
                           MiniTransaction* mtr, Page** target);

  static std::string EncodeChild(PageId id);
  static PageId DecodeChild(const Slice& value);

  PageProvider* provider_;
  PageId anchor_id_;
};

}  // namespace aurora

#endif  // AURORA_PAGE_BTREE_H_
