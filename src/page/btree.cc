#include "page/btree.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"

namespace aurora {

namespace {
constexpr char kRootKey[] = "root";
constexpr size_t kChildEntrySize = 8;

size_t EntryBytes(const Page* p, int slot) {
  Slice k = p->KeyAt(slot);
  Slice v = p->ValueAt(slot);
  return VarintLength(k.size()) + k.size() + VarintLength(v.size()) + v.size();
}

// Byte-balanced split point: the first slot index such that the bytes kept
// on the left are >= half of the page's live bytes. Count-based splitting is
// not enough with variable-size records: it can leave one half nearly full,
// breaking the guarantee that a post-split page has room for the pending
// record.
int SplitPoint(const Page* p) {
  int n = p->slot_count();
  size_t total = 0;
  for (int i = 0; i < n; ++i) total += EntryBytes(p, i);
  size_t acc = 0;
  for (int i = 0; i < n - 1; ++i) {
    acc += EntryBytes(p, i);
    if (acc * 2 >= total) return i + 1;
  }
  return n - 1;
}
}  // namespace

std::string BTree::EncodeChild(PageId id) {
  std::string v;
  PutFixed64(&v, id);
  return v;
}

PageId BTree::DecodeChild(const Slice& value) {
  AURORA_CHECK(value.size() == kChildEntrySize, "bad child entry");
  return DecodeFixed64(value.data());
}

Result<PageId> BTree::Create(PageProvider* provider, MiniTransaction* mtr) {
  Result<Page*> anchor =
      provider->AllocatePage(PageType::kMeta, /*level=*/0, mtr);
  if (!anchor.ok()) return anchor.status();
  Result<Page*> root =
      provider->AllocatePage(PageType::kBTreeLeaf, /*level=*/0, mtr);
  if (!root.ok()) return root.status();

  LogRecord rec;
  rec.page_id = (*anchor)->page_id();
  rec.op = RedoOp::kInsert;
  rec.payload = LogRecord::MakeKeyValuePayload(
      kRootKey, EncodeChild((*root)->page_id()));
  Status s = mtr->Apply(*anchor, std::move(rec));
  if (!s.ok()) return s;
  return (*anchor)->page_id();
}

Result<PageId> BTree::root_id() {
  Result<Page*> anchor = provider_->GetPage(anchor_id_);
  if (!anchor.ok()) return anchor.status();
  Slice v;
  if (!(*anchor)->GetRecord(kRootKey, &v)) {
    return Status::Corruption("btree anchor missing root pointer");
  }
  return DecodeChild(v);
}

Status BTree::DescendToLeaf(const Slice& key, std::vector<PathEntry>* path) {
  Result<PageId> root = root_id();
  if (!root.ok()) return root.status();
  PageId id = *root;
  while (true) {
    Result<Page*> p = provider_->GetPage(id);
    if (!p.ok()) return p.status();
    Page* page = *p;
    if (page->page_type() == PageType::kBTreeLeaf) {
      path->push_back({page, -1});
      return Status::OK();
    }
    if (page->page_type() != PageType::kBTreeInternal) {
      return Status::Corruption("unexpected page type in btree descent");
    }
    int slot = page->UpperBoundChild(key);
    if (slot < 0) {
      return Status::Corruption("btree internal page has no covering child");
    }
    path->push_back({page, slot});
    id = DecodeChild(page->ValueAt(slot));
  }
}

Status BTree::Get(const Slice& key, std::string* value) {
  std::vector<PathEntry> path;
  Status s = DescendToLeaf(key, &path);
  if (!s.ok()) return s;
  Slice v;
  if (!path.back().page->GetRecord(key, &v)) {
    return Status::NotFound("key not found");
  }
  value->assign(v.data(), v.size());
  return Status::OK();
}

Status BTree::PlanForInsert(const std::vector<PathEntry>& path,
                            size_t key_size, size_t value_size) {
  // Walk from the leaf upward computing whether each level splits; the only
  // extra page a cascade can touch beyond the (already resident) path is the
  // leaf's right sibling, whose prev link must be rewired.
  int i = static_cast<int>(path.size()) - 1;
  Page* leaf = path[i].page;
  if (leaf->HasRoomFor(key_size, value_size)) return Status::OK();

  if (leaf->next_page() != kInvalidPage) {
    Result<Page*> sib = provider_->GetPage(leaf->next_page());
    if (!sib.ok()) return sib.status();
  }
  // Separator pushed up from a split of `page` is its mid key.
  Page* page = leaf;
  while (i > 0) {
    int n = page->slot_count();
    if (n < 2) break;  // degenerate; split logic handles it
    size_t sep_size = page->KeyAt(SplitPoint(page)).size();
    Page* parent = path[i - 1].page;
    if (parent->HasRoomFor(sep_size, kChildEntrySize)) return Status::OK();
    page = parent;
    --i;
  }
  return Status::OK();  // root split allocates; no fetches needed
}

Status BTree::SplitAndPropagate(std::vector<PathEntry>* path, const Slice& key,
                                MiniTransaction* mtr, Page** target) {
  Page* page = path->back().page;
  const bool is_leaf = page->page_type() == PageType::kBTreeLeaf;
  int n = page->slot_count();
  AURORA_CHECK(n >= 2, "cannot split page with fewer than two records");
  int mid = SplitPoint(page);

  // Copy out the upper half (slices die on mutation).
  std::string sep_key = page->KeyAt(mid).ToString();
  std::vector<std::pair<std::string, std::string>> moved;
  moved.reserve(n - mid);
  for (int j = mid; j < n; ++j) {
    moved.emplace_back(page->KeyAt(j).ToString(), page->ValueAt(j).ToString());
  }

  Result<Page*> right_r = provider_->AllocatePage(
      page->page_type(), page->level(), mtr);
  if (!right_r.ok()) return right_r.status();
  Page* right = *right_r;

  for (const auto& [k, v] : moved) {
    LogRecord rec;
    rec.page_id = right->page_id();
    rec.op = RedoOp::kInsert;
    rec.payload = LogRecord::MakeKeyValuePayload(k, v);
    Status s = mtr->Apply(right, std::move(rec));
    if (!s.ok()) return s;
  }
  for (int j = n - 1; j >= mid; --j) {
    LogRecord rec;
    rec.page_id = page->page_id();
    rec.op = RedoOp::kDelete;
    rec.payload = LogRecord::MakeKeyPayload(moved[j - mid].first);
    Status s = mtr->Apply(page, std::move(rec));
    if (!s.ok()) return s;
  }

  if (is_leaf) {
    // Rewire the leaf chain: page <-> right <-> old_next.
    PageId old_next = page->next_page();
    {
      LogRecord rec;
      rec.page_id = right->page_id();
      rec.op = RedoOp::kSetNext;
      rec.payload = LogRecord::MakePageIdPayload(old_next);
      Status s = mtr->Apply(right, std::move(rec));
      if (!s.ok()) return s;
      rec = LogRecord();
      rec.page_id = right->page_id();
      rec.op = RedoOp::kSetPrev;
      rec.payload = LogRecord::MakePageIdPayload(page->page_id());
      s = mtr->Apply(right, std::move(rec));
      if (!s.ok()) return s;
      rec = LogRecord();
      rec.page_id = page->page_id();
      rec.op = RedoOp::kSetNext;
      rec.payload = LogRecord::MakePageIdPayload(right->page_id());
      s = mtr->Apply(page, std::move(rec));
      if (!s.ok()) return s;
    }
    if (old_next != kInvalidPage) {
      Result<Page*> sib = provider_->GetPage(old_next);
      // PlanForInsert guaranteed residency; a miss here is a logic error.
      AURORA_CHECK(sib.ok(), "leaf sibling not resident during split");
      LogRecord rec;
      rec.page_id = old_next;
      rec.op = RedoOp::kSetPrev;
      rec.payload = LogRecord::MakePageIdPayload(right->page_id());
      Status s = mtr->Apply(*sib, std::move(rec));
      if (!s.ok()) return s;
    }
  }

  // Insert the separator into the parent (possibly cascading).
  if (path->size() == 1) {
    // Root split: allocate a new root one level up.
    Result<Page*> new_root_r = provider_->AllocatePage(
        PageType::kBTreeInternal, static_cast<uint8_t>(page->level() + 1),
        mtr);
    if (!new_root_r.ok()) return new_root_r.status();
    Page* new_root = *new_root_r;
    LogRecord rec;
    rec.page_id = new_root->page_id();
    rec.op = RedoOp::kInsert;
    rec.payload = LogRecord::MakeKeyValuePayload(
        Slice("", 0), EncodeChild(page->page_id()));
    Status s = mtr->Apply(new_root, std::move(rec));
    if (!s.ok()) return s;
    rec = LogRecord();
    rec.page_id = new_root->page_id();
    rec.op = RedoOp::kInsert;
    rec.payload = LogRecord::MakeKeyValuePayload(sep_key,
                                                 EncodeChild(right->page_id()));
    s = mtr->Apply(new_root, std::move(rec));
    if (!s.ok()) return s;

    Result<Page*> anchor = provider_->GetPage(anchor_id_);
    AURORA_CHECK(anchor.ok(), "anchor not resident during root split");
    rec = LogRecord();
    rec.page_id = anchor_id_;
    rec.op = RedoOp::kUpdate;
    rec.payload = LogRecord::MakeKeyValuePayload(
        kRootKey, EncodeChild(new_root->page_id()));
    s = mtr->Apply(*anchor, std::move(rec));
    if (!s.ok()) return s;
  } else {
    std::vector<PathEntry> parent_path(path->begin(), path->end() - 1);
    Page* parent = parent_path.back().page;
    if (!parent->HasRoomFor(sep_key.size(), kChildEntrySize)) {
      Page* ptarget = nullptr;
      Status s = SplitAndPropagate(&parent_path, sep_key, mtr, &ptarget);
      if (!s.ok()) return s;
      parent = ptarget;
    }
    LogRecord rec;
    rec.page_id = parent->page_id();
    rec.op = RedoOp::kInsert;
    rec.payload = LogRecord::MakeKeyValuePayload(sep_key,
                                                 EncodeChild(right->page_id()));
    Status s = mtr->Apply(parent, std::move(rec));
    if (!s.ok()) return s;
  }

  *target = key.compare(sep_key) < 0 ? page : right;
  return Status::OK();
}

Status BTree::Insert(const Slice& key, const Slice& value,
                     MiniTransaction* mtr) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  if (key.size() > provider_->page_size() / 16 ||
      value.size() > provider_->page_size() / 4) {
    return Status::InvalidArgument("key or value too large for page");
  }
  std::vector<PathEntry> path;
  Status s = DescendToLeaf(key, &path);
  if (!s.ok()) return s;
  Page* leaf = path.back().page;
  Slice existing;
  if (leaf->GetRecord(key, &existing)) {
    return Status::InvalidArgument("duplicate key");
  }
  s = PlanForInsert(path, key.size(), value.size());
  if (!s.ok()) return s;

  Page* target = leaf;
  if (!leaf->HasRoomFor(key.size(), value.size())) {
    s = SplitAndPropagate(&path, key, mtr, &target);
    if (!s.ok()) return s;
  }
  LogRecord rec;
  rec.page_id = target->page_id();
  rec.op = RedoOp::kInsert;
  rec.payload = LogRecord::MakeKeyValuePayload(key, value);
  return mtr->Apply(target, std::move(rec));
}

Status BTree::Update(const Slice& key, const Slice& value,
                     MiniTransaction* mtr) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  if (value.size() > provider_->page_size() / 4) {
    return Status::InvalidArgument("value too large for page");
  }
  std::vector<PathEntry> path;
  Status s = DescendToLeaf(key, &path);
  if (!s.ok()) return s;
  Page* leaf = path.back().page;
  Slice old;
  if (!leaf->GetRecord(key, &old)) return Status::NotFound("key not found");

  // In-place update works when the new value fits in free + dead + the old
  // record's space; otherwise split first (after which it always fits).
  size_t old_rec = VarintLength(key.size()) + key.size() +
                   VarintLength(old.size()) + old.size();
  size_t new_rec = VarintLength(key.size()) + key.size() +
                   VarintLength(value.size()) + value.size();
  bool fits = leaf->FreeSpace() + old_rec >= new_rec ||
              leaf->HasRoomFor(key.size(), value.size());
  Page* target = leaf;
  if (!fits) {
    s = PlanForInsert(path, key.size(), value.size());
    if (!s.ok()) return s;
    s = SplitAndPropagate(&path, key, mtr, &target);
    if (!s.ok()) return s;
  }
  LogRecord rec;
  rec.page_id = target->page_id();
  rec.op = RedoOp::kUpdate;
  rec.payload = LogRecord::MakeKeyValuePayload(key, value);
  return mtr->Apply(target, std::move(rec));
}

Status BTree::Upsert(const Slice& key, const Slice& value,
                     MiniTransaction* mtr) {
  Status s = Update(key, value, mtr);
  if (s.IsNotFound()) return Insert(key, value, mtr);
  return s;
}

Status BTree::PlanForUnlink(const std::vector<PathEntry>& path) {
  Page* leaf = path.back().page;
  if (leaf->prev_page() != kInvalidPage) {
    Result<Page*> p = provider_->GetPage(leaf->prev_page());
    if (!p.ok()) return p.status();
  }
  if (leaf->next_page() != kInvalidPage) {
    Result<Page*> p = provider_->GetPage(leaf->next_page());
    if (!p.ok()) return p.status();
  }
  return Status::OK();
}

Status BTree::UnlinkEmptyLeaf(std::vector<PathEntry>* path,
                              MiniTransaction* mtr) {
  Page* leaf = path->back().page;
  Page* parent = (*path)[path->size() - 2].page;
  const int slot = (*path)[path->size() - 2].child_slot;
  AURORA_CHECK(leaf->slot_count() == 0, "unlinking a non-empty leaf");
  AURORA_CHECK(slot >= 0 && DecodeChild(parent->ValueAt(slot)) ==
                                leaf->page_id(),
               "parent slot does not reference the unlinked leaf");

  // Splice the leaf out of the sibling chain: prev <-> next.
  const PageId prev = leaf->prev_page();
  const PageId next = leaf->next_page();
  if (prev != kInvalidPage) {
    Result<Page*> p = provider_->GetPage(prev);
    AURORA_CHECK(p.ok(), "left sibling not resident during unlink");
    LogRecord rec;
    rec.page_id = prev;
    rec.op = RedoOp::kSetNext;
    rec.payload = LogRecord::MakePageIdPayload(next);
    Status s = mtr->Apply(*p, std::move(rec));
    if (!s.ok()) return s;
  }
  if (next != kInvalidPage) {
    Result<Page*> p = provider_->GetPage(next);
    AURORA_CHECK(p.ok(), "right sibling not resident during unlink");
    LogRecord rec;
    rec.page_id = next;
    rec.op = RedoOp::kSetPrev;
    rec.payload = LogRecord::MakePageIdPayload(prev);
    Status s = mtr->Apply(*p, std::move(rec));
    if (!s.ok()) return s;
  }

  // Drop the parent's child entry. The slot-0 key is the subtree's lower
  // bound (the empty key at the root); deleting it outright would strand
  // every key below the next separator during descent, so removing the
  // leftmost child instead re-points the slot-0 separator at its right
  // neighbour and drops that neighbour's own entry.
  if (slot == 0) {
    std::string sep0 = parent->KeyAt(0).ToString();
    std::string key1 = parent->KeyAt(1).ToString();
    std::string child1 = parent->ValueAt(1).ToString();
    LogRecord rec;
    rec.page_id = parent->page_id();
    rec.op = RedoOp::kUpdate;
    rec.payload = LogRecord::MakeKeyValuePayload(sep0, child1);
    Status s = mtr->Apply(parent, std::move(rec));
    if (!s.ok()) return s;
    rec = LogRecord();
    rec.page_id = parent->page_id();
    rec.op = RedoOp::kDelete;
    rec.payload = LogRecord::MakeKeyPayload(key1);
    s = mtr->Apply(parent, std::move(rec));
    if (!s.ok()) return s;
  } else {
    LogRecord rec;
    rec.page_id = parent->page_id();
    rec.op = RedoOp::kDelete;
    rec.payload = LogRecord::MakeKeyPayload(parent->KeyAt(slot));
    Status s = mtr->Apply(parent, std::move(rec));
    if (!s.ok()) return s;
  }
  return provider_->FreePage(leaf, mtr);
}

Status BTree::Delete(const Slice& key, MiniTransaction* mtr) {
  std::vector<PathEntry> path;
  Status s = DescendToLeaf(key, &path);
  if (!s.ok()) return s;
  Page* leaf = path.back().page;
  Slice v;
  if (!leaf->GetRecord(key, &v)) return Status::NotFound("key not found");
  // An emptied leaf is unlinked and freed when its parent can spare the
  // child entry (a parent's last child stays, like the root, so descent
  // always finds a leaf). Residency of everything the unlink touches is
  // ensured before the first mutation; a Busy here restarts cleanly.
  const bool unlink = leaf->slot_count() == 1 && path.size() > 1 &&
                      path[path.size() - 2].page->slot_count() >= 2;
  if (unlink) {
    s = PlanForUnlink(path);
    if (!s.ok()) return s;
  }
  LogRecord rec;
  rec.page_id = leaf->page_id();
  rec.op = RedoOp::kDelete;
  rec.payload = LogRecord::MakeKeyPayload(key);
  s = mtr->Apply(leaf, std::move(rec));
  if (!s.ok()) return s;
  if (unlink) return UnlinkEmptyLeaf(&path, mtr);
  return Status::OK();
}

Status BTree::Scan(const Slice& start, int limit,
                   std::vector<std::pair<std::string, std::string>>* out) {
  std::vector<PathEntry> path;
  Status s = DescendToLeaf(start, &path);
  if (!s.ok()) return s;
  Page* leaf = path.back().page;
  int slot = leaf->LowerBound(start);
  while (limit > 0) {
    if (slot >= leaf->slot_count()) {
      PageId next = leaf->next_page();
      if (next == kInvalidPage) break;
      Result<Page*> p = provider_->GetPage(next);
      if (!p.ok()) return p.status();
      leaf = *p;
      slot = 0;
      continue;
    }
    out->emplace_back(leaf->KeyAt(slot).ToString(),
                      leaf->ValueAt(slot).ToString());
    ++slot;
    --limit;
  }
  return Status::OK();
}

Result<uint64_t> BTree::CountForTesting() {
  // Walk down the leftmost spine, then the leaf chain.
  Result<PageId> root = root_id();
  if (!root.ok()) return root.status();
  PageId id = *root;
  while (true) {
    Result<Page*> p = provider_->GetPage(id);
    if (!p.ok()) return p.status();
    if ((*p)->page_type() == PageType::kBTreeLeaf) break;
    if ((*p)->slot_count() == 0) return Status::Corruption("empty internal");
    id = DecodeChild((*p)->ValueAt(0));
  }
  uint64_t count = 0;
  while (id != kInvalidPage) {
    Result<Page*> p = provider_->GetPage(id);
    if (!p.ok()) return p.status();
    count += (*p)->slot_count();
    id = (*p)->next_page();
  }
  return count;
}

namespace {

struct CheckContext {
  PageProvider* provider;
  int leaf_level_seen = -1;
};

Status CheckSubtree(CheckContext* ctx, PageId id, const std::string* lower,
                    const std::string* upper, int depth) {
  Result<Page*> p = ctx->provider->GetPage(id);
  if (!p.ok()) return p.status();
  Page* page = *p;
  int n = page->slot_count();
  for (int i = 1; i < n; ++i) {
    if (!(page->KeyAt(i - 1) < page->KeyAt(i))) {
      return Status::Corruption("keys out of order in page");
    }
  }
  for (int i = 0; i < n; ++i) {
    Slice k = page->KeyAt(i);
    // The leftmost entry of an internal node may carry the empty key.
    bool leftmost_internal =
        page->page_type() == PageType::kBTreeInternal && i == 0;
    if (lower && !leftmost_internal && k.compare(*lower) < 0) {
      return Status::Corruption("key below subtree lower bound");
    }
    if (upper && !k.empty() && k.compare(*upper) >= 0) {
      return Status::Corruption("key above subtree upper bound");
    }
  }
  if (page->page_type() == PageType::kBTreeLeaf) {
    if (ctx->leaf_level_seen == -1) {
      ctx->leaf_level_seen = depth;
    } else if (ctx->leaf_level_seen != depth) {
      return Status::Corruption("leaves at non-uniform depth");
    }
    return Status::OK();
  }
  if (page->page_type() != PageType::kBTreeInternal) {
    return Status::Corruption("unexpected page type");
  }
  if (n == 0) return Status::Corruption("empty internal page");
  for (int i = 0; i < n; ++i) {
    std::string child_lower = page->KeyAt(i).ToString();
    std::string child_upper;
    const std::string* up = upper;
    if (i + 1 < n) {
      child_upper = page->KeyAt(i + 1).ToString();
      up = &child_upper;
    }
    Slice cv = page->ValueAt(i);
    if (cv.size() != 8) return Status::Corruption("bad child pointer size");
    PageId child = DecodeFixed64(cv.data());
    const std::string* lo = (i == 0 && child_lower.empty()) ? lower : &child_lower;
    Status s = CheckSubtree(ctx, child, lo, up, depth + 1);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

Status BTree::CheckInvariants() {
  Result<PageId> root = root_id();
  if (!root.ok()) return root.status();
  CheckContext ctx{provider_};
  return CheckSubtree(&ctx, *root, nullptr, nullptr, 0);
}

}  // namespace aurora
