#ifndef AURORA_PAGE_PAGE_H_
#define AURORA_PAGE_PAGE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "log/types.h"

namespace aurora {

/// Page types stored in the page header.
enum class PageType : uint8_t {
  kFree = 0,
  kBTreeLeaf = 1,
  kBTreeInternal = 2,
  kMeta = 3,
  kUndo = 4,
  kHeap = 5,  // direct-addressed data pages (hash layout for huge tables)
};

/// A fixed-size slotted page, byte-layout compatible across the writer, the
/// storage nodes and the replicas (pages travel over the simulated network
/// as raw bytes).
///
/// Layout:
///   [0..64)   header (magic, id, page LSN, type, level, schema version,
///             sibling links, slot count, heap end, dead space, CRC)
///   [64..heap_end)                 record heap, grows upward
///   [page_size - 2*nslots..end)    slot directory, grows downward; each
///                                  slot is the uint16 heap offset of a
///                                  record; slots are kept sorted by key
///
/// Records: varint32 key length | key | varint32 value length | value.
/// Deleting leaves dead heap space; the page compacts itself when needed.
///
/// Page mutations are raw operations; write-ahead discipline (a redo record
/// exists before the mutation) is enforced by the MTR/applicator layer, not
/// here.
class Page {
 public:
  static constexpr uint32_t kMagic = 0x41525047;  // "ARPG"
  static constexpr size_t kHeaderSize = 64;
  static constexpr size_t kMinPageSize = 256;
  static constexpr size_t kMaxPageSize = 32768;  // uint16 heap offsets

  /// Constructs an unformatted (all-zero) page buffer.
  explicit Page(size_t page_size);

  Page(const Page&) = default;
  Page& operator=(const Page&) = default;
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  /// Initializes the header; erases all records.
  void Format(PageId id, PageType type, uint8_t level);

  /// True if the page carries a valid magic (has ever been formatted).
  bool IsFormatted() const;

  // --- Header accessors ----------------------------------------------------
  PageId page_id() const;
  Lsn page_lsn() const;
  void set_page_lsn(Lsn lsn);
  PageType page_type() const;
  uint8_t level() const;
  uint32_t schema_version() const;
  void set_schema_version(uint32_t v);
  PageId next_page() const;
  void set_next_page(PageId id);
  PageId prev_page() const;
  void set_prev_page(PageId id);

  // --- Record operations ---------------------------------------------------
  /// Inserts a new record. Fails with OutOfRange when the page is full
  /// (caller must split) and InvalidArgument when the key already exists.
  Status InsertRecord(const Slice& key, const Slice& value);

  /// Removes the record with `key`; NotFound if absent.
  Status DeleteRecord(const Slice& key);

  /// Replaces the value of an existing record; NotFound if absent,
  /// OutOfRange if the larger value doesn't fit even after compaction.
  Status UpdateRecord(const Slice& key, const Slice& value);

  /// Point lookup. The returned slice points into the page; it is
  /// invalidated by any mutation.
  bool GetRecord(const Slice& key, Slice* value) const;

  int slot_count() const;
  /// Key / value of the record in sorted position `slot`.
  Slice KeyAt(int slot) const;
  Slice ValueAt(int slot) const;

  /// First slot whose key is >= `key` (== slot_count() if none).
  int LowerBound(const Slice& key) const;
  /// Last slot whose key is <= `key`, or -1 (internal-node child search).
  int UpperBoundChild(const Slice& key) const;

  /// Contiguous free space available for one more record of `need` bytes
  /// (including its slot); compaction is taken into account.
  bool HasRoomFor(size_t key_size, size_t value_size) const;
  size_t FreeSpace() const;

  // --- Integrity -----------------------------------------------------------
  /// Recomputes and stores the header CRC (over the whole page).
  void UpdateCrc();
  /// Verifies the stored CRC; used by the storage-node scrubber.
  bool VerifyCrc() const;
  /// Flips bits for fault-injection tests.
  void CorruptForTesting(size_t offset);

  // --- Raw access ----------------------------------------------------------
  size_t page_size() const { return data_.size(); }
  const std::string& raw() const { return data_; }
  /// Replaces the entire contents (e.g. from the network). Size must match.
  Status LoadRaw(const Slice& bytes);

 private:
  uint16_t nslots() const;
  void set_nslots(uint16_t n);
  uint16_t heap_end() const;
  void set_heap_end(uint16_t v);
  uint16_t dead_space() const;
  void set_dead_space(uint16_t v);

  uint16_t SlotOffset(int slot) const;
  void SetSlotOffset(int slot, uint16_t off);
  /// Decodes the record at heap offset `off`.
  void RecordAt(uint16_t off, Slice* key, Slice* value) const;
  size_t RecordSize(const Slice& key, const Slice& value) const;
  /// Rewrites the heap dropping dead space.
  void Compact();
  /// Appends a record to the heap; returns its offset. Caller must have
  /// verified space.
  uint16_t AppendToHeap(const Slice& key, const Slice& value);

  std::string data_;
};

}  // namespace aurora

#endif  // AURORA_PAGE_PAGE_H_
