#include "engine/replica.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "log/applicator.h"

namespace aurora {

namespace {

Status DecodeRowValue(const std::string& row, std::string* value) {
  Slice in(row);
  uint32_t version;
  if (!GetVarint32(&in, &version)) return Status::Corruption("bad row");
  value->assign(in.data(), in.size());
  return Status::OK();
}

}  // namespace

ReadReplica::ReadReplica(sim::EventLoop* loop, sim::Network* network,
                         sim::NodeId node_id, sim::Instance* instance,
                         ControlPlane* control_plane, sim::NodeId writer_node,
                         EngineOptions options, Random rng)
    : loop_(loop),
      network_(network),
      node_id_(node_id),
      instance_(instance),
      control_plane_(control_plane),
      writer_node_(writer_node),
      options_(options),
      rng_(rng),
      pool_(options.buffer_pool_pages, options.page_size, &applied_vdl_) {
  network_->Register(node_id_,
                     [this](const sim::Message& m) { HandleMessage(m); });
  ReportReadPointTick();
}

void ReadReplica::HandleMessage(const sim::Message& msg) {
  if (crashed_) return;
  if (!network_->VerifyFrame(msg)) {
    ++stats_.corrupt_frames_dropped;
    return;
  }
  switch (msg.type) {
    case kMsgReplicaLogStream:
      HandleLogStream(msg);
      break;
    case kMsgReadPageResp:
      HandleReadPageResp(msg);
      break;
    default:
      break;
  }
}

void ReadReplica::Crash() {
  crashed_ = true;
  ++generation_;
  pool_.Clear();
  pending_stream_.clear();
  pending_commits_.clear();
  stashed_records_.clear();
  page_waiters_.clear();
  fetch_in_flight_.clear();
  // Cancel outstanding fetch-retry timers and the read-point reporting tick
  // so repeated crash/restart cycles don't leak dead events in the loop.
  for (const auto& [req_id, pr] : pending_reads_) {
    loop_->Cancel(pr.timeout_event);
  }
  pending_reads_.clear();
  loop_->Cancel(read_point_timer_);
}

void ReadReplica::Restart() {
  crashed_ = false;
  ++generation_;
  ReportReadPointTick();
}

void ReadReplica::HandleLogStream(const sim::Message& msg) {
  ReplicaStreamMsg stream;
  if (!ReplicaStreamMsg::DecodeFrom(msg.payload(), &stream).ok()) return;
  if (stream.vdl > vdl_) vdl_ = stream.vdl;
  for (LogRecord& r : stream.records) {
    pending_stream_.push_back(std::move(r));
  }
  for (const auto& [lsn, time] : stream.commits) {
    pending_commits_.emplace(lsn, time);
  }
  ApplyReadyMtrs();
}

void ReadReplica::ApplyReadyMtrs() {
  // Rule (a): apply only records with LSN <= VDL. Rule (b): apply whole
  // MTRs (ending at a CPL) atomically. The stream arrives in LSN order and
  // MTRs are contiguous LSN runs, so we scan for the next CPL and apply the
  // prefix if it is below the VDL.
  while (true) {
    size_t cpl_idx = SIZE_MAX;
    for (size_t i = 0; i < pending_stream_.size(); ++i) {
      if (pending_stream_[i].is_cpl()) {
        cpl_idx = i;
        break;
      }
    }
    if (cpl_idx == SIZE_MAX) break;
    Lsn cpl = pending_stream_[cpl_idx].lsn;
    if (cpl > vdl_) break;
    // Within one event-loop turn the whole MTR applies — atomic from every
    // reader's perspective.
    for (size_t i = 0; i <= cpl_idx; ++i) {
      ApplyRecord(pending_stream_[i]);
    }
    pending_stream_.erase(pending_stream_.begin(),
                          pending_stream_.begin() + cpl_idx + 1);
    applied_vdl_ = std::max(applied_vdl_, cpl);
    ++stats_.mtrs_applied;
  }
  if (pending_stream_.empty() && vdl_ > applied_vdl_) {
    // Stream quiesced: everything durable is applied.
    applied_vdl_ = vdl_;
  }
  // Commit visibility (replica lag measurement).
  while (!pending_commits_.empty() &&
         pending_commits_.begin()->first <= applied_vdl_) {
    uint64_t writer_time = pending_commits_.begin()->second;
    pending_commits_.erase(pending_commits_.begin());
    stats_.lag_us.Record(loop_->now() >= writer_time
                             ? loop_->now() - writer_time
                             : 0);
  }
}

void ReadReplica::ApplyRecord(const LogRecord& rec) {
  if (fetch_in_flight_.count(rec.page_id)) {
    stashed_records_[rec.page_id].push_back(rec);
    return;
  }
  Page* page = pool_.Lookup(rec.page_id);
  if (page == nullptr) {
    ++stats_.records_discarded;
    return;
  }
  Status s = LogApplicator::Apply(rec, page);
  if (!s.ok()) {
    // Should not happen (deterministic redo); drop the page and let a
    // future read re-fetch a consistent image.
    AURORA_WARN("replica apply failed: %s", s.ToString().c_str());
    pool_.Discard(rec.page_id);
    return;
  }
  ++stats_.records_applied;
}

Result<Page*> ReadReplica::GetPage(PageId id) {
  Page* page = pool_.Lookup(id);
  if (page != nullptr) return page;
  last_miss_ = id;
  StartPageFetch(id);
  return Status::Busy("page miss");
}

void ReadReplica::StartPageFetch(PageId id) {
  if (fetch_in_flight_.count(id)) return;
  uint64_t req = next_req_++;
  fetch_in_flight_[id] = req;
  PendingRead pr;
  pr.page = id;
  pr.pg = static_cast<PgId>(id / options_.pages_per_pg);
  pr.read_point = applied_vdl_;
  pending_reads_[req] = pr;
  ++stats_.storage_page_reads;
  IssuePageRead(req);
}

void ReadReplica::IssuePageRead(uint64_t req_id) {
  auto it = pending_reads_.find(req_id);
  if (it == pending_reads_.end()) return;
  PendingRead& pr = it->second;
  const PgMembership& members = control_plane_->membership(pr.pg);
  const sim::Topology* topo = control_plane_->topology();
  // Prefer same-AZ replicas; rotate through the rest on retry.
  std::vector<int> order;
  for (int i = 0; i < kReplicasPerPg; ++i) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return topo->SameAz(node_id_, members.nodes[a]) >
           topo->SameAz(node_id_, members.nodes[b]);
  });
  sim::NodeId target = members.nodes[order[pr.attempt % order.size()]];

  ReadPageReqMsg req;
  req.req_id = req_id;
  req.pg = pr.pg;
  req.page = pr.page;
  req.read_point = pr.read_point;
  std::string payload;
  req.EncodeTo(&payload);
  network_->Send(node_id_, target, kMsgReadPageReq, std::move(payload));

  const uint64_t gen = generation_;
  pr.timeout_event =
      loop_->Schedule(options_.read_retry_timeout, [this, gen, req_id] {
        if (gen != generation_) return;
        auto it = pending_reads_.find(req_id);
        if (it == pending_reads_.end()) return;
        ++it->second.attempt;
        IssuePageRead(req_id);
      });
}

void ReadReplica::HandleReadPageResp(const sim::Message& msg) {
  ReadPageRespMsg resp;
  if (!ReadPageRespMsg::DecodeFrom(msg.payload(), &resp).ok()) return;
  auto it = pending_reads_.find(resp.req_id);
  if (it == pending_reads_.end()) return;
  PendingRead& pr = it->second;
  loop_->Cancel(pr.timeout_event);

  if (resp.status_code != static_cast<uint8_t>(Status::Code::kOk)) {
    ++pr.attempt;
    const uint64_t gen = generation_;
    const uint64_t req_id = resp.req_id;
    pr.timeout_event = loop_->Schedule(Millis(1), [this, gen, req_id] {
      if (gen != generation_) return;
      IssuePageRead(req_id);
    });
    return;
  }

  Page page(options_.page_size);
  if (!page.LoadRaw(resp.page_bytes).ok() || !page.VerifyCrc()) {
    ++pr.attempt;
    IssuePageRead(resp.req_id);
    return;
  }
  PageId id = pr.page;
  pending_reads_.erase(it);
  fetch_in_flight_.erase(id);
  Page* installed = pool_.Install(id, std::move(page));
  pool_.EvictExcess();

  // Replay records that streamed past while the fetch was in flight
  // (idempotent: anything already in the fetched image is skipped by LSN).
  auto sit = stashed_records_.find(id);
  if (sit != stashed_records_.end()) {
    for (const LogRecord& r : sit->second) {
      Status s = LogApplicator::Apply(r, installed);
      if (!s.ok()) {
        pool_.Discard(id);
        break;
      }
    }
    stashed_records_.erase(sit);
  }

  auto wit = page_waiters_.find(id);
  if (wit == page_waiters_.end()) return;
  auto waiters = std::move(wit->second);
  page_waiters_.erase(wit);
  for (auto& w : waiters) w();
}

void ReadReplica::RunWithRetries(std::function<Status()> attempt,
                                 std::function<void(Status)> done) {
  last_miss_ = kInvalidPage;
  Status s = attempt();
  if (s.IsBusy() && last_miss_ != kInvalidPage) {
    PageId missed = last_miss_;
    page_waiters_[missed].push_back(
        [this, attempt = std::move(attempt), done = std::move(done)]() {
          RunWithRetries(attempt, done);
        });
    return;
  }
  pool_.EvictExcess();
  done(s);
}

void ReadReplica::Get(PageId table, const std::string& key,
                      std::function<void(Result<std::string>)> done) {
  if (crashed_) {
    done(Status::Unavailable("replica down"));
    return;
  }
  ++stats_.reads;
  SimTime started = loop_->now();
  instance_->Execute(options_.cpu_per_statement, [this, table, key, done,
                                                  started]() {
    auto result = std::make_shared<std::string>();
    auto attempt = [this, table, key, result]() -> Status {
      BTree tree(this, table);
      return tree.Get(key, result.get());
    };
    RunWithRetries(attempt, [this, done, result, started](Status s) {
      stats_.read_latency_us.Record(loop_->now() - started);
      if (!s.ok()) {
        done(s);
        return;
      }
      std::string value;
      Status ds = DecodeRowValue(*result, &value);
      if (ds.ok()) {
        done(std::move(value));
      } else {
        done(ds);
      }
    });
  });
}

void ReadReplica::TableAnchor(const std::string& name,
                              std::function<void(Result<PageId>)> done) {
  auto anchor = std::make_shared<PageId>(kInvalidPage);
  std::string cat_key = "tbl:" + name;
  auto attempt = [this, cat_key, anchor]() -> Status {
    Result<Page*> meta = GetPage(0);
    if (!meta.ok()) return meta.status();
    pool_.Pin(0);
    Slice v;
    if (!(*meta)->GetRecord(cat_key, &v) || v.size() != 12) {
      return Status::NotFound("no such table");
    }
    *anchor = DecodeFixed64(v.data());
    return Status::OK();
  };
  RunWithRetries(attempt, [done, anchor](Status s) {
    if (s.ok()) {
      done(*anchor);
    } else {
      done(s);
    }
  });
}

void ReadReplica::ReportReadPointTick() {
  const uint64_t gen = generation_;
  read_point_timer_ = loop_->Schedule(options_.pgmrpl_interval, [this, gen] {
    if (gen != generation_ || crashed_) return;
    ReportReadPointTick();
  });
  if (applied_vdl_ == kInvalidLsn) return;
  ReplicaReadPointMsg m;
  m.read_point = applied_vdl_;
  std::string payload;
  m.EncodeTo(&payload);
  network_->Send(node_id_, writer_node_, kMsgReplicaReadPoint,
                 std::move(payload));
}

}  // namespace aurora
