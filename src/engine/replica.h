#ifndef AURORA_ENGINE_REPLICA_H_
#define AURORA_ENGINE_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "engine/buffer_pool.h"
#include "engine/options.h"
#include "page/btree.h"
#include "page/page_provider.h"
#include "sim/event_loop.h"
#include "sim/instance.h"
#include "sim/network.h"
#include "storage/control_plane.h"
#include "storage/wire.h"

namespace aurora {

/// Counters for one read replica.
struct ReplicaStats {
  uint64_t records_applied = 0;
  uint64_t records_discarded = 0;  // page not in cache — just dropped
  uint64_t mtrs_applied = 0;
  uint64_t reads = 0;
  uint64_t storage_page_reads = 0;
  /// Frames that failed the fabric checksum at this replica and were dropped.
  uint64_t corrupt_frames_dropped = 0;
  Histogram lag_us;  // commit-visibility lag (Table 4 / Figure 11)
  Histogram read_latency_us;
};

/// An Aurora read replica (§4.2.4): mounts the same storage volume as the
/// writer, consumes the writer's redo stream, and serves snapshot reads.
///
/// "The replica obeys the following two important rules while applying log
/// records: (a) the only log records that will be applied are those whose
/// LSN is less than or equal to the VDL, and (b) the log records that are
/// part of a single mini-transaction are applied atomically in the
/// replica's cache." Records for pages not in the cache are discarded —
/// replicas add no storage or write I/O cost.
class ReadReplica : public PageProvider {
 public:
  ReadReplica(sim::EventLoop* loop, sim::Network* network, sim::NodeId node_id,
              sim::Instance* instance, ControlPlane* control_plane,
              sim::NodeId writer_node, EngineOptions options, Random rng);

  ReadReplica(const ReadReplica&) = delete;
  ReadReplica& operator=(const ReadReplica&) = delete;

  sim::NodeId node_id() const { return node_id_; }

  /// Snapshot point read at the replica's current read point.
  void Get(PageId table, const std::string& key,
           std::function<void(Result<std::string>)> done);

  /// Resolves a table name through the catalog (meta page fetch on miss).
  void TableAnchor(const std::string& name,
                   std::function<void(Result<PageId>)> done);

  /// The replica's visibility point: the highest VDL for which every MTR
  /// has been applied to the cache.
  Lsn read_point() const { return applied_vdl_; }
  Lsn known_vdl() const { return vdl_; }

  void Crash();
  void Restart();

  const ReplicaStats& stats() const { return stats_; }
  ReplicaStats* mutable_stats() { return &stats_; }
  BufferPool* buffer_pool() { return &pool_; }

  // --- PageProvider ---------------------------------------------------------
  Result<Page*> GetPage(PageId id) override;
  Result<Page*> AllocatePage(PageType, uint8_t, MiniTransaction*) override {
    return Status::NotSupported("replicas are read-only");
  }
  Status FreePage(Page*, MiniTransaction*) override {
    return Status::NotSupported("replicas are read-only");
  }
  PageId last_miss() const override { return last_miss_; }
  size_t page_size() const override { return options_.page_size; }

 private:
  void HandleMessage(const sim::Message& msg);
  void HandleLogStream(const sim::Message& msg);
  void ApplyReadyMtrs();
  void ApplyRecord(const LogRecord& rec);
  void StartPageFetch(PageId id);
  void IssuePageRead(uint64_t req_id);
  void HandleReadPageResp(const sim::Message& msg);
  void RunWithRetries(std::function<Status()> attempt,
                      std::function<void(Status)> done);
  void ReportReadPointTick();

  struct PendingRead {
    PageId page;
    PgId pg;
    Lsn read_point;
    int attempt = 0;
    sim::EventId timeout_event = 0;
  };

  sim::EventLoop* loop_;
  sim::Network* network_;
  sim::NodeId node_id_;
  sim::Instance* instance_;
  ControlPlane* control_plane_;
  sim::NodeId writer_node_;
  EngineOptions options_;
  Random rng_;

  Lsn vdl_ = kInvalidLsn;          // latest VDL heard from the writer
  Lsn applied_vdl_ = kInvalidLsn;  // cache consistent up to here
  BufferPool pool_;

  /// Stream records not yet applied (waiting for their MTR's CPL <= VDL).
  std::deque<LogRecord> pending_stream_;
  /// Commit notifications not yet visible.
  std::map<Lsn, uint64_t> pending_commits_;

  /// Records addressed to pages whose fetch is in flight (replayed after
  /// install; application is idempotent).
  std::map<PageId, std::vector<LogRecord>> stashed_records_;
  std::map<PageId, std::vector<std::function<void()>>> page_waiters_;
  std::map<PageId, uint64_t> fetch_in_flight_;
  std::map<uint64_t, PendingRead> pending_reads_;
  uint64_t next_req_ = 1;
  PageId last_miss_ = kInvalidPage;

  bool crashed_ = false;
  uint64_t generation_ = 0;
  sim::EventId read_point_timer_ = 0;
  ReplicaStats stats_;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_REPLICA_H_
