#ifndef AURORA_ENGINE_DATABASE_H_
#define AURORA_ENGINE_DATABASE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "engine/buffer_pool.h"
#include "engine/lock_manager.h"
#include "engine/options.h"
#include "log/mtr.h"
#include "page/btree.h"
#include "page/page_provider.h"
#include "quorum/quorum.h"
#include "sim/event_loop.h"
#include "sim/instance.h"
#include "sim/network.h"
#include "storage/control_plane.h"
#include "storage/wire.h"

namespace aurora {

/// Writer-side counters. Network I/O counts live in sim::Network; these are
/// engine-level events.
struct EngineStats {
  uint64_t txns_started = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t deletes = 0;
  uint64_t storage_page_reads = 0;   // cache-miss fetches issued
  uint64_t log_batches_sent = 0;     // batch sends (x6 replicas on the wire)
  uint64_t log_records_sent = 0;
  uint64_t log_bytes_generated = 0;  // bytes of redo produced (pre-fanout)
  uint64_t backpressure_stalls = 0;  // ops deferred by the LAL (§4.2.1)
  uint64_t batch_retries = 0;
  uint64_t read_retries = 0;
  /// Allocator free-list traffic: pages returned by empty-leaf unlinking
  /// and pages handed back out instead of growing the page space (§5 undo
  /// churn must reach a steady-state footprint).
  uint64_t pages_freed = 0;
  uint64_t pages_reused = 0;
  /// Storage rejections carrying a newer volume epoch (this writer has been
  /// superseded); the first one demotes the writer (see fenced()).
  uint64_t fenced_rejections = 0;
  /// Membership-config refreshes forced by kStaleConfig NAKs from storage
  /// (a repair/migration moved a replica while this writer held the old
  /// member list). Each one re-reads the control plane and resends.
  uint64_t stale_config_refreshes = 0;
  /// Frames that failed the fabric checksum at this node and were dropped.
  uint64_t corrupt_frames_dropped = 0;
  /// Bytes NOT re-serialized thanks to single-encode fan-out: the shared
  /// WriteBatchMsg body is encoded once per (re)send and shared across the
  /// 6 segment replicas; this accumulates (sends - 1) * body_size.
  uint64_t batch_encode_bytes_saved = 0;
  Histogram commit_latency_us;
  Histogram read_latency_us;
  Histogram write_latency_us;
  // Write-path stage tracing (Figure 9-style breakdown): per-batch
  // timestamps at append -> flush -> first storage ack -> write quorum.
  Histogram batch_append_to_flush_us;
  Histogram batch_flush_to_first_ack_us;
  Histogram batch_first_ack_to_quorum_us;
  Histogram batch_append_to_quorum_us;
  // Read-path tracing: storage fetch round trip and how many segment
  // replicas were tried before one served the page.
  Histogram page_fetch_latency_us;
  Histogram read_retry_depth;
};

/// Transaction state as persisted in the system transaction table.
enum class TxnState : uint8_t {
  kActive = 1,
  kCommitted = 2,
  kAborted = 3,
};

class ReadReplica;

/// The Aurora database engine — the single writer instance of Figure 3/5.
///
/// It keeps the top three-quarters of a traditional kernel (transactions,
/// locking, buffer cache, B+-tree access methods, undo management) and
/// offloads redo logging, durable storage, page materialization and crash
/// recovery to the storage service: the only thing it ever sends storage is
/// redo log records (§3.2).
///
/// All public operations are asynchronous (the simulation is event-driven):
/// they may complete synchronously or via the supplied callback, exactly
/// once either way.
///
/// Consistency machinery implemented here, per §4:
///  - LSN allocation with the LAL back-pressure bound;
///  - per-PG backlinks on every record;
///  - VDL maintenance from per-batch write-quorum acknowledgements;
///  - asynchronous group commit (a commit completes when VDL >= its commit
///    LSN — worker threads never stall on commits);
///  - single-segment reads at a VDL read point (no read quorum in the
///    normal path), with PGMRPL broadcast for storage GC;
///  - quorum-based crash recovery: inventory union -> VCL -> VDL ->
///    epoch-stamped truncation -> undo of in-flight transactions.
class Database : public WalSink, public PageProvider {
 public:
  Database(sim::EventLoop* loop, sim::Network* network, sim::NodeId node_id,
           sim::Instance* instance, ControlPlane* control_plane,
           EngineOptions options, Random rng);
  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Volume lifecycle ----------------------------------------------------
  /// Formats a brand-new volume (meta page + system trees) and waits for
  /// durability.
  void Bootstrap(std::function<void(Status)> done);

  /// Crash recovery (§4.3): runs the volume recovery protocol against the
  /// storage fleet, then rolls back in-flight transactions. `done` fires
  /// when the database is open for traffic (undo completes in background;
  /// see set_undo_complete_callback).
  void Recover(std::function<void(Status)> done);

  /// Simulates an instance crash: all volatile state (cache, locks, active
  /// txns, unflushed batches) is discarded. Call Recover() to come back.
  void Crash();

  /// Fires when background undo of in-flight transactions finishes after
  /// Recover().
  void set_undo_complete_callback(std::function<void()> cb) {
    undo_complete_cb_ = std::move(cb);
  }

  // --- Schema ---------------------------------------------------------------
  void CreateTable(const std::string& name, std::function<void(Status)> done);
  /// Anchor page id for a table; NotFound if absent.
  Result<PageId> TableAnchor(const std::string& name);

  /// Registers a pre-loaded (snapshot-restored) table without writing its
  /// pages through the log: reserves a page-id range in the allocator and
  /// adds the catalog entry. `plan` receives the first reserved page id and
  /// returns how many pages to reserve (the caller builds its synthetic
  /// layout there). Completes with the anchor page id once durable.
  void AttachPreloadedTable(const std::string& name,
                            std::function<uint64_t(PageId)> plan,
                            std::function<void(Result<PageId>)> done);

  /// Online DDL (§7.3): bumps the table's schema version. Existing pages
  /// upgrade lazily on modification (modify-on-write); readers decode rows
  /// using the per-page version. Returns the new version.
  void AlterTableSchema(const std::string& name,
                        std::function<void(Result<uint32_t>)> done);

  // --- Transactions ----------------------------------------------------------
  TxnId Begin();
  /// Upsert. The value replaces any existing value for the key.
  void Put(TxnId txn, PageId table, const std::string& key,
           const std::string& value, std::function<void(Status)> done);
  /// Point read (S-locked: repeatable read).
  void Get(TxnId txn, PageId table, const std::string& key,
           std::function<void(Result<std::string>)> done);
  /// Snapshot point read — no lock, reads current committed state.
  void SnapshotGet(TxnId txn, PageId table, const std::string& key,
                   std::function<void(Result<std::string>)> done);
  void Delete(TxnId txn, PageId table, const std::string& key,
              std::function<void(Status)> done);
  /// Range scan of up to `limit` rows starting at `start` (S-locks rows).
  void Scan(TxnId txn, PageId table, const std::string& start, int limit,
            std::function<void(
                Result<std::vector<std::pair<std::string, std::string>>>)>
                done);
  void Commit(TxnId txn, std::function<void(Status)> done);
  void Rollback(TxnId txn, std::function<void(Status)> done);

  /// Zero-Downtime Patching (§7.4, Figure 12): waits for an instant with no
  /// in-flight transactions (new transactions' statements are held at the
  /// engine door meanwhile), "spools" session state, swaps the engine for
  /// `patch_time`, reloads, and releases the held work. In-flight
  /// connections never see an error — unlike a restart, which drops every
  /// session and runs recovery.
  void ZeroDowntimePatch(SimDuration patch_time,
                         std::function<void(Status)> done);
  bool patching() const { return paused_; }

  // --- Replication -----------------------------------------------------------
  void AttachReplica(sim::NodeId replica_node);
  void DetachReplica(sim::NodeId replica_node);

  // --- Introspection ----------------------------------------------------------
  Lsn vdl() const { return vdl_; }
  Lsn vcl() const { return vcl_; }
  Lsn next_lsn() const { return next_lsn_; }
  Epoch volume_epoch() const { return volume_epoch_; }
  Lsn max_allocated_lsn() const { return max_allocated_; }
  bool is_open() const { return open_; }
  /// True once storage has rejected this writer with a newer volume epoch
  /// (a replica was promoted while we were partitioned). A fenced writer
  /// stops retrying batches, fails queued and new work with Status::Fenced,
  /// and never acks another commit — graceful demotion, not an endless
  /// retry loop.
  bool fenced() const { return fenced_; }
  bool in_backpressure() const {
    // The annulled range left by recovery (VDL, VDL+LAL] is a hole in the
    // LSN space, not outstanding log volume — exclude it from the LAL
    // window until the VDL passes it.
    Lsn debt = lal_gap_top_ > vdl_ ? lal_gap_top_ - vdl_ : 0;
    return next_lsn_ - vdl_ - debt > options_.lal;
  }
  size_t active_txns() const { return txns_.size(); }
  const EngineStats& stats() const { return stats_; }
  EngineStats* mutable_stats() { return &stats_; }
  BufferPool* buffer_pool() { return &pool_; }
  LockManager* lock_manager() { return &locks_; }
  const EngineOptions& options() const { return options_; }
  sim::NodeId node_id() const { return node_id_; }
  ControlPlane* control_plane() { return control_plane_; }

  // --- WalSink ----------------------------------------------------------------
  Status CommitMtr(MiniTransaction* mtr) override;

  // --- PageProvider ------------------------------------------------------------
  Result<Page*> GetPage(PageId id) override;
  Result<Page*> AllocatePage(PageType type, uint8_t level,
                             MiniTransaction* mtr) override;
  Status FreePage(Page* page, MiniTransaction* mtr) override;
  PageId last_miss() const override { return last_miss_; }
  size_t page_size() const override { return options_.page_size; }

 private:
  friend class ReadReplica;

  struct Txn {
    TxnId id;
    TxnState state = TxnState::kActive;
    /// (seq, table, key, had_old, old_value) — in-memory mirror of the
    /// durable undo records, for fast rollback.
    struct UndoEntry {
      uint64_t seq;
      PageId table;
      std::string key;
      bool had_old;
      std::string old_value;
    };
    std::vector<UndoEntry> undo;
    uint64_t next_undo_seq = 0;
    Lsn commit_lsn = kInvalidLsn;
    SimTime commit_requested_at = 0;
    std::function<void(Status)> commit_cb;
    bool durably_registered = false;  // row exists in the txn table
  };

  struct PendingBatch {
    PgId pg;
    std::vector<LogRecord> records;
    size_t bytes = 0;
    sim::EventId linger_event = 0;
    bool linger_armed = false;
    SimTime first_append_at = 0;
  };

  struct OutstandingBatch {
    PgId pg;
    uint64_t seq;
    std::vector<Lsn> lsns;
    std::vector<LogRecord> records;  // kept for per-replica (re)sends
    WriteTracker tracker;
    sim::EventId retry_event = 0;
    int attempts = 0;
    // Stage timestamps for the write-path tracing histograms.
    SimTime appended_at = 0;
    SimTime flushed_at = 0;
    SimTime first_ack_at = 0;
    explicit OutstandingBatch(QuorumConfig q) : tracker(q) {}
  };

  struct PageWaiter {
    std::function<void()> retry;
  };

  struct PendingRead {
    PageId page;
    PgId pg;
    Lsn read_point;
    int replica_tried = 0;
    sim::EventId timeout_event = 0;
    SimTime started_at = 0;
  };

  // --- Op plumbing ---------------------------------------------------------
  /// Runs `attempt` now and re-runs it after each page fetch it triggers.
  /// `attempt` returns Busy (after a GetPage miss) to be retried, anything
  /// else to finish.
  void RunWithRetries(std::function<Status()> attempt,
                      std::function<void(Status)> done);
  /// Charges CPU, then runs.
  void ChargeCpu(SimDuration cost, std::function<void()> then);
  void DeferForBackpressure(std::function<void()> retry);
  void DrainBackpressure();

  // --- Write path ------------------------------------------------------------
  PgId PgOf(PageId page) const {
    return static_cast<PgId>(page / options_.pages_per_pg);
  }
  void EnsurePgExists(PgId pg);
  /// The writer's *cached* view of a PG's membership. Data-path sends use
  /// this cache (stamped with its config_epoch) rather than reading the
  /// control plane each time: storage NAKs a stale epoch with kStaleConfig,
  /// which is what forces RefreshPgConfig — the end-to-end membership-epoch
  /// protocol of DESIGN.md §12.
  struct CachedConfig {
    std::array<sim::NodeId, kReplicasPerPg> nodes;
    uint64_t config_epoch = 0;
  };
  const CachedConfig& PgConfig(PgId pg);
  void RefreshPgConfig(PgId pg);
  void AppendToBatch(const LogRecord& record);
  void FlushBatch(PgId pg);
  void SendBatch(OutstandingBatch* batch);
  void HandleWriteAck(const sim::Message& msg);
  void AdvanceDurability();
  void ProcessCommitQueue();
  /// Demotes this writer after a kFenced rejection from storage: cancels
  /// every outstanding batch retry, fails queued commits and waiters, and
  /// closes the engine so new operations fail fast with Status::Fenced.
  void BecomeFenced(Epoch fencing_epoch);

  // --- Read path -------------------------------------------------------------
  void StartPageFetch(PageId id);
  void IssuePageRead(uint64_t req_id);
  void HandleReadPageResp(const sim::Message& msg);
  sim::NodeId PickReadReplicaNode(PgId pg, Lsn read_point, int attempt);

  // --- Txn internals -----------------------------------------------------------
  Txn* FindTxn(TxnId id);
  /// One MTR: row change + undo append + (lazily) txn-table registration.
  Status WriteRowAttempt(Txn* txn, PageId table, const std::string& key,
                         const std::string* value /* null = delete */);
  void RollbackInternal(Txn* txn, std::function<void(Status)> done);
  void UndoOneEntry(Txn* txn, size_t remaining,
                    std::function<void(Status)> done);
  void PurgeTick();
  void PurgeChain(uint64_t gen, size_t budget);
  void PurgeOne(uint64_t gen, std::function<void()> next);
  void UndoNextRecoveredTxn(std::shared_ptr<std::vector<TxnId>> actives,
                            size_t idx);

  // --- System trees ------------------------------------------------------------
  static std::string UndoKey(TxnId txn, uint64_t seq);
  static std::string TxnKey(TxnId txn);
  Status EnsureSystemTrees();

  // --- Watermarks ---------------------------------------------------------------
  void PgmrplTick();
  Lsn ComputePgmrpl() const;
  /// Publishes a consistent (VDL, pg-tail) completeness snapshot to the
  /// PG's segments so idle PGs can serve current read points (§4.2.3).
  void PublishPgSnapshot(PgId pg);

  // --- Replication ----------------------------------------------------------------
  void ReplicaShipTick();
  void HandleReplicaReadPoint(const sim::Message& msg);

  // --- Recovery --------------------------------------------------------------
  struct RecoveryState;
  void RecoveryCollectInventories(std::shared_ptr<RecoveryState> rs);
  void HandleInventoryResp(const sim::Message& msg);
  void RecoveryComputeAndTruncate(std::shared_ptr<RecoveryState> rs);
  /// (Re)sends truncate requests to every PG lacking a write quorum of acks
  /// and re-arms the retry timer. Plain member function instead of a
  /// self-capturing closure so no shared_ptr cycle can keep the recovery
  /// state (and everything it captures) alive forever.
  void RecoveryResendTruncates(std::shared_ptr<RecoveryState> rs);
  void HandleTruncateAck(const sim::Message& msg);
  void RecoveryFinish(std::shared_ptr<RecoveryState> rs);
  void StartBackgroundUndo();

  void HandleMessage(const sim::Message& msg);
  void ScheduleTimers();

  sim::EventLoop* loop_;
  sim::Network* network_;
  sim::NodeId node_id_;
  sim::Instance* instance_;
  ControlPlane* control_plane_;
  EngineOptions options_;
  Random rng_;

  // Durability watermarks (§4.1/4.2).
  Lsn next_lsn_ = 1;
  Lsn vdl_ = kInvalidLsn;
  Lsn vcl_ = kInvalidLsn;
  Epoch volume_epoch_ = 1;
  Lsn last_vol_lsn_ = kInvalidLsn;  // volume-wide backlink tail
  Lsn lal_gap_top_ = kInvalidLsn;   // top of the annulled post-recovery range
  std::map<PgId, Lsn> last_lsn_per_pg_;
  std::set<Lsn> unacked_lsns_;
  std::set<Lsn> pending_cpls_;
  Lsn max_allocated_ = kInvalidLsn;

  BufferPool pool_;
  LockManager locks_;

  // System trees.
  PageId meta_page_id_ = 0;
  std::unique_ptr<BTree> txn_table_;
  std::unique_ptr<BTree> undo_tree_;
  /// Cached schema versions by table anchor (authoritative copy lives in
  /// the catalog records on the meta page).
  std::map<PageId, uint32_t> table_versions_;

  /// Generic durability waiters: fired once VDL reaches the key.
  std::multimap<Lsn, std::function<void()>> durable_waiters_;

  // Transactions.
  TxnId next_txn_ = 1;
  std::map<TxnId, std::unique_ptr<Txn>> txns_;
  /// Commit queue ordered by commit LSN (§4.2.2).
  std::map<Lsn, TxnId> commit_queue_;
  std::deque<std::function<void()>> backpressure_queue_;
  std::deque<TxnId> purge_queue_;

  // Write pipeline.
  std::map<PgId, PendingBatch> pending_batches_;
  uint64_t next_batch_seq_ = 1;
  std::map<uint64_t, std::unique_ptr<OutstandingBatch>> outstanding_;
  /// Known SCL per (pg, replica) from acks — read routing.
  std::map<std::pair<PgId, ReplicaIdx>, Lsn> replica_scl_;
  /// Cached membership per PG (see PgConfig).
  std::map<PgId, CachedConfig> pg_config_;

  // Read pipeline.
  std::map<PageId, std::vector<PageWaiter>> page_waiters_;
  std::map<PageId, uint64_t> fetch_in_flight_;  // page -> req id
  std::map<uint64_t, PendingRead> pending_reads_;
  uint64_t next_req_ = 1;
  PageId last_miss_ = kInvalidPage;

  // Replication.
  std::vector<sim::NodeId> replicas_;
  std::vector<LogRecord> replica_stream_buffer_;
  std::vector<std::pair<Lsn, uint64_t>> replica_commit_buffer_;
  std::map<sim::NodeId, Lsn> replica_read_points_;
  Lsn last_shipped_vdl_ = kInvalidLsn;
  PgId pgmrpl_cursor_ = 0;

  // Recovery.
  std::shared_ptr<RecoveryState> recovery_;
  std::function<void()> undo_complete_cb_;

  // Periodic-tick and ZDP timers; stored so Crash() can cancel them (the
  // generation guard neutralizes late firings, but a cancelled event also
  // releases its closure and its pending-queue slot immediately).
  sim::EventId pgmrpl_timer_ = 0;
  sim::EventId purge_timer_ = 0;
  sim::EventId ship_timer_ = 0;
  sim::EventId zdp_timer_ = 0;

  bool open_ = false;
  bool fenced_ = false;           // demoted by a newer volume epoch
  bool paused_ = false;           // ZDP engine swap in progress
  TxnId pause_watermark_ = 0;     // txns >= this are held during ZDP
  uint64_t generation_ = 0;
  Lsn last_broadcast_pgmrpl_ = kInvalidLsn;
  // Scratch state threaded through RunWithRetries attempts (single-threaded
  // event loop; one attempt runs at a time).
  Lsn durable_lsn_for_ddl_ = kInvalidLsn;
  uint32_t ddl_result_version_ = 0;
  bool purge_done_ = false;
  EngineStats stats_;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_DATABASE_H_
