#ifndef AURORA_ENGINE_LOCK_MANAGER_H_
#define AURORA_ENGINE_LOCK_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "log/types.h"
#include "sim/event_loop.h"

namespace aurora {

/// Lock modes: shared (readers) and exclusive (writers).
enum class LockMode : uint8_t { kShared, kExclusive };

/// Row-level two-phase locking with FIFO queuing and wait-for-graph deadlock
/// detection. Concurrency control lives entirely in the database engine —
/// the storage service "presents a unified view of the underlying data"
/// (§5) and knows nothing about locks.
///
/// Single-threaded like the rest of the simulation: Lock() either grants
/// synchronously (returns OK), queues (returns Busy; `granted` fires later),
/// or detects a deadlock (returns Aborted; the caller must roll back).
class LockManager {
 public:
  struct Stats {
    uint64_t grants = 0;
    uint64_t waits = 0;
    uint64_t deadlocks = 0;
    uint64_t timeouts = 0;
  };

  LockManager(sim::EventLoop* loop, SimDuration lock_timeout)
      : loop_(loop), lock_timeout_(lock_timeout) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests `mode` on (tree, key) for `txn`.
  /// - OK: granted immediately (also when already held; S->X upgrades are
  ///   granted when `txn` is the sole holder, queued otherwise).
  /// - Busy: queued; `granted` will be invoked exactly once with OK (lock
  ///   acquired), Aborted (deadlock chose this waiter as victim), or
  ///   TimedOut.
  /// - Aborted: the request would deadlock; nothing was queued.
  Status Lock(TxnId txn, PageId tree, const std::string& key, LockMode mode,
              std::function<void(Status)> granted);

  /// Releases everything `txn` holds and cancels its waits; queued waiters
  /// may be granted (their callbacks fire synchronously).
  void ReleaseAll(TxnId txn);

  /// Drops every lock and waiter without firing callbacks (crash
  /// simulation: the instance's volatile state evaporates).
  void Reset();

  /// Number of lock names with at least one holder or waiter.
  size_t ActiveLocks() const { return locks_.size(); }
  size_t WaitingTxns() const;
  const Stats& stats() const { return stats_; }

 private:
  struct LockName {
    PageId tree;
    std::string key;
    bool operator<(const LockName& o) const {
      return tree != o.tree ? tree < o.tree : key < o.key;
    }
  };

  struct Waiter {
    TxnId txn;
    LockMode mode;
    std::function<void(Status)> granted;
    sim::EventId timeout_event;
  };

  struct LockState {
    std::set<TxnId> shared_holders;
    TxnId exclusive_holder = kInvalidTxn;
    std::deque<Waiter> waiters;
    bool held() const {
      return exclusive_holder != kInvalidTxn || !shared_holders.empty();
    }
  };

  /// True if granting (txn, mode) is compatible with current holders.
  static bool Compatible(const LockState& s, TxnId txn, LockMode mode);
  /// Grants as many queued waiters as possible (FIFO, no barging).
  void GrantWaiters(const LockName& name);
  /// Would `waiter` waiting on `holders` close a cycle in the wait-for
  /// graph?
  bool WouldDeadlock(TxnId waiter, const LockState& s);
  void CollectBlockers(const LockState& s, TxnId skip,
                       std::set<TxnId>* out) const;
  void RemoveWaiter(const LockName& name, TxnId txn, Status reason);

  sim::EventLoop* loop_;
  SimDuration lock_timeout_;
  std::map<LockName, LockState> locks_;
  /// txn -> lock names it holds (for ReleaseAll).
  std::map<TxnId, std::set<LockName>> held_by_;
  /// txn -> the lock name it is currently waiting on (one at a time).
  std::map<TxnId, LockName> waiting_on_;
  Stats stats_;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_LOCK_MANAGER_H_
