#ifndef AURORA_ENGINE_BUFFER_POOL_H_
#define AURORA_ENGINE_BUFFER_POOL_H_

#include <functional>
#include <list>
#include <map>
#include <set>

#include "common/result.h"
#include "log/types.h"
#include "page/page.h"

namespace aurora {

/// Buffer-pool counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t eviction_blocked = 0;  // candidate page had page LSN > VDL
  uint64_t installs = 0;
};

/// The writer's (and each replica's) page cache.
///
/// Aurora never writes a page back on eviction — pages on storage are
/// materialized from the log — but it enforces the §4.2.3 rule: a page may
/// be evicted only if its page LSN is at or below the VDL, guaranteeing that
/// (a) every change to the page is hardened in the durable log and (b) a
/// re-fetch at read-point = VDL returns the latest version. (The paper's
/// text states this inequality reversed; see DESIGN.md for the erratum
/// note.)
///
/// Misses are asynchronous: Lookup returns nullptr, the caller starts a
/// storage fetch, and Install() makes the page resident.
class BufferPool {
 public:
  /// `vdl` is consulted at eviction time and must outlive the pool.
  BufferPool(size_t capacity_pages, size_t page_size, const Lsn* vdl)
      : capacity_(capacity_pages), page_size_(page_size), vdl_(vdl) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the resident page (touching LRU) or nullptr on miss.
  Page* Lookup(PageId id);
  bool Contains(PageId id) const { return entries_.count(id) > 0; }

  /// Makes a fetched page resident. Never evicts synchronously — callers
  /// invoke EvictExcess() at a safe point (no operation holding raw page
  /// pointers may be on the stack), typically right after a fetch lands and
  /// before its waiters are resumed.
  Page* Install(PageId id, Page page);

  /// Evicts cold pages (respecting the VDL rule, pins and the filter) until
  /// the pool is back at capacity or nothing more is evictable.
  void EvictExcess();

  /// Creates a brand-new resident page (allocation path; no storage fetch).
  Page* InstallNew(PageId id);

  /// Marks a page unevictable (allocator meta page, tree anchors).
  void Pin(PageId id);
  void Unpin(PageId id);

  /// Additional eviction veto (the mirrored-MySQL baseline vetoes dirty
  /// pages, which must be flushed before leaving the pool). Return false to
  /// keep the page resident.
  void set_evict_filter(std::function<bool(PageId, const Page&)> filter) {
    evict_filter_ = std::move(filter);
  }

  /// Drops a page regardless of rules (replica cache invalidation).
  void Discard(PageId id);

  /// Drops everything (crash simulation).
  void Clear();

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t pages) { capacity_ = pages; }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

  /// Number of resident pages whose page LSN exceeds the VDL (unevictable
  /// "dirty-like" pages awaiting durability).
  size_t CountAboveVdl() const;

 private:
  struct Entry {
    Page page;
    std::list<PageId>::iterator lru_it;
    bool pinned = false;
    explicit Entry(Page p) : page(std::move(p)) {}
  };

  void Touch(Entry* e, PageId id);
  void MaybeEvict();

  size_t capacity_;
  size_t page_size_;
  const Lsn* vdl_;
  std::function<bool(PageId, const Page&)> evict_filter_;
  std::map<PageId, Entry> entries_;
  std::list<PageId> lru_;  // front = most recent
  BufferPoolStats stats_;
};

}  // namespace aurora

#endif  // AURORA_ENGINE_BUFFER_POOL_H_
