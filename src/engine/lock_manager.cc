#include "engine/lock_manager.h"

#include "common/logging.h"

namespace aurora {

bool LockManager::Compatible(const LockState& s, TxnId txn, LockMode mode) {
  if (mode == LockMode::kShared) {
    return s.exclusive_holder == kInvalidTxn || s.exclusive_holder == txn;
  }
  // Exclusive: no other holder of any kind.
  if (s.exclusive_holder != kInvalidTxn && s.exclusive_holder != txn) {
    return false;
  }
  for (TxnId h : s.shared_holders) {
    if (h != txn) return false;
  }
  return true;
}

void LockManager::CollectBlockers(const LockState& s, TxnId skip,
                                  std::set<TxnId>* out) const {
  if (s.exclusive_holder != kInvalidTxn && s.exclusive_holder != skip) {
    out->insert(s.exclusive_holder);
  }
  for (TxnId h : s.shared_holders) {
    if (h != skip) out->insert(h);
  }
}

bool LockManager::WouldDeadlock(TxnId waiter, const LockState& s) {
  // DFS over the wait-for graph: waiter -> holders of s -> what they wait
  // on -> ... A path back to `waiter` is a cycle.
  std::set<TxnId> frontier;
  CollectBlockers(s, waiter, &frontier);
  std::set<TxnId> visited;
  while (!frontier.empty()) {
    TxnId t = *frontier.begin();
    frontier.erase(frontier.begin());
    if (t == waiter) return true;
    if (!visited.insert(t).second) continue;
    auto wit = waiting_on_.find(t);
    if (wit == waiting_on_.end()) continue;
    auto lit = locks_.find(wit->second);
    if (lit == locks_.end()) continue;
    CollectBlockers(lit->second, kInvalidTxn, &frontier);
  }
  return false;
}

Status LockManager::Lock(TxnId txn, PageId tree, const std::string& key,
                         LockMode mode, std::function<void(Status)> granted) {
  LockName name{tree, key};
  LockState& s = locks_[name];

  // Re-entrant fast paths.
  if (mode == LockMode::kShared &&
      (s.shared_holders.count(txn) || s.exclusive_holder == txn)) {
    ++stats_.grants;
    return Status::OK();
  }
  if (mode == LockMode::kExclusive && s.exclusive_holder == txn) {
    ++stats_.grants;
    return Status::OK();
  }

  // Grant only if compatible AND no one is already queued (FIFO fairness;
  // prevents writer starvation under reader storms).
  if (Compatible(s, txn, mode) && s.waiters.empty()) {
    if (mode == LockMode::kShared) {
      s.shared_holders.insert(txn);
    } else {
      s.shared_holders.erase(txn);  // S -> X upgrade
      s.exclusive_holder = txn;
    }
    held_by_[txn].insert(name);
    ++stats_.grants;
    return Status::OK();
  }

  // An upgrade that must wait behind others is a classic deadlock source;
  // the wait-for check below covers it because we still hold our S lock.
  if (WouldDeadlock(txn, s)) {
    ++stats_.deadlocks;
    if (locks_[name].waiters.empty() && !locks_[name].held()) {
      locks_.erase(name);
    }
    return Status::Aborted("deadlock detected");
  }

  ++stats_.waits;
  Waiter w;
  w.txn = txn;
  w.mode = mode;
  w.granted = std::move(granted);
  w.timeout_event = loop_->Schedule(lock_timeout_, [this, name, txn]() {
    ++stats_.timeouts;
    RemoveWaiter(name, txn, Status::TimedOut("lock wait timeout"));
  });
  s.waiters.push_back(std::move(w));
  waiting_on_[txn] = name;
  return Status::Busy("lock queued");
}

void LockManager::RemoveWaiter(const LockName& name, TxnId txn,
                               Status reason) {
  auto it = locks_.find(name);
  if (it == locks_.end()) return;
  auto& waiters = it->second.waiters;
  for (auto w = waiters.begin(); w != waiters.end(); ++w) {
    if (w->txn != txn) continue;
    loop_->Cancel(w->timeout_event);
    auto granted = std::move(w->granted);
    waiters.erase(w);
    waiting_on_.erase(txn);
    // Removing a waiter may unblock those behind it.
    GrantWaiters(name);
    it = locks_.find(name);
    if (it != locks_.end() && !it->second.held() &&
        it->second.waiters.empty()) {
      locks_.erase(it);
    }
    if (granted) granted(reason);
    return;
  }
}

void LockManager::GrantWaiters(const LockName& name) {
  // The grant callback may re-enter the lock manager (acquire further
  // locks, release everything, even erase this lock name), so state is
  // re-resolved from the table on every iteration.
  while (true) {
    auto it = locks_.find(name);
    if (it == locks_.end()) return;
    LockState& s = it->second;
    if (s.waiters.empty()) return;
    Waiter& w = s.waiters.front();
    if (!Compatible(s, w.txn, w.mode)) return;
    if (w.mode == LockMode::kShared) {
      s.shared_holders.insert(w.txn);
    } else {
      s.shared_holders.erase(w.txn);
      s.exclusive_holder = w.txn;
    }
    held_by_[w.txn].insert(name);
    waiting_on_.erase(w.txn);
    loop_->Cancel(w.timeout_event);
    auto granted = std::move(w.granted);
    s.waiters.pop_front();
    ++stats_.grants;
    if (granted) granted(Status::OK());
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  // Cancel an in-flight wait, if any.
  auto wit = waiting_on_.find(txn);
  if (wit != waiting_on_.end()) {
    LockName name = wit->second;
    auto it = locks_.find(name);
    if (it != locks_.end()) {
      auto& waiters = it->second.waiters;
      for (auto w = waiters.begin(); w != waiters.end(); ++w) {
        if (w->txn == txn) {
          loop_->Cancel(w->timeout_event);
          waiters.erase(w);
          break;
        }
      }
    }
    waiting_on_.erase(wit);
  }

  auto hit = held_by_.find(txn);
  if (hit == held_by_.end()) return;
  std::set<LockName> names = std::move(hit->second);
  held_by_.erase(hit);
  for (const LockName& name : names) {
    auto it = locks_.find(name);
    if (it == locks_.end()) continue;
    it->second.shared_holders.erase(txn);
    if (it->second.exclusive_holder == txn) {
      it->second.exclusive_holder = kInvalidTxn;
    }
    GrantWaiters(name);
    it = locks_.find(name);
    if (it != locks_.end() && !it->second.held() &&
        it->second.waiters.empty()) {
      locks_.erase(it);
    }
  }
}

size_t LockManager::WaitingTxns() const { return waiting_on_.size(); }

void LockManager::Reset() {
  for (auto& [name, state] : locks_) {
    for (Waiter& w : state.waiters) loop_->Cancel(w.timeout_event);
  }
  locks_.clear();
  held_by_.clear();
  waiting_on_.clear();
}

}  // namespace aurora
