#include "engine/database.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "storage/storage_node.h"

namespace aurora {

namespace {

constexpr char kNextPageKey[] = "next_page";
constexpr char kTxnTableName[] = "tbl:__txn";
constexpr char kUndoTreeName[] = "tbl:__undo";
// Free-list entries on the meta page: "free:" + fixed64 page id, empty
// value. Sorts below kNextPageKey and the "tbl:" catalog entries.
constexpr char kFreePagePrefix[] = "free:";
constexpr size_t kFreePagePrefixLen = 5;

void PutBigEndian64(std::string* dst, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::string EncodeCatalogValue(PageId anchor, uint32_t version) {
  std::string v;
  PutFixed64(&v, anchor);
  PutFixed32(&v, version);
  return v;
}

bool DecodeCatalogValue(const Slice& v, PageId* anchor, uint32_t* version) {
  if (v.size() != 12) return false;
  *anchor = DecodeFixed64(v.data());
  *version = DecodeFixed32(v.data() + 8);
  return true;
}

std::string EncodeTxnStateValue(TxnState state) {
  return std::string(1, static_cast<char>(state));
}

std::string EncodeRow(uint32_t version, const std::string& value) {
  std::string row;
  PutVarint32(&row, version);
  row += value;
  return row;
}

Status DecodeRow(const std::string& row, uint32_t* version,
                 std::string* value) {
  Slice in(row);
  if (!GetVarint32(&in, version)) return Status::Corruption("bad row header");
  value->assign(in.data(), in.size());
  return Status::OK();
}

std::string EncodeUndoValue(PageId table, const std::string& key, bool had_old,
                            const std::string& old_value) {
  std::string v;
  PutFixed64(&v, table);
  v.push_back(had_old ? 1 : 0);
  PutLengthPrefixedSlice(&v, key);
  v += old_value;
  return v;
}

Status DecodeUndoValue(const Slice& raw, PageId* table, std::string* key,
                       bool* had_old, std::string* old_value) {
  Slice in(raw);
  uint64_t tbl;
  if (!GetFixed64(&in, &tbl) || in.empty()) {
    return Status::Corruption("bad undo value");
  }
  *table = tbl;
  *had_old = in[0] != 0;
  in.remove_prefix(1);
  Slice k;
  if (!GetLengthPrefixedSlice(&in, &k)) {
    return Status::Corruption("bad undo key");
  }
  key->assign(k.data(), k.size());
  old_value->assign(in.data(), in.size());
  return Status::OK();
}

}  // namespace

std::string Database::UndoKey(TxnId txn, uint64_t seq) {
  std::string k = "u";
  PutBigEndian64(&k, txn);
  PutBigEndian64(&k, seq);
  return k;
}

std::string Database::TxnKey(TxnId txn) {
  std::string k = "t";
  PutBigEndian64(&k, txn);
  return k;
}

// The writer's recovery protocol state (§4.3).
struct Database::RecoveryState {
  std::function<void(Status)> done;
  uint64_t req_id = 0;
  int phase = 1;  // 1 = inventory, 2 = truncate
  // Phase 1.
  std::map<PgId, std::map<Lsn, InventoryEntry>> union_entries;
  std::map<PgId, std::set<ReplicaIdx>> inventory_acks;
  /// Durable completeness floor: the max VDL hint any segment holds.
  Lsn floor = kInvalidLsn;
  // Phase 2.
  Lsn new_vdl = kInvalidLsn;
  Epoch new_epoch = 0;
  std::map<PgId, std::set<ReplicaIdx>> truncate_acks;
  sim::EventId retry_event = 0;
  SimTime started_at = 0;
};

Database::Database(sim::EventLoop* loop, sim::Network* network,
                   sim::NodeId node_id, sim::Instance* instance,
                   ControlPlane* control_plane, EngineOptions options,
                   Random rng)
    : loop_(loop),
      network_(network),
      node_id_(node_id),
      instance_(instance),
      control_plane_(control_plane),
      options_(options),
      rng_(rng),
      pool_(options.buffer_pool_pages, options.page_size, &vdl_),
      locks_(loop, options.lock_timeout) {
  network_->Register(node_id_,
                     [this](const sim::Message& m) { HandleMessage(m); });
}

Database::~Database() = default;

void Database::HandleMessage(const sim::Message& msg) {
  if (!network_->VerifyFrame(msg)) {
    ++stats_.corrupt_frames_dropped;
    return;
  }
  switch (msg.type) {
    case kMsgWriteAck:
      HandleWriteAck(msg);
      break;
    case kMsgReadPageResp:
      HandleReadPageResp(msg);
      break;
    case kMsgInventoryResp:
      HandleInventoryResp(msg);
      break;
    case kMsgTruncateAck:
      HandleTruncateAck(msg);
      break;
    case kMsgReplicaReadPoint:
      HandleReplicaReadPoint(msg);
      break;
    default:
      break;
  }
}

// --------------------------------------------------------------------------
// Bootstrap & lifecycle
// --------------------------------------------------------------------------

void Database::Bootstrap(std::function<void(Status)> done) {
  if (control_plane_->num_pgs() != 0) {
    done(Status::InvalidArgument("volume already exists; use Recover()"));
    return;
  }
  EnsurePgExists(0);
  MiniTransaction mtr(kInvalidTxn);

  // Page 0: the allocator + catalog meta page.
  Page* meta = pool_.InstallNew(meta_page_id_);
  {
    LogRecord rec;
    rec.page_id = meta_page_id_;
    rec.op = RedoOp::kFormatPage;
    rec.payload = LogRecord::MakeFormatPayload(
        static_cast<uint8_t>(PageType::kMeta), 0);
    AURORA_CHECK(mtr.Apply(meta, std::move(rec)).ok(), "meta format failed");
  }
  {
    std::string next;
    PutFixed64(&next, 1);
    LogRecord rec;
    rec.page_id = meta_page_id_;
    rec.op = RedoOp::kInsert;
    rec.payload = LogRecord::MakeKeyValuePayload(kNextPageKey, next);
    AURORA_CHECK(mtr.Apply(meta, std::move(rec)).ok(), "meta init failed");
  }
  pool_.Pin(meta_page_id_);

  // System trees: the transaction table and the undo log.
  auto create_tree = [&](const char* name) -> PageId {
    Result<PageId> anchor = BTree::Create(this, &mtr);
    AURORA_CHECK(anchor.ok(), "system tree creation failed");
    LogRecord rec;
    rec.page_id = meta_page_id_;
    rec.op = RedoOp::kInsert;
    rec.payload =
        LogRecord::MakeKeyValuePayload(name, EncodeCatalogValue(*anchor, 0));
    AURORA_CHECK(mtr.Apply(meta, std::move(rec)).ok(), "catalog insert failed");
    pool_.Pin(*anchor);
    return *anchor;
  };
  txn_table_ = std::make_unique<BTree>(this, create_tree(kTxnTableName));
  undo_tree_ = std::make_unique<BTree>(this, create_tree(kUndoTreeName));

  Status s = CommitMtr(&mtr);
  AURORA_CHECK(s.ok(), "bootstrap commit failed");
  durable_waiters_.emplace(mtr.commit_lsn(), [this, done]() {
    open_ = true;
    ScheduleTimers();
    done(Status::OK());
  });
  AdvanceDurability();
}

void Database::Crash() {
  ++generation_;
  open_ = false;
  // Cancel every timer whose closure captures this engine. The generation
  // guard already neutralizes late firings, but the loop would otherwise
  // retain the closures (and their captured `this`) until they fire —
  // a use-after-free hazard if the Database is destroyed before the loop
  // drains, and unbounded bookkeeping growth in long chaos runs.
  for (auto& [pg, batch] : pending_batches_) {
    if (batch.linger_armed) loop_->Cancel(batch.linger_event);
  }
  for (auto& [seq, batch] : outstanding_) {
    if (batch->retry_event != 0) loop_->Cancel(batch->retry_event);
  }
  for (auto& [req, pr] : pending_reads_) {
    if (pr.timeout_event != 0) loop_->Cancel(pr.timeout_event);
  }
  if (recovery_ != nullptr && recovery_->retry_event != 0) {
    loop_->Cancel(recovery_->retry_event);
  }
  loop_->Cancel(pgmrpl_timer_);
  loop_->Cancel(purge_timer_);
  loop_->Cancel(ship_timer_);
  loop_->Cancel(zdp_timer_);
  pool_.Clear();
  locks_.Reset();
  txns_.clear();
  commit_queue_.clear();
  durable_waiters_.clear();
  backpressure_queue_.clear();
  purge_queue_.clear();
  pending_batches_.clear();
  outstanding_.clear();
  replica_scl_.clear();
  pg_config_.clear();
  page_waiters_.clear();
  fetch_in_flight_.clear();
  pending_reads_.clear();
  replica_stream_buffer_.clear();
  replica_commit_buffer_.clear();
  unacked_lsns_.clear();
  pending_cpls_.clear();
  last_lsn_per_pg_.clear();
  txn_table_.reset();
  undo_tree_.reset();
  table_versions_.clear();
  recovery_.reset();
}

void Database::ScheduleTimers() {
  const uint64_t gen = generation_;
  pgmrpl_timer_ = loop_->Schedule(options_.pgmrpl_interval, [this, gen] {
    if (gen == generation_ && open_) PgmrplTick();
  });
  purge_timer_ = loop_->Schedule(options_.purge_interval, [this, gen] {
    if (gen == generation_ && open_) PurgeTick();
  });
  ship_timer_ = loop_->Schedule(options_.replica_ship_interval, [this, gen] {
    if (gen == generation_ && open_) ReplicaShipTick();
  });
}

// --------------------------------------------------------------------------
// WalSink: LSN allocation and batching (§4.2.1)
// --------------------------------------------------------------------------

Status Database::CommitMtr(MiniTransaction* mtr) {
  auto& records = mtr->records();
  const auto& pages = mtr->pages();
  if (records.empty()) return Status::OK();
  for (size_t i = 0; i < records.size(); ++i) {
    LogRecord& rec = records[i];
    if (i + 1 == records.size()) rec.flags |= kFlagCpl;
    PgId pg = PgOf(rec.page_id);
    EnsurePgExists(pg);
    rec.lsn = next_lsn_;
    auto [it, inserted] = last_lsn_per_pg_.try_emplace(pg, kInvalidLsn);
    rec.prev_pg_lsn = it->second;
    it->second = rec.lsn;
    rec.prev_vol_lsn = last_vol_lsn_;
    last_vol_lsn_ = rec.lsn;
    next_lsn_ += rec.EncodedSize();
    max_allocated_ = rec.lsn;
    pages[i]->set_page_lsn(rec.lsn);
    unacked_lsns_.insert(rec.lsn);
    if (rec.is_cpl()) pending_cpls_.insert(rec.lsn);
    ++stats_.log_records_sent;
    stats_.log_bytes_generated += rec.EncodedSize();
    if (!replicas_.empty()) replica_stream_buffer_.push_back(rec);
    AppendToBatch(rec);
  }
  mtr->set_commit_lsn(records.back().lsn);
  return Status::OK();
}

void Database::EnsurePgExists(PgId pg) {
  while (control_plane_->num_pgs() <= pg) {
    control_plane_->CreatePg(options_.page_size);
  }
}

const Database::CachedConfig& Database::PgConfig(PgId pg) {
  auto it = pg_config_.find(pg);
  if (it == pg_config_.end()) {
    const PgMembership& members = control_plane_->membership(pg);
    it = pg_config_
             .emplace(pg, CachedConfig{members.nodes, members.config_epoch})
             .first;
  }
  return it->second;
}

void Database::RefreshPgConfig(PgId pg) {
  const PgMembership& members = control_plane_->membership(pg);
  auto it = pg_config_.find(pg);
  if (it == pg_config_.end()) {
    pg_config_.emplace(pg, CachedConfig{members.nodes, members.config_epoch});
    return;
  }
  // Forget ack-derived SCL watermarks for slots whose host changed: the old
  // host's progress says nothing about its replacement.
  for (int i = 0; i < kReplicasPerPg; ++i) {
    if (it->second.nodes[i] != members.nodes[i]) {
      replica_scl_.erase({pg, static_cast<ReplicaIdx>(i)});
    }
  }
  it->second.nodes = members.nodes;
  it->second.config_epoch = members.config_epoch;
}

void Database::AppendToBatch(const LogRecord& record) {
  PgId pg = PgOf(record.page_id);
  PendingBatch& batch = pending_batches_[pg];
  batch.pg = pg;
  if (batch.records.empty()) batch.first_append_at = loop_->now();
  batch.bytes += record.EncodedSize();
  batch.records.push_back(record);
  if (batch.bytes >= options_.batch_max_bytes) {
    FlushBatch(pg);
    return;
  }
  if (!batch.linger_armed) {
    batch.linger_armed = true;
    const uint64_t gen = generation_;
    batch.linger_event = loop_->Schedule(options_.batch_linger, [this, gen, pg] {
      if (gen != generation_) return;
      FlushBatch(pg);
    });
  }
}

void Database::FlushBatch(PgId pg) {
  auto it = pending_batches_.find(pg);
  if (it == pending_batches_.end() || it->second.records.empty()) return;
  PendingBatch batch = std::move(it->second);
  pending_batches_.erase(it);
  if (batch.linger_armed) loop_->Cancel(batch.linger_event);

  auto ob = std::make_unique<OutstandingBatch>(options_.quorum);
  ob->pg = pg;
  ob->seq = next_batch_seq_++;
  ob->appended_at = batch.first_append_at;
  ob->flushed_at = loop_->now();
  stats_.batch_append_to_flush_us.Record(ob->flushed_at - ob->appended_at);
  ob->records = std::move(batch.records);
  for (const LogRecord& r : ob->records) ob->lsns.push_back(r.lsn);
  OutstandingBatch* raw = ob.get();
  outstanding_[ob->seq] = std::move(ob);
  ++stats_.log_batches_sent;
  SendBatch(raw);
}

void Database::SendBatch(OutstandingBatch* batch) {
  if (fenced_) return;
  const CachedConfig& cfg = PgConfig(batch->pg);
  const Lsn pgmrpl = ComputePgmrpl();
  // Single-encode fan-out: the body (epoch, seq, hints, record blob) is
  // identical for all replicas, so serialize it once and share the buffer
  // across the un-acked sends; only the tiny pg+replica header is built per
  // destination.
  std::shared_ptr<const std::string> body;
  uint64_t sends = 0;
  for (int idx = 0; idx < kReplicasPerPg; ++idx) {
    if (batch->tracker.has_ack_from(idx)) continue;
    if (!body) {
      auto encoded = std::make_shared<std::string>();
      WriteBatchMsg::EncodeBody(volume_epoch_, cfg.config_epoch, batch->seq,
                                vdl_, pgmrpl, batch->records, encoded.get());
      body = std::move(encoded);
    }
    WriteBatchMsg header_msg;
    header_msg.pg = batch->pg;
    header_msg.replica = static_cast<ReplicaIdx>(idx);
    std::string header;
    header_msg.EncodeHeaderTo(&header);
    network_->Send(node_id_, cfg.nodes[idx], kMsgWriteBatch,
                   std::move(header), body);
    ++sends;
  }
  if (sends > 1) {
    stats_.batch_encode_bytes_saved += (sends - 1) * body->size();
  }
  // Retry until the write quorum is reached: storage nodes deduplicate by
  // LSN and re-ack, so resends are idempotent.
  const uint64_t gen = generation_;
  const uint64_t seq = batch->seq;
  SimDuration backoff = Millis(10) << std::min(batch->attempts, 5);
  batch->retry_event = loop_->Schedule(backoff, [this, gen, seq] {
    if (gen != generation_) return;
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    ++it->second->attempts;
    ++stats_.batch_retries;
    SendBatch(it->second.get());
  });
}

void Database::HandleWriteAck(const sim::Message& msg) {
  WriteAckMsg ack;
  if (!WriteAckMsg::DecodeFrom(msg.payload(), &ack).ok()) return;
  // Guard against our *cached* view, not the control plane: a kStaleConfig
  // NAK arrives precisely from hosts our stale cache still believes in.
  const CachedConfig& cfg = PgConfig(ack.pg);
  if (ack.replica >= kReplicasPerPg || cfg.nodes[ack.replica] != msg.from) {
    return;  // ack from a replaced (stale) replica
  }
  if (ack.status_code == static_cast<uint8_t>(Status::Code::kFenced)) {
    // Storage has seen a newer volume epoch: a replica was promoted while
    // this writer was partitioned. Demote instead of retrying forever.
    BecomeFenced(ack.epoch);
    return;
  }
  if (ack.status_code == static_cast<uint8_t>(Status::Code::kStaleConfig)) {
    // The PG's membership moved (a repair or migration completed) and this
    // writer's cached member list is behind: refresh from the control plane
    // and resend the batch to the new member set immediately. Every live
    // member NAKs the same stale batch, so only the first NAK per epoch
    // bump (the one our cache is actually behind) triggers the resend.
    if (ack.cfg_epoch > cfg.config_epoch) {
      ++stats_.stale_config_refreshes;
      RefreshPgConfig(ack.pg);
      auto sit = outstanding_.find(ack.batch_seq);
      if (sit != outstanding_.end()) {
        loop_->Cancel(sit->second->retry_event);
        SendBatch(sit->second.get());
      }
    }
    return;
  }
  Lsn& known = replica_scl_[{ack.pg, ack.replica}];
  if (ack.scl > known) known = ack.scl;

  auto it = outstanding_.find(ack.batch_seq);
  if (it == outstanding_.end()) return;
  OutstandingBatch* batch = it->second.get();
  const bool quorum_reached = batch->tracker.Ack(ack.replica);
  if (batch->first_ack_at == 0 && batch->tracker.acks() > 0) {
    batch->first_ack_at = loop_->now();
  }
  if (quorum_reached) {
    loop_->Cancel(batch->retry_event);
    stats_.batch_flush_to_first_ack_us.Record(batch->first_ack_at -
                                              batch->flushed_at);
    stats_.batch_first_ack_to_quorum_us.Record(loop_->now() -
                                               batch->first_ack_at);
    stats_.batch_append_to_quorum_us.Record(loop_->now() - batch->appended_at);
    for (Lsn lsn : batch->lsns) unacked_lsns_.erase(lsn);
    outstanding_.erase(it);
    AdvanceDurability();
    // VDL advances unlock eviction of freshly durable pages.
    pool_.EvictExcess();
  }
}

void Database::AdvanceDurability() {
  const Lsn durable =
      unacked_lsns_.empty() ? max_allocated_ : *unacked_lsns_.begin() - 1;
  if (durable > vcl_) vcl_ = durable;
  bool advanced = false;
  while (!pending_cpls_.empty() && *pending_cpls_.begin() <= durable) {
    vdl_ = *pending_cpls_.begin();
    pending_cpls_.erase(pending_cpls_.begin());
    advanced = true;
  }
  if (!advanced) return;
  ProcessCommitQueue();
  while (!durable_waiters_.empty() && durable_waiters_.begin()->first <= vdl_) {
    auto cb = std::move(durable_waiters_.begin()->second);
    durable_waiters_.erase(durable_waiters_.begin());
    cb();
  }
  DrainBackpressure();
}

void Database::ProcessCommitQueue() {
  // §4.2.2: a dedicated completion pass acks every commit whose commit LSN
  // the VDL has passed; worker "threads" never wait.
  while (!commit_queue_.empty() && commit_queue_.begin()->first <= vdl_) {
    TxnId id = commit_queue_.begin()->second;
    commit_queue_.erase(commit_queue_.begin());
    Txn* t = FindTxn(id);
    if (t == nullptr) continue;
    t->state = TxnState::kCommitted;
    auto cb = std::move(t->commit_cb);
    stats_.commit_latency_us.Record(loop_->now() - t->commit_requested_at);
    ++stats_.txns_committed;
    replica_commit_buffer_.emplace_back(t->commit_lsn, loop_->now());
    bool registered = t->durably_registered;
    locks_.ReleaseAll(id);
    txns_.erase(id);
    if (registered) purge_queue_.push_back(id);
    if (cb) cb(Status::OK());
  }
}

void Database::BecomeFenced(Epoch fencing_epoch) {
  if (fenced_) return;
  fenced_ = true;
  open_ = false;
  ++stats_.fenced_rejections;
  AURORA_WARN("writer %u fenced by volume epoch %llu (local epoch %llu)",
              node_id_, static_cast<unsigned long long>(fencing_epoch),
              static_cast<unsigned long long>(volume_epoch_));
  // Stop the write pipeline: no batch may ever be resent under the dead
  // epoch, and nothing queued behind durability can ever be acked.
  for (auto& [pg, batch] : pending_batches_) {
    if (batch.linger_armed) loop_->Cancel(batch.linger_event);
  }
  pending_batches_.clear();
  for (auto& [seq, batch] : outstanding_) {
    if (batch->retry_event != 0) loop_->Cancel(batch->retry_event);
  }
  outstanding_.clear();
  for (auto& [req, pr] : pending_reads_) {
    if (pr.timeout_event != 0) loop_->Cancel(pr.timeout_event);
  }
  pending_reads_.clear();
  fetch_in_flight_.clear();
  page_waiters_.clear();
  durable_waiters_.clear();
  backpressure_queue_.clear();
  commit_queue_.clear();
  // Surface the demotion to every caller still waiting on a commit: their
  // writes may or may not survive (the new writer's recovery decides), but
  // this instance can no longer promise either way.
  std::vector<std::function<void(Status)>> waiting;
  for (auto& [id, t] : txns_) {
    if (t->commit_cb) waiting.push_back(std::move(t->commit_cb));
  }
  txns_.clear();
  locks_.Reset();
  for (auto& cb : waiting) {
    cb(Status::Fenced("writer superseded by a newer volume epoch"));
  }
}

void Database::DeferForBackpressure(std::function<void()> retry) {
  ++stats_.backpressure_stalls;
  backpressure_queue_.push_back(std::move(retry));
}

void Database::DrainBackpressure() {
  if (paused_) return;
  while (!backpressure_queue_.empty() && !in_backpressure()) {
    auto retry = std::move(backpressure_queue_.front());
    backpressure_queue_.pop_front();
    retry();
  }
}

// --------------------------------------------------------------------------
// PageProvider: buffer pool + storage fetches (§4.2.3)
// --------------------------------------------------------------------------

Result<Page*> Database::GetPage(PageId id) {
  Page* page = pool_.Lookup(id);
  if (page != nullptr) return page;
  last_miss_ = id;
  StartPageFetch(id);
  return Status::Busy("page miss");
}

Result<Page*> Database::AllocatePage(PageType type, uint8_t level,
                                     MiniTransaction* mtr) {
  Result<Page*> meta = GetPage(meta_page_id_);
  if (!meta.ok()) return meta.status();
  // Reuse a freed page when the free-list has one; the page space only
  // grows when the list is empty.
  int slot = (*meta)->LowerBound(kFreePagePrefix);
  if (slot < (*meta)->slot_count()) {
    Slice k = (*meta)->KeyAt(slot);
    if (k.size() == kFreePagePrefixLen + 8 && k.starts_with(kFreePagePrefix)) {
      const PageId id = DecodeFixed64(k.data() + kFreePagePrefixLen);
      LogRecord del;
      del.page_id = meta_page_id_;
      del.op = RedoOp::kDelete;
      del.payload = LogRecord::MakeKeyPayload(k);
      Status s = mtr->Apply(*meta, std::move(del));
      if (!s.ok()) return s;
      EnsurePgExists(PgOf(id));
      // The freed page may have been evicted; the buffer just needs to be
      // resident — the format record rebuilds it from nothing.
      Page* page = pool_.InstallNew(id);
      LogRecord fmt;
      fmt.page_id = id;
      fmt.op = RedoOp::kFormatPage;
      fmt.payload =
          LogRecord::MakeFormatPayload(static_cast<uint8_t>(type), level);
      s = mtr->Apply(page, std::move(fmt));
      if (!s.ok()) return s;
      ++stats_.pages_reused;
      return page;
    }
  }
  Slice v;
  if (!(*meta)->GetRecord(kNextPageKey, &v) || v.size() != 8) {
    return Status::Corruption("allocator record missing");
  }
  PageId id = DecodeFixed64(v.data());
  std::string next;
  PutFixed64(&next, id + 1);
  LogRecord upd;
  upd.page_id = meta_page_id_;
  upd.op = RedoOp::kUpdate;
  upd.payload = LogRecord::MakeKeyValuePayload(kNextPageKey, next);
  Status s = mtr->Apply(*meta, std::move(upd));
  if (!s.ok()) return s;

  EnsurePgExists(PgOf(id));
  Page* page = pool_.InstallNew(id);
  LogRecord fmt;
  fmt.page_id = id;
  fmt.op = RedoOp::kFormatPage;
  fmt.payload =
      LogRecord::MakeFormatPayload(static_cast<uint8_t>(type), level);
  s = mtr->Apply(page, std::move(fmt));
  if (!s.ok()) return s;
  return page;
}

Status Database::FreePage(Page* page, MiniTransaction* mtr) {
  Result<Page*> meta = GetPage(meta_page_id_);
  if (!meta.ok()) return meta.status();
  std::string key = kFreePagePrefix;
  PutFixed64(&key, page->page_id());
  // A meta page with no room only costs the reuse of this one id: leak it
  // rather than fail the caller's already-applied structural change.
  if ((*meta)->HasRoomFor(key.size(), 0)) {
    LogRecord rec;
    rec.page_id = meta_page_id_;
    rec.op = RedoOp::kInsert;
    rec.payload = LogRecord::MakeKeyValuePayload(key, Slice());
    Status s = mtr->Apply(*meta, std::move(rec));
    if (!s.ok()) return s;
  }
  LogRecord fmt;
  fmt.page_id = page->page_id();
  fmt.op = RedoOp::kFormatPage;
  fmt.payload =
      LogRecord::MakeFormatPayload(static_cast<uint8_t>(PageType::kFree), 0);
  Status s = mtr->Apply(page, std::move(fmt));
  if (!s.ok()) return s;
  ++stats_.pages_freed;
  return Status::OK();
}

void Database::StartPageFetch(PageId id) {
  if (fetch_in_flight_.count(id)) return;
  uint64_t req = next_req_++;
  fetch_in_flight_[id] = req;
  PendingRead pr;
  pr.page = id;
  pr.pg = PgOf(id);
  pr.read_point = vdl_;
  pr.started_at = loop_->now();
  pending_reads_[req] = pr;
  ++stats_.storage_page_reads;
  IssuePageRead(req);
}

sim::NodeId Database::PickReadReplicaNode(PgId pg, Lsn read_point,
                                          int attempt) {
  const CachedConfig& members = PgConfig(pg);
  const sim::Topology* topo = control_plane_->topology();
  // Replicas known (from acks) to be complete at the read point, same-AZ
  // first — the writer can route reads to a single up-to-date segment
  // (§4.2.3); no quorum read is needed.
  std::vector<int> candidates;
  for (int i = 0; i < kReplicasPerPg; ++i) {
    auto it = replica_scl_.find({pg, static_cast<ReplicaIdx>(i)});
    if (it != replica_scl_.end() && it->second >= read_point) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    for (int i = 0; i < kReplicasPerPg; ++i) candidates.push_back(i);
  }
  std::stable_sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    bool la = topo->SameAz(node_id_, members.nodes[a]);
    bool lb = topo->SameAz(node_id_, members.nodes[b]);
    return la > lb;
  });
  return members.nodes[candidates[attempt % candidates.size()]];
}

void Database::IssuePageRead(uint64_t req_id) {
  auto it = pending_reads_.find(req_id);
  if (it == pending_reads_.end()) return;
  PendingRead& pr = it->second;
  sim::NodeId target = PickReadReplicaNode(pr.pg, pr.read_point,
                                           pr.replica_tried);
  ReadPageReqMsg req;
  req.req_id = req_id;
  req.pg = pr.pg;
  req.page = pr.page;
  req.read_point = pr.read_point;
  req.epoch = volume_epoch_;
  req.cfg_epoch = PgConfig(pr.pg).config_epoch;
  std::string payload;
  req.EncodeTo(&payload);
  network_->Send(node_id_, target, kMsgReadPageReq, std::move(payload));

  const uint64_t gen = generation_;
  pr.timeout_event =
      loop_->Schedule(options_.read_retry_timeout, [this, gen, req_id] {
        if (gen != generation_) return;
        auto it = pending_reads_.find(req_id);
        if (it == pending_reads_.end()) return;
        ++it->second.replica_tried;
        ++stats_.read_retries;
        IssuePageRead(req_id);
      });
}

void Database::HandleReadPageResp(const sim::Message& msg) {
  ReadPageRespMsg resp;
  if (!ReadPageRespMsg::DecodeFrom(msg.payload(), &resp).ok()) return;
  auto it = pending_reads_.find(resp.req_id);
  if (it == pending_reads_.end()) return;  // late duplicate
  PendingRead& pr = it->second;
  loop_->Cancel(pr.timeout_event);

  if (resp.status_code == static_cast<uint8_t>(Status::Code::kFenced)) {
    BecomeFenced(0);  // the segment outran our epoch; exact value unknown
    return;
  }
  if (resp.status_code == static_cast<uint8_t>(Status::Code::kStaleConfig)) {
    // Not a demotion — our membership cache is behind. Refresh and retry
    // against the current member set.
    ++stats_.stale_config_refreshes;
    RefreshPgConfig(pr.pg);
    ++pr.replica_tried;
    ++stats_.read_retries;
    IssuePageRead(resp.req_id);
    return;
  }
  if (resp.status_code != static_cast<uint8_t>(Status::Code::kOk)) {
    // Wrong replica (incomplete / GC'd past us) — try another after a short
    // pause; gossip heals lagging segments. If the PG is idle, its segments
    // may simply lack a completeness snapshot at this read point: publish
    // one proactively instead of waiting for the PGMRPL rotation.
    PublishPgSnapshot(pr.pg);
    ++pr.replica_tried;
    ++stats_.read_retries;
    const uint64_t gen = generation_;
    const uint64_t req_id = resp.req_id;
    pr.timeout_event = loop_->Schedule(Millis(1), [this, gen, req_id] {
      if (gen != generation_) return;
      IssuePageRead(req_id);
    });
    return;
  }

  Page page(options_.page_size);
  if (!page.LoadRaw(resp.page_bytes).ok() || !page.VerifyCrc()) {
    ++pr.replica_tried;
    IssuePageRead(resp.req_id);
    return;
  }
  PageId id = pr.page;
  stats_.page_fetch_latency_us.Record(loop_->now() - pr.started_at);
  stats_.read_retry_depth.Record(static_cast<uint64_t>(pr.replica_tried));
  pending_reads_.erase(it);
  fetch_in_flight_.erase(id);
  pool_.Install(id, std::move(page));
  // Safe point: no operation is mid-attempt here, so eviction cannot
  // invalidate live page pointers.
  pool_.EvictExcess();

  auto wit = page_waiters_.find(id);
  if (wit == page_waiters_.end()) return;
  std::vector<PageWaiter> waiters = std::move(wit->second);
  page_waiters_.erase(wit);
  for (PageWaiter& w : waiters) w.retry();
}

// --------------------------------------------------------------------------
// Op plumbing
// --------------------------------------------------------------------------

void Database::RunWithRetries(std::function<Status()> attempt,
                              std::function<void(Status)> done) {
  last_miss_ = kInvalidPage;
  Status s = attempt();
  if (s.IsBusy() && last_miss_ != kInvalidPage) {
    PageId missed = last_miss_;
    page_waiters_[missed].push_back(
        {[this, attempt = std::move(attempt), done = std::move(done)]() {
          RunWithRetries(attempt, done);
        }});
    return;
  }
  // Safe point for eviction: the attempt is finished, nothing holds raw
  // page pointers.
  pool_.EvictExcess();
  done(s);
}

void Database::ChargeCpu(SimDuration cost, std::function<void()> then) {
  instance_->Execute(cost, std::move(then));
}

// --------------------------------------------------------------------------
// Schema
// --------------------------------------------------------------------------

void Database::CreateTable(const std::string& name,
                           std::function<void(Status)> done) {
  std::string cat_key = "tbl:" + name;
  auto attempt = [this, cat_key]() -> Status {
    Result<Page*> meta = GetPage(meta_page_id_);
    if (!meta.ok()) return meta.status();
    Slice v;
    if ((*meta)->GetRecord(cat_key, &v)) {
      return Status::InvalidArgument("table exists");
    }
    MiniTransaction mtr(kInvalidTxn);
    Result<PageId> anchor = BTree::Create(this, &mtr);
    if (!anchor.ok()) {
      mtr.Abort();
      return anchor.status();
    }
    LogRecord rec;
    rec.page_id = meta_page_id_;
    rec.op = RedoOp::kInsert;
    rec.payload =
        LogRecord::MakeKeyValuePayload(cat_key, EncodeCatalogValue(*anchor, 0));
    Status s = mtr.Apply(*meta, std::move(rec));
    if (!s.ok()) {
      mtr.Abort();
      return s;
    }
    s = CommitMtr(&mtr);
    if (!s.ok()) return s;
    table_versions_[*anchor] = 0;
    durable_lsn_for_ddl_ = mtr.commit_lsn();
    return Status::OK();
  };
  RunWithRetries(attempt, [this, done](Status s) {
    if (!s.ok()) {
      done(s);
      return;
    }
    durable_waiters_.emplace(durable_lsn_for_ddl_,
                             [done]() { done(Status::OK()); });
    AdvanceDurability();
  });
}

void Database::AttachPreloadedTable(const std::string& name,
                                    std::function<uint64_t(PageId)> plan,
                                    std::function<void(Result<PageId>)> done) {
  Result<Page*> meta = GetPage(meta_page_id_);
  if (!meta.ok()) {
    done(meta.status());  // meta is pinned post-bootstrap; shouldn't happen
    return;
  }
  std::string cat_key = "tbl:" + name;
  Slice v;
  if ((*meta)->GetRecord(cat_key, &v)) {
    done(Status::InvalidArgument("table exists"));
    return;
  }
  if (!(*meta)->GetRecord(kNextPageKey, &v) || v.size() != 8) {
    done(Status::Corruption("allocator record missing"));
    return;
  }
  PageId first = DecodeFixed64(v.data());
  uint64_t count = plan(first);
  EnsurePgExists(PgOf(first + count - 1));

  MiniTransaction mtr(kInvalidTxn);
  std::string next;
  PutFixed64(&next, first + count);
  LogRecord upd;
  upd.page_id = meta_page_id_;
  upd.op = RedoOp::kUpdate;
  upd.payload = LogRecord::MakeKeyValuePayload(kNextPageKey, next);
  Status s = mtr.Apply(*meta, std::move(upd));
  if (!s.ok()) {
    mtr.Abort();
    done(s);
    return;
  }
  LogRecord ins;
  ins.page_id = meta_page_id_;
  ins.op = RedoOp::kInsert;
  ins.payload =
      LogRecord::MakeKeyValuePayload(cat_key, EncodeCatalogValue(first, 0));
  s = mtr.Apply(*meta, std::move(ins));
  if (!s.ok()) {
    mtr.Abort();
    done(s);
    return;
  }
  s = CommitMtr(&mtr);
  AURORA_CHECK(s.ok(), "attach commit failed");
  table_versions_[first] = 0;
  durable_waiters_.emplace(mtr.commit_lsn(),
                           [done, first]() { done(first); });
  AdvanceDurability();
}

Result<PageId> Database::TableAnchor(const std::string& name) {
  Result<Page*> meta = GetPage(meta_page_id_);
  if (!meta.ok()) return meta.status();
  Slice v;
  if (!(*meta)->GetRecord("tbl:" + name, &v)) {
    return Status::NotFound("no such table");
  }
  PageId anchor;
  uint32_t version;
  if (!DecodeCatalogValue(v, &anchor, &version)) {
    return Status::Corruption("bad catalog record");
  }
  table_versions_[anchor] = version;
  return anchor;
}

void Database::AlterTableSchema(const std::string& name,
                                std::function<void(Result<uint32_t>)> done) {
  std::string cat_key = "tbl:" + name;
  auto attempt = [this, cat_key]() -> Status {
    Result<Page*> meta = GetPage(meta_page_id_);
    if (!meta.ok()) return meta.status();
    Slice v;
    if (!(*meta)->GetRecord(cat_key, &v)) return Status::NotFound("no table");
    PageId anchor;
    uint32_t version;
    if (!DecodeCatalogValue(v, &anchor, &version)) {
      return Status::Corruption("bad catalog record");
    }
    MiniTransaction mtr(kInvalidTxn);
    LogRecord rec;
    rec.page_id = meta_page_id_;
    rec.op = RedoOp::kUpdate;
    rec.payload = LogRecord::MakeKeyValuePayload(
        cat_key, EncodeCatalogValue(anchor, version + 1));
    Status s = mtr.Apply(*meta, std::move(rec));
    if (!s.ok()) {
      mtr.Abort();
      return s;
    }
    s = CommitMtr(&mtr);
    if (!s.ok()) return s;
    // Instant DDL (§7.3): only the catalog version changes; existing rows
    // keep their version stamp and are upgraded on modification, readers
    // decode any historical version.
    table_versions_[anchor] = version + 1;
    ddl_result_version_ = version + 1;
    durable_lsn_for_ddl_ = mtr.commit_lsn();
    return Status::OK();
  };
  RunWithRetries(attempt, [this, done](Status s) {
    if (!s.ok()) {
      done(s);
      return;
    }
    uint32_t version = ddl_result_version_;
    durable_waiters_.emplace(durable_lsn_for_ddl_,
                             [done, version]() { done(version); });
    AdvanceDurability();
  });
}

// --------------------------------------------------------------------------
// Transactions
// --------------------------------------------------------------------------

TxnId Database::Begin() {
  TxnId id = next_txn_++;
  auto txn = std::make_unique<Txn>();
  txn->id = id;
  txns_[id] = std::move(txn);
  ++stats_.txns_started;
  return id;
}

Database::Txn* Database::FindTxn(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : it->second.get();
}

Status Database::WriteRowAttempt(Txn* txn, PageId table,
                                 const std::string& key,
                                 const std::string* value) {
  BTree tree(this, table);
  std::string old_raw;
  Status s = tree.Get(key, &old_raw);
  bool had_old;
  if (s.ok()) {
    had_old = true;
  } else if (s.IsNotFound()) {
    had_old = false;
  } else {
    return s;  // Busy (page miss) or corruption
  }
  if (value == nullptr && !had_old) return Status::NotFound("no such row");

  MiniTransaction mtr(txn->id);
  if (!txn->durably_registered) {
    s = txn_table_->Insert(TxnKey(txn->id),
                           EncodeTxnStateValue(TxnState::kActive), &mtr);
    if (!s.ok()) {
      mtr.Abort();
      return s;
    }
  }
  s = undo_tree_->Insert(UndoKey(txn->id, txn->next_undo_seq),
                         EncodeUndoValue(table, key, had_old, old_raw), &mtr);
  if (!s.ok()) {
    mtr.Abort();
    return s;
  }
  if (value != nullptr) {
    uint32_t version = 0;
    auto vit = table_versions_.find(table);
    if (vit != table_versions_.end()) version = vit->second;
    std::string row = EncodeRow(version, *value);
    s = had_old ? tree.Update(key, row, &mtr) : tree.Insert(key, row, &mtr);
  } else {
    s = tree.Delete(key, &mtr);
  }
  if (!s.ok()) {
    mtr.Abort();
    return s;
  }
  s = CommitMtr(&mtr);
  AURORA_CHECK(s.ok(), "CommitMtr failed");
  txn->undo.push_back(
      {txn->next_undo_seq, table, key, had_old, std::move(old_raw)});
  ++txn->next_undo_seq;
  txn->durably_registered = true;
  return Status::OK();
}

void Database::Put(TxnId txn, PageId table, const std::string& key,
                   const std::string& value,
                   std::function<void(Status)> done) {
  if (!open_) {
    done(fenced_ ? Status::Fenced("writer fenced by a newer volume epoch")
                 : Status::Unavailable("database not open"));
    return;
  }
  Txn* t = FindTxn(txn);
  if (t == nullptr || t->state != TxnState::kActive) {
    done(Status::Aborted("transaction not active"));
    return;
  }
  if (paused_ && txn >= pause_watermark_) {
    DeferForBackpressure([this, txn, table, key, value, done]() {
      Put(txn, table, key, value, done);
    });
    return;
  }
  if (in_backpressure()) {
    DeferForBackpressure([this, txn, table, key, value, done]() {
      Put(txn, table, key, value, done);
    });
    return;
  }
  ++stats_.writes;
  SimTime started = loop_->now();
  ChargeCpu(options_.cpu_per_statement, [this, txn, table, key, value, done,
                                         started]() {
    auto with_lock = [this, txn, table, key, value, done, started](Status ls) {
      if (!ls.ok()) {
        Txn* t = FindTxn(txn);
        if (t != nullptr) {
          RollbackInternal(t, [done, ls](Status) { done(ls); });
        } else {
          done(ls);
        }
        return;
      }
      auto attempt = [this, txn, table, key, value]() -> Status {
        Txn* t = FindTxn(txn);
        if (t == nullptr || t->state != TxnState::kActive) {
          return Status::Aborted("transaction gone");
        }
        return WriteRowAttempt(t, table, key, &value);
      };
      RunWithRetries(attempt, [this, done, started](Status s) {
        stats_.write_latency_us.Record(loop_->now() - started);
        done(s);
      });
    };
    Status s = locks_.Lock(txn, table, key, LockMode::kExclusive, with_lock);
    if (!s.IsBusy()) with_lock(s);
  });
}

void Database::Delete(TxnId txn, PageId table, const std::string& key,
                      std::function<void(Status)> done) {
  if (!open_) {
    done(fenced_ ? Status::Fenced("writer fenced by a newer volume epoch")
                 : Status::Unavailable("database not open"));
    return;
  }
  Txn* t = FindTxn(txn);
  if (t == nullptr || t->state != TxnState::kActive) {
    done(Status::Aborted("transaction not active"));
    return;
  }
  if (in_backpressure()) {
    DeferForBackpressure(
        [this, txn, table, key, done]() { Delete(txn, table, key, done); });
    return;
  }
  ++stats_.deletes;
  ChargeCpu(options_.cpu_per_statement, [this, txn, table, key, done]() {
    auto with_lock = [this, txn, table, key, done](Status ls) {
      if (!ls.ok()) {
        Txn* t = FindTxn(txn);
        if (t != nullptr) {
          RollbackInternal(t, [done, ls](Status) { done(ls); });
        } else {
          done(ls);
        }
        return;
      }
      auto attempt = [this, txn, table, key]() -> Status {
        Txn* t = FindTxn(txn);
        if (t == nullptr || t->state != TxnState::kActive) {
          return Status::Aborted("transaction gone");
        }
        return WriteRowAttempt(t, table, key, nullptr);
      };
      RunWithRetries(attempt, done);
    };
    Status s = locks_.Lock(txn, table, key, LockMode::kExclusive, with_lock);
    if (!s.IsBusy()) with_lock(s);
  });
}

void Database::Get(TxnId txn, PageId table, const std::string& key,
                   std::function<void(Result<std::string>)> done) {
  if (!open_) {
    done(fenced_ ? Status::Fenced("writer fenced by a newer volume epoch")
                 : Status::Unavailable("database not open"));
    return;
  }
  Txn* t = FindTxn(txn);
  if (t == nullptr || t->state != TxnState::kActive) {
    done(Status::Aborted("transaction not active"));
    return;
  }
  if (paused_ && txn >= pause_watermark_) {
    DeferForBackpressure(
        [this, txn, table, key, done]() { Get(txn, table, key, done); });
    return;
  }
  ++stats_.reads;
  SimTime started = loop_->now();
  ChargeCpu(options_.cpu_per_statement, [this, txn, table, key, done,
                                         started]() {
    auto with_lock = [this, txn, table, key, done, started](Status ls) {
      if (!ls.ok()) {
        Txn* t = FindTxn(txn);
        if (t != nullptr) {
          RollbackInternal(t, [done, ls](Status) { done(ls); });
        } else {
          done(ls);
        }
        return;
      }
      auto result = std::make_shared<std::string>();
      auto attempt = [this, table, key, result]() -> Status {
        BTree tree(this, table);
        return tree.Get(key, result.get());
      };
      RunWithRetries(attempt, [this, done, result, started](Status s) {
        stats_.read_latency_us.Record(loop_->now() - started);
        if (!s.ok()) {
          done(s);
          return;
        }
        uint32_t version;
        std::string value;
        Status ds = DecodeRow(*result, &version, &value);
        if (!ds.ok()) {
          done(ds);
          return;
        }
        done(std::move(value));
      });
    };
    Status s = locks_.Lock(txn, table, key, LockMode::kShared, with_lock);
    if (!s.IsBusy()) with_lock(s);
  });
}

void Database::SnapshotGet(TxnId txn, PageId table, const std::string& key,
                           std::function<void(Result<std::string>)> done) {
  if (!open_) {
    done(fenced_ ? Status::Fenced("writer fenced by a newer volume epoch")
                 : Status::Unavailable("database not open"));
    return;
  }
  (void)txn;
  ++stats_.reads;
  SimTime started = loop_->now();
  ChargeCpu(options_.cpu_per_statement, [this, table, key, done, started]() {
    // Consistent (lock-free) read: if another active transaction holds the
    // row exclusively, reconstruct the pre-image from its undo chain —
    // undo-based snapshot isolation as in InnoDB consistent reads.
    for (const auto& [id, t] : txns_) {
      if (t->state != TxnState::kActive) continue;
      for (auto it = t->undo.rbegin(); it != t->undo.rend(); ++it) {
        if (it->table != table || it->key != key) continue;
        if (!it->had_old) {
          done(Status::NotFound("row created by in-flight txn"));
          return;
        }
        uint32_t version;
        std::string value;
        Status ds = DecodeRow(it->old_value, &version, &value);
        if (ds.ok()) {
          done(std::move(value));
        } else {
          done(ds);
        }
        return;
      }
    }
    auto result = std::make_shared<std::string>();
    auto attempt = [this, table, key, result]() -> Status {
      BTree tree(this, table);
      return tree.Get(key, result.get());
    };
    RunWithRetries(attempt, [this, done, result, started](Status s) {
      stats_.read_latency_us.Record(loop_->now() - started);
      if (!s.ok()) {
        done(s);
        return;
      }
      uint32_t version;
      std::string value;
      Status ds = DecodeRow(*result, &version, &value);
      if (ds.ok()) {
        done(std::move(value));
      } else {
        done(ds);
      }
    });
  });
}

void Database::Scan(
    TxnId txn, PageId table, const std::string& start, int limit,
    std::function<void(
        Result<std::vector<std::pair<std::string, std::string>>>)>
        done) {
  if (!open_) {
    done(fenced_ ? Status::Fenced("writer fenced by a newer volume epoch")
                 : Status::Unavailable("database not open"));
    return;
  }
  (void)txn;  // read-committed scan: no row locks
  ++stats_.reads;
  ChargeCpu(options_.cpu_per_statement, [this, table, start, limit, done]() {
    auto rows = std::make_shared<
        std::vector<std::pair<std::string, std::string>>>();
    auto attempt = [this, table, start, limit, rows]() -> Status {
      rows->clear();
      BTree tree(this, table);
      return tree.Scan(start, limit, rows.get());
    };
    RunWithRetries(attempt, [done, rows](Status s) {
      if (!s.ok()) {
        done(s);
        return;
      }
      // Strip version stamps.
      for (auto& [k, raw] : *rows) {
        uint32_t version;
        std::string value;
        if (DecodeRow(raw, &version, &value).ok()) raw = std::move(value);
      }
      done(std::move(*rows));
    });
  });
}

void Database::Commit(TxnId txn, std::function<void(Status)> done) {
  if (fenced_) {
    done(Status::Fenced("writer fenced by a newer volume epoch"));
    return;
  }
  Txn* t = FindTxn(txn);
  if (t == nullptr) {
    done(Status::InvalidArgument("unknown transaction"));
    return;
  }
  if (t->state != TxnState::kActive) {
    done(Status::Aborted("transaction not active"));
    return;
  }
  t->commit_requested_at = loop_->now();
  if (!t->durably_registered) {
    // Read-only: nothing to harden.
    stats_.commit_latency_us.Record(0);
    ++stats_.txns_committed;
    locks_.ReleaseAll(txn);
    txns_.erase(txn);
    done(Status::OK());
    return;
  }
  if (in_backpressure()) {
    DeferForBackpressure([this, txn, done]() { Commit(txn, done); });
    return;
  }
  auto attempt = [this, txn]() -> Status {
    Txn* t = FindTxn(txn);
    if (t == nullptr) return Status::Aborted("transaction gone");
    MiniTransaction mtr(txn);
    Status s = txn_table_->Update(TxnKey(txn),
                                  EncodeTxnStateValue(TxnState::kCommitted),
                                  &mtr);
    if (!s.ok()) {
      mtr.Abort();
      return s;
    }
    s = CommitMtr(&mtr);
    if (!s.ok()) return s;
    t->commit_lsn = mtr.commit_lsn();
    return Status::OK();
  };
  RunWithRetries(attempt, [this, txn, done](Status s) {
    Txn* t = FindTxn(txn);
    if (!s.ok() || t == nullptr) {
      done(s.ok() ? Status::Aborted("transaction gone") : s);
      return;
    }
    // §4.2.2: set the transaction aside; the commit completes when
    // VDL >= commit LSN.
    t->state = TxnState::kCommitted;  // logically decided; ack pending
    t->commit_cb = done;
    commit_queue_[t->commit_lsn] = txn;
    AdvanceDurability();
  });
}

void Database::Rollback(TxnId txn, std::function<void(Status)> done) {
  Txn* t = FindTxn(txn);
  if (t == nullptr) {
    done(Status::InvalidArgument("unknown transaction"));
    return;
  }
  RollbackInternal(t, std::move(done));
}

void Database::RollbackInternal(Txn* t, std::function<void(Status)> done) {
  t->state = TxnState::kAborted;
  UndoOneEntry(t, t->undo.size(), std::move(done));
}

void Database::UndoOneEntry(Txn* t, size_t remaining,
                            std::function<void(Status)> done) {
  if (remaining == 0) {
    TxnId id = t->id;
    bool registered = t->durably_registered;
    if (!registered) {
      locks_.ReleaseAll(id);
      ++stats_.txns_aborted;
      txns_.erase(id);
      done(Status::OK());
      return;
    }
    // Durably mark aborted, then release.
    auto attempt = [this, id]() -> Status {
      MiniTransaction mtr(id);
      Status s = txn_table_->Update(TxnKey(id),
                                    EncodeTxnStateValue(TxnState::kAborted),
                                    &mtr);
      if (s.IsNotFound()) return Status::OK();  // already purged
      if (!s.ok()) {
        mtr.Abort();
        return s;
      }
      return CommitMtr(&mtr);
    };
    RunWithRetries(attempt, [this, id, done](Status s) {
      locks_.ReleaseAll(id);
      ++stats_.txns_aborted;
      purge_queue_.push_back(id);
      txns_.erase(id);
      done(s);
    });
    return;
  }
  const Txn::UndoEntry& e = t->undo[remaining - 1];
  TxnId id = t->id;
  auto attempt = [this, e]() -> Status {
    // Idempotent logical undo: restore the old value (or remove the
    // inserted row). Idempotence matters because recovery may replay this.
    MiniTransaction mtr(kInvalidTxn);
    BTree tree(this, e.table);
    Status s;
    if (e.had_old) {
      s = tree.Upsert(e.key, e.old_value, &mtr);
    } else {
      s = tree.Delete(e.key, &mtr);
      if (s.IsNotFound()) s = Status::OK();
    }
    if (!s.ok()) {
      mtr.Abort();
      return s;
    }
    return CommitMtr(&mtr);
  };
  RunWithRetries(attempt, [this, id, remaining, done](Status s) {
    Txn* t = FindTxn(id);
    if (t == nullptr) {
      done(Status::Aborted("transaction gone during rollback"));
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    UndoOneEntry(t, remaining - 1, done);
  });
}

void Database::PurgeTick() {
  const uint64_t gen = generation_;
  // Purge must keep pace with the commit rate or the undo/txn-table trees
  // grow without bound; reschedule aggressively while a backlog exists.
  SimDuration next = purge_queue_.size() > 64
                         ? std::max<SimDuration>(options_.purge_interval / 100,
                                                 Micros(50))
                         : options_.purge_interval;
  purge_timer_ = loop_->Schedule(next, [this, gen] {
    if (gen == generation_ && open_) PurgeTick();
  });
  if (purge_queue_.empty()) return;
  PurgeChain(gen, std::min<size_t>(purge_queue_.size(), 64));
}

void Database::PurgeChain(uint64_t gen, size_t budget) {
  if (gen != generation_ || budget == 0 || purge_queue_.empty()) return;
  PurgeOne(gen, [this, gen, budget]() { PurgeChain(gen, budget - 1); });
}

void Database::PurgeOne(uint64_t gen, std::function<void()> next) {
  if (purge_queue_.empty()) return;
  TxnId id = purge_queue_.front();
  auto attempt = [this, id]() -> Status {
    // Delete up to a chunk of the transaction's undo records plus (when
    // done) its transaction-table row, in one MTR.
    std::vector<std::pair<std::string, std::string>> rows;
    Status s = undo_tree_->Scan(UndoKey(id, 0), 33, &rows);
    if (!s.ok()) return s;
    std::string prefix = UndoKey(id, 0).substr(0, 9);  // "u" + txn id
    MiniTransaction mtr(kInvalidTxn);
    int deleted = 0;
    bool more = false;
    for (const auto& [k, v] : rows) {
      if (k.compare(0, prefix.size(), prefix) != 0) break;
      if (deleted == 32) {
        more = true;
        break;
      }
      s = undo_tree_->Delete(k, &mtr);
      if (!s.ok()) {
        mtr.Abort();
        return s;
      }
      ++deleted;
    }
    if (!more) {
      s = txn_table_->Delete(TxnKey(id), &mtr);
      if (!s.ok() && !s.IsNotFound()) {
        mtr.Abort();
        return s;
      }
      purge_done_ = true;
    } else {
      purge_done_ = false;
    }
    if (mtr.empty()) return Status::OK();
    return CommitMtr(&mtr);
  };
  purge_done_ = false;
  RunWithRetries(attempt, [this, gen, id, next = std::move(next)](Status s) {
    if (gen != generation_) return;
    if (s.ok() && purge_done_ && !purge_queue_.empty() &&
        purge_queue_.front() == id) {
      purge_queue_.pop_front();
    }
    if (next) next();
  });
}

// --------------------------------------------------------------------------
// Watermarks & replication
// --------------------------------------------------------------------------

void Database::PublishPgSnapshot(PgId pg) {
  auto tail_it = last_lsn_per_pg_.find(pg);
  Lsn tail = tail_it == last_lsn_per_pg_.end() ? kInvalidLsn : tail_it->second;
  if (tail > vdl_) return;  // in-flight writes; batches will carry hints
  PgmrplMsg m;
  m.pg = pg;
  m.pgmrpl = ComputePgmrpl();
  m.has_snapshot = true;
  m.vdl_snapshot = vdl_;
  m.pg_tail = tail;
  std::string payload;
  m.EncodeTo(&payload);
  for (sim::NodeId node : control_plane_->membership(pg).nodes) {
    network_->Send(node_id_, node, kMsgPgmrplUpdate, payload);
  }
}

Lsn Database::ComputePgmrpl() const {
  // §4.2.3: the low-water mark below which no read request will ever come —
  // the min over outstanding storage reads and replica read points, or the
  // current VDL if none are outstanding.
  Lsn low = vdl_;
  for (const auto& [req, pr] : pending_reads_) {
    low = std::min(low, pr.read_point);
  }
  for (const auto& [node, rp] : replica_read_points_) {
    low = std::min(low, rp);
  }
  return low;
}

void Database::PgmrplTick() {
  const uint64_t gen = generation_;
  pgmrpl_timer_ = loop_->Schedule(options_.pgmrpl_interval, [this, gen] {
    if (gen == generation_ && open_) PgmrplTick();
  });
  Lsn pgmrpl = ComputePgmrpl();
  last_broadcast_pgmrpl_ = pgmrpl;
  // Explicit updates go to a rotating cohort of PGs (idle PGs never see
  // batches, whose hints otherwise carry the value).
  const size_t num_pgs = control_plane_->num_pgs();
  if (num_pgs == 0) return;
  const size_t cohort = std::min<size_t>(num_pgs, 8);
  for (size_t i = 0; i < cohort; ++i) {
    PgId pg = static_cast<PgId>((pgmrpl_cursor_ + i) % num_pgs);
    PgmrplMsg m;
    m.pg = pg;
    m.pgmrpl = pgmrpl;
    // Quiescent PG (no in-flight records): publish a consistent
    // completeness snapshot so its segments can serve reads at the current
    // VDL even though their SCL is far behind it.
    auto tail_it = last_lsn_per_pg_.find(pg);
    Lsn tail = tail_it == last_lsn_per_pg_.end() ? kInvalidLsn
                                                 : tail_it->second;
    if (tail <= vdl_) {
      m.has_snapshot = true;
      m.vdl_snapshot = vdl_;
      m.pg_tail = tail;
    }
    std::string payload;
    m.EncodeTo(&payload);
    const PgMembership& members = control_plane_->membership(pg);
    for (sim::NodeId node : members.nodes) {
      network_->Send(node_id_, node, kMsgPgmrplUpdate, payload);
    }
  }
  pgmrpl_cursor_ = static_cast<PgId>((pgmrpl_cursor_ + cohort) % num_pgs);
}

void Database::ZeroDowntimePatch(SimDuration patch_time,
                                 std::function<void(Status)> done) {
  if (!open_ || paused_) {
    done(Status::Busy("engine not ready for patching"));
    return;
  }
  paused_ = true;
  pause_watermark_ = next_txn_;
  const uint64_t gen = generation_;
  // Wait for the instant with no active transactions (Figure 12): statements
  // of new transactions are held at the door, pre-pause transactions drain
  // at their next boundary.
  // The stored callback holds itself only weakly; the scheduled retry event
  // carries the strong reference. No self-cycle, so the closure (and `done`)
  // is freed as soon as the wait ends.
  auto wait_quiet = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_wait = wait_quiet;
  *wait_quiet = [this, gen, patch_time, done, weak_wait]() {
    if (gen != generation_) return;
    bool quiet = true;
    for (const auto& [id, t] : txns_) {
      if (id < pause_watermark_ && t->state == TxnState::kActive) {
        quiet = false;
        break;
      }
    }
    if (!quiet || !commit_queue_.empty()) {
      zdp_timer_ = loop_->Schedule(Millis(1), [next = weak_wait.lock()]() {
        if (next) (*next)();
      });
      return;
    }
    // Spool application state to local ephemeral storage, patch the
    // engine, reload: user sessions stay connected throughout.
    zdp_timer_ = loop_->Schedule(patch_time, [this, gen, done]() {
      if (gen != generation_) return;
      paused_ = false;
      DrainBackpressure();
      done(Status::OK());
    });
  };
  (*wait_quiet)();
}

void Database::AttachReplica(sim::NodeId replica_node) {
  replicas_.push_back(replica_node);
}

void Database::DetachReplica(sim::NodeId replica_node) {
  replicas_.erase(std::remove(replicas_.begin(), replicas_.end(),
                              replica_node),
                  replicas_.end());
  replica_read_points_.erase(replica_node);
}

void Database::ReplicaShipTick() {
  const uint64_t gen = generation_;
  ship_timer_ = loop_->Schedule(options_.replica_ship_interval, [this, gen] {
    if (gen == generation_ && open_) ReplicaShipTick();
  });
  if (replicas_.empty()) {
    replica_stream_buffer_.clear();
    replica_commit_buffer_.clear();
    return;
  }
  if (replica_stream_buffer_.empty() && replica_commit_buffer_.empty() &&
      vdl_ == last_shipped_vdl_) {
    return;
  }
  ReplicaStreamMsg msg;
  msg.vdl = vdl_;
  msg.records = std::move(replica_stream_buffer_);
  msg.commits = std::move(replica_commit_buffer_);
  replica_stream_buffer_.clear();
  replica_commit_buffer_.clear();
  last_shipped_vdl_ = vdl_;
  std::string payload;
  msg.EncodeTo(&payload);
  // One encoded stream shared by every replica copy: the fan-out neither
  // re-encodes nor re-copies the record blob per receiver.
  auto body = std::make_shared<const std::string>(std::move(payload));
  for (sim::NodeId node : replicas_) {
    network_->Send(node_id_, node, kMsgReplicaLogStream, std::string(), body);
  }
}

void Database::HandleReplicaReadPoint(const sim::Message& msg) {
  ReplicaReadPointMsg m;
  if (!ReplicaReadPointMsg::DecodeFrom(msg.payload(), &m).ok()) return;
  replica_read_points_[msg.from] = m.read_point;
}

// --------------------------------------------------------------------------
// Recovery (§4.3)
// --------------------------------------------------------------------------

void Database::Recover(std::function<void(Status)> done) {
  if (control_plane_->num_pgs() == 0) {
    done(Status::InvalidArgument("empty volume; use Bootstrap()"));
    return;
  }
  Crash();  // make sure all volatile state is reset
  fenced_ = false;  // a recovering instance starts fresh at the new epoch
  ++generation_;
  recovery_ = std::make_shared<RecoveryState>();
  recovery_->done = std::move(done);
  recovery_->req_id = next_req_++;
  recovery_->started_at = loop_->now();
  RecoveryCollectInventories(recovery_);
}

void Database::RecoveryCollectInventories(std::shared_ptr<RecoveryState> rs) {
  if (recovery_ != rs || rs->phase != 1) return;
  // (Re)request inventories from every PG lacking a read quorum of
  // responses.
  const size_t num_pgs = control_plane_->num_pgs();
  for (PgId pg = 0; pg < num_pgs; ++pg) {
    if (rs->inventory_acks[pg].size() >=
        static_cast<size_t>(options_.quorum.read_quorum)) {
      continue;
    }
    InventoryReqMsg req;
    req.req_id = rs->req_id;
    req.pg = pg;
    std::string payload;
    req.EncodeTo(&payload);
    auto body = std::make_shared<const std::string>(std::move(payload));
    const PgMembership& members = control_plane_->membership(pg);
    for (sim::NodeId node : members.nodes) {
      network_->Send(node_id_, node, kMsgInventoryReq, std::string(), body);
    }
  }
  const uint64_t gen = generation_;
  rs->retry_event = loop_->Schedule(Millis(100), [this, gen, rs] {
    if (gen != generation_) return;
    RecoveryCollectInventories(rs);
  });
}

void Database::HandleInventoryResp(const sim::Message& msg) {
  InventoryRespMsg resp;
  if (!InventoryRespMsg::DecodeFrom(msg.payload(), &resp).ok()) return;
  auto rs = recovery_;
  if (!rs || rs->phase != 1 || resp.req_id != rs->req_id) return;
  auto& entries = rs->union_entries[resp.pg];
  for (const InventoryEntry& e : resp.entries) {
    entries.emplace(e.lsn, e);
  }
  rs->floor = std::max(rs->floor, resp.vdl_hint);
  rs->inventory_acks[resp.pg].insert(resp.replica);

  const size_t num_pgs = control_plane_->num_pgs();
  for (PgId pg = 0; pg < num_pgs; ++pg) {
    if (rs->inventory_acks[pg].size() <
        static_cast<size_t>(options_.quorum.read_quorum)) {
      return;  // still waiting
    }
  }
  loop_->Cancel(rs->retry_event);
  rs->phase = 2;
  RecoveryComputeAndTruncate(rs);
}

void Database::RecoveryComputeAndTruncate(std::shared_ptr<RecoveryState> rs) {
  // Walk the volume-wide backlink chain from the durable floor (the
  // highest VDL hint any segment holds: everything at or below it once
  // reached a write quorum, so it is both complete and durable). Every
  // record above the floor that survives on any responder is in the union;
  // the walk ends at the first hole — which is visible because each
  // record's vprev names its exact predecessor. The VCL is the end of the
  // walk and the VDL the highest CPL on it (§4.1/§4.3). The floor itself
  // is a CPL by construction (it was a VDL).
  // Records inside a previously annulled range (above a recorded truncation
  // point, within the dead incarnation's LAL window) may survive on replicas
  // that missed the truncate quorum and later resurface via gossip. They
  // belong to a fenced epoch and must never rejoin the chain.
  auto annulled = [this](Lsn lsn) {
    for (const auto& tr : control_plane_->truncations()) {
      if (lsn > tr.above && lsn <= tr.above + options_.lal) return true;
    }
    return false;
  };
  std::map<Lsn, const InventoryEntry*> by_vprev;
  for (const auto& [pg, entries] : rs->union_entries) {
    for (const auto& [lsn, e] : entries) {
      if (lsn > rs->floor && !annulled(lsn)) by_vprev[e.vprev] = &e;
    }
  }
  Lsn vcl = rs->floor;
  Lsn vdl = rs->floor;
  auto it = by_vprev.find(vcl);
  while (it != by_vprev.end()) {
    vcl = it->second->lsn;
    if (it->second->flags & kFlagCpl) vdl = vcl;
    it = by_vprev.find(vcl);
  }
  rs->new_vdl = vdl;
  vcl_ = vcl;

  // Epoch-versioned truncation (§4.3): bump the volume epoch durably, then
  // command every replica to drop records above the VDL. The annulled range
  // extends to VDL + LAL — the highest LSN the dead incarnation could ever
  // have allocated — and new LSNs start above it.
  rs->new_epoch = control_plane_->volume_epoch() + 1;
  control_plane_->set_volume_epoch(rs->new_epoch);
  control_plane_->RecordTruncation(rs->new_epoch, vdl);

  RecoveryResendTruncates(rs);
}

void Database::RecoveryResendTruncates(std::shared_ptr<RecoveryState> rs) {
  const size_t num_pgs = control_plane_->num_pgs();
  for (PgId pg = 0; pg < num_pgs; ++pg) {
    if (rs->truncate_acks[pg].size() >=
        static_cast<size_t>(options_.quorum.write_quorum)) {
      continue;
    }
    TruncateReqMsg req;
    req.req_id = rs->req_id;
    req.pg = pg;
    req.epoch = rs->new_epoch;
    req.truncate_above = rs->new_vdl;
    std::string payload;
    req.EncodeTo(&payload);
    // All six copies share one encoded request (zero-copy fan-out).
    auto body = std::make_shared<const std::string>(std::move(payload));
    const PgMembership& members = control_plane_->membership(pg);
    for (sim::NodeId node : members.nodes) {
      network_->Send(node_id_, node, kMsgTruncateReq, std::string(), body);
    }
  }
  // Periodic resend until every PG has a write quorum of truncate acks.
  const uint64_t gen = generation_;
  rs->retry_event = loop_->Schedule(Millis(100), [this, gen, rs]() {
    if (gen != generation_ || recovery_ != rs || rs->phase != 2) return;
    RecoveryResendTruncates(rs);
  });
}

void Database::HandleTruncateAck(const sim::Message& msg) {
  TruncateAckMsg ack;
  if (!TruncateAckMsg::DecodeFrom(msg.payload(), &ack).ok()) return;
  auto rs = recovery_;
  if (!rs || rs->phase != 2 || ack.req_id != rs->req_id) return;
  if (ack.status_code != static_cast<uint8_t>(Status::Code::kOk)) return;
  rs->truncate_acks[ack.pg].insert(ack.replica);
  const size_t num_pgs = control_plane_->num_pgs();
  for (PgId pg = 0; pg < num_pgs; ++pg) {
    if (rs->truncate_acks[pg].size() <
        static_cast<size_t>(options_.quorum.write_quorum)) {
      return;
    }
  }
  loop_->Cancel(rs->retry_event);
  rs->phase = 3;
  RecoveryFinish(rs);
}

void Database::RecoveryFinish(std::shared_ptr<RecoveryState> rs) {
  // Rebuild the runtime state the paper describes (§4.2.1): watermarks,
  // per-PG backlink tails, and an LSN allocator starting above the annulled
  // range.
  volume_epoch_ = rs->new_epoch;
  vdl_ = rs->new_vdl;
  vcl_ = std::max(vcl_, vdl_);
  max_allocated_ = vdl_;
  last_vol_lsn_ = vdl_;
  next_lsn_ = vdl_ + options_.lal + 1;
  lal_gap_top_ = vdl_ + options_.lal;
  // Transaction ids are namespaced by volume epoch so a new incarnation
  // can never collide with unpurged undo/txn-table rows of a previous one.
  next_txn_ = (volume_epoch_ << 40) + 1;
  for (const auto& [pg, entries] : rs->union_entries) {
    Lsn tail = kInvalidLsn;
    for (const auto& [lsn, e] : entries) {
      if (lsn <= vdl_) tail = std::max(tail, lsn);
    }
    last_lsn_per_pg_[pg] = tail;
  }
  // Replica SCL knowledge restarts empty; reads will discover it. Open for
  // business, then fetch the system catalog and run undo in background.
  auto attempt = [this]() -> Status { return EnsureSystemTrees(); };
  RunWithRetries(attempt, [this, rs](Status s) {
    recovery_.reset();
    if (!s.ok()) {
      rs->done(s);
      return;
    }
    open_ = true;
    ScheduleTimers();
    rs->done(Status::OK());
    StartBackgroundUndo();
  });
}

Status Database::EnsureSystemTrees() {
  Result<Page*> meta = GetPage(meta_page_id_);
  if (!meta.ok()) return meta.status();
  pool_.Pin(meta_page_id_);
  Slice v;
  PageId anchor;
  uint32_t version;
  if (!(*meta)->GetRecord(kTxnTableName, &v) ||
      !DecodeCatalogValue(v, &anchor, &version)) {
    return Status::Corruption("transaction table missing from catalog");
  }
  txn_table_ = std::make_unique<BTree>(this, anchor);
  if (!(*meta)->GetRecord(kUndoTreeName, &v) ||
      !DecodeCatalogValue(v, &anchor, &version)) {
    return Status::Corruption("undo tree missing from catalog");
  }
  undo_tree_ = std::make_unique<BTree>(this, anchor);
  return Status::OK();
}

void Database::StartBackgroundUndo() {
  // §4.3: "undo recovery can happen when the database is online". Scan the
  // transaction table for in-flight (ACTIVE) transactions and roll each
  // back through its durable undo records.
  auto actives = std::make_shared<std::vector<TxnId>>();
  auto scan_attempt = [this, actives]() -> Status {
    actives->clear();
    std::vector<std::pair<std::string, std::string>> rows;
    Status s = txn_table_->Scan("t", 100000, &rows);
    if (!s.ok()) return s;
    for (const auto& [k, v] : rows) {
      if (k.size() != 9 || k[0] != 't') continue;
      TxnId id = 0;
      for (int i = 1; i <= 8; ++i) {
        id = (id << 8) | static_cast<unsigned char>(k[i]);
      }
      next_txn_ = std::max(next_txn_, id + 1);
      if (v.size() == 1 &&
          static_cast<TxnState>(v[0]) == TxnState::kActive) {
        actives->push_back(id);
      } else {
        // Committed/aborted rows that the previous incarnation had not yet
        // purged: clean them up in the background.
        purge_queue_.push_back(id);
      }
    }
    return Status::OK();
  };
  RunWithRetries(scan_attempt, [this, actives](Status s) {
    if (!s.ok()) {
      AURORA_WARN("background undo scan failed: %s", s.ToString().c_str());
      if (undo_complete_cb_) undo_complete_cb_();
      return;
    }
    UndoNextRecoveredTxn(actives, 0);
  });
}

void Database::UndoNextRecoveredTxn(
    std::shared_ptr<std::vector<TxnId>> actives, size_t idx) {
  if (idx >= actives->size()) {
    if (undo_complete_cb_) undo_complete_cb_();
    return;
  }
  TxnId id = (*actives)[idx];
  next_txn_ = std::max(next_txn_, id + 1);
  // Reconstruct the in-memory undo mirror from the durable undo tree.
  auto txn = std::make_unique<Txn>();
  txn->id = id;
  txn->durably_registered = true;
  Txn* raw = txn.get();
  txns_[id] = std::move(txn);
  auto load_attempt = [this, raw, id]() -> Status {
    raw->undo.clear();
    std::vector<std::pair<std::string, std::string>> rows;
    Status s = undo_tree_->Scan(UndoKey(id, 0), 100000, &rows);
    if (!s.ok()) return s;
    std::string prefix = UndoKey(id, 0).substr(0, 9);
    uint64_t seq = 0;
    for (const auto& [k, v] : rows) {
      if (k.compare(0, prefix.size(), prefix) != 0) break;
      PageId table = kInvalidPage;
      std::string key, old_value;
      bool had_old = false;
      s = DecodeUndoValue(v, &table, &key, &had_old, &old_value);
      if (!s.ok()) return s;
      raw->undo.push_back({seq++, table, key, had_old, std::move(old_value)});
    }
    raw->next_undo_seq = seq;
    return Status::OK();
  };
  RunWithRetries(load_attempt, [this, actives, idx, id](Status s) {
    Txn* t = FindTxn(id);
    if (!s.ok() || t == nullptr) {
      UndoNextRecoveredTxn(actives, idx + 1);
      return;
    }
    RollbackInternal(t, [this, actives, idx](Status) {
      UndoNextRecoveredTxn(actives, idx + 1);
    });
  });
}

}  // namespace aurora
