#include "engine/buffer_pool.h"

#include "common/logging.h"

namespace aurora {

Page* BufferPool::Lookup(PageId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  Touch(&it->second, id);
  return &it->second.page;
}

void BufferPool::Touch(Entry* e, PageId id) {
  lru_.erase(e->lru_it);
  lru_.push_front(id);
  e->lru_it = lru_.begin();
}

Page* BufferPool::Install(PageId id, Page page) {
  ++stats_.installs;
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    // Already resident (duplicate fetch landed); keep the resident copy,
    // which may be newer (it absorbs writes).
    Touch(&it->second, id);
    return &it->second.page;
  }
  auto [new_it, inserted] = entries_.emplace(id, Entry(std::move(page)));
  lru_.push_front(id);
  new_it->second.lru_it = lru_.begin();
  return &new_it->second.page;
}

Page* BufferPool::InstallNew(PageId id) {
  return Install(id, Page(page_size_));
}

void BufferPool::Pin(PageId id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.pinned = true;
}

void BufferPool::Unpin(PageId id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.pinned = false;
}

void BufferPool::Discard(PageId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void BufferPool::Clear() {
  entries_.clear();
  lru_.clear();
}

void BufferPool::EvictExcess() { MaybeEvict(); }

void BufferPool::MaybeEvict() {
  if (entries_.size() <= capacity_) return;
  // Scan from coldest; skip pinned pages and pages whose latest change is
  // not yet durable (page LSN > VDL) — those must stay, even over capacity.
  auto it = lru_.end();
  size_t scanned = 0;
  while (entries_.size() > capacity_ && it != lru_.begin() &&
         scanned < entries_.size()) {
    --it;
    ++scanned;
    PageId id = *it;
    Entry& e = entries_.at(id);
    if (e.pinned) continue;
    if (e.page.IsFormatted() && e.page.page_lsn() > *vdl_) {
      ++stats_.eviction_blocked;
      continue;
    }
    if (evict_filter_ && !evict_filter_(id, e.page)) {
      ++stats_.eviction_blocked;
      continue;
    }
    auto to_erase = it++;
    lru_.erase(to_erase);
    entries_.erase(id);
    ++stats_.evictions;
  }
}

size_t BufferPool::CountAboveVdl() const {
  size_t n = 0;
  for (const auto& [id, e] : entries_) {
    if (e.page.IsFormatted() && e.page.page_lsn() > *vdl_) ++n;
  }
  return n;
}

}  // namespace aurora
