#ifndef AURORA_ENGINE_OPTIONS_H_
#define AURORA_ENGINE_OPTIONS_H_

#include <cstdint>

#include "common/units.h"
#include "quorum/quorum.h"

namespace aurora {

/// Tunables of the Aurora database engine (writer and replicas).
///
/// Scale note: the paper's production constants (16 KiB InnoDB pages, 10 GB
/// segments, LAL = 10 million) are usable but benchmarks default to scaled-
/// down values so whole-cluster simulations fit one machine; harness/scale.h
/// documents the mapping.
struct EngineOptions {
  /// Page size in bytes (InnoDB default 16 KiB).
  size_t page_size = 16384;

  /// Pages per protection group. pages_per_pg * page_size is the logical
  /// segment size ("currently 10GB" in §2.2).
  uint64_t pages_per_pg = 4096;

  /// Quorum scheme (V=6, Vw=4, Vr=3 per §2.1).
  QuorumConfig quorum = QuorumConfig::Aurora();

  /// LSN Allocation Limit: the writer may not allocate an LSN more than
  /// this far above the current VDL (§4.2.1; 10M in production). Since our
  /// LSNs are byte offsets, this is a log-bytes bound.
  uint64_t lal = 10000000;

  /// Group-commit batching: a per-PG batch is flushed when it reaches this
  /// many bytes or this much time has passed since its first record.
  size_t batch_max_bytes = 32768;
  SimDuration batch_linger = Micros(500);

  /// Writer buffer-pool capacity in pages.
  size_t buffer_pool_pages = 8192;

  /// CPU cost model (charged against the sim::Instance): per-statement
  /// base cost, and per-page-touch cost.
  SimDuration cpu_per_statement = Micros(18);
  SimDuration cpu_per_page_touch = Micros(2);

  /// Timeout after which an un-acked storage read is retried on another
  /// segment replica (outlier avoidance, §1).
  SimDuration read_retry_timeout = Millis(15);

  /// Lock-wait timeout; a transaction waiting longer aborts (safety net on
  /// top of deadlock detection).
  SimDuration lock_timeout = Seconds(5);

  /// How often the writer recomputes and broadcasts the PGMRPL (§4.2.3).
  SimDuration pgmrpl_interval = Millis(100);

  /// How often committed transactions' undo records are purged.
  SimDuration purge_interval = Millis(200);

  /// Replica log-stream shipping interval (lag is dominated by this plus
  /// one network hop, §4.2.4).
  SimDuration replica_ship_interval = Micros(500);
};

}  // namespace aurora

#endif  // AURORA_ENGINE_OPTIONS_H_
