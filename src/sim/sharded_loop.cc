#include "sim/sharded_loop.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace aurora::sim {

namespace {

constexpr SimTime SatAdd(SimTime t, SimDuration d) {
  return t > EventLoop::kNoEvent - d ? EventLoop::kNoEvent : t + d;
}

}  // namespace

ShardedEventLoop::ShardedEventLoop(uint32_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->loop.set_cross_shard_poster(shard.get());
    shards_.push_back(std::move(shard));
  }
  mailboxes_.resize(static_cast<size_t>(num_shards) * num_shards);
  for (auto& b : mailboxes_) b = std::make_unique<Mailbox>();
}

ShardedEventLoop::~ShardedEventLoop() { StopWorkers(); }

void ShardedEventLoop::set_workers(uint32_t n) {
  n = std::clamp<uint32_t>(n, 1, num_shards());
  if (n == workers_) return;
  StopWorkers();  // pool restarts lazily with the new width
  workers_ = n;
}

void ShardedEventLoop::Mail(uint32_t src, uint32_t dst, SimTime at,
                            EventFn fn) {
  Mailbox& b = box(src, dst);
  MutexLock lock(&b.mu);
  b.items.push_back(Staged{at, src, b.next_seq++, std::move(fn)});
  mailed_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedEventLoop::DrainMailboxes() {
  const uint32_t n = num_shards();
  for (uint32_t dst = 0; dst < n; ++dst) {
    Shard& d = *shards_[dst];
    bool grew = false;
    for (uint32_t src = 0; src < n; ++src) {
      Mailbox& b = box(src, dst);
      MutexLock lock(&b.mu);
      if (b.items.empty()) continue;
      grew = true;
      for (Staged& item : b.items) d.staged.push_back(std::move(item));
      b.items.clear();
    }
    // Merge order is the (at, src, seq) total order: deliver time first,
    // then source shard, then per-link sequence — independent of drain
    // timing, so admission order is a pure function of the simulation.
    if (grew) std::sort(d.staged.begin(), d.staged.end());
  }
}

bool ShardedEventLoop::Window(SimTime limit) {
  DrainMailboxes();

  // L: earliest unexecuted shard work (heaps + staged mail); Lc: earliest
  // control event.
  SimTime l = EventLoop::kNoEvent;
  for (auto& s : shards_) {
    SimTime t = s->loop.next_event_time();
    if (t < l) l = t;
    if (!s->staged.empty() && s->staged.front().at < l) l = s->staged.front().at;
  }
  SimTime lc = control_.next_event_time();

  SimTime first = std::min(l, lc);
  if (first == EventLoop::kNoEvent || first > limit) {
    if (limit != EventLoop::kNoEvent) {
      // Nothing at or below the target remains: close out the run by
      // advancing every clock (control included) to exactly `limit`.
      for (auto& s : shards_) s->loop.AdvanceTo(limit);
      control_.RunUntil(limit);
    }
    return false;
  }

  // Exclusive horizon. Capped by the next control event so a crash, chaos
  // action or invariant check takes effect at its exact virtual time —
  // control events at T happen before any shard event at T.
  SimTime h = SatAdd(l, lookahead_);
  if (lc < h) h = lc;
  if (limit != EventLoop::kNoEvent && limit + 1 < h) h = limit + 1;

  // Admit staged cross-shard mail below the horizon, in merge order.
  for (auto& s : shards_) {
    size_t admit = 0;
    while (admit < s->staged.size() && s->staged[admit].at < h) {
      s->loop.ScheduleAt(s->staged[admit].at, std::move(s->staged[admit].fn));
      ++admit;
    }
    if (admit > 0) {
      s->staged.erase(s->staged.begin(),
                      s->staged.begin() + static_cast<ptrdiff_t>(admit));
    }
  }

  RunShardsBelow(h);

  // Barrier time: every clock lands exactly here.
  SimTime barrier = h;
  if (limit < barrier) barrier = limit;
  if (barrier == EventLoop::kNoEvent) barrier = l;  // unbounded idle guard

  // Drain PostControl outboxes in shard order; items wanted "now" run at
  // this barrier.
  for (auto& s : shards_) {
    for (auto& [at, fn] : s->outbox) {
      control_.ScheduleAt(std::max(at, barrier), std::move(fn));
    }
    s->outbox.clear();
  }

  for (auto& s : shards_) s->loop.AdvanceTo(barrier);
  // Runs control events that landed exactly on the horizon (h == lc) with
  // all shards quiesced at `barrier`, and advances the control clock.
  control_.RunUntil(barrier);
  ++windows_;
  return true;
}

void ShardedEventLoop::RunShardsBelow(SimTime horizon) {
  // Skip all cross-thread traffic for windows where fewer than two shards
  // have runnable events (idle phases, serial setup, drained tails).
  uint32_t active = 0;
  Shard* only = nullptr;
  for (auto& s : shards_) {
    if (s->loop.next_event_time() < horizon) {
      ++active;
      only = s.get();
    }
  }
  if (active == 0) return;
  if (active == 1) {
    only->loop.RunEventsBelow(horizon);
    return;
  }
  const uint32_t w = std::min<uint32_t>(workers_, num_shards());
  if (w <= 1) {
    for (auto& s : shards_) s->loop.RunEventsBelow(horizon);
    return;
  }

  {
    std::unique_lock<std::mutex> lock(pool_mu_);
    if (threads_.empty()) StartWorkersLocked(w);
    pool_horizon_ = horizon;
    pool_remaining_ = static_cast<uint32_t>(threads_.size());
    ++pool_epoch_;
  }
  pool_cv_.notify_all();

  // The coordinator doubles as worker 0.
  for (uint32_t i = 0; i < num_shards(); i += w) {
    shards_[i]->loop.RunEventsBelow(horizon);
  }

  // Wall-clock barrier-wait accounting (straggler imbalance). Diagnostic
  // only: surfaces in bench JSON, never in a cluster metrics dump.
  // NOLINT(aurora-D1): measures real elapsed time of the harness itself,
  // not simulated time; the value is kept out of DumpMetricsJson.
  auto wait_start = std::chrono::steady_clock::now();  // NOLINT(aurora-D1): harness wall-clock diagnostic, excluded from deterministic output
  {
    std::unique_lock<std::mutex> lock(pool_mu_);
    done_cv_.wait(lock, [this] { return pool_remaining_ == 0; });
  }
  auto wait_end = std::chrono::steady_clock::now();  // NOLINT(aurora-D1): harness wall-clock diagnostic, excluded from deterministic output
  stall_wall_us_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(wait_end -
                                                            wait_start)
          .count());
}

void ShardedEventLoop::StartWorkersLocked(uint32_t n) {
  for (uint32_t idx = 1; idx < n; ++idx) {
    threads_.emplace_back([this, idx, stride = n] { WorkerMain(idx, stride); });
  }
}

void ShardedEventLoop::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (threads_.empty()) return;
    pool_shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  pool_shutdown_ = false;
}

void ShardedEventLoop::WorkerMain(uint32_t worker_index, uint32_t stride) {
  uint64_t seen_epoch = 0;
  for (;;) {
    SimTime horizon;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [this, seen_epoch] {
        return pool_shutdown_ || pool_epoch_ != seen_epoch;
      });
      if (pool_shutdown_) return;
      seen_epoch = pool_epoch_;
      horizon = pool_horizon_;
    }
    for (uint32_t i = worker_index; i < num_shards(); i += stride) {
      shards_[i]->loop.RunEventsBelow(horizon);
    }
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (--pool_remaining_ == 0) done_cv_.notify_one();
    }
  }
}

size_t ShardedEventLoop::pending() const {
  size_t n = control_.pending();
  for (const auto& s : shards_) n += s->loop.pending() + s->staged.size();
  for (const auto& b : mailboxes_) {
    MutexLock lock(&b->mu);
    n += b->items.size();
  }
  return n;
}

uint64_t ShardedEventLoop::events_executed() const {
  uint64_t n = control_.events_executed();
  for (const auto& s : shards_) n += s->loop.events_executed();
  return n;
}

uint64_t ShardedEventLoop::tombstones() const {
  uint64_t n = control_.tombstones();
  for (const auto& s : shards_) n += s->loop.tombstones();
  return n;
}

size_t ShardedEventLoop::heap_peak() const {
  size_t peak = control_.heap_peak();
  for (const auto& s : shards_) peak = std::max(peak, s->loop.heap_peak());
  return peak;
}

}  // namespace aurora::sim
