#include "sim/network.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/logging.h"
#include "sim/sharded_loop.h"

namespace aurora::sim {

namespace {
std::pair<NodeId, NodeId> Ordered(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

void Network::Register(NodeId node, Handler handler) {
  if (handlers_.size() <= node) {
    handlers_.resize(node + 1);
    stats_.resize(node + 1);
    nic_busy_until_.resize(node + 1, 0);
    latency_factor_.resize(node + 1, 1.0);
  }
  handlers_[node] = std::move(handler);
}

void Network::InstallShardRouting(ShardedEventLoop* pdes,
                                  std::vector<uint32_t> shard_of) {
  pdes_ = pdes;
  shard_of_node_ = std::move(shard_of);
  const NodeId n = static_cast<NodeId>(shard_of_node_.size());
  AURORA_CHECK(n > 0, "shard routing needs a placement map");
  // Pre-size every per-node vector so windows never resize them: shard
  // threads index these concurrently and only barriers may reallocate.
  if (handlers_.size() < n) {
    handlers_.resize(n);
    stats_.resize(n);
    nic_busy_until_.resize(n, 0);
    latency_factor_.resize(n, 1.0);
  }
  node_rng_.clear();
  node_rng_.reserve(n);
  for (NodeId i = 0; i < n; ++i) node_rng_.push_back(rng_.Fork());

  // Lookahead: every routed delivery is scheduled at least PropagationDelay's
  // floor (base/4) after the send, so the minimum floor over cross-shard
  // pairs bounds how far one shard can run ahead without missing mail.
  SimDuration lookahead = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (shard_of_node_[a] == shard_of_node_[b]) continue;
      SimDuration base = topology_->SameAz(a, b) ? options_.intra_az_latency
                                                 : options_.cross_az_latency;
      SimDuration floor = std::max<SimDuration>(1, base / 4);
      if (lookahead == 0 || floor < lookahead) lookahead = floor;
    }
  }
  pdes_->set_lookahead(lookahead == 0 ? 1 : lookahead);
}

EventLoop* Network::ContextLoop(NodeId from) {
  if (pdes_ == nullptr) return loop_;
  AURORA_CHECK(from < shard_of_node_.size(), "send from unplaced node");
  return pdes_->shard(shard_of_node_[from]);
}

Random& Network::RngFor(NodeId from) {
  if (pdes_ == nullptr) return rng_;
  AURORA_CHECK(from < node_rng_.size(), "send from unplaced node");
  return node_rng_[from];
}

bool Network::Reachable(NodeId from, NodeId to) const {
  if (down_nodes_.count(from) || down_nodes_.count(to)) return false;
  if (down_azs_.count(topology_->az_of(from)) ||
      down_azs_.count(topology_->az_of(to))) {
    return false;
  }
  if (partitions_.count(Ordered(from, to))) return false;
  if (oneway_partitions_.count({from, to})) return false;
  return true;
}

double Network::LatencyFactor(NodeId n) const {
  return n < latency_factor_.size() ? latency_factor_[n] : 1.0;
}

SimDuration Network::PropagationDelay(NodeId from, NodeId to) {
  SimDuration base;
  if (from == to) {
    base = options_.same_node_latency;
  } else if (topology_->SameAz(from, to)) {
    base = options_.intra_az_latency;
  } else {
    base = options_.cross_az_latency;
  }
  // Heavy-tailed jitter: multiply by a log-normal factor with median 1.
  double jitter = RngFor(from).LogNormal(1.0, options_.jitter_sigma);
  double factor = LatencyFactor(from) * LatencyFactor(to);
  auto d = static_cast<SimDuration>(static_cast<double>(base) * jitter * factor);
  // Floor at a quarter of the undisturbed base latency. With sigma 0.25 the
  // jitter binds here with probability ~2e-8 (a -5.5 sigma draw), so the
  // latency distribution is unchanged in practice — but the floor is a hard
  // guarantee the PDES lookahead derivation (InstallShardRouting) relies on.
  return std::max<SimDuration>(d, std::max<SimDuration>(1, base / 4));
}

void Network::Send(NodeId from, NodeId to, uint16_t type,
                   std::string payload) {
  SendImpl(from, to, type, std::move(payload), nullptr);
}

void Network::Send(NodeId from, NodeId to, uint16_t type, std::string header,
                   std::shared_ptr<const std::string> body) {
  SendImpl(from, to, type, std::move(header), std::move(body));
}

void Network::SendImpl(NodeId from, NodeId to, uint16_t type,
                       std::string header,
                       std::shared_ptr<const std::string> body) {
  if (from >= handlers_.size()) Register(from, nullptr);
  if (to >= handlers_.size()) Register(to, nullptr);

  // Under PDES routing a send runs on the source node's home shard (or at a
  // barrier, where every clock agrees); all per-sender state below —
  // stats_[from], nic_busy_until_[from], the per-node RNG — is therefore
  // only ever touched from that shard's context.
  EventLoop* ctx = ContextLoop(from);
  Random& rng = RngFor(from);

  const size_t wire_bytes = header.size() + (body ? body->size() : 0);
  NetStats& s = stats_[from];
  s.messages_sent++;
  s.bytes_sent += wire_bytes;
  s.packets_sent += 1 + wire_bytes / options_.mtu_bytes;

  // NIC serialization: a sender transmits one message at a time at the NIC's
  // line rate; concurrent sends queue behind each other. This happens before
  // any loss decision — a message dropped in transit (or addressed to a dead
  // host) still occupied the sender's NIC, so lossy links don't grant the
  // sender free bandwidth.
  SimTime start = std::max(ctx->now(), nic_busy_until_[from]);
  auto transmit = static_cast<SimDuration>(
      static_cast<double>(wire_bytes) / options_.node_bandwidth_bps * 1e6);
  nic_busy_until_[from] = start + transmit;

  if (!Reachable(from, to) || rng.Bernoulli(drop_probability_)) {
    if (oneway_partitions_.count({from, to})) adversary_.oneway_blocked++;
    s.messages_dropped++;
    return;
  }

  SimTime deliver_at = start + transmit + PropagationDelay(from, to);

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = type;
  msg.header = std::move(header);
  msg.body = std::move(body);
  msg.sent_at = ctx->now();
  // Frame checksum, stamped before any adversarial corruption so receivers
  // can tell a mangled frame from a clean one.
  msg.frame_crc = crc32c::Value(msg.header.data(), msg.header.size());
  if (msg.body) {
    msg.frame_crc =
        crc32c::Extend(msg.frame_crc, msg.body->data(), msg.body->size());
  }

  // Adversary: bit-flip corruption. The body fragment may be shared with
  // other in-flight fan-out copies, so corruption first materializes a
  // private single-fragment payload — never mutate the shared body.
  if (rng.Bernoulli(corrupt_probability_) && wire_bytes > 0) {
    if (msg.body) {
      msg.header.append(*msg.body);
      msg.body.reset();
    }
    uint64_t bit = rng.Uniform(msg.header.size() * 8);
    msg.header[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    adversary_.corrupted_injected++;
  }

  // Adversary: bounded reordering — an extra uniform delay lets messages
  // inside the window overtake each other.
  if (reorder_window_ > 0) {
    SimDuration extra = rng.UniformRange(0, reorder_window_);
    if (extra > 0) {
      deliver_at += extra;
      adversary_.reordered++;
    }
  }

  // Adversary: duplication. The copy shares the refcounted body and gets an
  // independently drawn delivery time, so it can arrive before the original.
  if (rng.Bernoulli(duplicate_probability_)) {
    SimTime dup_at = start + transmit + PropagationDelay(from, to);
    if (reorder_window_ > 0) dup_at += rng.UniformRange(0, reorder_window_);
    adversary_.duplicates_injected++;
    ScheduleDelivery(dup_at, msg);
  }

  ScheduleDelivery(deliver_at, std::move(msg));
}

void Network::ScheduleDelivery(SimTime at, Message msg) {
  const NodeId from = msg.from;
  const NodeId to = msg.to;
  // The delivery closure carries the message fragments as-is: the shared
  // body is never copied per receiver (the refcount crossing shards is the
  // only synchronized touch), and the whole capture fits EventFn's inline
  // buffer (no allocation per message in steady state).
  EventFn deliver = [this, msg = std::move(msg)]() {
    // Re-check reachability at delivery time: a crash while the message
    // was in flight loses it.
    if (!Reachable(msg.from, msg.to)) {
      if (oneway_partitions_.count({msg.from, msg.to})) {
        adversary_.oneway_blocked++;
      }
      return;
    }
    if (msg.to >= handlers_.size() || !handlers_[msg.to]) return;
    stats_[msg.to].messages_received++;
    handlers_[msg.to](msg);
  };
  if (pdes_ == nullptr) {
    loop_->ScheduleAt(at, std::move(deliver));
    return;
  }
  AURORA_CHECK(to < shard_of_node_.size(), "delivery to unplaced node");
  const uint32_t src_shard = shard_of_node_[from];
  const uint32_t dst_shard = shard_of_node_[to];
  if (src_shard == dst_shard) {
    // Same-shard traffic needs no synchronization: the destination heap is
    // the sender's own (or the world is quiesced at a barrier).
    pdes_->shard(dst_shard)->ScheduleAt(at, std::move(deliver));
  } else {
    pdes_->Mail(src_shard, dst_shard, at, std::move(deliver));
  }
}

bool Network::VerifyFrame(const Message& msg) {
  uint32_t crc = crc32c::Value(msg.header.data(), msg.header.size());
  if (msg.body) crc = crc32c::Extend(crc, msg.body->data(), msg.body->size());
  if (crc == msg.frame_crc) return true;
  adversary_.corrupted_dropped++;
  return false;
}

void Network::SetNodeDown(NodeId node, bool down) {
  if (down) {
    down_nodes_.insert(node);
  } else {
    down_nodes_.erase(node);
  }
}

void Network::SetAzDown(AzId az, bool down) {
  if (down) {
    down_azs_.insert(az);
  } else {
    down_azs_.erase(az);
  }
}

void Network::SetPartitioned(NodeId a, NodeId b, bool blocked) {
  if (blocked) {
    partitions_.insert(Ordered(a, b));
  } else {
    partitions_.erase(Ordered(a, b));
  }
}

void Network::SetPartitionedOneWay(NodeId from, NodeId to, bool blocked) {
  if (blocked) {
    oneway_partitions_.insert({from, to});
  } else {
    oneway_partitions_.erase({from, to});
  }
}

void Network::SetNodeLatencyFactor(NodeId node, double factor) {
  if (node >= latency_factor_.size()) Register(node, nullptr);
  latency_factor_[node] = factor;
}

const NetStats& Network::stats_of(NodeId node) const {
  static const NetStats kEmpty;
  return node < stats_.size() ? stats_[node] : kEmpty;
}

NetStats Network::total() const {
  NetStats t;
  for (const NetStats& s : stats_) {
    t.messages_sent += s.messages_sent;
    t.messages_received += s.messages_received;
    t.packets_sent += s.packets_sent;
    t.bytes_sent += s.bytes_sent;
    t.messages_dropped += s.messages_dropped;
  }
  return t;
}

void Network::ResetStats() {
  std::fill(stats_.begin(), stats_.end(), NetStats{});
}

}  // namespace aurora::sim
