#include "sim/chaos.h"

#include <algorithm>

#include "common/logging.h"
#include "engine/database.h"
#include "harness/cluster.h"
#include "sim/failure_injector.h"
#include "sim/network.h"
#include "storage/control_plane.h"
#include "storage/segment.h"
#include "storage/storage_node.h"

namespace aurora {

namespace {
// Human-readable trail is capped; the chaos.invariant_violations counter
// keeps the true total.
constexpr size_t kMaxRetainedViolations = 64;
}  // namespace

// ---------------------------------------------------------------------------
// InvariantChecker
// ---------------------------------------------------------------------------

InvariantChecker::InvariantChecker(AuroraCluster* cluster,
                                   SimDuration interval)
    : cluster_(cluster), interval_(interval) {}

InvariantChecker::~InvariantChecker() { Stop(); }

void InvariantChecker::Start() {
  if (running_) return;
  running_ = true;
  Tick();
}

void InvariantChecker::Stop() {
  if (!running_) return;
  running_ = false;
  cluster_->loop()->Cancel(timer_);
  timer_ = 0;
}

void InvariantChecker::Tick() {
  if (!running_) return;
  CheckNow();
  timer_ = cluster_->loop()->Schedule(interval_, [this] { Tick(); });
}

void InvariantChecker::Violation(std::string what) {
  ++cluster_->chaos_counters()->invariant_violations;
  AURORA_WARN("invariant violation @%llu: %s",
              static_cast<unsigned long long>(cluster_->loop()->now()),
              what.c_str());
  if (violations_.size() < kMaxRetainedViolations) {
    violations_.push_back("t=" +
                          std::to_string(cluster_->loop()->now()) + "us " +
                          std::move(what));
  }
}

void InvariantChecker::CheckNow() {
  ++checks_;
  ++cluster_->chaos_counters()->invariant_checks;

  Database* writer = cluster_->writer();

  // (1) Volume durability watermark: an open writer's VDL covers every
  // commit ever acknowledged, so the highest VDL ever observed is a floor.
  if (writer->is_open()) {
    if (max_vdl_seen_ != kInvalidLsn && writer->vdl() < max_vdl_seen_) {
      Violation("writer VDL regressed: " + std::to_string(writer->vdl()) +
                " < previously observed " + std::to_string(max_vdl_seen_));
    }
    max_vdl_seen_ = std::max(max_vdl_seen_, writer->vdl());
  }

  // Highest LSN any writer incarnation (current or zombie) ever allocated:
  // no segment can legitimately be complete beyond it.
  Lsn max_allocated = writer->max_allocated_lsn();
  for (size_t i = 0; i < cluster_->num_retired_writers(); ++i) {
    max_allocated =
        std::max(max_allocated, cluster_->retired_writer(i)->max_allocated_lsn());
  }

  const ControlPlane* cp = cluster_->control_plane();
  const auto& truncations = cp->truncations();

  for (size_t n = 0; n < cluster_->num_storage_nodes(); ++n) {
    StorageNode* sn = cluster_->storage_node(n);
    for (PgId pg = 0; pg < cp->num_pgs(); ++pg) {
      const Segment* seg = sn->segment(pg);
      if (seg == nullptr) continue;
      const std::string where = "node " + std::to_string(sn->id()) + " pg " +
                                std::to_string(pg);

      // (4) Materialization never outruns completeness.
      if (seg->applied_lsn() > seg->scl()) {
        Violation(where + ": applied_lsn " +
                  std::to_string(seg->applied_lsn()) + " > scl " +
                  std::to_string(seg->scl()));
      }
      // (5) Completeness never outruns allocation.
      if (max_allocated != kInvalidLsn && seg->scl() > max_allocated) {
        Violation(where + ": scl " + std::to_string(seg->scl()) +
                  " > max allocated " + std::to_string(max_allocated));
      }
      // (6) Durability hints never outrun the open writer's VDL.
      if (writer->is_open() && seg->vdl_hint() > writer->vdl()) {
        Violation(where + ": vdl_hint " + std::to_string(seg->vdl_hint()) +
                  " > writer vdl " + std::to_string(writer->vdl()));
      }

      SegmentBaseline& base = baselines_[{sn->id(), pg}];
      if (base.seg == seg) {
        // (2) SCL regression is legal only via epoch-versioned truncation.
        if (seg->scl() < base.scl) {
          bool truncated_at_epoch = false;
          for (const auto& tr : truncations) {
            if (tr.epoch == seg->epoch()) truncated_at_epoch = true;
          }
          if (seg->epoch() <= base.epoch && !truncated_at_epoch) {
            Violation(where + ": scl regressed " + std::to_string(base.scl) +
                      " -> " + std::to_string(seg->scl()) +
                      " without a newer epoch or recorded truncation");
          }
        }
        // (3) Watermark monotonicity.
        if (seg->vdl_hint() < base.vdl_hint) {
          Violation(where + ": vdl_hint regressed " +
                    std::to_string(base.vdl_hint) + " -> " +
                    std::to_string(seg->vdl_hint()));
        }
        if (seg->pgmrpl() < base.pgmrpl) {
          Violation(where + ": pgmrpl regressed " +
                    std::to_string(base.pgmrpl) + " -> " +
                    std::to_string(seg->pgmrpl()));
        }
      }
      base.seg = seg;  // (re)installed segments re-baseline silently
      base.scl = seg->scl();
      base.vdl_hint = seg->vdl_hint();
      base.pgmrpl = seg->pgmrpl();
      base.epoch = seg->epoch();
    }
  }

  // (7) Membership-change audit: every configuration the control plane ever
  // installed, checked incrementally as history grows.
  const std::vector<ControlPlane::ConfigRecord> history = cp->ConfigHistory();
  for (size_t i = config_audit_pos_; i < history.size(); ++i) {
    const ControlPlane::ConfigRecord& rec = history[i];
    const std::string where =
        "pg " + std::to_string(rec.pg) + " config epoch " +
        std::to_string(rec.config_epoch);
    for (int a = 0; a < kReplicasPerPg; ++a) {
      for (int b = a + 1; b < kReplicasPerPg; ++b) {
        if (rec.nodes[a] == rec.nodes[b]) {
          Violation(where + ": host " + std::to_string(rec.nodes[a]) +
                    " holds two replica slots");
        }
      }
    }
    auto it = last_config_.find(rec.pg);
    if (it != last_config_.end()) {
      if (rec.config_epoch <= it->second.epoch) {
        Violation(where + ": epoch did not advance past " +
                  std::to_string(it->second.epoch));
      }
      int changed = 0;
      for (int s = 0; s < kReplicasPerPg; ++s) {
        if (rec.nodes[s] != it->second.nodes[s]) ++changed;
      }
      if (changed > 1) {
        Violation(where + ": " + std::to_string(changed) +
                  " slots changed in one epoch step (quorum intersection "
                  "requires at most one)");
      }
    }
    last_config_[rec.pg] = {rec.config_epoch, rec.nodes};
  }
  config_audit_pos_ = history.size();

  // (8) Committed-durability floor under AZ+1: within the envelope (<= 3 of
  // 6 current members down) the highest committed prefix ever seen on a
  // member must stay reachable from the live members.
  if (max_vdl_seen_ != kInvalidLsn) {
    sim::Network* net = cluster_->network();
    for (PgId pg = 0; pg < cp->num_pgs(); ++pg) {
      const PgMembership& members = cp->membership(pg);
      int down = 0;
      std::vector<const Segment*> live;
      for (sim::NodeId host : members.nodes) {
        StorageNode* n = cp->node(host);
        if (net->IsNodeDown(host) || n == nullptr || n->crashed()) {
          ++down;
          continue;
        }
        const Segment* seg = n->segment(pg);
        if (seg != nullptr) live.push_back(seg);
      }
      Lsn& tail = committed_tail_[pg];
      Lsn base = kInvalidLsn;
      for (const Segment* seg : live) {
        base = std::max(base, seg->scl());
        tail = std::max(tail, std::min(seg->scl(), max_vdl_seen_));
      }
      if (tail == kInvalidLsn || down > 3) continue;  // beyond AZ+1
      if (base != kInvalidLsn && base >= tail) continue;
      // The best live SCL is behind the committed tail (its holder died).
      // Every committed record above a live SCL was write-quorum acked, so
      // with <= 3 members down at least one live member still holds it in
      // its hot log (records are only GC'd below their holder's own SCL).
      // Bridge upward through the union of live hot logs.
      std::map<Lsn, Lsn> next;  // prev_pg_lsn -> lsn
      for (const Segment* seg : live) {
        for (const LogRecord* r : seg->RecordsAbove(base, SIZE_MAX)) {
          next[r->prev_pg_lsn] = r->lsn;
        }
      }
      Lsn cur = base;
      while (cur < tail) {
        auto bridge = next.find(cur);
        if (bridge == next.end()) break;
        cur = bridge->second;
      }
      if (cur < tail) {
        Violation("pg " + std::to_string(pg) + ": committed tail " +
                  std::to_string(tail) + " unreachable from live members (" +
                  std::to_string(down) + "/6 down, best live coverage " +
                  std::to_string(cur) + ")");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ChaosEngine
// ---------------------------------------------------------------------------

ChaosEngine::ChaosEngine(AuroraCluster* cluster, SimDuration checker_interval)
    : cluster_(cluster), checker_(cluster, checker_interval) {}

ChaosEngine::~ChaosEngine() = default;

void ChaosEngine::SetAdversary(const AdversaryConfig& cfg) {
  sim::Network* net = cluster_->network();
  net->set_drop_probability(cfg.drop_probability);
  net->set_duplicate_probability(cfg.duplicate_probability);
  net->set_reorder_window(cfg.reorder_window);
  net->set_corrupt_probability(cfg.corrupt_probability);
}

void ChaosEngine::At(SimDuration delay, std::string label,
                     sim::EventFn action) {
  cluster_->loop()->Schedule(
      delay, [this, label = std::move(label), action = std::move(action)] {
        ++cluster_->chaos_counters()->actions_executed;
        AURORA_INFO("chaos action @%llu: %s",
                    static_cast<unsigned long long>(cluster_->loop()->now()),
                    label.c_str());
        action();
      });
}

void ChaosEngine::CrashStorageAt(SimDuration delay, size_t index,
                                 SimDuration downtime) {
  At(delay, "crash storage #" + std::to_string(index), [this, index, downtime] {
    cluster_->failure_injector()->CrashNode(
        cluster_->storage_node(index)->id(), downtime);
  });
}

void ChaosEngine::FailAzAt(SimDuration delay, sim::AzId az,
                           SimDuration downtime) {
  At(delay, "fail az " + std::to_string(az),
     [this, az, downtime] { cluster_->failure_injector()->FailAz(az, downtime); });
}

void ChaosEngine::FailAzPlusOneAt(SimDuration delay, sim::AzId az,
                                  size_t extra_index, SimDuration downtime) {
  At(delay,
     "fail az " + std::to_string(az) + " + storage #" +
         std::to_string(extra_index),
     [this, az, extra_index, downtime] {
       cluster_->failure_injector()->FailAz(az, downtime);
       cluster_->failure_injector()->CrashNode(
           cluster_->storage_node(extra_index)->id(), downtime);
     });
}

void ChaosEngine::SlowNodeAt(SimDuration delay, sim::NodeId node,
                             double factor, SimDuration duration) {
  At(delay, "slow node " + std::to_string(node), [this, node, factor, duration] {
    cluster_->failure_injector()->SlowNode(node, factor, duration);
  });
}

void ChaosEngine::IsolateAt(SimDuration delay, sim::NodeId node) {
  At(delay, "isolate node " + std::to_string(node), [this, node] {
    sim::Topology* topo = cluster_->topology();
    for (sim::NodeId other = 0; other < topo->num_nodes(); ++other) {
      if (other != node) cluster_->network()->SetPartitioned(node, other, true);
    }
  });
}

void ChaosEngine::HealAt(SimDuration delay, sim::NodeId node) {
  At(delay, "heal node " + std::to_string(node), [this, node] {
    sim::Topology* topo = cluster_->topology();
    for (sim::NodeId other = 0; other < topo->num_nodes(); ++other) {
      if (other != node) cluster_->network()->SetPartitioned(node, other, false);
    }
  });
}

void ChaosEngine::PartitionOneWayAt(SimDuration delay, sim::NodeId from,
                                    sim::NodeId to) {
  At(delay,
     "cut " + std::to_string(from) + " -> " + std::to_string(to),
     [this, from, to] {
       cluster_->network()->SetPartitionedOneWay(from, to, true);
     });
}

void ChaosEngine::HealOneWayAt(SimDuration delay, sim::NodeId from,
                               sim::NodeId to) {
  At(delay,
     "heal " + std::to_string(from) + " -> " + std::to_string(to),
     [this, from, to] {
       cluster_->network()->SetPartitionedOneWay(from, to, false);
     });
}

void ChaosEngine::Run(SimDuration d) { cluster_->RunFor(d); }

}  // namespace aurora
