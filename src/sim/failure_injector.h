#ifndef AURORA_SIM_FAILURE_INJECTOR_H_
#define AURORA_SIM_FAILURE_INJECTOR_H_

#include <map>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace aurora::sim {

/// Orchestrates the "continuous low level background noise of node, disk and
/// network path failures" (§2.1) against a running cluster, plus targeted
/// large-blast-radius events (AZ loss). Components register crash/restart
/// hooks so a crash really discards their volatile state.
class FailureInjector {
 public:
  struct Hooks {
    /// Called when the node crashes (volatile state must be discarded).
    EventFn on_crash;
    /// Called when the node restarts (component re-initializes from
    /// durable state and rejoins).
    EventFn on_restart;
  };

  FailureInjector(EventLoop* loop, Network* network, const Topology* topology,
                  Random rng)
      : loop_(loop), network_(network), topology_(topology), rng_(rng) {}

  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  void RegisterNode(NodeId node, Hooks hooks) { hooks_[node] = std::move(hooks); }

  /// Crash-stops `node` for `downtime`, then restarts it. A zero downtime
  /// means permanent (no restart is scheduled).
  void CrashNode(NodeId node, SimDuration downtime);

  /// Restarts a crashed node immediately.
  void RestartNode(NodeId node);

  /// Takes an entire AZ down for `downtime` (fire/flood/roof, §2.1); all
  /// nodes in it crash, and restart together when it recovers. Permanent if
  /// downtime == 0.
  void FailAz(AzId az, SimDuration downtime);

  /// Degrades network latency to/from a node by `factor` for `duration`
  /// (congestion / hot node, §2.3).
  void SlowNode(NodeId node, double factor, SimDuration duration);

  /// Enables Poisson background noise: each registered node independently
  /// fails with mean time between failures `mttf`, staying down for an
  /// exponentially distributed time with mean `mean_downtime`.
  void EnableBackgroundNoise(SimDuration mttf, SimDuration mean_downtime);
  void DisableBackgroundNoise() { noise_enabled_ = false; }

  bool IsDown(NodeId node) const { return network_->IsNodeDown(node); }

  uint64_t crashes_injected() const { return crashes_; }
  uint64_t az_failures_injected() const { return az_failures_; }

 private:
  void ScheduleNextNoiseEvent();

  EventLoop* loop_;
  Network* network_;
  const Topology* topology_;
  Random rng_;
  std::map<NodeId, Hooks> hooks_;

  bool noise_enabled_ = false;
  SimDuration noise_mttf_ = 0;
  SimDuration noise_mean_downtime_ = 0;

  uint64_t crashes_ = 0;
  uint64_t az_failures_ = 0;
};

}  // namespace aurora::sim

#endif  // AURORA_SIM_FAILURE_INJECTOR_H_
