#ifndef AURORA_SIM_INSTANCE_H_
#define AURORA_SIM_INSTANCE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/event_loop.h"

namespace aurora::sim {

/// Compute capacity of a simulated EC2 instance, modelled as `vcpus` FCFS
/// servers. Database work items (parse/plan/execute CPU costs, lock
/// manager work, log formatting) are submitted as Execute() calls; when all
/// vCPUs are busy, work queues. This yields the linear instance-size scaling
/// of Figures 6 and 7 (each r3 size doubles vCPUs and memory) without
/// modelling an actual CPU.
struct InstanceOptions {
  int vcpus = 32;          // r3.8xlarge
  uint64_t memory_bytes = 244ull << 30;
  std::string name = "r3.8xlarge";
};

/// The r3 family used throughout §6.1.
inline InstanceOptions R3Large() { return {2, 15ull << 30, "r3.large"}; }
inline InstanceOptions R3XLarge() { return {4, 30ull << 30, "r3.xlarge"}; }
inline InstanceOptions R32XLarge() { return {8, 61ull << 30, "r3.2xlarge"}; }
inline InstanceOptions R34XLarge() { return {16, 122ull << 30, "r3.4xlarge"}; }
inline InstanceOptions R38XLarge() { return {32, 244ull << 30, "r3.8xlarge"}; }

class Instance {
 public:
  Instance(EventLoop* loop, InstanceOptions options)
      : loop_(loop),
        options_(options),
        core_free_(static_cast<size_t>(options.vcpus), 0) {}

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  /// Runs a CPU work item costing `cpu_cost` of one core's time; `done`
  /// fires when it completes (after any queueing delay).
  void Execute(SimDuration cpu_cost, EventFn done) {
    // Pick the earliest-free core (FCFS across a c-server queue).
    auto it = std::min_element(core_free_.begin(), core_free_.end());
    SimTime start = std::max(loop_->now(), *it);
    SimTime end = start + cpu_cost;
    *it = end;
    busy_ += cpu_cost;
    loop_->ScheduleAt(end, std::move(done));
  }

  /// Fraction of capacity used since the given time window start.
  double Utilization(SimTime window_start) const {
    SimDuration window = loop_->now() - window_start;
    if (window == 0) return 0;
    return static_cast<double>(busy_) /
           (static_cast<double>(window) * options_.vcpus);
  }

  const InstanceOptions& options() const { return options_; }
  int vcpus() const { return options_.vcpus; }
  uint64_t memory_bytes() const { return options_.memory_bytes; }

 private:
  EventLoop* loop_;
  InstanceOptions options_;
  std::vector<SimTime> core_free_;
  SimDuration busy_ = 0;
};

}  // namespace aurora::sim

#endif  // AURORA_SIM_INSTANCE_H_
