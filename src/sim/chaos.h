#ifndef AURORA_SIM_CHAOS_H_
#define AURORA_SIM_CHAOS_H_

#include <array>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "log/types.h"
#include "sim/event_loop.h"
#include "sim/topology.h"

namespace aurora {

class AuroraCluster;
class Segment;

/// Knobs for the fabric adversary (sim::Network). Everything is
/// seeded-deterministic: with all fields zero the network draws no extra
/// randomness, so an adversary-off run is byte-identical to the baseline.
struct AdversaryConfig {
  double drop_probability = 0.0;       // silent message loss
  double duplicate_probability = 0.0;  // second delivery at a scrambled time
  SimDuration reorder_window = 0;      // extra uniform [0, window] delay
  double corrupt_probability = 0.0;    // one bit flipped per affected frame
};

/// Continuously asserts cross-component safety properties on a simulation
/// timer while chaos runs. The catalog (see DESIGN.md §9):
///
///  1. Volume durability watermark: while the writer is open, its VDL never
///     falls below any VDL previously observed — acked commits (which sit at
///     or below the VDL) can never silently vanish, across crash recovery
///     and failover alike.
///  2. Per-segment SCL is non-decreasing except when annulled by an
///     epoch-versioned truncation (segment epoch advanced, or a truncation
///     is on record for the segment's current epoch).
///  3. Per-segment VDL hint and PGMRPL are monotone.
///  4. A segment never materializes past its completeness point
///     (applied_lsn <= scl).
///  5. No segment is "complete" past anything any writer incarnation ever
///     allocated (scl <= max over incarnations of max_allocated_lsn).
///  6. No segment's durability hint outruns the open writer's VDL
///     (vdl_hint <= writer vdl).
///  7. Membership-change audit over the control plane's config history:
///     per PG, config epochs are strictly increasing, every configuration
///     names six distinct hosts, and consecutive configurations differ in at
///     most one slot. Together with the repair protocol's install-before-
///     flip rule (the incoming member's installed state is a superset of the
///     donor's acked state), this is what keeps read/write quorums
///     intersecting across every config epoch.
///  8. No committed LSN is lost while a PG is within the AZ+1 envelope
///     (<= 3 of its 6 current members down): the highest committed prefix
///     ever observed on a member (min(scl, max VDL seen)) must stay
///     reachable from the live members — either directly covered by a live
///     SCL or bridgeable through the union of live hot logs.
///
/// Violations are counted in the cluster's ChaosCounters (chaos.* metrics)
/// and retained as human-readable strings for test assertions.
class InvariantChecker {
 public:
  InvariantChecker(AuroraCluster* cluster, SimDuration interval);
  ~InvariantChecker();

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  void Start();
  void Stop();
  /// Runs one full pass immediately (also called by the timer).
  void CheckNow();

  uint64_t checks() const { return checks_; }
  const std::vector<std::string>& violations() const { return violations_; }

 private:
  void Tick();
  void Violation(std::string what);

  struct SegmentBaseline {
    const Segment* seg = nullptr;  // identity: repair reinstalls reset it
    Lsn scl = kInvalidLsn;
    Lsn vdl_hint = kInvalidLsn;
    Lsn pgmrpl = kInvalidLsn;
    Epoch epoch = 0;
  };

  struct ConfigBaseline {
    uint64_t epoch = 0;
    std::array<sim::NodeId, kReplicasPerPg> nodes{};
  };

  AuroraCluster* cluster_;
  SimDuration interval_;
  uint64_t checks_ = 0;
  Lsn max_vdl_seen_ = kInvalidLsn;
  std::map<std::pair<sim::NodeId, PgId>, SegmentBaseline> baselines_;
  /// Invariant 7: how much of ConfigHistory() has been audited, and the
  /// last configuration seen per PG.
  size_t config_audit_pos_ = 0;
  std::map<PgId, ConfigBaseline> last_config_;
  /// Invariant 8: per-PG ratchet of the highest committed prefix ever
  /// observed on any member.
  std::map<PgId, Lsn> committed_tail_;
  std::vector<std::string> violations_;
  sim::EventId timer_ = 0;
  bool running_ = false;
};

/// Scripted chaos timelines on top of the FailureInjector and the network
/// adversary: a scenario is a set of labelled actions at fixed sim-time
/// offsets (AZ loss, node crashes, grey partitions, adversary toggles),
/// executed deterministically while an InvariantChecker watches the
/// cluster's safety properties. Chaos and failover tests compose their
/// scenarios from this instead of hand-rolling timer plumbing.
class ChaosEngine {
 public:
  /// `checker_interval` paces the InvariantChecker once Start()ed.
  explicit ChaosEngine(AuroraCluster* cluster,
                       SimDuration checker_interval = Millis(50));
  ~ChaosEngine();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  AuroraCluster* cluster() { return cluster_; }
  InvariantChecker* checker() { return &checker_; }

  // --- Fabric adversary ----------------------------------------------------
  void SetAdversary(const AdversaryConfig& cfg);
  void ClearAdversary() { SetAdversary(AdversaryConfig{}); }

  // --- Scripted timeline (delays are relative to "now") --------------------
  /// Schedules `action` to run `delay` from now; `label` identifies it in
  /// logs. Actions count into chaos.actions_executed.
  void At(SimDuration delay, std::string label, sim::EventFn action);
  void CrashStorageAt(SimDuration delay, size_t index, SimDuration downtime);
  void FailAzAt(SimDuration delay, sim::AzId az, SimDuration downtime);
  /// The §2.2 design fault: a whole AZ plus one extra host (storage node
  /// `extra_index`, which callers should pick outside `az`) go down
  /// together. AZ+1 leaves every PG a 3/6 read quorum, so no committed data
  /// may be lost (invariant 8) even though write availability is gone until
  /// repair restores quorum.
  void FailAzPlusOneAt(SimDuration delay, sim::AzId az, size_t extra_index,
                       SimDuration downtime);
  void SlowNodeAt(SimDuration delay, sim::NodeId node, double factor,
                  SimDuration duration);
  /// Cuts `node` off from every other host in both directions.
  void IsolateAt(SimDuration delay, sim::NodeId node);
  void HealAt(SimDuration delay, sim::NodeId node);
  /// Grey failure: `from` can no longer reach `to`; replies still flow.
  void PartitionOneWayAt(SimDuration delay, sim::NodeId from, sim::NodeId to);
  void HealOneWayAt(SimDuration delay, sim::NodeId from, sim::NodeId to);

  // --- Execution -----------------------------------------------------------
  void StartChecker() { checker_.Start(); }
  void StopChecker() { checker_.Stop(); }
  /// Runs the simulation for `d`; scheduled actions and invariant checks
  /// fire as their times arrive.
  void Run(SimDuration d);

 private:
  AuroraCluster* cluster_;
  InvariantChecker checker_;
};

}  // namespace aurora

#endif  // AURORA_SIM_CHAOS_H_
