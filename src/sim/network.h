#ifndef AURORA_SIM_NETWORK_H_
#define AURORA_SIM_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/inline_function.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/units.h"
#include "sim/event_loop.h"
#include "sim/topology.h"

namespace aurora::sim {

class ShardedEventLoop;

/// A message in flight between simulated hosts. Payloads are real serialized
/// bytes so that byte/packet accounting (the paper's PPS and bandwidth
/// bottlenecks, §1 and §3) reflects genuine wire sizes.
///
/// The payload is stored as two fragments: a small per-destination `header`
/// owned by the message, plus an optional refcounted `body` shared by every
/// copy in a fan-out (the sender serializes it once; delivery never copies
/// it). Receivers read through `payload()`, which is zero-copy whenever the
/// bytes live in one fragment; two-fragment consumers (the write batch path)
/// decode each fragment in place instead.
struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint16_t type = 0;
  std::string header;
  std::shared_ptr<const std::string> body;
  SimTime sent_at = 0;
  /// CRC32C over header+body, stamped by the fabric at send time (before any
  /// adversarial corruption). Receivers verify via Network::VerifyFrame so a
  /// bit-flipped frame is dropped before it reaches a decoder.
  uint32_t frame_crc = 0;

  size_t payload_size() const {
    return header.size() + (body ? body->size() : 0);
  }

  /// View of the full header+body byte stream. Zero-copy when the payload is
  /// a single fragment (every message except fan-out sends with a non-empty
  /// header); otherwise the concatenation is materialized once per message
  /// and cached.
  Slice payload() const {
    if (!body) return Slice(header);
    if (header.empty()) return Slice(*body);
    if (!joined_) {
      auto j = std::make_shared<std::string>();
      j->reserve(header.size() + body->size());
      j->append(header);
      j->append(*body);
      joined_ = std::move(j);
    }
    return Slice(*joined_);
  }

  /// The two raw fragments, for consumers that can decode them in place
  /// (WriteBatchMsg::DecodeFrom(head, body)) without ever joining.
  Slice head() const { return Slice(header); }
  Slice body_view() const { return body ? Slice(*body) : Slice(); }

 private:
  mutable std::shared_ptr<std::string> joined_;  // cow cache for payload()
};

/// Per-node network counters.
struct NetStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t packets_sent = 0;  // payloads fragmented at MTU granularity
  uint64_t bytes_sent = 0;
  uint64_t messages_dropped = 0;
};

/// Fabric-wide adversary counters (surfaced as net.adversary.*). All zero
/// unless the corresponding knob is enabled. Atomics: under PDES these are
/// bumped from several shard threads at once (send-side on the source shard,
/// VerifyFrame on the destination shard); the final sums are commutative, so
/// relaxed increments keep the dump deterministic.
struct AdversaryStats {
  std::atomic<uint64_t> duplicates_injected{0};  // extra deliveries scheduled
  std::atomic<uint64_t> reordered{0};      // deliveries given scramble delay
  std::atomic<uint64_t> corrupted_injected{0};  // frames bit-flipped in transit
  std::atomic<uint64_t> corrupted_dropped{0};   // rejected by VerifyFrame
  std::atomic<uint64_t> oneway_blocked{0};  // eaten by a one-way cut
};

/// The region's network fabric: delivers messages between registered hosts
/// with topology-dependent latency, log-normal jitter, per-NIC bandwidth
/// serialization, and fault injection (node down, AZ down, pairwise
/// partition, random drop).
class Network {
 public:
  /// Receive callback. Inline storage sized for the capture lists of the
  /// per-node dispatchers (typically just a `this` pointer or a couple of
  /// words); larger captures fall back to the heap at Register() time only.
  using Handler = InlineFunction<void(const Message&), 64>;

  Network(EventLoop* loop, const Topology* topology, FabricOptions options,
          Random rng)
      : loop_(loop), topology_(topology), options_(options), rng_(rng) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Installs the receive handler for `node`. A node without a handler drops
  /// everything addressed to it.
  void Register(NodeId node, Handler handler);

  /// Switches the fabric to conservative-PDES routing (DESIGN.md §11):
  /// `shard_of[node]` homes each node on one logical shard of `pdes`.
  /// Same-shard deliveries go straight onto the destination shard's heap;
  /// cross-shard deliveries travel through the coordinator's mailboxes.
  /// Each node also gets a private RNG stream (forked deterministically from
  /// the fabric seed) so jitter/adversary draws depend only on that node's
  /// own send sequence, never on how shards interleave. Also derives the
  /// PDES lookahead — the propagation-delay floor (base/4) minimized over
  /// node pairs homed on different shards — and installs it on `pdes`.
  /// Call once, after every node is registered and before the run starts.
  void InstallShardRouting(ShardedEventLoop* pdes,
                           std::vector<uint32_t> shard_of);

  /// Sends `payload` from `from` to `to`. Delivery is asynchronous; the
  /// message is silently dropped if either endpoint is down/partitioned at
  /// send or delivery time (crash-stop semantics — senders learn about loss
  /// only through their own timeouts, as in the real system).
  void Send(NodeId from, NodeId to, uint16_t type, std::string payload);

  /// Shared-payload variant for fan-out: the refcounted `body` is shared by
  /// every in-flight copy (the sender serializes it once), while the small
  /// per-destination `header` is owned per message. Receivers see a single
  /// contiguous payload of header + body, byte-identical to the plain Send —
  /// only the sender-side cost model changes (no per-replica re-encode).
  /// Byte/packet accounting covers header + body, as on a real wire.
  void Send(NodeId from, NodeId to, uint16_t type, std::string header,
            std::shared_ptr<const std::string> body);

  // --- Fault injection ---------------------------------------------------
  void SetNodeDown(NodeId node, bool down);
  bool IsNodeDown(NodeId node) const { return down_nodes_.count(node) > 0; }
  void SetAzDown(AzId az, bool down);
  bool IsAzDown(AzId az) const { return down_azs_.count(az) > 0; }
  /// Blocks (or unblocks) traffic between two specific nodes, both ways.
  void SetPartitioned(NodeId a, NodeId b, bool blocked);
  /// Blocks (or unblocks) traffic in one direction only: `from` can no longer
  /// reach `to`, but replies still flow. Models asymmetric network faults
  /// (grey failures / half-open links) — the nastiest partition shape for a
  /// lease-free writer, since it keeps receiving while its sends die.
  void SetPartitionedOneWay(NodeId from, NodeId to, bool blocked);
  /// Probability in [0,1] that any message is lost in transit.
  void set_drop_probability(double p) { drop_probability_ = p; }

  // --- Adversary knobs (all seeded-deterministic; zero RNG draws when off) -
  /// Probability in [0,1] that a delivered message is delivered twice, the
  /// copy at an independently drawn time (so the duplicate may arrive before
  /// or long after the original).
  void set_duplicate_probability(double p) { duplicate_probability_ = p; }
  /// Extra uniform [0, window] delay added per delivery: messages inside the
  /// window overtake each other, giving bounded reordering. 0 disables.
  void set_reorder_window(SimDuration window) { reorder_window_ = window; }
  /// Probability in [0,1] that a frame has one random payload bit flipped in
  /// transit. The frame checksum (stamped pre-corruption) lets receivers
  /// detect and drop such frames.
  void set_corrupt_probability(double p) { corrupt_probability_ = p; }

  /// Recomputes `msg`'s frame checksum; on mismatch counts the frame in
  /// adversary().corrupted_dropped and returns false. Every receiver calls
  /// this before decoding.
  bool VerifyFrame(const Message& msg);

  /// Multiplies delivery latency for all traffic to/from `node` (slow node /
  /// hot spot modelling); 1.0 restores normal speed.
  void SetNodeLatencyFactor(NodeId node, double factor);

  // --- Stats --------------------------------------------------------------
  const NetStats& stats_of(NodeId node) const;
  NetStats total() const;
  void ResetStats();
  const AdversaryStats& adversary() const { return adversary_; }

  const FabricOptions& options() const { return options_; }

 private:
  void SendImpl(NodeId from, NodeId to, uint16_t type, std::string header,
                std::shared_ptr<const std::string> body);
  void ScheduleDelivery(SimTime at, Message msg);
  /// Directional: `from` can currently get a packet to `to`.
  bool Reachable(NodeId from, NodeId to) const;
  SimDuration PropagationDelay(NodeId from, NodeId to);
  double LatencyFactor(NodeId n) const;
  /// The clock governing a send from `from`: its home shard's loop under
  /// PDES routing, the plain fabric loop otherwise.
  EventLoop* ContextLoop(NodeId from);
  /// RNG stream for sends from `from` (per-node under PDES routing).
  Random& RngFor(NodeId from);

  EventLoop* loop_;
  const Topology* topology_;
  FabricOptions options_;
  Random rng_;

  // PDES routing (null/empty when running on a single loop).
  ShardedEventLoop* pdes_ = nullptr;
  std::vector<uint32_t> shard_of_node_;
  std::vector<Random> node_rng_;

  std::vector<Handler> handlers_;
  std::vector<NetStats> stats_;
  std::vector<SimTime> nic_busy_until_;
  std::vector<double> latency_factor_;

  std::set<NodeId> down_nodes_;
  std::set<AzId> down_azs_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  std::set<std::pair<NodeId, NodeId>> oneway_partitions_;  // (from, to)
  double drop_probability_ = 0.0;

  double duplicate_probability_ = 0.0;
  SimDuration reorder_window_ = 0;
  double corrupt_probability_ = 0.0;
  AdversaryStats adversary_;
};

}  // namespace aurora::sim

#endif  // AURORA_SIM_NETWORK_H_
