#ifndef AURORA_SIM_TOPOLOGY_H_
#define AURORA_SIM_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace aurora::sim {

/// Simulated host identifier. Hosts include database instances, storage
/// nodes, EBS servers and the simulated S3 endpoint.
using NodeId = uint32_t;
/// Availability Zone identifier within the region.
using AzId = uint8_t;

constexpr NodeId kInvalidNode = UINT32_MAX;

/// Latency parameters of the region's network fabric. Defaults approximate
/// the paper's environment: AZs are "connected ... through low latency links"
/// within one region. Jitter is log-normal (heavy-tailed) to reproduce the
/// outlier behaviour ("the performance of the outlier ... can dominate
/// response time", §1).
struct FabricOptions {
  SimDuration same_node_latency = Micros(5);
  SimDuration intra_az_latency = Micros(100);
  SimDuration cross_az_latency = Micros(600);
  /// Sigma of the log-normal jitter multiplier applied to every hop.
  double jitter_sigma = 0.25;
  /// NIC bandwidth per host, bytes per simulated second (10 Gbps default).
  double node_bandwidth_bps = 10e9 / 8 * 1;  // bytes/sec (10 Gbit/s)
  /// MTU used for packets-per-second accounting.
  uint32_t mtu_bytes = 9000;
};

/// Placement of simulated hosts into Availability Zones.
class Topology {
 public:
  explicit Topology(int num_azs = 3) : num_azs_(num_azs) {}

  /// Registers a new host in `az`; returns its NodeId.
  NodeId AddNode(AzId az, std::string name = "") {
    azs_.push_back(az);
    names_.push_back(name.empty() ? "node-" + std::to_string(azs_.size() - 1)
                                  : std::move(name));
    return static_cast<NodeId>(azs_.size() - 1);
  }

  AzId az_of(NodeId n) const { return azs_.at(n); }
  const std::string& name_of(NodeId n) const { return names_.at(n); }
  int num_azs() const { return num_azs_; }
  size_t num_nodes() const { return azs_.size(); }

  bool SameAz(NodeId a, NodeId b) const { return azs_.at(a) == azs_.at(b); }

  /// All nodes placed in `az`.
  std::vector<NodeId> NodesInAz(AzId az) const {
    std::vector<NodeId> out;
    for (NodeId n = 0; n < azs_.size(); ++n) {
      if (azs_[n] == az) out.push_back(n);
    }
    return out;
  }

 private:
  int num_azs_;
  std::vector<AzId> azs_;
  std::vector<std::string> names_;
};

}  // namespace aurora::sim

#endif  // AURORA_SIM_TOPOLOGY_H_
