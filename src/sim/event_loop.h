#ifndef AURORA_SIM_EVENT_LOOP_H_
#define AURORA_SIM_EVENT_LOOP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/inline_function.h"
#include "common/units.h"

namespace aurora::sim {

/// Identifier of a scheduled event; usable to cancel it. Encodes a slot
/// index plus a generation, so ids stay unique forever while slot storage is
/// recycled. 0 is never a valid id.
using EventId = uint64_t;

/// Closure type for scheduled events. 128 inline bytes fit the kernel's
/// composed hot-path closures (network delivery: this + a ~88-byte Message;
/// disk completion: this + a 112-byte Disk::Callback) without a heap
/// allocation.
using EventFn = InlineFunction<void(), 128>;

/// Deterministic discrete-event scheduler with a virtual clock.
///
/// All simulated components (network links, disks, storage nodes, database
/// instances, failure injectors) schedule closures here. Events at the same
/// virtual time run in schedule order (FIFO), which — together with every
/// component drawing randomness from its own seeded stream — makes entire
/// cluster runs bit-for-bit reproducible.
///
/// Implementation: a 4-ary min-heap ordered by (time, schedule sequence)
/// over recycled slots, with lazy cancellation. Cancel() destroys the
/// closure immediately (releasing captured resources) and tombstones the
/// slot; the heap entry is purged when it reaches the top. pending() counts
/// only live events, so queue-growth regression tests keep their meaning.
///
/// Under conservative PDES (DESIGN.md §11) one EventLoop becomes one shard
/// of a ShardedEventLoop: the coordinator paces it with RunEventsBelow /
/// AdvanceTo, and closures that must mutate state homed on other shards
/// defer themselves to the next barrier via PostControl.
class EventLoop {
 public:
  /// Sentinel returned by next_event_time() when the queue is empty.
  static constexpr SimTime kNoEvent = ~SimTime{0};

  /// Sink for PostControl when this loop is a shard of a ShardedEventLoop.
  /// Implemented by the coordinator; calls arrive on this shard's worker
  /// thread during a window and must only stage (no cross-shard touching).
  class CrossShardPoster {
   public:
    virtual void PostControl(SimTime at, EventFn fn) = 0;

   protected:
    ~CrossShardPoster() = default;
  };

  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time (microseconds since simulation start).
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after now. Returns an id for Cancel().
  EventId Schedule(SimDuration delay, EventFn fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `t` (clamped to now).
  EventId ScheduleAt(SimTime t, EventFn fn);

  /// Cancels a pending event; returns false if it already ran or is unknown.
  /// O(1): the closure is destroyed now, the heap entry lazily later.
  bool Cancel(EventId id);

  /// Runs a single event; returns false if none are pending.
  bool RunOne();

  /// Runs until the queue is empty.
  void Run();

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(SimTime t);

  /// Runs events for `d` more simulated time.
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  // --- PDES shard interface (driven by ShardedEventLoop) -------------------

  /// Time of the earliest live event, or kNoEvent if none are pending.
  SimTime next_event_time() {
    PurgeTop();
    return heap_.empty() ? kNoEvent : heap_[0].time;
  }

  /// Runs every event with time strictly below `horizon` (one PDES window).
  /// Unlike RunUntil, the clock is left at the last executed event — the
  /// coordinator advances it explicitly with AdvanceTo at the barrier.
  void RunEventsBelow(SimTime horizon);

  /// Advances the clock to `t` without running anything (no-op if t <= now).
  /// Pre: no live event is scheduled before `t`.
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Defers `fn` to the control shard of the owning ShardedEventLoop: it
  /// runs at the next barrier at or after now + delay, with every shard
  /// quiesced, so it may freely touch state homed on any shard. On a
  /// standalone loop (no coordinator) this is just Schedule().
  void PostControl(SimDuration delay, EventFn fn) {
    if (poster_ != nullptr) {
      poster_->PostControl(now_ + delay, std::move(fn));
    } else {
      Schedule(delay, std::move(fn));
    }
  }

  void set_cross_shard_poster(CrossShardPoster* poster) { poster_ = poster; }

  /// Number of live (scheduled, not cancelled, not yet run) events.
  size_t pending() const { return live_count_; }
  uint64_t events_executed() const { return executed_; }
  /// Cumulative count of cancelled events (lazy-cancellation tombstones).
  uint64_t tombstones() const { return tombstones_; }
  /// High-water mark of heap entries (live + not-yet-purged tombstones).
  size_t heap_peak() const { return heap_peak_; }

 private:
  struct HeapEntry {
    SimTime time;
    uint64_t seq;    // monotonic schedule counter: FIFO among equal times
    uint32_t slot;
    bool operator<(const HeapEntry& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  struct Slot {
    EventFn fn;
    uint32_t gen = 1;   // bumped on reuse; id 0 (gen 0) is never issued
    bool live = false;
  };

  static constexpr size_t kArity = 4;

  uint32_t AllocSlot();
  void HeapPush(HeapEntry e);
  // Removes the minimum entry. Pre: heap_ non-empty.
  void HeapPopMin();
  // Drops tombstoned entries off the top so heap_[0] (if any) is live.
  void PurgeTop();

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  uint64_t executed_ = 0;
  uint64_t tombstones_ = 0;
  size_t heap_peak_ = 0;
  CrossShardPoster* poster_ = nullptr;
};

}  // namespace aurora::sim

#endif  // AURORA_SIM_EVENT_LOOP_H_
