#ifndef AURORA_SIM_EVENT_LOOP_H_
#define AURORA_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/units.h"

namespace aurora::sim {

/// Identifier of a scheduled event; usable to cancel it.
using EventId = uint64_t;

/// Deterministic discrete-event scheduler with a virtual clock.
///
/// All simulated components (network links, disks, storage nodes, database
/// instances, failure injectors) schedule closures here. Events at the same
/// virtual time run in schedule order (FIFO), which — together with every
/// component drawing randomness from its own seeded stream — makes entire
/// cluster runs bit-for-bit reproducible.
class EventLoop {
 public:
  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time (microseconds since simulation start).
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after now. Returns an id for Cancel().
  EventId Schedule(SimDuration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t` (clamped to now).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  /// Cancels a pending event; returns false if it already ran or is unknown.
  bool Cancel(EventId id);

  /// Runs a single event; returns false if none are pending.
  bool RunOne();

  /// Runs until the queue is empty.
  void Run();

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(SimTime t);

  /// Runs events for `d` more simulated time.
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  size_t pending() const { return queue_.size(); }
  uint64_t events_executed() const { return executed_; }

 private:
  struct Key {
    SimTime time;
    EventId id;
    bool operator<(const Key& o) const {
      return time != o.time ? time < o.time : id < o.id;
    }
  };

  // std::map used as an addressable priority queue so Cancel() is cheap and
  // iteration order is fully deterministic.
  std::map<Key, std::function<void()>> queue_;
  std::map<EventId, SimTime> id_to_time_;
  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
};

}  // namespace aurora::sim

#endif  // AURORA_SIM_EVENT_LOOP_H_
