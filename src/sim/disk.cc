#include "sim/disk.h"

#include <algorithm>

namespace aurora::sim {

void Disk::Submit(uint64_t bytes, SimDuration base_latency, bool is_write,
                  Callback done) {
  if (failed_) {
    loop_->Schedule(Micros(1), [done = std::move(done)]() {
      done(Status::IOError("disk failed"));
    });
    return;
  }
  if (is_write) {
    ++writes_;
    bytes_written_ += bytes;
  } else {
    ++reads_;
    bytes_read_ += bytes;
  }

  // Service time: limited by both IOPS and sequential bandwidth.
  double service_us = 0;
  if (options_.max_iops > 0) service_us = 1e6 / options_.max_iops;
  if (options_.bandwidth_bps > 0) {
    service_us = std::max(service_us,
                          static_cast<double>(bytes) / options_.bandwidth_bps * 1e6);
  }
  service_us *= slowdown_;

  SimTime start = std::max(loop_->now(), busy_until_);
  busy_until_ = start + static_cast<SimDuration>(service_us);

  double jitter = rng_.LogNormal(1.0, options_.jitter_sigma);
  auto latency = static_cast<SimDuration>(
      static_cast<double>(base_latency) * jitter * slowdown_);
  SimTime complete_at = busy_until_ + latency;

  loop_->ScheduleAt(complete_at, [this, done = std::move(done)]() {
    done(failed_ ? Status::IOError("disk failed") : Status::OK());
  });
}

}  // namespace aurora::sim
