#include "sim/disk.h"

#include <algorithm>

namespace aurora::sim {

void Disk::Submit(uint64_t bytes, SimDuration base_latency, bool is_write,
                  Callback done) {
  if (failed_) {
    loop_->Schedule(Micros(1), [done = std::move(done)]() {
      done(Status::IOError("disk failed"));
    });
    return;
  }
  if (is_write) {
    ++writes_;
    bytes_written_ += bytes;
  } else {
    ++reads_;
    bytes_read_ += bytes;
  }

  // Service time: limited by both IOPS and sequential bandwidth.
  double service_us = 0;
  if (options_.max_iops > 0) service_us = 1e6 / options_.max_iops;
  if (options_.bandwidth_bps > 0) {
    service_us = std::max(service_us,
                          static_cast<double>(bytes) / options_.bandwidth_bps * 1e6);
  }
  service_us *= slowdown_;

  SimTime start = std::max(loop_->now(), busy_until_);
  busy_until_ = start + static_cast<SimDuration>(service_us);

  double jitter = rng_.LogNormal(1.0, options_.jitter_sigma);
  auto latency = static_cast<SimDuration>(
      static_cast<double>(base_latency) * jitter * slowdown_);
  SimTime complete_at = busy_until_ + latency;

  // Fault draws are gated on the knobs being enabled so that fault-free
  // configurations consume an identical RNG stream (determinism contract).
  bool torn = false;
  if (is_write && options_.torn_write_probability > 0 &&
      rng_.Bernoulli(options_.torn_write_probability)) {
    torn = true;
    ++torn_writes_;
  }
  if (is_write && !torn && options_.latent_corruption_probability > 0 &&
      rng_.Bernoulli(options_.latent_corruption_probability)) {
    ++latent_faults_;
    ++pending_latent_faults_;
  }

  loop_->ScheduleAt(complete_at, [this, torn, done = std::move(done)]() {
    if (failed_) {
      done(Status::IOError("disk failed"));
    } else if (torn) {
      done(Status::Corruption("torn write"));
    } else {
      done(Status::OK());
    }
  });
}

}  // namespace aurora::sim
