#ifndef AURORA_SIM_DISK_H_
#define AURORA_SIM_DISK_H_

#include <cstdint>
#include <string>

#include "common/inline_function.h"
#include "common/random.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/event_loop.h"

namespace aurora::sim {

/// Parameters of a simulated storage device. Defaults approximate a local
/// NVMe SSD on a storage host; benchmarks configure provisioned-IOPS EBS-like
/// devices through the same knobs.
struct DiskOptions {
  /// Median per-operation latency (before queueing).
  SimDuration write_latency = Micros(80);
  SimDuration read_latency = Micros(70);
  /// Sustained operation rate; ops beyond it queue. 0 = unlimited.
  double max_iops = 100000.0;
  /// Sequential throughput, bytes per second.
  double bandwidth_bps = 500e6;
  /// Sigma of the log-normal latency jitter (tail behaviour).
  double jitter_sigma = 0.3;
  /// Probability that a write completes torn: the op finishes with
  /// Status::Corruption instead of OK, modelling a partial sector write the
  /// device firmware detects. 0 disables (no RNG draw, so enabling the
  /// fault never perturbs the seeded stream of fault-free runs).
  double torn_write_probability = 0.0;
  /// Probability that a write silently plants a latent sector fault: the op
  /// reports OK but the device remembers one pending corruption, surfaced
  /// to the owner via ConsumeLatentFault(). Models bit rot / latent sector
  /// errors that only scrubbing or a read can catch (§2.2).
  double latent_corruption_probability = 0.0;
};

/// Simulated SSD: a single-server FIFO queue whose service time is
/// max(1/IOPS, bytes/bandwidth), plus jittered device latency. Counts
/// operations and bytes so benchmarks can report I/Os at each tier
/// (Table 1's "46x fewer I/Os" claim at the storage tier).
class Disk {
 public:
  /// Completion callback. 104 inline bytes hold the storage hot path's
  /// captures (this + generation + a decoded WriteBatchMsg + sender), and
  /// the resulting 112-byte object still nests inside the completion
  /// event's EventFn buffer — an IO costs zero heap allocations.
  using Callback = InlineFunction<void(Status), 104>;

  Disk(EventLoop* loop, DiskOptions options, Random rng)
      : loop_(loop), options_(options), rng_(rng) {}

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Queues a write of `bytes`; `done` fires when it is durable.
  void Write(uint64_t bytes, Callback done) {
    Submit(bytes, options_.write_latency, /*is_write=*/true, std::move(done));
  }

  /// Queues a read of `bytes`.
  void Read(uint64_t bytes, Callback done) {
    Submit(bytes, options_.read_latency, /*is_write=*/false, std::move(done));
  }

  /// Marks the device failed: all queued and future ops complete with
  /// IOError. Unrecoverable (models a dead SSD; repair replaces the node).
  void Fail() { failed_ = true; }
  bool failed() const { return failed_; }

  /// Degrades (or restores) service rate; >1 slows the device down. Models
  /// the hot-disk scenario of §2.3.
  void set_slowdown(double factor) { slowdown_ = factor < 1.0 ? 1.0 : factor; }

  /// True once per latent fault planted by a write; the caller corrupts one
  /// of its pages in response. Pulling the fault out of the device keeps
  /// the disk byte-agnostic (it never sees page boundaries) while the owner
  /// decides *which* page rots.
  bool ConsumeLatentFault() {
    if (pending_latent_faults_ == 0) return false;
    --pending_latent_faults_;
    return true;
  }

  uint64_t writes() const { return writes_; }
  uint64_t reads() const { return reads_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t torn_writes() const { return torn_writes_; }
  uint64_t latent_faults() const { return latent_faults_; }
  /// Current queue depth estimate in simulated time.
  SimDuration backlog() const {
    return busy_until_ > loop_->now() ? busy_until_ - loop_->now() : 0;
  }
  void ResetStats() { writes_ = reads_ = bytes_written_ = bytes_read_ = 0; }

 private:
  void Submit(uint64_t bytes, SimDuration base_latency, bool is_write,
              Callback done);

  EventLoop* loop_;
  DiskOptions options_;
  Random rng_;
  SimTime busy_until_ = 0;
  bool failed_ = false;
  double slowdown_ = 1.0;

  uint64_t writes_ = 0;
  uint64_t reads_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t torn_writes_ = 0;
  uint64_t latent_faults_ = 0;
  uint64_t pending_latent_faults_ = 0;
};

}  // namespace aurora::sim

#endif  // AURORA_SIM_DISK_H_
