#ifndef AURORA_SIM_SHARDED_LOOP_H_
#define AURORA_SIM_SHARDED_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/units.h"
#include "sim/event_loop.h"

namespace aurora::sim {

/// Conservative parallel discrete-event coordinator (DESIGN.md §11).
///
/// The simulated world is partitioned into a fixed set of *logical shards*
/// (one per AZ in the clusters), each owning a private EventLoop and every
/// component homed there, plus one *control shard* for global actors
/// (failure injector, chaos timeline, invariant checker, test closures).
/// Execution proceeds in windows: all shards run their events below a safe
/// horizon
///
///     H = min( L + lookahead, L_ctrl, target + 1 )
///
/// where L is the earliest unexecuted shard event (heaps plus staged
/// cross-shard mail), L_ctrl the earliest control event, and lookahead the
/// minimum cross-shard network latency. Cross-shard deliveries travel
/// through per-(src,dst) mailboxes and are admitted into the destination
/// heap in (deliver_time, src_shard, link_seq) order at the next window.
/// At each barrier every clock — shards and control alike — is advanced to
/// exactly min(H, target) and pending control events run with the whole
/// world quiesced, so control always observes (and mutates) a globally
/// consistent snapshot and control events at time T run before shard
/// events at T.
///
/// The logical partition, the horizon sequence and every per-shard event
/// order are functions of the simulation alone, never of the worker-thread
/// count: set_workers(N) only chooses how many OS threads execute a
/// window's shards, which is why `--sim_shards=N` runs are byte-identical
/// to N=1 (enforced by determinism_test).
class ShardedEventLoop {
 public:
  /// Creates `num_shards` logical shards. The partition is part of the
  /// model: changing it changes event interleavings (like changing the
  /// topology), while changing set_workers() never does.
  explicit ShardedEventLoop(uint32_t num_shards = 1);
  ~ShardedEventLoop();

  ShardedEventLoop(const ShardedEventLoop&) = delete;
  ShardedEventLoop& operator=(const ShardedEventLoop&) = delete;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  EventLoop* shard(uint32_t i) { return &shards_[i]->loop; }
  /// The control shard: events here run only at barriers, with every shard
  /// quiesced at the same virtual time.
  EventLoop* control() { return &control_; }

  /// Minimum cross-shard delivery latency. Must be a lower bound on every
  /// mailbox message's (deliver_time - send_time); the fabric guarantees it
  /// via its propagation-delay floor. >= 1.
  void set_lookahead(SimDuration d) { lookahead_ = d < 1 ? 1 : d; }
  SimDuration lookahead() const { return lookahead_; }

  /// Number of OS threads used to execute a window (clamped to
  /// [1, num_shards]). 1 runs shards inline on the caller's thread; this is
  /// purely an execution knob and never changes simulation results.
  void set_workers(uint32_t n);
  uint32_t workers() const { return workers_; }

  /// Enqueues a cross-shard delivery: `fn` runs on shard `dst` at time
  /// `at`. Thread-safe; called by the Network for routed deliveries and by
  /// the coordinator when draining PostControl outboxes.
  void Mail(uint32_t src, uint32_t dst, SimTime at, EventFn fn);

  // --- EventLoop-compatible facade ----------------------------------------
  // Schedule/Cancel address the control shard, so timers created by tests,
  // the chaos engine and the failure injector keep exact-time global
  // semantics. Run* advance the whole sharded world.

  SimTime now() const { return control_.now(); }
  EventId Schedule(SimDuration delay, EventFn fn) {
    return control_.Schedule(delay, std::move(fn));
  }
  EventId ScheduleAt(SimTime t, EventFn fn) {
    return control_.ScheduleAt(t, std::move(fn));
  }
  bool Cancel(EventId id) { return control_.Cancel(id); }

  /// Runs one synchronization window (the sharded analogue of "one event");
  /// returns false when nothing is pending anywhere.
  bool RunOne() { return Window(EventLoop::kNoEvent); }
  /// Runs until no events remain anywhere.
  void Run() {
    while (Window(EventLoop::kNoEvent)) {
    }
  }
  /// Runs all events with time <= t, then advances every clock to exactly t.
  void RunUntil(SimTime t) {
    while (Window(t)) {
    }
  }
  void RunFor(SimDuration d) { RunUntil(control_.now() + d); }

  /// Live events across all shards, the control shard, staged mail and
  /// in-flight mailboxes.
  size_t pending() const;
  uint64_t events_executed() const;
  uint64_t tombstones() const;
  /// Largest single-heap high-water mark across shards (the quantity that
  /// bounds per-shard memory).
  size_t heap_peak() const;

  // --- PDES introspection (sim.pdes.*) ------------------------------------
  /// Synchronization windows executed. Deterministic.
  uint64_t horizon_syncs() const { return windows_; }
  /// Cross-shard messages routed through mailboxes. Deterministic.
  uint64_t mailbox_msgs() const { return mailed_.load(std::memory_order_relaxed); }
  /// Wall-clock microseconds the coordinator spent waiting for straggler
  /// workers at barriers. NOT deterministic — exported to bench JSON only,
  /// never into a cluster's metrics registry.
  uint64_t stall_wall_us() const { return stall_wall_us_; }

 private:
  /// One cross-shard event staged for admission.
  struct Staged {
    SimTime at = 0;
    uint32_t src = 0;
    uint64_t seq = 0;
    EventFn fn;
    bool operator<(const Staged& o) const {
      if (at != o.at) return at < o.at;
      if (src != o.src) return src < o.src;
      return seq < o.seq;
    }
  };

  /// Single-producer (the source shard during a window; anyone at a
  /// barrier) mailbox for one (src,dst) shard pair.
  struct Mailbox {
    Mutex mu;
    std::vector<Staged> items GUARDED_BY(mu);
    uint64_t next_seq GUARDED_BY(mu) = 0;
  };

  struct Shard final : EventLoop::CrossShardPoster {
    EventLoop loop;
    /// Pending cross-shard mail, sorted by (at, src, seq). Touched only by
    /// the coordinator between windows.
    std::vector<Staged> staged;
    /// PostControl events staged during this shard's window; drained to the
    /// control shard at the barrier in shard order.
    std::vector<std::pair<SimTime, EventFn>> outbox;

    void PostControl(SimTime at, EventFn fn) override {
      outbox.emplace_back(at, std::move(fn));
    }
  };

  /// Executes one window bounded by `limit` (inclusive); returns false —
  /// without advancing any clock past the last event when limit is
  /// kNoEvent, or after advancing everything to `limit` otherwise — once no
  /// event at or below `limit` exists.
  bool Window(SimTime limit);
  void DrainMailboxes();
  void RunShardsBelow(SimTime horizon);
  void StartWorkersLocked(uint32_t n);
  void StopWorkers();
  void WorkerMain(uint32_t worker_index, uint32_t stride);

  Mailbox& box(uint32_t src, uint32_t dst) {
    return *mailboxes_[src * shards_.size() + dst];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // S*S, row = src
  EventLoop control_;
  SimDuration lookahead_ = 1;
  uint32_t workers_ = 1;

  uint64_t windows_ = 0;
  std::atomic<uint64_t> mailed_{0};
  uint64_t stall_wall_us_ = 0;

  // Worker pool (spawned lazily on the first multi-threaded window). The
  // coordinator participates as worker 0; `threads_` holds workers 1..W-1.
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  uint64_t pool_epoch_ = 0;       // bumped to publish a window
  SimTime pool_horizon_ = 0;      // horizon of the published window
  uint32_t pool_remaining_ = 0;   // workers still running the window
  bool pool_shutdown_ = false;
};

}  // namespace aurora::sim

#endif  // AURORA_SIM_SHARDED_LOOP_H_
