#include "sim/failure_injector.h"

namespace aurora::sim {

void FailureInjector::CrashNode(NodeId node, SimDuration downtime) {
  if (network_->IsNodeDown(node)) return;
  ++crashes_;
  network_->SetNodeDown(node, true);
  auto it = hooks_.find(node);
  if (it != hooks_.end() && it->second.on_crash) it->second.on_crash();
  if (downtime > 0) {
    loop_->Schedule(downtime, [this, node]() { RestartNode(node); });
  }
}

void FailureInjector::RestartNode(NodeId node) {
  if (!network_->IsNodeDown(node)) return;
  network_->SetNodeDown(node, false);
  auto it = hooks_.find(node);
  if (it != hooks_.end() && it->second.on_restart) it->second.on_restart();
}

void FailureInjector::FailAz(AzId az, SimDuration downtime) {
  ++az_failures_;
  network_->SetAzDown(az, true);
  for (NodeId node : topology_->NodesInAz(az)) {
    auto it = hooks_.find(node);
    if (it != hooks_.end() && it->second.on_crash) it->second.on_crash();
  }
  if (downtime > 0) {
    loop_->Schedule(downtime, [this, az]() {
      network_->SetAzDown(az, false);
      for (NodeId node : topology_->NodesInAz(az)) {
        if (network_->IsNodeDown(node)) continue;  // separately crashed
        auto it = hooks_.find(node);
        if (it != hooks_.end() && it->second.on_restart) it->second.on_restart();
      }
    });
  }
}

void FailureInjector::SlowNode(NodeId node, double factor,
                               SimDuration duration) {
  network_->SetNodeLatencyFactor(node, factor);
  if (duration > 0) {
    loop_->Schedule(duration, [this, node]() {
      network_->SetNodeLatencyFactor(node, 1.0);
    });
  }
}

void FailureInjector::EnableBackgroundNoise(SimDuration mttf,
                                            SimDuration mean_downtime) {
  noise_enabled_ = true;
  noise_mttf_ = mttf;
  noise_mean_downtime_ = mean_downtime;
  ScheduleNextNoiseEvent();
}

void FailureInjector::ScheduleNextNoiseEvent() {
  if (!noise_enabled_ || hooks_.empty()) return;
  // The fleet-wide failure rate is (#nodes / mttf); the gap to the next
  // failure anywhere is exponential with mean mttf / #nodes.
  double fleet_mean =
      static_cast<double>(noise_mttf_) / static_cast<double>(hooks_.size());
  auto gap = static_cast<SimDuration>(rng_.Exponential(fleet_mean));
  loop_->Schedule(gap, [this]() {
    if (!noise_enabled_) return;
    // Pick a uniformly random registered node.
    auto idx = rng_.Uniform(hooks_.size());
    auto it = hooks_.begin();
    std::advance(it, static_cast<long>(idx));
    auto downtime = static_cast<SimDuration>(
        rng_.Exponential(static_cast<double>(noise_mean_downtime_)));
    if (downtime == 0) downtime = 1;
    CrashNode(it->first, downtime);
    ScheduleNextNoiseEvent();
  });
}

}  // namespace aurora::sim
