#include "sim/event_loop.h"

namespace aurora::sim {

EventId EventLoop::Schedule(SimDuration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId EventLoop::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  EventId id = next_id_++;
  queue_.emplace(Key{t, id}, std::move(fn));
  id_to_time_.emplace(id, t);
  return id;
}

bool EventLoop::Cancel(EventId id) {
  auto it = id_to_time_.find(id);
  if (it == id_to_time_.end()) return false;
  queue_.erase(Key{it->second, id});
  id_to_time_.erase(it);
  return true;
}

bool EventLoop::RunOne() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  now_ = it->first.time;
  // Move the closure out before erasing so it can safely schedule/cancel.
  std::function<void()> fn = std::move(it->second);
  id_to_time_.erase(it->first.id);
  queue_.erase(it);
  ++executed_;
  fn();
  return true;
}

void EventLoop::Run() {
  while (RunOne()) {
  }
}

void EventLoop::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.begin()->first.time <= t) {
    RunOne();
  }
  if (now_ < t) now_ = t;
}

}  // namespace aurora::sim
