#include "sim/event_loop.h"

#include <utility>

namespace aurora::sim {

namespace {

constexpr uint32_t SlotOf(EventId id) {
  return static_cast<uint32_t>(id & 0xFFFFFFFFu);
}
constexpr uint32_t GenOf(EventId id) { return static_cast<uint32_t>(id >> 32); }
constexpr EventId MakeId(uint32_t gen, uint32_t slot) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

}  // namespace

uint32_t EventLoop::AllocSlot() {
  if (!free_slots_.empty()) {
    uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventLoop::HeapPush(HeapEntry e) {
  size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    size_t parent = (i - 1) / kArity;
    if (!(heap_[i] < heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
}

void EventLoop::HeapPopMin() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  size_t i = 0;
  for (;;) {
    size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    size_t last_child = first_child + kArity;
    if (last_child > n) last_child = n;
    size_t min_child = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c] < heap_[min_child]) min_child = c;
    }
    if (!(heap_[min_child] < heap_[i])) break;
    std::swap(heap_[i], heap_[min_child]);
    i = min_child;
  }
}

void EventLoop::PurgeTop() {
  while (!heap_.empty() && !slots_[heap_[0].slot].live) {
    free_slots_.push_back(heap_[0].slot);
    HeapPopMin();
  }
}

EventId EventLoop::ScheduleAt(SimTime t, EventFn fn) {
  if (t < now_) t = now_;
  uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  HeapPush(HeapEntry{t, next_seq_++, slot});
  ++live_count_;
  return MakeId(s.gen, slot);
}

bool EventLoop::Cancel(EventId id) {
  uint32_t slot = SlotOf(id);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != GenOf(id)) return false;
  // Destroy the closure now so captured resources (pages, shared_ptrs to
  // engines) are released at cancellation time, exactly as with an eager
  // queue erase. The heap entry stays behind as a tombstone; the slot is
  // recycled when the entry surfaces at the top.
  s.fn.reset();
  s.live = false;
  ++s.gen;
  ++tombstones_;
  --live_count_;
  return true;
}

bool EventLoop::RunOne() {
  PurgeTop();
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  Slot& s = slots_[top.slot];
  now_ = top.time;
  // Move the closure out and retire the slot before invoking, so the event
  // can freely schedule/cancel (even reusing this very slot).
  EventFn fn = std::move(s.fn);
  s.fn.reset();
  s.live = false;
  ++s.gen;
  --live_count_;
  free_slots_.push_back(top.slot);
  HeapPopMin();
  ++executed_;
  fn();
  return true;
}

void EventLoop::Run() {
  while (RunOne()) {
  }
}

void EventLoop::RunEventsBelow(SimTime horizon) {
  for (;;) {
    PurgeTop();
    if (heap_.empty() || heap_[0].time >= horizon) break;
    RunOne();
  }
}

void EventLoop::RunUntil(SimTime t) {
  for (;;) {
    PurgeTop();
    if (heap_.empty() || heap_[0].time > t) break;
    RunOne();
  }
  if (now_ < t) now_ = t;
}

}  // namespace aurora::sim
