// Chunked, resumable re-replication under fire (DESIGN.md §12): donor
// failover mid-copy, dead-end handling (no replacement / no donor), the
// fleet-wide concurrency cap, and the membership-epoch protocol that keeps a
// stale writer from reaching quorum through an evicted host.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "harness/cluster.h"
#include "sim/chaos.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions RepairCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 1024;
  o.storage_nodes_per_az = 4;
  o.repair.detection_threshold = Seconds(2);
  // Small chunks force long multi-chunk transfers so tests can interfere
  // with a copy mid-flight.
  o.repair.chunk_bytes = 512;
  return o;
}

AdversaryConfig RepairAdversary() {
  AdversaryConfig cfg;
  cfg.drop_probability = 0.02;
  cfg.duplicate_probability = 0.05;
  cfg.reorder_window = Millis(2);
  cfg.corrupt_probability = 0.001;
  return cfg;
}

class RepairTest : public ::testing::Test {
 protected:
  explicit RepairTest(ClusterOptions o = RepairCluster()) : cluster_(o) {
    EXPECT_TRUE(cluster_.BootstrapSync().ok());
    EXPECT_TRUE(cluster_.CreateTableSync("t").ok());
    table_ = *cluster_.TableAnchorSync("t");
  }

  int WriteRows(int base, int n, const std::string& value = "v") {
    int ok = 0;
    for (int i = 0; i < n; ++i) {
      if (cluster_.PutSync(table_, Key(base + i), value).ok()) ++ok;
    }
    return ok;
  }

  uint64_t SumStorage(uint64_t StorageNodeStats::*field) {
    uint64_t total = 0;
    for (size_t i = 0; i < cluster_.num_storage_nodes(); ++i) {
      total += cluster_.storage_node(i)->stats().*field;
    }
    return total;
  }

  AuroraCluster cluster_;
  PageId table_ = kInvalidPage;
};

// The tentpole property test: a repair must complete even when (a) the
// fabric drops, duplicates, reorders and corrupts frames and (b) the donor
// crashes in the middle of the copy. The transfer resumes on a different
// donor from the last acked chunk (or restarts from chunk 0 on a snapshot
// mismatch) — either way the replacement ends up with a verified superset
// of the acked state.
TEST_F(RepairTest, TransferSurvivesDonorCrashUnderAdversary) {
  ASSERT_EQ(WriteRows(0, 60), 60);
  cluster_.RunFor(Seconds(1));

  ChaosEngine chaos(&cluster_);
  chaos.SetAdversary(RepairAdversary());

  const PgMembership before = cluster_.control_plane()->membership(0);
  const sim::NodeId victim = before.nodes[2];
  cluster_.failure_injector()->CrashNode(victim, 0);  // permanent

  // Wait until the pg-0 transfer is genuinely mid-copy (at least one chunk
  // acked, more outstanding), then kill the donor it is reading from.
  sim::NodeId donor = sim::kInvalidNode;
  ASSERT_TRUE(cluster_.RunUntil(
      [&] {
        for (const auto& r : cluster_.repair_manager()->active_repairs()) {
          if (r.pg == 0 && r.next_chunk >= 1 && r.total_chunks > 0 &&
              r.next_chunk < r.total_chunks) {
            donor = r.donor;
            return true;
          }
        }
        return false;
      },
      Minutes(1)))
      << "repair never reached a resumable mid-copy state";
  ASSERT_NE(donor, sim::kInvalidNode);
  ASSERT_NE(donor, victim);
  cluster_.failure_injector()->CrashNode(donor, 0);  // donor dies mid-copy

  ASSERT_TRUE(cluster_.RunUntil(
      [&] {
        return cluster_.repair_manager()->stats().completed >= 1 &&
               cluster_.control_plane()->membership(0).IndexOf(victim) < 0;
      },
      Minutes(2)));
  const RepairStats& stats = cluster_.repair_manager()->stats();
  EXPECT_GE(stats.donor_failovers, 1u);
  EXPECT_GT(stats.bytes_copied, 0u);

  chaos.ClearAdversary();
  cluster_.RunFor(Seconds(5));
  // The installed replacement has converged to a complete copy.
  const PgMembership& after = cluster_.control_plane()->membership(0);
  EXPECT_LT(after.IndexOf(victim), 0);
  EXPECT_LT(after.IndexOf(donor), 0);
  StorageNode* sn = cluster_.storage_node_by_id(after.nodes[2]);
  ASSERT_NE(sn, nullptr);
  const Segment* seg = sn->segment(0);
  ASSERT_NE(seg, nullptr);
  EXPECT_GE(seg->scl(), cluster_.writer()->vdl());
  // Nothing acked was lost, and writes flow again.
  for (int i = 0; i < 60; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
  }
  EXPECT_EQ(WriteRows(100, 20), 20);
}

class RepairSmallFleetTest : public RepairTest {
 protected:
  static ClusterOptions SmallFleet() {
    ClusterOptions o = RepairCluster();
    // Six hosts total: every host is a member of pg 0, so a down member has
    // no replacement candidate anywhere in the fleet.
    o.storage_nodes_per_az = 2;
    return o;
  }
  RepairSmallFleetTest() : RepairTest(SmallFleet()) {}
};

// Dead end #1: replacement exhaustion. Repair must count the dead end and
// release the replica (retry next poll) instead of wedging it in-flight; a
// host that comes back before a slot frees up simply rejoins.
TEST_F(RepairSmallFleetTest, NoReplacementDegradesGracefully) {
  ASSERT_EQ(WriteRows(0, 20), 20);
  const PgMembership before = cluster_.control_plane()->membership(0);
  const sim::NodeId victim = cluster_.storage_node(0)->id();
  cluster_.failure_injector()->CrashNode(victim, Seconds(8));

  cluster_.RunFor(Seconds(4));  // past the 2 s detection threshold
  const RepairStats& stats = cluster_.repair_manager()->stats();
  EXPECT_GE(stats.no_replacement, 1u);
  EXPECT_EQ(stats.started, 0u);
  EXPECT_EQ(stats.completed, 0u);
  // The dead end released the replica: nothing active, nothing queued.
  EXPECT_TRUE(cluster_.repair_manager()->active_repairs().empty());
  EXPECT_EQ(cluster_.repair_manager()->queue_depth(), 0u);
  // And the manager keeps retrying on every poll rather than giving up.
  const uint64_t sample = stats.no_replacement;
  cluster_.RunFor(Seconds(2));
  EXPECT_GT(stats.no_replacement, sample);

  // Host returns at t=8 s: membership is intact and the fleet heals.
  cluster_.RunFor(Seconds(6));
  EXPECT_EQ(cluster_.control_plane()->membership(0).config_epoch,
            before.config_epoch);
  EXPECT_GE(cluster_.control_plane()->membership(0).IndexOf(victim), 0);
  EXPECT_EQ(WriteRows(50, 20), 20);
}

// Dead end #2: no live donor (quorum already lost). Repair counts it,
// releases the replica, and never wedges — data recovery is impossible, but
// the manager must stay healthy for the PGs that can still be repaired.
TEST_F(RepairTest, NoDonorDegradesGracefully) {
  ASSERT_EQ(WriteRows(0, 20), 20);
  const PgMembership before = cluster_.control_plane()->membership(0);
  for (sim::NodeId node : before.nodes) {
    cluster_.failure_injector()->CrashNode(node, 0);  // all six, permanent
  }
  cluster_.RunFor(Seconds(5));
  const RepairStats& stats = cluster_.repair_manager()->stats();
  EXPECT_GE(stats.no_donor, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(cluster_.repair_manager()->active_repairs().empty());
  EXPECT_EQ(cluster_.repair_manager()->queue_depth(), 0u);
  // Still retrying each poll, not wedged.
  const uint64_t sample = stats.no_donor;
  cluster_.RunFor(Seconds(2));
  EXPECT_GT(stats.no_donor, sample);
}

class RepairMultiPgTest : public RepairTest {
 protected:
  static ClusterOptions MultiPg() {
    ClusterOptions o = RepairCluster();
    // Small PGs plus a larger fleet: the volume spans several PGs and there
    // is always a host that is a member of none of them.
    o.engine.pages_per_pg = 8;
    o.storage_nodes_per_az = 6;
    return o;
  }
  RepairMultiPgTest() : RepairTest(MultiPg()) {}
};

// Regression for the callback-clobber bug: two concurrent transfers into
// the SAME replacement host used to overwrite each other's completion
// callback (the last registration won and the first repair hung forever).
// Routing by (pg, req_id) lets both finish.
TEST_F(RepairMultiPgTest, ConcurrentRepairsIntoOneTargetBothComplete) {
  // Grow the volume until it spans at least two protection groups.
  int base = 0;
  const std::string value(900, 'x');
  while (cluster_.control_plane()->num_pgs() < 2 && base < 400) {
    ASSERT_EQ(WriteRows(base, 20, value), 20);
    base += 20;
  }
  ASSERT_GE(cluster_.control_plane()->num_pgs(), 2u);
  cluster_.RunFor(Seconds(1));

  // A spare that is a member of neither PG.
  const PgMembership before0 = cluster_.control_plane()->membership(0);
  const PgMembership before1 = cluster_.control_plane()->membership(1);
  sim::NodeId spare = sim::kInvalidNode;
  for (size_t i = 0; i < cluster_.num_storage_nodes(); ++i) {
    sim::NodeId id = cluster_.storage_node(i)->id();
    if (before0.IndexOf(id) < 0 && before1.IndexOf(id) < 0) {
      spare = id;
      break;
    }
  }
  ASSERT_NE(spare, sim::kInvalidNode);

  cluster_.repair_manager()->MigrateReplicaTo(0, 1, spare);
  cluster_.repair_manager()->MigrateReplicaTo(1, 1, spare);
  ASSERT_TRUE(cluster_.RunUntil(
      [&] {
        return cluster_.control_plane()->membership(0).nodes[1] == spare &&
               cluster_.control_plane()->membership(1).nodes[1] == spare;
      },
      Minutes(2)));
  const RepairStats& stats = cluster_.repair_manager()->stats();
  EXPECT_EQ(stats.migrations, 2u);
  EXPECT_EQ(stats.completed, 2u);
  // Both transfers genuinely overlapped on the one target.
  EXPECT_GE(stats.concurrent_peak, 2u);
  // The spare serves both segments and nothing was lost.
  StorageNode* sn = cluster_.storage_node_by_id(spare);
  ASSERT_NE(sn, nullptr);
  EXPECT_NE(sn->segment(0), nullptr);
  EXPECT_NE(sn->segment(1), nullptr);
  cluster_.RunFor(Seconds(2));
  for (int i = 0; i < base; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
  }
}

// Membership-epoch enforcement end to end: after repair swaps a member out,
// the writer's cached configuration is one epoch behind. Its next batch is
// NAKed (kStaleConfig) by the current members, the writer refreshes from
// the control plane and resends — the commit lands on the NEW membership
// and an evicted host can never contribute to quorum again.
TEST_F(RepairTest, StaleWriterIsNakedThenRefreshesAndCommits) {
  ASSERT_EQ(WriteRows(0, 30), 30);
  const PgMembership before = cluster_.control_plane()->membership(0);
  const sim::NodeId evicted = before.nodes[2];

  cluster_.repair_manager()->MigrateReplica(0, 2);
  ASSERT_TRUE(cluster_.RunUntil(
      [&] {
        return cluster_.control_plane()->membership(0).config_epoch >
               before.config_epoch;
      },
      Minutes(1)));
  const PgMembership after = cluster_.control_plane()->membership(0);
  ASSERT_LT(after.IndexOf(evicted), 0);

  // The writer has not been told: its next batch carries the old epoch.
  EXPECT_EQ(cluster_.writer()->stats().stale_config_refreshes, 0u);
  EXPECT_EQ(WriteRows(100, 20), 20);
  EXPECT_GE(cluster_.writer()->stats().stale_config_refreshes, 1u);
  EXPECT_GE(SumStorage(&StorageNodeStats::stale_config_rejects), 1u);

  // Gossip-time cleanup: the evicted host notices it is no longer a member
  // and drops its stray segment, so it cannot even hold stale state.
  cluster_.RunFor(Seconds(1));
  EXPECT_GE(SumStorage(&StorageNodeStats::evicted_segments_dropped), 1u);
  StorageNode* old_host = cluster_.storage_node_by_id(evicted);
  ASSERT_NE(old_host, nullptr);
  EXPECT_EQ(old_host->segment(0), nullptr);

  // Everything acked under either epoch reads back.
  for (int i = 0; i < 30; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i;
  }
  for (int i = 100; i < 120; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i;
  }
}

}  // namespace
}  // namespace aurora
