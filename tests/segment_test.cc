#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "storage/segment.h"
#include "storage/wire.h"

namespace aurora {
namespace {

// Builds a valid per-PG record chain: record i gets lsn base+i*10, backlink
// to its predecessor, targeting page (i % pages).
std::vector<LogRecord> MakeChain(int n, Lsn base = 100, int pages = 4) {
  std::vector<LogRecord> records;
  Lsn prev = kInvalidLsn;
  Lsn vprev = kInvalidLsn;
  for (int i = 0; i < n; ++i) {
    LogRecord r;
    r.lsn = base + static_cast<Lsn>(i) * 10;
    r.prev_pg_lsn = prev;
    r.prev_vol_lsn = vprev;
    r.page_id = static_cast<PageId>(i % pages);
    r.txn_id = 1;
    if (i % pages == i) {
      r.op = RedoOp::kFormatPage;
      r.payload = LogRecord::MakeFormatPayload(
          static_cast<uint8_t>(PageType::kBTreeLeaf), 0);
    } else {
      r.op = RedoOp::kInsert;
      r.payload = LogRecord::MakeKeyValuePayload(
          "k" + std::to_string(i), "v" + std::to_string(i));
    }
    if (i % 3 == 2) r.flags = kFlagCpl;
    prev = r.lsn;
    vprev = r.lsn;
    records.push_back(std::move(r));
  }
  return records;
}

TEST(SegmentTest, SclAdvancesOnlyOverContiguousChain) {
  Segment seg(0, 4096);
  auto records = MakeChain(10);
  // Deliver 0,1,2 then 5,6 (gap at 3,4), then fill the hole.
  for (int i : {0, 1, 2}) seg.AddRecord(records[i]);
  EXPECT_EQ(seg.scl(), records[2].lsn);
  for (int i : {5, 6}) seg.AddRecord(records[i]);
  EXPECT_EQ(seg.scl(), records[2].lsn);
  EXPECT_TRUE(seg.has_gap());
  EXPECT_EQ(seg.max_lsn(), records[6].lsn);
  seg.AddRecord(records[4]);
  EXPECT_EQ(seg.scl(), records[2].lsn);  // still missing 3
  seg.AddRecord(records[3]);
  EXPECT_EQ(seg.scl(), records[6].lsn);  // chain healed through 6
  EXPECT_FALSE(seg.has_gap());
}

TEST(SegmentTest, DuplicateRecordsIgnored) {
  Segment seg(0, 4096);
  auto records = MakeChain(5);
  for (const auto& r : records) EXPECT_TRUE(seg.AddRecord(r));
  for (const auto& r : records) EXPECT_FALSE(seg.AddRecord(r));
  EXPECT_EQ(seg.hot_log_size(), 5u);
}

TEST(SegmentTest, RecordsAboveReturnsOrderedSuffix) {
  Segment seg(0, 4096);
  auto records = MakeChain(10);
  for (const auto& r : records) seg.AddRecord(r);
  auto above = seg.RecordsAbove(records[4].lsn, 100);
  ASSERT_EQ(above.size(), 5u);
  EXPECT_EQ(above[0]->lsn, records[5].lsn);
  auto capped = seg.RecordsAbove(kInvalidLsn, 3);
  EXPECT_EQ(capped.size(), 3u);
}

TEST(SegmentTest, CoalesceRespectsWatermarks) {
  Segment seg(0, 4096);
  auto records = MakeChain(9);
  for (const auto& r : records) seg.AddRecord(r);
  // No VDL hint, no PGMRPL: nothing may materialize.
  EXPECT_EQ(seg.CoalesceStep(100), 0u);
  seg.SetVdlHint(records[5].lsn);
  EXPECT_EQ(seg.CoalesceStep(100), 0u);  // PGMRPL still zero
  seg.SetPgmrpl(records[5].lsn);
  EXPECT_EQ(seg.CoalesceStep(100), 6u);  // records 0..5
  EXPECT_EQ(seg.applied_lsn(), records[5].lsn);
  EXPECT_GT(seg.num_pages(), 0u);
}

TEST(SegmentTest, GetPageAsOfReconstructsHistoricalVersions) {
  Segment seg(0, 4096);
  // One page, three inserts at lsn 100, 110, 120.
  std::vector<LogRecord> records;
  Lsn prev = kInvalidLsn;
  for (int i = 0; i < 3; ++i) {
    LogRecord r;
    r.lsn = 100 + i * 10;
    r.prev_pg_lsn = prev;
    r.page_id = 7;
    r.op = i == 0 ? RedoOp::kFormatPage : RedoOp::kInsert;
    r.payload = i == 0
                    ? LogRecord::MakeFormatPayload(
                          static_cast<uint8_t>(PageType::kBTreeLeaf), 0)
                    : LogRecord::MakeKeyValuePayload("k" + std::to_string(i),
                                                     "v");
    r.flags = kFlagCpl;
    prev = r.lsn;
    records.push_back(std::move(r));
    seg.AddRecord(records.back());
  }
  seg.SetVdlHint(120);
  auto v100 = seg.GetPageAsOf(7, 100);
  ASSERT_TRUE(v100.ok());
  EXPECT_EQ(v100->slot_count(), 0);
  auto v110 = seg.GetPageAsOf(7, 115);
  ASSERT_TRUE(v110.ok());
  EXPECT_EQ(v110->slot_count(), 1);
  auto v120 = seg.GetPageAsOf(7, 120);
  ASSERT_TRUE(v120.ok());
  EXPECT_EQ(v120->slot_count(), 2);
  // Beyond the SCL: this replica can't vouch for completeness.
  EXPECT_TRUE(seg.GetPageAsOf(7, 500).status().IsUnavailable());
  // Unknown page.
  EXPECT_TRUE(seg.GetPageAsOf(99, 110).status().IsNotFound());
}

TEST(SegmentTest, CompletenessSnapshotAllowsIdlePgReads) {
  Segment seg(0, 4096);
  auto records = MakeChain(3);
  for (const auto& r : records) seg.AddRecord(r);
  Lsn tail = records[2].lsn;
  // A much higher volume VDL, with this PG idle since `tail`.
  seg.SetVdlHint(10000);
  seg.SetCompletenessSnapshot(10000, tail);
  auto page = seg.GetPageAsOf(0, 9000);
  EXPECT_TRUE(page.ok()) << page.status().ToString();
  // But if the chain hasn't reached the promised tail, refuse.
  Segment lagging(0, 4096);
  lagging.AddRecord(records[0]);
  lagging.SetCompletenessSnapshot(10000, tail);
  EXPECT_TRUE(lagging.GetPageAsOf(0, 9000).status().IsUnavailable());
}

TEST(SegmentTest, GarbageCollectionDropsAppliedRecordsBelowPgmrpl) {
  Segment seg(0, 4096);
  auto records = MakeChain(9);
  for (const auto& r : records) seg.AddRecord(r);
  seg.SetVdlHint(records[8].lsn);
  seg.SetPgmrpl(records[5].lsn);
  seg.CoalesceStep(100);
  size_t collected = seg.GarbageCollect();
  EXPECT_EQ(collected, 6u);
  EXPECT_EQ(seg.hot_log_size(), 3u);
  // Reads at or above the floor still work.
  EXPECT_TRUE(seg.GetPageAsOf(0, records[6].lsn).ok());
  // Reads below the materialized floor are stale.
  EXPECT_TRUE(seg.GetPageAsOf(0, records[1].lsn).status().IsStale());
}

TEST(SegmentTest, TruncateRemovesSuffixAndHonoursEpochs) {
  Segment seg(0, 4096);
  auto records = MakeChain(10);
  for (const auto& r : records) seg.AddRecord(r);
  Lsn cut = records[6].lsn;
  ASSERT_TRUE(seg.Truncate(cut, 5).ok());
  EXPECT_EQ(seg.epoch(), 5u);
  EXPECT_EQ(seg.max_lsn(), cut);
  EXPECT_EQ(seg.scl(), cut);
  EXPECT_EQ(seg.hot_log_size(), 7u);
  // Older epoch refused; same/newer accepted (idempotent).
  EXPECT_TRUE(seg.Truncate(cut, 4).IsStale());
  EXPECT_TRUE(seg.Truncate(cut, 5).ok());
  EXPECT_TRUE(seg.Truncate(cut, 6).ok());
}

TEST(SegmentTest, SerializeRoundTripPreservesEverything) {
  Segment seg(3, 4096);
  auto records = MakeChain(8);
  for (const auto& r : records) seg.AddRecord(r);
  seg.SetVdlHint(records[7].lsn);
  seg.SetPgmrpl(records[4].lsn);
  seg.CoalesceStep(100);
  seg.MarkBackedUp(records[3].lsn);

  std::string blob;
  seg.SerializeTo(&blob);
  Segment copy(0, 256);
  ASSERT_TRUE(copy.DeserializeFrom(blob).ok());
  EXPECT_EQ(copy.pg(), 3u);
  EXPECT_EQ(copy.page_size(), 4096u);
  EXPECT_EQ(copy.scl(), seg.scl());
  EXPECT_EQ(copy.applied_lsn(), seg.applied_lsn());
  EXPECT_EQ(copy.hot_log_size(), seg.hot_log_size());
  EXPECT_EQ(copy.num_pages(), seg.num_pages());
  EXPECT_EQ(copy.backup_lsn(), seg.backup_lsn());
  // The copy serves identical pages.
  Lsn rp = seg.applied_lsn();
  auto a = seg.GetPageAsOf(0, rp);
  auto b = copy.GetPageAsOf(0, rp);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->raw(), b->raw());
}

TEST(SegmentTest, ScrubFindsCorruptMaterializedPage) {
  Segment seg(0, 4096);
  auto records = MakeChain(6);
  for (const auto& r : records) seg.AddRecord(r);
  seg.SetVdlHint(records[5].lsn);
  seg.SetPgmrpl(records[5].lsn);
  seg.CoalesceStep(100);
  EXPECT_EQ(seg.ScrubPages(), 0u);
  seg.CorruptBasePageForTesting(0);
  EXPECT_EQ(seg.ScrubPages(), 1u);
  EXPECT_EQ(seg.corrupt_pages().count(0), 1u);
  seg.DropPageForRepair(0);
  EXPECT_TRUE(seg.corrupt_pages().empty());
}

TEST(SegmentTest, InventoryListsChainMetadata) {
  Segment seg(0, 4096);
  auto records = MakeChain(4);
  for (const auto& r : records) seg.AddRecord(r);
  auto inv = seg.Inventory();
  ASSERT_EQ(inv.size(), 4u);
  EXPECT_EQ(inv[0].lsn, records[0].lsn);
  EXPECT_EQ(inv[1].prev, records[0].lsn);
  EXPECT_EQ(inv[2].vprev, records[1].lsn);
}

TEST(WireTest, AllMessageTypesRoundTrip) {
  {
    WriteBatchMsg m;
    m.pg = 3;
    m.replica = 5;
    m.epoch = 7;
    m.batch_seq = 42;
    m.vdl_hint = 1000;
    m.pgmrpl_hint = 900;
    m.records = MakeChain(3);
    std::string buf;
    m.EncodeTo(&buf);
    WriteBatchMsg out;
    ASSERT_TRUE(WriteBatchMsg::DecodeFrom(buf, &out).ok());
    EXPECT_EQ(out.pg, m.pg);
    EXPECT_EQ(out.replica, m.replica);
    EXPECT_EQ(out.batch_seq, m.batch_seq);
    EXPECT_EQ(out.records.size(), 3u);
    EXPECT_EQ(out.records[2].lsn, m.records[2].lsn);
  }
  {
    InventoryRespMsg m;
    m.req_id = 9;
    m.pg = 2;
    m.replica = 1;
    m.epoch = 3;
    m.scl = 500;
    m.vdl_hint = 450;
    m.entries = {{100, 90, 95, kFlagCpl}, {110, 100, 100, 0}};
    std::string buf;
    m.EncodeTo(&buf);
    InventoryRespMsg out;
    ASSERT_TRUE(InventoryRespMsg::DecodeFrom(buf, &out).ok());
    EXPECT_EQ(out.vdl_hint, 450u);
    ASSERT_EQ(out.entries.size(), 2u);
    EXPECT_EQ(out.entries[0].vprev, 95u);
    EXPECT_EQ(out.entries[0].flags, kFlagCpl);
  }
  {
    PgmrplMsg m;
    m.pg = 1;
    m.pgmrpl = 777;
    m.has_snapshot = true;
    m.vdl_snapshot = 800;
    m.pg_tail = 600;
    std::string buf;
    m.EncodeTo(&buf);
    PgmrplMsg out;
    ASSERT_TRUE(PgmrplMsg::DecodeFrom(buf, &out).ok());
    EXPECT_TRUE(out.has_snapshot);
    EXPECT_EQ(out.vdl_snapshot, 800u);
    EXPECT_EQ(out.pg_tail, 600u);
  }
  {
    ReplicaStreamMsg m;
    m.vdl = 123;
    m.records = MakeChain(2);
    m.commits = {{50, 1111}, {60, 2222}};
    std::string buf;
    m.EncodeTo(&buf);
    ReplicaStreamMsg out;
    ASSERT_TRUE(ReplicaStreamMsg::DecodeFrom(buf, &out).ok());
    EXPECT_EQ(out.vdl, 123u);
    EXPECT_EQ(out.commits.size(), 2u);
    EXPECT_EQ(out.commits[1].second, 2222u);
  }
  {
    TruncateReqMsg m;
    m.req_id = 5;
    m.pg = 4;
    m.epoch = 9;
    m.truncate_above = 1234;
    std::string buf;
    m.EncodeTo(&buf);
    TruncateReqMsg out;
    ASSERT_TRUE(TruncateReqMsg::DecodeFrom(buf, &out).ok());
    EXPECT_EQ(out.truncate_above, 1234u);
    EXPECT_EQ(out.epoch, 9u);
  }
}

TEST(WireTest, WriteBatchHeaderPlusBodyMatchesEncodeTo) {
  // The single-encode fan-out path splits the message at the per-replica
  // boundary; concatenating the two halves must reproduce EncodeTo exactly
  // so receivers decode with the unchanged DecodeFrom.
  WriteBatchMsg m;
  m.pg = 3;
  m.replica = 5;
  m.epoch = 7;
  m.cfg_epoch = 2;
  m.batch_seq = 42;
  m.vdl_hint = 1000;
  m.pgmrpl_hint = 900;
  m.records = MakeChain(3);
  std::string whole;
  m.EncodeTo(&whole);
  std::string split;
  m.EncodeHeaderTo(&split);
  WriteBatchMsg::EncodeBody(m.epoch, m.cfg_epoch, m.batch_seq, m.vdl_hint,
                            m.pgmrpl_hint, m.records, &split);
  EXPECT_EQ(split, whole);
  WriteBatchMsg out;
  ASSERT_TRUE(WriteBatchMsg::DecodeFrom(split, &out).ok());
  EXPECT_EQ(out.pg, m.pg);
  EXPECT_EQ(out.replica, m.replica);
  EXPECT_EQ(out.epoch, m.epoch);
  EXPECT_EQ(out.cfg_epoch, m.cfg_epoch);
  EXPECT_EQ(out.batch_seq, m.batch_seq);
  EXPECT_EQ(out.vdl_hint, m.vdl_hint);
  EXPECT_EQ(out.pgmrpl_hint, m.pgmrpl_hint);
  ASSERT_EQ(out.records.size(), 3u);
  EXPECT_EQ(out.records[2].lsn, m.records[2].lsn);
}

TEST(WireTest, TruncatedMessagesRejected) {
  WriteBatchMsg m;
  m.pg = 1;
  m.records = MakeChain(2);
  std::string buf;
  m.EncodeTo(&buf);
  for (size_t cut : {size_t{0}, size_t{1}, buf.size() / 2, buf.size() - 1}) {
    WriteBatchMsg out;
    EXPECT_FALSE(
        WriteBatchMsg::DecodeFrom(Slice(buf.data(), cut), &out).ok());
  }
}

}  // namespace
}  // namespace aurora
