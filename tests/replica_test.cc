#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions ReplicaCluster(int replicas) {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 1024;
  o.storage_nodes_per_az = 3;
  o.num_replicas = replicas;
  return o;
}

class ReplicaTest : public ::testing::Test {
 protected:
  ReplicaTest() : cluster_(ReplicaCluster(2)) {
    EXPECT_TRUE(cluster_.BootstrapSync().ok());
    EXPECT_TRUE(cluster_.CreateTableSync("t").ok());
    table_ = *cluster_.TableAnchorSync("t");
  }

  AuroraCluster cluster_;
  PageId table_ = kInvalidPage;
};

TEST_F(ReplicaTest, ReplicaServesCommittedData) {
  ASSERT_TRUE(cluster_.PutSync(table_, "k", "v").ok());
  cluster_.RunFor(Millis(50));  // let the stream propagate
  auto got = cluster_.ReplicaGetSync(0, table_, "k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "v");
}

TEST_F(ReplicaTest, BothReplicasConverge) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v" + std::to_string(i)).ok());
  }
  cluster_.RunFor(Millis(100));
  for (size_t r = 0; r < 2; ++r) {
    for (int i = 0; i < 50; ++i) {
      auto got = cluster_.ReplicaGetSync(r, table_, Key(i));
      ASSERT_TRUE(got.ok()) << "replica " << r << " key " << i;
      EXPECT_EQ(*got, "v" + std::to_string(i));
    }
  }
}

TEST_F(ReplicaTest, ReplicaAppliesStreamToCachedPages) {
  ASSERT_TRUE(cluster_.PutSync(table_, "k", "v1").ok());
  cluster_.RunFor(Millis(50));
  // Prime the replica cache.
  ASSERT_EQ(*cluster_.ReplicaGetSync(0, table_, "k"), "v1");
  uint64_t fetches_before = cluster_.replica(0)->stats().storage_page_reads;
  // Update flows through the redo stream; the cached page must be patched
  // in place — no new storage fetch for the re-read.
  ASSERT_TRUE(cluster_.PutSync(table_, "k", "v2").ok());
  cluster_.RunFor(Millis(100));
  auto got = cluster_.ReplicaGetSync(0, table_, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v2");
  EXPECT_EQ(cluster_.replica(0)->stats().storage_page_reads, fetches_before);
  EXPECT_GT(cluster_.replica(0)->stats().records_applied, 0u);
}

TEST_F(ReplicaTest, ReplicaDiscardsRecordsForUncachedPages) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v").ok());
  }
  cluster_.RunFor(Millis(100));
  // The replica never read anything: every streamed record hit an uncached
  // page and was discarded (§4.2.4 — replicas add no write amplification).
  EXPECT_GT(cluster_.replica(0)->stats().records_discarded, 0u);
}

TEST_F(ReplicaTest, ReplicaLagIsMilliseconds) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v").ok());
  }
  cluster_.RunFor(Millis(200));
  const Histogram& lag = cluster_.replica(0)->stats().lag_us;
  ASSERT_GT(lag.count(), 0u);
  // §4.2.4: "each replica typically lags behind the writer by a short
  // interval (20 ms or less)".
  EXPECT_LT(lag.P95(), 20000u) << lag.Summary();
}

TEST_F(ReplicaTest, ReplicaReadPointTracksVdl) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v").ok());
  }
  cluster_.RunFor(Millis(200));
  EXPECT_EQ(cluster_.replica(0)->read_point(), cluster_.writer()->vdl());
}

TEST_F(ReplicaTest, ReplicaCrashAndRestartRecovers) {
  ASSERT_TRUE(cluster_.PutSync(table_, "k", "v1").ok());
  cluster_.RunFor(Millis(50));
  ASSERT_EQ(*cluster_.ReplicaGetSync(0, table_, "k"), "v1");
  cluster_.replica(0)->Crash();
  ASSERT_TRUE(cluster_.PutSync(table_, "k", "v2").ok());
  cluster_.replica(0)->Restart();
  cluster_.RunFor(Millis(200));
  auto got = cluster_.ReplicaGetSync(0, table_, "k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "v2");
}

TEST_F(ReplicaTest, SnapshotGetSeesPreImageOfInFlightTxn) {
  ASSERT_TRUE(cluster_.PutSync(table_, "row", "old").ok());
  TxnId txn = cluster_.writer()->Begin();
  bool put_done = false;
  cluster_.writer()->Put(txn, table_, "row", "new", [&](Status s) {
    EXPECT_TRUE(s.ok());
    put_done = true;
  });
  cluster_.RunUntil([&] { return put_done; }, Seconds(10));
  // A snapshot read on the writer must not see the uncommitted value.
  Result<std::string> snap = Status::NotFound("");
  bool done = false;
  cluster_.writer()->SnapshotGet(0, table_, "row", [&](Result<std::string> r) {
    snap = std::move(r);
    done = true;
  });
  cluster_.RunUntil([&] { return done; }, Seconds(10));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(*snap, "old");
  bool committed = false;
  cluster_.writer()->Commit(txn, [&](Status) { committed = true; });
  cluster_.RunUntil([&] { return committed; }, Seconds(10));
}

}  // namespace
}  // namespace aurora
