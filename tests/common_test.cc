#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace aurora {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing row");
}

TEST(StatusTest, AllConstructorsMatchPredicates) {
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::Busy("").IsBusy());
  EXPECT_TRUE(Status::TimedOut("").IsTimedOut());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::Stale("").IsStale());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  EXPECT_TRUE(Slice("abc") < Slice("abd"));
  EXPECT_TRUE(Slice("abc") < Slice("abcd"));
  EXPECT_TRUE(Slice("abcdef").starts_with("abc"));
  EXPECT_FALSE(Slice("ab").starts_with("abc"));
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Slice in(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(GetFixed16(&in, &a));
  ASSERT_TRUE(GetFixed32(&in, &b));
  ASSERT_TRUE(GetFixed64(&in, &c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripSweep) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384, 1u << 20};
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(1ull << shift);
    values.push_back((1ull << shift) - 1);
  }
  values.push_back(UINT64_MAX);
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {0ull, 127ull, 128ull, 1ull << 62,
                     static_cast<unsigned long long>(UINT64_MAX)}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  }
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, "alpha");
  PutLengthPrefixedSlice(&buf, "");
  PutLengthPrefixedSlice(&buf, std::string(1000, 'x'));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a.ToString(), "alpha");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zero.
  char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, 32), 0x8A9136AAu);
  // "123456789" -> 0xE3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ExtendComposes) {
  const char* data = "hello world, this is aurora";
  size_t n = strlen(data);
  uint32_t whole = crc32c::Value(data, n);
  for (size_t split = 0; split <= n; ++split) {
    uint32_t part = crc32c::Extend(crc32c::Value(data, split), data + split,
                                   n - split);
    EXPECT_EQ(part, whole);
  }
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, ExponentialMean) {
  Random r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(RandomTest, LogNormalMedian) {
  Random r(13);
  std::vector<double> vals;
  const int n = 10001;
  for (int i = 0; i < n; ++i) vals.push_back(r.LogNormal(50.0, 0.3));
  std::sort(vals.begin(), vals.end());
  EXPECT_NEAR(vals[n / 2], 50.0, 3.0);
}

TEST(RandomTest, ForkProducesIndependentStream) {
  Random a(42);
  Random b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(ZipfTest, SkewConcentratesOnHotKeys) {
  Random r(99);
  Zipf z(10000, 0.99);
  uint64_t hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (z.Sample(&r) < 100) ++hot;  // top 1% of keys
  }
  // With theta=0.99 the top 1% should draw far more than 1% of samples.
  EXPECT_GT(hot, n / 4);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Random r(5);
  Zipf z(100, 0.0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = z.Sample(&r);
    EXPECT_LT(v, 100u);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 90u);
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  Random r(17);
  for (double theta : {0.2, 0.5, 0.9, 0.99}) {
    Zipf z(1000, theta);
    for (int i = 0; i < 5000; ++i) EXPECT_LT(z.Sample(&r), 1000u);
  }
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v < 31; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 31u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_EQ(h.Percentile(50), 15u);
}

TEST(HistogramTest, PercentileAccuracy) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  // Log-bucketed: relative error should be within ~2 * 1/32.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 50000 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 95000.0, 95000 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 99000.0, 99000 * 0.07);
  EXPECT_EQ(h.Percentile(100), 100000u);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a, b, combined;
  Random r(3);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = r.Uniform(1000000);
    if (i % 2) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.P95(), combined.P95());
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

}  // namespace
}  // namespace aurora
