// Crash-path timer audit (driven by the aurora-C1/C2 lint findings): every
// component that owns periodic or pending timers must cancel them in
// Crash(), so (a) pending() drops immediately at crash time instead of
// waiting for generation-guarded closures to fire as no-ops, and (b)
// repeated crash/recover cycles do not grow the event queue.
#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.h"
#include "harness/mysql_cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions SmallCluster(int replicas = 0) {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 1024;
  o.storage_nodes_per_az = 2;
  o.num_replicas = replicas;
  return o;
}

TEST(CrashLifecycleTest, WriterCrashCancelsItsTimersImmediately) {
  AuroraCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ASSERT_TRUE(cluster.PutSync(table, "k", "v").ok());
  cluster.RunFor(Millis(50));

  // The open writer keeps three periodic ticks armed (pgmrpl, purge,
  // replica-ship). Crash() must cancel them synchronously — pending()
  // reflects cancellation immediately (lazy tombstones do not count).
  size_t before = cluster.loop()->pending();
  cluster.writer()->Crash();
  size_t after = cluster.loop()->pending();
  EXPECT_LE(after + 3, before)
      << "Crash() left periodic engine timers live: before=" << before
      << " after=" << after;
}

TEST(CrashLifecycleTest, WriterCrashRecoverCyclesKeepPendingAtBaseline) {
  AuroraCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v").ok());
  }

  // Sample pending() through identical quiesce windows after each
  // crash/recover cycle. A timer leaked per cycle would ratchet the count
  // upward monotonically; allow ±2 for in-flight gossip/pgmrpl messages
  // whose phase shifts with the crash times.
  std::vector<size_t> samples;
  for (int cycle = 0; cycle < 6; ++cycle) {
    cluster.CrashWriter();
    ASSERT_TRUE(cluster.RecoverSync().ok()) << "cycle " << cycle;
    cluster.RunFor(Seconds(1));
    samples.push_back(cluster.loop()->pending());
  }
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i], samples[0] + 2)
        << "pending ratcheted across crash/recover cycles: " << samples[0]
        << " -> " << samples[i] << " (cycle " << i << ")";
  }
}

TEST(CrashLifecycleTest, ZdpTimerIsCancelledByCrash) {
  AuroraCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());

  // Start a long patch; once the engine quiesces, the patch-completion
  // event sits in the queue for 10 simulated seconds.
  bool done_called = false;
  cluster.writer()->ZeroDowntimePatch(Seconds(10),
                                      [&](Status) { done_called = true; });
  cluster.RunFor(Millis(100));
  ASSERT_FALSE(done_called);

  size_t before = cluster.loop()->pending();
  cluster.writer()->Crash();
  size_t after = cluster.loop()->pending();
  EXPECT_LT(after, before) << "crash must cancel the pending ZDP timer";

  // The cancelled completion never fires (and never touches freed state).
  cluster.RunFor(Seconds(15));
  EXPECT_FALSE(done_called);
}

TEST(CrashLifecycleTest, ReplicaCrashCancelsReadPointTimer) {
  AuroraCluster cluster(SmallCluster(/*replicas=*/2));
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ASSERT_TRUE(cluster.PutSync(table, "k", "v").ok());
  cluster.RunFor(Millis(50));

  size_t before = cluster.loop()->pending();
  cluster.replica(0)->Crash();
  size_t after = cluster.loop()->pending();
  EXPECT_LT(after, before)
      << "replica Crash() must cancel its read-point timer";
}

TEST(CrashLifecycleTest, StorageNodeCrashCancelsAllMaintenanceTimers) {
  AuroraCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  cluster.RunFor(Millis(50));

  // Each storage node keeps its maintenance timers (gossip, coalesce, GC,
  // scrub, backup) armed; Crash() cancels all of them.
  size_t before = cluster.loop()->pending();
  cluster.storage_node(0)->Crash();
  size_t after = cluster.loop()->pending();
  EXPECT_LE(after + 3, before)
      << "storage Crash() left maintenance timers live: before=" << before
      << " after=" << after;
}

TEST(CrashLifecycleTest, FullClusterCrashDrainsTheLoopToZero) {
  // The strongest form of the audit: crash every component (repair manager
  // disabled so nothing intentionally re-arms), then let the loop drain.
  // Every event left after the crashes must be a one-shot (in-flight
  // message or cancelled-timer tombstone); a component whose crash path
  // leaked a self-rearming chain would keep pending() above zero forever.
  ClusterOptions o = SmallCluster(/*replicas=*/1);
  o.start_repair_manager = false;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v").ok());
  }
  cluster.RunFor(Millis(20));

  cluster.writer()->Crash();
  for (size_t r = 0; r < cluster.num_replicas(); ++r) {
    cluster.replica(r)->Crash();
  }
  for (size_t s = 0; s < cluster.num_storage_nodes(); ++s) {
    cluster.storage_node(s)->Crash();
  }
  cluster.RunFor(Seconds(30));
  EXPECT_EQ(cluster.loop()->pending(), 0u)
      << "events still pending long after every component crashed";
}

TEST(CrashLifecycleTest, RepairManagerStopCancelsPollAndChunkTimers) {
  // The repair manager keeps a periodic poll armed and, while a chunked
  // transfer runs, one chunk timeout per active repair. Stop() must cancel
  // all of them synchronously — pending() drops immediately — and abort the
  // transfer so nothing fires into freed repair state afterwards.
  ClusterOptions o = SmallCluster();
  o.storage_nodes_per_az = 4;  // leave spare hosts so a repair dispatches
  o.repair.detection_threshold = Seconds(1);
  o.repair.chunk_bytes = 256;  // long multi-chunk transfer
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v").ok());
  }

  cluster.failure_injector()->CrashNode(cluster.storage_node(0)->id(), 0);
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return !cluster.repair_manager()->active_repairs().empty(); },
      Minutes(1)));

  size_t before = cluster.loop()->pending();
  cluster.repair_manager()->Stop();
  size_t after = cluster.loop()->pending();
  EXPECT_LE(after + 2, before)
      << "Stop() left the poll timer or a chunk timeout live: before="
      << before << " after=" << after;
  EXPECT_TRUE(cluster.repair_manager()->active_repairs().empty());
  EXPECT_EQ(cluster.repair_manager()->queue_depth(), 0u);

  // No repair activity of any kind after Stop().
  const uint64_t completed = cluster.repair_manager()->stats().completed;
  cluster.RunFor(Seconds(10));
  EXPECT_EQ(cluster.repair_manager()->stats().completed, completed);
}

TEST(CrashLifecycleTest, MysqlCrashCancelsCheckpointTimer) {
  MysqlCluster cluster{MysqlClusterOptions{}};
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ASSERT_TRUE(cluster.PutSync(table, "k", "v").ok());
  cluster.RunFor(Millis(50));

  size_t before = cluster.loop()->pending();
  cluster.db()->Crash();
  size_t after = cluster.loop()->pending();
  EXPECT_LT(after, before)
      << "MirroredMySql::Crash() must cancel the checkpoint re-arm";

  // And the cycle does not ratchet pending() upward.
  std::vector<size_t> samples;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(cluster.RecoverSync().ok()) << "cycle " << cycle;
    cluster.RunFor(Seconds(1));
    samples.push_back(cluster.loop()->pending());
    cluster.db()->Crash();
  }
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i], samples[0]);
  }
}

}  // namespace
}  // namespace aurora
