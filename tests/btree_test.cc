#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "log/applicator.h"
#include "page/btree.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

class BTreeTest : public ::testing::TestWithParam<size_t> {
 protected:
  BTreeTest() : provider_(GetParam()) {
    MiniTransaction mtr(0);
    auto anchor = BTree::Create(&provider_, &mtr);
    EXPECT_TRUE(anchor.ok());
    EXPECT_TRUE(sink_.CommitMtr(&mtr).ok());
    tree_ = std::make_unique<BTree>(&provider_, *anchor);
  }

  Status Insert(const std::string& k, const std::string& v) {
    MiniTransaction mtr(1);
    Status s = tree_->Insert(k, v, &mtr);
    if (s.ok()) return sink_.CommitMtr(&mtr);
    return s;
  }
  Status Update(const std::string& k, const std::string& v) {
    MiniTransaction mtr(1);
    Status s = tree_->Update(k, v, &mtr);
    if (s.ok()) return sink_.CommitMtr(&mtr);
    return s;
  }
  Status Delete(const std::string& k) {
    MiniTransaction mtr(1);
    Status s = tree_->Delete(k, &mtr);
    if (s.ok()) return sink_.CommitMtr(&mtr);
    return s;
  }

  testing::MemoryPageProvider provider_;
  testing::LocalWalSink sink_;
  std::unique_ptr<BTree> tree_;
};

INSTANTIATE_TEST_SUITE_P(PageSizes, BTreeTest,
                         ::testing::Values(512, 1024, 4096));

TEST_P(BTreeTest, EmptyTreeLookupsFail) {
  std::string v;
  EXPECT_TRUE(tree_->Get("nope", &v).IsNotFound());
  auto count = tree_->CountForTesting();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  EXPECT_TRUE(tree_->CheckInvariants().ok());
}

TEST_P(BTreeTest, InsertAndGet) {
  ASSERT_TRUE(Insert("apple", "red").ok());
  ASSERT_TRUE(Insert("banana", "yellow").ok());
  std::string v;
  ASSERT_TRUE(tree_->Get("apple", &v).ok());
  EXPECT_EQ(v, "red");
  ASSERT_TRUE(tree_->Get("banana", &v).ok());
  EXPECT_EQ(v, "yellow");
  EXPECT_TRUE(tree_->Get("cherry", &v).IsNotFound());
}

TEST_P(BTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(Insert("k", "1").ok());
  EXPECT_TRUE(Insert("k", "2").IsInvalidArgument());
}

TEST_P(BTreeTest, SplitsKeepAllKeysSequential) {
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(Insert(Key(i), "v" + std::to_string(i)).ok()) << i;
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  auto count = tree_->CountForTesting();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<uint64_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string v;
    ASSERT_TRUE(tree_->Get(Key(i), &v).ok()) << i;
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  // Multi-level tree must have been built.
  EXPECT_GT(provider_.num_pages(), 4u);
}

TEST_P(BTreeTest, SplitsKeepAllKeysReverseOrder) {
  const int n = 1500;
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_TRUE(Insert(Key(i), "v").ok());
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  auto count = tree_->CountForTesting();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<uint64_t>(n));
}

TEST_P(BTreeTest, RandomOrderInsertion) {
  Random rng(31);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1500; ++i) {
    std::string k = Key(rng.Uniform(100000));
    std::string v = "v" + std::to_string(i);
    Status s = Insert(k, v);
    if (model.count(k)) {
      EXPECT_TRUE(s.IsInvalidArgument());
    } else {
      ASSERT_TRUE(s.ok());
      model[k] = v;
    }
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(tree_->Get(k, &got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST_P(BTreeTest, UpdateInPlaceAndWithGrowth) {
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(Insert(Key(i), "small").ok());
  // Grow values enough to force splits during update.
  std::string big(GetParam() / 8, 'B');
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Update(Key(i), big).ok()) << i;
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  for (int i = 0; i < 500; ++i) {
    std::string v;
    ASSERT_TRUE(tree_->Get(Key(i), &v).ok());
    EXPECT_EQ(v, big);
  }
  EXPECT_TRUE(Update("missing", "x").IsNotFound());
}

TEST_P(BTreeTest, DeleteThenReinsert) {
  for (int i = 0; i < 800; ++i) ASSERT_TRUE(Insert(Key(i), "v").ok());
  for (int i = 0; i < 800; i += 2) ASSERT_TRUE(Delete(Key(i)).ok());
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  auto count = tree_->CountForTesting();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 400u);
  std::string v;
  EXPECT_TRUE(tree_->Get(Key(0), &v).IsNotFound());
  EXPECT_TRUE(tree_->Get(Key(1), &v).ok());
  EXPECT_TRUE(Delete(Key(0)).IsNotFound());
  for (int i = 0; i < 800; i += 2) ASSERT_TRUE(Insert(Key(i), "v2").ok());
  ASSERT_TRUE(tree_->CheckInvariants().ok());
}

TEST_P(BTreeTest, EmptiedLeavesAreUnlinkedAndFreed) {
  // Deleting a contiguous range empties whole leaves; they must leave the
  // leaf chain (scans cross the gap) and land on the provider's free-list.
  const int n = 1000;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(Insert(Key(i), "v").ok());
  const size_t before = provider_.num_pages();
  for (int i = 200; i < 800; ++i) ASSERT_TRUE(Delete(Key(i)).ok());
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  auto count = tree_->CountForTesting();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 400u);
  EXPECT_GT(provider_.num_free(), 0u);

  // Scan across the deleted gap.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan(Key(150), 100, &out).ok());
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[i].first, Key(150 + i));
  for (int i = 50; i < 100; ++i) EXPECT_EQ(out[i].first, Key(800 + i - 50));

  // Refilling the range draws from the free-list, not the high-water mark.
  for (int i = 200; i < 800; ++i) ASSERT_TRUE(Insert(Key(i), "v").ok());
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_LE(provider_.num_pages(), before);
}

TEST_P(BTreeTest, ChurnReachesSteadyStatePageCount) {
  // The DESIGN.md §5 regression: before empty-leaf unlinking, every
  // fill/drain cycle grew the page space monotonically. With the free-list
  // the footprint must plateau at the first cycle's peak.
  const int n = 600;
  size_t peak = 0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(Insert(Key(i), "value-" + std::to_string(i)).ok());
    }
    for (int i = 0; i < n; ++i) ASSERT_TRUE(Delete(Key(i)).ok());
    ASSERT_TRUE(tree_->CheckInvariants().ok());
    auto count = tree_->CountForTesting();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 0u);
    if (cycle == 0) {
      peak = provider_.num_pages();
    } else {
      EXPECT_LE(provider_.num_pages(), peak) << "cycle " << cycle;
    }
  }
  EXPECT_GT(provider_.num_free(), 0u);
}

TEST_P(BTreeTest, UpsertInsertsOrUpdates) {
  MiniTransaction m1(1);
  ASSERT_TRUE(tree_->Upsert("k", "v1", &m1).ok());
  ASSERT_TRUE(sink_.CommitMtr(&m1).ok());
  MiniTransaction m2(1);
  ASSERT_TRUE(tree_->Upsert("k", "v2", &m2).ok());
  ASSERT_TRUE(sink_.CommitMtr(&m2).ok());
  std::string v;
  ASSERT_TRUE(tree_->Get("k", &v).ok());
  EXPECT_EQ(v, "v2");
}

TEST_P(BTreeTest, ScanReturnsSortedRange) {
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(Insert(Key(i), Key(i)).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan(Key(100), 250, &out).ok());
  ASSERT_EQ(out.size(), 250u);
  for (int i = 0; i < 250; ++i) {
    EXPECT_EQ(out[i].first, Key(100 + i));
  }
  out.clear();
  ASSERT_TRUE(tree_->Scan(Key(990), 100, &out).ok());
  EXPECT_EQ(out.size(), 10u);  // runs off the end of the tree
}

TEST_P(BTreeTest, OversizedKeyOrValueRejected) {
  std::string huge_key(GetParam(), 'K');
  std::string huge_val(GetParam(), 'V');
  EXPECT_TRUE(Insert(huge_key, "v").IsInvalidArgument());
  EXPECT_TRUE(Insert("k", huge_val).IsInvalidArgument());
  EXPECT_TRUE(Insert("", "v").IsInvalidArgument());
}

// Property: rebuilding every page purely from the log (the storage node's
// view of the world) reproduces the tree bit-for-bit. This is the
// "log is the database" invariant at the unit level.
TEST_P(BTreeTest, TreeIsFullyReconstructibleFromLog) {
  Random rng(8);
  for (int i = 0; i < 1200; ++i) {
    std::string k = Key(rng.Uniform(5000));
    MiniTransaction mtr(1);
    Status s = tree_->Upsert(k, "v" + std::to_string(i), &mtr);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(sink_.CommitMtr(&mtr).ok());
    if (i % 3 == 0) {
      MiniTransaction d(1);
      if (tree_->Delete(Key(rng.Uniform(5000)), &d).ok()) {
        ASSERT_TRUE(sink_.CommitMtr(&d).ok());
      }
    }
  }
  // Replay the entire log into a fresh page space.
  std::map<PageId, Page> rebuilt;
  for (const LogRecord& r : sink_.all_records()) {
    auto [it, inserted] = rebuilt.try_emplace(r.page_id, GetParam());
    ASSERT_TRUE(LogApplicator::Apply(r, &it->second).ok());
  }
  ASSERT_EQ(rebuilt.size(), provider_.num_pages());
  for (const auto& [id, page] : provider_.pages()) {
    auto it = rebuilt.find(id);
    ASSERT_NE(it, rebuilt.end()) << "page " << id;
    EXPECT_EQ(it->second.raw(), page->raw()) << "page " << id;
  }
}

}  // namespace
}  // namespace aurora
