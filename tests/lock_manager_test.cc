#include <gtest/gtest.h>

#include <vector>

#include "engine/lock_manager.h"
#include "sim/event_loop.h"

namespace aurora {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : locks_(&loop_, Seconds(5)) {}

  /// Convenience: request and record the grant status asynchronously.
  Status Lock(TxnId txn, const std::string& key, LockMode mode,
              Status* async_result = nullptr) {
    return locks_.Lock(txn, 1, key, mode, [async_result](Status s) {
      if (async_result != nullptr) *async_result = s;
    });
  }

  sim::EventLoop loop_;
  LockManager locks_;
};

TEST_F(LockManagerTest, SharedLocksCoexist) {
  EXPECT_TRUE(Lock(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(Lock(2, "k", LockMode::kShared).ok());
  EXPECT_TRUE(Lock(3, "k", LockMode::kShared).ok());
  EXPECT_EQ(locks_.ActiveLocks(), 1u);
}

TEST_F(LockManagerTest, ExclusiveExcludes) {
  EXPECT_TRUE(Lock(1, "k", LockMode::kExclusive).ok());
  Status granted = Status::NotFound("");
  EXPECT_TRUE(Lock(2, "k", LockMode::kShared, &granted).IsBusy());
  EXPECT_TRUE(granted.IsNotFound());  // not yet granted
  locks_.ReleaseAll(1);
  EXPECT_TRUE(granted.ok());  // granted on release
}

TEST_F(LockManagerTest, ReentrantAcquisition) {
  EXPECT_TRUE(Lock(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(Lock(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(Lock(1, "k", LockMode::kExclusive).ok());  // sole-holder upgrade
  EXPECT_TRUE(Lock(1, "k", LockMode::kShared).ok());     // X covers S
}

TEST_F(LockManagerTest, FifoFairnessPreventsWriterStarvation) {
  EXPECT_TRUE(Lock(1, "k", LockMode::kShared).ok());
  Status writer = Status::NotFound("");
  EXPECT_TRUE(Lock(2, "k", LockMode::kExclusive, &writer).IsBusy());
  // A later reader must NOT barge past the queued writer.
  Status reader = Status::NotFound("");
  EXPECT_TRUE(Lock(3, "k", LockMode::kShared, &reader).IsBusy());
  locks_.ReleaseAll(1);
  EXPECT_TRUE(writer.ok());
  EXPECT_TRUE(reader.IsNotFound());  // still behind the writer
  locks_.ReleaseAll(2);
  EXPECT_TRUE(reader.ok());
}

TEST_F(LockManagerTest, DeadlockDetectedOnCycle) {
  EXPECT_TRUE(Lock(1, "a", LockMode::kExclusive).ok());
  EXPECT_TRUE(Lock(2, "b", LockMode::kExclusive).ok());
  // 1 waits for b (held by 2).
  EXPECT_TRUE(Lock(1, "b", LockMode::kExclusive).IsBusy());
  // 2 -> a would close the cycle: refused immediately.
  EXPECT_TRUE(Lock(2, "a", LockMode::kExclusive).IsAborted());
  EXPECT_EQ(locks_.stats().deadlocks, 1u);
  // Victim rolls back; waiter proceeds.
  Status waiter = Status::NotFound("");
  locks_.ReleaseAll(2);
  EXPECT_EQ(locks_.WaitingTxns(), 0u);
}

TEST_F(LockManagerTest, UpgradeDeadlockDetected) {
  // Classic S->X upgrade collision.
  EXPECT_TRUE(Lock(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(Lock(2, "k", LockMode::kShared).ok());
  EXPECT_TRUE(Lock(1, "k", LockMode::kExclusive).IsBusy());  // waits on 2
  EXPECT_TRUE(Lock(2, "k", LockMode::kExclusive).IsAborted());  // cycle
}

TEST_F(LockManagerTest, ThreeWayDeadlockDetected) {
  EXPECT_TRUE(Lock(1, "a", LockMode::kExclusive).ok());
  EXPECT_TRUE(Lock(2, "b", LockMode::kExclusive).ok());
  EXPECT_TRUE(Lock(3, "c", LockMode::kExclusive).ok());
  EXPECT_TRUE(Lock(1, "b", LockMode::kExclusive).IsBusy());
  EXPECT_TRUE(Lock(2, "c", LockMode::kExclusive).IsBusy());
  EXPECT_TRUE(Lock(3, "a", LockMode::kExclusive).IsAborted());
}

TEST_F(LockManagerTest, TimeoutFiresForStuckWaiter) {
  EXPECT_TRUE(Lock(1, "k", LockMode::kExclusive).ok());
  Status waiter = Status::NotFound("");
  EXPECT_TRUE(Lock(2, "k", LockMode::kExclusive, &waiter).IsBusy());
  loop_.RunFor(Seconds(6));
  EXPECT_TRUE(waiter.IsTimedOut());
  EXPECT_EQ(locks_.stats().timeouts, 1u);
  // Lock table cleaned up; holder unaffected.
  EXPECT_TRUE(Lock(1, "k", LockMode::kExclusive).ok());
}

TEST_F(LockManagerTest, ReleaseAllCancelsWaits) {
  EXPECT_TRUE(Lock(1, "k", LockMode::kExclusive).ok());
  Status waiter = Status::NotFound("");
  EXPECT_TRUE(Lock(2, "k", LockMode::kExclusive, &waiter).IsBusy());
  locks_.ReleaseAll(2);  // waiter gives up (rollback)
  EXPECT_EQ(locks_.WaitingTxns(), 0u);
  locks_.ReleaseAll(1);
  EXPECT_TRUE(waiter.IsNotFound());  // callback never fired
  EXPECT_EQ(locks_.ActiveLocks(), 0u);
}

TEST_F(LockManagerTest, ChainedGrantsCascade) {
  EXPECT_TRUE(Lock(1, "k", LockMode::kExclusive).ok());
  std::vector<Status> granted(3, Status::NotFound(""));
  EXPECT_TRUE(Lock(2, "k", LockMode::kShared, &granted[0]).IsBusy());
  EXPECT_TRUE(Lock(3, "k", LockMode::kShared, &granted[1]).IsBusy());
  EXPECT_TRUE(Lock(4, "k", LockMode::kShared, &granted[2]).IsBusy());
  locks_.ReleaseAll(1);
  // All compatible queued readers granted in one cascade.
  EXPECT_TRUE(granted[0].ok());
  EXPECT_TRUE(granted[1].ok());
  EXPECT_TRUE(granted[2].ok());
}

TEST_F(LockManagerTest, ResetDropsEverythingSilently) {
  EXPECT_TRUE(Lock(1, "a", LockMode::kExclusive).ok());
  Status waiter = Status::NotFound("");
  EXPECT_TRUE(Lock(2, "a", LockMode::kExclusive, &waiter).IsBusy());
  locks_.Reset();
  EXPECT_EQ(locks_.ActiveLocks(), 0u);
  EXPECT_EQ(locks_.WaitingTxns(), 0u);
  loop_.Run();
  EXPECT_TRUE(waiter.IsNotFound());  // no callback after reset
}

TEST_F(LockManagerTest, DifferentTreesAreIndependentNamespaces) {
  EXPECT_TRUE(locks_.Lock(1, 1, "k", LockMode::kExclusive, nullptr).ok());
  EXPECT_TRUE(locks_.Lock(2, 2, "k", LockMode::kExclusive, nullptr).ok());
  EXPECT_EQ(locks_.ActiveLocks(), 2u);
}

}  // namespace
}  // namespace aurora
