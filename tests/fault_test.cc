#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions FaultCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 1024;
  o.storage_nodes_per_az = 4;
  o.repair.detection_threshold = Seconds(2);
  return o;
}

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : cluster_(FaultCluster()) {
    EXPECT_TRUE(cluster_.BootstrapSync().ok());
    EXPECT_TRUE(cluster_.CreateTableSync("t").ok());
    table_ = *cluster_.TableAnchorSync("t");
  }

  /// Writes n rows; returns how many committed.
  int WriteRows(int base, int n) {
    int ok = 0;
    for (int i = 0; i < n; ++i) {
      if (cluster_.PutSync(table_, Key(base + i), "v").ok()) ++ok;
    }
    return ok;
  }

  AuroraCluster cluster_;
  PageId table_ = kInvalidPage;
};

TEST_F(FaultTest, WritesSurviveOneStorageNodeDown) {
  cluster_.failure_injector()->CrashNode(cluster_.storage_node(0)->id(),
                                         Seconds(30));
  EXPECT_EQ(WriteRows(0, 50), 50);
}

TEST_F(FaultTest, WritesSurviveEntireAzDown) {
  // §2.1 design point (b): lose an entire AZ and keep writing (4/6 quorum
  // needs only the four replicas in the two surviving AZs).
  cluster_.failure_injector()->FailAz(1, Minutes(5));
  EXPECT_EQ(WriteRows(0, 50), 50);
}

TEST_F(FaultTest, ReadsSurviveAzPlusOne) {
  EXPECT_EQ(WriteRows(0, 50), 50);
  cluster_.RunFor(Seconds(1));
  // AZ+1: one AZ plus one more node. Writes may stall (only 3 replicas
  // reachable for some PGs) but committed data must stay readable.
  cluster_.failure_injector()->FailAz(1, Minutes(10));
  const PgMembership& members = cluster_.control_plane()->membership(0);
  // Crash one member outside AZ 1.
  for (sim::NodeId node : members.nodes) {
    if (cluster_.topology()->az_of(node) != 1) {
      cluster_.failure_injector()->CrashNode(node, Minutes(10));
      break;
    }
  }
  for (int i = 0; i < 50; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
  }
}

TEST_F(FaultTest, GossipFillsGapsFromDroppedBatches) {
  // With 1% message loss, some replicas miss batches; writer retries give
  // quorum, and gossip must converge the stragglers.
  cluster_.network()->set_drop_probability(0.01);
  EXPECT_EQ(WriteRows(0, 100), 100);
  cluster_.network()->set_drop_probability(0.0);
  cluster_.RunFor(Seconds(5));
  Lsn vdl = cluster_.writer()->vdl();
  size_t num_pgs = cluster_.control_plane()->num_pgs();
  for (PgId pg = 0; pg < num_pgs; ++pg) {
    const PgMembership& members = cluster_.control_plane()->membership(pg);
    for (sim::NodeId node : members.nodes) {
      StorageNode* sn = cluster_.storage_node_by_id(node);
      ASSERT_NE(sn, nullptr);
      const Segment* seg = sn->segment(pg);
      ASSERT_NE(seg, nullptr);
      EXPECT_GE(seg->scl(), vdl) << "pg " << pg << " node " << node;
    }
  }
}

TEST_F(FaultTest, SlowStorageNodeDoesNotStallCommits) {
  // §3.3: a slow node is absorbed by the 4/6 quorum; commit latency should
  // stay bounded by the 4th-fastest replica, not the slowest.
  const PgMembership& members = cluster_.control_plane()->membership(0);
  cluster_.failure_injector()->SlowNode(members.nodes[0], 100.0, Minutes(10));
  EXPECT_EQ(WriteRows(0, 30), 30);
  EXPECT_LT(cluster_.writer()->stats().commit_latency_us.P95(),
            Millis(50));
}

TEST_F(FaultTest, RepairReplacesPermanentlyDeadNode) {
  EXPECT_EQ(WriteRows(0, 30), 30);
  const PgMembership before = cluster_.control_plane()->membership(0);
  sim::NodeId victim = before.nodes[2];
  cluster_.failure_injector()->CrashNode(victim, 0);  // permanent
  // Detection threshold (2s) + transfer; give it time.
  ASSERT_TRUE(cluster_.RunUntil(
      [&] {
        return cluster_.repair_manager()->stats().completed >=
               cluster_.control_plane()->ReplicasOnNode(victim).size() &&
               cluster_.control_plane()->membership(0).IndexOf(victim) < 0;
      },
      Minutes(2)));
  const PgMembership& after = cluster_.control_plane()->membership(0);
  EXPECT_LT(after.IndexOf(victim), 0);
  EXPECT_GT(after.config_epoch, before.config_epoch);
  // The replacement converges via the copied state + gossip.
  cluster_.RunFor(Seconds(5));
  sim::NodeId replacement = after.nodes[2];
  StorageNode* sn = cluster_.storage_node_by_id(replacement);
  ASSERT_NE(sn, nullptr);
  const Segment* seg = sn->segment(0);
  ASSERT_NE(seg, nullptr);
  EXPECT_GE(seg->scl(), cluster_.writer()->vdl());
  // And writes keep flowing afterwards.
  EXPECT_EQ(WriteRows(100, 20), 20);
}

TEST_F(FaultTest, BriefOutageDoesNotTriggerRepair) {
  // §2.3: a node that blips for less than the detection threshold (e.g. an
  // OS patch) must not cause re-replication.
  cluster_.failure_injector()->CrashNode(cluster_.storage_node(0)->id(),
                                         Millis(500));
  cluster_.RunFor(Seconds(10));
  EXPECT_EQ(cluster_.repair_manager()->stats().completed, 0u);
}

TEST_F(FaultTest, HeatManagementMigratesReplica) {
  EXPECT_EQ(WriteRows(0, 20), 20);
  const PgMembership before = cluster_.control_plane()->membership(0);
  cluster_.repair_manager()->MigrateReplica(0, 1);
  ASSERT_TRUE(cluster_.RunUntil(
      [&] {
        return cluster_.control_plane()->membership(0).nodes[1] !=
               before.nodes[1];
      },
      Minutes(1)));
  EXPECT_EQ(WriteRows(50, 20), 20);
}

TEST_F(FaultTest, ScrubberDetectsAndHealsCorruptPage) {
  EXPECT_EQ(WriteRows(0, 50), 50);
  cluster_.RunFor(Seconds(3));  // allow materialization
  // Corrupt a materialized base page on one replica.
  const PgMembership& members = cluster_.control_plane()->membership(0);
  StorageNode* sn = cluster_.storage_node_by_id(members.nodes[0]);
  ASSERT_NE(sn, nullptr);
  Segment* seg = sn->segment(0);
  ASSERT_NE(seg, nullptr);
  ASSERT_GT(seg->num_pages(), 0u);
  seg->CorruptBasePageForTesting(0);
  cluster_.RunFor(Minutes(2));  // scrub interval is 30s
  EXPECT_GT(sn->stats().corrupt_pages_found, 0u);
  EXPECT_GT(sn->stats().corrupt_pages_repaired, 0u);
  EXPECT_TRUE(seg->corrupt_pages().empty());
}

TEST_F(FaultTest, BackgroundNoiseDoesNotLoseData) {
  cluster_.failure_injector()->EnableBackgroundNoise(Minutes(5), Seconds(2));
  int committed = WriteRows(0, 100);
  cluster_.failure_injector()->DisableBackgroundNoise();
  cluster_.RunFor(Seconds(5));
  EXPECT_EQ(committed, 100);
  for (int i = 0; i < 100; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i;
  }
}

}  // namespace
}  // namespace aurora
