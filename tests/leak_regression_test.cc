// LSan-backed regression tests for the historical self-referential
// shared_ptr closure cycles (the aurora-L2 rule's subjects). Each test
// tears the world down *mid-flight* — while the weak-step/weak-self
// closures are still scheduled — and relies on the sanitize CI job
// (ASAN_OPTIONS=detect_leaks=1) to fail the run if any closure chain pins
// itself: a strong self-capture in any of these paths turns into a leaked
// shared_ptr<std::function> the moment the loop is destroyed under it.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/client_api.h"
#include "harness/cluster.h"
#include "harness/mysql_cluster.h"
#include "tests/test_util.h"
#include "workload/tpcc.h"

namespace aurora {
namespace {

ClusterOptions TinyCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 1024;
  o.storage_nodes_per_az = 2;
  return o;
}

TpccTables MakeTables(AuroraCluster* cluster) {
  TpccTables t;
  auto make = [cluster](const char* name, PageId* out) {
    EXPECT_TRUE(cluster->CreateTableSync(name).ok());
    *out = *cluster->TableAnchorSync(name);
  };
  make("wh", &t.warehouse);
  make("di", &t.district);
  make("cu", &t.customer);
  make("st", &t.stock);
  make("or", &t.orders);
  return t;
}

// tpcc.cc Load(): `step` is a make_shared<std::function> whose closure must
// hold itself only weakly (the in-flight Put/Commit continuation carries
// the strong reference). Destroying the driver and cluster mid-load frees
// everything iff that idiom holds.
TEST(LeakRegressionTest, TpccLoadTeardownMidFlight) {
  auto cluster = std::make_unique<AuroraCluster>(TinyCluster());
  ASSERT_TRUE(cluster->BootstrapSync().ok());
  TpccTables tables = MakeTables(cluster.get());

  AuroraClient client(cluster->writer());
  TpccOptions opts;
  opts.warehouses = 4;
  opts.connections = 4;
  auto driver = std::make_unique<TpccDriver>(cluster->writer_loop(), &client,
                                             tables, opts);
  bool load_done = false;
  driver->Load([&](Status) { load_done = true; });
  cluster->RunFor(Millis(5));  // part-way through the row loads
  ASSERT_FALSE(load_done);
  driver.reset();
  cluster.reset();  // LSan: nothing may survive this
}

// tpcc.cc NewOrder(): the per-order `line` chain uses the same weak idiom.
// Run full transactions briefly, then tear down with orders in flight.
TEST(LeakRegressionTest, TpccRunTeardownMidTransactions) {
  auto cluster = std::make_unique<AuroraCluster>(TinyCluster());
  ASSERT_TRUE(cluster->BootstrapSync().ok());
  TpccTables tables = MakeTables(cluster.get());

  AuroraClient client(cluster->writer());
  TpccOptions opts;
  opts.warehouses = 2;
  opts.connections = 8;
  opts.warmup = Millis(1);
  opts.duration = Seconds(30);  // far beyond the window we run
  auto driver = std::make_unique<TpccDriver>(cluster->writer_loop(), &client,
                                             tables, opts);
  Status load_status = Status::Busy("pending");
  driver->Load([&](Status s) { load_status = s; });
  ASSERT_TRUE(cluster->RunUntil([&] { return !load_status.IsBusy(); },
                                Seconds(60)));
  ASSERT_TRUE(load_status.ok());
  driver->Run([] {});
  cluster->RunFor(Millis(50));  // NewOrder line chains in flight
  driver.reset();
  cluster.reset();
}

// database.cc ZeroDowntimePatch(): `wait_quiet` must hold itself weakly
// while the 1ms quiesce retry is pending. Hold a transaction open so the
// engine never quiesces, then destroy the cluster mid-wait.
TEST(LeakRegressionTest, ZdpQuiesceTeardownMidWait) {
  auto cluster = std::make_unique<AuroraCluster>(TinyCluster());
  ASSERT_TRUE(cluster->BootstrapSync().ok());
  ASSERT_TRUE(cluster->CreateTableSync("t").ok());
  PageId table = *cluster->TableAnchorSync("t");

  Database* db = cluster->writer();
  TxnId txn = db->Begin();
  Status put_status = Status::Busy("pending");
  db->Put(txn, table, "k", "v", [&](Status s) { put_status = s; });
  ASSERT_TRUE(cluster->RunUntil([&] { return !put_status.IsBusy(); },
                                Seconds(10)));
  ASSERT_TRUE(put_status.ok());

  bool patched = false;
  db->ZeroDowntimePatch(Millis(10), [&](Status) { patched = true; });
  cluster->RunFor(Millis(50));  // retrying every 1ms behind the open txn
  ASSERT_FALSE(patched);
  cluster.reset();
}

// mirrored_mysql.cc Recover(): the WAL-replay `read_next` closure walks
// the log via the weak idiom; tear down while replay is in progress.
TEST(LeakRegressionTest, MysqlRecoveryTeardownMidReplay) {
  auto cluster = std::make_unique<MysqlCluster>(MysqlClusterOptions{});
  ASSERT_TRUE(cluster->BootstrapSync().ok());
  ASSERT_TRUE(cluster->CreateTableSync("t").ok());
  PageId table = *cluster->TableAnchorSync("t");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        cluster->PutSync(table, testing::Key(i), std::string(200, 'x')).ok());
  }
  cluster->db()->Crash();
  bool recovered = false;
  cluster->db()->Recover([&](Status) { recovered = true; });
  cluster->RunFor(Micros(500));  // mid-replay
  ASSERT_FALSE(recovered);
  cluster.reset();
}

// mirrored_mysql.cc Rollback(): `undo_next` un-applies writes one at a
// time through the same idiom; tear down while the undo chain runs.
TEST(LeakRegressionTest, MysqlRollbackTeardownMidUndo) {
  // A tiny buffer pool forces the undo chain to fetch evicted pages from
  // EBS, keeping the rollback asynchronous long enough to tear down under
  // it (with everything resident the whole chain completes inline — a
  // 4-page pool against a ~30-leaf btree guarantees misses).
  MysqlClusterOptions opts;
  opts.mysql.engine.buffer_pool_pages = 4;
  auto cluster = std::make_unique<MysqlCluster>(opts);
  ASSERT_TRUE(cluster->BootstrapSync().ok());
  ASSERT_TRUE(cluster->CreateTableSync("t").ok());
  PageId table = *cluster->TableAnchorSync("t");

  baseline::MirroredMySql* db = cluster->db();
  TxnId txn = db->Begin();
  int writes_done = 0;
  constexpr int kWrites = 200;
  for (int i = 0; i < kWrites; ++i) {
    db->Put(txn, table, testing::Key(i), std::string(500, 'u'),
            [&](Status) { ++writes_done; });
  }
  ASSERT_TRUE(cluster->RunUntil([&] { return writes_done == kWrites; },
                                Seconds(30)));
  // Let checkpoints flush the txn's pages clean: dirty pages are
  // evict-vetoed, so until they flush the whole btree stays resident and
  // the undo chain would complete inline despite the tiny pool.
  cluster->RunFor(Seconds(5));
  bool rolled_back = false;
  db->Rollback(txn, [&](Status) { rolled_back = true; });
  cluster->RunFor(Micros(200));  // part-way down the undo chain
  ASSERT_FALSE(rolled_back);
  cluster.reset();
}

// database.cc Recover(): quorum recovery schedules truncate resends and
// epoch bumps that capture engine state; destroy mid-recovery.
TEST(LeakRegressionTest, AuroraRecoverTeardownMidRecovery) {
  auto cluster = std::make_unique<AuroraCluster>(TinyCluster());
  ASSERT_TRUE(cluster->BootstrapSync().ok());
  ASSERT_TRUE(cluster->CreateTableSync("t").ok());
  PageId table = *cluster->TableAnchorSync("t");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster->PutSync(table, testing::Key(i), "v").ok());
  }
  cluster->writer()->Crash();
  bool recovered = false;
  cluster->writer()->Recover([&](Status) { recovered = true; });
  cluster->RunFor(Micros(100));  // recovery messages in flight
  ASSERT_FALSE(recovered);
  cluster.reset();
}

}  // namespace
}  // namespace aurora
