#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "harness/bulk_load.h"
#include "harness/client_api.h"
#include "harness/cluster.h"
#include "harness/synthetic_table.h"
#include "sim/chaos.h"
#include "sim/event_loop.h"
#include "tests/test_util.h"
#include "workload/sysbench.h"

namespace aurora {
namespace {

using testing::Key;

// The whole repository rests on the simulator being bit-for-bit
// deterministic: identical seeds must produce identical histories no matter
// how the event queue is implemented internally. These tests pin that
// contract so the kernel can be rebuilt (std::map -> d-ary heap with lazy
// cancellation) without silently reordering same-time events.

/// Runs one fixed seeded workload — bootstrap, chaos (drops + AZ failure +
/// node crash, which exercise Cancel() heavily), writer crash + recovery —
/// and returns the full metrics dump plus the executed-event count. With
/// `adversary` set, the fabric additionally duplicates, reorders and
/// corrupts frames (all drawn from the seeded network RNG).
std::pair<std::string, uint64_t> RunSeededWorkload(uint64_t seed,
                                                   bool adversary = false,
                                                   int sim_shards = 1) {
  ClusterOptions o;
  o.seed = seed;
  o.sim_shards = sim_shards;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 512;
  o.storage_nodes_per_az = 3;
  o.num_replicas = 1;
  o.repair.detection_threshold = Seconds(2);
  AuroraCluster cluster(o);
  EXPECT_TRUE(cluster.BootstrapSync().ok());
  EXPECT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  Random rng(seed * 131 + 7);
  ChaosEngine chaos(&cluster);
  if (adversary) {
    AdversaryConfig cfg;
    cfg.drop_probability = 0.02;
    cfg.duplicate_probability = 0.05;
    cfg.reorder_window = Millis(2);
    cfg.corrupt_probability = 0.001;
    chaos.SetAdversary(cfg);
  } else {
    cluster.network()->set_drop_probability(0.01);
  }
  std::map<std::string, std::string> acked;
  for (int round = 0; round < 3; ++round) {
    if (round == 1) {
      cluster.failure_injector()->FailAz(static_cast<sim::AzId>(1),
                                         Seconds(1));
    }
    if (round == 2) {
      cluster.failure_injector()->CrashNode(cluster.storage_node(0)->id(),
                                            Seconds(1));
    }
    for (int i = 0; i < 20; ++i) {
      std::string key = Key(rng.Uniform(64));
      std::string value = "v" + std::to_string(round * 100 + i);
      if (cluster.PutSync(table, key, value).ok()) acked[key] = value;
    }
    cluster.RunFor(Millis(300));
  }
  chaos.ClearAdversary();
  cluster.CrashWriter();
  EXPECT_TRUE(cluster.RecoverSync().ok());
  cluster.RunFor(Seconds(2));
  for (const auto& [key, value] : acked) {
    auto got = cluster.GetSync(table, key);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, value);
    }
  }
  return {cluster.DumpMetricsJson(), cluster.loop()->events_executed()};
}

// Identical seeds => byte-identical metrics JSON (every counter, gauge and
// histogram bucket in the cluster) and the exact same number of executed
// events. Any nondeterminism anywhere — iteration order, same-time event
// ordering, uninitialized reads feeding control flow — shows up here.
TEST(DeterminismTest, SeededWorkloadIsByteIdentical) {
  auto [json_a, executed_a] = RunSeededWorkload(20260806);
  auto [json_b, executed_b] = RunSeededWorkload(20260806);
  EXPECT_EQ(executed_a, executed_b);
  EXPECT_EQ(json_a, json_b);
}

// The adversary (duplication + reorder + corruption) draws all its
// randomness from the seeded network RNG, so an adversary-on run must be
// exactly as reproducible as a clean one — the acceptance bar for using it
// in chaos CI.
TEST(DeterminismTest, AdversaryRunIsByteIdentical) {
  auto [json_a, executed_a] = RunSeededWorkload(20260806, /*adversary=*/true);
  auto [json_b, executed_b] = RunSeededWorkload(20260806, /*adversary=*/true);
  EXPECT_EQ(executed_a, executed_b);
  EXPECT_EQ(json_a, json_b);
  // The adversary must have actually done something, or this proves nothing.
  // (ToJson nests dotted names, so look for the leaf key.)
  EXPECT_NE(json_a.find("\"duplicates_injected\""), std::string::npos);
  auto [clean, clean_events] = RunSeededWorkload(20260806, /*adversary=*/false);
  (void)clean_events;
  EXPECT_NE(json_a, clean);
}

// The PDES acceptance bar (DESIGN.md §11): running the shards on 1, 2 or 4
// worker threads must produce byte-identical metrics dumps and event
// counts. The partition (one logical shard per AZ) is fixed; the worker
// count only chooses how many OS threads execute a window, so any
// divergence here is a synchronization bug in the coordinator, the
// mailboxes or a component that shares state across shards.
TEST(DeterminismTest, ShardWorkerSweepIsByteIdentical) {
  auto [json_1, executed_1] = RunSeededWorkload(20260806, false, 1);
  auto [json_2, executed_2] = RunSeededWorkload(20260806, false, 2);
  auto [json_4, executed_4] = RunSeededWorkload(20260806, false, 4);
  EXPECT_EQ(executed_1, executed_2);
  EXPECT_EQ(executed_1, executed_4);
  EXPECT_EQ(json_1, json_2);
  EXPECT_EQ(json_1, json_4);
}

// Same sweep with the fabric adversary on: duplication, reordering and
// corruption all draw from per-node RNG streams, so they must stay
// byte-identical under parallel execution too — chaos CI runs this way.
TEST(DeterminismTest, ShardWorkerSweepUnderAdversaryIsByteIdentical) {
  auto [json_1, executed_1] = RunSeededWorkload(20260806, true, 1);
  auto [json_2, executed_2] = RunSeededWorkload(20260806, true, 2);
  auto [json_4, executed_4] = RunSeededWorkload(20260806, true, 4);
  EXPECT_EQ(executed_1, executed_2);
  EXPECT_EQ(executed_1, executed_4);
  EXPECT_EQ(json_1, json_2);
  EXPECT_EQ(json_1, json_4);
}

/// The PR-10 robustness surface in one pot: chunked repair (permanent node
/// loss), the scrubber racing latent disk corruption and torn writes, and
/// the fabric adversary — all of whose retry/failover/read-repair decisions
/// draw from seeded RNG streams. Returns the metrics dump + event count.
std::pair<std::string, uint64_t> RunRepairScrubWorkload(uint64_t seed,
                                                        int sim_shards) {
  ClusterOptions o;
  o.seed = seed;
  o.sim_shards = sim_shards;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 512;
  o.storage_nodes_per_az = 4;
  o.repair.detection_threshold = Seconds(1);
  o.repair.chunk_bytes = 2048;
  o.storage.scrub_interval = Seconds(1);
  o.storage.disk.torn_write_probability = 0.02;
  o.storage.disk.latent_corruption_probability = 0.05;
  AuroraCluster cluster(o);
  EXPECT_TRUE(cluster.BootstrapSync().ok());
  EXPECT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  Random rng(seed * 131 + 7);
  ChaosEngine chaos(&cluster);
  AdversaryConfig cfg;
  cfg.drop_probability = 0.02;
  cfg.duplicate_probability = 0.05;
  cfg.reorder_window = Millis(2);
  cfg.corrupt_probability = 0.001;
  chaos.SetAdversary(cfg);
  std::map<std::string, std::string> acked;
  for (int round = 0; round < 3; ++round) {
    if (round == 1) {
      // Permanent loss: the repair state machine (chunked transfer, chunk
      // timeouts, possibly donor failover) runs under the adversary.
      cluster.failure_injector()->CrashNode(cluster.storage_node(0)->id(), 0);
    }
    for (int i = 0; i < 20; ++i) {
      std::string key = Key(rng.Uniform(64));
      std::string value = "v" + std::to_string(round * 100 + i);
      if (cluster.PutSync(table, key, value).ok()) acked[key] = value;
    }
    cluster.RunFor(Seconds(1));  // scrub rounds + repair progress
  }
  cluster.RunFor(Seconds(3));
  chaos.ClearAdversary();
  for (const auto& [key, value] : acked) {
    auto got = cluster.GetSync(table, key);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, value);
    }
  }
  return {cluster.DumpMetricsJson(), cluster.loop()->events_executed()};
}

// Repair + scrubber + disk faults active, swept across worker counts: the
// whole robustness stack must stay byte-identical under parallel shard
// execution, or chaos CI results would depend on the host's core count.
TEST(DeterminismTest, RepairScrubDiskFaultSweepIsByteIdentical) {
  auto [json_1, executed_1] = RunRepairScrubWorkload(20260807, 1);
  auto [json_2, executed_2] = RunRepairScrubWorkload(20260807, 2);
  auto [json_4, executed_4] = RunRepairScrubWorkload(20260807, 4);
  EXPECT_EQ(executed_1, executed_2);
  EXPECT_EQ(executed_1, executed_4);
  EXPECT_EQ(json_1, json_2);
  EXPECT_EQ(json_1, json_4);
  // Each subsystem's metrics are present in the dump, or the sweep proves
  // nothing about them.
  EXPECT_NE(json_1.find("\"torn_write_drops\""), std::string::npos);
  EXPECT_NE(json_1.find("\"repair\""), std::string::npos);
  EXPECT_NE(json_1.find("\"scrub\""), std::string::npos);
}

/// A short sysbench run with 100 ms interval-windowed metrics, returning
/// every window serialized. Windows are snapshotted from the control shard
/// (a barrier-consistent global cut), so the whole time series — not just
/// the final dump — must be byte-identical at any worker count. A
/// shard-local snapshot would read other shards' counters at an
/// execution-order-dependent point and fail this under workers > 1.
std::string RunWindowedSysbench(int sim_shards) {
  ClusterOptions o;
  o.seed = 7;
  o.sim_shards = sim_shards;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 512;
  o.storage_nodes_per_az = 3;
  AuroraCluster cluster(o);
  EXPECT_TRUE(cluster.BootstrapSync().ok());
  SyntheticCatalog catalog;
  auto layout = AttachSyntheticTable(&cluster, &catalog, "sbtest", 4000, 100);
  EXPECT_TRUE(layout.ok());
  AuroraClient client(cluster.writer());
  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kOltp;
  sopts.connections = 8;
  sopts.table_rows = 4000;
  sopts.duration = Millis(600);
  sopts.warmup = Millis(200);
  SysbenchDriver driver(cluster.writer_loop(), &client, (*layout)->anchor(),
                        sopts);
  driver.EnableIntervalMetrics(cluster.metrics(), Millis(100),
                               cluster.loop()->control());
  bool done = false;
  driver.Run([&] { done = true; });
  EXPECT_TRUE(cluster.RunUntil([&] { return done; }, Minutes(5)));
  EXPECT_GE(driver.metric_windows().size(), 6u);
  std::string out;
  for (const MetricsSnapshot& w : driver.metric_windows()) {
    out += w.ToJson();
    out += '\n';
  }
  return out;
}

TEST(DeterminismTest, IntervalWindowsAreByteIdenticalAcrossWorkers) {
  std::string w1 = RunWindowedSysbench(1);
  std::string w2 = RunWindowedSysbench(2);
  std::string w4 = RunWindowedSysbench(4);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w4);
}

// Different seeds must actually diverge, otherwise the test above proves
// nothing (e.g. if the dump ignored the workload entirely).
TEST(DeterminismTest, DifferentSeedsDiverge) {
  auto [json_a, executed_a] = RunSeededWorkload(1);
  auto [json_b, executed_b] = RunSeededWorkload(2);
  EXPECT_NE(json_a, json_b);
}

// ---------------------------------------------------------------------------
// Model equivalence: the EventLoop against a reference implementation of the
// original std::map ordering semantics — events fire in (time, schedule
// order); Cancel removes exactly the named event; RunUntil runs everything
// due at or before t and clamps the clock. Random interleavings of
// Schedule / nested Schedule / Cancel / RunUntil must produce the identical
// execution sequence and identical pending() counts.
// ---------------------------------------------------------------------------

class ReferenceQueue {
 public:
  // Returns a token used for cancellation.
  uint64_t Schedule(SimTime at, int tag) {
    uint64_t token = next_id_++;
    queue_[{at < now_ ? now_ : at, token}] = tag;
    return token;
  }

  bool Cancel(uint64_t token) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->first.second == token) {
        queue_.erase(it);
        return true;
      }
    }
    return false;
  }

  // Pops everything, leaving the clock at the last event's time.
  void Drain(std::vector<int>* out) {
    while (!queue_.empty()) {
      auto it = queue_.begin();
      now_ = it->first.first;
      out->push_back(it->second);
      queue_.erase(it);
    }
  }

  // Pops every event due at or before `t` in order, appending tags to out.
  void RunUntil(SimTime t, std::vector<int>* out) {
    while (!queue_.empty() && queue_.begin()->first.first <= t) {
      auto it = queue_.begin();
      now_ = it->first.first;
      out->push_back(it->second);
      queue_.erase(it);
    }
    if (now_ < t) now_ = t;
  }

  SimTime now() const { return now_; }
  size_t pending() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  uint64_t next_id_ = 1;
  std::map<std::pair<SimTime, uint64_t>, int> queue_;
};

class ModelEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ModelEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(ModelEquivalenceTest, RandomInterleavingsMatchReference) {
  Random rng(GetParam() * 2654435761u + 1);
  sim::EventLoop loop;
  ReferenceQueue ref;
  std::vector<int> loop_fired;
  std::vector<int> ref_fired;
  // Live events scheduled in both, as (loop id, reference token) pairs.
  std::vector<std::pair<sim::EventId, uint64_t>> live;
  int next_tag = 0;

  for (int step = 0; step < 4000; ++step) {
    switch (rng.Uniform(8)) {
      case 0:
      case 1:
      case 2: {  // Schedule at a (possibly past/now) absolute time.
        SimTime at = loop.now() + rng.Uniform(500);
        if (rng.Uniform(10) == 0) at = at >= 75 ? at - 75 : 0;
        int tag = next_tag++;
        sim::EventId id =
            loop.ScheduleAt(at, [tag, &loop_fired] { loop_fired.push_back(tag); });
        live.push_back({id, ref.Schedule(at, tag)});
        break;
      }
      case 3: {  // Schedule an event that schedules a nested event.
        SimDuration d = rng.Uniform(300);
        SimDuration nested_d = rng.Uniform(100);
        int tag = next_tag++;
        int nested_tag = next_tag++;
        sim::EventId id = loop.Schedule(d, [=, &loop, &loop_fired] {
          loop_fired.push_back(tag);
          loop.Schedule(nested_d, [nested_tag, &loop_fired] {
            loop_fired.push_back(nested_tag);
          });
        });
        // Reference models the nesting by pre-resolving the fire times; the
        // nested event is only enqueued if the outer one actually fires, so
        // track the pairing for cancellation.
        live.push_back({id, ref.Schedule(loop.now() + d, ~tag)});
        break;
      }
      case 4: {  // Cancel a random live event (or a bogus id).
        if (!live.empty() && rng.Uniform(8) != 0) {
          size_t idx = rng.Uniform(live.size());
          bool a = loop.Cancel(live[idx].first);
          bool b = ref.Cancel(live[idx].second);
          EXPECT_EQ(a, b);
          live.erase(live.begin() + idx);
        } else {
          EXPECT_FALSE(loop.Cancel(sim::EventId{0}));
        }
        break;
      }
      case 5: {  // Double-cancel: cancel, then cancel the same id again.
        if (!live.empty()) {
          size_t idx = rng.Uniform(live.size());
          sim::EventId id = live[idx].first;
          EXPECT_EQ(loop.Cancel(id), ref.Cancel(live[idx].second));
          EXPECT_FALSE(loop.Cancel(id));
          live.erase(live.begin() + idx);
        }
        break;
      }
      default: {  // Advance time.
        SimTime t = loop.now() + rng.Uniform(400);
        loop.RunUntil(t);
        ref.RunUntil(t, &ref_fired);
        EXPECT_EQ(loop.now(), t);
        EXPECT_EQ(ref.now(), t);
        break;
      }
    }
    // Resolve reference bookkeeping for outer events that fired (their
    // nested children are in the real loop only; drain and re-sync below).
    if (loop_fired.size() != ref_fired.size() || step % 512 == 511) {
      // Align by draining both completely, then re-sync the clocks (nested
      // children exist in the real loop only, so its clock may be ahead).
      loop.Run();
      ref.Drain(&ref_fired);
      SimTime sync = std::max(loop.now(), ref.now());
      loop.RunUntil(sync);
      ref.RunUntil(sync, &ref_fired);
      // Nested events only exist in the real loop; strip them and the
      // encoded outer markers before comparing the common subsequence.
      std::vector<int> a;
      for (int t : loop_fired) a.push_back(t);
      std::vector<int> b;
      for (int t : ref_fired) b.push_back(t < 0 ? ~t : t);
      // Remove tags unknown to the reference (nested children).
      std::vector<int> a_outer;
      std::set<int> ref_tags(b.begin(), b.end());
      for (int t : a) {
        if (ref_tags.count(t)) a_outer.push_back(t);
      }
      EXPECT_EQ(a_outer, b);
      loop_fired.clear();
      ref_fired.clear();
      live.clear();
    }
  }
}

// Same-time FIFO under interleaved cancellation: cancelling some of a batch
// of same-time events must not disturb the relative order of the survivors.
TEST(DeterminismTest, SameTimeFifoSurvivesCancellation) {
  sim::EventLoop loop;
  std::vector<int> fired;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(loop.Schedule(10, [i, &fired] { fired.push_back(i); }));
  }
  for (int i = 0; i < 100; i += 3) EXPECT_TRUE(loop.Cancel(ids[i]));
  loop.Run();
  std::vector<int> expect;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 != 0) expect.push_back(i);
  }
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(loop.pending(), 0u);
}

}  // namespace
}  // namespace aurora
