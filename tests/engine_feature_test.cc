#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions FeatureCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 2048;
  o.storage_nodes_per_az = 3;
  return o;
}

class EngineFeatureTest : public ::testing::Test {
 protected:
  EngineFeatureTest() : cluster_(FeatureCluster()) {
    EXPECT_TRUE(cluster_.BootstrapSync().ok());
    EXPECT_TRUE(cluster_.CreateTableSync("t").ok());
    table_ = *cluster_.TableAnchorSync("t");
  }

  AuroraCluster cluster_;
  PageId table_ = kInvalidPage;
};

// --- LAL back-pressure (§4.2.1) -------------------------------------------

TEST_F(EngineFeatureTest, TinyLalThrottlesWritesWithoutLosingThem) {
  ClusterOptions o = FeatureCluster();
  o.engine.lal = 2000;  // a handful of records
  AuroraCluster c(o);
  ASSERT_TRUE(c.BootstrapSync().ok());
  ASSERT_TRUE(c.CreateTableSync("t").ok());
  PageId table = *c.TableAnchorSync("t");
  // Fire many writes concurrently: they must all eventually commit, with
  // back-pressure stalls recorded along the way.
  int committed = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    TxnId txn = c.writer()->Begin();
    c.writer()->Put(txn, table, Key(i), std::string(300, 'x'), [&, txn](Status s) {
      if (!s.ok()) return;
      c.writer()->Commit(txn, [&](Status cs) {
        if (cs.ok()) ++committed;
      });
    });
  }
  c.RunUntil([&] { return committed == n; }, Minutes(2));
  EXPECT_EQ(committed, n);
  EXPECT_GT(c.writer()->stats().backpressure_stalls, 0u);
  EXPECT_FALSE(c.writer()->in_backpressure());
}

// --- Online DDL (§7.3) ------------------------------------------------------

TEST_F(EngineFeatureTest, InstantDdlVersionsRowsLazily) {
  ASSERT_TRUE(cluster_.PutSync(table_, "old-row", "v0-value").ok());

  uint32_t version = 0;
  bool done = false;
  cluster_.writer()->AlterTableSchema("t", [&](Result<uint32_t> v) {
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    version = *v;
    done = true;
  });
  ASSERT_TRUE(cluster_.RunUntil([&] { return done; }, Seconds(30)));
  EXPECT_EQ(version, 1u);

  // Rows written before the ALTER stay readable (decoded via their stamped
  // version); rows written after carry the new version. No table copy.
  auto old_row = cluster_.GetSync(table_, "old-row");
  ASSERT_TRUE(old_row.ok());
  EXPECT_EQ(*old_row, "v0-value");
  ASSERT_TRUE(cluster_.PutSync(table_, "new-row", "v1-value").ok());
  EXPECT_EQ(*cluster_.GetSync(table_, "new-row"), "v1-value");

  // A second ALTER bumps again.
  done = false;
  cluster_.writer()->AlterTableSchema("t", [&](Result<uint32_t> v) {
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 2u);
    done = true;
  });
  ASSERT_TRUE(cluster_.RunUntil([&] { return done; }, Seconds(30)));
  EXPECT_TRUE(
      cluster_.writer()->TableAnchor("nonexistent").status().IsNotFound());
}

// --- Zero-downtime patching (§7.4) ------------------------------------------

TEST_F(EngineFeatureTest, ZdpPreservesInFlightSessions) {
  // A client keeps issuing autocommit writes; a patch lands mid-stream.
  int committed = 0, failed = 0;
  bool stop = false;
  std::function<void(int)> issue = [&](int i) {
    if (stop) return;
    TxnId txn = cluster_.writer()->Begin();
    cluster_.writer()->Put(txn, table_, Key(i % 50), "v",
                           [&, txn, i](Status s) {
      if (!s.ok()) {
        ++failed;
        issue(i + 1);
        return;
      }
      cluster_.writer()->Commit(txn, [&, i](Status cs) {
        cs.ok() ? ++committed : ++failed;
        issue(i + 1);
      });
    });
  };
  issue(0);

  bool patched = false;
  cluster_.loop()->Schedule(Millis(100), [&] {
    cluster_.writer()->ZeroDowntimePatch(Millis(50), [&](Status s) {
      EXPECT_TRUE(s.ok()) << s.ToString();
      patched = true;
    });
  });
  cluster_.RunUntil([&] { return patched && committed > 100; }, Minutes(2));
  stop = true;
  cluster_.RunFor(Seconds(1));

  EXPECT_TRUE(patched);
  EXPECT_EQ(failed, 0);     // no session ever saw an error
  EXPECT_GT(committed, 100);
  EXPECT_FALSE(cluster_.writer()->patching());
}

TEST_F(EngineFeatureTest, ZdpRejectsConcurrentPatch) {
  bool first = false;
  cluster_.writer()->ZeroDowntimePatch(Millis(100), [&](Status s) {
    EXPECT_TRUE(s.ok());
    first = true;
  });
  Status second = Status::OK();
  cluster_.writer()->ZeroDowntimePatch(Millis(100),
                                       [&](Status s) { second = s; });
  EXPECT_TRUE(second.IsBusy());
  cluster_.RunUntil([&] { return first; }, Seconds(30));
}

// --- Scan ---------------------------------------------------------------------

TEST_F(EngineFeatureTest, ScanReturnsSortedDecodedRows) {
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v" + std::to_string(i)).ok());
  }
  TxnId txn = cluster_.writer()->Begin();
  bool done = false;
  std::vector<std::pair<std::string, std::string>> rows;
  cluster_.writer()->Scan(
      txn, table_, Key(10), 15,
      [&](Result<std::vector<std::pair<std::string, std::string>>> r) {
        ASSERT_TRUE(r.ok());
        rows = std::move(*r);
        done = true;
      });
  cluster_.RunUntil([&] { return done; }, Seconds(30));
  ASSERT_EQ(rows.size(), 15u);
  EXPECT_EQ(rows[0].first, Key(10));
  EXPECT_EQ(rows[0].second, "v10");
  EXPECT_EQ(rows[14].first, Key(24));
}

// --- Determinism ----------------------------------------------------------------

TEST(DeterminismTest, SameSeedSameOutcome) {
  auto run = [](uint64_t seed) {
    ClusterOptions o = FeatureCluster();
    o.seed = seed;
    AuroraCluster c(o);
    EXPECT_TRUE(c.BootstrapSync().ok());
    EXPECT_TRUE(c.CreateTableSync("t").ok());
    PageId table = *c.TableAnchorSync("t");
    for (int i = 0; i < 60; ++i) {
      EXPECT_TRUE(c.PutSync(table, Key(i), Key(i * 7)).ok());
    }
    c.RunFor(Seconds(1));
    // A tuple of state that would diverge under any nondeterminism.
    return std::make_tuple(c.writer()->vdl(), c.writer()->next_lsn(),
                           c.loop()->now(),
                           c.network()->total().messages_sent,
                           c.network()->total().bytes_sent);
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(std::get<2>(run(1234)), std::get<2>(run(99)));
}

}  // namespace
}  // namespace aurora
