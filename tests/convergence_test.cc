#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "harness/cluster.h"
#include "storage/segment.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

// Unit-level gossip property: six segment replicas each receive a random
// subset of a record chain; repeated pairwise exchange of RecordsAbove
// (exactly what GossipPull/Push ships) must converge every replica to the
// full chain, regardless of delivery order. Parameterized over seeds.
class GossipConvergenceTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, GossipConvergenceTest,
                         ::testing::Values(2, 19, 4242, 987654));

TEST_P(GossipConvergenceTest, PairwiseExchangeConvergesAllReplicas) {
  Random rng(GetParam());
  // Build a 300-record chain for one PG.
  std::vector<LogRecord> chain;
  Lsn prev = kInvalidLsn;
  for (int i = 0; i < 300; ++i) {
    LogRecord r;
    r.lsn = 100 + static_cast<Lsn>(i) * 7;
    r.prev_pg_lsn = prev;
    r.prev_vol_lsn = prev;
    r.page_id = static_cast<PageId>(i % 16);
    r.op = i < 16 ? RedoOp::kFormatPage : RedoOp::kInsert;
    r.payload = i < 16
                    ? LogRecord::MakeFormatPayload(
                          static_cast<uint8_t>(PageType::kBTreeLeaf), 0)
                    : LogRecord::MakeKeyValuePayload("k" + std::to_string(i),
                                                     "v");
    prev = r.lsn;
    chain.push_back(std::move(r));
  }

  std::vector<std::unique_ptr<Segment>> replicas;
  for (int i = 0; i < 6; ++i) {
    replicas.push_back(std::make_unique<Segment>(0, 4096));
  }
  // Each record lands on a random 4-subset (a write quorum), so every
  // record exists somewhere but no replica is complete.
  for (const LogRecord& r : chain) {
    int first = static_cast<int>(rng.Uniform(6));
    for (int j = 0; j < 4; ++j) {
      replicas[(first + j) % 6]->AddRecord(r);
    }
  }

  // Gossip: random pairs exchange until every replica is complete (or a
  // generous round bound proves divergence).
  for (int rounds = 0; rounds < 20000; ++rounds) {
    int a = static_cast<int>(rng.Uniform(6));
    int b = static_cast<int>(rng.Uniform(5));
    if (b >= a) ++b;
    // Each side advertises its SCL; the other pushes what it has above it.
    for (auto [src, dst] : {std::pair{a, b}, std::pair{b, a}}) {
      auto records = replicas[src]->RecordsAbove(replicas[dst]->scl(), 64);
      for (const LogRecord* r : records) {
        replicas[dst]->AddRecord(*r);
      }
    }
    bool all = true;
    for (auto& rep : replicas) {
      if (rep->scl() != chain.back().lsn) all = false;
    }
    if (all) break;
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(replicas[i]->scl(), chain.back().lsn) << "replica " << i;
    EXPECT_EQ(replicas[i]->hot_log_size(), chain.size());
  }
}

// Cluster-level property: after a workload quiesces, every live segment
// replica of every PG serves byte-identical page images at the VDL — the
// "storage service presents a unified view" clause of §5, checked at the
// byte level across all six copies.
class ReplicaImageEqualityTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicaImageEqualityTest,
                         ::testing::Values(11, 23));

TEST_P(ReplicaImageEqualityTest, AllSixCopiesServeIdenticalPages) {
  ClusterOptions o;
  o.seed = GetParam();
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.storage_nodes_per_az = 3;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  Random rng(GetParam() + 5);
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(cluster
                    .PutSync(table, Key(rng.Uniform(120)),
                             std::string(rng.Uniform(150) + 1, 'x'))
                    .ok());
  }
  cluster.RunFor(Seconds(3));  // quiesce: gossip + coalesce settle

  Lsn vdl = cluster.writer()->vdl();
  size_t num_pgs = cluster.control_plane()->num_pgs();
  int pages_compared = 0;
  for (PgId pg = 0; pg < num_pgs; ++pg) {
    const PgMembership& members = cluster.control_plane()->membership(pg);
    for (PageId page = pg * 64; page < (pg + 1) * 64; ++page) {
      std::string reference;
      for (sim::NodeId node : members.nodes) {
        StorageNode* sn = cluster.storage_node_by_id(node);
        ASSERT_NE(sn, nullptr);
        const Segment* seg = sn->segment(pg);
        ASSERT_NE(seg, nullptr);
        auto image = seg->GetPageAsOf(page, vdl);
        if (!image.ok()) {
          // NotFound (never written) must then hold on every replica.
          EXPECT_TRUE(image.status().IsNotFound())
              << image.status().ToString();
          continue;
        }
        if (reference.empty()) {
          reference = image->raw();
          ++pages_compared;
        } else {
          EXPECT_EQ(image->raw(), reference)
              << "pg " << pg << " page " << page << " node " << node;
        }
      }
    }
  }
  EXPECT_GT(pages_compared, 5);
}

}  // namespace
}  // namespace aurora
