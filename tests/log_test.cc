#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "log/applicator.h"
#include "log/log_record.h"
#include "log/mtr.h"
#include "page/page.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

LogRecord MakeInsert(PageId page, const std::string& k, const std::string& v) {
  LogRecord r;
  r.page_id = page;
  r.op = RedoOp::kInsert;
  r.payload = LogRecord::MakeKeyValuePayload(k, v);
  return r;
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord r;
  r.lsn = 123456;
  r.prev_pg_lsn = 123000;
  r.page_id = 42;
  r.txn_id = 7;
  r.op = RedoOp::kUpdate;
  r.flags = kFlagCpl;
  r.payload = LogRecord::MakeKeyValuePayload("key", "value");

  std::string buf;
  r.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), r.EncodedSize());

  Slice in(buf);
  LogRecord d;
  ASSERT_TRUE(LogRecord::DecodeFrom(&in, &d).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(d.lsn, r.lsn);
  EXPECT_EQ(d.prev_pg_lsn, r.prev_pg_lsn);
  EXPECT_EQ(d.page_id, r.page_id);
  EXPECT_EQ(d.txn_id, r.txn_id);
  EXPECT_EQ(d.op, r.op);
  EXPECT_TRUE(d.is_cpl());
  EXPECT_EQ(d.payload, r.payload);
}

TEST(LogRecordTest, CrcDetectsBitFlips) {
  LogRecord r = MakeInsert(1, "k", "v");
  r.lsn = 10;
  std::string buf;
  r.EncodeTo(&buf);
  for (size_t i = 0; i < buf.size(); ++i) {
    std::string corrupted = buf;
    corrupted[i] ^= 0x40;
    Slice in(corrupted);
    LogRecord d;
    Status s = LogRecord::DecodeFrom(&in, &d);
    EXPECT_TRUE(s.IsCorruption()) << "flip at byte " << i;
  }
}

TEST(LogRecordTest, TruncatedInputIsCorruption) {
  LogRecord r = MakeInsert(1, "key", "value");
  std::string buf;
  r.EncodeTo(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    LogRecord d;
    EXPECT_FALSE(LogRecord::DecodeFrom(&in, &d).ok()) << "cut=" << cut;
  }
}

TEST(LogRecordTest, BatchRoundTrip) {
  std::vector<LogRecord> batch;
  for (int i = 0; i < 50; ++i) {
    LogRecord r = MakeInsert(i, "k" + std::to_string(i), std::string(i, 'v'));
    r.lsn = 100 + i;
    batch.push_back(r);
  }
  std::string buf;
  EncodeRecordBatch(batch, &buf);
  std::vector<LogRecord> out;
  ASSERT_TRUE(DecodeRecordBatch(buf, &out).ok());
  ASSERT_EQ(out.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out[i].lsn, batch[i].lsn);
    EXPECT_EQ(out[i].payload, batch[i].payload);
  }
}

TEST(LogRecordTest, PayloadAccessors) {
  LogRecord r;
  r.payload = LogRecord::MakeFormatPayload(
      static_cast<uint8_t>(PageType::kBTreeLeaf), 3);
  uint8_t type, level;
  ASSERT_TRUE(r.GetFormat(&type, &level).ok());
  EXPECT_EQ(static_cast<PageType>(type), PageType::kBTreeLeaf);
  EXPECT_EQ(level, 3);

  r.payload = LogRecord::MakePageIdPayload(991);
  PageId pid;
  ASSERT_TRUE(r.GetPageId(&pid).ok());
  EXPECT_EQ(pid, 991u);

  r.payload = LogRecord::MakeVersionPayload(17);
  uint32_t ver;
  ASSERT_TRUE(r.GetVersion(&ver).ok());
  EXPECT_EQ(ver, 17u);

  r.payload = LogRecord::MakeKeyPayload("thekey");
  Slice k;
  ASSERT_TRUE(r.GetKey(&k).ok());
  EXPECT_EQ(k.ToString(), "thekey");

  r.payload = "";
  EXPECT_TRUE(r.GetFormat(&type, &level).IsCorruption());
  EXPECT_TRUE(r.GetPageId(&pid).IsCorruption());
}

class ApplicatorTest : public ::testing::Test {
 protected:
  ApplicatorTest() : page_(4096) {
    LogRecord fmt;
    fmt.lsn = 1;
    fmt.page_id = 9;
    fmt.op = RedoOp::kFormatPage;
    fmt.payload = LogRecord::MakeFormatPayload(
        static_cast<uint8_t>(PageType::kBTreeLeaf), 0);
    EXPECT_TRUE(LogApplicator::Apply(fmt, &page_).ok());
  }
  Page page_;
};

TEST_F(ApplicatorTest, FormatInitializesPage) {
  EXPECT_TRUE(page_.IsFormatted());
  EXPECT_EQ(page_.page_id(), 9u);
  EXPECT_EQ(page_.page_lsn(), 1u);
}

TEST_F(ApplicatorTest, AppliesAllOps) {
  LogRecord ins = MakeInsert(9, "k", "v1");
  ins.lsn = 2;
  ASSERT_TRUE(LogApplicator::Apply(ins, &page_).ok());

  LogRecord upd;
  upd.lsn = 3;
  upd.page_id = 9;
  upd.op = RedoOp::kUpdate;
  upd.payload = LogRecord::MakeKeyValuePayload("k", "v2");
  ASSERT_TRUE(LogApplicator::Apply(upd, &page_).ok());
  Slice v;
  ASSERT_TRUE(page_.GetRecord("k", &v));
  EXPECT_EQ(v.ToString(), "v2");

  LogRecord nxt;
  nxt.lsn = 4;
  nxt.page_id = 9;
  nxt.op = RedoOp::kSetNext;
  nxt.payload = LogRecord::MakePageIdPayload(55);
  ASSERT_TRUE(LogApplicator::Apply(nxt, &page_).ok());
  EXPECT_EQ(page_.next_page(), 55u);

  LogRecord prv;
  prv.lsn = 5;
  prv.page_id = 9;
  prv.op = RedoOp::kSetPrev;
  prv.payload = LogRecord::MakePageIdPayload(44);
  ASSERT_TRUE(LogApplicator::Apply(prv, &page_).ok());
  EXPECT_EQ(page_.prev_page(), 44u);

  LogRecord sv;
  sv.lsn = 6;
  sv.page_id = 9;
  sv.op = RedoOp::kSetSchemaVersion;
  sv.payload = LogRecord::MakeVersionPayload(3);
  ASSERT_TRUE(LogApplicator::Apply(sv, &page_).ok());
  EXPECT_EQ(page_.schema_version(), 3u);

  LogRecord del;
  del.lsn = 7;
  del.page_id = 9;
  del.op = RedoOp::kDelete;
  del.payload = LogRecord::MakeKeyPayload("k");
  ASSERT_TRUE(LogApplicator::Apply(del, &page_).ok());
  EXPECT_FALSE(page_.GetRecord("k", &v));

  EXPECT_EQ(page_.page_lsn(), 7u);
}

TEST_F(ApplicatorTest, IdempotentByLsn) {
  LogRecord ins = MakeInsert(9, "k", "v");
  ins.lsn = 5;
  ASSERT_TRUE(LogApplicator::Apply(ins, &page_).ok());
  // Re-applying the same record (or any record with lsn <= page lsn) must be
  // a no-op, not a duplicate-key error.
  ASSERT_TRUE(LogApplicator::Apply(ins, &page_).ok());
  EXPECT_EQ(page_.slot_count(), 1);
  EXPECT_EQ(page_.page_lsn(), 5u);
}

TEST_F(ApplicatorTest, DeterministicAfterImage) {
  // Same before-image + same records => bit-identical after-image.
  std::vector<LogRecord> recs;
  Random rng(4);
  Lsn lsn = 10;
  for (int i = 0; i < 200; ++i) {
    LogRecord r;
    r.page_id = 9;
    r.lsn = lsn++;
    uint64_t k = rng.Uniform(40);
    int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      r.op = RedoOp::kInsert;
      r.payload = LogRecord::MakeKeyValuePayload(
          "k" + std::to_string(k), std::string(rng.Uniform(20) + 1, 'x'));
    } else if (op == 1) {
      r.op = RedoOp::kUpdate;
      r.payload = LogRecord::MakeKeyValuePayload(
          "k" + std::to_string(k), std::string(rng.Uniform(20) + 1, 'y'));
    } else {
      r.op = RedoOp::kDelete;
      r.payload = LogRecord::MakeKeyPayload("k" + std::to_string(k));
    }
    recs.push_back(r);
  }
  Page a = page_;
  Page b = page_;
  for (const LogRecord& r : recs) {
    Status sa = LogApplicator::Apply(r, &a);
    Status sb = LogApplicator::Apply(r, &b);
    // Individual ops may legitimately fail (delete of absent key etc.);
    // determinism demands both copies fail identically.
    EXPECT_EQ(sa.code(), sb.code());
  }
  EXPECT_EQ(a.raw(), b.raw());
}

TEST_F(ApplicatorTest, ApplyAllStopsOnError) {
  std::vector<LogRecord> recs;
  LogRecord ok = MakeInsert(9, "a", "1");
  ok.lsn = 2;
  LogRecord bad;
  bad.lsn = 3;
  bad.page_id = 9;
  bad.op = RedoOp::kDelete;
  bad.payload = LogRecord::MakeKeyPayload("nonexistent");
  recs.push_back(ok);
  recs.push_back(bad);
  EXPECT_TRUE(LogApplicator::ApplyAll(recs, &page_).IsNotFound());
}

TEST(MtrTest, AppliesAndBuffers) {
  Page page(4096);
  MiniTransaction mtr(77);
  LogRecord fmt;
  fmt.page_id = 3;
  fmt.op = RedoOp::kFormatPage;
  fmt.payload = LogRecord::MakeFormatPayload(
      static_cast<uint8_t>(PageType::kBTreeLeaf), 0);
  ASSERT_TRUE(mtr.Apply(&page, fmt).ok());
  ASSERT_TRUE(mtr.Apply(&page, MakeInsert(3, "k", "v")).ok());
  EXPECT_EQ(mtr.size(), 2u);
  EXPECT_EQ(mtr.records()[0].txn_id, 77u);
  EXPECT_TRUE(page.IsFormatted());
  Slice v;
  EXPECT_TRUE(page.GetRecord("k", &v));
}

TEST(MtrTest, LocalSinkAssignsMonotonicLsnsAndCpl) {
  testing::MemoryPageProvider provider(4096);
  testing::LocalWalSink sink;

  MiniTransaction m1(1);
  auto p1 = provider.AllocatePage(PageType::kBTreeLeaf, 0, &m1);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(m1.Apply(*p1, MakeInsert((*p1)->page_id(), "a", "1")).ok());
  ASSERT_TRUE(sink.CommitMtr(&m1).ok());

  MiniTransaction m2(2);
  ASSERT_TRUE(m2.Apply(*p1, MakeInsert((*p1)->page_id(), "b", "2")).ok());
  ASSERT_TRUE(sink.CommitMtr(&m2).ok());

  const auto& all = sink.all_records();
  ASSERT_EQ(all.size(), 3u);
  // Strictly increasing LSNs; each record's backlink is its predecessor.
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].lsn, all[i - 1].lsn);
    EXPECT_EQ(all[i].prev_pg_lsn, all[i - 1].lsn);
  }
  // Last record of each MTR is a CPL.
  EXPECT_TRUE(all[1].is_cpl());
  EXPECT_TRUE(all[2].is_cpl());
  EXPECT_FALSE(all[0].is_cpl());
  EXPECT_EQ(m1.commit_lsn(), all[1].lsn);
  // Pages stamped with their latest record's LSN.
  EXPECT_EQ((*p1)->page_lsn(), all[2].lsn);
}

}  // namespace
}  // namespace aurora
