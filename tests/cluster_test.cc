#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions SmallCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 1024;
  o.storage_nodes_per_az = 3;
  return o;
}

class AuroraClusterTest : public ::testing::Test {
 protected:
  AuroraClusterTest() : cluster_(SmallCluster()) {
    EXPECT_TRUE(cluster_.BootstrapSync().ok());
    EXPECT_TRUE(cluster_.CreateTableSync("t").ok());
    auto anchor = cluster_.TableAnchorSync("t");
    EXPECT_TRUE(anchor.ok());
    table_ = *anchor;
  }

  AuroraCluster cluster_;
  PageId table_ = kInvalidPage;
};

TEST_F(AuroraClusterTest, BootstrapCreatesDurableVolume) {
  EXPECT_GT(cluster_.writer()->vdl(), 0u);
  EXPECT_GE(cluster_.control_plane()->num_pgs(), 1u);
}

TEST_F(AuroraClusterTest, PutThenGetRoundTrip) {
  ASSERT_TRUE(cluster_.PutSync(table_, "hello", "world").ok());
  auto got = cluster_.GetSync(table_, "hello");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "world");
  EXPECT_TRUE(cluster_.GetSync(table_, "missing").status().IsNotFound());
}

TEST_F(AuroraClusterTest, CommitWaitsForWriteQuorum) {
  ASSERT_TRUE(cluster_.PutSync(table_, "k", "v").ok());
  // After a committed write, at least a write quorum of segment replicas
  // must hold every record up to the VDL.
  Lsn vdl = cluster_.writer()->vdl();
  const PgMembership& members = cluster_.control_plane()->membership(0);
  int complete = 0;
  for (sim::NodeId node : members.nodes) {
    StorageNode* sn = cluster_.storage_node_by_id(node);
    ASSERT_NE(sn, nullptr);
    const Segment* seg = sn->segment(0);
    ASSERT_NE(seg, nullptr);
    if (seg->scl() >= vdl) ++complete;
  }
  EXPECT_GE(complete, 4);
}

TEST_F(AuroraClusterTest, ManyWritesAndReadBack) {
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v" + std::to_string(i)).ok())
        << i;
  }
  for (int i = 0; i < n; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i << " " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
  EXPECT_EQ(cluster_.writer()->stats().txns_committed, 2u * n);
}

TEST_F(AuroraClusterTest, DeleteRemovesRow) {
  ASSERT_TRUE(cluster_.PutSync(table_, "k", "v").ok());
  ASSERT_TRUE(cluster_.DeleteSync(table_, "k").ok());
  EXPECT_TRUE(cluster_.GetSync(table_, "k").status().IsNotFound());
  EXPECT_TRUE(cluster_.DeleteSync(table_, "k").IsNotFound());
}

TEST_F(AuroraClusterTest, OnlyLogRecordsCrossTheNetworkToStorage) {
  cluster_.network()->ResetStats();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), std::string(100, 'x')).ok());
  }
  // The writer never ships pages on the write path: its outbound bytes are
  // log batches (6-way fan-out), far below 6 * pages-touched * page-size.
  const sim::NetStats& writer_net =
      cluster_.network()->stats_of(cluster_.writer_node());
  uint64_t bytes_if_pages =
      6ull * 50 * 2 * cluster_.writer()->options().page_size;
  EXPECT_LT(writer_net.bytes_sent, bytes_if_pages / 4);
}

TEST_F(AuroraClusterTest, WriteBatchBodyEncodedOncePerAttempt) {
  const EngineStats& s = cluster_.writer()->stats();
  const uint64_t saved_after_bootstrap = s.batch_encode_bytes_saved;
  ASSERT_TRUE(cluster_.PutSync(table_, "k1", "v1").ok());
  ASSERT_TRUE(cluster_.PutSync(table_, "k2", "v2").ok());
  // Every batch attempt serializes the body once and shares it across the
  // un-acked replicas, so with all six replicas healthy each attempt saves
  // exactly (kReplicasPerPg - 1) re-encodes of the body.
  const uint64_t saved = s.batch_encode_bytes_saved - saved_after_bootstrap;
  EXPECT_GT(saved, 0u);
  EXPECT_EQ(saved % (kReplicasPerPg - 1), 0u);
  // The metric is exported under the engine namespace.
  MetricsSnapshot snap = cluster_.metrics()->Snapshot();
  auto it = snap.counters.find("engine.writer.batch_encode_bytes_saved");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_EQ(it->second, s.batch_encode_bytes_saved);
}

TEST_F(AuroraClusterTest, SteadyStateReadsHitThePageCache) {
  // A tiny buffer pool forces evictions, so re-reads fetch the same pages
  // from storage over and over — the reconstruction cache should serve the
  // repeats without replaying the log.
  ClusterOptions o = SmallCluster();
  o.engine.buffer_pool_pages = 16;
  AuroraCluster small(o);
  ASSERT_TRUE(small.BootstrapSync().ok());
  ASSERT_TRUE(small.CreateTableSync("t").ok());
  PageId table = *small.TableAnchorSync("t");
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(small.PutSync(table, Key(i), std::string(200, 'x')).ok());
  }
  small.RunFor(Seconds(1));
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < n; ++i) {
      auto got = small.GetSync(table, Key(i));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
    }
  }
  PageCacheStats fleet;
  for (size_t i = 0; i < small.num_storage_nodes(); ++i) {
    PageCacheStats s = small.storage_node(i)->PageCacheTotals();
    fleet.hits += s.hits;
    fleet.partial_hits += s.partial_hits;
    fleet.misses += s.misses;
  }
  EXPECT_GT(fleet.hits + fleet.partial_hits, 0u);
  // And the fleet-wide metric is exported.
  MetricsSnapshot snap = small.metrics()->Snapshot();
  auto it = snap.counters.find("storage.page_cache.hits");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_EQ(it->second, fleet.hits);
}

TEST_F(AuroraClusterTest, TransactionRollbackRestoresOldValues) {
  ASSERT_TRUE(cluster_.PutSync(table_, "a", "original").ok());
  TxnId txn = cluster_.writer()->Begin();
  bool put_done = false;
  cluster_.writer()->Put(txn, table_, "a", "modified",
                         [&](Status s) {
                           EXPECT_TRUE(s.ok());
                           put_done = true;
                         });
  cluster_.RunUntil([&] { return put_done; }, Seconds(10));
  bool rolled_back = false;
  cluster_.writer()->Rollback(txn, [&](Status s) {
    EXPECT_TRUE(s.ok()) << s.ToString();
    rolled_back = true;
  });
  cluster_.RunUntil([&] { return rolled_back; }, Seconds(10));
  auto got = cluster_.GetSync(table_, "a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "original");
}

TEST_F(AuroraClusterTest, RollbackOfInsertDeletesRow) {
  TxnId txn = cluster_.writer()->Begin();
  bool done = false;
  cluster_.writer()->Put(txn, table_, "fresh", "value", [&](Status s) {
    EXPECT_TRUE(s.ok());
    cluster_.writer()->Rollback(txn, [&](Status rs) {
      EXPECT_TRUE(rs.ok());
      done = true;
    });
  });
  cluster_.RunUntil([&] { return done; }, Seconds(10));
  EXPECT_TRUE(cluster_.GetSync(table_, "fresh").status().IsNotFound());
}

TEST_F(AuroraClusterTest, MultiStatementTransactionIsAtomic) {
  TxnId txn = cluster_.writer()->Begin();
  int pending = 3;
  bool committed = false;
  for (int i = 0; i < 3; ++i) {
    cluster_.writer()->Put(txn, table_, "multi" + std::to_string(i), "v",
                           [&](Status s) {
                             EXPECT_TRUE(s.ok());
                             if (--pending == 0) {
                               cluster_.writer()->Commit(txn, [&](Status cs) {
                                 EXPECT_TRUE(cs.ok());
                                 committed = true;
                               });
                             }
                           });
  }
  cluster_.RunUntil([&] { return committed; }, Seconds(10));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cluster_.GetSync(table_, "multi" + std::to_string(i)).ok());
  }
}

TEST_F(AuroraClusterTest, EvictionRespectsVdlRule) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), std::string(200, 'x')).ok());
  }
  cluster_.RunFor(Millis(100));
  // Every cached page above the VDL is unevictable; after quiescing, all
  // writes are durable so no page should be above the VDL.
  EXPECT_EQ(cluster_.writer()->buffer_pool()->CountAboveVdl(), 0u);
}

TEST_F(AuroraClusterTest, CacheMissFetchesPageFromStorage) {
  // Write enough rows to overflow a tiny buffer pool, forcing evictions and
  // storage fetches on re-read.
  ClusterOptions o = SmallCluster();
  o.engine.buffer_pool_pages = 16;
  AuroraCluster small(o);
  ASSERT_TRUE(small.BootstrapSync().ok());
  ASSERT_TRUE(small.CreateTableSync("t").ok());
  PageId table = *small.TableAnchorSync("t");
  const int n = 800;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        small.PutSync(table, Key(i), std::string(200, 'a' + i % 26)).ok())
        << i;
  }
  small.RunFor(Seconds(1));
  uint64_t fetches_before = small.writer()->stats().storage_page_reads;
  for (int i = 0; i < n; ++i) {
    auto got = small.GetSync(table, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, std::string(200, 'a' + i % 26));
  }
  EXPECT_GT(small.writer()->stats().storage_page_reads, fetches_before);
  EXPECT_GT(small.writer()->buffer_pool()->stats().evictions, 0u);
}

TEST_F(AuroraClusterTest, StorageNodesMaterializePagesInBackground) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v").ok());
  }
  // Let PGMRPL propagate and coalescing run.
  cluster_.RunFor(Seconds(2));
  uint64_t coalesced = 0;
  for (size_t i = 0; i < cluster_.num_storage_nodes(); ++i) {
    coalesced += cluster_.storage_node(i)->stats().records_coalesced;
  }
  EXPECT_GT(coalesced, 0u);
}

TEST_F(AuroraClusterTest, GarbageCollectionShrinksHotLog) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v").ok());
  }
  cluster_.RunFor(Seconds(3));
  uint64_t gced = 0;
  for (size_t i = 0; i < cluster_.num_storage_nodes(); ++i) {
    gced += cluster_.storage_node(i)->stats().records_gced;
  }
  EXPECT_GT(gced, 0u);
}

TEST_F(AuroraClusterTest, BackupsReachS3) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v").ok());
  }
  cluster_.RunFor(Seconds(2));
  EXPECT_GT(cluster_.s3()->num_objects(), 0u);
}

}  // namespace
}  // namespace aurora
