#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "harness/cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

// --- Minimal strict JSON syntax checker (no dependencies) -----------------
// Validates the subset the emitter produces: objects, strings, numbers,
// null. Returns true iff `s` is one well-formed JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    Ws();
    return pos_ == s_.size();
  }

 private:
  void Ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && (isdigit(s_[pos_]) || s_[pos_] == '.' ||
                                s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Object() {
    if (s_[pos_] != '{') return false;
    ++pos_;
    Ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      Ws();
      if (!String()) return false;
      Ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      Ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Value() {
    Ws();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '"') return String();
    if (c == 'n') return Literal("null");
    return Number();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(MetricsRegistryTest, RegisterSnapshotAndRead) {
  MetricsRegistry reg;
  uint64_t counter = 7;
  Histogram hist;
  hist.Record(100);
  hist.Record(200);
  reg.RegisterCounter("a.b.count", &counter);
  reg.RegisterCounter("a.b.fn_count", [] { return uint64_t{11}; });
  reg.RegisterGauge("a.depth", [] { return 2.5; });
  reg.RegisterHistogram("a.lat_us", &hist);
  EXPECT_EQ(reg.size(), 4u);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("a.b.count"), 7u);
  EXPECT_EQ(snap.counters.at("a.b.fn_count"), 11u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("a.depth"), 2.5);
  EXPECT_EQ(snap.histograms.at("a.lat_us").count, 2u);
  EXPECT_EQ(snap.histograms.at("a.lat_us").min, 100u);

  // Snapshots are point-in-time: later mutation is invisible to them but
  // visible to a fresh snapshot.
  counter = 50;
  hist.Record(300);
  EXPECT_EQ(snap.counters.at("a.b.count"), 7u);
  EXPECT_EQ(reg.Snapshot().counters.at("a.b.count"), 50u);
  EXPECT_EQ(reg.Snapshot().histograms.at("a.lat_us").count, 3u);
}

TEST(MetricsRegistryTest, ReRegistrationReplacesAndUnregisterPrefixDrops) {
  MetricsRegistry reg;
  reg.RegisterCounter("x.one", [] { return uint64_t{1}; });
  reg.RegisterCounter("x.one", [] { return uint64_t{2}; });  // replaces
  reg.RegisterCounter("x.two", [] { return uint64_t{3}; });
  reg.RegisterCounter("y.one", [] { return uint64_t{4}; });
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.Snapshot().counters.at("x.one"), 2u);

  reg.UnregisterPrefix("x.");
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.count("x.one"), 0u);
  EXPECT_EQ(snap.counters.count("x.two"), 0u);
  EXPECT_EQ(snap.counters.at("y.one"), 4u);
}

TEST(MetricsSnapshotTest, DiffSemantics) {
  MetricsRegistry reg;
  uint64_t counter = 10;
  double level = 1.0;
  Histogram hist;
  hist.Record(50);
  reg.RegisterCounter("c", &counter);
  reg.RegisterGauge("g", [&level] { return level; });
  reg.RegisterHistogram("h", &hist);

  MetricsSnapshot before = reg.Snapshot();
  counter = 25;
  level = 9.0;
  hist.Record(70);
  hist.Record(90);
  MetricsSnapshot after = reg.Snapshot();

  MetricsSnapshot diff = after.Diff(before);
  EXPECT_EQ(diff.counters.at("c"), 15u);       // delta
  EXPECT_DOUBLE_EQ(diff.gauges.at("g"), 9.0);  // level: keeps "after"
  EXPECT_EQ(diff.histograms.at("h").count, 2u);  // count delta
  // A counter that went backwards (reset) clamps to zero.
  counter = 3;
  EXPECT_EQ(reg.Snapshot().Diff(before).counters.at("c"), 0u);
}

TEST(MetricsSnapshotTest, MergeWithPrefix) {
  MetricsSnapshot a, b;
  b.counters["x"] = 1;
  b.gauges["y"] = 2.0;
  a.MergeWithPrefix("sub", b);
  EXPECT_EQ(a.counters.at("sub.x"), 1u);
  EXPECT_DOUBLE_EQ(a.gauges.at("sub.y"), 2.0);
}

TEST(MetricsSnapshotTest, JsonIsWellFormedAndNested) {
  MetricsRegistry reg;
  uint64_t c = 42;
  Histogram h;
  h.Record(123);
  reg.RegisterCounter("engine.writer.txns", &c);
  reg.RegisterCounter("storage.node3.gossip_rounds", [] { return uint64_t{9}; });
  reg.RegisterGauge("engine.writer.vdl", [] { return 1e6; });
  reg.RegisterHistogram("engine.writer.commit_latency_us", &h);
  // Pathological names: leaf/prefix collision and escaping.
  reg.RegisterCounter("engine.writer", [] { return uint64_t{1}; });
  reg.RegisterCounter("weird.\"quoted\\name\"", [] { return uint64_t{2}; });

  std::string json = reg.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"gossip_rounds\":9"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);

  EXPECT_TRUE(JsonChecker(MetricsSnapshot().ToJson()).Valid());
}

// --- Cluster integration ---------------------------------------------------

TEST(ClusterMetricsTest, DumpCoversEveryLayerAndTracingPopulates) {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.num_replicas = 1;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  MetricsSnapshot before = cluster.metrics()->Snapshot();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.GetSync(table, Key(i)).ok());
  }
  cluster.RunFor(Seconds(1));
  MetricsSnapshot after = cluster.metrics()->Snapshot();

  // One document, machine readable, covering every layer.
  std::string json = cluster.DumpMetricsJson();
  EXPECT_TRUE(JsonChecker(json).Valid());
  for (const char* layer :
       {"\"engine\"", "\"replica\"", "\"storage\"", "\"net\"", "\"disk\"",
        "\"cache\"", "\"locks\"", "\"repair\"", "\"s3\"", "\"sim\"",
        "\"trace\""}) {
    EXPECT_NE(json.find(layer), std::string::npos) << layer;
  }

  // The write-path stage tracing histograms populated during the run.
  const auto& hists = after.histograms;
  EXPECT_GT(hists.at("engine.writer.trace.append_to_flush_us").count, 0u);
  EXPECT_GT(hists.at("engine.writer.trace.flush_to_first_ack_us").count, 0u);
  EXPECT_GT(hists.at("engine.writer.trace.first_ack_to_quorum_us").count, 0u);
  EXPECT_GT(hists.at("engine.writer.trace.append_to_quorum_us").count, 0u);
  // Stages compose: append->quorum >= first-ack->quorum at every quantile
  // we expose (the first ack can't come after the quorum ack).
  EXPECT_GE(hists.at("engine.writer.trace.append_to_quorum_us").p50,
            hists.at("engine.writer.trace.first_ack_to_quorum_us").p50);

  // Interval semantics across the workload window.
  MetricsSnapshot diff = after.Diff(before);
  EXPECT_GE(diff.counters.at("engine.writer.txns_committed"), 40u);
  EXPECT_GT(diff.counters.at("net.total.messages_sent"), 0u);
  EXPECT_GT(diff.counters.at("engine.writer.log_records_sent"), 0u);

  // Storage fleet and disk counters are present per node.
  sim::NodeId sn_id = cluster.storage_node(0)->id();
  std::string base = "storage.node" + std::to_string(sn_id) + ".";
  EXPECT_TRUE(after.counters.count(base + "batches_received") == 1);
  EXPECT_TRUE(after.counters.count(base + "disk.writes") == 1);
  EXPECT_TRUE(after.histograms.count(base + "trace.gossip_fill_batch") == 1);
}

TEST(ClusterMetricsTest, RegistrySurvivesWriterFailover) {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.num_replicas = 2;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ASSERT_TRUE(cluster.PutSync(table, Key(1), "before").ok());

  ASSERT_TRUE(cluster.FailoverToReplicaSync(0).ok());
  ASSERT_TRUE(cluster.PutSync(table, Key(2), "after").ok());

  // Engine readers now report the promoted writer; the dump stays valid.
  MetricsSnapshot snap = cluster.metrics()->Snapshot();
  EXPECT_GT(snap.counters.at("engine.writer.txns_committed"), 0u);
  EXPECT_TRUE(JsonChecker(cluster.DumpMetricsJson()).Valid());
}

}  // namespace
}  // namespace aurora
