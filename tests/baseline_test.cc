#include <gtest/gtest.h>

#include <string>

#include "harness/mysql_cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

MysqlClusterOptions SmallMysql() {
  MysqlClusterOptions o;
  o.mysql.engine.page_size = 4096;
  o.mysql.engine.buffer_pool_pages = 1024;
  o.mysql.checkpoint_interval = Millis(500);
  return o;
}

class MysqlBaselineTest : public ::testing::Test {
 protected:
  MysqlBaselineTest() : cluster_(SmallMysql()) {
    EXPECT_TRUE(cluster_.BootstrapSync().ok());
    EXPECT_TRUE(cluster_.CreateTableSync("t").ok());
    table_ = *cluster_.TableAnchorSync("t");
  }

  MysqlCluster cluster_;
  PageId table_ = kInvalidPage;
};

TEST_F(MysqlBaselineTest, PutGetRoundTrip) {
  ASSERT_TRUE(cluster_.PutSync(table_, "hello", "world").ok());
  auto got = cluster_.GetSync(table_, "hello");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "world");
  EXPECT_TRUE(cluster_.GetSync(table_, "nope").status().IsNotFound());
}

TEST_F(MysqlBaselineTest, ManyWritesReadBack) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v" + std::to_string(i)).ok())
        << i;
  }
  for (int i = 0; i < 200; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
}

TEST_F(MysqlBaselineTest, CommitForcesWalThroughBothMirrors) {
  uint64_t flushes_before = cluster_.db()->stats().wal_flushes;
  ASSERT_TRUE(cluster_.PutSync(table_, "k", "v").ok());
  EXPECT_GT(cluster_.db()->stats().wal_flushes, flushes_before);
  EXPECT_GT(cluster_.db()->stats().binlog_writes, 0u);
}

TEST_F(MysqlBaselineTest, CheckpointWritesPagesAndDoubleWrite) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v").ok());
  }
  cluster_.RunFor(Seconds(5));
  EXPECT_GT(cluster_.db()->stats().checkpoints, 0u);
  EXPECT_GT(cluster_.db()->stats().page_writes, 0u);
  EXPECT_GT(cluster_.db()->stats().dwb_writes, 0u);
  // Checkpoint advanced past the bootstrap position.
  EXPECT_GT(cluster_.db()->checkpoint_lsn(), 0u);
}

TEST_F(MysqlBaselineTest, BinlogArchivedToS3) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v").ok());
  }
  cluster_.RunFor(Seconds(1));
  EXPECT_GT(cluster_.s3()->num_objects(), 0u);
}

TEST_F(MysqlBaselineTest, RollbackRestoresValue) {
  ASSERT_TRUE(cluster_.PutSync(table_, "a", "original").ok());
  TxnId txn = cluster_.db()->Begin();
  bool done = false;
  cluster_.db()->Put(txn, table_, "a", "changed", [&](Status s) {
    EXPECT_TRUE(s.ok());
    cluster_.db()->Rollback(txn, [&](Status rs) {
      EXPECT_TRUE(rs.ok());
      done = true;
    });
  });
  cluster_.RunUntil([&] { return done; }, Seconds(30));
  EXPECT_EQ(*cluster_.GetSync(table_, "a"), "original");
}

TEST_F(MysqlBaselineTest, RecoveryReplaysWalFromCheckpoint) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v" + std::to_string(i)).ok());
  }
  cluster_.db()->Crash();
  ASSERT_TRUE(cluster_.RecoverSync().ok());
  for (int i = 0; i < 100; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
}

TEST_F(MysqlBaselineTest, RecoveryTimeGrowsWithLogSinceCheckpoint) {
  // Disable checkpointing-by-shortening: use a long interval so the log
  // accumulates.
  MysqlClusterOptions o = SmallMysql();
  o.mysql.checkpoint_interval = Minutes(60);

  auto run = [&](int writes) -> SimDuration {
    MysqlCluster c(o);
    EXPECT_TRUE(c.BootstrapSync().ok());
    EXPECT_TRUE(c.CreateTableSync("t").ok());
    PageId table = *c.TableAnchorSync("t");
    for (int i = 0; i < writes; ++i) {
      EXPECT_TRUE(c.PutSync(table, Key(i % 64), Key(i)).ok());
    }
    c.db()->Crash();
    SimTime before = c.loop()->now();
    EXPECT_TRUE(c.RecoverSync().ok());
    return c.loop()->now() - before;
  };
  SimDuration short_log = run(50);
  SimDuration long_log = run(500);
  EXPECT_GT(long_log, short_log * 3);
}

TEST_F(MysqlBaselineTest, BinlogReplicaAppliesAndLags) {
  MysqlClusterOptions o = SmallMysql();
  o.num_binlog_replicas = 1;
  MysqlCluster c(o);
  ASSERT_TRUE(c.BootstrapSync().ok());
  ASSERT_TRUE(c.CreateTableSync("t").ok());
  PageId table = *c.TableAnchorSync("t");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(c.PutSync(table, Key(i), "v" + std::to_string(i)).ok());
  }
  c.RunFor(Seconds(2));
  baseline::BinlogReplica* replica = c.binlog_replica(0);
  EXPECT_EQ(replica->stats().txns_applied, 50u);
  std::string v;
  ASSERT_TRUE(replica->Lookup(table, Key(7), &v));
  EXPECT_EQ(v, "v7");
  EXPECT_GT(replica->stats().lag_us.count(), 0u);
}

TEST_F(MysqlBaselineTest, DirtyEvictionStallsWhenPoolSaturated) {
  MysqlClusterOptions o = SmallMysql();
  o.mysql.engine.buffer_pool_pages = 8;
  o.mysql.checkpoint_interval = Minutes(60);  // nothing cleans pages
  MysqlCluster c(o);
  ASSERT_TRUE(c.BootstrapSync().ok());
  ASSERT_TRUE(c.CreateTableSync("t").ok());
  PageId table = *c.TableAnchorSync("t");
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(c.PutSync(table, Key(i), std::string(256, 'x')).ok()) << i;
  }
  EXPECT_GT(c.db()->stats().dirty_evict_stalls, 0u);
}

}  // namespace
}  // namespace aurora
