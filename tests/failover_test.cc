#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions FailoverCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 2048;
  o.storage_nodes_per_az = 3;
  o.num_replicas = 2;
  return o;
}

TEST(FailoverTest, PromotedReplicaServesAllCommittedData) {
  AuroraCluster cluster(FailoverCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v" + std::to_string(i)).ok());
  }
  sim::NodeId old_writer = cluster.writer_node();
  sim::NodeId promoted_node = cluster.replica(0)->node_id();

  ASSERT_TRUE(cluster.FailoverToReplicaSync(0).ok());
  EXPECT_EQ(cluster.writer_node(), promoted_node);
  EXPECT_NE(cluster.writer_node(), old_writer);
  EXPECT_EQ(cluster.num_replicas(), 1u);

  // No loss of data (the abstract's claim): every acked commit readable.
  for (int i = 0; i < 80; ++i) {
    auto got = cluster.GetSync(table, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
}

TEST(FailoverTest, NewWriterAcceptsWritesAndFeedsSurvivingReplica) {
  AuroraCluster cluster(FailoverCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ASSERT_TRUE(cluster.PutSync(table, "pre", "1").ok());
  cluster.RunFor(Millis(100));

  ASSERT_TRUE(cluster.FailoverToReplicaSync(0).ok());
  ASSERT_TRUE(cluster.PutSync(table, "post", "2").ok());
  EXPECT_EQ(*cluster.GetSync(table, "post"), "2");

  // The surviving replica follows the promoted writer's stream.
  cluster.RunFor(Millis(200));
  auto from_replica = cluster.ReplicaGetSync(0, table, "post");
  ASSERT_TRUE(from_replica.ok()) << from_replica.status().ToString();
  EXPECT_EQ(*from_replica, "2");
}

TEST(FailoverTest, FailoverIsFast) {
  AuroraCluster cluster(FailoverCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i % 40), Key(i)).ok());
  }
  SimTime t0 = cluster.loop()->now();
  ASSERT_TRUE(cluster.FailoverToReplicaSync(0).ok());
  // Same bound the paper gives for crash recovery: storage did all the
  // redo work already, so failover is a quorum round-trip, not a replay.
  EXPECT_LT(cluster.loop()->now() - t0, Seconds(10));
}

}  // namespace
}  // namespace aurora
