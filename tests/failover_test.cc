#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.h"
#include "sim/chaos.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions FailoverCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 2048;
  o.storage_nodes_per_az = 3;
  o.num_replicas = 2;
  return o;
}

TEST(FailoverTest, PromotedReplicaServesAllCommittedData) {
  AuroraCluster cluster(FailoverCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ChaosEngine chaos(&cluster);
  chaos.StartChecker();
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v" + std::to_string(i)).ok());
  }
  sim::NodeId old_writer = cluster.writer_node();
  sim::NodeId promoted_node = cluster.replica(0)->node_id();

  ASSERT_TRUE(cluster.FailoverToReplicaSync(0).ok());
  EXPECT_EQ(cluster.writer_node(), promoted_node);
  EXPECT_NE(cluster.writer_node(), old_writer);
  EXPECT_EQ(cluster.num_replicas(), 1u);

  // No loss of data (the abstract's claim): every acked commit readable.
  for (int i = 0; i < 80; ++i) {
    auto got = cluster.GetSync(table, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
  chaos.StopChecker();
  EXPECT_TRUE(chaos.checker()->violations().empty())
      << chaos.checker()->violations().front();
}

TEST(FailoverTest, NewWriterAcceptsWritesAndFeedsSurvivingReplica) {
  AuroraCluster cluster(FailoverCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ASSERT_TRUE(cluster.PutSync(table, "pre", "1").ok());
  cluster.RunFor(Millis(100));

  ASSERT_TRUE(cluster.FailoverToReplicaSync(0).ok());
  ASSERT_TRUE(cluster.PutSync(table, "post", "2").ok());
  EXPECT_EQ(*cluster.GetSync(table, "post"), "2");

  // The surviving replica follows the promoted writer's stream.
  cluster.RunFor(Millis(200));
  auto from_replica = cluster.ReplicaGetSync(0, table, "post");
  ASSERT_TRUE(from_replica.ok()) << from_replica.status().ToString();
  EXPECT_EQ(*from_replica, "2");
}

TEST(FailoverTest, FailoverIsFast) {
  AuroraCluster cluster(FailoverCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i % 40), Key(i)).ok());
  }
  SimTime t0 = cluster.loop()->now();
  ASSERT_TRUE(cluster.FailoverToReplicaSync(0).ok());
  // Same bound the paper gives for crash recovery: storage did all the
  // redo work already, so failover is a quorum round-trip, not a replay.
  EXPECT_LT(cluster.loop()->now() - t0, Seconds(10));
}

// Split-brain: the old writer is partitioned (NOT crashed) while a replica
// is promoted, then the partition heals and the zombie comes back swinging.
// End-to-end epoch fencing must (a) NAK the zombie's stale-epoch batches at
// storage (stale_epoch_rejects), (b) demote the zombie — it stops acking
// commits, fails the ones it was sitting on with kFenced, and surfaces
// fenced() — and (c) leave the volume without divergence: everything acked
// by either incarnation reads back correctly through the survivor.
TEST(FailoverTest, ZombieWriterIsFencedAfterPartitionHeals) {
  AuroraCluster cluster(FailoverCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ChaosEngine chaos(&cluster);
  chaos.StartChecker();

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v" + std::to_string(i)).ok());
  }

  // Cut the writer off from the world. It keeps running — a zombie that
  // does not know it is about to be superseded.
  sim::NodeId zombie_node = cluster.writer_node();
  Database* zombie = cluster.writer();
  chaos.IsolateAt(Millis(1), zombie_node);
  chaos.Run(Millis(10));

  // The zombie accepts a write locally (pages are cached; the batch just
  // cannot reach storage) and parks the commit waiting for a durability ack
  // that will never come.
  Status zombie_commit = Status::OK();
  bool zombie_commit_done = false;
  TxnId ztxn = zombie->Begin();
  zombie->Put(ztxn, table, "zombie-key", "from-the-grave", [&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    zombie->Commit(ztxn, [&](Status cs) {
      zombie_commit = cs;
      zombie_commit_done = true;
    });
  });
  chaos.Run(Millis(200));
  EXPECT_FALSE(zombie_commit_done);  // no quorum, no ack
  EXPECT_TRUE(zombie->is_open());

  // Promote a replica behind the zombie's back. Recovery bumps the volume
  // epoch and truncates the zombie's unacknowledged tail.
  ASSERT_TRUE(cluster.PromoteReplicaSync(0).ok());
  EXPECT_EQ(cluster.num_retired_writers(), 1u);
  ASSERT_TRUE(cluster.PutSync(table, "post-promotion", "new-writer").ok());

  // Heal the partition: the zombie's batch retries now reach storage, meet
  // the bumped epoch, and are NAKed with kFenced.
  chaos.HealAt(Millis(1), zombie_node);
  ASSERT_TRUE(
      cluster.RunUntil([&] { return zombie->fenced(); }, Seconds(30)));

  // (b) Graceful demotion: closed, fenced, the parked commit failed with
  // kFenced, and the engine is not endlessly retrying (its pipeline is
  // drained).
  EXPECT_TRUE(zombie->fenced());
  EXPECT_FALSE(zombie->is_open());
  ASSERT_TRUE(zombie_commit_done);
  EXPECT_TRUE(zombie_commit.IsFenced()) << zombie_commit.ToString();
  EXPECT_GE(zombie->stats().fenced_rejections, 1u);
  // New work is refused with the demotion status, not retried.
  Status late = Status::OK();
  zombie->Put(zombie->Begin(), table, "late", "write", [&](Status s) {
    late = s;
  });
  cluster.RunFor(Millis(50));
  EXPECT_TRUE(late.IsFenced()) << late.ToString();

  // (a) Storage counted at least one stale-epoch rejection.
  uint64_t stale_rejects = 0;
  for (size_t i = 0; i < cluster.num_storage_nodes(); ++i) {
    stale_rejects += cluster.storage_node(i)->stats().stale_epoch_rejects;
  }
  EXPECT_GE(stale_rejects, 1u);

  // (c) No divergence: the zombie's unacked write is gone (annulled), every
  // commit acked before the split and after the promotion reads back, and
  // the continuously checked invariants never tripped.
  chaos.Run(Seconds(2));
  EXPECT_TRUE(cluster.GetSync(table, "zombie-key").status().IsNotFound());
  EXPECT_EQ(*cluster.GetSync(table, "post-promotion"), "new-writer");
  for (int i = 0; i < 40; ++i) {
    auto got = cluster.GetSync(table, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
  chaos.StopChecker();
  EXPECT_TRUE(chaos.checker()->violations().empty())
      << chaos.checker()->violations().front();
}

}  // namespace
}  // namespace aurora
