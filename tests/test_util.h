#ifndef AURORA_TESTS_TEST_UTIL_H_
#define AURORA_TESTS_TEST_UTIL_H_

#include <map>
#include <memory>
#include <string>

#include "log/mtr.h"
#include "page/page.h"
#include "page/page_provider.h"

namespace aurora::testing {

/// Fully-resident in-memory page space: never returns Busy. Used to test the
/// page/B+-tree/applicator layers in isolation from the buffer pool and the
/// storage service.
class MemoryPageProvider : public PageProvider {
 public:
  explicit MemoryPageProvider(size_t page_size) : page_size_(page_size) {}

  Result<Page*> GetPage(PageId id) override {
    auto it = pages_.find(id);
    if (it == pages_.end()) return Status::NotFound("no such page");
    return it->second.get();
  }

  Result<Page*> AllocatePage(PageType type, uint8_t level,
                             MiniTransaction* mtr) override {
    PageId id;
    Page* raw;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      raw = pages_.at(id).get();
    } else {
      id = next_id_++;
      auto page = std::make_unique<Page>(page_size_);
      raw = page.get();
      pages_[id] = std::move(page);
    }
    LogRecord rec;
    rec.page_id = id;
    rec.op = RedoOp::kFormatPage;
    rec.payload = LogRecord::MakeFormatPayload(static_cast<uint8_t>(type),
                                               level);
    Status s = mtr->Apply(raw, std::move(rec));
    if (!s.ok()) return s;
    return raw;
  }

  Status FreePage(Page* page, MiniTransaction* mtr) override {
    LogRecord rec;
    rec.page_id = page->page_id();
    rec.op = RedoOp::kFormatPage;
    rec.payload = LogRecord::MakeFormatPayload(
        static_cast<uint8_t>(PageType::kFree), 0);
    Status s = mtr->Apply(page, std::move(rec));
    if (!s.ok()) return s;
    free_.push_back(page->page_id());
    return Status::OK();
  }

  PageId last_miss() const override { return kInvalidPage; }
  size_t page_size() const override { return page_size_; }

  size_t num_pages() const { return pages_.size(); }
  size_t num_free() const { return free_.size(); }
  const std::map<PageId, std::unique_ptr<Page>>& pages() const {
    return pages_;
  }

 private:
  size_t page_size_;
  PageId next_id_ = 1;
  std::map<PageId, std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_;
};

/// A WalSink that assigns LSNs locally (unit tests for the btree layer).
class LocalWalSink : public WalSink {
 public:
  Status CommitMtr(MiniTransaction* mtr) override {
    auto& records = mtr->records();
    const auto& pages = mtr->pages();
    for (size_t i = 0; i < records.size(); ++i) {
      records[i].lsn = next_lsn_;
      next_lsn_ += records[i].EncodedSize();
      records[i].prev_pg_lsn = last_lsn_;
      records[i].prev_vol_lsn = last_lsn_;
      last_lsn_ = records[i].lsn;
      pages[i]->set_page_lsn(records[i].lsn);
      all_records_.push_back(records[i]);
    }
    if (!records.empty()) {
      all_records_.back().flags |= kFlagCpl;
      mtr->set_commit_lsn(records.back().lsn);
    }
    return Status::OK();
  }

  const std::vector<LogRecord>& all_records() const { return all_records_; }

 private:
  Lsn next_lsn_ = 1;
  Lsn last_lsn_ = kInvalidLsn;
  std::vector<LogRecord> all_records_;
};

/// Key helper: zero-padded decimal so lexicographic order == numeric order.
inline std::string Key(uint64_t n) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%012llu", static_cast<unsigned long long>(n));
  return buf;
}

}  // namespace aurora::testing

#endif  // AURORA_TESTS_TEST_UTIL_H_
