#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "storage/segment.h"

namespace aurora {
namespace {

// Same chain shape as segment_test.cc: record i gets lsn base+i*10, backlink
// to its predecessor, targeting page (i % pages), format on first touch.
std::vector<LogRecord> MakeChain(int n, Lsn base = 100, int pages = 4) {
  std::vector<LogRecord> records;
  Lsn prev = kInvalidLsn;
  Lsn vprev = kInvalidLsn;
  for (int i = 0; i < n; ++i) {
    LogRecord r;
    r.lsn = base + static_cast<Lsn>(i) * 10;
    r.prev_pg_lsn = prev;
    r.prev_vol_lsn = vprev;
    r.page_id = static_cast<PageId>(i % pages);
    r.txn_id = 1;
    if (i % pages == i) {
      r.op = RedoOp::kFormatPage;
      r.payload = LogRecord::MakeFormatPayload(
          static_cast<uint8_t>(PageType::kBTreeLeaf), 0);
    } else {
      r.op = RedoOp::kInsert;
      r.payload = LogRecord::MakeKeyValuePayload(
          "k" + std::to_string(i), "v" + std::to_string(i));
    }
    if (i % 3 == 2) r.flags = kFlagCpl;
    prev = r.lsn;
    vprev = r.lsn;
    records.push_back(std::move(r));
  }
  return records;
}

// A cached segment and a cache-disabled control driven with identical
// inputs; the cache must be invisible in every observable way.
struct SegmentPair {
  Segment cached;
  Segment control;
  explicit SegmentPair(size_t page_size = 4096,
                       uint64_t budget = 64 * 4096)
      : cached(0, page_size), control(0, page_size) {
    cached.set_page_cache_budget(budget);
  }
  void Add(const std::vector<LogRecord>& records) {
    for (const auto& r : records) {
      cached.AddRecord(r);
      control.AddRecord(r);
    }
  }
  // Reads both segments at (page, rp) and requires identical outcomes.
  void ExpectSameRead(PageId page, Lsn rp) {
    Result<Page> a = cached.GetPageAsOf(page, rp);
    Result<Page> b = control.GetPageAsOf(page, rp);
    ASSERT_EQ(a.ok(), b.ok()) << "page " << page << " @" << rp << ": "
                              << a.status().ToString() << " vs "
                              << b.status().ToString();
    if (a.ok()) {
      EXPECT_EQ(a->raw(), b->raw()) << "page " << page << " @" << rp;
    } else {
      EXPECT_EQ(a.status().code(), b.status().code())
          << "page " << page << " @" << rp;
    }
  }
};

TEST(PageCacheTest, FullHitServesIdenticalBytesWithoutReplay) {
  SegmentPair pair;
  pair.Add(MakeChain(12));
  const Lsn rp = pair.control.scl();

  pair.ExpectSameRead(0, rp);
  EXPECT_EQ(pair.cached.page_cache_stats().misses, 1u);
  EXPECT_EQ(pair.cached.page_cache_stats().hits, 0u);

  pair.ExpectSameRead(0, rp);
  EXPECT_EQ(pair.cached.page_cache_stats().hits, 1u);
  EXPECT_EQ(pair.cached.page_cache_stats().misses, 1u);
  // The control's stats stay untouched (its cache is disabled).
  EXPECT_EQ(pair.control.page_cache_stats().misses, 0u);
  EXPECT_EQ(pair.control.page_cache_bytes(), 0u);
}

TEST(PageCacheTest, PartialHitReplaysOnlyTheSuffix) {
  SegmentPair pair;
  auto records = MakeChain(16);
  pair.Add(records);
  // Build the entry at a mid-chain read point, then read at the tip: only
  // the records in between should be replayed on top of the cached image.
  pair.ExpectSameRead(0, records[7].lsn);
  EXPECT_EQ(pair.cached.page_cache_stats().misses, 1u);
  pair.ExpectSameRead(0, pair.control.scl());
  EXPECT_EQ(pair.cached.page_cache_stats().partial_hits, 1u);
  // The partial hit re-tagged the entry at the tip: reading there again is
  // now a full hit.
  pair.ExpectSameRead(0, pair.control.scl());
  EXPECT_EQ(pair.cached.page_cache_stats().hits, 1u);
}

TEST(PageCacheTest, HistoricalReadBypassesWithoutDisplacingNewerEntry) {
  SegmentPair pair;
  auto records = MakeChain(16);
  pair.Add(records);
  const Lsn tip = pair.control.scl();
  pair.ExpectSameRead(0, tip);  // miss, entry built at tip
  pair.ExpectSameRead(0, records[4].lsn);  // historical: bypass
  EXPECT_EQ(pair.cached.page_cache_stats().misses, 2u);
  // The newer entry survived the historical read.
  pair.ExpectSameRead(0, tip);
  EXPECT_EQ(pair.cached.page_cache_stats().hits, 1u);
}

TEST(PageCacheTest, LruEvictionRespectsByteBudget) {
  // Budget for exactly two cached pages.
  SegmentPair pair(4096, 2 * 4096);
  pair.Add(MakeChain(16));
  const Lsn tip = pair.control.scl();
  pair.ExpectSameRead(0, tip);
  pair.ExpectSameRead(1, tip);
  EXPECT_EQ(pair.cached.page_cache_bytes(), 2 * 4096u);
  pair.ExpectSameRead(2, tip);  // evicts page 0 (least recently used)
  EXPECT_EQ(pair.cached.page_cache_bytes(), 2 * 4096u);
  EXPECT_EQ(pair.cached.page_cache_stats().evictions, 1u);
  // Page 0 is a miss again; page 2 is a hit.
  pair.ExpectSameRead(2, tip);
  EXPECT_EQ(pair.cached.page_cache_stats().hits, 1u);
  pair.ExpectSameRead(0, tip);
  EXPECT_EQ(pair.cached.page_cache_stats().misses, 4u);
}

TEST(PageCacheTest, BudgetBelowPageSizeDisablesCaching) {
  SegmentPair pair(4096, 4095);
  pair.Add(MakeChain(8));
  pair.ExpectSameRead(0, pair.control.scl());
  pair.ExpectSameRead(0, pair.control.scl());
  EXPECT_EQ(pair.cached.page_cache_stats().hits, 0u);
  EXPECT_EQ(pair.cached.page_cache_stats().misses, 0u);
  EXPECT_EQ(pair.cached.page_cache_bytes(), 0u);
}

TEST(PageCacheTest, ShrinkingBudgetEvictsImmediately) {
  SegmentPair pair;
  pair.Add(MakeChain(16));
  const Lsn tip = pair.control.scl();
  for (PageId p = 0; p < 4; ++p) pair.ExpectSameRead(p, tip);
  EXPECT_EQ(pair.cached.page_cache_bytes(), 4 * 4096u);
  pair.cached.set_page_cache_budget(2 * 4096);
  EXPECT_EQ(pair.cached.page_cache_bytes(), 2 * 4096u);
  pair.cached.set_page_cache_budget(0);
  EXPECT_EQ(pair.cached.page_cache_bytes(), 0u);
}

TEST(PageCacheTest, LateRecordAtOrBelowBuildPointInvalidates) {
  // Serve a read point beyond the chain tip via a completeness snapshot,
  // then let a new record arrive below that build point: the cached image
  // was built without it and must be dropped, not partially replayed.
  SegmentPair pair;
  auto records = MakeChain(8);
  for (int i = 0; i < 4; ++i) {
    pair.cached.AddRecord(records[i]);
    pair.control.AddRecord(records[i]);
  }
  const Lsn snapshot_vdl = records[7].lsn + 100;
  pair.cached.SetCompletenessSnapshot(snapshot_vdl, pair.control.scl());
  pair.control.SetCompletenessSnapshot(snapshot_vdl, pair.control.scl());

  pair.ExpectSameRead(0, snapshot_vdl);  // entry built at snapshot_vdl
  EXPECT_EQ(pair.cached.page_cache_stats().misses, 1u);

  // records[4] targets page 0 and has lsn <= the build point.
  ASSERT_EQ(records[4].page_id, 0u);
  ASSERT_LE(records[4].lsn, snapshot_vdl);
  pair.cached.AddRecord(records[4]);
  pair.control.AddRecord(records[4]);

  pair.ExpectSameRead(0, pair.control.scl());
  EXPECT_EQ(pair.cached.page_cache_stats().misses, 2u);  // entry was dropped
  EXPECT_EQ(pair.cached.page_cache_stats().hits, 0u);
}

TEST(PageCacheTest, TruncationDropsEntriesBuiltAboveTheCut) {
  SegmentPair pair;
  auto records = MakeChain(16);
  pair.Add(records);
  const Lsn tip = pair.control.scl();
  pair.ExpectSameRead(0, tip);  // entry built at tip
  const Lsn cut = records[7].lsn;
  ASSERT_TRUE(pair.cached.Truncate(cut, 1).ok());
  ASSERT_TRUE(pair.control.Truncate(cut, 1).ok());
  // A read at the (clamped) scl must rebuild — the old image contained
  // truncated records.
  pair.ExpectSameRead(0, pair.control.scl());
  EXPECT_EQ(pair.cached.page_cache_stats().misses, 2u);
  EXPECT_EQ(pair.cached.page_cache_stats().hits, 0u);
}

TEST(PageCacheTest, GcDropsStrandedEntriesButKeepsCurrentOnes) {
  SegmentPair pair;
  auto records = MakeChain(16);
  pair.Add(records);
  const Lsn tip = pair.control.scl();
  // An entry built early in the chain (missing page 0's later records)...
  pair.ExpectSameRead(0, records[5].lsn);
  // ...and one built at the tip (reflecting everything for page 3).
  pair.ExpectSameRead(3, tip);
  // Materialize and GC everything up to records[11]: page 0's records in
  // (records[5], records[11]] vanish from the hot log, so the early entry
  // can't be patched by partial replay any more and must be dropped. Page
  // 3's tip entry already reflects every collected record and survives.
  const Lsn floor = records[11].lsn;
  for (Segment* seg : {&pair.cached, &pair.control}) {
    seg->SetVdlHint(floor);
    seg->SetPgmrpl(floor);
    seg->CoalesceStep(1000);
    seg->GarbageCollect();
  }
  pair.ExpectSameRead(0, pair.control.scl());
  pair.ExpectSameRead(0, floor);
  EXPECT_EQ(pair.cached.page_cache_stats().partial_hits, 0u);
  // The tip entry for page 3 still serves.
  const uint64_t hits_before = pair.cached.page_cache_stats().hits;
  pair.ExpectSameRead(3, tip);
  EXPECT_EQ(pair.cached.page_cache_stats().hits, hits_before + 1);
}

TEST(PageCacheTest, DropForRepairAndRestoreInvalidate) {
  SegmentPair pair;
  auto records = MakeChain(16);
  pair.Add(records);
  const Lsn limit = records[11].lsn;
  for (Segment* seg : {&pair.cached, &pair.control}) {
    seg->SetVdlHint(limit);
    seg->SetPgmrpl(limit);
    seg->CoalesceStep(1000);
  }
  const Lsn tip = pair.control.scl();
  pair.ExpectSameRead(0, tip);  // cache it
  pair.cached.DropPageForRepair(0);
  pair.control.DropPageForRepair(0);
  pair.ExpectSameRead(0, tip);  // rebuilt from log, not served stale

  // Restore a healthy copy (as scrub repair does) and re-read.
  Result<Page> healthy = pair.control.GetPageAsOf(0, pair.control.applied_lsn());
  ASSERT_TRUE(healthy.ok());
  pair.ExpectSameRead(0, tip);  // cache it again
  pair.cached.RestoreBasePage(0, *healthy);
  pair.control.RestoreBasePage(0, *healthy);
  pair.ExpectSameRead(0, tip);
  pair.ExpectSameRead(0, pair.control.applied_lsn());
}

// Property test: a randomized schedule of writes (with gaps), watermark
// advances, coalescing, GC, truncation, and page repair must produce
// byte-identical pages and identical error statuses with the cache on vs.
// off at every probed (page, read_point).
class PageCacheEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PageCacheEquivalenceTest,
                         ::testing::Values(1, 17, 4242, 987654));

TEST_P(PageCacheEquivalenceTest, RandomScheduleMatchesCacheOffControl) {
  constexpr int kPages = 6;
  constexpr int kSteps = 400;
  Random rng(GetParam());

  // Small budget so eviction churns; the control has caching disabled.
  SegmentPair pair(2048, 3 * 2048);

  Lsn next_lsn = 100;
  Lsn chain_tail = kInvalidLsn;
  Epoch epoch = 0;
  std::vector<Lsn> delivered;
  std::vector<LogRecord> pending;          // generated, not yet delivered
  Lsn format_lsn[kPages] = {};             // 0 = page not (re)formatted

  auto generate = [&] {
    LogRecord r;
    r.lsn = next_lsn;
    next_lsn += 10;
    r.prev_pg_lsn = chain_tail;
    r.prev_vol_lsn = chain_tail;
    chain_tail = r.lsn;
    r.page_id = static_cast<PageId>(rng.Uniform(kPages));
    r.txn_id = 1;
    if (format_lsn[r.page_id] == 0) {
      r.op = RedoOp::kFormatPage;
      r.payload = LogRecord::MakeFormatPayload(
          static_cast<uint8_t>(PageType::kBTreeLeaf), 0);
      format_lsn[r.page_id] = r.lsn;
    } else {
      // Keys are unique per record (the writer emits kUpdate, never a
      // duplicate kInsert, for an existing key).
      r.op = RedoOp::kInsert;
      r.payload = LogRecord::MakeKeyValuePayload(
          "k" + std::to_string(r.lsn), "v" + std::to_string(r.lsn));
    }
    if (rng.Uniform(3) == 0) r.flags = kFlagCpl;
    pending.push_back(std::move(r));
  };

  auto deliver_random_pending = [&] {
    if (pending.empty()) return;
    size_t i = rng.Uniform(pending.size());
    LogRecord r = pending[i];
    pending.erase(pending.begin() + static_cast<long>(i));
    if (pair.cached.AddRecord(r)) delivered.push_back(r.lsn);
    pair.control.AddRecord(r);
  };

  auto random_delivered_lsn = [&]() -> Lsn {
    if (delivered.empty()) return 100;
    return delivered[rng.Uniform(delivered.size())];
  };

  for (int step = 0; step < kSteps; ++step) {
    uint64_t op = rng.Uniform(100);
    if (op < 35) {
      generate();
      deliver_random_pending();
    } else if (op < 55) {
      deliver_random_pending();
    } else if (op < 65) {
      Lsn hint = random_delivered_lsn();
      pair.cached.SetVdlHint(hint);
      pair.control.SetVdlHint(hint);
    } else if (op < 72) {
      Lsn hint = random_delivered_lsn();
      pair.cached.SetPgmrpl(hint);
      pair.control.SetPgmrpl(hint);
    } else if (op < 82) {
      size_t n = rng.Uniform(20) + 1;
      size_t a = pair.cached.CoalesceStep(n);
      size_t b = pair.control.CoalesceStep(n);
      ASSERT_EQ(a, b);
    } else if (op < 88) {
      ASSERT_EQ(pair.cached.GarbageCollect(), pair.control.GarbageCollect());
    } else if (op < 93) {
      // Truncate at or above the applied floor (the segment CHECKs that).
      Lsn above = std::max(pair.control.applied_lsn(),
                           random_delivered_lsn());
      ++epoch;
      Status sa = pair.cached.Truncate(above, epoch);
      Status sb = pair.control.Truncate(above, epoch);
      ASSERT_EQ(sa.code(), sb.code());
      // Annulled: pending records above the cut and format knowledge for
      // pages whose format record was removed.
      std::vector<LogRecord> kept;
      for (auto& r : pending) {
        if (r.lsn <= above) kept.push_back(std::move(r));
      }
      pending.swap(kept);
      std::vector<Lsn> kept_lsns;
      for (Lsn l : delivered) {
        if (l <= above) kept_lsns.push_back(l);
      }
      delivered.swap(kept_lsns);
      for (int p = 0; p < kPages; ++p) {
        if (format_lsn[p] > above) format_lsn[p] = 0;
      }
      if (chain_tail > above) chain_tail = pair.control.scl();
    } else if (op < 97) {
      PageId page = static_cast<PageId>(rng.Uniform(kPages));
      pair.cached.DropPageForRepair(page);
      pair.control.DropPageForRepair(page);
    } else {
      // Peer repair: install the control's reconstruction into both.
      PageId page = static_cast<PageId>(rng.Uniform(kPages));
      Result<Page> healthy =
          pair.control.GetPageAsOf(page, pair.control.applied_lsn());
      if (healthy.ok()) {
        pair.cached.RestoreBasePage(page, *healthy);
        pair.control.RestoreBasePage(page, *healthy);
      }
    }

    // Probe: every page at a few read points spanning complete, historical,
    // stale, and incomplete cases.
    const Lsn probes[] = {pair.control.scl(), pair.control.applied_lsn(),
                          random_delivered_lsn(),
                          pair.control.scl() + 1 + rng.Uniform(50)};
    for (PageId page = 0; page < kPages; ++page) {
      for (Lsn rp : probes) {
        if (rp == kInvalidLsn) continue;
        pair.ExpectSameRead(page, rp);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    ASSERT_LE(pair.cached.page_cache_bytes(),
              pair.cached.page_cache_budget());
  }

  // The schedule must actually have exercised the cache.
  EXPECT_GT(pair.cached.page_cache_stats().hits, 0u);
  EXPECT_GT(pair.cached.page_cache_stats().misses, 0u);
}

}  // namespace
}  // namespace aurora
