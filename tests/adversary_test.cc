#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "harness/cluster.h"
#include "log/log_record.h"
#include "sim/chaos.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "storage/segment.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

// ---------------------------------------------------------------------------
// Raw-fabric adversary behaviour (two nodes, hand-registered handlers).
// ---------------------------------------------------------------------------

struct RawFabric {
  sim::EventLoop loop;
  sim::Topology topology{1};
  sim::NodeId a, b;
  sim::Network net;
  std::vector<sim::Message> at_a, at_b;
  uint64_t rejected_at_b = 0;

  explicit RawFabric(uint64_t seed)
      : a(topology.AddNode(0, "a")),
        b(topology.AddNode(0, "b")),
        net(&loop, &topology, sim::FabricOptions{}, Random(seed)) {
    net.Register(a, [this](const sim::Message& m) {
      if (net.VerifyFrame(m)) at_a.push_back(m);
    });
    net.Register(b, [this](const sim::Message& m) {
      if (net.VerifyFrame(m)) {
        at_b.push_back(m);
      } else {
        ++rejected_at_b;
      }
    });
  }
};

TEST(AdversaryFabricTest, OneWayPartitionBlocksExactlyOneDirection) {
  RawFabric f(1);
  f.net.SetPartitionedOneWay(f.a, f.b, true);
  for (int i = 0; i < 10; ++i) {
    f.net.Send(f.a, f.b, 1, "a-to-b");
    f.net.Send(f.b, f.a, 1, "b-to-a");
  }
  f.loop.Run();
  EXPECT_TRUE(f.at_b.empty());          // forward direction is dead
  EXPECT_EQ(f.at_a.size(), 10u);        // replies still flow
  EXPECT_EQ(f.net.adversary().oneway_blocked, 10u);

  f.net.SetPartitionedOneWay(f.a, f.b, false);
  f.net.Send(f.a, f.b, 1, "healed");
  f.loop.Run();
  ASSERT_EQ(f.at_b.size(), 1u);
  EXPECT_EQ(f.at_b[0].payload().ToString(), "healed");
}

TEST(AdversaryFabricTest, DuplicationDeliversTwiceAndIsCounted) {
  RawFabric f(2);
  f.net.set_duplicate_probability(1.0);
  for (int i = 0; i < 20; ++i) f.net.Send(f.a, f.b, 1, "dup-me");
  f.loop.Run();
  EXPECT_EQ(f.at_b.size(), 40u);
  EXPECT_EQ(f.net.adversary().duplicates_injected, 20u);
}

TEST(AdversaryFabricTest, CorruptedFramesAreDetectedAndDropped) {
  RawFabric f(3);
  f.net.set_corrupt_probability(1.0);
  for (int i = 0; i < 25; ++i) f.net.Send(f.a, f.b, 1, "payload-" + Key(i));
  f.loop.Run();
  // Every frame had one bit flipped in transit; the frame CRC (stamped
  // before corruption) catches all of them at the receiver.
  EXPECT_TRUE(f.at_b.empty());
  EXPECT_EQ(f.rejected_at_b, 25u);
  EXPECT_EQ(f.net.adversary().corrupted_injected, 25u);
  EXPECT_EQ(f.net.adversary().corrupted_dropped, 25u);
}

TEST(AdversaryFabricTest, ReorderWindowScramblesButLosesNothing) {
  RawFabric f(4);
  f.net.set_reorder_window(Millis(5));
  for (int i = 0; i < 50; ++i) f.net.Send(f.a, f.b, 1, Key(i));
  f.loop.Run();
  ASSERT_EQ(f.at_b.size(), 50u);  // reordering never loses frames
  EXPECT_GT(f.net.adversary().reordered, 0u);
  std::vector<std::string> order;
  for (const auto& m : f.at_b) order.push_back(m.payload().ToString());
  std::vector<std::string> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(order, sorted);  // ...but really does scramble arrival order
}

TEST(AdversaryFabricTest, AdversaryOffDrawsNoRandomness) {
  // With every knob at zero the fabric must draw no adversary randomness,
  // so two networks — one never touched, one with knobs set and reset —
  // deliver identical schedules. This pins the determinism contract that
  // lets the chaos suite compare adversary-off runs against the seed.
  auto run = [](bool toggle) {
    RawFabric f(5);
    if (toggle) {
      f.net.set_duplicate_probability(0.5);
      f.net.set_reorder_window(Millis(3));
      f.net.set_corrupt_probability(0.5);
      f.net.set_duplicate_probability(0.0);
      f.net.set_reorder_window(0);
      f.net.set_corrupt_probability(0.0);
    }
    std::vector<SimTime> arrivals;
    f.net.Register(f.b, [&f, &arrivals](const sim::Message& m) {
      if (f.net.VerifyFrame(m)) arrivals.push_back(f.loop.now());
    });
    for (int i = 0; i < 30; ++i) f.net.Send(f.a, f.b, 1, Key(i));
    f.loop.Run();
    return arrivals;
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Segment delivery-schedule equivalence (the property the whole receiver
// hardening rests on): writer batches and gossip pushes both funnel into
// Segment::AddRecord, so a segment that saw every record — in any order,
// any number of times — must end up byte-identical to one that saw the
// clean schedule exactly once, in order.
// ---------------------------------------------------------------------------

class SegmentScheduleTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentScheduleTest,
                         ::testing::Values(11, 222, 3333, 44444));

TEST_P(SegmentScheduleTest, ShuffledDuplicatedDeliveryIsByteIdentical) {
  Random rng(GetParam());

  // A well-formed per-PG record chain: increasing LSNs, correct backlinks,
  // a CPL every few records, inserts spread over a handful of pages.
  std::vector<LogRecord> records;
  Lsn lsn = 100;
  Lsn prev = kInvalidLsn;
  for (int i = 0; i < 200; ++i) {
    LogRecord rec;
    rec.lsn = lsn;
    rec.prev_pg_lsn = prev;
    rec.prev_vol_lsn = prev;
    rec.page_id = static_cast<PageId>(1 + (i % 5));
    rec.txn_id = 1;
    rec.op = RedoOp::kInsert;
    rec.payload = LogRecord::MakeKeyValuePayload(
        Key(i), "value-" + std::to_string(i));
    if (i % 4 == 3) rec.flags |= kFlagCpl;
    prev = lsn;
    lsn += rec.EncodedSize();
    records.push_back(std::move(rec));
  }
  const Lsn tail = prev;

  auto finalize = [&](Segment* seg) {
    seg->SetVdlHint(tail);
    seg->SetPgmrpl(records.front().lsn);
    while (seg->CoalesceStep(64) > 0) {
    }
  };

  // Clean schedule: in order, once.
  Segment clean(0, 4096);
  for (const LogRecord& r : records) clean.AddRecord(r);
  finalize(&clean);
  EXPECT_EQ(clean.scl(), tail);

  // Adversarial schedule: every record delivered 1-3 times, the whole
  // multiset shuffled (unbounded reorder — strictly worse than the
  // fabric's bounded window).
  std::vector<const LogRecord*> schedule;
  for (const LogRecord& r : records) {
    const uint64_t copies = 1 + rng.Uniform(3);
    for (uint64_t c = 0; c < copies; ++c) schedule.push_back(&r);
  }
  for (size_t i = schedule.size(); i > 1; --i) {
    std::swap(schedule[i - 1], schedule[rng.Uniform(i)]);
  }

  Segment adversarial(0, 4096);
  size_t accepted = 0;
  for (const LogRecord* r : schedule) {
    if (adversarial.AddRecord(*r)) ++accepted;
  }
  EXPECT_EQ(accepted, records.size());  // duplicates ignored, all originals in
  finalize(&adversarial);

  std::string clean_state, adversarial_state;
  clean.SerializeTo(&clean_state);
  adversarial.SerializeTo(&adversarial_state);
  EXPECT_EQ(clean_state, adversarial_state);
}

// ---------------------------------------------------------------------------
// End-to-end: the full cluster under heavy duplication keeps storage
// idempotent (batches deduped by (epoch, batch_seq)), and under corruption
// never lets a flipped bit reach a page.
// ---------------------------------------------------------------------------

TEST(AdversaryClusterTest, DuplicatedBatchesAreDedupedNotReapplied) {
  ClusterOptions o;
  o.seed = 77;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  ChaosEngine chaos(&cluster);
  AdversaryConfig cfg;
  cfg.duplicate_probability = 0.5;
  cfg.reorder_window = Millis(2);
  chaos.SetAdversary(cfg);

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v" + std::to_string(i)).ok());
  }
  chaos.Run(Millis(500));
  chaos.ClearAdversary();

  uint64_t duplicate_batches = 0;
  for (size_t i = 0; i < cluster.num_storage_nodes(); ++i) {
    duplicate_batches += cluster.storage_node(i)->stats().duplicate_batches;
  }
  EXPECT_GT(duplicate_batches, 0u);

  for (int i = 0; i < 40; ++i) {
    auto got = cluster.GetSync(table, Key(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
}

TEST(AdversaryClusterTest, CorruptionNeverCrashesNodesOrMutatesData) {
  ClusterOptions o;
  o.seed = 88;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.num_replicas = 1;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  ChaosEngine chaos(&cluster);
  AdversaryConfig cfg;
  cfg.corrupt_probability = 0.01;  // aggressive: ~1 in 100 frames bit-flipped
  chaos.SetAdversary(cfg);
  chaos.StartChecker();

  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v" + std::to_string(i)).ok());
  }
  chaos.Run(Millis(500));
  chaos.ClearAdversary();

  const sim::AdversaryStats& adv = cluster.network()->adversary();
  EXPECT_GT(adv.corrupted_injected, 0u);
  EXPECT_GT(adv.corrupted_dropped, 0u);
  // Receivers counted their rejections (writer + storage + replica split).
  uint64_t receiver_drops = cluster.writer()->stats().corrupt_frames_dropped;
  for (size_t i = 0; i < cluster.num_storage_nodes(); ++i) {
    receiver_drops +=
        cluster.storage_node(i)->stats().corrupt_frames_dropped;
  }
  for (size_t i = 0; i < cluster.num_replicas(); ++i) {
    receiver_drops += cluster.replica(i)->stats().corrupt_frames_dropped;
  }
  EXPECT_EQ(receiver_drops, adv.corrupted_dropped);

  // Not one flipped bit reached a page: everything reads back unmodified.
  for (int i = 0; i < 60; ++i) {
    auto got = cluster.GetSync(table, Key(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
  chaos.StopChecker();
  EXPECT_TRUE(chaos.checker()->violations().empty())
      << chaos.checker()->violations().front();
}

}  // namespace
}  // namespace aurora
