#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions RecoveryCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 2048;
  o.storage_nodes_per_az = 3;
  return o;
}

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : cluster_(RecoveryCluster()) {
    EXPECT_TRUE(cluster_.BootstrapSync().ok());
    EXPECT_TRUE(cluster_.CreateTableSync("t").ok());
    table_ = *cluster_.TableAnchorSync("t");
  }

  AuroraCluster cluster_;
  PageId table_ = kInvalidPage;
};

TEST_F(RecoveryTest, CommittedDataSurvivesWriterCrash) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v" + std::to_string(i)).ok());
  }
  cluster_.CrashWriter();
  ASSERT_TRUE(cluster_.RecoverSync().ok());
  for (int i = 0; i < 100; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
}

TEST_F(RecoveryTest, RecoveryIsFastRegardlessOfHistoryLength) {
  // §4.3: no checkpoint replay — recovery cost does not scale with the
  // amount of redo written since "the last checkpoint" (there is none).
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i % 50), Key(i)).ok());
  }
  cluster_.CrashWriter();
  SimTime before = cluster_.loop()->now();
  ASSERT_TRUE(cluster_.RecoverSync().ok());
  SimTime recovery_time = cluster_.loop()->now() - before;
  // Well under the paper's 10-second bound.
  EXPECT_LT(recovery_time, Seconds(10));
}

TEST_F(RecoveryTest, UncommittedTransactionRolledBackAfterCrash) {
  ASSERT_TRUE(cluster_.PutSync(table_, "row", "committed-value").ok());

  // Start a transaction, modify the row, ensure the redo reaches storage,
  // but never commit.
  TxnId txn = cluster_.writer()->Begin();
  bool put_done = false;
  cluster_.writer()->Put(txn, table_, "row", "dirty-value", [&](Status s) {
    EXPECT_TRUE(s.ok());
    put_done = true;
  });
  cluster_.RunUntil([&] { return put_done; }, Seconds(10));
  cluster_.RunFor(Millis(200));  // let the batch reach quorum

  cluster_.CrashWriter();
  bool undo_done = false;
  cluster_.writer()->set_undo_complete_callback([&] { undo_done = true; });
  ASSERT_TRUE(cluster_.RecoverSync().ok());
  ASSERT_TRUE(cluster_.RunUntil([&] { return undo_done; }, Seconds(60)));

  auto got = cluster_.GetSync(table_, "row");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "committed-value");
}

TEST_F(RecoveryTest, InsertByInFlightTxnDisappearsAfterCrash) {
  TxnId txn = cluster_.writer()->Begin();
  bool put_done = false;
  cluster_.writer()->Put(txn, table_, "ghost", "should-vanish", [&](Status s) {
    EXPECT_TRUE(s.ok());
    put_done = true;
  });
  cluster_.RunUntil([&] { return put_done; }, Seconds(10));
  cluster_.RunFor(Millis(200));

  cluster_.CrashWriter();
  bool undo_done = false;
  cluster_.writer()->set_undo_complete_callback([&] { undo_done = true; });
  ASSERT_TRUE(cluster_.RecoverSync().ok());
  ASSERT_TRUE(cluster_.RunUntil([&] { return undo_done; }, Seconds(60)));

  EXPECT_TRUE(cluster_.GetSync(table_, "ghost").status().IsNotFound());
}

TEST_F(RecoveryTest, VolumeEpochAdvancesOnRecovery) {
  Epoch before = cluster_.control_plane()->volume_epoch();
  cluster_.CrashWriter();
  ASSERT_TRUE(cluster_.RecoverSync().ok());
  EXPECT_GT(cluster_.control_plane()->volume_epoch(), before);
  EXPECT_EQ(cluster_.writer()->volume_epoch(),
            cluster_.control_plane()->volume_epoch());
}

TEST_F(RecoveryTest, RepeatedCrashRecoveryCycles) {
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(
          cluster_.PutSync(table_, Key(round * 100 + i), Key(round)).ok())
          << "round " << round << " i " << i;
    }
    cluster_.CrashWriter();
    ASSERT_TRUE(cluster_.RecoverSync().ok()) << "round " << round;
  }
  // All four rounds' writes visible.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 30; ++i) {
      auto got = cluster_.GetSync(table_, Key(round * 100 + i));
      ASSERT_TRUE(got.ok()) << round << "/" << i;
      EXPECT_EQ(*got, Key(round));
    }
  }
}

TEST_F(RecoveryTest, WritesContinueAfterRecovery) {
  ASSERT_TRUE(cluster_.PutSync(table_, "pre", "1").ok());
  cluster_.CrashWriter();
  ASSERT_TRUE(cluster_.RecoverSync().ok());
  ASSERT_TRUE(cluster_.PutSync(table_, "post", "2").ok());
  EXPECT_EQ(*cluster_.GetSync(table_, "pre"), "1");
  EXPECT_EQ(*cluster_.GetSync(table_, "post"), "2");
  // New LSNs must be allocated above the annulled range.
  EXPECT_GT(cluster_.writer()->next_lsn(),
            cluster_.writer()->vdl());
}

TEST_F(RecoveryTest, RecoveryToleratesTwoStorageNodesDown) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster_.PutSync(table_, Key(i), "v").ok());
  }
  // Take down two storage hosts (any two nodes: within read-quorum
  // tolerance), then crash and recover.
  cluster_.failure_injector()->CrashNode(cluster_.storage_node(0)->id(), 0);
  cluster_.failure_injector()->CrashNode(cluster_.storage_node(4)->id(), 0);
  cluster_.CrashWriter();
  ASSERT_TRUE(cluster_.RecoverSync().ok());
  for (int i = 0; i < 50; ++i) {
    auto got = cluster_.GetSync(table_, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
  }
}

}  // namespace
}  // namespace aurora
