#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/cluster.h"
#include "sim/chaos.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

// The adversary profile the chaos suite runs under (the acceptance bar for
// the fabric-hardening work): duplicated, reordered, corrupted and dropped
// frames all at once.
AdversaryConfig ChaosAdversary() {
  AdversaryConfig cfg;
  cfg.drop_probability = 0.02;
  cfg.duplicate_probability = 0.05;
  cfg.reorder_window = Millis(2);
  cfg.corrupt_probability = 0.001;
  return cfg;
}

// Property: under randomized chaos — background node crashes, an AZ outage,
// a slow node, a writer crash — composed with the full fabric adversary
// (duplication, bounded reorder, bit-flip corruption, loss), every
// acknowledged commit remains readable afterwards and no continuously
// checked invariant is ever violated. This is the paper's durability
// contract ("data, once written, can be read", §2) executed end-to-end,
// parameterized over seeds.
class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 7, 42, 1337, 20260707));

TEST_P(ChaosTest, AckedCommitsSurviveEverything) {
  ClusterOptions o;
  o.seed = GetParam();
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 2048;
  o.storage_nodes_per_az = 4;
  o.repair.detection_threshold = Seconds(2);
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  Random rng(GetParam() * 31 + 1);
  ChaosEngine chaos(&cluster);
  chaos.SetAdversary(ChaosAdversary());
  chaos.StartChecker();
  cluster.failure_injector()->EnableBackgroundNoise(Minutes(2), Seconds(1));

  // Enough rounds that the 0.001 corruption rate is expected to fire well
  // over 10 times per run — the corrupted_injected > 0 assertion below
  // would otherwise be flaky at the unluckier seeds (~2.5k frames/6 rounds).
  std::map<std::string, std::string> acked;
  int attempts = 0;
  for (int round = 0; round < 24; ++round) {
    // One targeted disruption per round, scripted on the chaos timeline so
    // it lands while the round's writes are in flight.
    switch (round % 3) {
      case 0:
        chaos.FailAzAt(Millis(5), static_cast<sim::AzId>(rng.Uniform(3)),
                       Seconds(2));
        break;
      case 1:
        chaos.SlowNodeAt(
            Millis(5),
            cluster.storage_node(rng.Uniform(cluster.num_storage_nodes()))
                ->id(),
            50.0, Seconds(2));
        break;
      case 2:
        chaos.CrashStorageAt(Millis(5),
                             rng.Uniform(cluster.num_storage_nodes()),
                             Seconds(3));
        break;
    }
    for (int i = 0; i < 25; ++i) {
      std::string key = Key(rng.Uniform(200));
      std::string value = "r" + std::to_string(round) + "-" +
                          std::to_string(i);
      ++attempts;
      if (cluster.PutSync(table, key, value).ok()) {
        acked[key] = value;
      }
    }
    chaos.Run(Millis(500));
  }
  cluster.failure_injector()->DisableBackgroundNoise();

  // The adversary must actually have attacked the fabric, and corrupted
  // frames that reached a receiver must have been caught by the frame
  // checksum.
  const sim::AdversaryStats& adv = cluster.network()->adversary();
  EXPECT_GT(adv.duplicates_injected, 0u) << "seed " << GetParam();
  EXPECT_GT(adv.reordered, 0u) << "seed " << GetParam();
  EXPECT_GT(adv.corrupted_injected, 0u) << "seed " << GetParam();
  // Note: dropped can exceed injected — a corrupted frame that is then
  // duplicated is verified (and rejected) once per delivery.
  EXPECT_GT(adv.corrupted_dropped, 0u) << "seed " << GetParam();
  chaos.ClearAdversary();

  // The vast majority of writes must have committed despite the chaos
  // (quorum absorbs everything we threw).
  EXPECT_GT(static_cast<int>(acked.size()), attempts / 4);

  // Writer crash + recovery on top of it all.
  cluster.CrashWriter();
  ASSERT_TRUE(cluster.RecoverSync().ok());
  chaos.Run(Seconds(5));  // gossip/repair convergence

  for (const auto& [key, value] : acked) {
    auto got = cluster.GetSync(table, key);
    ASSERT_TRUE(got.ok()) << "seed " << GetParam() << " lost " << key << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, value) << "seed " << GetParam() << " key " << key;
  }

  chaos.StopChecker();
  EXPECT_GT(chaos.checker()->checks(), 0u);
  EXPECT_TRUE(chaos.checker()->violations().empty())
      << "seed " << GetParam() << " first violation: "
      << chaos.checker()->violations().front();
}

// Property: repeated crash/recover cycles interleaved with writes (under
// the same fabric adversary) never lose an acked commit and never resurrect
// a rolled-back one.
class CrashLoopTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CrashLoopTest, ::testing::Values(3, 99, 777));

TEST_P(CrashLoopTest, AckedSurvivesUnackedRollsBack) {
  ClusterOptions o;
  o.seed = GetParam();
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.storage_nodes_per_az = 3;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  ChaosEngine chaos(&cluster);
  chaos.SetAdversary(ChaosAdversary());
  chaos.StartChecker();

  Random rng(GetParam());
  std::map<std::string, std::string> acked;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 20; ++i) {
      std::string key = Key(rng.Uniform(60));
      std::string value = std::to_string(round * 100 + i);
      if (cluster.PutSync(table, key, value).ok()) acked[key] = value;
    }
    // Leave one transaction in flight (statement done, commit never
    // requested), then crash: it must be rolled back by recovery.
    TxnId orphan = cluster.writer()->Begin();
    std::string orphan_key = "orphan-" + std::to_string(round);
    bool put_done = false;
    cluster.writer()->Put(orphan, table, orphan_key, "ghost",
                          [&](Status s) {
                            EXPECT_TRUE(s.ok());
                            put_done = true;
                          });
    cluster.RunUntil([&] { return put_done; }, Seconds(10));
    chaos.Run(Millis(100));

    cluster.CrashWriter();
    bool undo_done = false;
    cluster.writer()->set_undo_complete_callback([&] { undo_done = true; });
    ASSERT_TRUE(cluster.RecoverSync().ok()) << "round " << round;
    ASSERT_TRUE(cluster.RunUntil([&] { return undo_done; }, Minutes(1)));
    EXPECT_TRUE(
        cluster.GetSync(table, orphan_key).status().IsNotFound())
        << "round " << round;
  }
  chaos.ClearAdversary();
  for (const auto& [key, value] : acked) {
    auto got = cluster.GetSync(table, key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
  chaos.StopChecker();
  EXPECT_TRUE(chaos.checker()->violations().empty())
      << "first violation: " << chaos.checker()->violations().front();
}

// Regression: Crash() must Cancel() every timer whose closure captures the
// engine — outstanding-batch retries, pending-read timeouts, armed batch
// lingers. The generation guard made late firings harmless, but the loop
// retained the closures (use-after-free risk if the Database is destroyed
// before the loop drains, and unbounded event bookkeeping in long chaos
// runs).
TEST(ChaosCrashCleanupTest, CrashMidFlightCancelsEngineEvents) {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ASSERT_TRUE(cluster.PutSync(table, Key(0), "durable").ok());

  // Kick off a burst of writes and stop mid-flight: batches are pending
  // (linger timers armed) or outstanding (retry timers armed), and page
  // fetches may be waiting on their timeout timers.
  for (int i = 1; i <= 30; ++i) {
    TxnId txn = cluster.writer()->Begin();
    cluster.writer()->Put(txn, table, Key(i), "in-flight", [](Status) {});
  }
  for (int i = 0; i < 40; ++i) cluster.loop()->RunOne();

  const size_t pending_before = cluster.loop()->pending();
  cluster.CrashWriter();
  const size_t pending_after = cluster.loop()->pending();
  // Cancelled events leave the queue immediately instead of lingering
  // until their (generation-guarded) no-op firing.
  EXPECT_LT(pending_after, pending_before);

  // Drain the loop past every would-have-fired timer, then recover: the
  // cluster is fully functional and acked data survived.
  cluster.RunFor(Seconds(5));
  ASSERT_TRUE(cluster.RecoverSync().ok());
  auto got = cluster.GetSync(table, Key(0));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "durable");
  ASSERT_TRUE(cluster.PutSync(table, Key(100), "post-recovery").ok());
}

// Regression for the storage/replica analogue of the engine timer leak:
// Crash() must cancel the background timers that Restart() re-arms, or
// every crash/restart cycle strands another generation of (generation-
// guarded but still queued) no-op events in the loop.
TEST(ChaosCrashCleanupTest, StorageAndReplicaCrashCyclesDoNotGrowPending) {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.num_replicas = 1;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");
  ASSERT_TRUE(cluster.PutSync(table, Key(0), "durable").ok());
  cluster.RunFor(Seconds(1));

  StorageNode* sn = cluster.storage_node(0);
  ReadReplica* rep = cluster.replica(0);
  const size_t pending_start = cluster.loop()->pending();
  for (int cycle = 0; cycle < 50; ++cycle) {
    sn->Crash();
    rep->Crash();
    sn->Restart();
    rep->Restart();
  }
  const size_t pending_after = cluster.loop()->pending();
  // Each crash cancels exactly what the restart re-arms (5 storage timers
  // plus the replica's read-point tick). What remains is one queued
  // network delivery per cycle — the read-point report each replica
  // restart emits immediately, drained as soon as the loop runs — so
  // growth stays at ~1 event/cycle. Leaked dead timers would add ~6 more
  // per cycle on top.
  EXPECT_LE(pending_after, pending_start + 50 + 10);

  // The churned node and replica still function.
  cluster.RunFor(Seconds(2));
  auto got = cluster.GetSync(table, Key(0));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "durable");
}

}  // namespace
}  // namespace aurora
