#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/cluster.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

// System-level configuration sweep: the full write/read/crash-recover cycle
// must hold across page sizes, protection-group sizes and valid quorum
// schemes — the protocol invariants are configuration-independent.
using SweepParam = std::tuple<size_t /*page size*/, uint64_t /*pages per pg*/,
                              QuorumConfig>;

class ConfigSweepTest : public ::testing::TestWithParam<SweepParam> {};

// (A named generator: lambda bodies with commas break macro parsing.)
std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  size_t page = std::get<0>(info.param);
  uint64_t ppg = std::get<1>(info.param);
  QuorumConfig q = std::get<2>(info.param);
  return "p" + std::to_string(page) + "_s" + std::to_string(ppg) + "_q" +
         std::to_string(q.write_quorum) + std::to_string(q.read_quorum);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigSweepTest,
    ::testing::Values(
        SweepParam{1024, 32, QuorumConfig::Aurora()},
        SweepParam{4096, 64, QuorumConfig::Aurora()},
        SweepParam{16384, 16, QuorumConfig::Aurora()},
        SweepParam{4096, 64, QuorumConfig{6, 6, 1}},   // all-replica writes
        SweepParam{4096, 64, QuorumConfig{6, 5, 2}},   // wider writes
        SweepParam{4096, 256, QuorumConfig::Aurora()}  // bigger segments
        ),
    SweepName);

TEST_P(ConfigSweepTest, WriteReadCrashRecoverCycle) {
  const auto& [page_size, pages_per_pg, quorum] = GetParam();
  ASSERT_TRUE(quorum.Valid());
  ClusterOptions o;
  o.engine.page_size = page_size;
  o.engine.pages_per_pg = pages_per_pg;
  o.engine.quorum = quorum;
  o.engine.buffer_pool_pages = 2048;
  o.storage_nodes_per_az = 3;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  const int n = 120;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v" + std::to_string(i)).ok())
        << i;
  }
  // Spot reads, crash, recover, full read-back.
  EXPECT_EQ(*cluster.GetSync(table, Key(0)), "v0");
  cluster.CrashWriter();
  ASSERT_TRUE(cluster.RecoverSync().ok());
  for (int i = 0; i < n; ++i) {
    auto got = cluster.GetSync(table, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
  // And the quorum's stated write fault tolerance really holds.
  int can_lose = quorum.write_fault_tolerance();
  for (int k = 0; k < can_lose; ++k) {
    cluster.failure_injector()->CrashNode(
        cluster.control_plane()->membership(0).nodes[k], Minutes(5));
  }
  EXPECT_TRUE(cluster.PutSync(table, "after-faults", "ok").ok());
}

}  // namespace
}  // namespace aurora
