#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.h"
#include "harness/restore.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

ClusterOptions RestoreCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 2048;
  o.storage_nodes_per_az = 3;
  // Aggressive backup staging so short tests archive everything.
  o.storage.backup_interval = Millis(20);
  return o;
}

TEST(RestoreTest, FullRestoreFromS3Archive) {
  ClusterOptions opts = RestoreCluster();
  AuroraCluster source(opts);
  ASSERT_TRUE(source.BootstrapSync().ok());
  ASSERT_TRUE(source.CreateTableSync("t").ok());
  PageId table = *source.TableAnchorSync("t");
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(source.PutSync(table, Key(i), "v" + std::to_string(i)).ok());
  }
  // Let the continuous backup catch up with the SCL.
  source.RunFor(Seconds(3));
  ASSERT_GT(source.s3()->num_objects(), 0u);

  // A brand-new region/fleet restored purely from the archive.
  AuroraCluster target(opts);
  Status s = RestoreClusterFromS3(source.s3(), &target);
  ASSERT_TRUE(s.ok()) << s.ToString();
  PageId restored_table = *target.TableAnchorSync("t");
  EXPECT_EQ(restored_table, table);
  for (int i = 0; i < 120; ++i) {
    auto got = target.GetSync(restored_table, Key(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
  // The restored volume accepts new writes.
  ASSERT_TRUE(target.PutSync(restored_table, "after-restore", "yes").ok());
}

TEST(RestoreTest, PointInTimeCutsAtRequestedLsn) {
  ClusterOptions opts = RestoreCluster();
  AuroraCluster source(opts);
  ASSERT_TRUE(source.BootstrapSync().ok());
  ASSERT_TRUE(source.CreateTableSync("t").ok());
  PageId table = *source.TableAnchorSync("t");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(source.PutSync(table, Key(i), "early").ok());
  }
  source.RunFor(Seconds(2));
  Lsn cut = source.writer()->vdl();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(source.PutSync(table, Key(100 + i), "late").ok());
  }
  source.RunFor(Seconds(3));

  AuroraCluster target(opts);
  Status s = RestoreClusterFromS3(source.s3(), &target, cut);
  ASSERT_TRUE(s.ok()) << s.ToString();
  PageId t2 = *target.TableAnchorSync("t");
  // Early rows present; late rows (written after the cut) absent.
  EXPECT_TRUE(target.GetSync(t2, Key(0)).ok());
  EXPECT_TRUE(target.GetSync(t2, Key(39)).ok());
  EXPECT_TRUE(target.GetSync(t2, Key(100)).status().IsNotFound());
  EXPECT_TRUE(target.GetSync(t2, Key(139)).status().IsNotFound());
}

TEST(RestoreTest, EmptyArchiveFails) {
  ClusterOptions opts = RestoreCluster();
  AuroraCluster source(opts);  // never written to
  AuroraCluster target(opts);
  EXPECT_TRUE(
      RestoreClusterFromS3(source.s3(), &target).IsNotFound());
}

}  // namespace
}  // namespace aurora
