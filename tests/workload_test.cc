#include <gtest/gtest.h>

#include <memory>

#include "harness/bulk_load.h"
#include "harness/client_api.h"
#include "harness/cluster.h"
#include "harness/mysql_cluster.h"
#include "harness/synthetic_table.h"
#include "page/btree.h"
#include "tests/test_util.h"
#include "workload/sysbench.h"
#include "workload/tpcc.h"

namespace aurora {
namespace {

TEST(SyntheticTableTest, LayoutCoversAllRows) {
  SyntheticTableLayout t(100, 5000, 4096, 100);
  EXPECT_EQ(t.anchor(), 100u);
  EXPECT_GT(t.page_count(), 5000u * 100 / 4096);
  // Every page in range must build; pages outside must not.
  for (PageId p = t.first_page(); p < t.end_page(); ++p) {
    Page page(4096);
    ASSERT_TRUE(t.BuildPage(p, &page)) << p;
    EXPECT_TRUE(page.IsFormatted());
    EXPECT_TRUE(page.VerifyCrc());
  }
  Page outside(4096);
  EXPECT_FALSE(t.BuildPage(t.end_page(), &outside));
  EXPECT_FALSE(t.BuildPage(99, &outside));
}

TEST(SyntheticTableTest, SynthesizedTreeIsAValidBTree) {
  // Wrap the layout in a PageProvider and run the real btree validation and
  // lookups against it.
  class SynthProvider : public testing::MemoryPageProvider {
   public:
    SynthProvider(const SyntheticTableLayout* t, size_t page_size)
        : MemoryPageProvider(page_size), t_(t) {}
    Result<Page*> GetPage(PageId id) override {
      auto it = cache_.find(id);
      if (it != cache_.end()) return &it->second;
      Page page(t_ ? 4096 : 4096);
      if (!t_->BuildPage(id, &page)) return Status::NotFound("no page");
      auto [nit, ok] = cache_.emplace(id, std::move(page));
      return &nit->second;
    }

   private:
    const SyntheticTableLayout* t_;
    std::map<PageId, Page> cache_;
  };

  SyntheticTableLayout t(1, 20000, 4096, 60);
  SynthProvider provider(&t, 4096);
  BTree tree(&provider, t.anchor());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto count = tree.CountForTesting();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 20000u);
  for (uint64_t row : {0ull, 1ull, 9999ull, 19999ull}) {
    std::string v;
    ASSERT_TRUE(tree.Get(SyntheticTableLayout::KeyOf(row), &v).ok()) << row;
    EXPECT_EQ(v, t.StoredValueOf(row));
  }
  std::string v;
  EXPECT_TRUE(
      tree.Get(SyntheticTableLayout::KeyOf(20000), &v).IsNotFound());
}

ClusterOptions WorkloadCluster() {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 256;
  o.engine.buffer_pool_pages = 4096;
  o.storage_nodes_per_az = 3;
  return o;
}

TEST(SyntheticTableTest, AuroraReadsAndWritesPreloadedTable) {
  AuroraCluster cluster(WorkloadCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  SyntheticCatalog catalog;
  auto layout = AttachSyntheticTable(&cluster, &catalog, "big", 50000, 100);
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  PageId table = (*layout)->anchor();
  // Point reads of pre-loaded rows (never written through the log!).
  auto got = cluster.GetSync(table, SyntheticTableLayout::KeyOf(31337));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, (*layout)->UserValueOf(31337));
  // Updates flow through the normal redo path on top of synthetic pages.
  ASSERT_TRUE(
      cluster.PutSync(table, SyntheticTableLayout::KeyOf(31337), "updated")
          .ok());
  EXPECT_EQ(*cluster.GetSync(table, SyntheticTableLayout::KeyOf(31337)),
            "updated");
  // Neighbours in the same leaf are unaffected.
  EXPECT_EQ(*cluster.GetSync(table, SyntheticTableLayout::KeyOf(31338)),
            (*layout)->UserValueOf(31338));
}

TEST(SyntheticTableTest, MysqlReadsAndWritesPreloadedTable) {
  MysqlClusterOptions o;
  o.mysql.engine.page_size = 4096;
  o.mysql.engine.buffer_pool_pages = 4096;
  MysqlCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  SyntheticCatalog catalog;
  auto layout =
      AttachSyntheticTableMysql(&cluster, &catalog, "big", 50000, 100);
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  PageId table = (*layout)->anchor();
  auto got = cluster.GetSync(table, SyntheticTableLayout::KeyOf(777));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, (*layout)->StoredValueOf(777));
  ASSERT_TRUE(
      cluster.PutSync(table, SyntheticTableLayout::KeyOf(777), "updated").ok());
}

TEST(SysbenchTest, OltpMixRunsOnAurora) {
  AuroraCluster cluster(WorkloadCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  SyntheticCatalog catalog;
  auto layout = AttachSyntheticTable(&cluster, &catalog, "sbtest", 10000, 100);
  ASSERT_TRUE(layout.ok());
  AuroraClient client(cluster.writer());
  SysbenchOptions opts;
  opts.mode = SysbenchOptions::Mode::kOltp;
  opts.connections = 8;
  opts.table_rows = 10000;
  opts.duration = Seconds(2);
  opts.warmup = Millis(200);
  SysbenchDriver driver(cluster.writer_loop(), &client, (*layout)->anchor(), opts);
  bool done = false;
  driver.Run([&] { done = true; });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, Minutes(5)));
  EXPECT_GT(driver.results().txns, 100u);
  EXPECT_GT(driver.results().reads, driver.results().writes);
  // A handful of deadlock aborts (S->X upgrades colliding) is expected in
  // an OLTP mix; they must stay a tiny fraction of throughput.
  EXPECT_LT(driver.results().errors, driver.results().txns / 100 + 5);
}

TEST(SysbenchTest, WriteOnlyRunsOnMysql) {
  MysqlClusterOptions o;
  o.mysql.engine.page_size = 4096;
  o.mysql.engine.buffer_pool_pages = 4096;
  MysqlCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  SyntheticCatalog catalog;
  auto layout =
      AttachSyntheticTableMysql(&cluster, &catalog, "sbtest", 10000, 100);
  ASSERT_TRUE(layout.ok());
  MysqlClient client(cluster.db());
  SysbenchOptions opts;
  opts.mode = SysbenchOptions::Mode::kWriteOnly;
  opts.connections = 8;
  opts.table_rows = 10000;
  opts.duration = Seconds(2);
  opts.warmup = Millis(200);
  SysbenchDriver driver(cluster.writer_loop(), &client, (*layout)->anchor(), opts);
  bool done = false;
  driver.Run([&] { done = true; });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, Minutes(5)));
  EXPECT_GT(driver.results().txns, 20u);
}

TEST(SysbenchTest, AuroraOutpacesMysqlOnWrites) {
  // The core Table 1/2 shape at miniature scale.
  SysbenchOptions opts;
  opts.mode = SysbenchOptions::Mode::kWriteOnly;
  opts.connections = 16;
  opts.table_rows = 10000;
  opts.duration = Seconds(2);
  opts.warmup = Millis(200);

  AuroraCluster ac(WorkloadCluster());
  ASSERT_TRUE(ac.BootstrapSync().ok());
  SyntheticCatalog cat_a;
  auto la = AttachSyntheticTable(&ac, &cat_a, "t", 10000, 100);
  AuroraClient aclient(ac.writer());
  SysbenchDriver ad(ac.writer_loop(), &aclient, (*la)->anchor(), opts);
  bool adone = false;
  ad.Run([&] { adone = true; });
  ASSERT_TRUE(ac.RunUntil([&] { return adone; }, Minutes(5)));

  MysqlClusterOptions mo;
  mo.mysql.engine.page_size = 4096;
  mo.mysql.engine.buffer_pool_pages = 4096;
  MysqlCluster mc(mo);
  ASSERT_TRUE(mc.BootstrapSync().ok());
  SyntheticCatalog cat_m;
  auto lm = AttachSyntheticTableMysql(&mc, &cat_m, "t", 10000, 100);
  MysqlClient mclient(mc.db());
  SysbenchDriver md(mc.writer_loop(), &mclient, (*lm)->anchor(), opts);
  bool mdone = false;
  md.Run([&] { mdone = true; });
  ASSERT_TRUE(mc.RunUntil([&] { return mdone; }, Minutes(5)));

  EXPECT_GT(ad.results().writes_per_sec(), md.results().writes_per_sec() * 2)
      << "aurora " << ad.results().writes_per_sec() << " vs mysql "
      << md.results().writes_per_sec();
}

TEST(TpccTest, MixRunsAndCommitsNewOrders) {
  AuroraCluster cluster(WorkloadCluster());
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  TpccTables tables;
  for (const char* name : {"warehouse", "district", "customer", "stock",
                           "orders"}) {
    ASSERT_TRUE(cluster.CreateTableSync(name).ok());
  }
  tables.warehouse = *cluster.TableAnchorSync("warehouse");
  tables.district = *cluster.TableAnchorSync("district");
  tables.customer = *cluster.TableAnchorSync("customer");
  tables.stock = *cluster.TableAnchorSync("stock");
  tables.orders = *cluster.TableAnchorSync("orders");

  AuroraClient client(cluster.writer());
  TpccOptions opts;
  opts.warehouses = 4;
  opts.connections = 16;
  opts.customers_per_district = 10;
  opts.stock_items = 100;
  opts.duration = Seconds(2);
  opts.warmup = Millis(200);
  TpccDriver driver(cluster.writer_loop(), &client, tables, opts);
  Status load_status = Status::TimedOut("load");
  bool loaded = false;
  driver.Load([&](Status s) {
    load_status = s;
    loaded = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return loaded; }, Minutes(10)));
  ASSERT_TRUE(load_status.ok()) << load_status.ToString();

  bool done = false;
  driver.Run([&] { done = true; });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, Minutes(10)));
  EXPECT_GT(driver.results().new_orders, 10u);
  EXPECT_GT(driver.results().payments, 10u);
  EXPECT_GT(driver.results().tpmC(), 0.0);
}

}  // namespace
}  // namespace aurora
