#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "common/random.h"
#include "page/page.h"

namespace aurora {
namespace {

class PageTest : public ::testing::TestWithParam<size_t> {
 protected:
  PageTest() : page_(GetParam()) {
    page_.Format(42, PageType::kBTreeLeaf, 0);
  }
  Page page_;
};

INSTANTIATE_TEST_SUITE_P(PageSizes, PageTest,
                         ::testing::Values(512, 4096, 16384, 32768));

TEST_P(PageTest, FormatSetsHeader) {
  EXPECT_TRUE(page_.IsFormatted());
  EXPECT_EQ(page_.page_id(), 42u);
  EXPECT_EQ(page_.page_type(), PageType::kBTreeLeaf);
  EXPECT_EQ(page_.level(), 0);
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.page_lsn(), kInvalidLsn);
  EXPECT_EQ(page_.next_page(), kInvalidPage);
  EXPECT_EQ(page_.prev_page(), kInvalidPage);
}

TEST_P(PageTest, UnformattedPageDetected) {
  Page p(GetParam());
  EXPECT_FALSE(p.IsFormatted());
}

TEST_P(PageTest, InsertAndGet) {
  ASSERT_TRUE(page_.InsertRecord("bob", "builder").ok());
  ASSERT_TRUE(page_.InsertRecord("alice", "wonder").ok());
  Slice v;
  ASSERT_TRUE(page_.GetRecord("alice", &v));
  EXPECT_EQ(v.ToString(), "wonder");
  ASSERT_TRUE(page_.GetRecord("bob", &v));
  EXPECT_EQ(v.ToString(), "builder");
  EXPECT_FALSE(page_.GetRecord("carol", &v));
}

TEST_P(PageTest, KeysKeptSorted) {
  const char* keys[] = {"delta", "alpha", "echo", "bravo", "charlie"};
  for (const char* k : keys) ASSERT_TRUE(page_.InsertRecord(k, "v").ok());
  ASSERT_EQ(page_.slot_count(), 5);
  for (int i = 1; i < 5; ++i) {
    EXPECT_TRUE(page_.KeyAt(i - 1) < page_.KeyAt(i));
  }
}

TEST_P(PageTest, DuplicateInsertRejected) {
  ASSERT_TRUE(page_.InsertRecord("k", "v1").ok());
  EXPECT_TRUE(page_.InsertRecord("k", "v2").IsInvalidArgument());
  Slice v;
  ASSERT_TRUE(page_.GetRecord("k", &v));
  EXPECT_EQ(v.ToString(), "v1");
}

TEST_P(PageTest, DeleteRemovesRecord) {
  ASSERT_TRUE(page_.InsertRecord("a", "1").ok());
  ASSERT_TRUE(page_.InsertRecord("b", "2").ok());
  ASSERT_TRUE(page_.DeleteRecord("a").ok());
  Slice v;
  EXPECT_FALSE(page_.GetRecord("a", &v));
  EXPECT_TRUE(page_.GetRecord("b", &v));
  EXPECT_EQ(page_.slot_count(), 1);
  EXPECT_TRUE(page_.DeleteRecord("a").IsNotFound());
}

TEST_P(PageTest, UpdateChangesValue) {
  ASSERT_TRUE(page_.InsertRecord("k", "old").ok());
  ASSERT_TRUE(page_.UpdateRecord("k", "new-and-longer").ok());
  Slice v;
  ASSERT_TRUE(page_.GetRecord("k", &v));
  EXPECT_EQ(v.ToString(), "new-and-longer");
  EXPECT_TRUE(page_.UpdateRecord("missing", "x").IsNotFound());
}

TEST_P(PageTest, FillsUntilOutOfRangeThenStillConsistent) {
  int inserted = 0;
  while (true) {
    std::string k = "key" + std::to_string(10000 + inserted);
    Status s = page_.InsertRecord(k, std::string(20, 'v'));
    if (s.IsOutOfRange()) break;
    ASSERT_TRUE(s.ok());
    ++inserted;
  }
  EXPECT_GT(inserted, 5);
  EXPECT_EQ(page_.slot_count(), inserted);
  // Every inserted record still readable.
  for (int i = 0; i < inserted; ++i) {
    Slice v;
    EXPECT_TRUE(page_.GetRecord("key" + std::to_string(10000 + i), &v));
  }
}

TEST_P(PageTest, DeadSpaceReclaimedByCompaction) {
  // Fill the page, delete everything, then fill again: compaction must make
  // the space reusable.
  for (int round = 0; round < 3; ++round) {
    int inserted = 0;
    while (true) {
      std::string k = "k" + std::to_string(100000 + inserted);
      if (!page_.InsertRecord(k, std::string(30, 'x')).ok()) break;
      ++inserted;
    }
    EXPECT_GT(inserted, 3);
    for (int i = 0; i < inserted; ++i) {
      ASSERT_TRUE(page_.DeleteRecord("k" + std::to_string(100000 + i)).ok());
    }
    EXPECT_EQ(page_.slot_count(), 0);
  }
}

TEST_P(PageTest, UpdateGrowthUsesCompaction) {
  // Insert small values then grow them, forcing dead-space reuse.
  int n = 0;
  while (page_.HasRoomFor(8, 8) && n < 50) {
    ASSERT_TRUE(
        page_.InsertRecord("k" + std::to_string(1000 + n), "tiny").ok());
    ++n;
  }
  // Grow the first few values; some will require compaction.
  int grown = 0;
  for (int i = 0; i < n; ++i) {
    Status s = page_.UpdateRecord("k" + std::to_string(1000 + i),
                                  std::string(16, 'G'));
    if (s.ok()) {
      ++grown;
    } else {
      EXPECT_TRUE(s.IsOutOfRange());
      break;
    }
  }
  EXPECT_GT(grown, 0);
  for (int i = 0; i < grown; ++i) {
    Slice v;
    ASSERT_TRUE(page_.GetRecord("k" + std::to_string(1000 + i), &v));
    EXPECT_EQ(v.ToString(), std::string(16, 'G'));
  }
}

TEST_P(PageTest, LowerBoundSemantics) {
  for (const char* k : {"b", "d", "f"}) {
    ASSERT_TRUE(page_.InsertRecord(k, "v").ok());
  }
  EXPECT_EQ(page_.LowerBound("a"), 0);
  EXPECT_EQ(page_.LowerBound("b"), 0);
  EXPECT_EQ(page_.LowerBound("c"), 1);
  EXPECT_EQ(page_.LowerBound("f"), 2);
  EXPECT_EQ(page_.LowerBound("g"), 3);
  EXPECT_EQ(page_.UpperBoundChild("a"), -1);
  EXPECT_EQ(page_.UpperBoundChild("b"), 0);
  EXPECT_EQ(page_.UpperBoundChild("e"), 1);
  EXPECT_EQ(page_.UpperBoundChild("z"), 2);
}

TEST_P(PageTest, HeaderFieldsRoundTrip) {
  page_.set_page_lsn(123456789);
  page_.set_next_page(77);
  page_.set_prev_page(66);
  page_.set_schema_version(5);
  EXPECT_EQ(page_.page_lsn(), 123456789u);
  EXPECT_EQ(page_.next_page(), 77u);
  EXPECT_EQ(page_.prev_page(), 66u);
  EXPECT_EQ(page_.schema_version(), 5u);
}

TEST_P(PageTest, CrcDetectsCorruption) {
  ASSERT_TRUE(page_.InsertRecord("k", "v").ok());
  page_.UpdateCrc();
  EXPECT_TRUE(page_.VerifyCrc());
  Page copy = page_;
  copy.CorruptForTesting(GetParam() / 2);
  EXPECT_FALSE(copy.VerifyCrc());
  EXPECT_TRUE(page_.VerifyCrc());
}

TEST_P(PageTest, LoadRawRoundTrip) {
  ASSERT_TRUE(page_.InsertRecord("k", "v").ok());
  page_.UpdateCrc();
  Page other(GetParam());
  ASSERT_TRUE(other.LoadRaw(page_.raw()).ok());
  EXPECT_TRUE(other.VerifyCrc());
  Slice v;
  ASSERT_TRUE(other.GetRecord("k", &v));
  EXPECT_EQ(v.ToString(), "v");
  Page wrong_size(GetParam() == 512 ? 1024 : 512);
  EXPECT_TRUE(wrong_size.LoadRaw(page_.raw()).IsInvalidArgument());
}

// Property test: a long random op sequence against a std::map reference
// model must agree exactly.
TEST(PagePropertyTest, RandomOpsMatchReferenceModel) {
  Page page(4096);
  page.Format(1, PageType::kBTreeLeaf, 0);
  std::map<std::string, std::string> model;
  Random rng(2024);
  for (int step = 0; step < 20000; ++step) {
    std::string key = "k" + std::to_string(rng.Uniform(200));
    int op = static_cast<int>(rng.Uniform(4));
    if (op == 0) {
      std::string val(rng.Uniform(40) + 1, 'a' + step % 26);
      Status s = page.InsertRecord(key, val);
      if (model.count(key)) {
        EXPECT_TRUE(s.IsInvalidArgument());
      } else if (s.ok()) {
        model[key] = val;
      } else {
        EXPECT_TRUE(s.IsOutOfRange());
      }
    } else if (op == 1) {
      Status s = page.DeleteRecord(key);
      EXPECT_EQ(s.ok(), model.erase(key) > 0);
    } else if (op == 2) {
      std::string val(rng.Uniform(40) + 1, 'A' + step % 26);
      Status s = page.UpdateRecord(key, val);
      if (!model.count(key)) {
        EXPECT_TRUE(s.IsNotFound());
      } else if (s.ok()) {
        model[key] = val;
      } else {
        EXPECT_TRUE(s.IsOutOfRange());
      }
    } else {
      Slice v;
      bool found = page.GetRecord(key, &v);
      auto it = model.find(key);
      ASSERT_EQ(found, it != model.end()) << "step " << step;
      if (found) {
        EXPECT_EQ(v.ToString(), it->second);
      }
    }
    ASSERT_EQ(page.slot_count(), static_cast<int>(model.size()));
  }
  // Final full comparison in slot order.
  int i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(page.KeyAt(i).ToString(), k);
    EXPECT_EQ(page.ValueAt(i).ToString(), v);
    ++i;
  }
}

}  // namespace
}  // namespace aurora
