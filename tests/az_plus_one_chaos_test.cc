// AZ+1 certification (§2.2): an entire availability zone plus one more
// storage host fail permanently while the fabric adversary drops,
// duplicates, reorders and corrupts frames. The design promise is that this
// breaks write availability at worst — never durability: no committed LSN
// may be lost (invariant 8), quorums must keep intersecting across every
// membership change repair makes (invariant 7), and the fleet must
// reconverge to 6/6 live members per PG with zero failed repairs.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/cluster.h"
#include "sim/chaos.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

class AzPlusOneChaosTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, AzPlusOneChaosTest,
                         ::testing::Values(1, 7, 42, 1337, 20260707));

TEST_P(AzPlusOneChaosTest, CommittedDataSurvivesAndMembershipReconverges) {
  ClusterOptions o;
  o.seed = GetParam();
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.engine.buffer_pool_pages = 2048;
  o.storage_nodes_per_az = 4;
  o.repair.detection_threshold = Seconds(2);
  o.repair.chunk_bytes = 4096;
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  std::map<std::string, std::string> acked;
  for (int i = 0; i < 80; ++i) {
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster.PutSync(table, Key(i), value).ok()) << i;
    acked[Key(i)] = value;
  }
  cluster.RunFor(Millis(500));

  ChaosEngine chaos(&cluster);
  chaos.StartChecker();
  AdversaryConfig adversary;
  adversary.drop_probability = 0.02;
  adversary.duplicate_probability = 0.05;
  adversary.reorder_window = Millis(2);
  adversary.corrupt_probability = 0.001;
  chaos.SetAdversary(adversary);

  // The design fault: all of AZ 1, plus one extra host outside it, down for
  // good. Count how many pg-0 replicas that kills (2 per AZ, plus possibly
  // the extra host) so we can check repair replaced every one of them.
  const sim::AzId lost_az = 1;
  size_t extra_index = SIZE_MAX;
  for (size_t i = 0; i < cluster.num_storage_nodes(); ++i) {
    if (cluster.topology()->az_of(cluster.storage_node(i)->id()) != lost_az) {
      extra_index = i;
      break;
    }
  }
  ASSERT_NE(extra_index, SIZE_MAX);
  const sim::NodeId extra = cluster.storage_node(extra_index)->id();
  size_t expected_repairs = 0;
  const PgMembership before = cluster.control_plane()->membership(0);
  for (sim::NodeId node : before.nodes) {
    if (cluster.topology()->az_of(node) == lost_az || node == extra) {
      ++expected_repairs;
    }
  }
  ASSERT_GE(expected_repairs, 2u);  // an AZ holds two of each PG's six

  chaos.FailAzPlusOneAt(Millis(10), lost_az, extra_index, /*downtime=*/0);
  chaos.Run(Millis(20));

  // Reconvergence: every PG back to six live members, each actually hosting
  // its segment, with no repair still running or queued.
  auto reconverged = [&] {
    if (!cluster.repair_manager()->active_repairs().empty()) return false;
    if (cluster.repair_manager()->queue_depth() != 0) return false;
    size_t num_pgs = cluster.control_plane()->num_pgs();
    for (PgId pg = 0; pg < num_pgs; ++pg) {
      const PgMembership& members = cluster.control_plane()->membership(pg);
      for (sim::NodeId node : members.nodes) {
        StorageNode* sn = cluster.storage_node_by_id(node);
        if (sn == nullptr || sn->crashed()) return false;
        if (sn->segment(pg) == nullptr) return false;
      }
    }
    return true;
  };
  bool ok = cluster.RunUntil(reconverged, Minutes(5));
  if (!ok) {
    const RepairStats& rs = cluster.repair_manager()->stats();
    std::string diag = "repair stats: started=" + std::to_string(rs.started) +
                       " completed=" + std::to_string(rs.completed) +
                       " failed=" + std::to_string(rs.failed) +
                       " no_replacement=" + std::to_string(rs.no_replacement) +
                       " no_donor=" + std::to_string(rs.no_donor) +
                       " chunk_retries=" + std::to_string(rs.chunk_retries) +
                       " donor_failovers=" + std::to_string(rs.donor_failovers) +
                       " transfer_restarts=" + std::to_string(rs.transfer_restarts) +
                       " active=" + std::to_string(cluster.repair_manager()->active_repairs().size()) +
                       " queue=" + std::to_string(cluster.repair_manager()->queue_depth());
    for (const auto& r : cluster.repair_manager()->active_repairs()) {
      diag += "\n active pg=" + std::to_string(r.pg) +
              " idx=" + std::to_string(r.idx) +
              " target=" + std::to_string(r.target) +
              " donor=" + std::to_string(r.donor) +
              " next=" + std::to_string(r.next_chunk) + "/" +
              std::to_string(r.total_chunks);
    }
    size_t num_pgs = cluster.control_plane()->num_pgs();
    for (PgId pg = 0; pg < num_pgs; ++pg) {
      const PgMembership& members = cluster.control_plane()->membership(pg);
      diag += "\n pg " + std::to_string(pg) + " epoch " +
              std::to_string(members.config_epoch) + ":";
      for (sim::NodeId node : members.nodes) {
        StorageNode* sn = cluster.storage_node_by_id(node);
        diag += " " + std::to_string(node) +
                (sn == nullptr ? "?" : (sn->crashed() ? "X" : (sn->segment(pg) ? "" : "-")));
      }
    }
    FAIL() << "membership never reconverged to 6/6 live members\n" << diag;
  }

  const RepairStats& repair = cluster.repair_manager()->stats();
  EXPECT_EQ(repair.failed, 0u);
  EXPECT_GE(repair.completed, expected_repairs);

  chaos.ClearAdversary();
  cluster.RunFor(Seconds(5));  // let gossip converge the stragglers
  chaos.StopChecker();

  // Zero committed-LSN loss: every acked row reads back its acked value.
  for (const auto& [key, value] : acked) {
    auto got = cluster.GetSync(table, key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, value) << key;
  }
  // And the volume is writable again on the repaired membership.
  for (int i = 200; i < 220; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "post").ok()) << i;
  }

  const auto& violations = chaos.checker()->violations();
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violation(s), first: " << violations.front();
  EXPECT_GT(chaos.checker()->checks(), 0u);
}

}  // namespace
}  // namespace aurora
