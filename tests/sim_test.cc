#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "sim/disk.h"
#include "sim/event_loop.h"
#include "sim/failure_injector.h"
#include "sim/instance.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace aurora::sim {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(30, [&] { order.push_back(3); });
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(20, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoopTest, FifoAtSameTime) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.Schedule(10, [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(5, [&] {
    loop.Schedule(5, [&] {
      ++fired;
      EXPECT_EQ(loop.now(), 10u);
    });
  });
  loop.Run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  int fired = 0;
  EventId id = loop.Schedule(10, [&] { ++fired; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));
  loop.Run();
  EXPECT_EQ(fired, 0);
}

TEST(EventLoopTest, RunUntilAdvancesClockExactly) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(100, [&] { ++fired; });
  loop.Schedule(200, [&] { ++fired; });
  loop.RunUntil(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 150u);
  loop.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, PastTimeClampsToNow) {
  EventLoop loop;
  loop.Schedule(50, [] {});
  loop.Run();
  int fired = 0;
  loop.ScheduleAt(10, [&] { ++fired; });  // in the past
  loop.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 50u);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : topo_(3), net_(&loop_, &topo_, FabricOptions{}, Random(1)) {
    a_ = topo_.AddNode(0, "a");
    b_ = topo_.AddNode(0, "b");
    c_ = topo_.AddNode(1, "c");
    net_.Register(a_, [this](const Message& m) { at_a_.push_back(m); });
    net_.Register(b_, [this](const Message& m) { at_b_.push_back(m); });
    net_.Register(c_, [this](const Message& m) { at_c_.push_back(m); });
  }

  EventLoop loop_;
  Topology topo_;
  Network net_;
  NodeId a_, b_, c_;
  std::vector<Message> at_a_, at_b_, at_c_;
};

TEST_F(NetworkTest, DeliversMessages) {
  net_.Send(a_, b_, 7, "ping");
  loop_.Run();
  ASSERT_EQ(at_b_.size(), 1u);
  EXPECT_EQ(at_b_[0].payload().ToString(), "ping");
  EXPECT_EQ(at_b_[0].type, 7);
  EXPECT_EQ(at_b_[0].from, a_);
}

TEST_F(NetworkTest, SharedPayloadSendDeliversHeaderPlusBodyBytes) {
  std::shared_ptr<const std::string> body =
      std::make_shared<std::string>("0123456789");
  net_.Send(a_, b_, 7, "hdr-", body);
  net_.Send(a_, c_, 7, "HDR-", body);
  net_.Send(a_, b_, 7, std::string("hdr-0123456789"));
  loop_.Run();
  // Receivers see one contiguous payload, identical to the plain Send.
  ASSERT_EQ(at_b_.size(), 2u);
  EXPECT_EQ(at_b_[0].payload().ToString(), "hdr-0123456789");
  EXPECT_EQ(at_b_[1].payload().ToString(), "hdr-0123456789");
  ASSERT_EQ(at_c_.size(), 1u);
  EXPECT_EQ(at_c_[0].payload().ToString(), "HDR-0123456789");
  // Byte accounting covers header + body for every copy, as on a real wire.
  EXPECT_EQ(net_.stats_of(a_).bytes_sent, 3 * 14u);
  EXPECT_EQ(net_.stats_of(a_).messages_sent, 3u);
}

TEST_F(NetworkTest, SharedPayloadSendToDownNodeIsDropped) {
  std::shared_ptr<const std::string> body =
      std::make_shared<std::string>("shared");
  net_.SetNodeDown(b_, true);
  net_.Send(a_, b_, 0, "x", body);
  net_.Send(a_, c_, 0, "x", body);
  loop_.Run();
  EXPECT_TRUE(at_b_.empty());
  ASSERT_EQ(at_c_.size(), 1u);
  EXPECT_EQ(at_c_[0].payload().ToString(), "xshared");
  EXPECT_EQ(net_.stats_of(a_).messages_dropped, 1u);
}

TEST_F(NetworkTest, CrossAzSlowerThanIntraAz) {
  SimTime t0 = loop_.now();
  SimTime intra_done = 0, cross_done = 0;
  net_.Register(b_, [&](const Message&) { intra_done = loop_.now(); });
  net_.Register(c_, [&](const Message&) { cross_done = loop_.now(); });
  // Average over repeated sends to wash out jitter.
  for (int i = 0; i < 50; ++i) {
    net_.Send(a_, b_, 0, "x");
    net_.Send(a_, c_, 0, "x");
  }
  loop_.Run();
  EXPECT_GT(cross_done, t0);
  EXPECT_GT(cross_done, intra_done);
}

TEST_F(NetworkTest, DownNodeDropsTraffic) {
  net_.SetNodeDown(b_, true);
  net_.Send(a_, b_, 0, "lost");
  loop_.Run();
  EXPECT_TRUE(at_b_.empty());
  EXPECT_EQ(net_.stats_of(a_).messages_dropped, 1u);
  net_.SetNodeDown(b_, false);
  net_.Send(a_, b_, 0, "found");
  loop_.Run();
  EXPECT_EQ(at_b_.size(), 1u);
}

TEST_F(NetworkTest, CrashWhileInFlightLosesMessage) {
  net_.Send(a_, b_, 0, "in-flight");
  net_.SetNodeDown(b_, true);  // before delivery event fires
  loop_.Run();
  EXPECT_TRUE(at_b_.empty());
}

TEST_F(NetworkTest, AzDownDropsAllNodesInIt) {
  net_.SetAzDown(1, true);
  net_.Send(a_, c_, 0, "x");
  loop_.Run();
  EXPECT_TRUE(at_c_.empty());
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  net_.SetPartitioned(a_, b_, true);
  net_.Send(a_, b_, 0, "x");
  net_.Send(b_, a_, 0, "y");
  net_.Send(a_, c_, 0, "z");  // unaffected
  loop_.Run();
  EXPECT_TRUE(at_b_.empty());
  EXPECT_TRUE(at_a_.empty());
  EXPECT_EQ(at_c_.size(), 1u);
}

TEST_F(NetworkTest, CountsPacketsAtMtuGranularity) {
  FabricOptions opts;
  std::string big(static_cast<size_t>(opts.mtu_bytes) * 3 + 1, 'x');
  net_.Send(a_, b_, 0, big);
  loop_.Run();
  EXPECT_EQ(net_.stats_of(a_).packets_sent, 4u);
  EXPECT_EQ(net_.stats_of(a_).bytes_sent, big.size());
}

TEST_F(NetworkTest, DroppedSendsStillConsumeNicTime) {
  // Regression: loss happens on the wire, not at the NIC — a dropped
  // message must still occupy the sender's NIC for its serialization time,
  // or lossy links would grant senders free bandwidth. A huge message to a
  // dead node must delay a subsequent small send's delivery.
  FabricOptions opts;
  // ~10 ms of NIC serialization at the default 10 Gbit/s.
  std::string big(static_cast<size_t>(opts.node_bandwidth_bps / 100), 'x');
  const SimDuration big_transmit = static_cast<SimDuration>(
      static_cast<double>(big.size()) / opts.node_bandwidth_bps * 1e6);

  net_.SetNodeDown(b_, true);
  net_.Send(a_, b_, 0, big);  // dropped (unreachable), but transmitted
  EXPECT_EQ(net_.stats_of(a_).messages_dropped, 1u);

  SimTime delivered_at = 0;
  net_.Register(c_, [&](const Message&) { delivered_at = loop_.now(); });
  net_.Send(a_, c_, 0, "small");
  loop_.Run();
  // The small message queued behind the dropped one's NIC serialization.
  EXPECT_GE(delivered_at, big_transmit);
}

TEST_F(NetworkTest, RandomDropsAlsoConsumeNicTime) {
  // Same property for probabilistic drops: with p=1 every message is lost,
  // yet back-to-back sends must still serialize one after another.
  net_.set_drop_probability(1.0);
  FabricOptions opts;
  std::string big(static_cast<size_t>(opts.node_bandwidth_bps / 100), 'x');
  const SimDuration big_transmit = static_cast<SimDuration>(
      static_cast<double>(big.size()) / opts.node_bandwidth_bps * 1e6);
  net_.Send(a_, b_, 0, big);
  net_.Send(a_, b_, 0, big);
  EXPECT_EQ(net_.stats_of(a_).messages_dropped, 2u);

  net_.set_drop_probability(0.0);
  SimTime delivered_at = 0;
  net_.Register(c_, [&](const Message&) { delivered_at = loop_.now(); });
  net_.Send(a_, c_, 0, "small");
  loop_.Run();
  EXPECT_GE(delivered_at, 2 * big_transmit);
}

TEST_F(NetworkTest, TotalAggregatesAndResets) {
  net_.Send(a_, b_, 0, "x");
  net_.Send(b_, c_, 0, "y");
  loop_.Run();
  EXPECT_EQ(net_.total().messages_sent, 2u);
  EXPECT_EQ(net_.total().messages_received, 2u);
  net_.ResetStats();
  EXPECT_EQ(net_.total().messages_sent, 0u);
}

TEST(DiskTest, CompletesWritesWithLatency) {
  EventLoop loop;
  Disk disk(&loop, DiskOptions{}, Random(1));
  bool done = false;
  disk.Write(4096, [&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  loop.Run();
  EXPECT_TRUE(done);
  EXPECT_GT(loop.now(), 0u);
  EXPECT_EQ(disk.writes(), 1u);
  EXPECT_EQ(disk.bytes_written(), 4096u);
}

TEST(DiskTest, IopsLimitQueuesWork) {
  EventLoop loop;
  DiskOptions opts;
  opts.max_iops = 1000;  // 1ms service time per op
  opts.write_latency = Micros(10);
  opts.jitter_sigma = 0.0;
  Disk disk(&loop, opts, Random(1));
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    disk.Write(128, [&](Status) { ++completed; });
  }
  loop.Run();
  EXPECT_EQ(completed, 100);
  // 100 ops at 1ms service each must take at least ~100ms.
  EXPECT_GE(loop.now(), Millis(99));
}

TEST(DiskTest, FailedDiskReturnsIOError) {
  EventLoop loop;
  Disk disk(&loop, DiskOptions{}, Random(1));
  disk.Fail();
  Status got;
  disk.Write(100, [&](Status s) { got = s; });
  loop.Run();
  EXPECT_TRUE(got.IsIOError());
}

TEST(DiskTest, SlowdownIncreasesLatency) {
  EventLoop l1, l2;
  DiskOptions opts;
  opts.jitter_sigma = 0.0;
  Disk fast(&l1, opts, Random(1));
  Disk slow(&l2, opts, Random(1));
  slow.set_slowdown(10.0);
  fast.Write(4096, [](Status) {});
  slow.Write(4096, [](Status) {});
  l1.Run();
  l2.Run();
  EXPECT_GT(l2.now(), l1.now() * 5);
}

TEST(InstanceTest, ParallelismScalesWithVcpus) {
  // 64 tasks of 1ms each: 2 vCPUs -> ~32ms, 8 vCPUs -> ~8ms.
  auto run = [](int vcpus) {
    EventLoop loop;
    InstanceOptions o;
    o.vcpus = vcpus;
    Instance inst(&loop, o);
    for (int i = 0; i < 64; ++i) inst.Execute(Millis(1), [] {});
    loop.Run();
    return loop.now();
  };
  SimTime t2 = run(2);
  SimTime t8 = run(8);
  EXPECT_EQ(t2, Millis(32));
  EXPECT_EQ(t8, Millis(8));
}

TEST(InstanceTest, R3FamilyDoublesVcpus) {
  EXPECT_EQ(R3Large().vcpus, 2);
  EXPECT_EQ(R3XLarge().vcpus, 4);
  EXPECT_EQ(R32XLarge().vcpus, 8);
  EXPECT_EQ(R34XLarge().vcpus, 16);
  EXPECT_EQ(R38XLarge().vcpus, 32);
}

class FailureInjectorTest : public ::testing::Test {
 protected:
  FailureInjectorTest()
      : topo_(3),
        net_(&loop_, &topo_, FabricOptions{}, Random(2)),
        inj_(&loop_, &net_, &topo_, Random(3)) {
    for (int i = 0; i < 6; ++i) {
      NodeId n = topo_.AddNode(static_cast<AzId>(i / 2));
      nodes_.push_back(n);
      inj_.RegisterNode(n, {[this, n] { crashed_.push_back(n); },
                            [this, n] { restarted_.push_back(n); }});
    }
  }

  EventLoop loop_;
  Topology topo_;
  Network net_;
  FailureInjector inj_;
  std::vector<NodeId> nodes_;
  std::vector<NodeId> crashed_, restarted_;
};

TEST_F(FailureInjectorTest, CrashAndRestart) {
  inj_.CrashNode(nodes_[0], Seconds(5));
  EXPECT_TRUE(inj_.IsDown(nodes_[0]));
  EXPECT_EQ(crashed_.size(), 1u);
  loop_.Run();
  EXPECT_FALSE(inj_.IsDown(nodes_[0]));
  EXPECT_EQ(restarted_.size(), 1u);
  EXPECT_GE(loop_.now(), Seconds(5));
}

TEST_F(FailureInjectorTest, DoubleCrashIsIdempotent) {
  inj_.CrashNode(nodes_[0], Seconds(5));
  inj_.CrashNode(nodes_[0], Seconds(5));
  EXPECT_EQ(crashed_.size(), 1u);
  EXPECT_EQ(inj_.crashes_injected(), 1u);
}

TEST_F(FailureInjectorTest, AzFailureCrashesAllNodesInAz) {
  inj_.FailAz(1, Seconds(10));
  // Nodes 2 and 3 are in AZ 1.
  EXPECT_EQ(crashed_.size(), 2u);
  EXPECT_TRUE(net_.IsAzDown(1));
  loop_.Run();
  EXPECT_FALSE(net_.IsAzDown(1));
  EXPECT_EQ(restarted_.size(), 2u);
}

TEST_F(FailureInjectorTest, BackgroundNoiseInjectsFailures) {
  inj_.EnableBackgroundNoise(Minutes(10), Seconds(10));
  loop_.RunUntil(Minutes(60));
  inj_.DisableBackgroundNoise();
  // Fleet of 6 nodes, MTTF 10 min each -> ~36 failures/hour expected.
  EXPECT_GT(inj_.crashes_injected(), 10u);
  EXPECT_LT(inj_.crashes_injected(), 120u);
}

TEST_F(FailureInjectorTest, SlowNodeRestoresAfterDuration) {
  inj_.SlowNode(nodes_[0], 8.0, Seconds(1));
  // Measure delivery latency while slowed.
  SimTime t_slow = 0, t_fast = 0;
  net_.Register(nodes_[1], [&](const Message&) {
    if (t_slow == 0) {
      t_slow = loop_.now();
    } else {
      t_fast = loop_.now();
    }
  });
  SimTime sent1 = loop_.now();
  net_.Send(nodes_[0], nodes_[1], 0, "x");
  loop_.RunUntil(Seconds(2));
  SimTime sent2 = loop_.now();
  net_.Send(nodes_[0], nodes_[1], 0, "x");
  loop_.Run();
  EXPECT_GT(t_slow - sent1, (t_fast - sent2) * 3);
}

}  // namespace
}  // namespace aurora::sim
