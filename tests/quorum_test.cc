#include <gtest/gtest.h>

#include "common/random.h"
#include "quorum/availability.h"
#include "quorum/quorum.h"

namespace aurora {
namespace {

TEST(QuorumConfigTest, AuroraSchemeIsValid) {
  QuorumConfig q = QuorumConfig::Aurora();
  EXPECT_EQ(q.votes, 6);
  EXPECT_EQ(q.write_quorum, 4);
  EXPECT_EQ(q.read_quorum, 3);
  EXPECT_TRUE(q.Valid());
  EXPECT_EQ(q.write_fault_tolerance(), 2);  // lose an AZ, keep writing
  EXPECT_EQ(q.read_fault_tolerance(), 3);   // AZ+1, keep reading
}

TEST(QuorumConfigTest, TwoOfThreeIsValidButFragile) {
  QuorumConfig q = QuorumConfig::TwoOfThree();
  EXPECT_TRUE(q.Valid());
  EXPECT_EQ(q.write_fault_tolerance(), 1);
  EXPECT_EQ(q.read_fault_tolerance(), 1);
}

TEST(QuorumConfigTest, GiffordRulesRejectBadSchemes) {
  // Vr + Vw <= V: reads can miss the latest write.
  EXPECT_FALSE((QuorumConfig{6, 3, 3}.Valid()));
  // 2*Vw <= V: two conflicting writes can both "succeed".
  EXPECT_FALSE((QuorumConfig{6, 3, 4}.Valid()));
  EXPECT_FALSE((QuorumConfig{0, 0, 0}.Valid()));
  EXPECT_FALSE((QuorumConfig{6, 7, 3}.Valid()));
  EXPECT_TRUE((QuorumConfig{6, 6, 1}.Valid()));
  EXPECT_TRUE((QuorumConfig{3, 2, 2}.Valid()));
}

// Property sweep: every valid scheme guarantees read/write intersection.
TEST(QuorumConfigTest, ValidSchemesAlwaysIntersect) {
  for (int v = 1; v <= 9; ++v) {
    for (int w = 1; w <= v; ++w) {
      for (int r = 1; r <= v; ++r) {
        QuorumConfig q{v, w, r};
        if (!q.Valid()) continue;
        // Worst case: the read picks the r nodes least overlapping the
        // write's w nodes. Overlap = r + w - v must be >= 1.
        EXPECT_GE(r + w - v, 1) << v << "/" << w << "/" << r;
        EXPECT_GE(2 * w - v, 1);
      }
    }
  }
}

TEST(QuorumConfigTest, VotesBeyondTrackerCapacityRejected) {
  // Regression: Valid() used to accept any V while WriteTracker stores acks
  // in a bitset of kMaxVotes slots — Ack()/has_ack_from() on a larger
  // scheme indexed past the bitset (UB). Valid() is now bounded by the
  // tracker capacity.
  EXPECT_EQ(WriteTracker::kMaxVotes, kMaxQuorumVotes);
  EXPECT_TRUE((QuorumConfig{16, 9, 8}.Valid()));   // at the cap: fine
  EXPECT_FALSE((QuorumConfig{17, 9, 9}.Valid()));  // beyond it: rejected
  EXPECT_FALSE((QuorumConfig{32, 17, 16}.Valid()));
}

TEST(WriteTrackerTest, LargestValidQuorumStaysInBounds) {
  QuorumConfig q{16, 9, 8};
  ASSERT_TRUE(q.Valid());
  WriteTracker t(q);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(t.Ack(i));
  EXPECT_TRUE(t.Ack(8));  // the 9th ack crosses the quorum
  EXPECT_FALSE(t.has_ack_from(15));
  t.Ack(15);  // idx 15 is the last valid slot
  EXPECT_TRUE(t.has_ack_from(15));
  // Out-of-capacity indices are ignored even if a caller hands the tracker
  // an (invalid) oversized config directly.
  WriteTracker oversized(QuorumConfig{32, 17, 16});
  EXPECT_FALSE(oversized.Ack(20));
  EXPECT_FALSE(oversized.has_ack_from(20));
  EXPECT_EQ(oversized.acks(), 0);
}

TEST(WriteTrackerTest, AchievesAtExactlyWriteQuorum) {
  WriteTracker t(QuorumConfig::Aurora());
  EXPECT_FALSE(t.achieved());
  EXPECT_FALSE(t.Ack(0));
  EXPECT_FALSE(t.Ack(1));
  EXPECT_FALSE(t.Ack(2));
  EXPECT_TRUE(t.Ack(3));  // the 4th ack crosses the quorum
  EXPECT_TRUE(t.achieved());
  EXPECT_FALSE(t.Ack(4));  // further acks don't re-trigger
  EXPECT_EQ(t.acks(), 5);
}

TEST(WriteTrackerTest, DuplicateAndInvalidAcksIgnored) {
  WriteTracker t(QuorumConfig::Aurora());
  EXPECT_FALSE(t.Ack(2));
  EXPECT_FALSE(t.Ack(2));
  EXPECT_FALSE(t.Ack(2));
  EXPECT_FALSE(t.Ack(2));
  EXPECT_EQ(t.acks(), 1);
  EXPECT_FALSE(t.Ack(-1));
  EXPECT_FALSE(t.Ack(6));
  EXPECT_TRUE(t.has_ack_from(2));
  EXPECT_FALSE(t.has_ack_from(0));
}

TEST(AvailabilityTest, RepairTimeMatchesPaperExample) {
  // "A 10GB segment can be repaired in 10 seconds on a 10Gbps network".
  double secs = AvailabilityModel::RepairSeconds(10ull << 30, 10e9);
  EXPECT_NEAR(secs, 8.6, 1.5);  // 10 * 2^30 * 8 / 10e9
}

TEST(AvailabilityTest, AuroraSurvivesAzPlusNoiseFarBetterThanTwoOfThree) {
  DurabilityParams params;
  params.node_mttf_hours = 5000;
  params.segment_mttr_seconds = 10;
  AvailabilityModel aurora(QuorumConfig::Aurora(), params);
  AvailabilityModel classic(QuorumConfig::TwoOfThree(), params);
  double p_aurora = aurora.Analytic().az_plus_noise_loss_prob;
  double p_classic = classic.Analytic().az_plus_noise_loss_prob;
  // 2/3 with an AZ down has zero spare (certain loss on any noise... in
  // fact losing one AZ of a 3-replica scheme leaves 2 = exactly the read
  // quorum, so any concurrent failure kills it).
  EXPECT_LT(p_aurora, p_classic / 100);
}

TEST(AvailabilityTest, ShorterMttrShrinksLossProbability) {
  DurabilityParams fast, slow;
  fast.segment_mttr_seconds = 10;        // 10GB segment, §2.2
  slow.segment_mttr_seconds = 10 * 360;  // monolithic 3.6TB volume repair
  AvailabilityModel m_fast(QuorumConfig::Aurora(), fast);
  AvailabilityModel m_slow(QuorumConfig::Aurora(), slow);
  EXPECT_LT(m_fast.Analytic().pg_quorum_loss_prob,
            m_slow.Analytic().pg_quorum_loss_prob);
}

TEST(AvailabilityTest, MonteCarloAgreesOnOrdering) {
  DurabilityParams params;
  params.node_mttf_hours = 200;  // exaggerated failure rate for signal
  params.segment_mttr_seconds = 3600;
  params.horizon_hours = 24 * 30;
  Random rng(7);
  AvailabilityModel aurora(QuorumConfig::Aurora(), params);
  AvailabilityModel classic(QuorumConfig::TwoOfThree(), params);
  double p_aurora = aurora.MonteCarloLossProb(4000, 1.0 / 100, &rng);
  double p_classic = classic.MonteCarloLossProb(4000, 1.0 / 100, &rng);
  EXPECT_LE(p_aurora, p_classic);
}

}  // namespace
}  // namespace aurora
