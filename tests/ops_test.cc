#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cluster.h"
#include "storage/sim_s3.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing::Key;

// §2.3 "Operational Advantages of Resilience": OS/security patching is a
// brief unavailability event per storage node, executed one AZ at a time,
// never touching two members of a PG at once. The cluster must keep
// serving reads and writes throughout.
TEST(OpsTest, RollingOneAzAtATimePatchKeepsClusterAvailable) {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  o.storage_nodes_per_az = 3;
  // Patches are brief (500 ms) — well under the repair detection
  // threshold, so no re-replication churn.
  o.repair.detection_threshold = Seconds(5);
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  int committed = 0;
  int attempted = 0;
  for (sim::AzId az = 0; az < 3; ++az) {
    // Patch every storage host in this AZ (brief reboot), staggered.
    for (size_t i = 0; i < cluster.num_storage_nodes(); ++i) {
      sim::NodeId node = cluster.storage_node(i)->id();
      if (cluster.topology()->az_of(node) != az) continue;
      cluster.failure_injector()->CrashNode(node, Millis(500));
    }
    // Traffic while the AZ's hosts reboot.
    for (int i = 0; i < 20; ++i) {
      ++attempted;
      if (cluster.PutSync(table, Key(az * 100 + i), "v").ok()) ++committed;
    }
    cluster.RunFor(Seconds(1));  // AZ back before the next one starts
  }
  EXPECT_EQ(committed, attempted);
  EXPECT_EQ(cluster.repair_manager()->stats().started, 0u);
  // Everything written during the rolling patch is readable.
  for (sim::AzId az = 0; az < 3; ++az) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(cluster.GetSync(table, Key(az * 100 + i)).ok());
    }
  }
}

// Regression: BackupTick() used to upload only from replica 0 of each PG,
// so backups stalled forever while that one node was crashed. The uploader
// role now falls back to the lowest-index *live* replica (control-plane
// mediated).
TEST(OpsTest, BackupContinuesAfterDesignatedUploaderCrashes) {
  ClusterOptions o;
  o.engine.page_size = 4096;
  o.engine.pages_per_pg = 64;
  // Keep repair out of the picture: the fallback uploader must take over
  // long before any re-replication would repopulate replica 0.
  o.repair.detection_threshold = Minutes(10);
  AuroraCluster cluster(o);
  ASSERT_TRUE(cluster.BootstrapSync().ok());
  ASSERT_TRUE(cluster.CreateTableSync("t").ok());
  PageId table = *cluster.TableAnchorSync("t");

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v").ok());
  }
  cluster.RunFor(Seconds(2));  // several backup intervals
  const size_t objects_before = cluster.s3()->ListKeys("backup/pg000000/").size();
  EXPECT_GT(objects_before, 0u);

  // Crash the designated uploader of PG 0 and keep writing.
  sim::NodeId uploader = cluster.control_plane()->membership(0).nodes[0];
  cluster.storage_node_by_id(uploader)->Crash();
  for (int i = 30; i < 60; ++i) {
    ASSERT_TRUE(cluster.PutSync(table, Key(i), "v").ok());
  }
  cluster.RunFor(Seconds(3));

  // Backup objects kept flowing while replica 0 stayed down.
  const size_t objects_after = cluster.s3()->ListKeys("backup/pg000000/").size();
  EXPECT_GT(objects_after, objects_before);
  EXPECT_TRUE(cluster.storage_node_by_id(uploader)->crashed());
}

TEST(SimS3Test, PutGetListSemantics) {
  sim::EventLoop loop;
  SimS3 s3(&loop, SimS3::Options{}, Random(1));
  bool put_done = false;
  s3.Put("a/1", "one", [&](Status s) {
    EXPECT_TRUE(s.ok());
    put_done = true;
  });
  s3.Put("a/2", "two", [](Status) {});
  s3.Put("b/1", "bee", [](Status) {});
  loop.Run();
  EXPECT_TRUE(put_done);
  EXPECT_EQ(s3.num_objects(), 3u);
  EXPECT_EQ(s3.bytes_stored(), 9u);

  Result<std::string> got = Status::NotFound("");
  s3.Get("a/2", [&](Result<std::string> r) { got = std::move(r); });
  loop.Run();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "two");

  auto keys = s3.ListKeys("a/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a/1");
  EXPECT_TRUE(s3.ListKeys("zzz").empty());
  EXPECT_TRUE(s3.GetSync("missing").status().IsNotFound());

  // Overwrite adjusts accounting.
  s3.Put("a/1", "longer-value", [](Status) {});
  loop.Run();
  EXPECT_EQ(s3.num_objects(), 3u);
  EXPECT_EQ(s3.bytes_stored(), 3u + 3u + 12u);
}

TEST(SimS3Test, LatencyIsSimulated) {
  sim::EventLoop loop;
  SimS3::Options opts;
  opts.put_latency = Millis(20);
  opts.jitter_sigma = 0.0;
  SimS3 s3(&loop, opts, Random(1));
  SimTime done_at = 0;
  s3.Put("k", "v", [&](Status) { done_at = loop.now(); });
  loop.Run();
  EXPECT_GE(done_at, Millis(20));
}

}  // namespace
}  // namespace aurora
