// Table 1: "Network IOs for Aurora vs MySQL" — SysBench write-only against
// a 100 GB data set; the paper reports transactions completed in 30 minutes
// and network I/Os per transaction at the database tier:
//
//     Configuration       Transactions   IOs/Transaction
//     Mirrored MySQL           780,000        7.4
//     Aurora with Replicas  27,378,000        0.95
//
// Here a transaction is one SysBench write-only transaction (4 statements).
// "I/Os per transaction" counts database-tier network operations: for
// mirrored MySQL each WAL/binlog/page/double-write chain write (per Figure
// 2); for Aurora, log-batch sends (whose 6-way fan-out is amplification at
// the storage tier, not extra database I/O initiation — matching how the
// paper counts 0.95 despite six copies).

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run() {
  PrintHeader("Table 1: Network IOs for Aurora vs MySQL",
              "Table 1 (SysBench write-only, 100GB, §3.2)");

  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kWriteOnly;
  sopts.connections = 32;
  sopts.duration = Seconds(2);
  sopts.warmup = Millis(500);
  const uint64_t rows = RowsForGb(100);

  // Mirrored MySQL.
  MysqlRun mysql = RunMysqlSysbench(StandardMysqlOptions(), sopts, rows);
  const auto& ms = mysql.cluster->db()->stats();
  // Database-tier write issuances (each chain counted once, as the paper
  // does: WAL + binlog + data page + double-write; mirror/standby copies
  // are amplification, not initiation).
  uint64_t mysql_chains = ms.wal_flushes + ms.binlog_writes + ms.page_writes +
                          ms.dwb_writes;
  double mysql_ios_per_txn =
      mysql.results.txns ? static_cast<double>(mysql_chains) /
                               static_cast<double>(mysql.results.txns)
                         : 0;

  // Aurora (with replicas across AZs, like the paper's configuration).
  ClusterOptions aopts = StandardAuroraOptions();
  aopts.num_replicas = 2;
  AuroraRun aurora = RunAuroraSysbench(aopts, sopts, rows);
  const auto& as = aurora.cluster->writer()->stats();
  double aurora_ios_per_txn =
      aurora.results.txns ? static_cast<double>(as.log_batches_sent) /
                                static_cast<double>(aurora.results.txns)
                          : 0;

  printf("%-22s %14s %18s\n", "Configuration", "Transactions",
         "IOs/Transaction");
  printf("%-22s %14llu %18.2f\n", "Mirrored MySQL",
         static_cast<unsigned long long>(mysql.results.txns),
         mysql_ios_per_txn);
  printf("%-22s %14llu %18.2f\n", "Aurora with Replicas",
         static_cast<unsigned long long>(aurora.results.txns),
         aurora_ios_per_txn);
  printf("\nThroughput ratio (Aurora/MySQL): %.1fx   (paper: 35x)\n",
         mysql.results.txns
             ? static_cast<double>(aurora.results.txns) /
                   static_cast<double>(mysql.results.txns)
             : 0);
  printf("IO-per-txn ratio (MySQL/Aurora): %.1fx  (paper: 7.7x)\n",
         aurora_ios_per_txn ? mysql_ios_per_txn / aurora_ios_per_txn : 0);

  // Per-storage-node view: each of the six replicas sees unamplified
  // writes (the paper's "46x fewer I/Os requiring processing at this
  // tier").
  uint64_t batches_received = 0;
  for (size_t i = 0; i < aurora.cluster->num_storage_nodes(); ++i) {
    batches_received += aurora.cluster->storage_node(i)->stats()
                            .batches_received;
  }
  printf("\nAurora storage tier: %llu batch receipts across the fleet "
         "(%.2f per transaction per replica)\n",
         static_cast<unsigned long long>(batches_received),
         aurora.results.txns ? static_cast<double>(batches_received) / 6.0 /
                                   static_cast<double>(aurora.results.txns)
                             : 0);

  BenchReport report("table1_network_ios");
  report.Result("mysql.txns", static_cast<double>(mysql.results.txns));
  report.Result("mysql.ios_per_txn", mysql_ios_per_txn);
  report.Result("aurora.txns", static_cast<double>(aurora.results.txns));
  report.Result("aurora.ios_per_txn", aurora_ios_per_txn);
  report.Result("aurora.storage_batch_receipts",
                static_cast<double>(batches_received));
  report.Result("ratio.throughput",
                mysql.results.txns
                    ? static_cast<double>(aurora.results.txns) /
                          static_cast<double>(mysql.results.txns)
                    : 0);
  report.Result("ratio.ios_per_txn",
                aurora_ios_per_txn ? mysql_ios_per_txn / aurora_ios_per_txn
                                   : 0);
  report.AttachCluster("aurora", aurora.cluster.get());
  // Symmetric dump of the baseline: engine.mysql.* carries the WAL /
  // double-write / binlog counters the IOs-per-txn headline is computed
  // from, so the amplification claim is auditable from the JSON alone.
  report.AttachRegistry("mysql", mysql.cluster->metrics());
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
