// Table 5: "Percona TPC-C Variant (tpmC)" — hot-row contention:
//
//     Conns/Size/WH       Aurora   MySQL 5.6   MySQL 5.7
//     500/10GB/100        73,955     6,093       25,289
//     5000/10GB/100       42,181     1,671        2,592
//     500/100GB/1000      70,663     3,231       11,868
//     5000/100GB/1000     30,221     5,575       13,005
//
// The real lock manager provides the contention; Aurora's advantage is that
// lock hold times exclude synchronous log flushing.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "workload/tpcc.h"

namespace aurora::bench {
namespace {

struct Config {
  int connections;
  const char* size;
  const char* size_key;  // lowercase, for metric names
  int warehouses;
};

template <typename Cluster, typename Client>
double RunTpcc(Cluster* cluster, Client* client, const Config& cfg) {
  TpccTables tables;
  const char* names[] = {"warehouse", "district", "customer", "stock",
                         "orders"};
  PageId* anchors[] = {&tables.warehouse, &tables.district, &tables.customer,
                       &tables.stock, &tables.orders};
  for (int i = 0; i < 5; ++i) {
    if (!cluster->CreateTableSync(names[i]).ok()) return -1;
    auto a = cluster->TableAnchorSync(names[i]);
    if (!a.ok()) return -1;
    *anchors[i] = *a;
  }
  TpccOptions topts;
  topts.warehouses = cfg.warehouses;
  topts.connections = cfg.connections;
  topts.customers_per_district = 10;
  topts.stock_items = 200;
  topts.duration = Seconds(3);
  topts.warmup = Millis(500);
  TpccDriver driver(cluster->writer_loop(), client, tables, topts);
  bool loaded = false;
  Status ls = Status::TimedOut("load");
  driver.Load([&](Status s) {
    ls = s;
    loaded = true;
  });
  cluster->RunUntil([&] { return loaded; }, Minutes(60));
  if (!ls.ok()) {
    fprintf(stderr, "tpcc load failed: %s\n", ls.ToString().c_str());
    return -1;
  }
  bool done = false;
  driver.Run([&] { done = true; });
  cluster->RunUntil([&] { return done; }, Minutes(120));
  return driver.results().tpmC();
}

void Run(int sim_shards) {
  PrintHeader("Table 5: Percona TPC-C variant (tpmC)", "Table 5 (§6.1.5)");

  // Warehouse counts scaled 1/10 (contention intensity preserved by also
  // scaling connections per warehouse in the 5000-connection rows).
  const Config configs[] = {{500, "10GB", "10gb", 10},
                            {2000, "10GB", "10gb", 10},
                            {500, "100GB", "100gb", 100},
                            {2000, "100GB", "100gb", 100}};

  BenchReport report("table5_tpcc");
  printf("%-22s %12s %12s\n", "Connections/Size/WH", "Aurora", "MySQL 5.6");
  for (const Config& cfg : configs) {
    ClusterOptions aopts = StandardAuroraOptions();
    aopts.sim_shards = sim_shards;
    AuroraCluster aurora(aopts);
    if (!aurora.BootstrapSync().ok()) continue;
    AuroraClient aclient(aurora.writer());
    double a_tpmc = RunTpcc(&aurora, &aclient, cfg);

    MysqlClusterOptions mopts = StandardMysqlOptions();
    mopts.sim_shards = sim_shards;
    mopts.mysql.cpu_contention_per_connection_us = 0.05;
    MysqlCluster mysql(mopts);
    if (!mysql.BootstrapSync().ok()) continue;
    MysqlClient mclient(mysql.db());
    double m_tpmc = RunTpcc(&mysql, &mclient, cfg);

    char label[64];
    snprintf(label, sizeof(label), "%d/%s/%d", cfg.connections, cfg.size,
             cfg.warehouses);
    printf("%-22s %12.0f %12.0f\n", label, a_tpmc, m_tpmc);
    std::string prefix = "c" + std::to_string(cfg.connections) + "_" +
                         cfg.size_key + "_wh" + std::to_string(cfg.warehouses);
    report.Result(prefix + ".aurora_tpmc", a_tpmc);
    report.Result(prefix + ".mysql_tpmc", m_tpmc);
    report.AttachSnapshot(prefix + ".aurora", aurora.metrics()->Snapshot());
    report.AttachSnapshot(prefix + ".mysql", mysql.metrics()->Snapshot());
  }
  printf("\nExpected shape: Aurora 2.3x-16x MySQL everywhere; both drop\n");
  printf("at the highest connection count (lock contention), Aurora less.\n");
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
