// Figure 6: "Aurora scales linearly for read-only workload" — SysBench
// read-only on a 1GB (250-table) data set across the r3 instance family.
// The paper shows Aurora reaching 600K reads/sec on r3.8xlarge, roughly
// doubling per size step, ~5x MySQL 5.7's 120K.

#include <cstdio>

#include <string>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

// Metric keys use '.' as a path separator, so "r3.8xlarge" becomes
// "r3_8xlarge" in the report.
std::string MetricName(const std::string& instance) {
  std::string out = instance;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

void Run() {
  PrintHeader("Figure 6: read-only statements/sec vs instance size",
              "Figure 6 (SysBench read-only, 1GB, §6.1.1)");

  const sim::InstanceOptions sizes[] = {sim::R3Large(), sim::R3XLarge(),
                                        sim::R32XLarge(), sim::R34XLarge(),
                                        sim::R38XLarge()};
  // "1 GB" of the paper has ~10M rows; keep the rows-per-connection ratio
  // sane at the simulated scale by using 10 scale-GB of rows (still fully
  // cache-resident, as in the paper's 1GB configuration).
  const uint64_t rows = RowsForGb(10);

  BenchReport report("fig6_read_scaling");
  AuroraRun last_aurora;  // largest instance, kept alive for the dump

  printf("%-12s %6s %16s %16s\n", "instance", "vcpus", "aurora reads/s",
         "mysql reads/s");
  for (const auto& inst : sizes) {
    SysbenchOptions sopts;
    sopts.mode = SysbenchOptions::Mode::kReadOnly;
    // Enough closed-loop connections to saturate each size.
    sopts.connections = inst.vcpus * 4;
    sopts.duration = Millis(1500);
    sopts.warmup = Millis(300);

    ClusterOptions aopts = StandardAuroraOptions();
    aopts.writer_instance = inst;
    AuroraRun aurora = RunAuroraSysbench(aopts, sopts, rows);

    MysqlClusterOptions mopts = StandardMysqlOptions();
    mopts.instance = inst;
    // Reads contend on the shared buffer-pool mutexes in MySQL.
    mopts.mysql.cpu_contention_per_connection_us = 0.3;
    MysqlRun mysql = RunMysqlSysbench(mopts, sopts, rows);

    printf("%-12s %6d %16.0f %16.0f\n", inst.name.c_str(), inst.vcpus,
           aurora.results.reads_per_sec(), mysql.results.reads_per_sec());

    const std::string key = MetricName(inst.name);
    report.Result("aurora." + key + ".reads_per_sec",
                  aurora.results.reads_per_sec());
    report.Result("mysql." + key + ".reads_per_sec",
                  mysql.results.reads_per_sec());
    last_aurora = std::move(aurora);
  }
  // Full cluster dump for the largest instance: carries the storage-fleet
  // counters (storage.page_cache.*, IO totals) behind the headline curve.
  report.AttachCluster("aurora", last_aurora.cluster.get());
  report.Write();

  printf("\nExpected shape: Aurora roughly doubles per size step and tops\n");
  printf("out well above MySQL (paper: 600K vs 120K reads/sec at 8xl).\n");
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
