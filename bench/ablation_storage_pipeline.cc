// Ablation: the storage node's background/foreground decoupling (§3.3,
// Figure 4). "In Aurora, background processing has negative correlation
// with foreground processing" — coalescing, GC and scrubbing yield while
// the disk backlog is high. Compare foreground write latency with the
// yield enabled vs background work forced to compete.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void RunOne(const char* label, const char* key, bool yield_enabled,
            int sim_shards, BenchReport* report) {
  ClusterOptions copts = StandardAuroraOptions();
  copts.sim_shards = sim_shards;
  // Constrain storage devices so background work genuinely competes with
  // foreground batch persistence.
  copts.storage.disk.max_iops = 1200;
  copts.storage.disk.bandwidth_bps = 40e6;
  copts.storage.coalesce_interval = Millis(1);
  copts.storage.coalesce_batch = 4096;
  copts.storage.gc_interval = Millis(10);
  if (yield_enabled) {
    copts.storage.background_backlog_limit = Millis(1);
  } else {
    // Never defer: background always runs, even under foreground pressure.
    copts.storage.background_backlog_limit = Minutes(60);
  }
  AuroraCluster cluster(copts);
  if (!cluster.BootstrapSync().ok()) return;
  SyntheticCatalog catalog;
  auto layout =
      AttachSyntheticTable(&cluster, &catalog, "t", RowsForGb(1), kRowBytes);
  if (!layout.ok()) return;
  AuroraClient client(cluster.writer());
  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kWriteOnly;
  sopts.connections = 32;
  sopts.duration = Seconds(2);
  sopts.warmup = Millis(300);
  SysbenchDriver driver(cluster.writer_loop(), &client, (*layout)->anchor(), sopts);
  bool done = false;
  driver.Run([&] { done = true; });
  cluster.RunUntil([&] { return done; }, Minutes(30));

  uint64_t deferrals = 0, coalesced = 0;
  for (size_t i = 0; i < cluster.num_storage_nodes(); ++i) {
    deferrals += cluster.storage_node(i)->stats().background_deferrals;
    coalesced += cluster.storage_node(i)->stats().records_coalesced;
  }
  const Histogram& commit = cluster.writer()->stats().commit_latency_us;
  printf("%-22s %10.0f %12.2f %12.2f %11llu %11llu\n", label,
         driver.results().writes_per_sec(), ToMillis(commit.P50()),
         ToMillis(commit.P99()),
         static_cast<unsigned long long>(deferrals),
         static_cast<unsigned long long>(coalesced));
  std::string prefix(key);
  report->Result(prefix + ".writes_per_sec",
                 driver.results().writes_per_sec());
  report->Result(prefix + ".commit_p50_ms", ToMillis(commit.P50()));
  report->Result(prefix + ".commit_p99_ms", ToMillis(commit.P99()));
  report->Result(prefix + ".background_deferrals",
                 static_cast<double>(deferrals));
  report->Result(prefix + ".records_coalesced",
                 static_cast<double>(coalesced));
  report->AttachSnapshot(prefix + ".cluster", cluster.metrics()->Snapshot());
}

void Run(int sim_shards) {
  PrintHeader(
      "Ablation: background work yields to foreground (storage pipeline)",
      "§3.3 / Figure 4");
  printf("%-22s %10s %12s %12s %11s %11s\n", "config", "writes/s",
         "commit p50", "commit p99", "deferrals", "coalesced");
  BenchReport report("ablation_storage_pipeline");
  RunOne("yield (Aurora)", "yield", true, sim_shards, &report);
  RunOne("always-run (naive)", "always_run", false, sim_shards, &report);
  printf("\nExpected shape: with the yield, foreground commit tail is\n");
  printf("tighter; the naive node burns disk on coalescing while the\n");
  printf("foreground queue builds (the positive-correlation trap of\n");
  printf("traditional checkpointing).\n");
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
