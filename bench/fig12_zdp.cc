// Figure 12: "Zero-Downtime Patching" (§7.4) — ZDP waits for an instant
// with no active transactions, spools application state, patches the
// engine, reloads — while user sessions remain connected and unaware. The
// comparison is an engine restart, which drops every session and runs
// recovery before serving again.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run() {
  PrintHeader("Figure 12: zero-downtime patching vs engine restart",
              "Figure 12 (§7.4)");

  const uint64_t rows = RowsForGb(1);
  const SimDuration patch_time = Millis(200);

  // --- ZDP path: patch mid-workload -------------------------------------
  ClusterOptions copts = StandardAuroraOptions();
  AuroraCluster cluster(copts);
  if (!cluster.BootstrapSync().ok()) return;
  SyntheticCatalog catalog;
  auto layout = AttachSyntheticTable(&cluster, &catalog, "t", rows,
                                     kRowBytes);
  if (!layout.ok()) return;
  AuroraClient client(cluster.writer());
  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kOltp;
  sopts.connections = 16;
  sopts.duration = Seconds(4);
  sopts.warmup = Millis(200);
  SysbenchDriver driver(cluster.writer_loop(), &client, (*layout)->anchor(), sopts);
  bool done = false;
  driver.Run([&] { done = true; });

  bool patched = false;
  SimTime patch_started = 0, patch_finished = 0;
  cluster.loop()->Schedule(Seconds(2), [&] {
    patch_started = cluster.loop()->now();
    cluster.writer()->ZeroDowntimePatch(patch_time, [&](Status s) {
      patched = s.ok();
      patch_finished = cluster.loop()->now();
    });
  });
  cluster.RunUntil([&] { return done; }, Minutes(30));

  printf("ZDP during live OLTP load:\n");
  printf("  patch applied:            %s\n", patched ? "yes" : "NO");
  printf("  engine pause:             %.1f ms (quiesce + patch + reload)\n",
         ToMillis(patch_finished - patch_started));
  printf("  sessions dropped:         0 of %d\n", sopts.connections);
  printf("  transaction errors:       %llu\n",
         static_cast<unsigned long long>(driver.results().errors));
  printf("  txn latency p99 over run: %.1f ms (pause absorbed as a blip)\n",
         ToMillis(driver.results().txn_latency_us.P99()));

  BenchReport report("fig12_zdp");
  report.Result("zdp.patch_applied", patched ? 1 : 0);
  report.Result("zdp.pause_ms", ToMillis(patch_finished - patch_started));
  report.Result("zdp.sessions_dropped", 0);
  report.Result("zdp.txn_errors",
                static_cast<double>(driver.results().errors));
  report.Result("zdp.txn_p99_ms",
                ToMillis(driver.results().txn_latency_us.P99()));
  report.ResultHistogram("zdp.txn_latency_us",
                         &driver.results().txn_latency_us);
  report.AttachCluster("aurora", &cluster);

  // --- Restart path: what customers see without ZDP ----------------------
  AuroraCluster restart_cluster(copts);
  if (!restart_cluster.BootstrapSync().ok()) return;
  SyntheticCatalog catalog2;
  auto l2 = AttachSyntheticTable(&restart_cluster, &catalog2, "t", rows,
                                 kRowBytes);
  if (!l2.ok()) return;
  for (int i = 0; i < 50; ++i) {
    (void)restart_cluster.PutSync((*l2)->anchor(),
                                  SyntheticTableLayout::KeyOf(i), "v");
  }
  SimTime t0 = restart_cluster.loop()->now();
  restart_cluster.CrashWriter();
  restart_cluster.RunFor(patch_time);  // installing the patch while down
  (void)restart_cluster.RecoverSync();
  SimTime downtime = restart_cluster.loop()->now() - t0;
  printf("\nEngine restart (no ZDP):\n");
  printf("  sessions dropped:         ALL (every client reconnects; the\n");
  printf("                            buffer cache restarts cold)\n");
  printf("  downtime (patch+recovery): %.1f ms\n", ToMillis(downtime));
  printf("\nPaper: ~30s planned downtime every ~6 weeks without ZDP; with\n");
  printf("ZDP, sessions remain active and oblivious.\n");
  report.Result("restart.sessions_dropped", sopts.connections);
  report.Result("restart.downtime_ms", ToMillis(downtime));
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
