// Micro-benchmarks (google-benchmark) for the hot data-path primitives:
// redo encode/decode, CRC32C, the log applicator, slotted-page ops and
// B+-tree point operations. These bound the simulated engine's CPU cost
// model and catch data-path regressions.

#include <benchmark/benchmark.h>

#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/crc32c.h"
#include "log/applicator.h"
#include "log/log_record.h"
#include "page/btree.h"
#include "page/page.h"
#include "storage/segment.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(16384);

void BM_LogRecordEncodeDecode(benchmark::State& state) {
  LogRecord rec;
  rec.lsn = 123456789;
  rec.prev_pg_lsn = 123456000;
  rec.prev_vol_lsn = 123456700;
  rec.page_id = 42;
  rec.txn_id = 7;
  rec.op = RedoOp::kUpdate;
  rec.payload = LogRecord::MakeKeyValuePayload("key0000000000001",
                                               std::string(100, 'v'));
  for (auto _ : state) {
    std::string buf;
    rec.EncodeTo(&buf);
    Slice in(buf);
    LogRecord out;
    benchmark::DoNotOptimize(LogRecord::DecodeFrom(&in, &out));
  }
}
BENCHMARK(BM_LogRecordEncodeDecode);

void BM_ApplicatorApply(benchmark::State& state) {
  Page page(16384);
  page.Format(1, PageType::kBTreeLeaf, 0);
  Lsn lsn = 1;
  int i = 0;
  for (auto _ : state) {
    LogRecord rec;
    rec.lsn = ++lsn;
    rec.page_id = 1;
    rec.op = RedoOp::kUpdate;
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i % 100);
    if (page.slot_count() <= i % 100) {
      rec.op = RedoOp::kInsert;
    }
    rec.payload =
        LogRecord::MakeKeyValuePayload(key, std::string(40, 'a' + i % 26));
    Status s = LogApplicator::Apply(rec, &page);
    benchmark::DoNotOptimize(s);
    ++i;
    if (page.FreeSpace() < 256) {
      page.Format(1, PageType::kBTreeLeaf, 0);
      i = 0;
    }
  }
}
BENCHMARK(BM_ApplicatorApply);

void BM_PagePointLookup(benchmark::State& state) {
  Page page(16384);
  page.Format(1, PageType::kBTreeLeaf, 0);
  for (int i = 0; i < 100; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    (void)page.InsertRecord(key, std::string(40, 'v'));
  }
  int i = 0;
  for (auto _ : state) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i++ % 100);
    Slice v;
    benchmark::DoNotOptimize(page.GetRecord(key, &v));
  }
}
BENCHMARK(BM_PagePointLookup);

void BM_BTreeGet(benchmark::State& state) {
  testing::MemoryPageProvider provider(16384);
  testing::LocalWalSink sink;
  MiniTransaction boot(0);
  auto anchor = BTree::Create(&provider, &boot);
  (void)sink.CommitMtr(&boot);
  BTree tree(&provider, *anchor);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    MiniTransaction mtr(1);
    (void)tree.Insert(testing::Key(i), std::string(100, 'v'), &mtr);
    (void)sink.CommitMtr(&mtr);
  }
  int i = 0;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(testing::Key(i++ % n), &value));
  }
}
BENCHMARK(BM_BTreeGet)->Arg(1000)->Arg(100000);

void BM_BTreeInsert(benchmark::State& state) {
  testing::MemoryPageProvider provider(16384);
  testing::LocalWalSink sink;
  MiniTransaction boot(0);
  auto anchor = BTree::Create(&provider, &boot);
  (void)sink.CommitMtr(&boot);
  BTree tree(&provider, *anchor);
  uint64_t i = 0;
  for (auto _ : state) {
    MiniTransaction mtr(1);
    Status s = tree.Insert(testing::Key(i++), std::string(100, 'v'), &mtr);
    benchmark::DoNotOptimize(s);
    (void)sink.CommitMtr(&mtr);
  }
}
BENCHMARK(BM_BTreeInsert);

// Storage-node page reconstruction with the LSN-versioned cache off (arg 0)
// vs on (arg 1). Cache off replays the page's full redo chain on every
// read; cache on serves repeated reads at the same read point from the
// cached image (a full hit after the first miss).
void BM_SegmentGetPageAsOf(benchmark::State& state) {
  constexpr size_t kPageSize = 16384;
  constexpr int kPages = 4;
  constexpr int kRecords = 256;
  Segment seg(0, kPageSize);
  if (state.range(0) != 0) seg.set_page_cache_budget(64 * kPageSize);
  Lsn prev = kInvalidLsn;
  for (int i = 0; i < kRecords; ++i) {
    LogRecord r;
    r.lsn = 100 + static_cast<Lsn>(i) * 10;
    r.prev_pg_lsn = prev;
    r.prev_vol_lsn = prev;
    r.page_id = static_cast<PageId>(i % kPages);
    r.txn_id = 1;
    if (i < kPages) {
      r.op = RedoOp::kFormatPage;
      r.payload = LogRecord::MakeFormatPayload(
          static_cast<uint8_t>(PageType::kBTreeLeaf), 0);
    } else {
      r.op = RedoOp::kInsert;
      r.payload = LogRecord::MakeKeyValuePayload("k" + std::to_string(i),
                                                 std::string(64, 'v'));
    }
    prev = r.lsn;
    seg.AddRecord(r);
  }
  const Lsn rp = seg.scl();
  PageId page = 0;
  for (auto _ : state) {
    auto result = seg.GetPageAsOf(page, rp);
    benchmark::DoNotOptimize(result);
    page = static_cast<PageId>((page + 1) % kPages);
  }
}
BENCHMARK(BM_SegmentGetPageAsOf)->Arg(0)->Arg(1);

}  // namespace
}  // namespace aurora

namespace {

/// Console reporter that additionally captures per-benchmark timings so
/// they can be emitted through the metrics registry as BENCH_*.json.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      captured.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<std::pair<std::string, double>> captured;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  aurora::bench::BenchReport report("micro_core");
  for (const auto& [name, real_time_ns] : reporter.captured) {
    // Benchmark names ("BM_Crc32c/4096") become one leaf per benchmark.
    report.Result(name + ".real_time_ns", real_time_ns);
  }
  report.Write();
  return 0;
}
