#ifndef AURORA_BENCH_BENCH_UTIL_H_
#define AURORA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "harness/bulk_load.h"
#include "harness/scale.h"
#include "harness/client_api.h"
#include "harness/cluster.h"
#include "harness/mysql_cluster.h"
#include "harness/synthetic_table.h"
#include "workload/sysbench.h"

namespace aurora::bench {

// ---------------------------------------------------------------------------
// Scale constants (see DESIGN.md §5 and EXPERIMENTS.md).
//
// The paper's testbed is r3.8xlarge instances against multi-terabyte
// volumes over 30-minute runs; the simulation runs the same protocols at a
// documented reduction so whole-cluster experiments finish in seconds of
// wall-clock. Shapes (ratios, crossovers) are the reproduction target, not
// absolute numbers.
// ---------------------------------------------------------------------------

// Scale constants live in harness/scale.h (shared with tests and docs).
using scale::kCachePagesFor170Gb;
using scale::kPageSize;
using scale::kRowBytes;
using scale::kRowsPerGb;
/// Default measured window (the paper uses 30-minute runs).
constexpr SimDuration kMeasure = Seconds(5);
constexpr SimDuration kWarmup = Seconds(1);

using scale::RowsForGb;

inline ClusterOptions StandardAuroraOptions() {
  ClusterOptions o;
  o.engine.page_size = kPageSize;
  o.engine.pages_per_pg = 2048;
  o.engine.buffer_pool_pages = kCachePagesFor170Gb;
  o.storage_nodes_per_az = 4;
  return o;
}

inline MysqlClusterOptions StandardMysqlOptions() {
  MysqlClusterOptions o;
  o.mysql.engine.page_size = kPageSize;
  o.mysql.engine.buffer_pool_pages = kCachePagesFor170Gb;
  return o;
}

/// A complete Aurora benchmark run: the cluster stays alive so callers can
/// inspect stats after the workload finishes.
struct AuroraRun {
  std::unique_ptr<AuroraCluster> cluster;
  std::unique_ptr<SyntheticCatalog> catalog;
  PageId table = kInvalidPage;
  WorkloadResults results;
  bool ok = false;
};

inline AuroraRun RunAuroraSysbench(ClusterOptions copts,
                                   SysbenchOptions sopts, uint64_t rows) {
  AuroraRun run;
  run.cluster = std::make_unique<AuroraCluster>(copts);
  run.catalog = std::make_unique<SyntheticCatalog>();
  Status s = run.cluster->BootstrapSync();
  if (!s.ok()) {
    fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return run;
  }
  auto layout = AttachSyntheticTable(run.cluster.get(), run.catalog.get(),
                                     "sbtest", rows, kRowBytes);
  if (!layout.ok()) {
    fprintf(stderr, "attach failed: %s\n", layout.status().ToString().c_str());
    return run;
  }
  run.table = (*layout)->anchor();
  sopts.table_rows = rows;
  sopts.value_size = kRowBytes;
  AuroraClient client(run.cluster->writer());
  SysbenchDriver driver(run.cluster->loop(), &client, run.table, sopts);
  bool done = false;
  driver.Run([&] { done = true; });
  run.cluster->RunUntil([&] { return done; }, Minutes(60));
  run.results = driver.results();
  run.ok = done;
  return run;
}

struct MysqlRun {
  std::unique_ptr<MysqlCluster> cluster;
  std::unique_ptr<SyntheticCatalog> catalog;
  PageId table = kInvalidPage;
  WorkloadResults results;
  bool ok = false;
};

inline MysqlRun RunMysqlSysbench(MysqlClusterOptions copts,
                                 SysbenchOptions sopts, uint64_t rows) {
  MysqlRun run;
  run.cluster = std::make_unique<MysqlCluster>(copts);
  run.catalog = std::make_unique<SyntheticCatalog>();
  Status s = run.cluster->BootstrapSync();
  if (!s.ok()) {
    fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return run;
  }
  auto layout = AttachSyntheticTableMysql(run.cluster.get(),
                                          run.catalog.get(), "sbtest", rows,
                                          kRowBytes);
  if (!layout.ok()) {
    fprintf(stderr, "attach failed: %s\n", layout.status().ToString().c_str());
    return run;
  }
  run.table = (*layout)->anchor();
  sopts.table_rows = rows;
  sopts.value_size = kRowBytes;
  MysqlClient client(run.cluster->db());
  SysbenchDriver driver(run.cluster->loop(), &client, run.table, sopts);
  bool done = false;
  driver.Run([&] { done = true; });
  run.cluster->RunUntil([&] { return done; }, Minutes(120));
  run.results = driver.results();
  run.ok = done;
  return run;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  printf("==============================================================\n");
  printf("%s\n", title);
  printf("  (reproduces %s; simulated scale — compare shapes, not\n",
         paper_ref);
  printf("   absolute values; see EXPERIMENTS.md)\n");
  printf("==============================================================\n");
}

}  // namespace aurora::bench

#endif  // AURORA_BENCH_BENCH_UTIL_H_
