#ifndef AURORA_BENCH_BENCH_UTIL_H_
#define AURORA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "harness/bulk_load.h"
#include "harness/scale.h"
#include "harness/client_api.h"
#include "harness/cluster.h"
#include "harness/mysql_cluster.h"
#include "harness/synthetic_table.h"
#include "workload/sysbench.h"

namespace aurora::bench {

// ---------------------------------------------------------------------------
// Scale constants (see DESIGN.md §5 and EXPERIMENTS.md).
//
// The paper's testbed is r3.8xlarge instances against multi-terabyte
// volumes over 30-minute runs; the simulation runs the same protocols at a
// documented reduction so whole-cluster experiments finish in seconds of
// wall-clock. Shapes (ratios, crossovers) are the reproduction target, not
// absolute numbers.
// ---------------------------------------------------------------------------

// Scale constants live in harness/scale.h (shared with tests and docs).
using scale::kCachePagesFor170Gb;
using scale::kPageSize;
using scale::kRowBytes;
using scale::kRowsPerGb;
/// Default measured window (the paper uses 30-minute runs).
constexpr SimDuration kMeasure = Seconds(5);
constexpr SimDuration kWarmup = Seconds(1);

using scale::RowsForGb;

inline ClusterOptions StandardAuroraOptions() {
  ClusterOptions o;
  o.engine.page_size = kPageSize;
  o.engine.pages_per_pg = 2048;
  o.engine.buffer_pool_pages = kCachePagesFor170Gb;
  o.storage_nodes_per_az = 4;
  return o;
}

inline MysqlClusterOptions StandardMysqlOptions() {
  MysqlClusterOptions o;
  o.mysql.engine.page_size = kPageSize;
  o.mysql.engine.buffer_pool_pages = kCachePagesFor170Gb;
  return o;
}

/// A complete Aurora benchmark run: the cluster stays alive so callers can
/// inspect stats after the workload finishes.
struct AuroraRun {
  std::unique_ptr<AuroraCluster> cluster;
  std::unique_ptr<SyntheticCatalog> catalog;
  PageId table = kInvalidPage;
  WorkloadResults results;
  /// Per-interval registry diffs (when `window_interval` > 0): a sim-time
  /// series of every cluster metric across the measured window.
  std::vector<MetricsSnapshot> windows;
  bool ok = false;
};

inline AuroraRun RunAuroraSysbench(ClusterOptions copts, SysbenchOptions sopts,
                                   uint64_t rows,
                                   SimDuration window_interval = 0) {
  AuroraRun run;
  run.cluster = std::make_unique<AuroraCluster>(copts);
  run.catalog = std::make_unique<SyntheticCatalog>();
  Status s = run.cluster->BootstrapSync();
  if (!s.ok()) {
    fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return run;
  }
  auto layout = AttachSyntheticTable(run.cluster.get(), run.catalog.get(),
                                     "sbtest", rows, kRowBytes);
  if (!layout.ok()) {
    fprintf(stderr, "attach failed: %s\n", layout.status().ToString().c_str());
    return run;
  }
  run.table = (*layout)->anchor();
  sopts.table_rows = rows;
  sopts.value_size = kRowBytes;
  AuroraClient client(run.cluster->writer());
  SysbenchDriver driver(run.cluster->writer_loop(), &client, run.table, sopts);
  if (window_interval > 0) {
    // Timers on the control shard: window snapshots need a consistent
    // global cut under multi-worker execution.
    driver.EnableIntervalMetrics(run.cluster->metrics(), window_interval,
                                 run.cluster->loop()->control());
  }
  bool done = false;
  driver.Run([&] { done = true; });
  run.cluster->RunUntil([&] { return done; }, Minutes(60));
  run.results = driver.results();
  run.windows = driver.metric_windows();
  run.ok = done;
  return run;
}

struct MysqlRun {
  std::unique_ptr<MysqlCluster> cluster;
  std::unique_ptr<SyntheticCatalog> catalog;
  PageId table = kInvalidPage;
  WorkloadResults results;
  std::vector<MetricsSnapshot> windows;
  bool ok = false;
};

inline MysqlRun RunMysqlSysbench(MysqlClusterOptions copts,
                                 SysbenchOptions sopts, uint64_t rows,
                                 SimDuration window_interval = 0) {
  MysqlRun run;
  run.cluster = std::make_unique<MysqlCluster>(copts);
  run.catalog = std::make_unique<SyntheticCatalog>();
  Status s = run.cluster->BootstrapSync();
  if (!s.ok()) {
    fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return run;
  }
  auto layout = AttachSyntheticTableMysql(run.cluster.get(),
                                          run.catalog.get(), "sbtest", rows,
                                          kRowBytes);
  if (!layout.ok()) {
    fprintf(stderr, "attach failed: %s\n", layout.status().ToString().c_str());
    return run;
  }
  run.table = (*layout)->anchor();
  sopts.table_rows = rows;
  sopts.value_size = kRowBytes;
  MysqlClient client(run.cluster->db());
  SysbenchDriver driver(run.cluster->writer_loop(), &client, run.table, sopts);
  if (window_interval > 0) {
    driver.EnableIntervalMetrics(run.cluster->metrics(), window_interval,
                                 run.cluster->loop()->control());
  }
  bool done = false;
  driver.Run([&] { done = true; });
  run.cluster->RunUntil([&] { return done; }, Minutes(120));
  run.results = driver.results();
  run.windows = driver.metric_windows();
  run.ok = done;
  return run;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  printf("==============================================================\n");
  printf("%s\n", title);
  printf("  (reproduces %s; simulated scale — compare shapes, not\n",
         paper_ref);
  printf("   absolute values; see EXPERIMENTS.md)\n");
  printf("==============================================================\n");
}

// ---------------------------------------------------------------------------
// Machine-readable bench output (BENCH_<name>.json)
// ---------------------------------------------------------------------------

/// Collects one benchmark's headline numbers and whole-cluster metric dumps
/// and emits them as a single JSON document through the metrics layer.
///
///   BenchReport report("table1_network_ios");
///   report.Result("aurora.ios_per_txn", 0.95);
///   report.AttachCluster("aurora", run.cluster.get());
///   report.Write();   // -> BENCH_table1_network_ios.json
///
/// Output directory: $AURORA_BENCH_OUT if set, else the working directory.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Records one headline scalar under "results.<key>".
  void Result(const std::string& key, double value) {
    owned_.push_back(value);
    double* p = &owned_.back();
    registry_.RegisterGauge("results." + key, [p] { return *p; });
  }

  /// Records a latency histogram under "results.<key>". `h` must stay
  /// alive until Write().
  void ResultHistogram(const std::string& key, const Histogram* h) {
    registry_.RegisterHistogram("results." + key, h);
  }

  /// Nests a full snapshot of the cluster's registry under `prefix` at
  /// Write() time. The cluster must stay alive until Write().
  void AttachCluster(const std::string& prefix, AuroraCluster* cluster) {
    attached_.emplace_back(prefix, cluster->metrics());
  }
  void AttachRegistry(const std::string& prefix, const MetricsRegistry* reg) {
    attached_.emplace_back(prefix, reg);
  }

  /// Nests an already-materialized snapshot under `prefix` (interval
  /// windows, diffs against a baseline — anything no longer backed by a
  /// live registry).
  void AttachSnapshot(const std::string& prefix, MetricsSnapshot snap) {
    snapshots_.emplace_back(prefix, std::move(snap));
  }

  /// Nests a sysbench interval-window time series as
  /// "<prefix>.w<index>.<metric>" (windows are ordered by sim-time).
  void AttachWindows(const std::string& prefix,
                     const std::vector<MetricsSnapshot>& windows) {
    for (size_t i = 0; i < windows.size(); ++i) {
      AttachSnapshot(prefix + ".w" + std::to_string(i), windows[i]);
    }
  }

  MetricsRegistry* registry() { return &registry_; }

  /// Builds the merged snapshot (results + attached registries).
  MetricsSnapshot Snapshot() const {
    MetricsSnapshot snap = registry_.Snapshot();
    for (const auto& [prefix, reg] : attached_) {
      snap.MergeWithPrefix(prefix, reg->Snapshot());
    }
    for (const auto& [prefix, s] : snapshots_) {
      snap.MergeWithPrefix(prefix, s);
    }
    return snap;
  }

  /// Writes BENCH_<name>.json; returns the path ("" on failure).
  std::string Write() const {
    const char* dir = getenv("AURORA_BENCH_OUT");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/BENCH_" + name_ + ".json"
                           : "BENCH_" + name_ + ".json";
    FILE* f = fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return "";
    }
    std::string json = Snapshot().ToJson();
    fwrite(json.data(), 1, json.size(), f);
    fputc('\n', f);
    fclose(f);
    printf("\n[metrics] wrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  MetricsRegistry registry_;
  std::deque<double> owned_;  // deque: stable addresses for gauge readers
  std::vector<std::pair<std::string, const MetricsRegistry*>> attached_;
  std::vector<std::pair<std::string, MetricsSnapshot>> snapshots_;
};

/// Parses "--sim_shards=N" from a bench's argv (any position; first match
/// wins). N is the PDES worker-thread count for every cluster the bench
/// builds — purely an execution knob, results are byte-identical across
/// values (see DESIGN.md §11).
inline int ParseSimShards(int argc, char** argv, int def = 1) {
  for (int i = 1; i < argc; ++i) {
    int n = 0;
    if (sscanf(argv[i], "--sim_shards=%d", &n) == 1 && n >= 1) return n;
  }
  const char* env = getenv("AURORA_SIM_SHARDS");
  if (env != nullptr) {
    int n = atoi(env);
    if (n >= 1) return n;
  }
  return def;
}

}  // namespace aurora::bench

#endif  // AURORA_BENCH_BENCH_UTIL_H_
