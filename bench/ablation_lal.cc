// Ablation: the LSN Allocation Limit (§4.2.1). The LAL bounds how far the
// writer may run ahead of durability; too small and it throttles normal
// operation, too large and a storage slowdown lets an unbounded backlog
// build (latency balloons, recovery inventory grows). Sweep the LAL while
// the storage fleet is degraded.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run(int sim_shards) {
  PrintHeader("Ablation: LSN Allocation Limit back-pressure",
              "§4.2.1 (LAL, production value 10M)");
  printf("%-14s %10s %14s %14s %12s\n", "LAL (bytes)", "writes/s",
         "commit p99 ms", "stalls", "max unacked");
  BenchReport report("ablation_lal");
  for (uint64_t lal : {uint64_t{20000}, uint64_t{200000},
                       uint64_t{10000000}}) {
    ClusterOptions copts = StandardAuroraOptions();
    copts.engine.lal = lal;
    copts.sim_shards = sim_shards;
    // Degrade the whole fleet's disks so durability lags the workload.
    copts.storage.disk.max_iops = 800;
    AuroraCluster cluster(copts);
    if (!cluster.BootstrapSync().ok()) continue;
    SyntheticCatalog catalog;
    auto layout = AttachSyntheticTable(&cluster, &catalog, "t", RowsForGb(1),
                                       kRowBytes);
    if (!layout.ok()) continue;
    AuroraClient client(cluster.writer());
    SysbenchOptions sopts;
    sopts.mode = SysbenchOptions::Mode::kWriteOnly;
    sopts.connections = 32;
    sopts.duration = Seconds(2);
    sopts.warmup = Millis(300);
    SysbenchDriver driver(cluster.writer_loop(), &client, (*layout)->anchor(),
                          sopts);
    // Interval windows on the production-LAL point: the backlog build-up is
    // a time-series story, not a single number.
    if (lal == 10000000) {
      driver.EnableIntervalMetrics(cluster.metrics(), Millis(250),
                                   cluster.loop()->control());
    }
    bool done = false;
    driver.Run([&] { done = true; });
    cluster.RunUntil([&] { return done; }, Minutes(30));
    const auto& st = cluster.writer()->stats();
    const uint64_t unacked = cluster.writer()->next_lsn() -
                             cluster.writer()->vdl();
    printf("%-14llu %10.0f %14.2f %14llu %12llu\n",
           static_cast<unsigned long long>(lal),
           driver.results().writes_per_sec(),
           ToMillis(st.commit_latency_us.P99()),
           static_cast<unsigned long long>(st.backpressure_stalls),
           static_cast<unsigned long long>(unacked));
    std::string prefix = "lal" + std::to_string(lal);
    report.Result(prefix + ".writes_per_sec",
                  driver.results().writes_per_sec());
    report.Result(prefix + ".commit_p99_ms",
                  ToMillis(st.commit_latency_us.P99()));
    report.Result(prefix + ".backpressure_stalls",
                  static_cast<double>(st.backpressure_stalls));
    report.Result(prefix + ".unacked_bytes", static_cast<double>(unacked));
    report.AttachSnapshot(prefix + ".cluster",
                          cluster.metrics()->Snapshot());
    if (!driver.metric_windows().empty()) {
      report.AttachWindows(prefix + ".windows", driver.metric_windows());
    }
  }
  printf("\nExpected shape: the small LAL keeps the unacknowledged window\n");
  printf("bounded and commit latency low (statements defer instead of\n");
  printf("piling onto the degraded fleet — and the released bursts batch\n");
  printf("better); without effective back-pressure the backlog and the\n");
  printf("commit tail grow by orders of magnitude.\n");
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
