// Ablation: online DDL (§7.3). MySQL implements most schema changes with a
// full table copy; Aurora versions schemas and upgrades rows lazily on
// modification (modify-on-write). Compare the latency of ALTER TABLE and
// its impact on concurrent traffic.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run(int sim_shards) {
  PrintHeader("Ablation: online DDL (instant vs table-copy ALTER)",
              "§7.3 (schema evolution)");

  const uint64_t rows = RowsForGb(10);
  ClusterOptions copts = StandardAuroraOptions();
  copts.sim_shards = sim_shards;
  AuroraCluster cluster(copts);
  if (!cluster.BootstrapSync().ok()) return;
  SyntheticCatalog catalog;
  auto layout = AttachSyntheticTable(&cluster, &catalog, "t", rows,
                                     kRowBytes);
  if (!layout.ok()) return;
  PageId table = (*layout)->anchor();

  // Run OLTP traffic and fire an ALTER mid-stream.
  AuroraClient client(cluster.writer());
  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kOltp;
  sopts.connections = 16;
  sopts.duration = Seconds(3);
  sopts.warmup = Millis(300);
  SysbenchDriver driver(cluster.writer_loop(), &client, table, sopts);
  bool done = false;
  driver.Run([&] { done = true; });

  SimTime ddl_started = 0, ddl_finished = 0;
  uint32_t new_version = 0;
  cluster.loop()->Schedule(Millis(1500), [&] {
    ddl_started = cluster.loop()->now();
    cluster.writer()->AlterTableSchema("t", [&](Result<uint32_t> v) {
      ddl_finished = cluster.loop()->now();
      if (v.ok()) new_version = *v;
    });
  });
  cluster.RunUntil([&] { return done; }, Minutes(30));

  printf("Aurora instant DDL under live OLTP load:\n");
  printf("  ALTER latency:        %.2f ms (metadata-only)\n",
         ToMillis(ddl_finished - ddl_started));
  printf("  new schema version:   %u\n", new_version);
  printf("  traffic during DDL:   %.0f txns/s, %llu errors\n",
         driver.results().tps(),
         static_cast<unsigned long long>(driver.results().errors));

  // Table-copy cost model: rewriting every row of the table through the
  // write path (what a MySQL full-copy ALTER does to this table).
  double copy_statements = static_cast<double>(rows);
  double write_rate = driver.results().writes_per_sec();
  double copy_seconds = write_rate > 0 ? copy_statements / write_rate : 0;
  printf("\nTable-copy ALTER estimate for the same table:\n");
  printf("  %llu rows to rewrite at ~%.0f rows/s => ~%.1f s of copy,\n",
         static_cast<unsigned long long>(rows), write_rate, copy_seconds);
  printf("  holding locks and doubling storage meanwhile.\n");
  printf("\nPaper context: customers run 'a few dozen migrations a week';\n");
  printf("Aurora's per-page schema versioning makes them O(1).\n");

  BenchReport report("ablation_online_ddl");
  report.Result("aurora.alter_latency_ms",
                ToMillis(ddl_finished - ddl_started));
  report.Result("aurora.new_schema_version",
                static_cast<double>(new_version));
  report.Result("aurora.tps_during_ddl", driver.results().tps());
  report.Result("aurora.errors",
                static_cast<double>(driver.results().errors));
  report.Result("tablecopy.estimated_copy_seconds", copy_seconds);
  report.AttachCluster("aurora.cluster", &cluster);
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
