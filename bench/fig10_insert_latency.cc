// Figure 10: "INSERT per-record latency (P50 vs P95)" — same education-
// technology migration as Figure 9, for the write path. Synchronous EBS
// chains + checkpoint interference give MySQL a heavy write tail; Aurora's
// 4/6 quorum absorbs slow replicas.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run() {
  PrintHeader("Figure 10: INSERT per-record latency P50 vs P95 (migration)",
              "Figure 10 (§6.2.2)");

  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kWriteOnly;
  sopts.connections = 48;
  sopts.duration = Seconds(3);
  sopts.warmup = Millis(500);
  const uint64_t rows = RowsForGb(400);

  MysqlRun before = RunMysqlSysbench(StandardMysqlOptions(), sopts, rows);
  const Histogram& bm = before.cluster->db()->stats().commit_latency_us;

  AuroraRun after = RunAuroraSysbench(StandardAuroraOptions(), sopts, rows);
  const Histogram& am = after.cluster->writer()->stats().commit_latency_us;

  printf("%-22s %12s %12s %12s\n", "Configuration", "P50 (ms)", "P95 (ms)",
         "P95/P50");
  printf("%-22s %12.2f %12.2f %11.1fx\n", "MySQL (before)",
         ToMillis(bm.P50()), ToMillis(bm.P95()),
         bm.P50() ? static_cast<double>(bm.P95()) / bm.P50() : 0);
  printf("%-22s %12.2f %12.2f %11.1fx\n", "Aurora (after)",
         ToMillis(am.P50()), ToMillis(am.P95()),
         am.P50() ? static_cast<double>(am.P95()) / am.P50() : 0);
  BenchReport report("fig10_insert_latency");
  report.Result("mysql.commit_p50_ms", ToMillis(bm.P50()));
  report.Result("mysql.commit_p95_ms", ToMillis(bm.P95()));
  report.Result("aurora.commit_p50_ms", ToMillis(am.P50()));
  report.Result("aurora.commit_p95_ms", ToMillis(am.P95()));
  report.ResultHistogram("mysql.commit_latency_us", &bm);
  report.ResultHistogram("aurora.commit_latency_us", &am);
  // Both dumps carry the write-path decomposition: Aurora's quorum stage
  // tracing (engine.writer.trace.*) vs MySQL's chain counters
  // (engine.mysql.{wal_flushes,dwb_writes,checkpoints}).
  report.AttachCluster("aurora", after.cluster.get());
  report.AttachRegistry("mysql", before.cluster->metrics());
  report.Write();

  printf("\nExpected shape: both P50 and P95 drop after migration and the\n");
  printf("tail tightens (paper: P95 approximates P50 after).\n");
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
