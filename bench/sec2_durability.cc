// §2 "Durability at Scale": why 2/3 quorums are inadequate under
// AZ-correlated failure and how 10-second segment repair shrinks the
// double-fault window. Reproduces the quantitative argument behind the
// AZ+1 design point (analytic model + Monte Carlo + a live repair-time
// measurement on the simulated fleet).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "quorum/availability.h"

namespace aurora::bench {
namespace {

void Run() {
  PrintHeader("Section 2: quorum durability under correlated failure",
              "§2.1-2.2 (AZ+1 design point)");
  BenchReport bench("sec2_durability");

  // Repair time: "a 10GB segment can be repaired in 10 seconds on a 10Gbps
  // network link".
  printf("Segment repair time (size / bandwidth):\n");
  for (double gb : {1.0, 10.0, 100.0}) {
    double secs = AvailabilityModel::RepairSeconds(
        static_cast<uint64_t>(gb * (1ull << 30)), 10e9);
    printf("  %6.0f GB segment @ 10 Gbps: %6.1f s\n", gb, secs);
    bench.Result("repair_seconds." + std::to_string(static_cast<int>(gb)) +
                     "gb",
                 secs);
  }

  // Analytic + Monte Carlo quorum-loss probabilities.
  DurabilityParams params;
  params.node_mttf_hours = 5000;
  params.segment_mttr_seconds = 10;
  params.horizon_hours = 24 * 365;

  Random rng(2017);
  printf("\n%-14s %22s %26s\n", "quorum", "P(loss | AZ failure)",
         "MC loss prob (1yr, AZ evts)");
  for (QuorumConfig q : {QuorumConfig::TwoOfThree(), QuorumConfig::Aurora()}) {
    AvailabilityModel model(q, params);
    DurabilityReport report = model.Analytic();
    double mc = model.MonteCarloLossProb(20000, 1.0 / (24 * 90), &rng);
    char name[16];
    snprintf(name, sizeof(name), "%d/%d/%d", q.votes, q.write_quorum,
             q.read_quorum);
    printf("%-14s %22.2e %26.4f\n", name, report.az_plus_noise_loss_prob, mc);
    char key[32];
    snprintf(key, sizeof(key), "quorum_%d_%d_%d", q.votes, q.write_quorum,
             q.read_quorum);
    bench.Result(std::string(key) + ".az_plus_noise_loss_prob",
                 report.az_plus_noise_loss_prob);
    bench.Result(std::string(key) + ".mc_loss_prob_1yr", mc);
  }
  printf("\nExpected shape: the 6/4/3 scheme survives AZ+1 (orders of\n");
  printf("magnitude below 2/3), because an AZ failure still leaves a\n");
  printf("read quorum plus one spare.\n");

  // Live fleet measurement: MTTR on the simulated storage fleet.
  printf("\nLive repair on the simulated fleet:\n");
  ClusterOptions copts = StandardAuroraOptions();
  copts.repair.detection_threshold = Seconds(2);
  AuroraCluster cluster(copts);
  if (!cluster.BootstrapSync().ok()) {
    bench.Write();
    return;
  }
  PageId table;
  {
    if (!cluster.CreateTableSync("t").ok()) {
      bench.Write();
      return;
    }
    table = *cluster.TableAnchorSync("t");
  }
  for (int i = 0; i < 400; ++i) {
    (void)cluster.PutSync(table, SyntheticTableLayout::KeyOf(i),
                          std::string(200, 'x'));
  }
  cluster.RunFor(Seconds(2));
  sim::NodeId victim = cluster.control_plane()->membership(0).nodes[0];
  cluster.failure_injector()->CrashNode(victim, 0);  // permanent
  cluster.RunUntil(
      [&] { return cluster.repair_manager()->stats().completed > 0; },
      Minutes(5));
  const auto& durations = cluster.repair_manager()->repair_durations();
  if (!durations.empty()) {
    printf("  segment copy after the 2 s detection threshold: %.3f s\n"
           "  (tiny test segment; a paper-scale 10 GB segment moves in\n"
           "   ~8.6 s at 10 Gbps, per the table above)\n",
           ToSeconds(durations.front()));
    bench.Result("live_repair.first_duration_seconds",
                 ToSeconds(durations.front()));
  }
  printf("  repairs completed: %llu\n",
         static_cast<unsigned long long>(
             cluster.repair_manager()->stats().completed));
  bench.Result("live_repair.repairs_completed",
               static_cast<double>(
                   cluster.repair_manager()->stats().completed));
  // MTTR sweep: segment size (driven by row count) x fabric loss rate. The
  // window of double-fault vulnerability is detection + transfer; chunked
  // repair keeps transfer time linear in segment size and nearly flat in
  // loss rate (lost chunks retry individually instead of restarting the
  // whole copy).
  printf("\nMTTR sweep (segment size x fabric loss rate):\n");
  printf("%8s %8s %10s %12s %12s %14s\n", "rows", "loss", "repairs",
         "mean MTTR", "max MTTR", "chunk retries");
  for (int rows : {100, 400}) {
    for (double loss : {0.0, 0.02, 0.05}) {
      ClusterOptions so = StandardAuroraOptions();
      so.repair.detection_threshold = Seconds(2);
      so.repair.chunk_bytes = 8 * 1024;
      AuroraCluster c(so);
      if (!c.BootstrapSync().ok() || !c.CreateTableSync("t").ok()) continue;
      PageId t = *c.TableAnchorSync("t");
      for (int i = 0; i < rows; ++i) {
        (void)c.PutSync(t, SyntheticTableLayout::KeyOf(i),
                        std::string(200, 'x'));
      }
      c.RunFor(Seconds(2));
      sim::NodeId victim = c.control_plane()->membership(0).nodes[0];
      const size_t need = c.control_plane()->ReplicasOnNode(victim).size();
      c.network()->set_drop_probability(loss);
      c.failure_injector()->CrashNode(victim, 0);  // permanent
      c.RunUntil(
          [&] { return c.repair_manager()->stats().completed >= need; },
          Minutes(10));
      const RepairStats& rs = c.repair_manager()->stats();
      const auto& ds = c.repair_manager()->repair_durations();
      double mean_ms = 0.0;
      double max_ms = 0.0;
      for (SimDuration d : ds) {
        double ms = ToSeconds(d) * 1e3;
        mean_ms += ms;
        max_ms = std::max(max_ms, ms);
      }
      if (!ds.empty()) mean_ms /= static_cast<double>(ds.size());
      printf("%8d %7.0f%% %10llu %9.1f ms %9.1f ms %14llu\n", rows,
             loss * 100, static_cast<unsigned long long>(rs.completed),
             mean_ms, max_ms,
             static_cast<unsigned long long>(rs.chunk_retries));
      char prefix[48];
      snprintf(prefix, sizeof(prefix), "mttr_sweep.rows%d_loss%d", rows,
               static_cast<int>(loss * 100));
      bench.Result(std::string(prefix) + ".repairs",
                   static_cast<double>(rs.completed));
      bench.Result(std::string(prefix) + ".mean_mttr_ms", mean_ms);
      bench.Result(std::string(prefix) + ".max_mttr_ms", max_ms);
      bench.Result(std::string(prefix) + ".chunk_retries",
                   static_cast<double>(rs.chunk_retries));
      bench.Result(std::string(prefix) + ".bytes_copied",
                   static_cast<double>(rs.bytes_copied));
    }
  }

  bench.AttachCluster("aurora", &cluster);
  bench.Write();
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
