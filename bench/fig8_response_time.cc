// Figure 8: "Web application response time" — an internet gaming company
// migrated a production workload from MySQL to Aurora on r3.4xlarge; mean
// web-transaction response time dropped from 15 ms to 5.5 ms (~3x).
//
// The scenario: a mixed read/write "web transaction" (a few point reads +
// a couple of writes per request) at moderate concurrency, run against the
// baseline and then against Aurora — the before/after of the migration.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run() {
  PrintHeader("Figure 8: web application mean response time (migration)",
              "Figure 8 (§6.2.1)");

  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kOltp;
  sopts.point_selects = 6;
  sopts.index_updates = 2;
  sopts.connections = 32;
  sopts.duration = Seconds(3);
  sopts.warmup = Millis(500);
  const uint64_t rows = RowsForGb(10);

  MysqlClusterOptions mopts = StandardMysqlOptions();
  mopts.instance = sim::R34XLarge();
  MysqlRun before = RunMysqlSysbench(mopts, sopts, rows);

  ClusterOptions aopts = StandardAuroraOptions();
  aopts.writer_instance = sim::R34XLarge();
  AuroraRun after = RunAuroraSysbench(aopts, sopts, rows);

  double before_ms = ToMillis(static_cast<SimDuration>(
      before.results.txn_latency_us.mean()));
  double after_ms = ToMillis(static_cast<SimDuration>(
      after.results.txn_latency_us.mean()));
  printf("%-22s %20s\n", "Configuration", "mean response (ms)");
  printf("%-22s %20.2f\n", "MySQL (before)", before_ms);
  printf("%-22s %20.2f\n", "Aurora (after)", after_ms);
  printf("\nImprovement: %.1fx   (paper: 15 ms -> 5.5 ms, ~2.7x)\n",
         after_ms > 0 ? before_ms / after_ms : 0);

  BenchReport report("fig8_response_time");
  report.Result("mysql.mean_response_ms", before_ms);
  report.Result("aurora.mean_response_ms", after_ms);
  report.Result("ratio.improvement", after_ms > 0 ? before_ms / after_ms : 0);
  report.ResultHistogram("mysql.txn_latency_us",
                         &before.results.txn_latency_us);
  report.ResultHistogram("aurora.txn_latency_us",
                         &after.results.txn_latency_us);
  report.AttachCluster("aurora", after.cluster.get());
  report.AttachRegistry("mysql", before.cluster->metrics());
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
