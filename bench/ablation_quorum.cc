// Ablation: write-quorum width vs commit latency and availability.
// The 4/6 quorum is Aurora's outlier-absorber (§1, §3.1): commits wait for
// the 4th-fastest of six replicas, so one slow or dead node is invisible.
// This sweep compares 6/6 (synchronous all-replica, like chain/mirror
// schemes), 4/6 (Aurora) and 2/3 under a slow storage node.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void RunOne(const char* label, const char* key, QuorumConfig q,
            double slow_factor, int sim_shards, BenchReport* report) {
  ClusterOptions copts = StandardAuroraOptions();
  copts.engine.quorum = q;
  copts.sim_shards = sim_shards;
  AuroraCluster cluster(copts);
  if (!cluster.BootstrapSync().ok()) return;
  SyntheticCatalog catalog;
  auto layout =
      AttachSyntheticTable(&cluster, &catalog, "t", RowsForGb(1), kRowBytes);
  if (!layout.ok()) return;
  if (slow_factor > 1) {
    sim::NodeId victim = cluster.control_plane()->membership(0).nodes[0];
    cluster.failure_injector()->SlowNode(victim, slow_factor, 0);
  }
  AuroraClient client(cluster.writer());
  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kWriteOnly;
  sopts.connections = 16;
  sopts.duration = Seconds(2);
  sopts.warmup = Millis(300);
  SysbenchDriver driver(cluster.writer_loop(), &client, (*layout)->anchor(), sopts);
  bool done = false;
  driver.Run([&] { done = true; });
  cluster.RunUntil([&] { return done; }, Minutes(30));
  const Histogram& commit =
      cluster.writer()->stats().commit_latency_us;
  printf("%-26s %10.0f %12.2f %12.2f %10llu\n", label,
         driver.results().writes_per_sec(), ToMillis(commit.P50()),
         ToMillis(commit.P99()),
         static_cast<unsigned long long>(
             cluster.writer()->stats().batch_retries));
  std::string prefix(key);
  report->Result(prefix + ".writes_per_sec",
                 driver.results().writes_per_sec());
  report->Result(prefix + ".commit_p50_ms", ToMillis(commit.P50()));
  report->Result(prefix + ".commit_p99_ms", ToMillis(commit.P99()));
  report->Result(prefix + ".batch_retries",
                 static_cast<double>(cluster.writer()->stats().batch_retries));
  // The cluster dies with this frame, so attach a materialized snapshot
  // rather than the registry.
  report->AttachSnapshot(prefix + ".cluster", cluster.metrics()->Snapshot());
}

void Run(int sim_shards) {
  PrintHeader("Ablation: quorum width under a slow storage node",
              "§2.1/§3.1 (the 4/6 design point)");
  printf("%-26s %10s %12s %12s %10s\n", "config", "writes/s",
         "commit p50", "commit p99", "retries");
  BenchReport report("ablation_quorum");
  RunOne("4/6 (Aurora), healthy", "aurora_healthy", QuorumConfig::Aurora(), 1,
         sim_shards, &report);
  RunOne("4/6 (Aurora), 1 slow 20x", "aurora_slow20x", QuorumConfig::Aurora(),
         20, sim_shards, &report);
  RunOne("6/6 (all-replica), healthy", "allreplica_healthy",
         QuorumConfig{6, 6, 1}, 1, sim_shards, &report);
  RunOne("6/6 (all-replica), slow", "allreplica_slow20x",
         QuorumConfig{6, 6, 1}, 20, sim_shards, &report);
  printf("\nExpected shape: 4/6 is insensitive to the slow node; 6/6\n");
  printf("inherits the slowest replica's latency into every commit.\n");
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
