// Ablation: write-quorum width vs commit latency and availability.
// The 4/6 quorum is Aurora's outlier-absorber (§1, §3.1): commits wait for
// the 4th-fastest of six replicas, so one slow or dead node is invisible.
// This sweep compares 6/6 (synchronous all-replica, like chain/mirror
// schemes), 4/6 (Aurora) and 2/3 under a slow storage node.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void RunOne(const char* label, QuorumConfig q, double slow_factor) {
  ClusterOptions copts = StandardAuroraOptions();
  copts.engine.quorum = q;
  AuroraCluster cluster(copts);
  if (!cluster.BootstrapSync().ok()) return;
  SyntheticCatalog catalog;
  auto layout =
      AttachSyntheticTable(&cluster, &catalog, "t", RowsForGb(1), kRowBytes);
  if (!layout.ok()) return;
  if (slow_factor > 1) {
    sim::NodeId victim = cluster.control_plane()->membership(0).nodes[0];
    cluster.failure_injector()->SlowNode(victim, slow_factor, 0);
  }
  AuroraClient client(cluster.writer());
  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kWriteOnly;
  sopts.connections = 16;
  sopts.duration = Seconds(2);
  sopts.warmup = Millis(300);
  SysbenchDriver driver(cluster.loop(), &client, (*layout)->anchor(), sopts);
  bool done = false;
  driver.Run([&] { done = true; });
  cluster.RunUntil([&] { return done; }, Minutes(30));
  const Histogram& commit =
      cluster.writer()->stats().commit_latency_us;
  printf("%-26s %10.0f %12.2f %12.2f %10llu\n", label,
         driver.results().writes_per_sec(), ToMillis(commit.P50()),
         ToMillis(commit.P99()),
         static_cast<unsigned long long>(
             cluster.writer()->stats().batch_retries));
}

void Run() {
  PrintHeader("Ablation: quorum width under a slow storage node",
              "§2.1/§3.1 (the 4/6 design point)");
  printf("%-26s %10s %12s %12s %10s\n", "config", "writes/s",
         "commit p50", "commit p99", "retries");
  RunOne("4/6 (Aurora), healthy", QuorumConfig::Aurora(), 1);
  RunOne("4/6 (Aurora), 1 slow 20x", QuorumConfig::Aurora(), 20);
  RunOne("6/6 (all-replica), healthy", QuorumConfig{6, 6, 1}, 1);
  RunOne("6/6 (all-replica), slow", QuorumConfig{6, 6, 1}, 20);
  printf("\nExpected shape: 4/6 is insensitive to the slow node; 6/6\n");
  printf("inherits the slowest replica's latency into every commit.\n");
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
